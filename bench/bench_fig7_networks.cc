/**
 * @file
 * Fig. 7a-d reproduction: end-to-end network speedup of AMOS over
 * the PyTorch library proxy on V100-like and A100-like accelerators
 * at batch sizes 1 and 16.
 */

#include "bench_common.hh"
#include "graph/network.hh"

namespace amos {
namespace {

void
runFor(const HardwareSpec &hw, std::int64_t batch)
{
    bench::banner("Fig. 7 " + hw.name + " BS=" +
                  std::to_string(batch) +
                  ": network speedup over PyTorch proxy");
    NetworkCompileOptions options;
    options.tuning = bench::benchTuning();
    options.tuning.generations = 5;
    options.tuning.maxMappings = 16;

    std::vector<Network> nets = {
        shuffleNet(batch),   resnet18(batch),  resnet50(batch),
        mobileNetV1(batch),  bertBase(batch),  miLstm(batch),
        transformer(batch),
    };
    TextTable table({"network", "pytorch(ms)", "amos(ms)",
                     "speedup", "amos mapped", "total ops"});
    for (const auto &net : nets) {
        auto torch_res = compileNetwork(
            net, hw, NetworkCompiler::PyTorch, options);
        auto amos_res = compileNetwork(net, hw, NetworkCompiler::Amos,
                                       options);
        table.addRow({net.name, fmtDouble(torch_res.totalMs, 3),
                      fmtDouble(amos_res.totalMs, 3),
                      fmtDouble(torch_res.totalMs /
                                    amos_res.totalMs,
                                2),
                      std::to_string(amos_res.mappedOps),
                      std::to_string(amos_res.totalOps)});
    }
    std::printf("%s", table.toString().c_str());
}

} // namespace
} // namespace amos

int
main()
{
    using namespace amos;
    runFor(hw::v100(), 1);
    runFor(hw::v100(), 16);
    runFor(hw::a100(), 1);
    runFor(hw::a100(), 16);
    std::printf(
        "\nPaper: speedups 0.91x..10.42x; the depthwise/grouped-\n"
        "heavy nets (ShuffleNet, MobileNet) gain most, Bert the\n"
        "least (GEMM is already optimal in libraries), and batch 1\n"
        "gains exceed batch 16 (dispatch overheads amortise).\n");
    return 0;
}
