/**
 * @file
 * Ablation (extension of the paper's Sec. 7.6 analysis): intrinsic
 * problem-shape selection. Real Tensor Cores expose three WMMA
 * shapes (m16n16k16, m32n8k16, m8n32k16); this ablation pins each
 * shape and compares against AMOS's joint exploration of shape x
 * mapping x schedule on the ResNet-18 layers.
 */

#include "bench_common.hh"
#include "isa/intrinsics.hh"

int
main()
{
    using namespace amos;
    bench::banner(
        "Ablation: WMMA problem-shape selection on A100, BS=16");

    auto base = hw::a100();
    auto tuning = bench::benchTuning();

    TextTable table({"layer", "16x16x16", "32x8x16", "8x32x16",
                     "joint", "joint shape"});
    bench::GeoMean g16, g32, g8, gj;
    for (const auto &layer : ops::resnet18ConvLayers(16)) {
        auto comp = layer.build();
        std::vector<double> pinned_ms;
        for (std::size_t v = 0; v < 3; ++v) {
            HardwareSpec pinned = base;
            pinned.intrinsics = {isa::wmmaVariants()[v]};
            pinned.intrinsics[0].latencyCycles = 4.0; // A100 rate
            auto res = tune(comp, pinned, tuning);
            pinned_ms.push_back(
                cyclesToMs(res.bestCycles, pinned));
        }
        auto joint = tune(comp, base, tuning);
        double joint_ms = cyclesToMs(joint.bestCycles, base);
        double best_pinned =
            std::min({pinned_ms[0], pinned_ms[1], pinned_ms[2]});
        g16.add(best_pinned / pinned_ms[0]);
        g32.add(best_pinned / pinned_ms[1]);
        g8.add(best_pinned / pinned_ms[2]);
        gj.add(best_pinned / joint_ms);
        table.addRow({layer.label, fmtDouble(pinned_ms[0], 4),
                      fmtDouble(pinned_ms[1], 4),
                      fmtDouble(pinned_ms[2], 4),
                      fmtDouble(joint_ms, 4),
                      joint.intrinsicName});
    }
    table.addRow({"GEO vs best-pinned", fmtDouble(g16.value(), 3),
                  fmtDouble(g32.value(), 3),
                  fmtDouble(g8.value(), 3),
                  fmtDouble(gj.value(), 3), "-"});
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nNo single problem shape dominates every layer (tall\n"
        "shapes suit fused spatial dims, wide shapes suit big\n"
        "channel counts); joint exploration tracks the per-layer\n"
        "best pinned shape.\n");
    return 0;
}
