/**
 * @file
 * Ablation: what the cost models buy the tuner (extends Fig. 5).
 * Compares three screening strategies on the ResNet-18 layers —
 * the analytic model, the online learned model (Fig. 2's "Learn
 * Algo."), and no model at all (generations of random measurement
 * with the same budget) — by final achieved latency and by the rank
 * quality of the screening predictions.
 */

#include "bench_common.hh"
#include "explore/stats.hh"

namespace amos {
namespace {

/** Random-search baseline with the same measurement budget. */
double
randomSearchMs(const TensorComputation &comp, const HardwareSpec &hw,
               int budget, std::uint64_t seed)
{
    auto plans = enumeratePlans(comp, hw.primaryIntrinsic(), {});
    Rng rng(seed);
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < budget; ++i) {
        const auto &plan = plans[static_cast<std::size_t>(
            rng.uniformInt(0,
                           static_cast<std::int64_t>(plans.size()) -
                               1))];
        auto sched = sampleSchedule(plan, rng);
        auto sim = simulateKernel(lowerKernel(plan, sched, hw), hw);
        if (sim.schedulable)
            best = std::min(best, sim.cycles);
    }
    return cyclesToMs(best, hw);
}

} // namespace
} // namespace amos

int
main()
{
    using namespace amos;
    bench::banner(
        "Ablation: screening strategies (V100, ResNet-18 C2D)");

    auto hw = hw::v100();
    TextTable table({"layer", "analytic ms", "learned ms",
                     "random ms", "analytic acc", "learned acc"});
    bench::GeoMean g_learn, g_rand;
    for (int idx : {1, 5, 8, 11}) {
        auto layer =
            ops::resnet18ConvLayers(16)[static_cast<std::size_t>(
                idx)];
        auto comp = layer.build();

        TuneOptions analytic = bench::benchTuning(500 + idx);
        auto a = tune(comp, hw, analytic);

        TuneOptions learned = analytic;
        learned.useLearnedModel = true;
        auto l = tune(comp, hw, learned);

        double rand_ms = randomSearchMs(comp, hw, a.measurements,
                                        900 + idx);
        double a_ms = cyclesToMs(a.bestCycles, hw);
        double l_ms = cyclesToMs(l.bestCycles, hw);
        g_learn.add(a_ms / l_ms);
        g_rand.add(a_ms / rand_ms);
        table.addRow({layer.label, fmtDouble(a_ms, 4),
                      fmtDouble(l_ms, 4), fmtDouble(rand_ms, 4),
                      fmtDouble(pairwiseAccuracy(a.trace), 3),
                      fmtDouble(pairwiseAccuracy(l.trace), 3)});
    }
    table.addRow({"GEO (analytic/x)", "1.00",
                  fmtDouble(1.0 / g_learn.value(), 2),
                  fmtDouble(1.0 / g_rand.value(), 2), "-", "-"});
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nModel-guided screening (either flavour) beats random\n"
        "measurement at equal budget; the learned model corrects\n"
        "the analytic model's bias as its archive grows.\n");
    return 0;
}
