/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries: each
 * binary regenerates one table or figure of the AMOS paper and prints
 * the same rows/series the paper reports, with the paper's published
 * values alongside where they exist (see EXPERIMENTS.md).
 */

#ifndef AMOS_BENCH_COMMON_HH
#define AMOS_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "amos/amos.hh"
#include "baselines/baselines.hh"
#include "ops/conv_layers.hh"
#include "support/json.hh"
#include "support/math_utils.hh"
#include "support/str_utils.hh"

namespace amos {
namespace bench {

/** Achieved GFLOPS of an operator at a given latency. */
inline double
gflopsAt(const TensorComputation &comp, double ms)
{
    return static_cast<double>(comp.flopCount()) / (ms * 1e6);
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Default tuning options for benches: modest but effective. */
inline TuneOptions
benchTuning(std::uint64_t seed = 2022)
{
    TuneOptions options;
    options.population = 20;
    options.generations = 8;
    options.measureTopK = 6;
    options.seed = seed;
    return options;
}

/** Accumulator for geometric-mean speedups. */
class GeoMean
{
  public:
    void
    add(double value)
    {
        _values.push_back(value);
    }

    double
    value() const
    {
        return geometricMean(_values);
    }

  private:
    std::vector<double> _values;
};

/**
 * Standard machine-readable benchmark artifact. Every bench binary
 * collects its numbers into one of these and calls write(), which
 * produces BENCH_<name>.json — in $AMOS_BENCH_DIR when set, else
 * the working directory — with a uniform envelope:
 *
 *   {"name":..., "repetitions":..., "config":{...}, "metrics":{...}}
 *
 * so a results harness can sweep BENCH_*.json without per-bench
 * parsers.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name, int repetitions = 1)
        : _name(std::move(name)), _repetitions(repetitions),
          _config(Json::object()), _metrics(Json::object())
    {}

    /** Record one workload/configuration knob. */
    void
    setConfig(const std::string &key, Json value)
    {
        _config.set(key, std::move(value));
    }

    /** Record one measured metric (scalar, array, or object). */
    void
    setMetric(const std::string &key, Json value)
    {
        _metrics.set(key, std::move(value));
    }

    Json
    toJson() const
    {
        Json out = Json::object();
        out.set("name", Json(_name));
        out.set("repetitions", Json(_repetitions));
        out.set("config", _config);
        out.set("metrics", _metrics);
        return out;
    }

    /** Write BENCH_<name>.json; returns the path written. */
    std::string
    write() const
    {
        const char *dir = std::getenv("AMOS_BENCH_DIR");
        std::string path = std::string(dir ? dir : ".") +
                           "/BENCH_" + _name + ".json";
        std::ofstream out(path);
        out << toJson().dump() << "\n";
        out.flush();
        expect(out.good(), "bench: cannot write ", path);
        std::fprintf(stderr, "wrote %s\n", path.c_str());
        return path;
    }

  private:
    std::string _name;
    int _repetitions;
    Json _config;
    Json _metrics;
};

} // namespace bench
} // namespace amos

#endif // AMOS_BENCH_COMMON_HH
