/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries: each
 * binary regenerates one table or figure of the AMOS paper and prints
 * the same rows/series the paper reports, with the paper's published
 * values alongside where they exist (see EXPERIMENTS.md).
 */

#ifndef AMOS_BENCH_COMMON_HH
#define AMOS_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "amos/amos.hh"
#include "baselines/baselines.hh"
#include "ops/conv_layers.hh"
#include "support/math_utils.hh"
#include "support/str_utils.hh"

namespace amos {
namespace bench {

/** Achieved GFLOPS of an operator at a given latency. */
inline double
gflopsAt(const TensorComputation &comp, double ms)
{
    return static_cast<double>(comp.flopCount()) / (ms * 1e6);
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Default tuning options for benches: modest but effective. */
inline TuneOptions
benchTuning(std::uint64_t seed = 2022)
{
    TuneOptions options;
    options.population = 20;
    options.generations = 8;
    options.measureTopK = 6;
    options.seed = seed;
    return options;
}

/** Accumulator for geometric-mean speedups. */
class GeoMean
{
  public:
    void
    add(double value)
    {
        _values.push_back(value);
    }

    double
    value() const
    {
        return geometricMean(_values);
    }

  private:
    std::vector<double> _values;
};

} // namespace bench
} // namespace amos

#endif // AMOS_BENCH_COMMON_HH
