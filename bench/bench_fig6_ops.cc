/**
 * @file
 * Fig. 6a/6b reproduction: single-operator speedup of AMOS over the
 * PyTorch library proxy for all fifteen operator families at batch
 * size 1, on the V100-like and A100-like accelerators, over the full
 * 113-configuration suite (7-8 per operator, drawn from the same
 * real networks the paper cites) with geometric means.
 */

#include "bench_common.hh"
#include "ops/config_suite.hh"
#include "ops/operators.hh"

namespace amos {
namespace {

using ops::ConvParams;
using ops::OpKind;

void
runFor(const HardwareSpec &hw)
{
    bench::banner("Fig. 6 " + hw.name +
                  " BS=1: speedup over PyTorch proxy");
    Compiler compiler(hw, bench::benchTuning());
    TextTable table({"op", "configs", "amos ms (first)",
                     "pytorch ms (first)", "geomean speedup"});
    bench::GeoMean overall;
    for (auto kind : ops::allOpKinds()) {
        bench::GeoMean per_op;
        double amos_first = 0.0, torch_first = 0.0;
        auto configs = ops::configsOf(kind);
        for (std::size_t i = 0; i < configs.size(); ++i) {
            auto comp = configs[i].build(1);
            auto amos_res = compiler.compile(comp);
            auto torch_res = baselines::libraryProxy(comp, hw);
            double speedup =
                torch_res.milliseconds / amos_res.milliseconds;
            per_op.add(speedup);
            overall.add(speedup);
            if (i == 0) {
                amos_first = amos_res.milliseconds;
                torch_first = torch_res.milliseconds;
            }
        }
        table.addRow({ops::opKindName(kind),
                      std::to_string(configs.size()),
                      fmtDouble(amos_first, 4),
                      fmtDouble(torch_first, 4),
                      fmtDouble(per_op.value(), 2)});
    }
    table.addRow({"GEO", "-", "-", "-",
                  fmtDouble(overall.value(), 2)});
    std::printf("%s", table.toString().c_str());
}

} // namespace
} // namespace amos

int
main()
{
    using namespace amos;
    runFor(hw::v100());
    runFor(hw::a100());
    std::printf(
        "\nPaper: geometric-mean speedups 2.50x (V100) and 2.80x\n"
        "(A100); the largest wins are on the operators libraries\n"
        "execute on scalar units (DEP, GRP, CAP, BCV, GFC).\n");
    return 0;
}
