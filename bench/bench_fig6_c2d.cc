/**
 * @file
 * Fig. 6c reproduction: C2D performance on the A100-like accelerator
 * at batch 16 for all ResNet-18 layers (C0..C11), relative to the
 * CuDNN library proxy, across UNIT, AutoTVM (stock + expert
 * template), Ansor, and AMOS.
 */

#include "bench_common.hh"

int
main()
{
    using namespace amos;
    bench::banner(
        "Fig. 6c: C2D on A100, BS=16, relative to CuDNN proxy");

    auto hw = hw::a100();
    Compiler compiler(hw, bench::benchTuning());
    using baselines::amosFixedMapping;
    using baselines::ansorProxy;
    using baselines::autoTvmProxy;
    using baselines::libraryProxy;
    using baselines::unitProxy;

    TextTable table({"layer", "cudnn(ms)", "unit", "autotvm",
                     "autotvm-exp", "ansor", "amos"});
    bench::GeoMean g_unit, g_tvm, g_tvm_e, g_ansor, g_amos;
    for (const auto &layer : ops::resnet18ConvLayers(16)) {
        auto comp = layer.build();
        double cudnn = libraryProxy(comp, hw).milliseconds;
        double unit = unitProxy(comp, hw).milliseconds;
        double tvm = autoTvmProxy(comp, hw, false).milliseconds;
        double tvm_e = autoTvmProxy(comp, hw, true).milliseconds;
        double ansor = ansorProxy(comp, hw).milliseconds;
        double amos = compiler.compile(comp).milliseconds;
        g_unit.add(cudnn / unit);
        g_tvm.add(cudnn / tvm);
        g_tvm_e.add(cudnn / tvm_e);
        g_ansor.add(cudnn / ansor);
        g_amos.add(cudnn / amos);
        table.addRow({layer.label, fmtDouble(cudnn, 4),
                      fmtDouble(cudnn / unit, 2),
                      fmtDouble(cudnn / tvm, 2),
                      fmtDouble(cudnn / tvm_e, 2),
                      fmtDouble(cudnn / ansor, 2),
                      fmtDouble(cudnn / amos, 2)});
    }
    table.addRow({"GEO", "1.00", fmtDouble(g_unit.value(), 2),
                  fmtDouble(g_tvm.value(), 2),
                  fmtDouble(g_tvm_e.value(), 2),
                  fmtDouble(g_ansor.value(), 2),
                  fmtDouble(g_amos.value(), 2)});
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nPaper geomeans vs CuDNN: AMOS 2.38x, AutoTVM-Expert\n"
        "1.83x (= 2.38/1.30), Ansor 1.33x, UNIT 0.48x. Expected\n"
        "shape: AMOS > AutoTVM-Expert > Ansor > CuDNN > UNIT.\n");
    return 0;
}
