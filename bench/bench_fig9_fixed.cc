/**
 * @file
 * Fig. 9 reproduction: flexible vs fixed mappings on the ResNet-18
 * C2D layers (A100-like, batch 16) — the CuDNN library proxy,
 * AMOS-fixM1 (pinned im2col mapping), AMOS-fixM2 (pinned fuse_hw
 * mapping), and full AMOS, all relative to CuDNN.
 */

#include "bench_common.hh"

int
main()
{
    using namespace amos;
    bench::banner(
        "Fig. 9: fixed-mapping ablation on A100 (relative to CuDNN)");

    auto hw = hw::a100();
    auto tuning = bench::benchTuning();
    Compiler compiler(hw, tuning);
    TextTable table({"layer", "cudnn(ms)", "fixM1", "fixM2", "amos",
                     "amos mapping"});
    bench::GeoMean g_m1, g_m2, g_amos;
    for (const auto &layer : ops::resnet18ConvLayers(16)) {
        auto comp = layer.build();
        double cudnn =
            baselines::libraryProxy(comp, hw).milliseconds;
        auto m1 = baselines::amosFixedMapping(
            comp, hw, baselines::FixedMapping::Im2col, tuning);
        auto m2 = baselines::amosFixedMapping(
            comp, hw, baselines::FixedMapping::FuseHW, tuning);
        auto full = compiler.compile(comp);
        g_m1.add(cudnn / m1.milliseconds);
        g_m2.add(cudnn / m2.milliseconds);
        g_amos.add(cudnn / full.milliseconds);
        table.addRow({layer.label, fmtDouble(cudnn, 4),
                      fmtDouble(cudnn / m1.milliseconds, 2),
                      fmtDouble(cudnn / m2.milliseconds, 2),
                      fmtDouble(cudnn / full.milliseconds, 2),
                      full.mappingSignature});
    }
    table.addRow({"GEO", "1.00", fmtDouble(g_m1.value(), 2),
                  fmtDouble(g_m2.value(), 2),
                  fmtDouble(g_amos.value(), 2), "-"});
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nPaper: fixM1 and fixM2 lose 36.8%% and 31.9%% of AMOS's\n"
        "performance respectively; both still beat CuDNN on most\n"
        "layers because schedules are tuned. Expected shape:\n"
        "AMOS >= fixM1, fixM2 > CuDNN.\n");
    return 0;
}
