/**
 * @file
 * Table 2 reproduction: how many operators of each real DNN the
 * XLA-style pattern matcher maps to Tensor Core versus how many AMOS
 * maps, with the failing-example category per network.
 */

#include "bench_common.hh"
#include "graph/network.hh"

namespace amos {
namespace {

struct Row
{
    Network net;
    std::size_t paperTotal;
    std::size_t paperXla;
    std::size_t paperOurs;
    const char *failedExample;
};

} // namespace
} // namespace amos

int
main()
{
    using namespace amos;
    bench::banner("Table 2: operators mapped to Tensor Core");

    std::vector<Row> rows;
    rows.push_back({shuffleNet(1), 70, 6, 50, "depthwise conv"});
    rows.push_back({resnet50(1), 71, 15, 54, "strided conv"});
    rows.push_back({mobileNetV1(1), 30, 7, 29, "grouped conv"});
    rows.push_back({bertBase(1), 204, 42, 84, "part of attention"});
    rows.push_back({miLstm(1), 11, 0, 9, "linear"});

    auto hw = hw::v100();
    NetworkCompileOptions options;
    options.tuning = bench::benchTuning();
    options.tuning.generations = 3;
    options.tuning.maxMappings = 8;

    TextTable table({"network", "total (paper)", "xla (paper)",
                     "amos (paper)", "xla failed example"});
    for (auto &row : rows) {
        auto xla = compileNetwork(row.net, hw, NetworkCompiler::Xla,
                                  options);
        auto ours = compileNetwork(row.net, hw, NetworkCompiler::Amos,
                                   options);
        auto cell = [](int measured, std::size_t paper) {
            return std::to_string(measured) + " (" +
                   std::to_string(paper) + ")";
        };
        table.addRow({row.net.name,
                      cell(ours.totalOps, row.paperTotal),
                      cell(xla.mappedOps, row.paperXla),
                      cell(ours.mappedOps, row.paperOurs),
                      row.failedExample});
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nAMOS maps every tensor operator; XLA's templates only\n"
        "fire on exact GEMMs and stride-1 standard convolutions, so\n"
        "depthwise/grouped/strided variants and batch-1 linears\n"
        "(matrix-vector) fall back to the scalar units.\n");
    return 0;
}
