/**
 * @file
 * google-benchmark microbenchmarks of the framework itself: mapping
 * enumeration, Algorithm-1 validation, kernel lowering, simulation,
 * functional mapped execution, and end-to-end tuning throughput.
 * These measure the compiler, not the modelled hardware.
 */

#include <benchmark/benchmark.h>

#include <chrono>

#include "explore/tuner.hh"
#include "hw/hardware.hh"
#include "isa/intrinsics.hh"
#include "mapping/execute.hh"
#include "mapping/generate.hh"
#include "ops/conv_layers.hh"
#include "ops/operators.hh"
#include "schedule/profile.hh"
#include "sim/simulator.hh"

namespace amos {
namespace {

TensorComputation
benchConv()
{
    return ops::resnet18ConvLayers(16)[5].build();
}

void
BM_EnumerateMappings(benchmark::State &state)
{
    auto conv = benchConv();
    auto intr = isa::wmma(16, 16, 16);
    for (auto _ : state) {
        auto mappings = enumerateMappings(conv, intr, {});
        benchmark::DoNotOptimize(mappings);
    }
}
BENCHMARK(BM_EnumerateMappings);

void
BM_ValidateMatching(benchmark::State &state)
{
    auto conv = benchConv();
    auto intr = isa::wmma(16, 16, 16);
    auto x = softwareAccessMatrix(conv);
    auto z = intr.compute.accessMatrix();
    auto y = BitMatrix::fromRows({
        {1, 0, 1, 1, 0, 0, 0},
        {0, 1, 0, 0, 0, 0, 0},
        {0, 0, 0, 0, 1, 1, 1},
    });
    for (auto _ : state) {
        auto res = validateMatching(x, y, z);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_ValidateMatching);

void
BM_BuildMappingPlan(benchmark::State &state)
{
    auto conv = benchConv();
    auto intr = isa::wmma(16, 16, 16);
    ComputeMapping m;
    m.groups = {{0, 2, 3}, {1}, {4, 5, 6}};
    for (auto _ : state) {
        MappingPlan plan(conv, intr, m);
        benchmark::DoNotOptimize(plan);
    }
}
BENCHMARK(BM_BuildMappingPlan);

void
BM_LowerAndSimulate(benchmark::State &state)
{
    auto conv = benchConv();
    auto hw = hw::v100();
    ComputeMapping m;
    m.groups = {{0, 2, 3}, {1}, {4, 5, 6}};
    MappingPlan plan(conv, hw.primaryIntrinsic(), m);
    auto sched = expertSchedule(plan, hw);
    for (auto _ : state) {
        auto prof = lowerKernel(plan, sched, hw);
        auto sim = simulateKernel(prof, hw);
        benchmark::DoNotOptimize(sim);
    }
}
BENCHMARK(BM_LowerAndSimulate);

void
BM_FunctionalMappedExecution(benchmark::State &state)
{
    ops::ConvParams pr;
    pr.batch = 2;
    pr.in_channels = 2;
    pr.out_channels = 4;
    pr.out_h = 4;
    pr.out_w = 4;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto conv = ops::makeConv2d(pr);
    ComputeMapping m;
    m.groups = {{0, 2, 3}, {1}, {4, 5, 6}};
    MappingPlan plan(conv, isa::wmmaTiny(), m);
    for (auto _ : state) {
        float err = mappedVsReferenceError(plan);
        benchmark::DoNotOptimize(err);
    }
}
BENCHMARK(BM_FunctionalMappedExecution);

void
BM_TuneConv(benchmark::State &state)
{
    auto conv = benchConv();
    auto hw = hw::v100();
    TuneOptions options;
    options.population = 16;
    options.generations = static_cast<int>(state.range(0));
    options.measureTopK = 4;
    options.numThreads = 1;
    for (auto _ : state) {
        auto result = tune(conv, hw, options);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_TuneConv)->Arg(2)->Arg(8);

/**
 * Parallel-tuner scaling: the same fixed-seed search (population 64)
 * at increasing worker counts. The tuned result is bit-identical
 * across rows (per-candidate RNG streams + ordered reductions), so
 * the real-time column directly reads as wall-clock speedup over the
 * numThreads=1 row. Counters report the speedup explicitly.
 */
void
BM_TuneConvThreads(benchmark::State &state)
{
    auto conv = benchConv();
    auto hw = hw::v100();
    TuneOptions options;
    options.population = 64;
    options.generations = 4;
    options.measureTopK = 8;
    options.numThreads = static_cast<int>(state.range(0));

    static double serial_seconds = 0.0;
    double best_cycles = 0.0;
    auto start = std::chrono::steady_clock::now();
    for (auto _ : state) {
        auto result = tune(conv, hw, options);
        best_cycles = result.bestCycles;
        benchmark::DoNotOptimize(result);
    }
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    double mean_seconds =
        state.iterations() > 0
            ? elapsed.count() /
                  static_cast<double>(state.iterations())
            : 0.0;
    if (options.numThreads == 1 && mean_seconds > 0.0)
        serial_seconds = mean_seconds;
    if (serial_seconds > 0.0 && mean_seconds > 0.0)
        state.counters["speedup_vs_1t"] =
            serial_seconds / mean_seconds;
    state.counters["best_cycles"] = best_cycles;
}
BENCHMARK(BM_TuneConvThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace amos

BENCHMARK_MAIN();
