#!/usr/bin/env python3
"""Gate bench results against committed baselines.

Compares every ``*_eps`` metric (elements/second, higher is better)
of a freshly produced BENCH_<name>.json against the checked-in
baseline under bench/baselines/.  A metric regresses when it drops
more than ``--tolerance`` (default 25%) below the baseline; any
regression fails the run with exit code 1 so CI blocks the merge.

Metrics only present on one side are reported but never fail the
gate, so adding a bench column does not require lock-step baseline
updates.  Refresh a baseline by re-running the bench with
``AMOS_BENCH_DIR=bench/baselines`` and committing the result; do so
from a full (non ``--tiny``) run — the 1-repetition tiny smoke is
microsecond-scale and far too noisy to gate on.

``--require SUBSTR`` (repeatable) asserts that at least one *current*
metric key contains SUBSTR.  New-side metrics are normally advisory
("not gated"), which would let a silently dropped bench column — say
the quantized i8 workloads failing to enumerate — pass unnoticed
until the baseline is refreshed; a required substring turns that
silence into a hard failure.

Usage:
    python3 bench/check_regression.py BENCH_execute.json \
        [--baseline bench/baselines/BENCH_execute.json] \
        [--tolerance 0.25] [--require gemm_i8 --require conv2d_i8]
"""

import argparse
import json
import os
import sys


def flatten_eps(metrics, prefix=""):
    """Yield (dotted-key, value) for every throughput leaf.

    Matches ``_eps`` anywhere in the key so suffixed variants such as
    ``reference_compiled_eps_1t`` are gated too; ratio metrics
    (speedups, scaling factors) are machine-relative noise and are
    deliberately skipped.
    """
    for key, value in sorted(metrics.items()):
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            yield from flatten_eps(value, prefix=f"{path}.")
        elif isinstance(value, (int, float)) and "_eps" in key:
            yield path, float(value)


def load_eps(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return dict(flatten_eps(doc.get("metrics", {}))), doc


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: bench/baselines/<same name>)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("AMOS_BENCH_TOLERANCE", "0.25")),
        help="allowed fractional drop below baseline (default 0.25)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="SUBSTR",
        help="fail unless some current metric key contains SUBSTR "
        "(repeatable)",
    )
    args = parser.parse_args(argv)

    baseline_path = args.baseline
    if baseline_path is None:
        here = os.path.dirname(os.path.abspath(__file__))
        baseline_path = os.path.join(
            here, "baselines", os.path.basename(args.current)
        )
    current, current_doc = load_eps(args.current)

    missing = [
        want
        for want in args.require
        if not any(want in key for key in current)
    ]
    if missing:
        print("check_regression: required metric(s) absent from "
              f"{args.current}: {', '.join(missing)}")
        return 1

    if not os.path.exists(baseline_path):
        print(f"check_regression: no baseline at {baseline_path}; "
              "nothing to gate")
        return 0

    baseline, _ = load_eps(baseline_path)

    regressions = []
    compared = 0
    for key, base in sorted(baseline.items()):
        if key not in current:
            print(f"  [gone]    {key} (baseline only — not gated)")
            continue
        cur = current[key]
        compared += 1
        if base <= 0:
            continue
        ratio = cur / base
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            regressions.append((key, base, cur, ratio))
        print(f"  [{status:>10}] {key}: {base:.3g} -> {cur:.3g} "
              f"({ratio:.2f}x)")
    for key in sorted(set(current) - set(baseline)):
        print(f"  [new]     {key} = {current[key]:.3g} (not gated)")

    if not compared:
        print("check_regression: no overlapping *_eps metrics; "
              "baseline is stale?")
        return 1
    if regressions:
        print(f"\ncheck_regression: {len(regressions)} metric(s) "
              f"regressed more than {args.tolerance:.0%} vs "
              f"{baseline_path}:")
        for key, base, cur, ratio in regressions:
            print(f"  {key}: {base:.3g} -> {cur:.3g} ({ratio:.2f}x)")
        return 1
    print(f"\ncheck_regression: {compared} metric(s) within "
          f"{args.tolerance:.0%} of {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
