/**
 * @file
 * Throughput/latency benchmark for the compilation service.
 *
 * For 1, 4, and 16 concurrent clients, replays a fixed workload of
 * distinct small GEMM compilations against a CompileService twice:
 *
 *   cold — a fresh service with an empty cache: every request runs a
 *          full mapping exploration (or coalesces onto one).
 *   warm — a second service started on the cold run's disk tier with
 *          warm-on-start: every request is a memory-tier replay.
 *
 * Prints a human table to stderr, the standard envelope to stdout,
 * and writes BENCH_serve.json ($AMOS_BENCH_DIR or the working
 * directory).
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "serve/service.hh"
#include "support/str_utils.hh"

namespace {

using namespace amos;
using Clock = std::chrono::steady_clock;

/** Distinct small GEMMs: enough work to explore, fast to replay. */
std::vector<serve::CompileRequest>
workload()
{
    std::vector<serve::CompileRequest> requests;
    for (std::int64_t m : {32, 64, 128})
        for (std::int64_t n : {32, 64})
            for (std::int64_t k : {32, 64}) {
                serve::CompileRequest req;
                req.op = "gemm";
                req.dims = {{"m", m}, {"n", n}, {"k", k}};
                req.hw = "v100";
                req.generations = 4;
                requests.push_back(std::move(req));
            }
    return requests;
}

struct PhaseResult
{
    std::string phase;
    int clients = 0;
    std::size_t requests = 0;
    std::size_t failures = 0;
    double wallMs = 0.0;
    double reqPerSec = 0.0;
    serve::ServeStats stats;
};

/**
 * Each client walks the whole workload once, starting at its own
 * offset so concurrent clients mix distinct and identical requests
 * the way a shared service would see them.
 */
PhaseResult
runPhase(serve::CompileService &service, const std::string &phase,
         int clients, int rounds)
{
    auto requests = workload();
    PhaseResult result;
    result.phase = phase;
    result.clients = clients;
    std::vector<std::size_t> failures(clients, 0);

    auto start = Clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            for (int round = 0; round < rounds; ++round)
                for (std::size_t i = 0; i < requests.size(); ++i) {
                    const auto &req =
                        requests[(i + c * 3) % requests.size()];
                    if (!service.serve(req).ok)
                        ++failures[c];
                }
        });
    for (auto &t : threads)
        t.join();
    result.wallMs = std::chrono::duration<double, std::milli>(
                        Clock::now() - start)
                        .count();
    result.requests = requests.size() *
                      static_cast<std::size_t>(clients) *
                      static_cast<std::size_t>(rounds);
    for (auto f : failures)
        result.failures += f;
    result.reqPerSec =
        1000.0 * static_cast<double>(result.requests) /
        result.wallMs;
    result.stats = service.stats();
    return result;
}

Json
toJson(const PhaseResult &r)
{
    Json out = Json::object();
    out.set("phase", Json(r.phase));
    out.set("clients", Json(static_cast<std::int64_t>(r.clients)));
    out.set("requests",
            Json(static_cast<std::int64_t>(r.requests)));
    out.set("failures",
            Json(static_cast<std::int64_t>(r.failures)));
    out.set("wall_ms", Json(r.wallMs));
    out.set("req_per_s", Json(r.reqPerSec));
    out.set("compiles", Json(static_cast<std::int64_t>(
                            r.stats.compiles)));
    out.set("coalesced", Json(static_cast<std::int64_t>(
                             r.stats.coalesced)));
    out.set("memory_hits", Json(static_cast<std::int64_t>(
                               r.stats.memoryHits)));
    out.set("p50_ms", Json(r.stats.p50Ms));
    out.set("p95_ms", Json(r.stats.p95Ms));
    out.set("p99_ms", Json(r.stats.p99Ms));
    return out;
}

/** Conv configs: expensive generation-0 pools, worth warm-starting. */
serve::CompileRequest
convRequest(std::int64_t batch, std::int64_t cout)
{
    serve::CompileRequest req;
    req.op = "conv2d";
    req.dims = {{"batch", batch}, {"cin", 32},   {"cout", cout},
                {"size", 14},     {"kernel", 3}};
    req.hw = "v100";
    req.generations = 4;
    return req;
}

struct FamilyResult
{
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double compilePerSec = 0.0;
};

/**
 * The warm-start cold phase: prime a service with donor shapes,
 * then compile held-out members of the same family — every one a
 * cache miss — and measure the per-request compile latency. With
 * warm-start on, the donors seed each miss's generation 0.
 */
FamilyResult
runFamilyPhase(WarmStartMode mode)
{
    serve::ServeOptions options;
    options.workers = 2;
    options.warmStart = mode;
    serve::CompileService service(options);

    for (std::int64_t batch : {4, 8, 16})
        for (std::int64_t cout : {32, 64})
            service.serve(convRequest(batch, cout));

    std::vector<double> latencies;
    for (std::int64_t batch : {6, 12})
        for (std::int64_t cout : {32, 48, 64}) {
            auto t0 = Clock::now();
            auto outcome = service.serve(convRequest(batch, cout));
            latencies.push_back(
                std::chrono::duration<double, std::milli>(
                    Clock::now() - t0)
                    .count());
            if (!outcome.ok || outcome.servedBy != "compile")
                std::fprintf(stderr,
                             "family phase: unexpected %s\n",
                             outcome.servedBy.c_str());
        }

    std::sort(latencies.begin(), latencies.end());
    FamilyResult result;
    result.p50Ms = latencies[latencies.size() / 2];
    result.p99Ms = latencies.back();
    double total_ms = 0.0;
    for (double l : latencies)
        total_ms += l;
    result.compilePerSec =
        1000.0 * static_cast<double>(latencies.size()) / total_ms;
    return result;
}

} // namespace

int
main()
{
    auto dir = std::filesystem::temp_directory_path() /
               ("amos_bench_serve_" + std::to_string(::getpid()));
    std::vector<PhaseResult> results;

    std::fprintf(stderr,
                 "%-6s %-8s %10s %10s %10s %10s\n", "phase",
                 "clients", "req/s", "p50 ms", "p95 ms", "p99 ms");
    for (int clients : {1, 4, 16}) {
        auto shard_dir =
            (dir / std::to_string(clients)).string();
        std::filesystem::remove_all(shard_dir);

        serve::ServeOptions options;
        options.workers = 4;
        options.cache.diskDir = shard_dir;

        PhaseResult cold, warm;
        {
            serve::CompileService service(options);
            cold = runPhase(service, "cold", clients, 1);
            service.drain();
        }
        {
            // Restart on the persisted disk tier: the warm phase
            // never explores, it replays cached plans.
            serve::CompileService service(options);
            warm = runPhase(service, "warm", clients, 4);
        }
        for (const auto &r : {cold, warm})
            std::fprintf(stderr,
                         "%-6s %-8d %10.1f %10.3f %10.3f %10.3f\n",
                         r.phase.c_str(), r.clients, r.reqPerSec,
                         r.stats.p50Ms, r.stats.p95Ms,
                         r.stats.p99Ms);
        results.push_back(cold);
        results.push_back(warm);
    }
    std::filesystem::remove_all(dir);

    // Warm-start cold-phase columns: repeat-family conv compiles
    // (cache misses, donors present) without and with neighbor
    // seeding.
    auto fam_cold = runFamilyPhase(WarmStartMode::Off);
    auto fam_warm = runFamilyPhase(WarmStartMode::Neighbors);
    std::fprintf(stderr,
                 "%-8s %-8s %10s %10.1f %10.3f %21.3f\n", "famcold",
                 "1", "", fam_cold.compilePerSec, fam_cold.p50Ms,
                 fam_cold.p99Ms);
    std::fprintf(stderr,
                 "%-8s %-8s %10s %10.1f %10.3f %21.3f\n", "famwarm",
                 "1", "", fam_warm.compilePerSec, fam_warm.p50Ms,
                 fam_warm.p99Ms);

    bench::BenchReport report("serve");
    report.setConfig(
        "workload",
        Json("12 distinct gemm configs, v100, generations=4"));
    report.setConfig("workers", Json(static_cast<std::int64_t>(4)));
    report.setConfig("clients", Json("1,4,16"));
    Json arr = Json::array();
    for (const auto &r : results)
        arr.push(toJson(r));
    report.setMetric("results", std::move(arr));
    Json family = Json::object();
    family.set("workload",
               Json("6 held-out conv2d configs after 6 donors"));
    family.set("cold_p50_ms", Json(fam_cold.p50Ms));
    family.set("cold_p99_ms", Json(fam_cold.p99Ms));
    family.set("warm_p50_ms", Json(fam_warm.p50Ms));
    family.set("warm_p99_ms", Json(fam_warm.p99Ms));
    family.set("p99_improvement",
               Json(1.0 - fam_warm.p99Ms /
                              std::max(fam_cold.p99Ms, 1e-9)));
    // Gated like every other throughput: compiles per second over
    // the family's cold phase, without and with neighbor seeding.
    family.set("family_cold_compile_eps",
               Json(fam_cold.compilePerSec));
    family.set("family_warmstart_compile_eps",
               Json(fam_warm.compilePerSec));
    report.setMetric("warmstart_family", std::move(family));
    std::printf("%s\n", report.toJson().dump().c_str());
    report.write();

    std::size_t failed = 0;
    for (const auto &r : results)
        failed += r.failures;
    return failed == 0 ? 0 : 1;
}
