/**
 * @file
 * Table 5 reproduction: the software-hardware compute mapping AMOS
 * selects for every distinct C2D layer of ResNet-18 (batch 16) on
 * the A100-like accelerator, printed in the paper's
 * [i1, i2, r1] <- [...] notation.
 */

#include "bench_common.hh"

int
main()
{
    using namespace amos;
    bench::banner(
        "Table 5: mappings chosen for ResNet-18 C2D layers (A100)");

    Compiler compiler(hw::a100(), bench::benchTuning());
    TextTable table({"layer", "n", "c", "k", "p/q", "r/s", "stride",
                     "chosen compute mapping"});
    for (const auto &layer : ops::resnet18ConvLayers(16)) {
        auto comp = layer.build();
        auto result = compiler.compile(comp);
        table.addRow({layer.label, std::to_string(layer.batch),
                      std::to_string(layer.in_channels),
                      std::to_string(layer.out_channels),
                      std::to_string(layer.height),
                      std::to_string(layer.kernel),
                      std::to_string(layer.stride),
                      result.computeMapping});
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nThe paper's Table 5 reports 8 distinct mapping types over\n"
        "these 12 layers; divisibility of the fused extents by 16\n"
        "drives the choice (e.g. 14x14 layers fuse n,p,q so that\n"
        "16*196 = 3136 tiles evenly).\n");
    return 0;
}
