/**
 * @file
 * Fig. 8a reproduction: C2D on the AVX-512 VNNI CPU, AMOS relative
 * to the TVM hand-written-template proxy, for the ResNet-18 layers
 * C0..C11.
 */

#include "bench_common.hh"
#include "graph/network.hh"

int
main()
{
    using namespace amos;
    bench::banner(
        "Fig. 8a: C2D on Xeon Silver 4110 (AVX-512 VNNI) vs TVM");

    auto hw = hw::xeonSilver4110();
    Compiler compiler(hw, bench::benchTuning());
    TextTable table({"layer", "tvm(ms)", "amos(ms)", "speedup"});
    bench::GeoMean geo;
    for (const auto &layer : ops::resnet18ConvLayers(16)) {
        // VNNI consumes u8 x i8: Fig. 8a runs the quantized network,
        // so tensorization stays dtype-legal on the dot unit.
        auto comp = ops::quantizedVariant(layer.build());
        // TVM's VNNI template: the hand-written im2col-style
        // mapping with its own tuning, as in Sec. 7.5.
        TuneOptions tvm_budget = bench::benchTuning();
        tvm_budget.population = 12;
        tvm_budget.generations = 5;
        auto tvm = baselines::amosFixedMapping(
            comp, hw, baselines::FixedMapping::FuseHW, tvm_budget);
        auto amos_res = compiler.compile(comp);
        double speedup = tvm.milliseconds / amos_res.milliseconds;
        geo.add(speedup);
        table.addRow({layer.label, fmtDouble(tvm.milliseconds, 4),
                      fmtDouble(amos_res.milliseconds, 4),
                      fmtDouble(speedup, 2)});
    }
    table.addRow({"GEO", "-", "-", fmtDouble(geo.value(), 2)});
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nPaper: AMOS beats the TVM template on all layers except\n"
        "C2, with a 1.37x average speedup.\n");
    return 0;
}
