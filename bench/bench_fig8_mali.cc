/**
 * @file
 * Fig. 8b reproduction: absolute performance (GOPS) of AutoTVM and
 * AMOS on the Mali G76 dot units for the seven MobileNet-V2 layer
 * pairs (a C2D and its depthwise sibling per stage). AutoTVM's
 * hand-written Bifrost template is less optimised for the dot
 * intrinsic and fails outright on some depthwise layers.
 */

#include "bench_common.hh"

int
main()
{
    using namespace amos;
    bench::banner(
        "Fig. 8b: absolute GOPS on Mali G76 (AutoTVM vs AMOS)");

    auto hw = hw::maliG76();
    Compiler compiler(hw, bench::benchTuning());
    TextTable table({"layer", "kind", "autotvm GOPS", "amos GOPS",
                     "speedup"});

    int idx = 0;
    for (const auto &layer : ops::mobilenetV2Layers(1)) {
        ++idx;
        struct Case
        {
            const char *kind;
            TensorComputation comp;
        };
        std::vector<Case> cases;
        // The Mali dot units consume i8: Fig. 8b runs the quantized
        // network, keeping tensorization dtype-legal.
        cases.push_back({"conv2d",
                         ops::quantizedVariant(layer.build(),
                                               DataType::I8,
                                               DataType::I8)});
        cases.push_back(
            {"depthwise",
             ops::quantizedVariant(layer.buildDepthwise(),
                                   DataType::I8, DataType::I8)});
        for (auto &c : cases) {
            // AutoTVM's Bifrost template: scalar-unit code; on
            // depthwise layers 2-4 the paper reports internal
            // errors, which we model as an order-of-magnitude
            // efficiency collapse of the generated kernel.
            bool autotvm_broken =
                std::string(c.kind) == "depthwise" &&
                (idx >= 2 && idx <= 4);
            auto autotvm = baselines::scalarExecution(
                c.comp, hw, autotvm_broken ? 0.02 : 0.35,
                "autotvm");
            auto amos_res = compiler.compile(c.comp);
            double autotvm_gops =
                bench::gflopsAt(c.comp, autotvm.milliseconds);
            double amos_gops =
                bench::gflopsAt(c.comp, amos_res.milliseconds);
            table.addRow(
                {"L" + std::to_string(idx), c.kind,
                 fmtDouble(autotvm_gops, 1),
                 fmtDouble(amos_gops, 1),
                 fmtDouble(amos_gops / autotvm_gops, 2)});
        }
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nPaper: AMOS reaches 392-1030 GOPS on conv2d against\n"
        "18-34 for AutoTVM (up to 25.04x); depthwise layers 2-4\n"
        "fail to compile under AutoTVM's template.\n");
    return 0;
}
