/**
 * @file
 * Sec. 7.5 "New Accelerators" reproduction: mapping counts and
 * compilation of 3D convolution on the three virtual spatial
 * accelerators (AXPY, GEMV, and pointwise-CONV intrinsics), the
 * three levels of BLAS-style hardware the paper probes generality
 * with.
 */

#include "bench_common.hh"
#include "ops/operators.hh"

int
main()
{
    using namespace amos;
    bench::banner("Sec. 7.5: C3D on the virtual accelerators");

    ops::ConvParams pr;
    pr.batch = 2;
    pr.in_channels = 16;
    pr.out_channels = 32;
    pr.out_h = 14;
    pr.out_w = 14;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto c3d = ops::makeConv3d(pr, 8, 3);

    struct Target
    {
        HardwareSpec hw;
        std::size_t paperMappings;
    };
    std::vector<Target> targets = {
        {hw::virtualAxpyAccel(), 15},
        {hw::virtualGemvAccel(), 7},
        {hw::virtualConvAccel(), 31},
    };

    TextTable table({"accelerator", "intrinsic",
                     "addressable (paper)", "permissive", "best ms",
                     "best mapping"});
    for (const auto &target : targets) {
        Compiler compiler(target.hw, bench::benchTuning());
        auto count = compiler.countMappings(c3d);
        GeneratorOptions permissive;
        permissive.policy = LegalityPolicy::Permissive;
        auto n_perm =
            enumerateMappings(c3d,
                              target.hw.primaryIntrinsic(),
                              permissive)
                .size();
        auto result = compiler.compile(c3d);
        table.addRow(
            {target.hw.name,
             target.hw.primaryIntrinsic().name(),
             std::to_string(count) + " (" +
                 std::to_string(target.paperMappings) + ")",
             std::to_string(n_perm),
             fmtDouble(result.milliseconds, 4),
             result.mappingSignature});
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nEvery virtual accelerator accepts C3D through its own\n"
        "intrinsic with multiple valid mappings; the paper reports\n"
        "15 / 7 / 31 mapping types for AXPY / GEMV / CONV. See\n"
        "EXPERIMENTS.md for the enumeration-rule caveats.\n");
    return 0;
}
