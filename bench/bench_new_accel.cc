/**
 * @file
 * Sec. 7.5 "New Accelerators" reproduction: mapping counts and
 * compilation of 3D convolution on the three virtual spatial
 * accelerators (AXPY, GEMV, and pointwise-CONV intrinsics), the
 * three levels of BLAS-style hardware the paper probes generality
 * with — plus the AMX-style tile unit, which exists only as a JSON
 * ISA spec (src/isa/specs/amx.json) and exercises the same pipeline
 * through the declarative-target path.
 */

#include "bench_common.hh"
#include "ops/operators.hh"

int
main()
{
    using namespace amos;
    bench::banner(
        "Sec. 7.5: C3D on the virtual accelerators + spec-only AMX");

    ops::ConvParams pr;
    pr.batch = 2;
    pr.in_channels = 16;
    pr.out_channels = 32;
    pr.out_h = 14;
    pr.out_w = 14;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto c3d = ops::makeConv3d(pr, 8, 3);

    // The AMX tile unit is u8xi8 -> i32, so it compiles the
    // quantized variant of the same operator.
    auto qc3d = ops::quantizedVariant(c3d);

    struct Target
    {
        HardwareSpec hw;
        std::size_t paperMappings; ///< 0 = not in the paper
        bool int8;
    };
    std::vector<Target> targets = {
        {hw::virtualAxpyAccel(), 15, false},
        {hw::virtualGemvAccel(), 7, false},
        {hw::virtualConvAccel(), 31, false},
        {hw::byName("amx"), 0, true},
    };

    TextTable table({"accelerator", "intrinsic",
                     "addressable (paper)", "permissive", "best ms",
                     "best mapping"});
    for (const auto &target : targets) {
        const auto &comp = target.int8 ? qc3d : c3d;
        Compiler compiler(target.hw, bench::benchTuning());
        auto count = compiler.countMappings(comp);
        GeneratorOptions permissive;
        permissive.policy = LegalityPolicy::Permissive;
        auto n_perm =
            enumerateMappings(comp,
                              target.hw.primaryIntrinsic(),
                              permissive)
                .size();
        auto result = compiler.compile(comp);
        table.addRow(
            {target.hw.name,
             target.hw.primaryIntrinsic().name(),
             std::to_string(count) +
                 (target.paperMappings != 0
                      ? " (" + std::to_string(target.paperMappings) +
                            ")"
                      : " (-)"),
             std::to_string(n_perm),
             fmtDouble(result.milliseconds, 4),
             result.mappingSignature});
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nEvery virtual accelerator accepts C3D through its own\n"
        "intrinsic with multiple valid mappings; the paper reports\n"
        "15 / 7 / 31 mapping types for AXPY / GEMV / CONV. The AMX\n"
        "row is this artifact's spec-only target: it is derived\n"
        "entirely from src/isa/specs/amx.json and compiles the\n"
        "quantized C3D through the identical pipeline. See\n"
        "EXPERIMENTS.md for the enumeration-rule caveats.\n");
    return 0;
}
