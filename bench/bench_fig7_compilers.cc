/**
 * @file
 * Fig. 7e reproduction: whole-network performance of TVM and AMOS
 * relative to UNIT on the A100-like accelerator for ResNet-18,
 * ResNet-50, and MobileNet-V1 at batch sizes 16 and 32.
 */

#include "bench_common.hh"
#include "graph/network.hh"

int
main()
{
    using namespace amos;
    bench::banner(
        "Fig. 7e: TVM and AMOS relative to UNIT on A100");

    auto hw = hw::a100();
    NetworkCompileOptions options;
    options.tuning = bench::benchTuning();
    options.tuning.generations = 5;
    options.tuning.maxMappings = 16;

    TextTable table({"network", "batch", "unit(ms)", "tvm",
                     "amos"});
    for (std::int64_t batch : {16, 32}) {
        std::vector<Network> nets = {resnet18(batch),
                                     resnet50(batch),
                                     mobileNetV1(batch)};
        for (const auto &net : nets) {
            auto unit_res = compileNetwork(
                net, hw, NetworkCompiler::Unit, options);
            auto tvm_res = compileNetwork(net, hw,
                                          NetworkCompiler::Tvm,
                                          options);
            auto amos_res = compileNetwork(
                net, hw, NetworkCompiler::Amos, options);
            table.addRow(
                {net.name, std::to_string(batch),
                 fmtDouble(unit_res.totalMs, 3),
                 fmtDouble(unit_res.totalMs / tvm_res.totalMs, 2),
                 fmtDouble(unit_res.totalMs / amos_res.totalMs,
                           2)});
        }
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nPaper: AMOS best on most cases; TVM loses on strided\n"
        "convolutions (no Tensor Core path) and UNIT on batch\n"
        "parallelism (batch never mapped to the intrinsic).\n");
    return 0;
}
