/**
 * @file
 * Table 6 reproduction: the number of feasible software-hardware
 * mappings AMOS finds for each operator on Tensor Core, under both
 * legality policies, next to the paper's published counts.
 */

#include "bench_common.hh"
#include "isa/intrinsics.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"

namespace amos {
namespace {

using ops::ConvParams;

struct Row
{
    const char *name;
    TensorComputation comp;
    std::size_t paper;
};

std::vector<Row>
buildRows()
{
    ConvParams pr;
    pr.batch = 2;
    pr.in_channels = 2;
    pr.out_channels = 4;
    pr.out_h = 2;
    pr.out_w = 2;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    ConvParams dil = pr;
    dil.dilation = 2;
    ConvParams t2 = pr;
    t2.stride = 2;

    std::vector<Row> rows;
    rows.push_back({"GMV", ops::makeGemv(8, 8), 1});
    rows.push_back({"GMM", ops::makeGemm(4, 4, 4), 1});
    rows.push_back({"C1D", ops::makeConv1d(2, 2, 4, 4, 3), 6});
    rows.push_back({"C2D", ops::makeConv2d(pr), 35});
    rows.push_back({"C3D", ops::makeConv3d(pr, 2, 3), 180});
    rows.push_back({"T2D", ops::makeTransposedConv2d(t2), 7});
    rows.push_back({"GRP", ops::makeGroupConv2d(pr, 2), 35});
    rows.push_back({"DIL", ops::makeDilatedConv2d(dil), 35});
    rows.push_back({"DEP", ops::makeDepthwiseConv2d(pr, 2), 11});
    rows.push_back({"CAP", ops::makeCapsuleConv2d(pr, 2), 105});
    rows.push_back({"BCV", ops::makeBatchedConv2d(pr), 11});
    rows.push_back({"GFC", ops::makeGroupedFC(2, 2, 4, 4), 1});
    rows.push_back({"MEN", ops::makeMean(4, 4), 1});
    rows.push_back({"VAR", ops::makeVariance(4, 4), 1});
    rows.push_back({"SCN", ops::makeScan(4, 4), 1});
    return rows;
}

} // namespace
} // namespace amos

int
main()
{
    using namespace amos;
    bench::banner("Table 6: feasible mappings on Tensor Core");

    auto intr = isa::wmmaTiny();
    TextTable table({"op", "paper", "addressable", "permissive"});
    for (auto &row : buildRows()) {
        GeneratorOptions addressable;
        addressable.policy = LegalityPolicy::Addressable;
        GeneratorOptions permissive;
        permissive.policy = LegalityPolicy::Permissive;
        auto n_addr =
            enumerateMappings(row.comp, intr, addressable).size();
        auto n_perm =
            enumerateMappings(row.comp, intr, permissive).size();
        table.addRow({row.name, std::to_string(row.paper),
                      std::to_string(n_addr),
                      std::to_string(n_perm)});
    }
    std::printf("%s", table.toString().c_str());
    std::printf(
        "\nEvery enumerated mapping passes Algorithm 1; counts are\n"
        "structural (independent of iteration extents). Deltas to\n"
        "the paper's column are analysed in EXPERIMENTS.md.\n");
    return 0;
}
