/**
 * @file
 * Functional-simulator throughput: scalar interpreter vs the compiled
 * stride-walk engine vs the native-codegen JIT tier (see
 * docs/execution.md), on the three executors (reference,
 * mapped-direct, mapped-packed) at 1 and 4 threads.
 *
 * Reports elements/s per workload x engine x thread count plus the
 * headline single-thread speedups into BENCH_execute.json. The
 * gemm_i8/conv2d_i8 workloads run the integer-dot discipline
 * (u8/i8 -> i32) end to end, mapped onto the int8 intrinsics, so the
 * quantized engines are latency-gated alongside the float ones. Every
 * engine gets one untimed warmup run first, so the JIT columns
 * measure kernel execution, not one-off compilation. Run with --tiny
 * for the CI smoke (small shapes, one repetition); CI diffs the
 * resulting *_eps metrics against bench/baselines/ to gate
 * regressions.
 */

#include <chrono>
#include <cstring>
#include <functional>
#include <limits>

#include "bench_common.hh"
#include "isa/intrinsics.hh"
#include "jit/jit.hh"
#include "mapping/execute.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "tensor/reference.hh"

namespace amos {
namespace {

/** Best-of-reps wall-clock seconds of one run of fn. */
double
timeBest(int reps, const std::function<void()> &fn)
{
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

struct Workload
{
    std::string name;
    TensorComputation comp;
    /// Intrinsic the mapped executors enumerate against; must be
    /// dtype-legal for comp (wmma for float, VNNI/Mali dot for int8).
    Intrinsic intr;
};

int
runBench(bool tiny)
{
    const int reps = tiny ? 1 : 5;
    bench::BenchReport report("execute", reps);
    report.setConfig("tiny", Json(tiny));
    report.setConfig("threads_parallel", Json(std::int64_t{4}));
    const bool jitAvailable =
        JitEngine::global().compilerAvailable();
    report.setConfig("jit_compiler_available", Json(jitAvailable));

    std::vector<Workload> workloads;
    if (tiny) {
        workloads.push_back(
            {"gemm", ops::makeGemm(8, 8, 8), isa::wmmaTiny()});
        workloads.push_back(
            {"conv2d",
             ops::makeConv2d({1, 2, 4, 4, 4, 3, 3, 1, 1,
                              DataType::F16}),
             isa::wmmaTiny()});
        workloads.push_back(
            {"gemv", ops::makeGemv(16, 16), isa::wmmaTiny()});
        workloads.push_back({"gemm_i8",
                             ops::makeQuantizedGemm(8, 8, 8),
                             isa::avx512Vnni()});
        workloads.push_back(
            {"conv2d_i8",
             ops::makeQuantizedConv2d({1, 2, 4, 4, 4, 3, 3, 1, 1,
                                       DataType::F16}),
             isa::maliDot()});
    } else {
        workloads.push_back(
            {"gemm", ops::makeGemm(64, 64, 64), isa::wmmaTiny()});
        workloads.push_back(
            {"conv2d",
             ops::makeConv2d({1, 8, 16, 14, 14, 3, 3, 1, 1,
                              DataType::F16}),
             isa::wmmaTiny()});
        workloads.push_back(
            {"gemv", ops::makeGemv(256, 256), isa::wmmaTiny()});
        workloads.push_back({"gemm_i8",
                             ops::makeQuantizedGemm(64, 64, 64),
                             isa::avx512Vnni()});
        workloads.push_back(
            {"conv2d_i8",
             ops::makeQuantizedConv2d({1, 8, 16, 14, 14, 3, 3, 1, 1,
                                       DataType::F16}),
             isa::maliDot()});
    }

    for (const auto &wl : workloads) {
        const auto &comp = wl.comp;
        auto inputs = makePatternInputs(comp, 2022);
        std::vector<const Buffer *> ptrs;
        for (const auto &b : inputs)
            ptrs.push_back(&b);
        const double elems =
            static_cast<double>(comp.totalIterations());
        report.setConfig(wl.name + "_elements",
                         Json(comp.totalIterations()));

        auto referenceEps = [&](const ExecOptions &opts) {
            Buffer out(comp.output());
            // Untimed warmup: pulls the JIT compile (and any lazy
            // plan compilation) out of the timed region.
            out.fill(0.0f);
            referenceExecute(comp, ptrs, out, opts);
            double s = timeBest(reps, [&]() {
                out.fill(0.0f);
                referenceExecute(comp, ptrs, out, opts);
            });
            return elems / s;
        };
        ExecOptions interp;
        interp.forceInterpreter = true;
        ExecOptions serial;
        ExecOptions parallel;
        parallel.numThreads = 4;
        ExecOptions jit;
        jit.engine = ExecEngine::Jit;

        Json row = Json::object();
        double eps_interp = referenceEps(interp);
        double eps_1t = referenceEps(serial);
        double eps_4t = referenceEps(parallel);
        double eps_jit = referenceEps(jit);
        row.set("reference_interpreter_eps", Json(eps_interp));
        row.set("reference_compiled_eps_1t", Json(eps_1t));
        row.set("reference_compiled_eps_4t", Json(eps_4t));
        row.set("reference_jit_eps", Json(eps_jit));
        row.set("reference_speedup_1t", Json(eps_1t / eps_interp));
        row.set("reference_parallel_scaling_4t",
                Json(eps_4t / eps_1t));
        row.set("reference_jit_speedup_vs_walk",
                Json(eps_jit / eps_1t));

        // Mapped executors on the first enumerated plan for the
        // workload's dtype-legal intrinsic — the same differential
        // workloads the execute tests sweep.
        auto plans = enumeratePlans(comp, wl.intr, {});
        if (!plans.empty()) {
            const auto &plan = plans[0];
            auto mappedEps = [&](const ExecOptions &opts,
                                 bool packed) {
                Buffer out(comp.output());
                out.fill(0.0f);
                if (packed)
                    executeMappedPacked(plan, ptrs, out, opts);
                else
                    executeMappedDirect(plan, ptrs, out, opts);
                double s = timeBest(reps, [&]() {
                    out.fill(0.0f);
                    if (packed)
                        executeMappedPacked(plan, ptrs, out, opts);
                    else
                        executeMappedDirect(plan, ptrs, out, opts);
                });
                return elems / s;
            };
            double d_interp = mappedEps(interp, false);
            double d_1t = mappedEps(serial, false);
            double d_4t = mappedEps(parallel, false);
            double d_jit = mappedEps(jit, false);
            row.set("direct_interpreter_eps", Json(d_interp));
            row.set("direct_compiled_eps_1t", Json(d_1t));
            row.set("direct_compiled_eps_4t", Json(d_4t));
            row.set("direct_jit_eps", Json(d_jit));
            row.set("direct_speedup_1t", Json(d_1t / d_interp));
            double p_interp = mappedEps(interp, true);
            double p_1t = mappedEps(serial, true);
            double p_jit = mappedEps(jit, true);
            row.set("packed_interpreter_eps", Json(p_interp));
            row.set("packed_compiled_eps_1t", Json(p_1t));
            row.set("packed_jit_eps", Json(p_jit));
            row.set("packed_speedup_1t", Json(p_1t / p_interp));
        }
        report.setMetric(wl.name, row);

        std::printf("%-8s interp %.3g e/s | compiled 1t %.3g e/s "
                    "(%.1fx) | 4t %.3g e/s | jit %.3g e/s (%.1fx "
                    "vs walk)\n",
                    wl.name.c_str(), eps_interp, eps_1t,
                    eps_1t / eps_interp, eps_4t, eps_jit,
                    eps_jit / eps_1t);
    }

    report.write();
    return 0;
}

} // namespace
} // namespace amos

int
main(int argc, char **argv)
{
    bool tiny = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--tiny") == 0)
            tiny = true;
    return amos::runBench(tiny);
}
