/**
 * @file
 * Fig. 5 reproduction: performance-model validation on the Tensor
 * Core GPU using the ResNet-18 2D-convolution workload. Prints the
 * exploration series (ground-truth vs model-predicted GFLOPS per
 * step), the overall pairwise rank accuracy and top-40% recall, and
 * the recall-vs-top-rate table (the paper's inset).
 */

#include "bench_common.hh"
#include "explore/stats.hh"
#include "explore/trace_io.hh"

int
main(int argc, char **argv)
{
    using namespace amos;
    bench::banner("Fig. 5: performance-model validation (V100, C2D)");

    auto hw = hw::v100();
    // The paper uses 2D convolution layers from ResNet-18; merge the
    // traces of several layers for a ~100-step series.
    std::vector<ExplorationStep> all_steps;
    auto layers = ops::resnet18ConvLayers(16);

    bench::BenchReport report("fig5");
    report.setConfig("hw", Json("v100"));
    report.setConfig("workload", Json("resnet18 conv2d layers"));
    Json layer_metrics = Json::array();

    TextTable per_layer({"layer", "steps", "pairwise-acc",
                         "top-40%-recall", "geo-rel-err"});
    for (int idx : {1, 5, 8, 11}) {
        const auto &layer = layers[static_cast<std::size_t>(idx)];
        auto comp = layer.build();
        TuneOptions options = bench::benchTuning(1000 + idx);
        options.generations = 10;
        options.measureTopK = 6;
        auto result = tune(comp, hw, options);
        if (argc > 1) {
            writeTextFile(std::string(argv[1]) + "/fig5_" +
                              layer.label + ".csv",
                          traceToCsv(result.trace));
            // The per-generation convergence/diversity series rides
            // alongside the predicted/measured trace.
            writeTextFile(std::string(argv[1]) + "/fig5_" +
                              layer.label + "_telemetry.csv",
                          telemetryToCsv(result.telemetry));
        }
        per_layer.addRow(
            {layer.label, std::to_string(result.trace.size()),
             fmtDouble(pairwiseAccuracy(result.trace), 3),
             fmtDouble(topFractionRecall(result.trace, 0.4), 3),
             fmtDouble(geoMeanRelativeError(result.trace), 2)});
        Json lm = Json::object();
        lm.set("layer", Json(layer.label));
        lm.set("steps", Json(static_cast<std::int64_t>(
                            result.trace.size())));
        lm.set("pairwise_accuracy",
               Json(pairwiseAccuracy(result.trace)));
        lm.set("top_40pct_recall",
               Json(topFractionRecall(result.trace, 0.4)));
        lm.set("geo_mean_relative_error",
               Json(geoMeanRelativeError(result.trace)));
        lm.set("generations", Json(static_cast<std::int64_t>(
                                  result.telemetry.size())));
        layer_metrics.push(std::move(lm));
        double flops = static_cast<double>(comp.flopCount());
        for (auto step : result.trace) {
            // Re-key the series to GFLOPS as the paper plots it.
            step.predictedCycles =
                flops / (cyclesToMs(step.predictedCycles, hw) * 1e6);
            step.measuredCycles =
                flops / (cyclesToMs(step.measuredCycles, hw) * 1e6);
            all_steps.push_back(step);
        }
    }
    std::printf("%s", per_layer.toString().c_str());

    // The exploration series (subsampled): ground truth vs model.
    bench::banner("exploration series (GFLOPS)");
    TextTable series({"step", "ground-truth", "model"});
    for (std::size_t i = 0; i < all_steps.size(); i += 8) {
        series.addRow({std::to_string(i),
                       fmtDouble(all_steps[i].measuredCycles, 0),
                       fmtDouble(all_steps[i].predictedCycles, 0)});
    }
    std::printf("%s", series.toString().c_str());

    // Recall under different top rates (the paper's inset table:
    // 0.25 / 0.706 / 0.808 / 0.914 / 0.864 / 0.846 for 0.1..0.6).
    // Rank statistics are computed on cycles, so re-derive from the
    // raw traces of one layer.
    auto comp = layers[1].build();
    auto result = tune(comp, hw, bench::benchTuning(77));
    bench::banner("recall vs top rate (paper inset)");
    TextTable recall({"top rate", "recall"});
    for (double q : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
        recall.addRow(
            {fmtDouble(q, 1),
             fmtDouble(topFractionRecall(result.trace, q), 3)});
    }
    std::printf("%s", recall.toString().c_str());
    std::printf(
        "\nPaper: overall pairwise accuracy 85.7%%, top-40%% recall\n"
        "91.4%%; predictions track the trend, not absolute values.\n");

    report.setMetric("layers", std::move(layer_metrics));
    report.write();
    return 0;
}
