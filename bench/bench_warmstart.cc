/**
 * @file
 * Warm-start exploration benchmark: how much of a cold search's
 * budget does shape-transfer seeding save?
 *
 * Cold-tunes a family of donor shapes into a tuning cache, then
 * tunes held-out family members twice — cold (random generation 0)
 * and warm (generation 0 seeded from the nearest cached winners) —
 * and records the best-so-far-vs-generation curve of each run. The
 * headline number is the generation fraction: the first warm
 * generation whose incumbent matches the cold run's *final* best,
 * over the cold run's generation count (ISSUE target: <= 0.5).
 *
 * Both searches are deterministic (fixed seeds), so the curves and
 * the generation fraction are machine-independent; the *_eps
 * throughputs are wall-clock and gated by check_regression.py like
 * every other bench. Exits non-zero when the warm search needs more
 * than half the cold budget, so CI fails on a seeding regression.
 *
 * Prints a human table to stderr, the standard envelope to stdout,
 * and writes BENCH_warmstart.json ($AMOS_BENCH_DIR or the working
 * directory).
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "explore/tuner.hh"
#include "explore/warm_start.hh"
#include "ops/operators.hh"

namespace {

using namespace amos;
using Clock = std::chrono::steady_clock;

/** Conv family: rich mapping pools make generation 0 expensive. */
TensorComputation
familyConv(std::int64_t batch, std::int64_t cout)
{
    ops::ConvParams pr;
    pr.batch = batch;
    pr.in_channels = 32;
    pr.out_channels = cout;
    pr.out_h = 14;
    pr.out_w = 14;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    return ops::makeConv2d(pr);
}

/** Best-so-far curve: the incumbent after each main-loop generation. */
std::vector<double>
searchCurve(const TuneResult &result)
{
    std::vector<double> curve;
    for (const auto &row : result.telemetry)
        if (row.phase == "search")
            curve.push_back(row.bestMeasuredCycles);
    return curve;
}

/** First 1-based generation whose incumbent is <= target cycles. */
std::size_t
generationsToReach(const std::vector<double> &curve, double target)
{
    for (std::size_t i = 0; i < curve.size(); ++i)
        if (curve[i] <= target)
            return i + 1;
    return curve.size();
}

Json
curveJson(const std::vector<double> &curve)
{
    Json arr = Json::array();
    for (double v : curve)
        arr.push(Json(v));
    return arr;
}

struct TargetResult
{
    std::string name;
    TuneResult cold;
    TuneResult warm;
    double coldSeconds = 0.0;
    double warmSeconds = 0.0;
    double genFraction = 1.0;
    /// False when the cold search already converges in generation
    /// 1: there is no budget left for seeding to save, so the
    /// fraction is 1.0 by construction and the gate skips it.
    bool qualifies = false;
};

} // namespace

int
main(int argc, char **argv)
{
    bool tiny = argc > 1 && std::string(argv[1]) == "--tiny";
    const int reps = tiny ? 1 : 3;
    auto hw = hw::v100();
    TuneOptions base = bench::benchTuning();

    // Donor family: cold-tune once, cache the winners.
    std::vector<std::pair<std::int64_t, std::int64_t>> donor_shapes =
        {{4, 32}, {8, 32}, {16, 32}, {8, 64}};
    TuningCache cache;
    for (auto [batch, cout] : donor_shapes) {
        auto comp = familyConv(batch, cout);
        auto result = tune(comp, hw, base);
        expect(result.tensorizable, "bench_warmstart: donor shape "
                                    "failed to tensorize");
        CacheEntry entry;
        entry.intrinsicName = result.bestPlan->intrinsic().name();
        entry.mapping = result.bestPlan->mapping();
        entry.schedule = result.bestSchedule;
        entry.cycles = result.bestCycles;
        cache.insert(TuningCache::keyFor(comp, hw),
                     std::move(entry));
    }
    std::vector<WarmSeed> donors;
    for (auto &[key, entry] : cache.snapshot()) {
        WarmSeed seed;
        seed.sourceKey = key;
        seed.intrinsicName = entry.intrinsicName;
        seed.mapping = entry.mapping;
        seed.schedule = entry.schedule;
        donors.push_back(std::move(seed));
    }

    // Held-out family members: same operator family, new dims.
    std::vector<std::pair<std::int64_t, std::int64_t>> targets = {
        {6, 32}, {12, 32}, {8, 48}};
    if (tiny)
        targets.resize(1);

    std::fprintf(stderr, "%-14s %12s %12s %8s %8s %8s\n", "target",
                 "cold cycles", "warm cycles", "cold gen",
                 "warm gen", "frac");
    std::vector<TargetResult> results;
    double cold_total_s = 0.0, warm_total_s = 0.0;
    for (auto [batch, cout] : targets) {
        auto comp = familyConv(batch, cout);
        TargetResult row;
        row.name = "conv2d_b" + std::to_string(batch) + "_c" +
                   std::to_string(cout);

        TuneOptions warm_options = base;
        warm_options.warmStart.mode = WarmStartMode::Neighbors;
        warm_options.warmStart.seeds =
            nearestSeeds(shapeFeatureOf(comp, hw), donors);

        // Best-of-reps wall clock; the search outcome is identical
        // every rep (fixed seed), so only the timing varies.
        double cold_s = 0.0, warm_s = 0.0;
        for (int r = 0; r < reps; ++r) {
            auto t0 = Clock::now();
            row.cold = tune(comp, hw, base);
            double s = std::chrono::duration<double>(Clock::now() -
                                                     t0)
                           .count();
            cold_s = r == 0 ? s : std::min(cold_s, s);
            t0 = Clock::now();
            row.warm = tune(comp, hw, warm_options);
            s = std::chrono::duration<double>(Clock::now() - t0)
                    .count();
            warm_s = r == 0 ? s : std::min(warm_s, s);
        }
        row.coldSeconds = cold_s;
        row.warmSeconds = warm_s;
        cold_total_s += cold_s;
        warm_total_s += warm_s;

        // Curve-to-curve comparison: the cold run's final *search*
        // incumbent, not its post-exploit best — both runs get the
        // same exploit refinement after the GA ends.
        auto cold_curve = searchCurve(row.cold);
        auto warm_curve = searchCurve(row.warm);
        double cold_final =
            cold_curve.empty() ? row.cold.bestCycles
                               : cold_curve.back();
        auto cold_gens = generationsToReach(cold_curve, cold_final);
        auto warm_gens = generationsToReach(warm_curve, cold_final);
        bool reached = !warm_curve.empty() &&
                       warm_curve[warm_gens - 1] <= cold_final;
        row.genFraction =
            reached ? static_cast<double>(warm_gens) /
                          static_cast<double>(
                              std::max<std::size_t>(cold_gens, 1))
                    : 1.0;
        row.qualifies = cold_gens >= 2;

        std::fprintf(stderr, "%-14s %12.0f %12.0f %8zu %8zu %8.2f\n",
                     row.name.c_str(), row.cold.bestCycles,
                     row.warm.bestCycles, cold_gens, warm_gens,
                     row.genFraction);
        results.push_back(std::move(row));
    }

    bench::BenchReport report("warmstart", reps);
    report.setConfig("family", Json("conv2d, v100, cin=32, 14x14x3x3"));
    report.setConfig("donors", Json(static_cast<std::int64_t>(
                                   donor_shapes.size())));
    report.setConfig("tuning", Json("population=20 generations=8 "
                                    "measureTopK=6 seed=2022"));
    report.setConfig("tiny", Json(tiny));

    double worst_fraction = 0.0;
    std::size_t qualifying = 0;
    Json rows = Json::array();
    for (const auto &row : results) {
        Json entry = Json::object();
        entry.set("target", Json(row.name));
        entry.set("cold_curve", curveJson(searchCurve(row.cold)));
        entry.set("warm_curve", curveJson(searchCurve(row.warm)));
        entry.set("cold_best_cycles", Json(row.cold.bestCycles));
        entry.set("warm_best_cycles", Json(row.warm.bestCycles));
        entry.set("cold_measurements",
                  Json(static_cast<std::int64_t>(
                      row.cold.measurements)));
        entry.set("warm_measurements",
                  Json(static_cast<std::int64_t>(
                      row.warm.measurements)));
        entry.set("warm_seeded", Json(static_cast<std::int64_t>(
                                     row.warm.warmStartSeeded)));
        entry.set("gen_fraction", Json(row.genFraction));
        entry.set("gate_qualifies", Json(row.qualifies));
        rows.push(std::move(entry));
        if (row.qualifies) {
            ++qualifying;
            worst_fraction =
                std::max(worst_fraction, row.genFraction);
        }
    }
    report.setMetric("targets", std::move(rows));
    report.setMetric("worst_gen_fraction", Json(worst_fraction));
    report.setMetric("gate_qualifying_targets",
                     Json(static_cast<std::int64_t>(qualifying)));
    // Gated throughputs: whole-family compile rate, cold vs warm.
    report.setMetric("cold_compile_eps",
                     Json(static_cast<double>(results.size()) /
                          cold_total_s));
    report.setMetric("warm_compile_eps",
                     Json(static_cast<double>(results.size()) /
                          warm_total_s));

    std::printf("%s\n", report.toJson().dump().c_str());
    report.write();

    // The tentpole's acceptance bar: the warm search reaches the
    // cold search's final incumbent within half the generations on
    // every family member whose cold search actually progresses
    // (cold runs that converge in generation 1 leave nothing to
    // save). Deterministic, so a failure here is a seeding
    // regression, not noise.
    if (qualifying == 0) {
        std::fprintf(stderr,
                     "FAIL: no target's cold search progressed "
                     "past generation 1 — gate has no signal\n");
        return 1;
    }
    if (worst_fraction > 0.5) {
        std::fprintf(stderr,
                     "FAIL: warm search needed %.2f of the cold "
                     "generation budget (limit 0.5)\n",
                     worst_fraction);
        return 1;
    }
    return 0;
}
