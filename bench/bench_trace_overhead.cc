/**
 * @file
 * bench_trace_overhead — measure what the tracing layer costs.
 *
 * Runs the same tuneWithPlans workload four ways: everything
 * disabled (every TraceSpan reduces to one relaxed atomic load),
 * tracing globally enabled, per-request tracing via a TraceContext,
 * and the always-on flight recorder with a per-request FlightScope
 * (the speculative-recording path every served request takes).
 * The flight-recorder overhead is the number CI gates: it must stay
 * under 5% so speculative recording can stay on permanently.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "explore/tuner.hh"
#include "hw/hardware.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "support/flight_recorder.hh"
#include "support/logging.hh"
#include "support/trace.hh"

using namespace amos;

namespace {

double
tuneOnce(const std::vector<MappingPlan> &plans,
         const HardwareSpec &hw, const TuneOptions &options)
{
    auto start = std::chrono::steady_clock::now();
    auto result = tuneWithPlans(plans, hw, options);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    expect(result.tensorizable, "bench: workload not tensorizable");
    return ms;
}

double
medianOf(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

} // namespace

int
main()
{
    auto hw = hw::v100();
    auto comp = ops::makeConv2d([] {
        ops::ConvParams p;
        p.batch = 1;
        p.in_channels = 32;
        p.out_channels = 32;
        p.out_h = p.out_w = 14;
        p.kernel_h = p.kernel_w = 3;
        return p;
    }());
    std::vector<MappingPlan> plans;
    for (const auto &intr : hw.intrinsics) {
        if (comp.inputs().size() != intr.compute.numSrcs() ||
            comp.combine() != intr.compute.combine())
            continue;
        for (auto &plan : enumeratePlans(comp, intr, {}))
            plans.push_back(std::move(plan));
    }

    TuneOptions options = bench::benchTuning();
    options.generations = 4;
    options.numThreads = 4;

    const int kRounds = 7;
    auto run = [&](const char *label, auto setup, auto teardown) {
        std::vector<double> samples;
        for (int r = 0; r < kRounds; ++r) {
            setup();
            samples.push_back(tuneOnce(plans, hw, options));
            teardown();
        }
        double ms = medianOf(samples);
        std::printf("%-22s %8.2f ms\n", label, ms);
        return ms;
    };

    bench::banner("trace overhead (tuneWithPlans, conv2d 32x32x14)");
    // Warm-up: touch every code path once before timing.
    tuneOnce(plans, hw, options);

    double off = run(
        "everything off",
        [] { FlightRecorder::global().setEnabled(false); },
        [] { FlightRecorder::global().setEnabled(true); });
    double on = run(
        "tracing on (global)",
        [] { Tracer::global().setEnabled(true); },
        [] {
            Tracer::global().setEnabled(false);
            Tracer::global().clear();
        });
    std::vector<std::unique_ptr<TraceContext>> ctx;
    double per_request = run(
        "per-request context",
        [&] { ctx.push_back(std::make_unique<TraceContext>("b")); },
        [&] {
            ctx.clear();
            Tracer::global().releaseTrace("b");
        });
    // The serving path: recorder on (the default), one FlightScope
    // per request, spans land in the per-thread rings.
    std::unique_ptr<FlightScope> scope;
    double flight = run(
        "flight recorder",
        [&] {
            scope = std::make_unique<FlightScope>(
                FlightRecorder::global().beginRequest());
        },
        [&] {
            scope.reset();
            FlightRecorder::global().clear();
        });

    std::printf("\noverhead: global %+.1f%%, per-request %+.1f%%, "
                "flight %+.1f%%\n",
                (on / off - 1.0) * 100.0,
                (per_request / off - 1.0) * 100.0,
                (flight / off - 1.0) * 100.0);
    std::printf("acceptance: flight-recorder overhead must stay "
                "< 5%% (gated in CI); the enabled tracer figures "
                "bound the opt-in worst case\n");

    bench::BenchReport report("trace_overhead", kRounds);
    report.setConfig("workload",
                     Json("tuneWithPlans conv2d 32x32x14, v100"));
    report.setConfig("generations", Json(4));
    report.setConfig("threads", Json(4));
    report.setMetric("off_ms", Json(off));
    report.setMetric("global_ms", Json(on));
    report.setMetric("per_request_ms", Json(per_request));
    report.setMetric("flight_ms", Json(flight));
    report.setMetric("global_overhead_pct",
                     Json((on / off - 1.0) * 100.0));
    report.setMetric("per_request_overhead_pct",
                     Json((per_request / off - 1.0) * 100.0));
    report.setMetric("flight_overhead_pct",
                     Json((flight / off - 1.0) * 100.0));
    // Runs/second views so check_regression.py's *_eps gate covers
    // the baseline and the flight-enabled column.
    report.setMetric("off_eps", Json(1000.0 / off));
    report.setMetric("flight_eps", Json(1000.0 / flight));
    report.write();
    return 0;
}
