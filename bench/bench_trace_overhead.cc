/**
 * @file
 * bench_trace_overhead — measure what the tracing layer costs.
 *
 * Runs the same tuneWithPlans workload three ways: tracing disabled
 * (every TraceSpan reduces to one relaxed atomic load), tracing
 * globally enabled, and per-request tracing via a TraceContext.
 * The disabled overhead is the number that matters: it must stay
 * under 5% so instrumentation can live in the hot path permanently.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "explore/tuner.hh"
#include "hw/hardware.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "support/logging.hh"
#include "support/trace.hh"

using namespace amos;

namespace {

double
tuneOnce(const std::vector<MappingPlan> &plans,
         const HardwareSpec &hw, const TuneOptions &options)
{
    auto start = std::chrono::steady_clock::now();
    auto result = tuneWithPlans(plans, hw, options);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    expect(result.tensorizable, "bench: workload not tensorizable");
    return ms;
}

double
medianOf(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

} // namespace

int
main()
{
    auto hw = hw::v100();
    auto comp = ops::makeConv2d([] {
        ops::ConvParams p;
        p.batch = 1;
        p.in_channels = 32;
        p.out_channels = 32;
        p.out_h = p.out_w = 14;
        p.kernel_h = p.kernel_w = 3;
        return p;
    }());
    std::vector<MappingPlan> plans;
    for (const auto &intr : hw.intrinsics) {
        if (comp.inputs().size() != intr.compute.numSrcs() ||
            comp.combine() != intr.compute.combine())
            continue;
        for (auto &plan : enumeratePlans(comp, intr, {}))
            plans.push_back(std::move(plan));
    }

    TuneOptions options = bench::benchTuning();
    options.generations = 4;
    options.numThreads = 4;

    const int kRounds = 7;
    auto run = [&](const char *label, auto setup, auto teardown) {
        std::vector<double> samples;
        for (int r = 0; r < kRounds; ++r) {
            setup();
            samples.push_back(tuneOnce(plans, hw, options));
            teardown();
        }
        double ms = medianOf(samples);
        std::printf("%-22s %8.2f ms\n", label, ms);
        return ms;
    };

    bench::banner("trace overhead (tuneWithPlans, conv2d 32x32x14)");
    // Warm-up: touch every code path once before timing.
    tuneOnce(plans, hw, options);

    double off = run(
        "tracing off", [] {}, [] {});
    double on = run(
        "tracing on (global)",
        [] { Tracer::global().setEnabled(true); },
        [] {
            Tracer::global().setEnabled(false);
            Tracer::global().clear();
        });
    std::vector<std::unique_ptr<TraceContext>> ctx;
    double per_request = run(
        "per-request context",
        [&] { ctx.push_back(std::make_unique<TraceContext>("b")); },
        [&] {
            ctx.clear();
            Tracer::global().releaseTrace("b");
        });

    std::printf("\noverhead: global %+.1f%%, per-request %+.1f%%\n",
                (on / off - 1.0) * 100.0,
                (per_request / off - 1.0) * 100.0);
    std::printf("acceptance: disabled-path overhead must be < 5%% "
                "(measured against itself: 0%% by construction; the "
                "enabled figures above bound the worst case)\n");

    bench::BenchReport report("trace_overhead", kRounds);
    report.setConfig("workload",
                     Json("tuneWithPlans conv2d 32x32x14, v100"));
    report.setConfig("generations", Json(4));
    report.setConfig("threads", Json(4));
    report.setMetric("off_ms", Json(off));
    report.setMetric("global_ms", Json(on));
    report.setMetric("per_request_ms", Json(per_request));
    report.setMetric("global_overhead_pct",
                     Json((on / off - 1.0) * 100.0));
    report.setMetric("per_request_overhead_pct",
                     Json((per_request / off - 1.0) * 100.0));
    report.write();
    return 0;
}
