/**
 * @file
 * Tests for the tracing + metrics subsystem: span recording and
 * nesting, Chrome trace-event export, per-request trace contexts
 * (including propagation through parallelFor), concurrency under a
 * 16-thread hammer (run under TSan in CI), and the MetricsRegistry.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "explore/tuner.hh"
#include "hw/hardware.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "support/flight_recorder.hh"
#include "support/metrics.hh"
#include "support/thread_pool.hh"
#include "support/trace.hh"

using namespace amos;

namespace {

/** RAII guard: global tracing on for the test, clean slate around. */
struct GlobalTracing
{
    GlobalTracing()
    {
        Tracer::global().clear();
        Tracer::global().setEnabled(true);
    }
    ~GlobalTracing()
    {
        Tracer::global().setEnabled(false);
        Tracer::global().clear();
    }
};

SpanRecord
findSpan(const std::vector<SpanRecord> &spans, const std::string &name)
{
    for (const auto &span : spans)
        if (span.name == name)
            return span;
    ADD_FAILURE() << "span '" << name << "' not recorded";
    return {};
}

} // namespace

TEST(Trace, DisabledSpanRecordsNothing)
{
    Tracer::global().clear();
    ASSERT_FALSE(Tracer::global().enabled());
    {
        TraceSpan span("test.disabled", "test");
        EXPECT_FALSE(span.active());
        span.arg("ignored", std::string("value"));
    }
    EXPECT_EQ(Tracer::global().spanCount(), 0u);
}

TEST(Trace, GlobalEnableRecordsSpansWithArgs)
{
    GlobalTracing guard;
    {
        TraceSpan span("test.outer", "test");
        EXPECT_TRUE(span.active());
        span.arg("key", std::string("value"));
        span.arg("count", static_cast<std::int64_t>(42));
    }
    auto spans = Tracer::global().collect();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "test.outer");
    EXPECT_EQ(spans[0].category, "test");
    ASSERT_EQ(spans[0].args.size(), 2u);
    EXPECT_EQ(spans[0].args[0].first, "key");
    EXPECT_EQ(spans[0].args[0].second, "value");
    EXPECT_EQ(spans[0].args[1].second, "42");
    EXPECT_GE(spans[0].durUs, 0.0);
}

TEST(Trace, NestedSpansAreTimeContained)
{
    GlobalTracing guard;
    {
        TraceSpan outer("test.outer", "test");
        {
            TraceSpan inner("test.inner", "test");
        }
    }
    auto spans = Tracer::global().collect();
    ASSERT_EQ(spans.size(), 2u);
    auto outer = findSpan(spans, "test.outer");
    auto inner = findSpan(spans, "test.inner");
    EXPECT_GE(inner.startUs, outer.startUs);
    EXPECT_LE(inner.startUs + inner.durUs,
              outer.startUs + outer.durUs + 1e-3);
}

TEST(Trace, ChromeJsonShape)
{
    GlobalTracing guard;
    {
        TraceSpan span("test.event", "test");
        span.arg("k", std::string("v"));
    }
    Json doc = Tracer::global().toChromeJson();
    EXPECT_EQ(doc.get("displayTimeUnit").asString(), "ms");
    const Json &events = doc.get("traceEvents");
    ASSERT_EQ(events.size(), 1u);
    const Json &event = events.at(0);
    EXPECT_EQ(event.get("name").asString(), "test.event");
    EXPECT_EQ(event.get("cat").asString(), "test");
    EXPECT_EQ(event.get("ph").asString(), "X");
    EXPECT_TRUE(event.has("ts"));
    EXPECT_TRUE(event.has("dur"));
    EXPECT_TRUE(event.has("pid"));
    EXPECT_TRUE(event.has("tid"));
    EXPECT_EQ(event.get("args").get("k").asString(), "v");
}

TEST(Trace, ContextRecordsWhileGlobalOff)
{
    Tracer::global().clear();
    ASSERT_FALSE(Tracer::global().enabled());
    {
        TraceContext ctx("req-1");
        TraceSpan span("test.tagged", "test");
        EXPECT_TRUE(span.active());
    }
    {
        // Context gone: back to the disabled fast path.
        TraceSpan span("test.untagged", "test");
        EXPECT_FALSE(span.active());
    }
    auto spans = Tracer::global().collect();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].traceId, "req-1");
    Tracer::global().releaseTrace("req-1");
    EXPECT_EQ(Tracer::global().spanCount(), 0u);
}

TEST(Trace, ContextsNestInnermostWins)
{
    Tracer::global().clear();
    TraceContext outer("outer-id");
    EXPECT_EQ(TraceContext::currentId(), "outer-id");
    {
        TraceContext inner("inner-id");
        EXPECT_EQ(TraceContext::currentId(), "inner-id");
        TraceSpan span("test.inner", "test");
    }
    EXPECT_EQ(TraceContext::currentId(), "outer-id");
    auto spans = Tracer::global().collect();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].traceId, "inner-id");
    Tracer::global().releaseTrace("inner-id");
}

TEST(Trace, ContextPropagatesThroughParallelFor)
{
    Tracer::global().clear();
    {
        TraceContext ctx("fanout");
        parallelFor(
            16,
            [](std::size_t) {
                TraceSpan span("test.worker", "test");
            },
            4);
    }
    auto spans = Tracer::global().collect();
    ASSERT_EQ(spans.size(), 16u);
    for (const auto &span : spans)
        EXPECT_EQ(span.traceId, "fanout");
    Tracer::global().releaseTrace("fanout");
}

TEST(Trace, SpanTreeNestsByTimeContainment)
{
    Tracer::global().clear();
    {
        TraceContext ctx("tree");
        TraceSpan root("test.root", "test");
        {
            TraceSpan childA("test.child_a", "test");
            {
                TraceSpan grand("test.grandchild", "test");
            }
        }
        {
            TraceSpan childB("test.child_b", "test");
        }
    }
    Json tree = Tracer::global().spanTreeFor("tree");
    EXPECT_EQ(tree.get("trace_id").asString(), "tree");
    const Json &roots = tree.get("spans");
    ASSERT_EQ(roots.size(), 1u);
    const Json &root = roots.at(0);
    EXPECT_EQ(root.get("name").asString(), "test.root");
    const Json &children = root.get("children");
    ASSERT_EQ(children.size(), 2u);
    EXPECT_EQ(children.at(0).get("name").asString(), "test.child_a");
    EXPECT_EQ(children.at(1).get("name").asString(), "test.child_b");
    const Json &grandchildren = children.at(0).get("children");
    ASSERT_EQ(grandchildren.size(), 1u);
    EXPECT_EQ(grandchildren.at(0).get("name").asString(),
              "test.grandchild");
    Tracer::global().releaseTrace("tree");
}

TEST(Trace, ReleaseTraceDropsOnlyThatId)
{
    Tracer::global().clear();
    {
        TraceContext ctx("keep");
        TraceSpan span("test.keep", "test");
    }
    {
        TraceContext ctx("drop");
        TraceSpan span("test.drop", "test");
    }
    EXPECT_EQ(Tracer::global().releaseTrace("drop"), 1u);
    auto spans = Tracer::global().collect();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].traceId, "keep");
    Tracer::global().releaseTrace("keep");
}

/**
 * 16 threads hammering span creation, context switches, and
 * concurrent exports; run under TSan in CI. Assertions are minimal
 * on purpose — the test exists to surface races, not behaviour.
 */
TEST(Trace, ConcurrentSpanHammer)
{
    GlobalTracing guard;
    const int kThreads = 16;
    const int kSpansPerThread = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            TraceContext ctx("hammer-" + std::to_string(t % 4));
            for (int i = 0; i < kSpansPerThread; ++i) {
                TraceSpan span("test.hammer", "test");
                span.arg("i", static_cast<std::int64_t>(i));
                if (i % 50 == 0) {
                    // Concurrent export while writers are active.
                    Tracer::global().collect();
                    Tracer::global().spanCount();
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(Tracer::global().spanCount(),
              static_cast<std::size_t>(kThreads * kSpansPerThread));
    // Thread ids must be distinct per thread.
    std::set<std::uint32_t> tids;
    for (const auto &span : Tracer::global().collect())
        tids.insert(span.tid);
    EXPECT_GE(tids.size(), 2u);
}

/**
 * Acceptance: a traced tune emits the full pipeline span taxonomy
 * with enumerate/validate/sample/model-eval/measure correctly nested
 * under the tune root.
 */
TEST(Trace, TracedTuneEmitsPipelineSpans)
{
    Tracer::global().clear();
    auto hw = hw::v100();
    auto comp = ops::makeGemm(64, 64, 64);
    std::vector<MappingPlan> plans;
    for (const auto &intr : hw.intrinsics) {
        if (comp.inputs().size() != intr.compute.numSrcs() ||
            comp.combine() != intr.compute.combine())
            continue;
        for (auto &plan : enumeratePlans(comp, intr, {}))
            plans.push_back(std::move(plan));
    }
    ASSERT_FALSE(plans.empty());
    TuneOptions options;
    options.generations = 2;
    options.population = 8;
    options.measureTopK = 2;
    options.numThreads = 4;
    {
        TraceContext ctx("tune-req");
        auto result = tuneWithPlans(plans, hw, options);
        ASSERT_TRUE(result.tensorizable);
    }
    auto spans = Tracer::global().collect();
    std::set<std::string> names;
    for (const auto &span : spans) {
        EXPECT_EQ(span.traceId, "tune-req");
        names.insert(span.name);
    }
    for (const char *expected :
         {"explore.tune", "explore.generation", "explore.model_eval",
          "explore.measure", "schedule.sample", "schedule.expert",
          "sim.measure"})
        EXPECT_TRUE(names.count(expected))
            << "missing span " << expected;

    // The tree roots at explore.tune and contains a generation span
    // which in turn contains the model evaluation.
    Json tree = Tracer::global().spanTreeFor("tune-req");
    const Json &roots = tree.get("spans");
    ASSERT_GE(roots.size(), 1u);
    EXPECT_EQ(roots.at(0).get("name").asString(), "explore.tune");
    bool found_gen = false;
    const Json &children = roots.at(0).get("children");
    for (std::size_t i = 0; i < children.size(); ++i) {
        if (children.at(i).get("name").asString() ==
            "explore.generation")
            found_gen = true;
    }
    EXPECT_TRUE(found_gen);
    Tracer::global().releaseTrace("tune-req");
}

// ---------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------

TEST(Metrics, CounterCreateOnFirstUseAndStableReference)
{
    MetricsRegistry registry;
    MetricCounter &c1 = registry.counter("test.counter");
    EXPECT_EQ(c1.value(), 0u);
    c1.add();
    c1.add(10);
    MetricCounter &c2 = registry.counter("test.counter");
    EXPECT_EQ(&c1, &c2);
    EXPECT_EQ(c2.value(), 11u);
}

TEST(Metrics, GaugeLastWriteWins)
{
    MetricsRegistry registry;
    MetricGauge &g = registry.gauge("test.gauge");
    g.set(1.5);
    g.set(2.5);
    EXPECT_DOUBLE_EQ(registry.gauge("test.gauge").value(), 2.5);
}

TEST(Metrics, SnapshotsAndJson)
{
    MetricsRegistry registry;
    registry.counter("a.count").add(3);
    registry.counter("b.count").add(7);
    registry.gauge("c.gauge").set(0.25);

    auto counters = registry.counterValues();
    ASSERT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters.at("a.count"), 3u);
    EXPECT_EQ(counters.at("b.count"), 7u);
    auto gauges = registry.gaugeValues();
    ASSERT_EQ(gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(gauges.at("c.gauge"), 0.25);

    Json doc = registry.toJson();
    EXPECT_EQ(doc.get("a.count").asInt(), 3);
    EXPECT_EQ(doc.get("b.count").asInt(), 7);
    EXPECT_DOUBLE_EQ(doc.get("c.gauge").asNumber(), 0.25);
}

TEST(Metrics, ConcurrentCountersAreExact)
{
    MetricsRegistry registry;
    const int kThreads = 16;
    const int kAdds = 1000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry] {
            // Mix creation races and hot-path increments.
            auto &counter = registry.counter("contended");
            for (int i = 0; i < kAdds; ++i)
                counter.add();
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(registry.counter("contended").value(),
              static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Metrics, InstanceRegistriesAreIndependent)
{
    MetricsRegistry a;
    MetricsRegistry b;
    a.counter("x").add(5);
    EXPECT_EQ(b.counter("x").value(), 0u);
}

TEST(Flight, SpansOutsideAScopeRecordNothing)
{
    auto &recorder = FlightRecorder::global();
    recorder.clear();
    ASSERT_TRUE(recorder.enabled());
    ASSERT_EQ(FlightRecorder::currentSeq(), 0u);
    {
        TraceSpan span("test.unscoped", "test");
        // Tracer off + no scope: the span is fully inert.
        EXPECT_FALSE(span.active());
    }
    EXPECT_EQ(recorder.recordCount(), 0u);
}

TEST(Flight, ScopedSpansCarrySeqAndArgs)
{
    auto &recorder = FlightRecorder::global();
    recorder.clear();
    const std::uint64_t seq = recorder.beginRequest();
    ASSERT_NE(seq, 0u);
    {
        FlightScope scope(seq);
        EXPECT_EQ(FlightRecorder::currentSeq(), seq);
        TraceSpan span("test.scoped", "test");
        EXPECT_TRUE(span.active());
        span.arg("key", std::string("value"));
        span.arg("count", static_cast<std::int64_t>(7));
    }
    EXPECT_EQ(FlightRecorder::currentSeq(), 0u);

    auto records = recorder.harvest(seq);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_STREQ(records[0].name, "test.scoped");
    EXPECT_STREQ(records[0].category, "test");
    EXPECT_EQ(records[0].seq, seq);
    EXPECT_STREQ(records[0].args, "key=value count=7");
    // A different request's harvest stays empty.
    EXPECT_TRUE(recorder.harvest(seq + 1).empty());
    // The tracer saw none of it (global tracing is off).
    EXPECT_EQ(Tracer::global().spanCount(), 0u);
}

TEST(Flight, DisabledRecorderIgnoresScopedSpans)
{
    auto &recorder = FlightRecorder::global();
    recorder.clear();
    recorder.setEnabled(false);
    const std::uint64_t seq = recorder.beginRequest();
    {
        FlightScope scope(seq);
        TraceSpan span("test.dark", "test");
        EXPECT_FALSE(span.active());
    }
    recorder.setEnabled(true);
    EXPECT_TRUE(recorder.harvest(seq).empty());
}

TEST(Flight, RingOverwritesOldestWhenFull)
{
    auto &recorder = FlightRecorder::global();
    recorder.clear();
    const std::size_t prev_cap = recorder.capacityPerThread();
    recorder.setCapacityPerThread(8);
    const std::uint64_t before = recorder.overwrittenCount();
    const std::uint64_t seq = recorder.beginRequest();

    // Existing rings keep their size; a fresh thread registers a
    // ring at the shrunk capacity.
    std::thread worker([&] {
        FlightScope scope(seq);
        for (int i = 0; i < 20; ++i)
            TraceSpan span("test.wrap", "test");
    });
    worker.join();
    recorder.setCapacityPerThread(prev_cap);

    auto records = recorder.harvest(seq);
    EXPECT_EQ(records.size(), 8u);
    EXPECT_EQ(recorder.overwrittenCount() - before, 12u);
}

TEST(Flight, ScopePropagatesThroughParallelFor)
{
    auto &recorder = FlightRecorder::global();
    recorder.clear();
    const std::uint64_t seq = recorder.beginRequest();
    {
        FlightScope scope(seq);
        parallelFor(
            16,
            [](std::size_t) {
                TraceSpan span("test.shard", "test");
            },
            4);
    }
    auto records = recorder.harvest(seq);
    EXPECT_EQ(records.size(), 16u);
    for (const auto &record : records)
        EXPECT_EQ(record.seq, seq);
}

TEST(Flight, SpanTreeNestsByTimeContainment)
{
    auto &recorder = FlightRecorder::global();
    recorder.clear();
    const std::uint64_t seq = recorder.beginRequest();
    {
        FlightScope scope(seq);
        TraceSpan outer("test.outer", "test");
        {
            TraceSpan inner("test.inner", "test");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Json tree = recorder.spanTreeFor(seq);
    EXPECT_EQ(tree.get("flight_seq").asInt(),
              static_cast<std::int64_t>(seq));
    const Json &spans = tree.get("spans");
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans.at(0).get("name").asString(), "test.outer");
    const Json &children = spans.at(0).get("children");
    ASSERT_EQ(children.size(), 1u);
    EXPECT_EQ(children.at(0).get("name").asString(), "test.inner");
    EXPECT_GE(spans.at(0).get("dur_us").asNumber(),
              children.at(0).get("dur_us").asNumber());
}

TEST(Flight, CrashDumpIsPlainTextOverAFd)
{
    auto &recorder = FlightRecorder::global();
    recorder.clear();
    const std::uint64_t seq = recorder.beginRequest();
    {
        FlightScope scope(seq);
        TraceSpan span("test.crash", "test");
        span.arg("key", std::string("v"));
    }

    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    recorder.crashDump(::fileno(tmp));
    std::fflush(tmp);
    std::rewind(tmp);
    std::string text;
    char buf[256];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, tmp)) > 0)
        text.append(buf, n);
    std::fclose(tmp);

    EXPECT_NE(text.find("=== amos flight recorder dump ==="),
              std::string::npos);
    EXPECT_NE(text.find("test.crash"), std::string::npos);
    EXPECT_NE(text.find("key=v"), std::string::npos);
    EXPECT_NE(text.find("seq="), std::string::npos);
}

TEST(Flight, DumpJsonListsEveryResidentRecord)
{
    auto &recorder = FlightRecorder::global();
    recorder.clear();
    const std::uint64_t a = recorder.beginRequest();
    const std::uint64_t b = recorder.beginRequest();
    {
        FlightScope scope(a);
        TraceSpan span("test.first", "test");
    }
    {
        FlightScope scope(b);
        TraceSpan span("test.second", "test");
    }
    Json dump = recorder.dumpJson();
    const Json &records = dump.get("records");
    ASSERT_EQ(records.size(), 2u);
    // Sorted by start time: first request first.
    EXPECT_EQ(records.at(0).get("name").asString(), "test.first");
    EXPECT_EQ(records.at(1).get("name").asString(), "test.second");
    EXPECT_EQ(records.at(0).get("seq").asInt(),
              static_cast<std::int64_t>(a));
    EXPECT_EQ(dump.get("overwritten").asInt(), 0);
}

TEST(Flight, ConcurrentScopesAndHarvestsSurviveHammer)
{
    auto &recorder = FlightRecorder::global();
    recorder.clear();
    const int kThreads = 16;
    const int kSpansPerThread = 200;
    std::vector<std::uint64_t> seqs(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        seqs[t] = recorder.beginRequest();
        threads.emplace_back([&, t] {
            FlightScope scope(seqs[t]);
            for (int i = 0; i < kSpansPerThread; ++i) {
                TraceSpan span("test.hammer", "test");
                if (i % 64 == 0) // concurrent readers race writers
                    recorder.harvest(seqs[t]);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(recorder.harvest(seqs[t]).size(),
                  static_cast<std::size_t>(kSpansPerThread));
    recorder.clear();
    EXPECT_EQ(recorder.recordCount(), 0u);
}

TEST(Trace, SpanCapDropsAndCountsOverflow)
{
    GlobalTracing guard;
    auto &tracer = Tracer::global();
    const std::size_t prev_cap = tracer.spanCapPerThread();
    const std::uint64_t dropped_before = tracer.droppedSpans();
    const std::uint64_t counter_before =
        MetricsRegistry::global()
            .counter("trace.dropped_spans")
            .value();

    tracer.setSpanCapPerThread(10);
    for (int i = 0; i < 50; ++i)
        TraceSpan span("test.capped", "test");
    tracer.setSpanCapPerThread(prev_cap);

    EXPECT_LE(tracer.spanCount(), 10u);
    EXPECT_GE(tracer.droppedSpans() - dropped_before, 40u);
    EXPECT_GE(MetricsRegistry::global()
                      .counter("trace.dropped_spans")
                      .value() -
                  counter_before,
              40u);
}
