/**
 * @file
 * Unit tests for the operator library: shapes, iteration structure,
 * flop counts, reference semantics of representative operators, and
 * the layer-configuration suites.
 */

#include <gtest/gtest.h>

#include "ops/conv_layers.hh"
#include "ops/operators.hh"
#include "tensor/reference.hh"

namespace amos {
namespace {

using namespace ops;

TEST(Ops, GemvStructure)
{
    auto gemv = makeGemv(8, 16);
    EXPECT_EQ(gemv.numIters(), 2u);
    EXPECT_EQ(gemv.itersOfKind(IterKind::Reduction).size(), 1u);
    EXPECT_EQ(gemv.flopCount(), 2 * 8 * 16);
    EXPECT_EQ(gemv.output().shape(),
              (std::vector<std::int64_t>{8}));
}

TEST(Ops, GemmReferenceIsCorrect)
{
    auto gemm = makeGemm(4, 3, 5);
    auto inputs = makePatternInputs(gemm, 2);
    Buffer out(gemm.output());
    referenceExecute(gemm, {&inputs[0], &inputs[1]}, out);
    for (std::int64_t i = 0; i < 4; ++i)
        for (std::int64_t j = 0; j < 3; ++j) {
            float acc = 0.0f;
            for (std::int64_t k = 0; k < 5; ++k)
                acc += inputs[0].at(i * 5 + k) *
                       inputs[1].at(k * 3 + j);
            EXPECT_NEAR(out.at(i * 3 + j), acc, 1e-5f);
        }
}

TEST(Ops, Conv2dImpliedInputExtent)
{
    ConvParams pr;
    pr.batch = 1;
    pr.in_channels = 2;
    pr.out_channels = 3;
    pr.out_h = 4;
    pr.out_w = 4;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    pr.stride = 2;
    auto conv = makeConv2d(pr);
    // (4-1)*2 + (3-1)*1 + 1 = 9
    EXPECT_EQ(conv.inputs()[0].decl.shape(),
              (std::vector<std::int64_t>{1, 2, 9, 9}));
    EXPECT_EQ(conv.numIters(), 7u);
}

TEST(Ops, Conv2dMatchesNaiveConvolution)
{
    ConvParams pr;
    pr.batch = 1;
    pr.in_channels = 2;
    pr.out_channels = 2;
    pr.out_h = 3;
    pr.out_w = 3;
    pr.kernel_h = 2;
    pr.kernel_w = 2;
    auto conv = makeConv2d(pr);
    auto inputs = makePatternInputs(conv, 9);
    Buffer out(conv.output());
    referenceExecute(conv, {&inputs[0], &inputs[1]}, out);

    const auto &in = inputs[0];
    const auto &w = inputs[1];
    // Input is 1x2x4x4, weight 2x2x2x2, output 1x2x3x3.
    for (std::int64_t k = 0; k < 2; ++k)
        for (std::int64_t p = 0; p < 3; ++p)
            for (std::int64_t q = 0; q < 3; ++q) {
                float acc = 0.0f;
                for (std::int64_t c = 0; c < 2; ++c)
                    for (std::int64_t r = 0; r < 2; ++r)
                        for (std::int64_t s = 0; s < 2; ++s)
                            acc += in.at(c * 16 + (p + r) * 4 +
                                         (q + s)) *
                                   w.at(k * 8 + c * 4 + r * 2 + s);
                EXPECT_NEAR(out.at(k * 9 + p * 3 + q), acc, 1e-5f);
            }
}

TEST(Ops, DilatedConvUsesDilatedTaps)
{
    ConvParams pr;
    pr.batch = 1;
    pr.in_channels = 1;
    pr.out_channels = 1;
    pr.out_h = 2;
    pr.out_w = 2;
    pr.kernel_h = 2;
    pr.kernel_w = 2;
    pr.dilation = 2;
    auto conv = makeDilatedConv2d(pr);
    // input extent: (2-1)*1 + (2-1)*2 + 1 = 4
    EXPECT_EQ(conv.inputs()[0].decl.shape(),
              (std::vector<std::int64_t>{1, 1, 4, 4}));

    Buffer in(conv.inputs()[0].decl);
    Buffer w(conv.inputs()[1].decl);
    for (std::int64_t f = 0; f < 16; ++f)
        in.set(f, static_cast<float>(f));
    w.fill(1.0f);
    Buffer out(conv.output());
    referenceExecute(conv, {&in, &w}, out);
    // out(0,0) = in(0,0)+in(0,2)+in(2,0)+in(2,2) = 0+2+8+10
    EXPECT_FLOAT_EQ(out.at(0), 20.0f);
}

TEST(Ops, DilatedConvRequiresDilationAboveOne)
{
    ConvParams pr;
    pr.out_h = 2;
    pr.out_w = 2;
    EXPECT_THROW(makeDilatedConv2d(pr), FatalError);
}

TEST(Ops, DepthwiseKeepsChannelsSeparate)
{
    ConvParams pr;
    pr.batch = 1;
    pr.in_channels = 2;
    pr.out_h = 2;
    pr.out_w = 2;
    pr.kernel_h = 1;
    pr.kernel_w = 1;
    auto dep = makeDepthwiseConv2d(pr, 1);
    Buffer in(dep.inputs()[0].decl);
    Buffer w(dep.inputs()[1].decl);
    in.fill(1.0f);
    // weight of channel 0 is 2, channel 1 is 5
    w.set(0, 2.0f);
    w.set(1, 5.0f);
    Buffer out(dep.output());
    referenceExecute(dep, {&in, &w}, out);
    EXPECT_FLOAT_EQ(out.at(0), 2.0f); // channel 0
    EXPECT_FLOAT_EQ(out.at(4), 5.0f); // channel 1
}

TEST(Ops, TransposedConvCarriesBarriers)
{
    ConvParams pr;
    pr.batch = 1;
    pr.in_channels = 2;
    pr.out_channels = 2;
    pr.out_h = 4;
    pr.out_w = 4;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    pr.stride = 2;
    auto t2d = makeTransposedConv2d(pr);
    int barred = 0;
    for (const auto &iv : t2d.iters())
        barred += t2d.isTensorizeBarrier(iv.var.node());
    EXPECT_EQ(barred, 2); // p and q
}

TEST(Ops, GroupConvSeparatesGroups)
{
    ConvParams pr;
    pr.batch = 1;
    pr.in_channels = 2;  // per group
    pr.out_channels = 2; // per group
    pr.out_h = 2;
    pr.out_w = 2;
    pr.kernel_h = 1;
    pr.kernel_w = 1;
    auto grp = makeGroupConv2d(pr, 3);
    EXPECT_EQ(grp.numIters(), 8u);
    EXPECT_EQ(grp.output().shape(),
              (std::vector<std::int64_t>{1, 3, 2, 2, 2}));
    // g appears in all three tensors.
    const VarNode *g = grp.iters()[1].var.node();
    EXPECT_TRUE(usesVar(grp.inputs()[0].indices[1], g));
    EXPECT_TRUE(usesVar(grp.inputs()[1].indices[0], g));
    EXPECT_TRUE(usesVar(grp.outputIndices()[1], g));
}

TEST(Ops, CapsuleConvHasPoseContraction)
{
    ConvParams pr;
    pr.batch = 1;
    pr.in_channels = 2;
    pr.out_channels = 2;
    pr.out_h = 2;
    pr.out_w = 2;
    pr.kernel_h = 1;
    pr.kernel_w = 1;
    auto cap = makeCapsuleConv2d(pr, 4);
    EXPECT_EQ(cap.numIters(), 10u);
    EXPECT_EQ(cap.itersOfKind(IterKind::Reduction).size(), 4u);
    EXPECT_EQ(cap.output().ndim(), 6u);
}

TEST(Ops, BatchedConvUsesPerSampleWeights)
{
    ConvParams pr;
    pr.batch = 2;
    pr.in_channels = 1;
    pr.out_channels = 1;
    pr.out_h = 1;
    pr.out_w = 1;
    pr.kernel_h = 1;
    pr.kernel_w = 1;
    auto bcv = makeBatchedConv2d(pr);
    Buffer in(bcv.inputs()[0].decl);
    Buffer w(bcv.inputs()[1].decl);
    in.fill(1.0f);
    w.set(0, 3.0f); // sample 0's kernel
    w.set(1, 7.0f); // sample 1's kernel
    Buffer out(bcv.output());
    referenceExecute(bcv, {&in, &w}, out);
    EXPECT_FLOAT_EQ(out.at(0), 3.0f);
    EXPECT_FLOAT_EQ(out.at(1), 7.0f);
}

TEST(Ops, MeanComputesRowAverageWithConstVector)
{
    auto mean = makeMean(2, 4);
    Buffer in(mean.inputs()[0].decl);
    Buffer inv(mean.inputs()[1].decl);
    for (std::int64_t f = 0; f < 8; ++f)
        in.set(f, static_cast<float>(f));
    inv.fill(0.25f);
    Buffer out(mean.output());
    referenceExecute(mean, {&in, &inv}, out);
    EXPECT_FLOAT_EQ(out.at(0), (0 + 1 + 2 + 3) / 4.0f);
    EXPECT_FLOAT_EQ(out.at(1), (4 + 5 + 6 + 7) / 4.0f);
}

TEST(Ops, VarianceIsSelfProduct)
{
    auto var = makeVariance(1, 3);
    EXPECT_EQ(var.inputs()[0].decl.name(),
              var.inputs()[1].decl.name());
    Buffer in(var.inputs()[0].decl);
    in.set(0, 1.0f);
    in.set(1, 2.0f);
    in.set(2, 3.0f);
    Buffer out(var.output());
    referenceExecute(var, {&in, &in}, out);
    EXPECT_FLOAT_EQ(out.at(0), 1 + 4 + 9);
}

TEST(Ops, ScanViaTriangularMatrix)
{
    auto scan = makeScan(1, 4);
    Buffer in(scan.inputs()[0].decl);
    Buffer tri(scan.inputs()[1].decl);
    for (std::int64_t f = 0; f < 4; ++f)
        in.set(f, static_cast<float>(f + 1));
    // lower_tri[k][j] = 1 iff k <= j
    for (std::int64_t k = 0; k < 4; ++k)
        for (std::int64_t j = 0; j < 4; ++j)
            tri.set(k * 4 + j, k <= j ? 1.0f : 0.0f);
    Buffer out(scan.output());
    referenceExecute(scan, {&in, &tri}, out);
    EXPECT_FLOAT_EQ(out.at(0), 1);
    EXPECT_FLOAT_EQ(out.at(1), 3);
    EXPECT_FLOAT_EQ(out.at(2), 6);
    EXPECT_FLOAT_EQ(out.at(3), 10);
}

TEST(Ops, SuiteCoversAllKindsAndBuilds)
{
    const auto &suite = operatorSuite();
    EXPECT_EQ(suite.size(), allOpKinds().size());
    for (const auto &cfg : suite) {
        SCOPED_TRACE(cfg.label);
        auto comp = cfg.build(1);
        EXPECT_GT(comp.flopCount(), 0);
        EXPECT_STREQ(opKindName(cfg.kind), cfg.label.c_str());
    }
}

TEST(Ops, RepresentativeBatchScalesIterations)
{
    auto b1 = buildRepresentative(OpKind::C2D, 1);
    auto b4 = buildRepresentative(OpKind::C2D, 4);
    EXPECT_EQ(b4.totalIterations(), 4 * b1.totalIterations());
}

TEST(ConvLayers, ResNet18TableMatchesPaper)
{
    auto layers = resnet18ConvLayers(16);
    ASSERT_EQ(layers.size(), 12u);
    EXPECT_EQ(layers[0].label, "C0");
    EXPECT_EQ(layers[0].in_channels, 3);
    EXPECT_EQ(layers[0].kernel, 7);
    EXPECT_EQ(layers[0].stride, 2);
    EXPECT_EQ(layers[11].out_channels, 512);
    for (const auto &layer : layers) {
        SCOPED_TRACE(layer.label);
        auto comp = layer.build();
        EXPECT_EQ(comp.numIters(), 7u);
        EXPECT_EQ(comp.iters()[0].extent, 16);
    }
}

TEST(ConvLayers, MobileNetV2SuiteBuildsDepthwise)
{
    auto layers = mobilenetV2Layers(1);
    ASSERT_EQ(layers.size(), 7u);
    for (const auto &layer : layers) {
        SCOPED_TRACE(layer.label);
        auto dep = layer.buildDepthwise();
        EXPECT_EQ(dep.name(), "depthwise_conv2d");
        EXPECT_GT(dep.flopCount(), 0);
    }
}

} // namespace
} // namespace amos
