/**
 * @file
 * Tests for the 113-configuration evaluation suite: size and
 * composition, buildability at several batch sizes, tensorizability
 * on the Tensor Core target, and a spot-compile sweep.
 */

#include <gtest/gtest.h>

#include <set>

#include "amos/amos.hh"
#include "isa/intrinsics.hh"
#include "mapping/generate.hh"
#include "ops/config_suite.hh"

namespace amos {
namespace {

TEST(ConfigSuite, HasThePapersShape)
{
    const auto &suite = ops::configSuite();
    EXPECT_EQ(suite.size(), 113u); // Sec. 7.3: 113 configurations
    for (auto kind : ops::allOpKinds()) {
        auto family = ops::configsOf(kind);
        EXPECT_GE(family.size(), 7u) << ops::opKindName(kind);
        EXPECT_LE(family.size(), 8u) << ops::opKindName(kind);
    }
}

TEST(ConfigSuite, LabelsAreUniqueAndPrefixed)
{
    std::set<std::string> labels;
    for (const auto &entry : ops::configSuite()) {
        EXPECT_TRUE(labels.insert(entry.label).second)
            << "duplicate " << entry.label;
        std::string prefix =
            std::string(ops::opKindName(entry.kind)) + "/";
        EXPECT_EQ(entry.label.rfind(prefix, 0), 0u) << entry.label;
    }
}

TEST(ConfigSuite, EveryEntryBuildsAtSeveralBatchSizes)
{
    for (const auto &entry : ops::configSuite()) {
        SCOPED_TRACE(entry.label);
        for (std::int64_t batch : {1, 4}) {
            auto comp = entry.build(batch);
            EXPECT_GT(comp.flopCount(), 0);
            EXPECT_GT(comp.numIters(), 0u);
        }
    }
}

TEST(ConfigSuite, EveryEntryTensorizesOnTensorCore)
{
    auto intr = isa::wmma(16, 16, 16);
    for (const auto &entry : ops::configSuite()) {
        SCOPED_TRACE(entry.label);
        EXPECT_TRUE(isTensorizable(entry.build(1), intr));
    }
}

TEST(ConfigSuite, SpotCompileSweep)
{
    TuneOptions options;
    options.population = 8;
    options.generations = 2;
    options.measureTopK = 2;
    options.maxMappings = 6;
    options.exploitSteps = 4;
    Compiler compiler(hw::v100(), options);
    const auto &suite = ops::configSuite();
    for (std::size_t i = 0; i < suite.size(); i += 9) {
        SCOPED_TRACE(suite[i].label);
        auto result = compiler.compile(suite[i].build(1));
        EXPECT_TRUE(result.tensorized);
        EXPECT_TRUE(std::isfinite(result.milliseconds));
    }
}

} // namespace
} // namespace amos
