/**
 * @file
 * Parameterised sweeps: compile sanity for every operator family on
 * every commercial hardware preset, determinism, and monotonicity
 * properties of the simulator with respect to hardware resources.
 */

#include <gtest/gtest.h>

#include "amos/amos.hh"
#include "isa/intrinsics.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"

namespace amos {
namespace {

TuneOptions
sweepTuning()
{
    TuneOptions options;
    options.population = 8;
    options.generations = 3;
    options.measureTopK = 3;
    options.maxMappings = 12;
    options.exploitSteps = 8;
    return options;
}

// ---------------------------------------------------------------
// Operator x hardware compile sweep.
// ---------------------------------------------------------------

using SweepParam = std::tuple<ops::OpKind, int>;

class CompileSweep : public ::testing::TestWithParam<SweepParam>
{
  public:
    static HardwareSpec
    hardwareFor(int index)
    {
        switch (index) {
          case 0: return hw::v100();
          case 1: return hw::xeonSilver4110();
          default: return hw::maliG76();
        }
    }

    /**
     * Representative computation typed for the target: the Xeon and
     * Mali presets expose int8 dot intrinsics (VNNI / dot product),
     * so they sweep the quantized u8xi8 variants — float operands
     * are dtype-illegal there by design.
     */
    static TensorComputation
    computationFor(ops::OpKind kind, int hw_index)
    {
        auto comp = ops::buildRepresentative(kind, 1);
        return hw_index == 0 ? comp : ops::quantizedVariant(comp);
    }
};

TEST_P(CompileSweep, CompilesToFiniteLatencyEverywhere)
{
    auto [kind, hw_index] = GetParam();
    auto hw = hardwareFor(hw_index);
    auto comp = computationFor(kind, hw_index);
    Compiler compiler(hw, sweepTuning());
    auto result = compiler.compile(comp);
    EXPECT_TRUE(std::isfinite(result.milliseconds));
    EXPECT_GT(result.milliseconds, 0.0);
    EXPECT_GT(result.gflops, 0.0);
    // Everything multiply-add shaped is tensorizable on all three
    // presets (their intrinsics are MultiplyAdd and, with the typing
    // above, dtype-legal).
    EXPECT_TRUE(result.tensorized) << ops::opKindName(kind);
}

TEST_P(CompileSweep, DeterministicAcrossRuns)
{
    auto [kind, hw_index] = GetParam();
    auto hw = hardwareFor(hw_index);
    auto comp = computationFor(kind, hw_index);
    Compiler compiler(hw, sweepTuning());
    auto a = compiler.compile(comp);
    auto b = compiler.compile(comp);
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.mappingSignature, b.mappingSignature);
}

std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    static const char *hw_names[] = {"V100", "Xeon", "Mali"};
    return std::string(ops::opKindName(std::get<0>(info.param))) +
           "_" + hw_names[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    OpsByHardware, CompileSweep,
    ::testing::Combine(::testing::ValuesIn(ops::allOpKinds()),
                       ::testing::Values(0, 1, 2)),
    sweepName);

// ---------------------------------------------------------------
// Simulator monotonicity in hardware resources.
// ---------------------------------------------------------------

KernelProfile
referenceProfile(const HardwareSpec &hw)
{
    auto gemm = ops::makeGemm(512, 512, 256);
    ComputeMapping m;
    m.groups = {{0}, {1}, {2}};
    MappingPlan plan(gemm, hw.primaryIntrinsic(), m);
    auto sched = defaultSchedule(plan);
    sched.axes[0].blockFactor = 8;
    sched.axes[1].blockFactor = 8;
    sched.axes[0].warpFactor = 2;
    sched.axes[1].warpFactor = 2;
    sched.stageDepth = 2;
    return lowerKernel(plan, sched, hw);
}

TEST(SimMonotonic, MoreGlobalBandwidthNeverHurts)
{
    auto hw = hw::v100();
    auto base = simulateKernel(referenceProfile(hw), hw).cycles;
    for (double scale : {1.5, 2.0, 4.0}) {
        auto faster = hw;
        faster.global.readBytesPerCycle *= scale;
        faster.global.writeBytesPerCycle *= scale;
        EXPECT_LE(simulateKernel(referenceProfile(faster), faster)
                      .cycles,
                  base + 1e-9)
            << "scale " << scale;
    }
}

TEST(SimMonotonic, MoreSharedBandwidthNeverHurts)
{
    auto hw = hw::v100();
    auto base = simulateKernel(referenceProfile(hw), hw).cycles;
    auto faster = hw;
    faster.shared.readBytesPerCycle *= 2.0;
    EXPECT_LE(
        simulateKernel(referenceProfile(faster), faster).cycles,
        base + 1e-9);
}

TEST(SimMonotonic, SlowerIntrinsicNeverHelps)
{
    auto hw = hw::v100();
    auto base = simulateKernel(referenceProfile(hw), hw).cycles;
    auto slower = hw;
    for (auto &intr : slower.intrinsics)
        intr.latencyCycles *= 4.0;
    EXPECT_GE(
        simulateKernel(referenceProfile(slower), slower).cycles,
        base - 1e-9);
}

TEST(SimMonotonic, LaunchOverheadAddsDirectly)
{
    auto hw = hw::v100();
    auto base = simulateKernel(referenceProfile(hw), hw).cycles;
    auto heavy = hw;
    heavy.launchOverheadCycles += 5000.0;
    EXPECT_NEAR(
        simulateKernel(referenceProfile(heavy), heavy).cycles,
        base + 5000.0, 1e-6);
}

TEST(SimMonotonic, HigherClockOnlyChangesWallTime)
{
    auto hw = hw::v100();
    auto prof = referenceProfile(hw);
    auto base = simulateKernel(prof, hw);
    auto fast = hw;
    fast.clockGhz *= 2.0;
    auto quick = simulateKernel(referenceProfile(fast), fast);
    EXPECT_DOUBLE_EQ(quick.cycles, base.cycles);
    EXPECT_NEAR(quick.milliseconds, base.milliseconds / 2.0, 1e-9);
}

// ---------------------------------------------------------------
// Mapping-count structural sweep across intrinsic shapes.
// ---------------------------------------------------------------

class ShapeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ShapeSweep, MappingCountIndependentOfIntrinsicExtent)
{
    // Table 6's counts are structural: any matmul-shaped intrinsic
    // extent yields the same 35 addressable C2D mappings.
    int extent = GetParam();
    ops::ConvParams pr;
    pr.batch = 2;
    pr.in_channels = 2;
    pr.out_channels = 4;
    pr.out_h = 2;
    pr.out_w = 2;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto conv = ops::makeConv2d(pr);
    auto intr = isa::wmma(extent, extent, extent);
    EXPECT_EQ(enumerateMappings(conv, intr, {}).size(), 35u);
}

INSTANTIATE_TEST_SUITE_P(Extents, ShapeSweep,
                         ::testing::Values(2, 4, 8, 16, 32));

} // namespace
} // namespace amos
