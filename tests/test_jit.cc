/**
 * @file
 * JIT execution tier tests: the native-codegen tier must be
 * bit-identical to the interpreter over every operator kind, the
 * kernel cache must behave (memory hits, restart warm starts from
 * disk, corrupt-object recovery, in-flight compile coalescing,
 * negative caching), and every failure mode must degrade into the
 * stride walk instead of an error.
 *
 * The whole suite is compiler-agnostic: when no system compiler is
 * available (CI runs it once with AMOS_JIT_CC=/nonexistent), the
 * differential checks still pass via the fallback tiers and the
 * cache tests skip.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "codegen/exec_c.hh"
#include "isa/intrinsics.hh"
#include "jit/jit.hh"
#include "mapping/execute.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/trace.hh"
#include "tensor/jit_hook.hh"
#include "tensor/reference.hh"

namespace amos {
namespace {

bool
jitCompilerUsable()
{
    return JitEngine::global().compilerAvailable();
}

/** Fresh scratch cache dir per test (cleared from previous runs). */
JitOptions
scratchOptions(const std::string &tag)
{
    JitOptions opts = JitOptions::fromEnv();
    opts.cacheDir = ::testing::TempDir() + "amos-jit-" + tag;
    std::filesystem::remove_all(opts.cacheDir);
    return opts;
}

/** A tiny valid kernel, salted so each test owns its cache key. */
std::string
tinyKernel(const std::string &salt)
{
    return "/* " + salt + " */\n"
           "void amos_exec_kernel(const void *const *inputs, "
           "void *output)\n"
           "{ *(float *)output = *(const float *)inputs[0] + 1.0f; }\n";
}

/** Small instance of each operator kind used by the param suite. */
TensorComputation
makeSmallOp(ops::OpKind kind)
{
    ops::ConvParams pr;
    pr.batch = 2;
    pr.in_channels = 2;
    pr.out_channels = 4;
    pr.out_h = 2;
    pr.out_w = 3;
    pr.kernel_h = 2;
    pr.kernel_w = 2;
    switch (kind) {
      case ops::OpKind::GMV: return ops::makeGemv(5, 7);
      case ops::OpKind::GMM: return ops::makeGemm(3, 5, 7);
      case ops::OpKind::C1D: return ops::makeConv1d(2, 3, 4, 5, 3);
      case ops::OpKind::C2D: return ops::makeConv2d(pr);
      case ops::OpKind::C3D: return ops::makeConv3d(pr, 2, 2);
      case ops::OpKind::T2D: {
        ops::ConvParams t2 = pr;
        t2.stride = 2;
        return ops::makeTransposedConv2d(t2);
      }
      case ops::OpKind::GRP: return ops::makeGroupConv2d(pr, 2);
      case ops::OpKind::DIL: {
        ops::ConvParams dil = pr;
        dil.dilation = 2;
        return ops::makeDilatedConv2d(dil);
      }
      case ops::OpKind::DEP: return ops::makeDepthwiseConv2d(pr, 2);
      case ops::OpKind::CAP: {
        ops::ConvParams cap = pr;
        cap.out_h = 2;
        cap.out_w = 2;
        cap.out_channels = 2;
        return ops::makeCapsuleConv2d(cap, 2);
      }
      case ops::OpKind::BCV: return ops::makeBatchedConv2d(pr);
      case ops::OpKind::GFC: return ops::makeGroupedFC(2, 3, 4, 5);
      case ops::OpKind::MEN: return ops::makeMean(5, 6);
      case ops::OpKind::VAR: return ops::makeVariance(5, 6);
      case ops::OpKind::SCN: return ops::makeScan(3, 5);
    }
    panic("unreachable");
}

class JitOperatorDifferential
    : public ::testing::TestWithParam<ops::OpKind>
{
};

TEST_P(JitOperatorDifferential, MappedPathsBitIdentical)
{
    // The JIT tier must reproduce the scalar interpreter bit for bit
    // on both mapped paths. Without a compiler the tier degrades to
    // the stride walk — the differential still holds, only the
    // reported engine changes.
    TensorComputation comp = makeSmallOp(GetParam());
    auto plans = enumeratePlans(comp, isa::wmmaTiny(), {});
    ASSERT_GT(plans.size(), 0u);
    SCOPED_TRACE(plans[0].mapping().signature(comp));

    ExecReport direct, packed;
    EXPECT_EQ(engineVsInterpreterError(plans[0], ExecEngine::Jit, 7,
                                       &direct, &packed),
              0.0f);
    if (jitCompilerUsable()) {
        EXPECT_EQ(direct.engine, "jit") << direct.jitFallback;
        EXPECT_EQ(packed.engine, "jit") << packed.jitFallback;
    } else {
        EXPECT_EQ(direct.engine, "walk");
        EXPECT_EQ(packed.engine, "walk");
        EXPECT_NE(direct.jitFallback, "");
    }
}

TEST_P(JitOperatorDifferential, ReferencePathBitIdentical)
{
    TensorComputation comp = makeSmallOp(GetParam());
    auto inputs = makePatternInputs(comp, 11);
    std::vector<const Buffer *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(&b);

    ExecOptions interp;
    interp.engine = ExecEngine::Interpreter;
    ExecOptions jit;
    jit.engine = ExecEngine::Jit;

    Buffer viaInterp(comp.output()), viaJit(comp.output());
    referenceExecute(comp, ptrs, viaInterp, interp);
    ExecReport report = referenceExecute(comp, ptrs, viaJit, jit);

    EXPECT_EQ(viaInterp.maxAbsDiff(viaJit), 0.0f);
    if (jitCompilerUsable())
        EXPECT_EQ(report.engine, "jit") << report.jitFallback;
    else
        EXPECT_EQ(report.engine, "walk");
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, JitOperatorDifferential,
    ::testing::ValuesIn(ops::allOpKinds()),
    [](const ::testing::TestParamInfo<ops::OpKind> &info) {
        return ops::opKindName(info.param);
    });

TEST(JitCodegen, KernelsAreVectorizerFriendly)
{
    // Structural checks on the emitted C: restrict-qualified operand
    // pointers, the canonical entry point, hoisted partial addresses
    // (a `const long` above the innermost loop), and no fast-math
    // escape hatch in the packed pipeline.
    auto gemm = ops::makeGemm(3, 5, 7);
    auto plan = compileReferenceWalk(gemm);
    ASSERT_TRUE(plan.has_value());
    std::string src = generateWalkKernelC(*plan, gemm.combine(), 2,
                                          "structural test");
    EXPECT_NE(src.find("amos_exec_kernel"), std::string::npos);
    EXPECT_NE(src.find("const float *restrict in0"),
              std::string::npos);
    EXPECT_NE(src.find("float *restrict out"), std::string::npos);
    EXPECT_NE(src.find("const long"), std::string::npos);
    EXPECT_NE(src.find("for (long"), std::string::npos);

    auto plans = enumeratePlans(gemm, isa::wmmaTiny(), {});
    ASSERT_GT(plans.size(), 0u);
    ExecPlan ep(plans[0]);
    ASSERT_TRUE(ep.compiled()) << ep.fallbackReason();
    std::string direct = generateDirectKernelC(ep, "structural");
    EXPECT_NE(direct.find("amos_exec_kernel"), std::string::npos);
    EXPECT_NE(direct.find("restrict"), std::string::npos);
    std::string packed = generatePackedKernelC(ep, "structural");
    EXPECT_NE(packed.find("calloc"), std::string::npos);
    EXPECT_NE(packed.find("free(pk0);"), std::string::npos);
    EXPECT_NE(packed.find("stage A"), std::string::npos);
    EXPECT_NE(packed.find("stage B"), std::string::npos);
    EXPECT_NE(packed.find("stage C"), std::string::npos);
}

TEST(JitCodegen, TypedKernelsMatchStorageLanes)
{
    // int8 kernels must bind int8_t/uint8_t/int32_t pointers and
    // accumulate through a wrapping int64 intermediate, with no float
    // anywhere; the packed pipeline widens into int32_t streams.
    auto q = ops::makeQuantizedGemm(3, 5, 8);
    auto walk = compileReferenceWalk(q);
    ASSERT_TRUE(walk.has_value());
    std::vector<DataType> dts;
    for (const auto &in : q.inputs())
        dts.push_back(in.decl.dtype());
    dts.push_back(q.output().dtype());
    std::string src =
        generateWalkKernelC(*walk, q.combine(), 2, "typed", dts);
    EXPECT_NE(src.find("const uint8_t *restrict in0"),
              std::string::npos);
    EXPECT_NE(src.find("const int8_t *restrict in1"),
              std::string::npos);
    EXPECT_NE(src.find("int32_t *restrict out"), std::string::npos);
    EXPECT_NE(src.find("(int64_t)"), std::string::npos);
    // No float anywhere in the code itself (the header comment may
    // mention floating point).
    const std::string body = src.substr(src.find("amos_exec_kernel"));
    EXPECT_EQ(body.find("float"), std::string::npos) << src;

    auto plans = enumeratePlans(q, isa::avx512Vnni(), {});
    ASSERT_GT(plans.size(), 0u);
    ExecPlan ep(plans[0]);
    ASSERT_TRUE(ep.compiled()) << ep.fallbackReason();
    std::string packed = generatePackedKernelC(ep, "typed packed");
    EXPECT_NE(packed.find("int32_t *restrict pk0"), std::string::npos);
    EXPECT_NE(packed.find("sizeof(int32_t)"), std::string::npos);
    EXPECT_EQ(packed.substr(packed.find("amos_exec_kernel"))
                  .find("float"),
              std::string::npos);

    // bf16 kernels widen each load through the emitted helper into
    // float accumulation.
    auto b = ops::bf16Variant(ops::makeGemm(3, 5, 7));
    auto bwalk = compileReferenceWalk(b);
    ASSERT_TRUE(bwalk.has_value());
    std::vector<DataType> bdts;
    for (const auto &in : b.inputs())
        bdts.push_back(in.decl.dtype());
    bdts.push_back(b.output().dtype());
    std::string bsrc =
        generateWalkKernelC(*bwalk, b.combine(), 2, "bf16", bdts);
    EXPECT_NE(bsrc.find("amos_bf16_to_f32"), std::string::npos);
    EXPECT_NE(bsrc.find("const uint16_t *restrict in0"),
              std::string::npos);
    EXPECT_NE(bsrc.find("float *restrict out"), std::string::npos);
}

TEST(JitTier, QuantizedMappedPathsBitExact)
{
    // int8 accumulation is exact, so the JIT tier must agree with the
    // interpreter bit for bit — no tolerance — on both mapped paths.
    auto q = ops::makeQuantizedGemm(4, 5, 8);
    auto plans = enumeratePlans(q, isa::avx512Vnni(), {});
    ASSERT_GT(plans.size(), 0u);
    ExecReport direct, packed;
    auto res = engineVsInterpreterCompare(
        plans[0], ExecEngine::Jit, quant::ToleranceSpec::exactly(), 7,
        1, &direct, &packed);
    EXPECT_TRUE(res.pass) << res.summary();
    if (jitCompilerUsable()) {
        EXPECT_EQ(direct.engine, "jit") << direct.jitFallback;
        EXPECT_EQ(packed.engine, "jit") << packed.jitFallback;
    }
}

TEST(JitTier, QuantizedReferencePathBitExact)
{
    auto q = ops::makeQuantizedGemm(4, 5, 8);
    auto inputs = makePatternInputs(q, 11);
    std::vector<const Buffer *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(&b);

    ExecOptions interp;
    interp.engine = ExecEngine::Interpreter;
    ExecOptions jit;
    jit.engine = ExecEngine::Jit;

    Buffer viaInterp(q.output()), viaJit(q.output());
    referenceExecute(q, ptrs, viaInterp, interp);
    ExecReport report = referenceExecute(q, ptrs, viaJit, jit);

    EXPECT_TRUE(viaJit.bitEqual(viaInterp));
    if (jitCompilerUsable())
        EXPECT_EQ(report.engine, "jit") << report.jitFallback;
}

TEST(JitCache, MemoryHitAfterFirstCompile)
{
    if (!jitCompilerUsable())
        GTEST_SKIP() << "no jit compiler in this environment";
    JitEngine engine(scratchOptions("memhit"));
    const std::string src = tinyKernel("memhit");

    std::string why;
    ExecKernelFn first = engine.getOrCompile(src, &why);
    ASSERT_NE(first, nullptr) << why;
    ExecKernelFn second = engine.getOrCompile(src, &why);
    EXPECT_EQ(first, second);
    EXPECT_EQ(engine.stats().compiles, 1);
    EXPECT_EQ(engine.stats().memoryHits, 1);
    EXPECT_EQ(engine.stats().diskHits, 0);

    const float one = 41.0f;
    const void *inputs[1] = {&one};
    float out = 0.0f;
    first(inputs, &out);
    EXPECT_EQ(out, 42.0f);
}

TEST(JitCache, RestartWarmStartsFromDisk)
{
    if (!jitCompilerUsable())
        GTEST_SKIP() << "no jit compiler in this environment";
    JitOptions opts = scratchOptions("warm");
    const std::string src = tinyKernel("warm");
    {
        JitEngine cold(opts);
        std::string why;
        ASSERT_NE(cold.getOrCompile(src, &why), nullptr) << why;
        EXPECT_EQ(cold.stats().compiles, 1);
    }
    // "Restart": a fresh engine over the same cache dir must dlopen
    // the installed object instead of recompiling.
    JitEngine warm(opts);
    std::string why;
    ASSERT_NE(warm.getOrCompile(src, &why), nullptr) << why;
    EXPECT_EQ(warm.stats().compiles, 0);
    EXPECT_EQ(warm.stats().diskHits, 1);
}

TEST(JitCache, CorruptCachedObjectIsRebuilt)
{
    if (!jitCompilerUsable())
        GTEST_SKIP() << "no jit compiler in this environment";
    JitOptions opts = scratchOptions("corrupt");
    const std::string src = tinyKernel("corrupt");
    JitEngine engine(opts);

    // Plant a truncated/garbage .so where the kernel would live; the
    // engine must evict and recompile, never crash.
    std::filesystem::create_directories(opts.cacheDir);
    {
        std::ofstream garbage(engine.cachePathFor(src));
        garbage << "this is not a shared object";
    }
    std::string why;
    ExecKernelFn fn = engine.getOrCompile(src, &why);
    ASSERT_NE(fn, nullptr) << why;
    EXPECT_EQ(engine.stats().compiles, 1);
    EXPECT_EQ(engine.stats().diskHits, 0);
}

TEST(JitCache, ConcurrentCompilesCoalesce)
{
    if (!jitCompilerUsable())
        GTEST_SKIP() << "no jit compiler in this environment";
    JitEngine engine(scratchOptions("coalesce"));
    const std::string src = tinyKernel("coalesce");

    constexpr int kThreads = 8;
    std::atomic<int> successes{0};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        workers.emplace_back([&] {
            std::string why;
            if (engine.getOrCompile(src, &why) != nullptr)
                successes.fetch_add(1);
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(successes.load(), kThreads);
    // All racing requests must have coalesced onto one compile.
    EXPECT_EQ(engine.stats().compiles, 1);
}

TEST(JitCache, FailedCompileIsCachedNegatively)
{
    if (!jitCompilerUsable())
        GTEST_SKIP() << "no jit compiler in this environment";
    JitEngine engine(scratchOptions("negative"));
    const std::string src = "this is not C at all {{{";

    std::string why1, why2;
    EXPECT_EQ(engine.getOrCompile(src, &why1), nullptr);
    EXPECT_EQ(engine.getOrCompile(src, &why2), nullptr);
    EXPECT_NE(why1, "");
    EXPECT_EQ(why1, why2);
    // Diagnosed once, not per execution.
    EXPECT_EQ(engine.stats().failures, 1);
}

TEST(JitCache, MissingCompilerReportsWhy)
{
    JitOptions opts = scratchOptions("nocc");
    opts.compiler = "/nonexistent/amos-jit-cc";
    JitEngine engine(opts);
    std::string why;
    EXPECT_EQ(engine.getOrCompile(tinyKernel("nocc"), &why), nullptr);
    EXPECT_NE(why.find("not available"), std::string::npos) << why;
    EXPECT_FALSE(engine.compilerAvailable());
}

TEST(JitCache, KeysSeparateConfigurations)
{
    JitOptions a = scratchOptions("keys");
    JitOptions b = a;
    b.flags = a.flags + " -DSOMETHING";
    JitEngine ea(a), eb(b);
    const std::string src = tinyKernel("keys");
    EXPECT_NE(ea.keyFor(src), eb.keyFor(src));
    EXPECT_EQ(ea.keyFor(src), JitEngine(a).keyFor(src));
    EXPECT_NE(ea.keyFor(src), ea.keyFor(src + " "));
}

TEST(JitTier, UnlinkedHookFallsBackToWalk)
{
    // Simulate a binary built without amos_jit: clear the hooks and
    // check the tier degrades to the stride walk with the documented
    // reason and metric, then restore via the ensureLinked escape
    // hatch.
    auto gemm = ops::makeGemm(4, 4, 4);
    auto inputs = makePatternInputs(gemm, 7);
    std::vector<const Buffer *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(&b);

    setReferenceJitHook(nullptr);
    auto &fallbacks =
        MetricsRegistry::global().counter("exec.jit_fallback");
    const std::uint64_t before = fallbacks.value();

    ExecOptions jit;
    jit.engine = ExecEngine::Jit;
    Buffer out(gemm.output());
    ExecReport report = referenceExecute(gemm, ptrs, out, jit);
    EXPECT_EQ(report.engine, "walk");
    EXPECT_EQ(report.jitFallback, "jit tier not linked");
    EXPECT_EQ(fallbacks.value(), before + 1);

    jit::ensureLinked();
    Buffer out2(gemm.output());
    ExecReport restored = referenceExecute(gemm, ptrs, out2, jit);
    if (jitCompilerUsable())
        EXPECT_EQ(restored.engine, "jit") << restored.jitFallback;
    EXPECT_EQ(out.maxAbsDiff(out2), 0.0f);
}

TEST(JitTier, FuzzedNonAffineAccessFallsThrough)
{
    // A non-affine access defeats every compiled tier; with the JIT
    // requested the executors must fall through jit -> walk ->
    // interpreter and still match, bumping exec.jit_fallback for
    // both mapped paths.
    auto gemm = ops::makeGemm(4, 4, 4);
    auto plans = enumeratePlans(gemm, isa::wmmaTiny(), {});
    ASSERT_EQ(plans.size(), 1u);
    auto mutated = gemm.withMutatedInputIndex(
        1, 0, floorDiv(gemm.iters()[2].var * 2, 2));
    MappingPlan plan(mutated, isa::wmmaTiny(), plans[0].mapping());
    ASSERT_TRUE(plan.valid());

    auto &jitFallbacks =
        MetricsRegistry::global().counter("exec.jit_fallback");
    const std::uint64_t before = jitFallbacks.value();
    ExecReport direct, packed;
    EXPECT_EQ(engineVsInterpreterError(plan, ExecEngine::Jit, 7,
                                       &direct, &packed),
              0.0f);
    EXPECT_EQ(jitFallbacks.value(), before + 2);
    EXPECT_EQ(direct.engine, "interpreter");
    EXPECT_EQ(packed.engine, "interpreter");
    EXPECT_NE(direct.jitFallback, "");
}

TEST(JitTier, EngineNamesRoundTrip)
{
    for (ExecEngine e :
         {ExecEngine::Auto, ExecEngine::Interpreter, ExecEngine::Walk,
          ExecEngine::Jit}) {
        auto parsed = parseExecEngine(execEngineName(e));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, e);
    }
    EXPECT_FALSE(parseExecEngine("turbo").has_value());
}

TEST(JitCache, PipelineStagesEmitTraceSpans)
{
    if (!jitCompilerUsable())
        GTEST_SKIP() << "no jit compiler in this environment";
    JitEngine engine(scratchOptions("spans"));
    const std::string src = tinyKernel("spans");
    const std::string key = engine.cachePathFor(src);

    Tracer::global().clear();
    Tracer::global().setEnabled(true);
    std::string why;
    ExecKernelFn fn = engine.getOrCompile(src, &why);
    Tracer::global().setEnabled(false);
    ASSERT_NE(fn, nullptr) << why;

    auto spans = Tracer::global().collect();
    Tracer::global().clear();
    bool compiled = false, opened = false;
    for (const auto &span : spans) {
        if (span.name == "jit.compile") {
            compiled = true;
            // Carries the content-hash cache key for correlation
            // with the on-disk object name.
            ASSERT_FALSE(span.args.empty());
            EXPECT_EQ(span.args[0].first, "key");
            EXPECT_NE(key.find(span.args[0].second),
                      std::string::npos);
        }
        if (span.name == "jit.dlopen")
            opened = true;
    }
    EXPECT_TRUE(compiled);
    EXPECT_TRUE(opened);
}

} // namespace
} // namespace amos
