/**
 * @file
 * Unit tests for the expression IR: builders, constant folding,
 * evaluation, variable collection, substitution, printing, and the
 * affine-form analysis.
 */

#include <gtest/gtest.h>

#include "ir/affine.hh"
#include "ir/expr.hh"
#include "support/logging.hh"

namespace amos {
namespace {

TEST(Expr, LiteralsFold)
{
    Expr e = Expr(2) + Expr(3) * Expr(4);
    ASSERT_EQ(e->kind(), ExprKind::IntImm);
    EXPECT_EQ(evalExpr(e, {}), 14);
}

TEST(Expr, AlgebraicIdentities)
{
    Var x("x");
    EXPECT_TRUE((x + Expr(0)).sameAs(x));
    EXPECT_TRUE((x * Expr(1)).sameAs(x));
    Expr zero = x * Expr(0);
    ASSERT_EQ(zero->kind(), ExprKind::IntImm);
    EXPECT_EQ(evalExpr(zero, {}), 0);
    EXPECT_TRUE(floorDiv(x, Expr(1)).sameAs(x));
    Expr mod1 = floorMod(x, Expr(1));
    EXPECT_EQ(evalExpr(mod1, {}), 0);
}

TEST(Expr, EvaluationBindsVariables)
{
    Var n("n"), q("q");
    Expr e = n * Expr(112) + q;
    VarBinding binding{{n.node(), 3}, {q.node(), 5}};
    EXPECT_EQ(evalExpr(e, binding), 3 * 112 + 5);
}

TEST(Expr, UnboundVariablePanics)
{
    Var n("n");
    Expr e = n + Expr(1);
    EXPECT_THROW(evalExpr(e, {}), PanicError);
}

TEST(Expr, FloorDivModSemantics)
{
    Var x("x");
    Expr div = floorDiv(x, Expr(4));
    Expr mod = floorMod(x, Expr(4));
    for (std::int64_t v : {0, 1, 3, 4, 7, 13}) {
        VarBinding b{{x.node(), v}};
        EXPECT_EQ(evalExpr(div, b), v / 4);
        EXPECT_EQ(evalExpr(mod, b), v % 4);
        // reconstruction identity
        EXPECT_EQ(evalExpr(div, b) * 4 + evalExpr(mod, b), v);
    }
}

TEST(Expr, MinMaxFoldAndEvaluate)
{
    Var x("x");
    EXPECT_EQ(evalExpr(min(Expr(3), Expr(7)), {}), 3);
    EXPECT_EQ(evalExpr(max(Expr(3), Expr(7)), {}), 7);
    VarBinding b{{x.node(), 5}};
    EXPECT_EQ(evalExpr(min(x, Expr(3)), b), 3);
    EXPECT_EQ(evalExpr(max(x, Expr(3)), b), 5);
}

TEST(Expr, CollectVarsDeduplicates)
{
    Var n("n"), q("q");
    Expr e = n * Expr(4) + q + n;
    auto vars = collectVars(e);
    EXPECT_EQ(vars.size(), 2u);
    EXPECT_TRUE(usesVar(e, n.node()));
    EXPECT_TRUE(usesVar(e, q.node()));
    Var other("z");
    EXPECT_FALSE(usesVar(e, other.node()));
}

TEST(Expr, DistinctVarsWithSameNameAreDistinct)
{
    Var a("x"), b("x");
    Expr e = a + b;
    EXPECT_EQ(collectVars(e).size(), 2u);
    EXPECT_NE(a.node(), b.node());
    EXPECT_NE(a.node()->id, b.node()->id);
}

TEST(Expr, SubstitutionRewrites)
{
    Var n("n"), q("q"), t("t");
    Expr e = n * Expr(4) + q;
    Expr replaced = substitute(e, {{n.node(), Expr(t) + Expr(1)}});
    VarBinding b{{t.node(), 2}, {q.node(), 1}};
    EXPECT_EQ(evalExpr(replaced, b), (2 + 1) * 4 + 1);
    // untouched expression is returned as-is
    Expr same = substitute(e, {});
    EXPECT_TRUE(same.sameAs(e));
}

TEST(Expr, PrintingIsReadable)
{
    Var n("n"), q("q");
    Expr e = floorMod(n * Expr(112) + q, Expr(16));
    EXPECT_EQ(exprToString(e), "(((n * 112) + q) % 16)");
}

TEST(Affine, LinearFormExtraction)
{
    Var p("p"), r("r");
    Expr e = p * Expr(2) + r * Expr(3) + Expr(5);
    auto form = tryToAffine(e);
    ASSERT_TRUE(form.has_value());
    EXPECT_EQ(form->coeffOf(p.node()), 2);
    EXPECT_EQ(form->coeffOf(r.node()), 3);
    EXPECT_EQ(form->constant(), 5);
}

TEST(Affine, HandlesSubtractionAndNesting)
{
    Var p("p"), r("r");
    Expr e = (p - r) * Expr(4) - Expr(2);
    auto form = tryToAffine(e);
    ASSERT_TRUE(form.has_value());
    EXPECT_EQ(form->coeffOf(p.node()), 4);
    EXPECT_EQ(form->coeffOf(r.node()), -4);
    EXPECT_EQ(form->constant(), -2);
}

TEST(Affine, CancellationRemovesTerms)
{
    Var p("p");
    Expr e = p - p;
    auto form = tryToAffine(e);
    ASSERT_TRUE(form.has_value());
    EXPECT_TRUE(form->terms().empty());
    EXPECT_EQ(form->constant(), 0);
}

TEST(Affine, RejectsNonAffine)
{
    Var p("p"), r("r");
    EXPECT_FALSE(tryToAffine(p * r).has_value());
    EXPECT_FALSE(tryToAffine(floorDiv(p, Expr(2))).has_value());
    EXPECT_FALSE(tryToAffine(floorMod(p, Expr(2))).has_value());
    EXPECT_FALSE(tryToAffine(min(p, r)).has_value());
}

TEST(Affine, ScaleAndAccumulate)
{
    Var p("p");
    AffineForm a;
    a.addTerm(p.node(), 2);
    a.addConstant(1);
    AffineForm b;
    b.addTerm(p.node(), 3);
    a.accumulate(b);
    EXPECT_EQ(a.coeffOf(p.node()), 5);
    a.scale(2);
    EXPECT_EQ(a.coeffOf(p.node()), 10);
    EXPECT_EQ(a.constant(), 2);
    a.scale(0);
    EXPECT_TRUE(a.terms().empty());
}

} // namespace
} // namespace amos
