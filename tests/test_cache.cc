/**
 * @file
 * Unit tests for the tuning cache: mapping/schedule serialisation
 * round-trips, entry instantiation, file persistence, and the
 * compile-with-cache fast path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "amos/amos.hh"
#include "ops/conv_layers.hh"

namespace amos {
namespace {

TensorComputation
benchConv()
{
    return ops::resnet18ConvLayers(16)[5].build();
}

TEST(CacheSerialise, MappingRoundTrip)
{
    ComputeMapping mapping;
    mapping.groups = {{0, 2, 3}, {}, {4, 6}};
    auto round = mappingFromJson(
        Json::parse(mappingToJson(mapping).dump()));
    EXPECT_EQ(round.groups, mapping.groups);
}

TEST(CacheSerialise, ScheduleRoundTrip)
{
    Schedule sched;
    sched.axes = {{4, 2}, {1, 1}, {8, 1}};
    sched.stageDepth = 2;
    sched.vectorLanes = 8;
    sched.unrollDepth = 4;
    auto round = scheduleFromJson(
        Json::parse(scheduleToJson(sched).dump()));
    EXPECT_EQ(round.toString(), sched.toString());
}

TEST(CacheSerialise, RejectsCorruptEntries)
{
    EXPECT_THROW(mappingFromJson(Json::parse("{}")), PanicError);
    EXPECT_THROW(
        scheduleFromJson(Json::parse(
            R"({"axes":[{"block":0,"warp":1}],"stage":1,)"
            R"("vector":1,"unroll":1})")),
        FatalError);
}

TEST(CacheEntryTest, InstantiateRebuildsValidPlan)
{
    auto conv = benchConv();
    auto hw = hw::v100();
    CacheEntry entry;
    entry.intrinsicName = hw.primaryIntrinsic().name();
    entry.mapping.groups = {{0, 3}, {1}, {4, 5}};
    entry.schedule = Schedule{};

    auto plan = entry.instantiate(conv, hw);
    ASSERT_TRUE(plan.has_value());
    EXPECT_TRUE(plan->valid());
    EXPECT_EQ(plan->mapping().signature(conv), "[n,q | k | c,r]");
}

TEST(CacheEntryTest, InstantiateRejectsForeignEntries)
{
    auto conv = benchConv();
    auto hw = hw::v100();
    CacheEntry entry;
    entry.intrinsicName = "no_such_intrinsic";
    entry.mapping.groups = {{0}, {1}, {4}};
    EXPECT_FALSE(entry.instantiate(conv, hw).has_value());

    // Out-of-range iterator index (entry from another operator).
    entry.intrinsicName = hw.primaryIntrinsic().name();
    entry.mapping.groups = {{99}, {1}, {4}};
    EXPECT_FALSE(entry.instantiate(conv, hw).has_value());

    // Structurally invalid mapping (n and k fused).
    entry.mapping.groups = {{0, 1}, {}, {4}};
    EXPECT_FALSE(entry.instantiate(conv, hw).has_value());
}

TEST(TuningCacheTest, KeyEncodesShapeAndHardware)
{
    auto conv16 = ops::resnet18ConvLayers(16)[5].build();
    auto conv32 = ops::resnet18ConvLayers(32)[5].build();
    auto v = hw::v100();
    auto a = hw::a100();
    EXPECT_NE(TuningCache::keyFor(conv16, v),
              TuningCache::keyFor(conv32, v));
    EXPECT_NE(TuningCache::keyFor(conv16, v),
              TuningCache::keyFor(conv16, a));
    EXPECT_EQ(TuningCache::keyFor(conv16, v),
              TuningCache::keyFor(benchConv(), v));
}

TEST(TuningCacheTest, FileRoundTrip)
{
    TuningCache cache;
    CacheEntry entry;
    entry.intrinsicName = "wmma_16x16x16";
    entry.mapping.groups = {{0, 3}, {1}, {4, 5}};
    entry.schedule.axes = {{2, 2}, {1, 1}, {4, 1}, {1, 1}, {1, 1}};
    entry.cycles = 12345.0;
    cache.insert("k1", entry);

    std::string path = "/tmp/amos_cache_test.json";
    cache.saveFile(path);
    auto loaded = TuningCache::loadFile(path);
    std::remove(path.c_str());

    ASSERT_TRUE(loaded.contains("k1"));
    const auto &round = loaded.lookup("k1");
    EXPECT_EQ(round.intrinsicName, "wmma_16x16x16");
    EXPECT_EQ(round.mapping.groups, entry.mapping.groups);
    EXPECT_DOUBLE_EQ(round.cycles, 12345.0);
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_THROW(loaded.lookup("absent"), PanicError);
    EXPECT_THROW(TuningCache::loadFile("/no/such/file.json"),
                 FatalError);
}

TEST(TuningCacheTest, SaveIsAtomicAndLeavesNoTempFile)
{
    TuningCache cache;
    CacheEntry entry;
    entry.intrinsicName = "wmma_16x16x16";
    entry.mapping.groups = {{0}, {1}, {4}};
    entry.cycles = 3.0;
    cache.insert("k", entry);

    std::string path = "/tmp/amos_cache_atomic.json";
    // Overwrite an existing (stale) file: the temp-then-rename
    // protocol must replace it wholesale and clean up the temp.
    {
        std::ofstream stale(path);
        stale << "stale garbage";
    }
    cache.saveFile(path);
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    auto loaded = TuningCache::loadFile(path);
    std::remove(path.c_str());
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_TRUE(loaded.contains("k"));
}

TEST(TuningCacheTest, LoadToleratesTruncatedFile)
{
    // A crash mid-write before the rename never corrupts the real
    // file; but a file truncated by other means must not take the
    // process down — it degrades to an empty cache.
    std::string path = "/tmp/amos_cache_truncated.json";
    {
        std::ofstream out(path);
        out << R"({"k1":{"intrinsic":"wmma_16x16x16","mapping")";
    }
    auto loaded = TuningCache::loadFile(path);
    std::remove(path.c_str());
    EXPECT_EQ(loaded.size(), 0u);
}

TEST(TuningCacheTest, LoadSkipsCorruptEntriesKeepsGoodOnes)
{
    TuningCache cache;
    CacheEntry entry;
    entry.intrinsicName = "wmma_16x16x16";
    entry.mapping.groups = {{0}, {1}, {4}};
    entry.cycles = 9.0;
    cache.insert("good", entry);
    auto doc = cache.toJson();
    // A structurally broken sibling entry: mapping is a string.
    auto bad = Json::parse(R"({"intrinsic":"x","mapping":"?"})");
    doc.set("bad", std::move(bad));

    auto loaded = TuningCache::fromJson(doc);
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_TRUE(loaded.contains("good"));
    EXPECT_FALSE(loaded.contains("bad"));
    EXPECT_DOUBLE_EQ(loaded.lookup("good").cycles, 9.0);
}

TEST(TuningCacheTest, LoadFileIfExistsHandlesMissingFile)
{
    auto cache =
        TuningCache::loadFileIfExists("/no/such/amos_cache.json");
    EXPECT_EQ(cache.size(), 0u);

    // And loads a real file when present.
    TuningCache source;
    CacheEntry entry;
    entry.intrinsicName = "wmma_16x16x16";
    entry.mapping.groups = {{0}, {1}, {4}};
    source.insert("k", entry);
    std::string path = "/tmp/amos_cache_ifexists.json";
    source.saveFile(path);
    auto loaded = TuningCache::loadFileIfExists(path);
    std::remove(path.c_str());
    EXPECT_EQ(loaded.size(), 1u);
}

TEST(CompileWithCache, MissTunesAndPopulates)
{
    auto conv = benchConv();
    TuneOptions options;
    options.generations = 4;
    Compiler compiler(hw::v100(), options);
    TuningCache cache;
    auto result = compiler.compileWithCache(conv, cache);
    EXPECT_TRUE(result.tensorized);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_TRUE(
        cache.contains(TuningCache::keyFor(conv, hw::v100())));
}

TEST(CompileWithCache, HitReproducesTunedLatency)
{
    auto conv = benchConv();
    TuneOptions options;
    options.generations = 4;
    Compiler compiler(hw::v100(), options);
    TuningCache cache;
    auto miss = compiler.compileWithCache(conv, cache);
    auto hit = compiler.compileWithCache(conv, cache);
    EXPECT_TRUE(hit.tensorized);
    // The cached replay simulates the same (mapping, schedule).
    EXPECT_DOUBLE_EQ(hit.cycles, miss.cycles);
    EXPECT_EQ(hit.mappingSignature, miss.mappingSignature);
    // The hit performs no tuner measurements.
    EXPECT_EQ(hit.measurements, 0);
    EXPECT_GT(miss.measurements, 0);
}

TEST(CompileWithCache, SurvivesSerialisationCycle)
{
    auto conv = benchConv();
    TuneOptions options;
    options.generations = 4;
    Compiler compiler(hw::v100(), options);
    TuningCache cache;
    auto first = compiler.compileWithCache(conv, cache);

    std::string path = "/tmp/amos_cache_cycle.json";
    cache.saveFile(path);
    auto restored = TuningCache::loadFile(path);
    std::remove(path.c_str());

    auto replay = compiler.compileWithCache(conv, restored);
    EXPECT_DOUBLE_EQ(replay.cycles, first.cycles);
}

TEST(TuningCacheTest, TryGetCopiesUnderLock)
{
    TuningCache cache;
    EXPECT_FALSE(cache.tryGet("absent").has_value());
    CacheEntry entry;
    entry.intrinsicName = "wmma_16x16x16";
    entry.mapping.groups = {{0}, {1}, {4}};
    entry.cycles = 7.0;
    cache.insert("k", entry);
    auto got = cache.tryGet("k");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->intrinsicName, "wmma_16x16x16");
    EXPECT_DOUBLE_EQ(got->cycles, 7.0);
}

TEST(TuningCacheTest, ConcurrentInsertLookupSameKey)
{
    // 8 threads hammer the same key with insert + tryGet; every read
    // must observe one of the written entries in full (intrinsic
    // name, mapping, and cycles from the same writer), never a torn
    // mix. Run under TSan in CI.
    TuningCache cache;
    const int threads = 8, iters = 400;
    std::atomic<bool> corrupt{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < iters; ++i) {
                CacheEntry entry;
                entry.intrinsicName = "intr_" + std::to_string(t);
                entry.mapping.groups = {
                    {static_cast<std::size_t>(t)}};
                entry.schedule.stageDepth = t + 1;
                entry.cycles = static_cast<double>(t);
                cache.insert("shared", std::move(entry));
                auto got = cache.tryGet("shared");
                if (!got) {
                    corrupt = true;
                    continue;
                }
                // Whole-entry consistency: all fields must come
                // from the same writer thread.
                int writer = static_cast<int>(got->cycles);
                if (got->intrinsicName !=
                        "intr_" + std::to_string(writer) ||
                    got->mapping.groups.size() != 1 ||
                    got->mapping.groups[0] !=
                        std::vector<std::size_t>{
                            static_cast<std::size_t>(writer)} ||
                    got->schedule.stageDepth != writer + 1)
                    corrupt = true;
                // Distinct keys must coexist untouched.
                cache.insert("own_" + std::to_string(t),
                             std::move(*got));
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_FALSE(corrupt.load());
    EXPECT_EQ(cache.size(), 1u + threads);

    // Round-trip the hammered cache through disk: no corruption.
    std::string path = "/tmp/amos_cache_concurrent.json";
    cache.saveFile(path);
    auto loaded = TuningCache::loadFile(path);
    std::remove(path.c_str());
    EXPECT_EQ(loaded.size(), cache.size());
    auto shared = loaded.tryGet("shared");
    ASSERT_TRUE(shared.has_value());
    int writer = static_cast<int>(shared->cycles);
    EXPECT_EQ(shared->intrinsicName,
              "intr_" + std::to_string(writer));
    EXPECT_EQ(shared->schedule.stageDepth, writer + 1);
}

TEST(TuningCacheTest, HitMissInsertCountersTrackProbes)
{
    TuningCache cache;
    EXPECT_EQ(cache.hitCount(), 0u);
    EXPECT_EQ(cache.missCount(), 0u);
    EXPECT_EQ(cache.insertCount(), 0u);

    EXPECT_FALSE(cache.contains("k"));
    EXPECT_FALSE(cache.tryGet("k").has_value());
    EXPECT_EQ(cache.missCount(), 2u);
    EXPECT_EQ(cache.hitCount(), 0u);

    CacheEntry entry;
    entry.intrinsicName = "wmma_16x16x16";
    entry.mapping.groups = {{0}, {1}, {4}};
    cache.insert("k", entry);
    cache.insert("k", entry); // same-key rewrite still counts
    EXPECT_EQ(cache.insertCount(), 2u);

    EXPECT_TRUE(cache.contains("k"));
    EXPECT_TRUE(cache.tryGet("k").has_value());
    (void)cache.lookup("k");
    EXPECT_EQ(cache.hitCount(), 3u);
    EXPECT_EQ(cache.missCount(), 2u);
}

TEST(TuningCacheTest, CountersSurviveCopyAndMove)
{
    // Copies inherit the source's counter values (the statistics
    // describe the cached *content*'s history, not the object), and
    // then diverge independently.
    TuningCache cache;
    CacheEntry entry;
    entry.intrinsicName = "wmma_16x16x16";
    cache.insert("k", entry);
    (void)cache.tryGet("k");
    (void)cache.tryGet("absent");

    TuningCache copied(cache);
    EXPECT_EQ(copied.hitCount(), 1u);
    EXPECT_EQ(copied.missCount(), 1u);
    EXPECT_EQ(copied.insertCount(), 1u);
    (void)copied.tryGet("k");
    EXPECT_EQ(copied.hitCount(), 2u);
    EXPECT_EQ(cache.hitCount(), 1u); // the source is untouched

    TuningCache moved(std::move(copied));
    EXPECT_EQ(moved.hitCount(), 2u);
    EXPECT_EQ(moved.missCount(), 1u);
    EXPECT_EQ(moved.insertCount(), 1u);
}

TEST(TuningCacheTest, CountersAreExactUnderContention)
{
    // N threads probing disjoint keys: totals must be exact, not
    // approximately right. Run under TSan in CI.
    TuningCache cache;
    CacheEntry entry;
    entry.intrinsicName = "wmma_16x16x16";
    cache.insert("present", entry);

    const int threads = 8, iters = 250;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&cache] {
            for (int i = 0; i < iters; ++i) {
                (void)cache.tryGet("present");
                (void)cache.tryGet("absent");
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(cache.hitCount(),
              static_cast<std::uint64_t>(threads) * iters);
    EXPECT_EQ(cache.missCount(),
              static_cast<std::uint64_t>(threads) * iters);
    EXPECT_EQ(cache.insertCount(), 1u);
}

TEST(CompileWithCache, ConcurrentCompilersShareOneCache)
{
    // Several compiler threads resolve the same workload through one
    // cache; every result must be usable and the cache ends with one
    // entry for the workload.
    auto conv = benchConv();
    TuneOptions options;
    options.generations = 2;
    options.numThreads = 1; // threads come from the outer fan-out
    Compiler compiler(hw::v100(), options);
    TuningCache cache;
    const int threads = 4;
    std::vector<CompileResult> results(threads);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t)
        workers.emplace_back([&, t] {
            results[t] = compiler.compileWithCache(conv, cache);
        });
    for (auto &w : workers)
        w.join();
    for (const auto &result : results) {
        EXPECT_TRUE(result.tensorized);
        EXPECT_GT(result.cycles, 0.0);
    }
    EXPECT_EQ(cache.size(), 1u);
}

} // namespace
} // namespace amos
