/**
 * @file
 * Layout-sensitivity tests (the Sec. 7.3 NHWC story): the NHWC
 * convolution variant computes the same mathematics as NCHW, the
 * AutoTVM proxy's templates only fire on channels-last operators,
 * and AMOS maps both layouts without caring.
 */

#include <gtest/gtest.h>

#include "amos/amos.hh"
#include "baselines/baselines.hh"
#include "isa/intrinsics.hh"
#include "mapping/execute.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "tensor/reference.hh"

namespace amos {
namespace {

ops::ConvParams
smallConv()
{
    ops::ConvParams pr;
    pr.batch = 2;
    pr.in_channels = 3;
    pr.out_channels = 4;
    pr.out_h = 3;
    pr.out_w = 3;
    pr.kernel_h = 2;
    pr.kernel_w = 2;
    return pr;
}

TEST(Layout, NhwcComputesTheSameConvolution)
{
    auto pr = smallConv();
    auto nchw = ops::makeConv2d(pr);
    auto nhwc = ops::makeConv2dNHWC(pr);

    // Fill NCHW inputs, transpose them into the NHWC layouts, run
    // both references, compare element-wise through the transpose.
    auto nchw_in = makePatternInputs(nchw, 31);
    Buffer nhwc_img(nhwc.inputs()[0].decl);
    Buffer nhwc_w(nhwc.inputs()[1].decl);
    std::int64_t C = pr.in_channels, K = pr.out_channels;
    std::int64_t H = 4, W = 4; // implied input spatial extent
    for (std::int64_t n = 0; n < pr.batch; ++n)
        for (std::int64_t c = 0; c < C; ++c)
            for (std::int64_t h = 0; h < H; ++h)
                for (std::int64_t w = 0; w < W; ++w)
                    nhwc_img.set(
                        nhwc_img.flatten({n, h, w, c}),
                        nchw_in[0].at(nchw_in[0].flatten(
                            {n, c, h, w})));
    for (std::int64_t k = 0; k < K; ++k)
        for (std::int64_t c = 0; c < C; ++c)
            for (std::int64_t r = 0; r < pr.kernel_h; ++r)
                for (std::int64_t s = 0; s < pr.kernel_w; ++s)
                    nhwc_w.set(nhwc_w.flatten({r, s, c, k}),
                               nchw_in[1].at(nchw_in[1].flatten(
                                   {k, c, r, s})));

    Buffer out_nchw(nchw.output());
    referenceExecute(nchw, {&nchw_in[0], &nchw_in[1]}, out_nchw);
    Buffer out_nhwc(nhwc.output());
    referenceExecute(nhwc, {&nhwc_img, &nhwc_w}, out_nhwc);

    for (std::int64_t n = 0; n < pr.batch; ++n)
        for (std::int64_t k = 0; k < K; ++k)
            for (std::int64_t p = 0; p < pr.out_h; ++p)
                for (std::int64_t q = 0; q < pr.out_w; ++q)
                    EXPECT_NEAR(
                        out_nchw.at(
                            out_nchw.flatten({n, k, p, q})),
                        out_nhwc.at(
                            out_nhwc.flatten({n, p, q, k})),
                        1e-5f);
}

TEST(Layout, ChannelsLastDetector)
{
    auto pr = smallConv();
    EXPECT_TRUE(
        baselines::isChannelsLast(ops::makeConv2dNHWC(pr)));
    EXPECT_FALSE(baselines::isChannelsLast(ops::makeConv2d(pr)));
    EXPECT_FALSE(
        baselines::isChannelsLast(ops::makeGemm(8, 8, 8)));
    EXPECT_FALSE(baselines::isChannelsLast(
        ops::makeDepthwiseConv2d(pr, 1)));
}

TEST(Layout, NhwcMappingsAreExact)
{
    auto nhwc = ops::makeConv2dNHWC(smallConv());
    auto plans = enumeratePlans(nhwc, isa::wmmaTiny(), {});
    ASSERT_GT(plans.size(), 0u);
    for (const auto &plan : plans) {
        SCOPED_TRACE(plan.mapping().signature(nhwc));
        EXPECT_LE(mappedVsReferenceError(plan), 1e-4f);
    }
}

TEST(Layout, AddressableCountDependsOnLayout)
{
    // Addressability is a property of the output layout: NCHW's
    // interleaved k splits {n} from {p,q} (5 spatial choices = 35
    // mappings), NHWC's contiguous n,p,q run only allows suffixes
    // (3 choices = 21). The permissive space is layout-independent.
    auto pr = smallConv();
    pr.kernel_h = pr.kernel_w = 3;
    auto nchw = ops::makeConv2d(pr);
    auto nhwc = ops::makeConv2dNHWC(pr);
    EXPECT_EQ(enumerateMappings(nchw, isa::wmmaTiny(), {}).size(),
              35u);
    EXPECT_EQ(enumerateMappings(nhwc, isa::wmmaTiny(), {}).size(),
              21u);
    GeneratorOptions permissive;
    permissive.policy = LegalityPolicy::Permissive;
    EXPECT_EQ(
        enumerateMappings(nchw, isa::wmmaTiny(), permissive).size(),
        enumerateMappings(nhwc, isa::wmmaTiny(), permissive)
            .size());
}

TEST(Layout, AutoTvmTemplatesAreLayoutGated)
{
    ops::ConvParams pr;
    pr.batch = 16;
    pr.in_channels = 64;
    pr.out_channels = 64;
    pr.out_h = 14;
    pr.out_w = 14;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto hw = hw::v100();
    auto nchw_res =
        baselines::autoTvmProxy(ops::makeConv2d(pr), hw);
    auto nhwc_res =
        baselines::autoTvmProxy(ops::makeConv2dNHWC(pr), hw);
    EXPECT_FALSE(nchw_res.tensorized);
    EXPECT_TRUE(nhwc_res.tensorized);
    EXPECT_LT(nhwc_res.milliseconds, nchw_res.milliseconds);
}

TEST(Layout, AmosIsLayoutAgnostic)
{
    // The Sec. 7.3 punchline: AMOS tensorizes both layouts; its
    // speedup over stock AutoTVM is dramatic on the unsupported
    // layout and modest on the supported one.
    ops::ConvParams pr;
    pr.batch = 16;
    pr.in_channels = 64;
    pr.out_channels = 64;
    pr.out_h = 14;
    pr.out_w = 14;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto hw = hw::v100();
    TuneOptions options;
    options.generations = 6;
    Compiler compiler(hw, options);

    auto amos_nchw = compiler.compile(ops::makeConv2d(pr));
    auto amos_nhwc = compiler.compile(ops::makeConv2dNHWC(pr));
    ASSERT_TRUE(amos_nchw.tensorized && amos_nhwc.tensorized);
    // AMOS's two layouts land in the same performance ballpark.
    double ratio = amos_nchw.milliseconds / amos_nhwc.milliseconds;
    EXPECT_GT(ratio, 0.4);
    EXPECT_LT(ratio, 2.5);

    double speedup_nchw =
        baselines::autoTvmProxy(ops::makeConv2d(pr), hw)
            .milliseconds /
        amos_nchw.milliseconds;
    double speedup_nhwc =
        baselines::autoTvmProxy(ops::makeConv2dNHWC(pr), hw)
            .milliseconds /
        amos_nhwc.milliseconds;
    EXPECT_GT(speedup_nchw, speedup_nhwc);
    EXPECT_GE(speedup_nhwc, 0.8); // never materially slower
}

} // namespace
} // namespace amos
