/**
 * @file
 * Unit tests for Algorithm 1 (mapping validation), built directly on
 * the paper's Fig. 4 matrices for 2D convolution on Tensor Core.
 */

#include <gtest/gtest.h>

#include "mapping/validate.hh"
#include "support/logging.hh"

namespace amos {
namespace {

// Software access matrix X for 2D convolution over iterations
// (n, k, p, q, c, r, s); rows are (image, weight, out) as in Fig. 4.
BitMatrix
convX()
{
    return BitMatrix::fromRows({
        {1, 0, 1, 1, 1, 1, 1}, // image
        {0, 1, 0, 0, 1, 1, 1}, // weight
        {1, 1, 1, 1, 0, 0, 0}, // out
    });
}

// Intrinsic access matrix Z for Tensor Core over (i1, i2, r1).
BitMatrix
tensorCoreZ()
{
    return BitMatrix::fromRows({
        {1, 0, 1}, // Src1
        {0, 1, 1}, // Src2
        {1, 1, 0}, // Dst
    });
}

// The paper's matching matrix: n,p,q -> i1; k -> i2; c,r,s -> r1.
BitMatrix
fig4Y()
{
    return BitMatrix::fromRows({
        {1, 0, 1, 1, 0, 0, 0},
        {0, 1, 0, 0, 0, 0, 0},
        {0, 0, 0, 0, 1, 1, 1},
    });
}

TEST(Validate, PaperExampleIsValid)
{
    auto res = validateMatching(convX(), fig4Y(), tensorCoreZ());
    EXPECT_TRUE(res.valid) << res.failure;
    // For a full mapping, X' and Z' reproduce X and Z exactly.
    EXPECT_EQ(res.softwareAccess, convX());
    EXPECT_EQ(res.hardwareAccess, tensorCoreZ());
}

TEST(Validate, MappingNAndKTogetherIsInvalid)
{
    // The paper's Sec. 5.2 counterexample: n and k may not share i1,
    // because n never appears in weight while k never appears in
    // image.
    auto y = BitMatrix::fromRows({
        {1, 1, 1, 1, 0, 0, 0}, // n,k,p,q -> i1
        {0, 0, 0, 0, 0, 0, 0},
        {0, 0, 0, 0, 1, 1, 1},
    });
    auto res = validateMatching(convX(), y, tensorCoreZ());
    EXPECT_FALSE(res.valid);
    EXPECT_FALSE(res.failure.empty());
}

TEST(Validate, ReductionIterOnSpatialDimIsInvalid)
{
    // c (reduction) mapped to i1 (spatial): access patterns disagree.
    auto y = BitMatrix::fromRows({
        {0, 0, 0, 0, 1, 0, 0}, // c -> i1
        {0, 1, 0, 0, 0, 0, 0},
        {0, 0, 0, 0, 0, 1, 1},
    });
    EXPECT_FALSE(validateMatching(convX(), y, tensorCoreZ()).valid);
}

TEST(Validate, PartialMappingLeavesOuterLoops)
{
    // Only q -> i1, k -> i2, c -> r1; n,p,r,s stay outer. Valid under
    // the partial-mapping semantics.
    auto y = BitMatrix::fromRows({
        {0, 0, 0, 1, 0, 0, 0},
        {0, 1, 0, 0, 0, 0, 0},
        {0, 0, 0, 0, 1, 0, 0},
    });
    EXPECT_TRUE(validateMatching(convX(), y, tensorCoreZ()).valid);
    // Strict mode rejects it: unmapped columns fail X' = X.
    EXPECT_FALSE(
        validateMatching(convX(), y, tensorCoreZ(), false).valid);
}

TEST(Validate, UncoveredIntrinsicIterationToleratedWhenPartial)
{
    // GEMV-style: nothing maps to i2.
    auto x = BitMatrix::fromRows({
        {1, 1}, // A[i,k]
        {0, 1}, // x[k]
        {1, 0}, // out[i]
    });
    auto y = BitMatrix::fromRows({
        {1, 0}, // i -> i1
        {0, 0}, // i2 uncovered
        {0, 1}, // k -> r1
    });
    EXPECT_TRUE(validateMatching(x, y, tensorCoreZ()).valid);
    EXPECT_FALSE(validateMatching(x, y, tensorCoreZ(), false).valid);
}

TEST(Validate, EmptyMappingIsTriviallyValidOnlyWhenPartial)
{
    BitMatrix y(3, 7);
    EXPECT_TRUE(validateMatching(convX(), y, tensorCoreZ()).valid);
    EXPECT_FALSE(
        validateMatching(convX(), y, tensorCoreZ(), false).valid);
}

TEST(Validate, ShapeMismatchesPanic)
{
    BitMatrix y(2, 7); // wrong number of intrinsic iterations
    EXPECT_THROW(validateMatching(convX(), y, tensorCoreZ()),
                 PanicError);
    BitMatrix y2(3, 6); // wrong number of software iterations
    EXPECT_THROW(validateMatching(convX(), y2, tensorCoreZ()),
                 PanicError);
    BitMatrix z(2, 3); // wrong operand count
    EXPECT_THROW(validateMatching(convX(), fig4Y(), z), PanicError);
}

TEST(Validate, DerivedMatricesExposedForDiagnostics)
{
    auto res = validateMatching(convX(), fig4Y(), tensorCoreZ());
    EXPECT_EQ(res.softwareAccess.rows(), 3u);
    EXPECT_EQ(res.softwareAccess.cols(), 7u);
    EXPECT_EQ(res.hardwareAccess.rows(), 3u);
    EXPECT_EQ(res.hardwareAccess.cols(), 3u);
}

TEST(Validate, SwappingROperandsBreaksValidity)
{
    // Mapping k -> i1 and n,p,q -> i2 flips which operand each
    // iteration addresses; Algorithm 1 must reject it.
    auto y = BitMatrix::fromRows({
        {0, 1, 0, 0, 0, 0, 0}, // k -> i1
        {1, 0, 1, 1, 0, 0, 0}, // n,p,q -> i2
        {0, 0, 0, 0, 1, 1, 1},
    });
    EXPECT_FALSE(validateMatching(convX(), y, tensorCoreZ()).valid);
}

} // namespace
} // namespace amos
