/**
 * @file
 * Unit tests for MappingPlan: access matrices, fused groups,
 * quotients, padding, virtual vs physical expressions, memory
 * mapping, and the paper's Fig. 3 running example (2D convolution on
 * a 2x2x2 Tensor Core).
 */

#include <gtest/gtest.h>

#include "isa/intrinsics.hh"
#include "mapping/mapping.hh"
#include "ops/operators.hh"
#include "support/logging.hh"

namespace amos {
namespace {

using ops::ConvParams;

/** The paper's Fig. 3 convolution: n=1,c=1,k=4,p=q=2,r=s=3. */
TensorComputation
fig3Conv()
{
    ConvParams pr;
    pr.batch = 1;
    pr.in_channels = 1;
    pr.out_channels = 4;
    pr.out_h = 2;
    pr.out_w = 2;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    return ops::makeConv2d(pr);
}

/** Fig. 3 part d: n,p,q -> i1; k -> i2; c,r,s -> r1. */
ComputeMapping
fig3Mapping()
{
    // Iteration order of makeConv2d: n,k,p,q,c,r,s.
    ComputeMapping m;
    m.groups = {{0, 2, 3}, {1}, {4, 5, 6}};
    return m;
}

TEST(SoftwareAccess, Conv2dMatchesFig4)
{
    auto conv = fig3Conv();
    auto x = softwareAccessMatrix(conv);
    auto expected = BitMatrix::fromRows({
        {1, 0, 1, 1, 1, 1, 1}, // image
        {0, 1, 0, 0, 1, 1, 1}, // weight
        {1, 1, 1, 1, 0, 0, 0}, // out
    });
    EXPECT_EQ(x, expected);
}

TEST(Compatibility, Conv2dOnTensorCore)
{
    auto conv = fig3Conv();
    auto intr = isa::wmmaTiny();
    auto compat = compatibilityMatrix(conv, intr.compute);
    // i1 is compatible with n, p, q.
    auto expected = BitMatrix::fromRows({
        {1, 0, 1, 1, 0, 0, 0},
        {0, 1, 0, 0, 0, 0, 0},
        {0, 0, 0, 0, 1, 1, 1},
    });
    EXPECT_EQ(compat, expected);
}

TEST(Compatibility, BarrierIterationsExcluded)
{
    auto conv = fig3Conv();
    // Bar p from tensorization.
    conv.addTensorizeBarrier(conv.iters()[2].var.node());
    auto compat = compatibilityMatrix(conv, isa::wmmaTiny().compute);
    EXPECT_FALSE(compat.at(0, 2));
    EXPECT_TRUE(compat.at(0, 3));
}

TEST(Compatibility, RejectsOperandCountMismatch)
{
    auto mean = ops::makeMean(4, 4);
    auto dot = isa::maliDot(); // 2 sources, fine
    EXPECT_NO_THROW(compatibilityMatrix(mean, dot.compute));
    // A SumReduce computation cannot match a MultiplyAdd intrinsic.
    IterVar i{Var("i"), 2, IterKind::Spatial};
    TensorDecl a("A", {2});
    TensorDecl out("out", {2});
    TensorComputation sum("sum", {i}, out, {i.var}, {{a, {i.var}}},
                          CombineKind::SumReduce);
    EXPECT_THROW(compatibilityMatrix(sum, dot.compute), FatalError);
}

TEST(MappingPlan, Fig3GroupsAndQuotients)
{
    auto conv = fig3Conv();
    auto intr = isa::wmmaTiny();
    MappingPlan plan(conv, intr, fig3Mapping());
    ASSERT_TRUE(plan.valid()) << plan.validation().failure;

    const auto &groups = plan.groups();
    ASSERT_EQ(groups.size(), 3u);
    // i1 fuses n,p,q: extent 1*2*2 = 4 over intrinsic extent 2.
    EXPECT_EQ(groups[0].fusedExtent, 4);
    EXPECT_EQ(groups[0].quotient, 2);
    EXPECT_FALSE(groups[0].padded);
    // i2 fuses k: extent 4 over 2.
    EXPECT_EQ(groups[1].fusedExtent, 4);
    EXPECT_EQ(groups[1].quotient, 2);
    // r1 fuses c,r,s: extent 9 over 2 -> quotient 5 with padding.
    EXPECT_EQ(groups[2].fusedExtent, 9);
    EXPECT_EQ(groups[2].quotient, 5);
    EXPECT_TRUE(groups[2].padded);

    // The paper's Fig. 3: 2 x 2 x 5 small multiplications.
    EXPECT_EQ(plan.intrinsicCallCount(), 2 * 2 * 5);
    // Waste: (2*2)*(2*2)*(5*2) / (4*4*9) = 160/144.
    EXPECT_NEAR(plan.paddingWasteFactor(), 160.0 / 144.0, 1e-9);
}

TEST(MappingPlan, Fig3PhysicalExpressions)
{
    auto conv = fig3Conv();
    MappingPlan plan(conv, isa::wmmaTiny(), fig3Mapping());
    auto phys = plan.physicalComputeExprs();
    ASSERT_EQ(phys.size(), 3u);
    // Fig. 3 part g: i1 <- (n*4 + p*2 + q) mod 2, etc.
    EXPECT_EQ(exprToString(phys[0]), "((((n * 4) + (p * 2)) + q) % 2)");
    EXPECT_EQ(exprToString(phys[1]), "(k % 2)");
    EXPECT_EQ(exprToString(phys[2]),
              "((((c * 9) + (r * 3)) + s) % 2)");

    auto virt = plan.virtualComputeExprs();
    // Fig. 3 part e: the virtual mapping has no mod restriction.
    EXPECT_EQ(exprToString(virt[0]), "(((n * 4) + (p * 2)) + q)");
}

TEST(MappingPlan, Fig3MemoryMapping)
{
    auto conv = fig3Conv();
    MappingPlan plan(conv, isa::wmmaTiny(), fig3Mapping());
    const auto &ops = plan.operands();
    ASSERT_EQ(ops.size(), 3u);

    // Src1 (image): tiles of 2x2 = 4 elements, 2x5 = 10 tiles,
    // row stride 2 — the paper's Fig. 3 part h.
    EXPECT_EQ(ops[0].tileElems, 4);
    EXPECT_EQ(ops[0].tileStride, 2);
    EXPECT_EQ(ops[0].numTiles, 10);
    // Base address: (fused_i1 / 2) * 20 + (fused_r1 / 2) * 4.
    VarBinding binding;
    for (const auto &iv : conv.iters())
        binding[iv.var.node()] = 0;
    // n=0,p=1,q=1 -> fused_i1 = 3 -> tile 1; c=0,r=2,s=2 -> 8 -> 4.
    binding[conv.iters()[2].var.node()] = 1;
    binding[conv.iters()[3].var.node()] = 1;
    binding[conv.iters()[5].var.node()] = 2;
    binding[conv.iters()[6].var.node()] = 2;
    EXPECT_EQ(evalExpr(ops[0].baseAddress, binding), 1 * 20 + 4 * 4);

    // Src2 (weight): 5x2 tiles.
    EXPECT_EQ(ops[1].numTiles, 10);
    // Dst: 2x2 tiles, independent of the reduction quotient.
    EXPECT_EQ(ops[2].numTiles, 4);
    EXPECT_EQ(evalExpr(ops[2].baseAddress, binding), 1 * 8);
}

TEST(MappingPlan, UnmappedIterationsBecomeOuterAxes)
{
    auto conv = fig3Conv();
    // Map only q -> i1, k -> i2, c -> r1.
    ComputeMapping m;
    m.groups = {{3}, {1}, {4}};
    MappingPlan plan(conv, isa::wmmaTiny(), m);
    ASSERT_TRUE(plan.valid());
    // Unmapped: n, p, r, s.
    EXPECT_EQ(plan.unmappedIters().size(), 4u);
    // q extent 2 == intrinsic extent: quotient 1, axis dropped;
    // k: 4/2 = 2; c extent 1: quotient 1 dropped but padded.
    int quotient_axes = 0;
    for (const auto &axis : plan.outerAxes())
        quotient_axes +=
            axis.kind == MappingPlan::OuterAxis::Kind::GroupQuotient;
    EXPECT_EQ(quotient_axes, 1);
    EXPECT_TRUE(plan.groups()[2].padded); // c extent 1 < 2
    // Padding waste: i1 exact, k exact, r1 pads 1 -> 2.
    EXPECT_NEAR(plan.paddingWasteFactor(), 2.0, 1e-9);
}

TEST(MappingPlan, UncoveredIntrinsicIterationPadsToOne)
{
    auto gemv = ops::makeGemv(8, 8);
    ComputeMapping m;
    m.groups = {{0}, {}, {1}}; // nothing on i2
    MappingPlan plan(gemv, isa::wmmaTiny(), m);
    ASSERT_TRUE(plan.valid());
    EXPECT_EQ(plan.groups()[1].fusedExtent, 1);
    EXPECT_EQ(plan.groups()[1].quotient, 1);
    EXPECT_TRUE(plan.groups()[1].padded);
    EXPECT_NEAR(plan.paddingWasteFactor(), 2.0, 1e-9);
}

TEST(MappingPlan, DoubleAssignmentRejected)
{
    auto conv = fig3Conv();
    ComputeMapping m;
    m.groups = {{0, 0}, {1}, {4}};
    EXPECT_THROW(MappingPlan(conv, isa::wmmaTiny(), m), FatalError);
}

TEST(MappingPlan, WrongGroupCountRejected)
{
    auto conv = fig3Conv();
    ComputeMapping m;
    m.groups = {{0}, {1}};
    EXPECT_THROW(MappingPlan(conv, isa::wmmaTiny(), m), FatalError);
}

TEST(MappingPlan, InvalidMappingDetectedNotThrown)
{
    auto conv = fig3Conv();
    ComputeMapping m;
    m.groups = {{0, 1}, {}, {4, 5, 6}}; // n,k share i1: invalid
    MappingPlan plan(conv, isa::wmmaTiny(), m);
    EXPECT_FALSE(plan.valid());
    EXPECT_FALSE(plan.validation().failure.empty());
}

TEST(MappingPlan, SignatureAndStrings)
{
    auto conv = fig3Conv();
    MappingPlan plan(conv, isa::wmmaTiny(), fig3Mapping());
    EXPECT_EQ(plan.mapping().signature(conv), "[n,p,q | k | c,r,s]");
    auto cm = plan.computeMappingString();
    EXPECT_NE(cm.find("[i1, i2, r1] <- ["), std::string::npos);
    auto mm = plan.memoryMappingString();
    EXPECT_NE(mm.find("addr_Src1"), std::string::npos);
    EXPECT_NE(mm.find("stride_Src1 <- 2"), std::string::npos);
}

TEST(MappingPlan, Table5StyleMappingOnRealLayer)
{
    // C1 of ResNet-18 with the mapping the paper reports:
    // i1 <- (n*56 + q) mod 16, i2 <- k mod 16, r1 <- (c*3+r) mod 16.
    ConvParams pr;
    pr.batch = 16;
    pr.in_channels = 64;
    pr.out_channels = 64;
    pr.out_h = 56;
    pr.out_w = 56;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto conv = ops::makeConv2d(pr);
    ComputeMapping m;
    m.groups = {{0, 3}, {1}, {4, 5}}; // n,q | k | c,r
    MappingPlan plan(conv, isa::wmma(16, 16, 16), m);
    ASSERT_TRUE(plan.valid());
    auto phys = plan.physicalComputeExprs();
    EXPECT_EQ(exprToString(phys[0]), "(((n * 56) + q) % 16)");
    EXPECT_EQ(exprToString(phys[1]), "(k % 16)");
    EXPECT_EQ(exprToString(phys[2]), "(((c * 3) + r) % 16)");
}

} // namespace
} // namespace amos
