/**
 * @file
 * Unit tests for the learned cost model: feature extraction, fitting
 * behaviour, prediction quality on its own training archive, and
 * integration with the tuner.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "explore/learned_model.hh"
#include "explore/stats.hh"
#include "explore/tuner.hh"
#include "hw/hardware.hh"
#include "mapping/generate.hh"
#include "ops/conv_layers.hh"
#include "sim/simulator.hh"

namespace amos {
namespace {

/** Sampled (profile, measured) archive for one conv layer. */
struct Archive
{
    std::vector<KernelProfile> profiles;
    std::vector<double> cycles;
};

Archive
sampleArchive(int count, std::uint64_t seed)
{
    auto conv = ops::resnet18ConvLayers(16)[5].build();
    auto hw = hw::v100();
    auto plans = enumeratePlans(conv, hw.primaryIntrinsic(), {});
    Rng rng(seed);
    Archive archive;
    while (static_cast<int>(archive.profiles.size()) < count) {
        const auto &plan = plans[static_cast<std::size_t>(
            rng.uniformInt(0,
                           static_cast<std::int64_t>(plans.size()) -
                               1))];
        auto sched = sampleSchedule(plan, rng);
        auto prof = lowerKernel(plan, sched, hw);
        auto sim = simulateKernel(prof, hw);
        if (!sim.schedulable)
            continue;
        archive.profiles.push_back(prof);
        archive.cycles.push_back(sim.cycles);
    }
    return archive;
}

TEST(LearnedModel, FeatureVectorShape)
{
    auto archive = sampleArchive(1, 3);
    auto hw = hw::v100();
    auto f = LearnedModel::features(archive.profiles[0], hw);
    EXPECT_EQ(f.size(), LearnedModel::featureCount());
    EXPECT_DOUBLE_EQ(f[0], 1.0); // bias term
    for (double v : f)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(LearnedModel, UntrainedFallsBackToAnalytic)
{
    auto archive = sampleArchive(1, 4);
    auto hw = hw::v100();
    LearnedModel model;
    EXPECT_FALSE(model.trained());
    EXPECT_DOUBLE_EQ(model.predictCycles(archive.profiles[0], hw),
                     modelCycles(archive.profiles[0], hw));
}

TEST(LearnedModel, FitRequiresMinimumSamples)
{
    auto archive = sampleArchive(
        static_cast<int>(LearnedModel::kMinSamples) - 1, 5);
    auto hw = hw::v100();
    LearnedModel model;
    for (std::size_t i = 0; i < archive.profiles.size(); ++i)
        model.addSample(archive.profiles[i], hw, archive.cycles[i]);
    model.fit();
    EXPECT_FALSE(model.trained());
}

TEST(LearnedModel, IgnoresUnusableSamples)
{
    auto archive = sampleArchive(1, 6);
    auto hw = hw::v100();
    LearnedModel model;
    model.addSample(archive.profiles[0], hw, -1.0);
    model.addSample(archive.profiles[0], hw,
                    std::numeric_limits<double>::infinity());
    EXPECT_EQ(model.sampleCount(), 0u);
}

TEST(LearnedModel, FitsItsTrainingArchive)
{
    auto archive = sampleArchive(60, 7);
    auto hw = hw::v100();
    LearnedModel model;
    for (std::size_t i = 0; i < archive.profiles.size(); ++i)
        model.addSample(archive.profiles[i], hw, archive.cycles[i]);
    model.fit();
    ASSERT_TRUE(model.trained());

    // Geometric-mean relative error on the training set must beat
    // the analytic model's (the regression corrects its bias).
    double learned_err = 0.0, analytic_err = 0.0;
    for (std::size_t i = 0; i < archive.profiles.size(); ++i) {
        double truth = archive.cycles[i];
        double lp = model.predictCycles(archive.profiles[i], hw);
        double ap = modelCycles(archive.profiles[i], hw);
        learned_err += std::fabs(std::log(lp / truth));
        analytic_err += std::fabs(std::log(ap / truth));
    }
    EXPECT_LT(learned_err, analytic_err);
}

TEST(LearnedModel, GeneralisesToHeldOutSamples)
{
    auto train = sampleArchive(80, 11);
    auto test = sampleArchive(30, 99);
    auto hw = hw::v100();
    LearnedModel model;
    for (std::size_t i = 0; i < train.profiles.size(); ++i)
        model.addSample(train.profiles[i], hw, train.cycles[i]);
    model.fit();
    ASSERT_TRUE(model.trained());

    // Rank quality on held-out data: pairwise accuracy above chance.
    std::vector<ExplorationStep> steps;
    for (std::size_t i = 0; i < test.profiles.size(); ++i)
        steps.push_back(
            {static_cast<int>(i), 0,
             model.predictCycles(test.profiles[i], hw),
             test.cycles[i], 0.0});
    EXPECT_GT(pairwiseAccuracy(steps), 0.7);
}

TEST(LearnedModel, InvalidProfilePredictsInfinity)
{
    auto gemm = ops::makeGemm(4096, 4096, 64);
    ComputeMapping m;
    m.groups = {{0}, {1}, {2}};
    MappingPlan plan(gemm, isa::wmma(16, 16, 16), m);
    auto hw = hw::v100();
    auto prof = lowerKernel(plan, defaultSchedule(plan), hw);
    LearnedModel model;
    EXPECT_TRUE(std::isinf(model.predictCycles(prof, hw)));
}

LearnedModel
trainedModel(int samples, std::uint64_t seed)
{
    auto archive = sampleArchive(samples, seed);
    auto hw = hw::v100();
    LearnedModel model;
    for (std::size_t i = 0; i < archive.profiles.size(); ++i)
        model.addSample(archive.profiles[i], hw, archive.cycles[i]);
    model.fit();
    return model;
}

TEST(Snapshot, JsonRoundTripPreservesPredictions)
{
    auto model = trainedModel(60, 21);
    ASSERT_TRUE(model.trained());
    auto restored = LearnedModel::fromJson(
        Json::parse(model.toJson().dump()));
    ASSERT_TRUE(restored.has_value());
    EXPECT_TRUE(restored->trained());
    EXPECT_EQ(restored->fittedSamples(), model.fittedSamples());
    EXPECT_EQ(restored->digest(), model.digest());

    // Bit-exact predictions: weights dump with enough precision to
    // survive the round trip, so warm-started searches behave the
    // same whether the model came from memory or from disk.
    auto probe = sampleArchive(10, 77);
    auto hw = hw::v100();
    for (std::size_t i = 0; i < probe.profiles.size(); ++i)
        EXPECT_DOUBLE_EQ(
            restored->predictCycles(probe.profiles[i], hw),
            model.predictCycles(probe.profiles[i], hw));
}

TEST(Snapshot, SaveAndLoadFileRoundTrip)
{
    auto model = trainedModel(60, 22);
    auto path = (std::filesystem::temp_directory_path() /
                 ("amos_model_" + std::to_string(::getpid()) +
                  ".json"))
                    .string();
    model.saveFile(path);
    auto loaded = LearnedModel::loadFile(path);
    std::remove(path.c_str());
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->digest(), model.digest());
}

TEST(Snapshot, UntrainedModelRefusesToSerialise)
{
    LearnedModel model;
    EXPECT_THROW(model.toJson(), std::exception);
}

TEST(Snapshot, CorruptInputsLoadAsNulloptNeverCrash)
{
    auto good = trainedModel(60, 23).toJson();

    auto corrupt = [&](auto mutate) {
        Json doc = Json::parse(good.dump());
        mutate(doc);
        return LearnedModel::fromJson(doc);
    };

    // Wrong or missing schema tag.
    EXPECT_FALSE(corrupt([](Json &d) {
                     d.set("schema", Json("amos-learned-model-v9"));
                 }).has_value());
    // Feature-count mismatch (a snapshot from a different build).
    EXPECT_FALSE(corrupt([](Json &d) {
                     d.set("feature_count", Json(std::int64_t(3)));
                 }).has_value());
    // Truncated weight vector.
    EXPECT_FALSE(corrupt([](Json &d) {
                     Json w = Json::array();
                     w.push(Json(1.0));
                     d.set("weights", w);
                 }).has_value());
    // Non-numeric weight.
    EXPECT_FALSE(corrupt([](Json &d) {
                     Json w = Json::array();
                     for (std::size_t i = 0;
                          i < LearnedModel::featureCount(); ++i)
                         w.push(Json("nan"));
                     d.set("weights", w);
                 }).has_value());
    // Entirely the wrong document shape.
    EXPECT_FALSE(
        LearnedModel::fromJson(Json(std::int64_t(7))).has_value());
    EXPECT_FALSE(LearnedModel::fromJson(Json::object()).has_value());

    // The intact document still loads.
    EXPECT_TRUE(LearnedModel::fromJson(good).has_value());
}

TEST(Snapshot, UnreadableOrUnparseableFilesLoadAsNullopt)
{
    EXPECT_FALSE(LearnedModel::loadFile("/nonexistent/model.json")
                     .has_value());

    auto path = (std::filesystem::temp_directory_path() /
                 ("amos_model_garbage_" +
                  std::to_string(::getpid()) + ".json"))
                    .string();
    {
        std::ofstream out(path);
        out << "{ this is not json";
    }
    EXPECT_FALSE(LearnedModel::loadFile(path).has_value());
    std::remove(path.c_str());
}

TEST(Snapshot, DigestSeparatesDifferentFits)
{
    auto a = trainedModel(60, 31);
    auto b = trainedModel(60, 32);
    EXPECT_EQ(a.digest().size(), 16u);
    EXPECT_EQ(a.digest(), trainedModel(60, 31).digest());
    EXPECT_NE(a.digest(), b.digest());
}

TEST(LearnedModel, TunerIntegrationFindsComparableResults)
{
    auto conv = ops::resnet18ConvLayers(16)[8].build();
    auto hw = hw::v100();
    TuneOptions analytic;
    analytic.generations = 6;
    TuneOptions learned = analytic;
    learned.useLearnedModel = true;
    auto a = tune(conv, hw, analytic);
    auto l = tune(conv, hw, learned);
    ASSERT_TRUE(a.tensorizable && l.tensorizable);
    // The learned screening must stay within 25% of the analytic
    // pipeline's result (it typically matches or beats it).
    EXPECT_LT(l.bestCycles, a.bestCycles * 1.25);
    EXPECT_TRUE(std::isfinite(l.bestCycles));
}

} // namespace
} // namespace amos
