/**
 * @file
 * Unit tests for the analytic performance model and the timing
 * simulator: monotonicity properties, pipeline behaviour, occupancy,
 * wave quantisation, scalar roofline, and the structural differences
 * between model and simulator that make Fig. 5 meaningful.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "explore/tuner.hh"
#include "hw/hardware.hh"
#include "isa/intrinsics.hh"
#include "mapping/generate.hh"
#include "model/perf_model.hh"
#include "ops/operators.hh"
#include "sim/simulator.hh"

namespace amos {
namespace {

MappingPlan
gemmPlan(std::int64_t m = 256, std::int64_t n = 256,
         std::int64_t k = 256)
{
    auto gemm = ops::makeGemm(m, n, k);
    ComputeMapping cm;
    cm.groups = {{0}, {1}, {2}};
    return MappingPlan(gemm, isa::wmma(16, 16, 16), cm);
}

Schedule
parallelSchedule(const MappingPlan &plan, std::int64_t bf,
                 std::int64_t wf)
{
    auto sched = defaultSchedule(plan);
    sched.axes[0].blockFactor = bf;
    sched.axes[1].warpFactor = wf;
    sched.stageDepth = 2;
    sched.vectorLanes = 4;
    return sched;
}

TEST(Model, InvalidProfileIsUnschedulable)
{
    auto gemm = ops::makeGemm(4096, 4096, 64);
    ComputeMapping cm;
    cm.groups = {{0}, {1}, {2}};
    MappingPlan plan(gemm, isa::wmma(16, 16, 16), cm);
    auto hw = hw::v100();
    auto prof = lowerKernel(plan, defaultSchedule(plan), hw);
    auto est = modelEstimate(prof, hw);
    EXPECT_FALSE(est.schedulable);
    EXPECT_TRUE(std::isinf(est.totalCycles));
}

TEST(Model, ParallelismReducesPredictedCycles)
{
    auto plan = gemmPlan();
    auto hw = hw::v100();
    auto serial =
        modelCycles(lowerKernel(plan, defaultSchedule(plan), hw), hw);
    auto par = modelCycles(
        lowerKernel(plan, parallelSchedule(plan, 16, 4), hw), hw);
    EXPECT_LT(par, serial);
}

TEST(Model, BreakdownIsConsistent)
{
    auto plan = gemmPlan();
    auto hw = hw::v100();
    auto prof = lowerKernel(plan, parallelSchedule(plan, 16, 4), hw);
    auto est = modelEstimate(prof, hw);
    EXPECT_GT(est.computeWarp, 0.0);
    EXPECT_GT(est.readShared, 0.0);
    EXPECT_GT(est.readGlobal, 0.0);
    EXPECT_GE(est.blockCycles,
              std::max(est.readGlobal, est.writeGlobal));
    EXPECT_GE(est.totalCycles, est.blockCycles);
}

TEST(Model, LargerWarpTilesRaiseArithmeticIntensity)
{
    // With a 1x1 warp tile every call loads fresh A and B fragments;
    // a 4x4 warp tile reuses each fragment four times, so the
    // compute-to-shared-read ratio must grow.
    auto plan = gemmPlan(256, 256, 256);
    auto hw = hw::v100();
    auto small_sched = defaultSchedule(plan);
    small_sched.axes[0].blockFactor = 16; // i1.q fully to blocks
    small_sched.axes[1].blockFactor = 16; // i2.q fully to blocks
    auto big_sched = defaultSchedule(plan);
    big_sched.axes[0].blockFactor = 4; // 4x4 warp tile remains
    big_sched.axes[1].blockFactor = 4;

    auto est_small = modelEstimate(
        lowerKernel(plan, small_sched, hw), hw);
    auto est_big =
        modelEstimate(lowerKernel(plan, big_sched, hw), hw);
    double small_ratio =
        est_small.computeWarp / est_small.readShared;
    double big_ratio = est_big.computeWarp / est_big.readShared;
    EXPECT_GT(big_ratio, small_ratio);
}

TEST(Sim, InvalidProfileIsUnschedulable)
{
    auto gemm = ops::makeGemm(4096, 4096, 64);
    ComputeMapping cm;
    cm.groups = {{0}, {1}, {2}};
    MappingPlan plan(gemm, isa::wmma(16, 16, 16), cm);
    auto hw = hw::v100();
    auto prof = lowerKernel(plan, defaultSchedule(plan), hw);
    auto sim = simulateKernel(prof, hw);
    EXPECT_FALSE(sim.schedulable);
    EXPECT_TRUE(std::isinf(sim.cycles));
}

TEST(Sim, ParallelismHelpsUntilSaturation)
{
    auto plan = gemmPlan();
    auto hw = hw::v100();
    auto serial = simulateKernel(
        lowerKernel(plan, defaultSchedule(plan), hw), hw);
    auto par = simulateKernel(
        lowerKernel(plan, parallelSchedule(plan, 16, 4), hw), hw);
    EXPECT_LT(par.cycles, serial.cycles);
    EXPECT_GT(par.peakFraction, serial.peakFraction);
    EXPECT_LE(par.peakFraction, 1.0);
}

TEST(Sim, WaveQuantisation)
{
    auto plan = gemmPlan();
    auto hw = hw::v100();
    auto prof = lowerKernel(plan, parallelSchedule(plan, 16, 1), hw);
    auto sim = simulateKernel(prof, hw);
    EXPECT_GE(sim.fullWaves + (sim.tailWave ? 1 : 0), 1);
    EXPECT_GE(sim.activeBlocksPerCore, 1);
    EXPECT_LE(sim.activeBlocksPerCore, hw.maxBlocksPerCore);
}

TEST(Sim, LaunchOverheadDominatesTinyKernels)
{
    auto plan = gemmPlan(16, 16, 16);
    auto hw = hw::v100();
    auto sim = simulateKernel(
        lowerKernel(plan, defaultSchedule(plan), hw), hw);
    EXPECT_GE(sim.cycles, hw.launchOverheadCycles);
}

TEST(Sim, DoubleBufferingImprovesOverlap)
{
    auto plan = gemmPlan();
    auto hw = hw::v100();
    auto sched = parallelSchedule(plan, 16, 4);
    sched.stageDepth = 1;
    auto single = simulateKernel(lowerKernel(plan, sched, hw), hw);
    sched.stageDepth = 2;
    auto dbl = simulateKernel(lowerKernel(plan, sched, hw), hw);
    EXPECT_LE(dbl.cycles, single.cycles);
}

TEST(Sim, ShortRunsCostBandwidth)
{
    // Same C2D, two mappings: one whose staging runs are long
    // (r1 = {c,r,s}: c chains to full rows of the weight) and one
    // with run-1 weight staging (r1 = {r} only). Per byte issued,
    // the short-run mapping's loads must be slower.
    ops::ConvParams pr;
    pr.batch = 16;
    pr.in_channels = 64;
    pr.out_channels = 64;
    pr.out_h = 14;
    pr.out_w = 14;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto conv = ops::makeConv2d(pr);
    auto hw = hw::v100();

    ComputeMapping contig;
    contig.groups = {{2, 3}, {1}, {4, 5, 6}};
    MappingPlan plan_c(conv, isa::wmma(16, 16, 16), contig);
    ComputeMapping gather;
    gather.groups = {{2, 3}, {1}, {5}};
    MappingPlan plan_g(conv, isa::wmma(16, 16, 16), gather);

    auto sched_c = defaultSchedule(plan_c);
    sched_c.axes[0].blockFactor = 16; // unmapped n
    auto sched_g = defaultSchedule(plan_g);
    sched_g.axes[0].blockFactor = 16;

    auto prof_c = lowerKernel(plan_c, sched_c, hw);
    auto prof_g = lowerKernel(plan_g, sched_g, hw);
    ASSERT_GT(prof_c.operands[1].contiguousRun,
              prof_g.operands[1].contiguousRun);
    auto sim_c = simulateKernel(prof_c, hw);
    auto sim_g = simulateKernel(prof_g, hw);
    double c_per_byte =
        sim_c.blockLoadCycles * prof_c.numBlocks /
        prof_c.globalLoadBytesPerBlock;
    double g_per_byte =
        sim_g.blockLoadCycles * prof_g.numBlocks /
        prof_g.globalLoadBytesPerBlock;
    EXPECT_GT(g_per_byte, c_per_byte * 0.999);
}

TEST(Sim, ModelAndSimDivergeButCorrelate)
{
    // The simulator is richer than the model: values differ, but
    // both must prefer the clearly better schedule.
    auto plan = gemmPlan();
    auto hw = hw::v100();
    auto bad = lowerKernel(plan, defaultSchedule(plan), hw);
    auto good =
        lowerKernel(plan, parallelSchedule(plan, 16, 4), hw);
    double model_bad = modelCycles(bad, hw);
    double model_good = modelCycles(good, hw);
    double sim_bad = simulateKernel(bad, hw).cycles;
    double sim_good = simulateKernel(good, hw).cycles;
    EXPECT_LT(model_good, model_bad);
    EXPECT_LT(sim_good, sim_bad);
    EXPECT_NE(model_good, sim_good); // distinct estimators
}

TEST(Sim, ScalarRooflineRespectsBothLimits)
{
    auto hw = hw::v100();
    // Compute-bound: many flops, few bytes.
    auto compute = simulateScalar(1e9, 1e3, hw, 0.5);
    double scalar_peak = 2.0 * hw.scalarLanesPerCore * hw.numCores;
    EXPECT_GE(compute.cycles, 1e9 / scalar_peak);
    // Memory-bound: few flops, many bytes.
    auto memory = simulateScalar(1e3, 1e9, hw, 0.5);
    EXPECT_GE(memory.cycles, 1e9 / hw.global.readBytesPerCycle);
    EXPECT_THROW(simulateScalar(1.0, 1.0, hw, 0.0), PanicError);
    EXPECT_THROW(simulateScalar(1.0, 1.0, hw, 1.5), PanicError);
}

TEST(Sim, CyclesToMsUsesClock)
{
    auto hw = hw::v100();
    EXPECT_NEAR(cyclesToMs(hw.clockGhz * 1e6, hw), 1.0, 1e-12);
}

TEST(Sim, TunedWinnerIsConsistentAcrossModelAndSim)
{
    // Differential over the full exploration pipeline: whatever the
    // tuner declares the winner, re-lowering that (mapping, schedule)
    // pair from scratch must reproduce the reported simulator cycles
    // exactly, and both the analytic model and the simulator must
    // assign it a finite positive cost. Guards against the tuner
    // caching a stale profile or reporting a schedule it never
    // actually measured.
    auto hw = hw::v100();
    auto comp = ops::makeGemm(64, 64, 64);
    auto plans = enumeratePlans(comp, isa::wmma(16, 16, 16), {});
    ASSERT_GT(plans.size(), 0u);

    TuneOptions options;
    options.generations = 2;
    options.population = 8;
    options.measureTopK = 2;
    options.exploitSteps = 0;
    options.numThreads = 2;
    auto result = tuneWithPlans(plans, hw, options);
    ASSERT_TRUE(result.tensorizable);
    ASSERT_TRUE(result.bestPlan.has_value());

    auto prof =
        lowerKernel(*result.bestPlan, result.bestSchedule, hw);
    ASSERT_TRUE(prof.valid());

    auto sim = simulateKernel(prof, hw);
    EXPECT_TRUE(std::isfinite(sim.cycles));
    EXPECT_GT(sim.cycles, 0.0);
    EXPECT_DOUBLE_EQ(sim.cycles, result.bestCycles);
    EXPECT_DOUBLE_EQ(sim.cycles, result.bestSim.cycles);

    double model = modelCycles(prof, hw);
    EXPECT_TRUE(std::isfinite(model));
    EXPECT_GT(model, 0.0);
    EXPECT_DOUBLE_EQ(model, result.bestModelCycles);

    // Model and simulator disagree in structure (Fig. 5) — the model
    // skips launch overhead and wave quantisation, so it runs well
    // under the simulator on small kernels — but a well-formed kernel
    // must keep them within two orders of magnitude of each other.
    double ratio = model / sim.cycles;
    EXPECT_GT(ratio, 0.01);
    EXPECT_LT(ratio, 100.0);
}

TEST(Sim, TensorizedBeatsScalarOnBigGemm)
{
    // The headline premise: on a large GEMM the tensorized path must
    // beat the scalar lanes by a wide margin.
    auto plan = gemmPlan(1024, 1024, 1024);
    auto hw = hw::v100();
    // A properly blocked schedule: 8x8 blocks of 8x8 warp-tiles.
    auto sched = defaultSchedule(plan);
    sched.axes[0].blockFactor = 8;
    sched.axes[0].warpFactor = 2;
    sched.axes[1].blockFactor = 8;
    sched.axes[1].warpFactor = 2;
    sched.stageDepth = 2;
    sched.vectorLanes = 4;
    auto sim = simulateKernel(lowerKernel(plan, sched, hw), hw);
    auto comp = ops::makeGemm(1024, 1024, 1024);
    double bytes = 3.0 * 1024 * 1024 * 2;
    auto scalar = simulateScalar(
        static_cast<double>(comp.flopCount()), bytes, hw, 0.7);
    EXPECT_LT(sim.cycles * 2.0, scalar.cycles);
}

} // namespace
} // namespace amos
