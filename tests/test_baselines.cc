/**
 * @file
 * Unit tests for the baseline compiler proxies: fixed-mapping rules,
 * the expert schedule heuristic, library/UNIT/AutoTVM/Ansor/XLA
 * behaviour, and the qualitative orderings the paper's evaluation
 * rests on.
 */

#include <gtest/gtest.h>

#include "baselines/baselines.hh"
#include "hw/hardware.hh"
#include "ops/conv_layers.hh"
#include "ops/operators.hh"
#include "support/math_utils.hh"

namespace amos {
namespace {

using namespace baselines;

TensorComputation
c2d(std::int64_t stride = 1)
{
    ops::ConvParams pr;
    pr.batch = 16;
    pr.in_channels = 64;
    pr.out_channels = 64;
    pr.out_h = 14;
    pr.out_w = 14;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    pr.stride = stride;
    return ops::makeConv2d(pr);
}

TEST(FixedMapping, Im2colFusesEverythingCompatible)
{
    auto conv = c2d();
    auto intr = hw::v100().primaryIntrinsic();
    auto plan = buildFixedMapping(conv, intr, FixedMapping::Im2col);
    ASSERT_TRUE(plan.has_value());
    EXPECT_TRUE(plan->valid());
    EXPECT_EQ(plan->mapping().signature(conv),
              "[n,p,q | k | c,r,s]");
}

TEST(FixedMapping, FuseHWTakesSpatialDimsOnly)
{
    auto conv = c2d();
    auto intr = hw::v100().primaryIntrinsic();
    auto plan = buildFixedMapping(conv, intr, FixedMapping::FuseHW);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->mapping().signature(conv), "[p,q | k | c]");
}

TEST(FixedMapping, GemvStillMapsWithRules)
{
    auto gemv = ops::makeGemv(256, 256);
    auto intr = hw::v100().primaryIntrinsic();
    auto m1 = buildFixedMapping(gemv, intr, FixedMapping::Im2col);
    ASSERT_TRUE(m1.has_value());
    EXPECT_TRUE(m1->valid());
}

TEST(FixedMapping, MismatchedIntrinsicReturnsNullopt)
{
    IterVar i{Var("i"), 8, IterKind::Spatial};
    TensorDecl a("A", {8});
    TensorDecl out("out", {8});
    TensorComputation sum("sum", {i}, out, {i.var}, {{a, {i.var}}},
                          CombineKind::SumReduce);
    auto intr = hw::v100().primaryIntrinsic();
    EXPECT_FALSE(
        buildFixedMapping(sum, intr, FixedMapping::Im2col)
            .has_value());
}

TEST(ExpertSchedule, FillsCoresAndRespectsLegality)
{
    auto conv = c2d();
    auto hw = hw::v100();
    auto plan = buildFixedMapping(conv, hw.primaryIntrinsic(),
                                  FixedMapping::Im2col);
    ASSERT_TRUE(plan.has_value());
    auto sched = expertSchedule(*plan, hw);
    auto prof = lowerKernel(*plan, sched, hw);
    EXPECT_GE(prof.numBlocks, hw.numCores);
    EXPECT_GE(prof.warpsPerBlock, 1);
    for (std::size_t a = 0; a < sched.axes.size(); ++a) {
        if (axisIsReduction(*plan, a)) {
            EXPECT_EQ(sched.axes[a].blockFactor, 1);
        }
    }
}

TEST(Library, TensorizesStandardOpsOnly)
{
    auto hw = hw::v100();
    EXPECT_TRUE(libraryProxy(c2d(), hw).tensorized);
    EXPECT_TRUE(
        libraryProxy(ops::makeGemm(256, 256, 256), hw).tensorized);
    // Exotic ops fall back to scalar kernels.
    ops::ConvParams pr;
    pr.batch = 16;
    pr.in_channels = 64;
    pr.out_h = 14;
    pr.out_w = 14;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    EXPECT_FALSE(
        libraryProxy(ops::makeDepthwiseConv2d(pr, 1), hw).tensorized);
    EXPECT_FALSE(
        libraryProxy(ops::makeGroupConv2d(pr, 4), hw).tensorized);
}

TEST(Library, ScalarFallbackStillProducesTime)
{
    auto hw = hw::v100();
    ops::ConvParams pr;
    pr.batch = 4;
    pr.in_channels = 32;
    pr.out_h = 14;
    pr.out_w = 14;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto res = libraryProxy(ops::makeDepthwiseConv2d(pr, 1), hw);
    EXPECT_GT(res.milliseconds, 0.0);
    EXPECT_TRUE(std::isfinite(res.milliseconds));
}

TEST(Unit, UsesFuseHWTemplate)
{
    auto res = unitProxy(c2d(), hw::v100());
    EXPECT_TRUE(res.tensorized);
    EXPECT_EQ(res.mappingSignature, "[p,q | k | c]");
}

TEST(AutoTvm, LayoutGateBlocksStockTemplates)
{
    auto hw = hw::v100();
    auto stock = autoTvmProxy(c2d(), hw, false);
    EXPECT_FALSE(stock.tensorized);
    auto expert = autoTvmProxy(c2d(), hw, true);
    EXPECT_TRUE(expert.tensorized);
    EXPECT_LT(expert.milliseconds, stock.milliseconds);
}

TEST(Ansor, NeverTensorizes)
{
    auto res = ansorProxy(c2d(), hw::v100());
    EXPECT_FALSE(res.tensorized);
    EXPECT_GT(res.milliseconds, 0.0);
}

TEST(Xla, PatternMatcherAcceptsCanonicalForms)
{
    EXPECT_TRUE(xlaPatternMatches(ops::makeGemm(128, 128, 128)));
    EXPECT_TRUE(xlaPatternMatches(c2d(1)));
}

TEST(Xla, PatternMatcherRejectsVariants)
{
    // The Table 2 failure modes: strided conv, depthwise conv,
    // grouped conv, batch-1 linear (GEMV), batched matmul.
    EXPECT_FALSE(xlaPatternMatches(c2d(2)));
    ops::ConvParams pr;
    pr.batch = 16;
    pr.in_channels = 64;
    pr.out_h = 14;
    pr.out_w = 14;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    EXPECT_FALSE(
        xlaPatternMatches(ops::makeDepthwiseConv2d(pr, 1)));
    EXPECT_FALSE(xlaPatternMatches(ops::makeGroupConv2d(pr, 4)));
    EXPECT_FALSE(xlaPatternMatches(ops::makeGemv(1024, 1024)));
    ops::ConvParams dil = pr;
    dil.out_channels = 64;
    dil.dilation = 2;
    EXPECT_FALSE(xlaPatternMatches(ops::makeDilatedConv2d(dil)));
}

TEST(Xla, ProxyMapsMatchedOpsToLibrary)
{
    auto hw = hw::v100();
    auto matched = xlaProxy(c2d(1), hw);
    EXPECT_TRUE(matched.tensorized);
    auto unmatched = xlaProxy(c2d(2), hw);
    EXPECT_FALSE(unmatched.tensorized);
}

TEST(Ordering, TensorizedLibraryBeatsItsOwnScalarFallback)
{
    auto hw = hw::v100();
    auto conv = c2d();
    auto lib = libraryProxy(conv, hw);
    auto scalar = scalarExecution(conv, hw, 0.45, "scalar");
    ASSERT_TRUE(lib.tensorized);
    EXPECT_LT(lib.milliseconds, scalar.milliseconds);
}

TEST(Ordering, Fig9Shape)
{
    // AMOS with free mapping choice must at least match its own
    // fixed-mapping ablations in aggregate (same tuner budget,
    // constrained pool). Per-layer ties are expected when the fixed
    // rule happens to be optimal; the aggregate may not regress.
    auto hw = hw::v100();
    TuneOptions options;
    options.generations = 8;
    std::vector<double> vs_fix1, vs_fix2;
    for (const auto &layer : ops::resnet18ConvLayers(16)) {
        if (layer.label != "C2" && layer.label != "C5" &&
            layer.label != "C8" && layer.label != "C10")
            continue;
        auto conv = layer.build();
        auto fix1 = amosFixedMapping(conv, hw, FixedMapping::Im2col,
                                     options);
        auto fix2 = amosFixedMapping(conv, hw, FixedMapping::FuseHW,
                                     options);
        auto full = tune(conv, hw, options);
        ASSERT_TRUE(full.tensorizable);
        double full_ms = cyclesToMs(full.bestCycles, hw);
        vs_fix1.push_back(fix1.milliseconds / full_ms);
        vs_fix2.push_back(fix2.milliseconds / full_ms);
    }
    EXPECT_GE(geometricMean(vs_fix1), 0.98);
    EXPECT_GE(geometricMean(vs_fix2), 0.98);
}

TEST(OperatorBytes, SumsAllTensors)
{
    auto gemm = ops::makeGemm(16, 16, 16);
    // 3 tensors x 256 elems x 2 bytes.
    EXPECT_DOUBLE_EQ(operatorBytes(gemm), 3 * 256 * 2.0);
}

} // namespace
} // namespace amos
