/**
 * @file
 * Unit tests for mapping enumeration: counts per operator (Table 6
 * reproduction), legality policies, barriers, and structural
 * invariants of every generated mapping.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "golden_counts.hh"
#include "isa/intrinsics.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"

namespace amos {
namespace {

using ops::ConvParams;
using golden::smallConvParams;

std::size_t
countMappings(const TensorComputation &comp, const Intrinsic &intr,
              LegalityPolicy policy)
{
    GeneratorOptions options;
    options.policy = policy;
    return enumerateMappings(comp, intr, options).size();
}

TEST(Generate, Conv2dAddressableCountMatchesPaper)
{
    // Table 6: C2D has 35 feasible mappings on Tensor Core.
    auto conv = ops::makeConv2d(smallConvParams());
    EXPECT_EQ(countMappings(conv, isa::wmmaTiny(),
                            LegalityPolicy::Addressable),
              35u);
}

TEST(Generate, Conv2dPermissiveCountIsSubsetProduct)
{
    // Permissive: nonempty subsets of {n,p,q} x {k} x {c,r,s}.
    auto conv = ops::makeConv2d(smallConvParams());
    EXPECT_EQ(countMappings(conv, isa::wmmaTiny(),
                            LegalityPolicy::Permissive),
              7u * 1u * 7u);
}

TEST(Generate, GemmAndGemvHaveUniqueMapping)
{
    // Table 6: GMM = 1 and GMV = 1.
    auto gemm = ops::makeGemm(8, 8, 8);
    EXPECT_EQ(countMappings(gemm, isa::wmmaTiny(),
                            LegalityPolicy::Addressable),
              1u);
    auto gemv = ops::makeGemv(8, 8);
    EXPECT_EQ(countMappings(gemv, isa::wmmaTiny(),
                            LegalityPolicy::Addressable),
              1u);
}

TEST(Generate, GroupedAndDilatedMatchConv2d)
{
    // Table 6: GRP = DIL = 35 (the group iterator must stay outer).
    auto grp = ops::makeGroupConv2d(smallConvParams(), 2);
    EXPECT_EQ(countMappings(grp, isa::wmmaTiny(),
                            LegalityPolicy::Addressable),
              35u);
    ConvParams dil = smallConvParams();
    dil.dilation = 2;
    EXPECT_EQ(countMappings(ops::makeDilatedConv2d(dil),
                            isa::wmmaTiny(),
                            LegalityPolicy::Addressable),
              35u);
}

TEST(Generate, TransposedConvBarrierReducesTo7)
{
    // Table 6: T2D = 7. With p,q barred, i1 can only take {n} and
    // r1 ranges over the 7 nonempty subsets of {c,r,s}.
    ConvParams pr = smallConvParams();
    pr.stride = 2;
    auto t2d = ops::makeTransposedConv2d(pr);
    EXPECT_EQ(countMappings(t2d, isa::wmmaTiny(),
                            LegalityPolicy::Addressable),
              7u);
}

TEST(Generate, ScalarReductionsHaveUniqueMapping)
{
    // Table 6: GFC / MEN / VAR / SCN all have exactly 1 mapping.
    EXPECT_EQ(countMappings(ops::makeGroupedFC(2, 2, 4, 4),
                            isa::wmmaTiny(),
                            LegalityPolicy::Addressable),
              1u);
    EXPECT_EQ(countMappings(ops::makeMean(4, 4), isa::wmmaTiny(),
                            LegalityPolicy::Addressable),
              1u);
    EXPECT_EQ(countMappings(ops::makeVariance(4, 4), isa::wmmaTiny(),
                            LegalityPolicy::Addressable),
              1u);
    EXPECT_EQ(countMappings(ops::makeScan(4, 4), isa::wmmaTiny(),
                            LegalityPolicy::Addressable),
              1u);
}

TEST(Generate, EveryEnumeratedMappingPassesAlgorithm1)
{
    auto conv = ops::makeConv2d(smallConvParams());
    for (const auto &plan :
         enumeratePlans(conv, isa::wmmaTiny(), {})) {
        EXPECT_TRUE(plan.valid()) << plan.validation().failure;
    }
}

TEST(Generate, MappingsAreDistinct)
{
    auto conv = ops::makeConv2d(smallConvParams());
    auto mappings = enumerateMappings(conv, isa::wmmaTiny(), {});
    std::set<std::string> signatures;
    for (const auto &m : mappings)
        signatures.insert(m.signature(conv));
    EXPECT_EQ(signatures.size(), mappings.size());
}

TEST(Generate, AddressableSpatialGroupsAreRunSuffixes)
{
    // In every addressable C2D mapping, p may appear in i1 only
    // together with q (the run-suffix rule the paper's Table 5
    // mappings obey).
    auto conv = ops::makeConv2d(smallConvParams());
    for (const auto &m : enumerateMappings(conv, isa::wmmaTiny(), {})) {
        const auto &i1 = m.groups[0];
        bool has_p = false, has_q = false;
        for (auto s : i1) {
            has_p |= conv.iters()[s].name() == "p";
            has_q |= conv.iters()[s].name() == "q";
        }
        EXPECT_TRUE(!has_p || has_q) << m.signature(conv);
    }
}

TEST(Generate, PermissiveIsSupersetOfAddressable)
{
    auto conv = ops::makeConv2d(smallConvParams());
    auto permissive = enumerateMappings(
        conv, isa::wmmaTiny(), {LegalityPolicy::Permissive, 0});
    auto addressable = enumerateMappings(
        conv, isa::wmmaTiny(), {LegalityPolicy::Addressable, 0});
    std::set<std::string> perm_sigs;
    for (const auto &m : permissive)
        perm_sigs.insert(m.signature(conv));
    for (const auto &m : addressable)
        EXPECT_TRUE(perm_sigs.count(m.signature(conv)))
            << m.signature(conv);
}

TEST(Generate, MaxCandidatesCapRespected)
{
    auto conv = ops::makeConv2d(smallConvParams());
    GeneratorOptions options;
    options.maxCandidates = 3;
    EXPECT_EQ(enumerateMappings(conv, isa::wmmaTiny(), options).size(),
              3u);
}

TEST(Generate, VnniConvMapsChannelToLanes)
{
    // On the VNNI intrinsic, k maps to the lane dimension and
    // reductions to the depth-4 dot; spatial dims stay outer. VNNI
    // is u8xi8 -> i32, so the float conv is dtype-illegal and the
    // sweep runs on the quantized variant.
    auto conv = ops::makeQuantizedConv2d(smallConvParams());
    EXPECT_EQ(enumerateMappings(ops::makeConv2d(smallConvParams()),
                                isa::avx512Vnni(), {})
                  .size(),
              0u);
    auto mappings =
        enumerateMappings(conv, isa::avx512Vnni(), {});
    EXPECT_GT(mappings.size(), 0u);
    for (const auto &m : mappings) {
        ASSERT_EQ(m.groups.size(), 2u);
        // i1 group must be exactly {k}.
        ASSERT_EQ(m.groups[0].size(), 1u);
        EXPECT_EQ(conv.iters()[m.groups[0][0]].name(), "k");
    }
}

TEST(Generate, MaliDotMapsOnlyReductions)
{
    // The Mali dot product is i8xi8 -> i32: float conv counts zero,
    // the quantized variant keeps the Table-6 count.
    auto conv = ops::makeQuantizedConv2d(smallConvParams());
    EXPECT_EQ(enumerateMappings(ops::makeConv2d(smallConvParams()),
                                isa::maliDot(), {})
                  .size(),
              0u);
    auto mappings = enumerateMappings(conv, isa::maliDot(), {});
    EXPECT_EQ(mappings.size(), 7u); // nonempty subsets of {c,r,s}
    for (const auto &m : mappings)
        for (auto s : m.groups[0])
            EXPECT_EQ(conv.iters()[s].kind, IterKind::Reduction);
}

TEST(Generate, DepthwiseChannelStaysOuter)
{
    // The depthwise channel c touches all three tensors, so no
    // intrinsic iteration is compatible: it must stay outer in every
    // mapping (this is what defeats XLA-style GEMM pattern matching).
    ConvParams pr = smallConvParams();
    auto dep = ops::makeDepthwiseConv2d(pr, 2);
    auto mappings = enumerateMappings(dep, isa::wmmaTiny(), {});
    EXPECT_GT(mappings.size(), 0u);
    std::size_t c_pos = 1; // iteration order n,c,m,p,q,r,s
    for (const auto &m : mappings)
        EXPECT_FALSE(m.isMapped(c_pos));
}

TEST(Generate, IsTensorizableFastPath)
{
    auto conv = ops::makeConv2d(smallConvParams());
    EXPECT_TRUE(isTensorizable(conv, isa::wmmaTiny()));

    // A SumReduce computation is not tensorizable on a MultiplyAdd
    // intrinsic (operand/combine mismatch short-circuits).
    IterVar i{Var("i"), 2, IterKind::Spatial};
    TensorDecl a("A", {2});
    TensorDecl out("out", {2});
    TensorComputation sum("sum", {i}, out, {i.var}, {{a, {i.var}}},
                          CombineKind::SumReduce);
    EXPECT_FALSE(isTensorizable(sum, isa::wmmaTiny()));
}

TEST(Generate, Table6CountsAcrossOperators)
{
    // The full Table 6 sweep at small extents. Paper values noted;
    // values marked ~ differ because the artifact's enumeration
    // rules are under-specified (see EXPERIMENTS.md).
    struct Row
    {
        const char *name;
        TensorComputation comp;
        std::size_t expected;
    };
    ConvParams pr = smallConvParams();
    ConvParams dil = pr;
    dil.dilation = 2;
    ConvParams t2 = pr;
    t2.stride = 2;

    std::vector<Row> rows;
    rows.push_back({"GMV", ops::makeGemv(8, 8), 1});
    rows.push_back({"GMM", ops::makeGemm(4, 4, 4), 1});
    rows.push_back({"C1D", ops::makeConv1d(2, 2, 4, 4, 3), 9}); // ~6
    rows.push_back({"C2D", ops::makeConv2d(pr), 35});
    rows.push_back(
        {"C3D", ops::makeConv3d(pr, 2, 3), 105}); // ~180
    rows.push_back({"T2D", ops::makeTransposedConv2d(t2), 7});
    rows.push_back({"GRP", ops::makeGroupConv2d(pr, 2), 35});
    rows.push_back({"DIL", ops::makeDilatedConv2d(dil), 35});
    rows.push_back(
        {"DEP", ops::makeDepthwiseConv2d(pr, 2), 15}); // ~11
    rows.push_back(
        {"BCV", ops::makeBatchedConv2d(pr), 14}); // ~11
    rows.push_back({"GFC", ops::makeGroupedFC(2, 2, 4, 4), 1});
    rows.push_back({"MEN", ops::makeMean(4, 4), 1});
    rows.push_back({"VAR", ops::makeVariance(4, 4), 1});
    rows.push_back({"SCN", ops::makeScan(4, 4), 1});

    for (const auto &row : rows) {
        SCOPED_TRACE(row.name);
        EXPECT_EQ(countMappings(row.comp, isa::wmmaTiny(),
                                LegalityPolicy::Addressable),
                  row.expected);
    }
}

TEST(Generate, GoldenCountsPerIntrinsicAndOperator)
{
    // Golden matrix: feasible-mapping counts for every modelled
    // intrinsic (including the spec-only amx target) x a
    // representative operator set at Table 6's small extents. The
    // matrix itself lives in tests/golden_counts.hh, shared with
    // test_isa_spec.cc so the spec-equivalence suite pins the same
    // numbers. A change in any cell means the mapping space itself
    // changed and the diff must explain why.
    auto comps = golden::operatorColumns();
    for (const auto &row : golden::intrinsicRows()) {
        for (std::size_t c = 0; c < comps.size(); ++c) {
            SCOPED_TRACE(std::string(row.name) + " x " +
                         comps[c].name);
            const auto comp =
                row.int8 ? ops::quantizedVariant(comps[c].comp)
                         : comps[c].comp;
            EXPECT_EQ(countMappings(comp, row.intr,
                                    LegalityPolicy::Addressable),
                      row.counts[c]);
            // Dtype legality is part of mapping validity in both
            // directions: the cross-typed operator counts zero.
            const auto crossTyped =
                row.int8 ? comps[c].comp
                         : ops::quantizedVariant(comps[c].comp);
            EXPECT_EQ(countMappings(crossTyped, row.intr,
                                    LegalityPolicy::Addressable),
                      0u);
        }
    }
}

TEST(Generate, GoldenCountsEveryMappingValidates)
{
    // Every cell of the golden matrix must also survive Algorithm 1:
    // the enumerator may never emit a mapping the validator rejects.
    ConvParams pr = smallConvParams();
    std::vector<Intrinsic> intrs = {
        isa::wmmaTiny(), isa::avx512Vnni(), isa::maliDot(),
        isa::virtualAxpy(), isa::virtualConv()};
    auto conv = ops::makeConv2d(pr);
    auto qconv = ops::makeQuantizedConv2d(pr);
    for (const auto &intr : intrs) {
        // Pick the dtype-legal variant per intrinsic so every cell
        // actually enumerates a non-empty space.
        const auto &comp =
            intr.compute.dst().dtype == DataType::I32 ? qconv : conv;
        auto plans = enumeratePlans(comp, intr, {});
        EXPECT_GT(plans.size(), 0u) << intr.name();
        for (const auto &plan : plans) {
            EXPECT_TRUE(plan.valid())
                << intr.name() << ": " << plan.validation().failure;
        }
    }
}

TEST(Generate, MappingCountIndependentOfExtents)
{
    // The feasible-mapping count is a structural property: scaling
    // the extents must not change it.
    ConvParams small = smallConvParams();
    ConvParams large = small;
    large.batch = 4;
    large.in_channels = 8;
    large.out_channels = 16;
    large.out_h = 7;
    large.out_w = 7;
    EXPECT_EQ(countMappings(ops::makeConv2d(small), isa::wmmaTiny(),
                            LegalityPolicy::Addressable),
              countMappings(ops::makeConv2d(large),
                            isa::wmma(16, 16, 16),
                            LegalityPolicy::Addressable));
}

} // namespace
} // namespace amos
