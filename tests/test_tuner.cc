/**
 * @file
 * Unit tests for the joint mapping/schedule tuner and the
 * exploration statistics (Fig. 5 machinery).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "explore/stats.hh"
#include "explore/trace_io.hh"
#include "explore/tuner.hh"
#include "hw/hardware.hh"
#include "ops/operators.hh"
#include "schedule/profile.hh"

namespace amos {
namespace {

ops::ConvParams
mediumConv()
{
    ops::ConvParams pr;
    pr.batch = 16;
    pr.in_channels = 64;
    pr.out_channels = 64;
    pr.out_h = 14;
    pr.out_w = 14;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    return pr;
}

TEST(Tuner, FindsTensorizedResultForConv)
{
    auto conv = ops::makeConv2d(mediumConv());
    auto hw = hw::v100();
    TuneOptions options;
    options.generations = 6;
    auto result = tune(conv, hw, options);
    ASSERT_TRUE(result.tensorizable);
    // 35 mappings per WMMA shape x 3 Tensor Core problem shapes.
    EXPECT_EQ(result.numMappings, 3 * 35u);
    EXPECT_FALSE(result.intrinsicName.empty());
    EXPECT_GT(result.measurements, 0);
    EXPECT_GT(result.bestCycles, 0.0);
    EXPECT_TRUE(std::isfinite(result.bestCycles));
    EXPECT_FALSE(result.mappingSignature.empty());
    EXPECT_FALSE(result.computeMapping.empty());
    ASSERT_TRUE(result.bestPlan.has_value());
    EXPECT_TRUE(result.bestPlan->valid());
}

TEST(Tuner, DeterministicForFixedSeed)
{
    auto conv = ops::makeConv2d(mediumConv());
    auto hw = hw::v100();
    TuneOptions options;
    options.seed = 123;
    options.generations = 4;
    auto a = tune(conv, hw, options);
    auto b = tune(conv, hw, options);
    EXPECT_EQ(a.bestCycles, b.bestCycles);
    EXPECT_EQ(a.mappingSignature, b.mappingSignature);
    EXPECT_EQ(a.trace.size(), b.trace.size());
}

/**
 * The parallel engine's core guarantee: the tuned result is
 * bit-identical for every thread count (per-candidate RNG streams,
 * ordered reductions). Checked field-by-field including the full
 * exploration trace.
 */
void
expectIdenticalResults(const TuneResult &a, const TuneResult &b)
{
    EXPECT_EQ(a.bestCycles, b.bestCycles);
    EXPECT_EQ(a.bestModelCycles, b.bestModelCycles);
    EXPECT_EQ(a.bestMappingIndex, b.bestMappingIndex);
    EXPECT_EQ(a.mappingSignature, b.mappingSignature);
    EXPECT_EQ(a.computeMapping, b.computeMapping);
    EXPECT_EQ(a.intrinsicName, b.intrinsicName);
    EXPECT_EQ(a.measurements, b.measurements);
    EXPECT_EQ(a.bestSchedule.toString(), b.bestSchedule.toString());
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].step, b.trace[i].step);
        EXPECT_EQ(a.trace[i].mappingIndex, b.trace[i].mappingIndex);
        EXPECT_EQ(a.trace[i].predictedCycles,
                  b.trace[i].predictedCycles);
        EXPECT_EQ(a.trace[i].measuredCycles,
                  b.trace[i].measuredCycles);
        EXPECT_EQ(a.trace[i].bestSoFarCycles,
                  b.trace[i].bestSoFarCycles);
    }
}

TEST(Tuner, ThreadCountInvariantForConv)
{
    auto conv = ops::makeConv2d(mediumConv());
    auto hw = hw::v100();
    TuneOptions base;
    base.generations = 3;
    base.seed = 77;
    base.numThreads = 1;
    auto serial = tune(conv, hw, base);
    ASSERT_TRUE(serial.tensorizable);
    for (int threads : {2, 8}) {
        TuneOptions options = base;
        options.numThreads = threads;
        auto res = tune(conv, hw, options);
        expectIdenticalResults(serial, res);
    }
}

TEST(Tuner, ThreadCountInvariantForGemm)
{
    auto gemm = ops::makeGemm(256, 256, 256);
    auto hw = hw::v100();
    TuneOptions base;
    base.generations = 3;
    base.seed = 2022;
    base.numThreads = 1;
    auto serial = tune(gemm, hw, base);
    ASSERT_TRUE(serial.tensorizable);
    for (int threads : {2, 8}) {
        TuneOptions options = base;
        options.numThreads = threads;
        auto res = tune(gemm, hw, options);
        expectIdenticalResults(serial, res);
    }
}

TEST(Tuner, ThreadCountInvariantWithLearnedModel)
{
    // The learned model trains on measured samples; sample order is
    // part of the determinism contract too.
    auto conv = ops::makeConv2d(mediumConv());
    auto hw = hw::v100();
    TuneOptions base;
    base.generations = 3;
    base.useLearnedModel = true;
    base.numThreads = 1;
    auto serial = tune(conv, hw, base);
    TuneOptions par = base;
    par.numThreads = 4;
    expectIdenticalResults(serial, tune(conv, hw, par));
}

TEST(Tuner, MoreSearchNeverHurts)
{
    auto conv = ops::makeConv2d(mediumConv());
    auto hw = hw::v100();
    TuneOptions tiny;
    tiny.population = 6;
    tiny.generations = 2;
    tiny.measureTopK = 2;
    TuneOptions big;
    big.population = 24;
    big.generations = 10;
    big.measureTopK = 8;
    big.seed = tiny.seed;
    auto small_res = tune(conv, hw, tiny);
    auto big_res = tune(conv, hw, big);
    // Not guaranteed in general for random search with different
    // sampling paths, but with the shared seed and a strictly larger
    // budget the archive can only improve or match here.
    EXPECT_LE(big_res.bestCycles, small_res.bestCycles * 1.05);
    EXPECT_GT(big_res.measurements, small_res.measurements);
}

TEST(Tuner, NotTensorizableWhenOperandCountMismatches)
{
    IterVar i{Var("i"), 32, IterKind::Spatial};
    TensorDecl a("A", {32});
    TensorDecl out("out", {32});
    TensorComputation sum("sum", {i}, out, {i.var}, {{a, {i.var}}},
                          CombineKind::SumReduce);
    auto result = tune(sum, hw::v100(), {});
    EXPECT_FALSE(result.tensorizable);
}

TEST(Tuner, BestResultIsReproducible)
{
    // Re-simulating the winner must reproduce its reported cycles.
    auto conv = ops::makeConv2d(mediumConv());
    auto hw = hw::v100();
    auto result = tune(conv, hw, {});
    ASSERT_TRUE(result.bestPlan.has_value());
    auto prof =
        lowerKernel(*result.bestPlan, result.bestSchedule, hw);
    auto sim = simulateKernel(prof, hw);
    EXPECT_DOUBLE_EQ(sim.cycles, result.bestCycles);
}

TEST(Tuner, TraceRecordsMonotoneBest)
{
    auto conv = ops::makeConv2d(mediumConv());
    auto result = tune(conv, hw::v100(), {});
    ASSERT_GT(result.trace.size(), 1u);
    double best = result.trace.front().bestSoFarCycles;
    for (const auto &step : result.trace) {
        EXPECT_LE(step.bestSoFarCycles, best + 1e-9);
        best = step.bestSoFarCycles;
        EXPECT_GT(step.predictedCycles, 0.0);
        EXPECT_GT(step.measuredCycles, 0.0);
    }
    EXPECT_DOUBLE_EQ(best, result.bestCycles);
}

TEST(Tuner, PinnedMappingExploresSchedulesOnly)
{
    auto conv = ops::makeConv2d(mediumConv());
    auto intr = hw::v100().primaryIntrinsic();
    auto plans = enumeratePlans(conv, intr, {});
    auto result = tuneWithMapping(plans.front(), hw::v100(), {});
    ASSERT_TRUE(result.tensorizable);
    EXPECT_EQ(result.numMappings, 1u);
    for (const auto &step : result.trace)
        EXPECT_EQ(step.mappingIndex, 0u);
}

TEST(Tuner, MaxMappingsCapsThePool)
{
    auto conv = ops::makeConv2d(mediumConv());
    TuneOptions options;
    options.maxMappings = 5;
    auto result = tune(conv, hw::v100(), options);
    EXPECT_EQ(result.numMappings, 5u);
}

TEST(Stats, PairwiseAccuracyPerfectAndInverted)
{
    std::vector<ExplorationStep> perfect = {
        {1, 0, 10.0, 100.0, 0}, {2, 0, 20.0, 200.0, 0},
        {3, 0, 30.0, 300.0, 0}};
    EXPECT_DOUBLE_EQ(pairwiseAccuracy(perfect), 1.0);
    std::vector<ExplorationStep> inverted = {
        {1, 0, 30.0, 100.0, 0}, {2, 0, 20.0, 200.0, 0},
        {3, 0, 10.0, 300.0, 0}};
    EXPECT_DOUBLE_EQ(pairwiseAccuracy(inverted), 0.0);
    EXPECT_DOUBLE_EQ(pairwiseAccuracy({}), 1.0);
}

TEST(Stats, PairwiseAccuracyIgnoresTies)
{
    std::vector<ExplorationStep> ties = {
        {1, 0, 10.0, 100.0, 0},
        {2, 0, 10.0, 200.0, 0}, // predicted tie: uninformative
        {3, 0, 20.0, 300.0, 0}};
    // Informative pairs: (1,3) ordered correctly, (2,3) correct.
    EXPECT_DOUBLE_EQ(pairwiseAccuracy(ties), 1.0);
}

TEST(Stats, TopFractionRecallBounds)
{
    std::vector<ExplorationStep> trace;
    for (int i = 0; i < 10; ++i)
        trace.push_back(
            {i, 0, static_cast<double>(10 - i), // inverted prediction
             static_cast<double>(i + 1), 0});
    double recall_all = topFractionRecall(trace, 1.0);
    EXPECT_DOUBLE_EQ(recall_all, 1.0); // everything is in the top-100%
    double recall_small = topFractionRecall(trace, 0.2);
    EXPECT_DOUBLE_EQ(recall_small, 0.0); // inverted ranking
    EXPECT_THROW(topFractionRecall(trace, 0.0), PanicError);
    EXPECT_THROW(topFractionRecall(trace, 1.5), PanicError);
}

TEST(Stats, RecallOnRealTuningTraceIsUseful)
{
    // The model must be better than random at ranking real
    // candidates: pairwise accuracy above 0.5 and top-40% recall
    // above 0.4 (random baselines).
    auto conv = ops::makeConv2d(mediumConv());
    TuneOptions options;
    options.generations = 10;
    options.measureTopK = 8;
    auto result = tune(conv, hw::v100(), options);
    ASSERT_GE(result.trace.size(), 20u);
    EXPECT_GT(pairwiseAccuracy(result.trace), 0.5);
    EXPECT_GT(topFractionRecall(result.trace, 0.4), 0.4);
}

TEST(TraceIo, CsvRoundTripShape)
{
    std::vector<ExplorationStep> trace = {
        {1, 0, 100.5, 120.25, 120.25}, {2, 3, 90.0, 95.0, 95.0}};
    auto csv = traceToCsv(trace);
    // Header + one line per step.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
    EXPECT_NE(csv.find("step,mapping,predicted_cycles"),
              std::string::npos);
    EXPECT_NE(csv.find("2,3,90,95,95"), std::string::npos);

    std::string path = "/tmp/amos_trace_test.csv";
    writeTextFile(path, csv);
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), csv);
    std::remove(path.c_str());
    EXPECT_THROW(writeTextFile("/no/such/dir/x.csv", "x"),
                 FatalError);
}

TEST(Stats, GeoMeanRelativeErrorSane)
{
    std::vector<ExplorationStep> trace = {{1, 0, 100.0, 200.0, 0},
                                          {2, 0, 400.0, 200.0, 0}};
    EXPECT_DOUBLE_EQ(geoMeanRelativeError(trace), 2.0);
    EXPECT_DOUBLE_EQ(geoMeanRelativeError({}), 1.0);
}

} // namespace
} // namespace amos
