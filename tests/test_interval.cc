/**
 * @file
 * Tests for interval arithmetic and the static bounds verifier:
 * exactness on the arithmetic, soundness against brute-force
 * evaluation, and in-bounds proofs for every enumerated mapping of
 * several operators (plus the full 113-configuration suite).
 */

#include <gtest/gtest.h>

#include "ir/interval.hh"
#include "isa/intrinsics.hh"
#include "mapping/generate.hh"
#include "mapping/verify_bounds.hh"
#include "ops/config_suite.hh"
#include "ops/operators.hh"
#include "support/rng.hh"

namespace amos {
namespace {

TEST(Interval, ScalarArithmetic)
{
    Var x("x"), y("y");
    IntervalEnv env{{x.node(), {2, 5}}, {y.node(), {-1, 3}}};

    auto check = [&](const Expr &e, std::int64_t lo,
                     std::int64_t hi) {
        auto iv = evalInterval(e, env);
        EXPECT_EQ(iv.lo, lo) << exprToString(e);
        EXPECT_EQ(iv.hi, hi) << exprToString(e);
    };
    check(x + y, 1, 8);
    check(x - y, -1, 6);
    check(x * y, -5, 15);
    check(x * Expr(-2), -10, -4);
    check(floorDiv(x, Expr(2)), 1, 2);
    check(min(x, y), -1, 3);
    check(max(x, y), 2, 5);
}

TEST(Interval, FloorModExactWithinOneQuotient)
{
    Var x("x");
    // x in [4, 6]: one quotient of 8 -> exact [4, 6].
    IntervalEnv env{{x.node(), {4, 6}}};
    auto iv = evalInterval(floorMod(x, Expr(8)), env);
    EXPECT_EQ(iv.lo, 4);
    EXPECT_EQ(iv.hi, 6);
    // x in [4, 11]: crosses a boundary -> conservative [0, 7].
    env[x.node()] = {4, 11};
    iv = evalInterval(floorMod(x, Expr(8)), env);
    EXPECT_EQ(iv.lo, 0);
    EXPECT_EQ(iv.hi, 7);
}

TEST(Interval, RejectsUnsupportedShapes)
{
    Var x("x"), y("y");
    IntervalEnv env{{x.node(), {0, 4}}, {y.node(), {1, 2}}};
    EXPECT_THROW(evalInterval(floorDiv(x, y), env), PanicError);
    EXPECT_THROW(evalInterval(floorMod(x, Expr(0)), env),
                 PanicError);
    Var unbound("z");
    EXPECT_THROW(evalInterval(unbound + Expr(1), env), PanicError);
}

TEST(Interval, SoundAgainstBruteForce)
{
    // Property: for random expressions over small ranges, every
    // concrete value lies inside the computed interval.
    Rng rng(17);
    Var a("a"), b("b");
    for (int trial = 0; trial < 200; ++trial) {
        std::int64_t ea = rng.uniformInt(1, 6);
        std::int64_t eb = rng.uniformInt(1, 6);
        // Random-ish expression built from the mapping vocabulary.
        Expr e = a * Expr(rng.uniformInt(1, 5)) +
                 b * Expr(rng.uniformInt(1, 5));
        if (rng.flip(0.5))
            e = floorMod(e, Expr(rng.uniformInt(2, 7)));
        if (rng.flip(0.5))
            e = floorDiv(e, Expr(rng.uniformInt(2, 5)));
        e = e + Expr(rng.uniformInt(-3, 3));

        IntervalEnv env{{a.node(), {0, ea - 1}},
                        {b.node(), {0, eb - 1}}};
        auto iv = evalInterval(e, env);
        for (std::int64_t va = 0; va < ea; ++va) {
            for (std::int64_t vb = 0; vb < eb; ++vb) {
                VarBinding binding{{a.node(), va}, {b.node(), vb}};
                auto v = evalExpr(e, binding);
                EXPECT_GE(v, iv.lo) << exprToString(e);
                EXPECT_LE(v, iv.hi) << exprToString(e);
            }
        }
    }
}

TEST(Bounds, EveryC2DMappingProvablyInBounds)
{
    ops::ConvParams pr;
    pr.batch = 2;
    pr.in_channels = 2;
    pr.out_channels = 4;
    pr.out_h = 2;
    pr.out_w = 3;
    pr.kernel_h = 2;
    pr.kernel_w = 2;
    auto conv = ops::makeConv2d(pr);
    for (const auto &plan :
         enumeratePlans(conv, isa::wmmaTiny(),
                        {LegalityPolicy::Permissive, 0})) {
        auto report = verifyPlanBounds(plan);
        EXPECT_TRUE(report.ok)
            << plan.mapping().signature(conv) << ": "
            << report.failure;
    }
}

TEST(Bounds, FullConfigSuiteProvablyInBounds)
{
    // The static verifier covers the whole iteration domain, so the
    // real-size 113-configuration suite is cheap to prove (no
    // execution involved). One mapping per configuration.
    auto intr = isa::wmma(16, 16, 16);
    for (const auto &entry : ops::configSuite()) {
        auto comp = entry.build(1);
        GeneratorOptions one;
        one.maxCandidates = 1;
        auto mappings = enumerateMappings(comp, intr, one);
        ASSERT_FALSE(mappings.empty()) << entry.label;
        MappingPlan plan(comp, intr, mappings.front());
        ASSERT_TRUE(plan.valid()) << entry.label;
        auto report = verifyPlanBounds(plan);
        EXPECT_TRUE(report.ok) << entry.label << ": "
                               << report.failure;
    }
}

TEST(Bounds, RejectsInvalidPlans)
{
    auto gemm = ops::makeGemm(4, 4, 4);
    ComputeMapping m;
    m.groups = {{0, 1}, {}, {2}};
    MappingPlan plan(gemm, isa::wmmaTiny(), m);
    ASSERT_FALSE(plan.valid());
    EXPECT_THROW(verifyPlanBounds(plan), PanicError);
}

TEST(Bounds, IterationIntervalsMatchExtents)
{
    auto gemm = ops::makeGemm(3, 5, 7);
    auto env = iterationIntervals(gemm);
    EXPECT_EQ(env.size(), 3u);
    EXPECT_EQ(env[gemm.iters()[0].var.node()].hi, 2);
    EXPECT_EQ(env[gemm.iters()[2].var.node()].hi, 6);
}

} // namespace
} // namespace amos
