/**
 * @file
 * Code-generation tests: structural checks of the emitted C and full
 * end-to-end verification — the generated source is compiled with
 * the host C compiler, loaded with dlopen, executed on pattern
 * inputs, and compared against the reference interpreter.
 */

#include <gtest/gtest.h>

#include <dlfcn.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/codegen.hh"
#include "isa/intrinsics.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "tensor/reference.hh"

namespace amos {
namespace {

using KernelFn = void (*)(const float **, float *);

/** Compile a generated source with the host cc and load the symbol. */
class CompiledKernel
{
  public:
    CompiledKernel(const std::string &source,
                   const std::string &symbol)
    {
        char src_path[] = "/tmp/amos_codegen_XXXXXX";
        int fd = mkstemp(src_path);
        if (fd < 0)
            return;
        close(fd);
        _src = std::string(src_path) + ".c";
        std::rename(src_path, _src.c_str());
        {
            std::ofstream out(_src);
            out << source;
        }
        _lib = _src + ".so";
        std::string cmd = "cc -shared -fPIC -O1 -o " + _lib + " " +
                          _src + " 2>/tmp/amos_codegen_err.txt";
        if (std::system(cmd.c_str()) != 0)
            return;
        _handle = dlopen(_lib.c_str(), RTLD_NOW);
        if (!_handle)
            return;
        _fn = reinterpret_cast<KernelFn>(
            dlsym(_handle, symbol.c_str()));
    }

    ~CompiledKernel()
    {
        if (_handle)
            dlclose(_handle);
        if (!_src.empty()) {
            std::remove(_src.c_str());
            std::remove(_lib.c_str());
        }
    }

    bool ok() const { return _fn != nullptr; }
    KernelFn fn() const { return _fn; }

  private:
    std::string _src, _lib;
    void *_handle = nullptr;
    KernelFn _fn = nullptr;
};

/**
 * Generate, compile, run, and return the max deviation from the
 * reference interpreter.
 */
float
codegenError(const MappingPlan &plan, const Schedule &sched)
{
    CodegenOptions options;
    options.kernelName = "amos_test_kernel";
    auto source = generateC(plan, sched, options);

    CompiledKernel kernel(source, options.kernelName);
    EXPECT_TRUE(kernel.ok()) << "host compilation failed:\n"
                             << source.substr(0, 2000);
    if (!kernel.ok())
        return 1e9f;

    const auto &comp = plan.computation();
    auto inputs = makePatternInputs(comp, 21);
    std::vector<const float *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(b.data());
    Buffer out(comp.output());
    kernel.fn()(ptrs.data(), out.data());

    std::vector<const Buffer *> bufs;
    for (const auto &b : inputs)
        bufs.push_back(&b);
    Buffer ref(comp.output());
    referenceExecute(comp, bufs, ref);
    return ref.maxAbsDiff(out);
}

ops::ConvParams
tinyConv()
{
    ops::ConvParams pr;
    pr.batch = 2;
    pr.in_channels = 2;
    pr.out_channels = 4;
    pr.out_h = 3;
    pr.out_w = 3;
    pr.kernel_h = 2;
    pr.kernel_w = 2;
    return pr;
}

TEST(Codegen, EmitsStructuredSource)
{
    auto conv = ops::makeConv2d(tinyConv());
    ComputeMapping m;
    m.groups = {{0, 2, 3}, {1}, {4, 5, 6}};
    MappingPlan plan(conv, isa::wmmaTiny(), m);
    auto source = generateC(plan, defaultSchedule(plan), {});
    EXPECT_NE(source.find("void amos_kernel"), std::string::npos);
    EXPECT_NE(source.find("intrinsic_tile"), std::string::npos);
    EXPECT_NE(source.find("calloc"), std::string::npos);
    EXPECT_NE(source.find("free(packed"), std::string::npos);
    // The mapping signature appears in the header comment.
    EXPECT_NE(source.find("[n,p,q | k | c,r,s]"), std::string::npos);
    // Schedule bindings appear when factors exceed 1.
    auto sched = defaultSchedule(plan);
    sched.axes[0].blockFactor = 2;
    auto bound = generateC(plan, sched, {});
    EXPECT_NE(bound.find("bind blockIdx"), std::string::npos);
}

TEST(Codegen, CommentsCanBeDisabled)
{
    auto gemm = ops::makeGemm(4, 4, 4);
    ComputeMapping m;
    m.groups = {{0}, {1}, {2}};
    MappingPlan plan(gemm, isa::wmmaTiny(), m);
    CodegenOptions options;
    options.comments = false;
    auto source = generateC(plan, defaultSchedule(plan), options);
    EXPECT_EQ(source.find("/*"), std::string::npos);
}

TEST(Codegen, RejectsInvalidPlan)
{
    auto conv = ops::makeConv2d(tinyConv());
    ComputeMapping m;
    m.groups = {{0, 1}, {}, {4, 5, 6}};
    MappingPlan plan(conv, isa::wmmaTiny(), m);
    ASSERT_FALSE(plan.valid());
    EXPECT_THROW(generateC(plan, defaultSchedule(plan), {}),
                 PanicError);
}

TEST(Codegen, CompiledGemmMatchesReference)
{
    auto gemm = ops::makeGemm(5, 6, 7); // padding in every dim
    ComputeMapping m;
    m.groups = {{0}, {1}, {2}};
    MappingPlan plan(gemm, isa::wmmaTiny(), m);
    EXPECT_LE(codegenError(plan, defaultSchedule(plan)), 1e-4f);
}

TEST(Codegen, CompiledConvMappingsMatchReference)
{
    // Every addressable C2D mapping must produce working C code.
    auto conv = ops::makeConv2d(tinyConv());
    auto plans = enumeratePlans(conv, isa::wmmaTiny(), {});
    ASSERT_EQ(plans.size(), 35u);
    // Compiling 35 shared objects is slow; verify a spread sample.
    for (std::size_t i = 0; i < plans.size(); i += 6) {
        SCOPED_TRACE(plans[i].mapping().signature(conv));
        EXPECT_LE(codegenError(plans[i],
                               defaultSchedule(plans[i])),
                  1e-4f);
    }
}

TEST(Codegen, CompiledDepthwiseAndGemvMatchReference)
{
    // Degenerate groups (empty i2) and unmapped channel loops.
    auto gemv = ops::makeGemv(5, 9);
    auto gemv_plans = enumeratePlans(gemv, isa::wmmaTiny(), {});
    ASSERT_EQ(gemv_plans.size(), 1u);
    EXPECT_LE(codegenError(gemv_plans[0],
                           defaultSchedule(gemv_plans[0])),
              1e-4f);

    auto dep = ops::makeDepthwiseConv2d(tinyConv(), 2);
    auto dep_plans = enumeratePlans(dep, isa::wmmaTiny(), {});
    ASSERT_GT(dep_plans.size(), 0u);
    EXPECT_LE(codegenError(dep_plans.front(),
                           defaultSchedule(dep_plans.front())),
              1e-4f);
}

TEST(Codegen, SumReduceIntrinsicCode)
{
    // A SumReduce computation on a SumReduce intrinsic.
    IterVar i{Var("i"), 6, IterKind::Spatial};
    IterVar r{Var("k"), 5, IterKind::Reduction};
    TensorDecl a("A", {6, 5});
    TensorDecl out("out", {6});
    TensorComputation rowsum("rowsum", {i, r}, out, {i.var},
                             {{a, {i.var, r.var}}},
                             CombineKind::SumReduce);
    ComputeAbstraction acc("vacc", {{"i1", 4, false}},
                           {{"Src1", {0}, DataType::F32}},
                           {"Dst", {0}, DataType::F32},
                           CombineKind::SumReduce);
    MemoryAbstraction mem({{"Src1", MemScope::Reg, MemScope::Shared},
                           {"Dst", MemScope::Global, MemScope::Reg}});
    Intrinsic intr{std::move(acc), std::move(mem)};
    auto plans = enumeratePlans(rowsum, intr, {});
    ASSERT_GT(plans.size(), 0u);
    EXPECT_LE(codegenError(plans.front(),
                           defaultSchedule(plans.front())),
              1e-4f);
}

} // namespace
} // namespace amos
