/**
 * @file
 * Functional-equivalence tests: every valid mapping, executed both
 * via index remapping and via the packed base/stride address path,
 * must reproduce the reference interpreter exactly. These are the
 * semantic-preservation guarantees of Sec. 5.2 put to work.
 */

#include <gtest/gtest.h>

#include "explore/tuner.hh"
#include "hw/hardware.hh"
#include "isa/intrinsics.hh"
#include "mapping/execute.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "tensor/reference.hh"

namespace amos {
namespace {

using ops::ConvParams;

constexpr float kTol = 1e-4f;

ConvParams
tinyConvParams()
{
    ConvParams pr;
    pr.batch = 2;
    pr.in_channels = 2;
    pr.out_channels = 4;
    pr.out_h = 2;
    pr.out_w = 3;
    pr.kernel_h = 2;
    pr.kernel_w = 2;
    return pr;
}

/** Small instance of each operator kind used by the param suites. */
TensorComputation
makeSmallOp(ops::OpKind kind)
{
    ConvParams pr = tinyConvParams();
    switch (kind) {
      case ops::OpKind::GMV: return ops::makeGemv(5, 7);
      case ops::OpKind::GMM: return ops::makeGemm(3, 5, 7);
      case ops::OpKind::C1D: return ops::makeConv1d(2, 3, 4, 5, 3);
      case ops::OpKind::C2D: return ops::makeConv2d(pr);
      case ops::OpKind::C3D: return ops::makeConv3d(pr, 2, 2);
      case ops::OpKind::T2D: {
        ConvParams t2 = pr;
        t2.stride = 2;
        return ops::makeTransposedConv2d(t2);
      }
      case ops::OpKind::GRP: return ops::makeGroupConv2d(pr, 2);
      case ops::OpKind::DIL: {
        ConvParams dil = pr;
        dil.dilation = 2;
        return ops::makeDilatedConv2d(dil);
      }
      case ops::OpKind::DEP: return ops::makeDepthwiseConv2d(pr, 2);
      case ops::OpKind::CAP: {
        ConvParams cap = pr;
        cap.out_h = 2;
        cap.out_w = 2;
        cap.out_channels = 2;
        return ops::makeCapsuleConv2d(cap, 2);
      }
      case ops::OpKind::BCV: return ops::makeBatchedConv2d(pr);
      case ops::OpKind::GFC: return ops::makeGroupedFC(2, 3, 4, 5);
      case ops::OpKind::MEN: return ops::makeMean(5, 6);
      case ops::OpKind::VAR: return ops::makeVariance(5, 6);
      case ops::OpKind::SCN: return ops::makeScan(3, 5);
    }
    panic("unreachable");
}

TEST(Execute, Fig3MappingReproducesReference)
{
    ConvParams pr;
    pr.batch = 1;
    pr.in_channels = 1;
    pr.out_channels = 4;
    pr.out_h = 2;
    pr.out_w = 2;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto conv = ops::makeConv2d(pr);
    ComputeMapping m;
    m.groups = {{0, 2, 3}, {1}, {4, 5, 6}};
    MappingPlan plan(conv, isa::wmmaTiny(), m);
    ASSERT_TRUE(plan.valid());
    EXPECT_LE(mappedVsReferenceError(plan), kTol);
}

TEST(Execute, AllConv2dMappingsPreserveSemantics)
{
    // The central property test: all 35 addressable C2D mappings are
    // functionally exact, trailing padding and empty groups included.
    auto conv = ops::makeConv2d(tinyConvParams());
    auto plans = enumeratePlans(conv, isa::wmmaTiny(), {});
    ASSERT_EQ(plans.size(), 35u);
    for (const auto &plan : plans) {
        SCOPED_TRACE(plan.mapping().signature(conv));
        EXPECT_LE(mappedVsReferenceError(plan), kTol);
    }
}

TEST(Execute, PermissiveMappingsAlsoPreserveSemantics)
{
    // Addressability is a performance property, not a correctness
    // one: permissive-only mappings are exact too.
    auto conv = ops::makeConv2d(tinyConvParams());
    auto plans = enumeratePlans(conv, isa::wmmaTiny(),
                                {LegalityPolicy::Permissive, 0});
    ASSERT_EQ(plans.size(), 49u);
    for (const auto &plan : plans) {
        SCOPED_TRACE(plan.mapping().signature(conv));
        EXPECT_LE(mappedVsReferenceError(plan), kTol);
    }
}

class OperatorExecution
    : public ::testing::TestWithParam<ops::OpKind>
{
};

TEST_P(OperatorExecution, EveryMappingOfEveryOperatorIsExact)
{
    // Small instance of each operator kind; every addressable mapping
    // on the tiny Tensor Core must be exact.
    TensorComputation comp = makeSmallOp(GetParam());

    auto plans = enumeratePlans(comp, isa::wmmaTiny(), {});
    ASSERT_GT(plans.size(), 0u)
        << ops::opKindName(GetParam()) << " has no valid mapping";
    for (const auto &plan : plans) {
        SCOPED_TRACE(plan.mapping().signature(comp));
        EXPECT_LE(mappedVsReferenceError(plan), kTol);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, OperatorExecution,
    ::testing::ValuesIn(ops::allOpKinds()),
    [](const ::testing::TestParamInfo<ops::OpKind> &info) {
        return ops::opKindName(info.param);
    });

class TunedOperatorDifferential
    : public ::testing::TestWithParam<ops::OpKind>
{
};

TEST_P(TunedOperatorDifferential, BestTunedPlanMatchesReference)
{
    // End-to-end differential: run the whole exploration pipeline
    // (enumerate -> validate -> GA search over schedules) and check
    // that the *winning* plan still computes the same values as the
    // naive scalar reference. Guards against the tuner preferring a
    // mapping whose execution semantics drifted.
    TensorComputation comp = makeSmallOp(GetParam());

    auto plans = enumeratePlans(comp, isa::wmmaTiny(), {});
    ASSERT_GT(plans.size(), 0u);

    TuneOptions options;
    options.generations = 2;
    options.population = 8;
    options.measureTopK = 2;
    options.exploitSteps = 0;
    options.numThreads = 2;
    auto result = tuneWithPlans(plans, hw::v100(), options);
    ASSERT_TRUE(result.tensorizable);
    ASSERT_TRUE(result.bestPlan.has_value());
    ASSERT_LT(result.bestMappingIndex, plans.size());

    SCOPED_TRACE(result.bestPlan->mapping().signature(comp));
    EXPECT_LE(mappedVsReferenceError(*result.bestPlan), kTol);
    // The winner must be one of the enumerated plans, bit-for-bit.
    EXPECT_EQ(result.bestPlan->mapping().signature(comp),
              plans[result.bestMappingIndex]
                  .mapping()
                  .signature(comp));
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, TunedOperatorDifferential,
    ::testing::ValuesIn(ops::allOpKinds()),
    [](const ::testing::TestParamInfo<ops::OpKind> &info) {
        return ops::opKindName(info.param);
    });

class CompiledEngineDifferential
    : public ::testing::TestWithParam<ops::OpKind>
{
};

TEST_P(CompiledEngineDifferential, StrideWalkIsBitIdentical)
{
    // The stride-walk engine must reproduce the scalar interpreters
    // *bit for bit* — not within tolerance — on every addressable
    // mapping of every operator kind, serial and parallel.
    TensorComputation comp = makeSmallOp(GetParam());
    auto plans = enumeratePlans(comp, isa::wmmaTiny(), {});
    ASSERT_GT(plans.size(), 0u);
    for (const auto &plan : plans) {
        SCOPED_TRACE(plan.mapping().signature(comp));
        EXPECT_EQ(compiledVsInterpreterError(plan, 7, 1), 0.0f);
        EXPECT_EQ(compiledVsInterpreterError(plan, 7, 4), 0.0f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, CompiledEngineDifferential,
    ::testing::ValuesIn(ops::allOpKinds()),
    [](const ::testing::TestParamInfo<ops::OpKind> &info) {
        return ops::opKindName(info.param);
    });

TEST(Execute, ThreadCountNeverChangesResults)
{
    // Determinism guarantee of the parallel sweep: any thread count
    // yields the 1-thread bits, for both mapped paths.
    auto gemm = ops::makeGemm(8, 6, 5);
    auto plans = enumeratePlans(gemm, isa::wmmaTiny(), {});
    ASSERT_GT(plans.size(), 0u);
    const auto &plan = plans[0];

    auto inputs = makePatternInputs(gemm, 13);
    std::vector<const Buffer *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(&b);

    Buffer direct1(gemm.output()), packed1(gemm.output());
    executeMappedDirect(plan, ptrs, direct1, ExecOptions{});
    executeMappedPacked(plan, ptrs, packed1, ExecOptions{});
    for (int threads : {2, 3, 4}) {
        ExecOptions opts;
        opts.numThreads = threads;
        Buffer direct(gemm.output()), packed(gemm.output());
        executeMappedDirect(plan, ptrs, direct, opts);
        executeMappedPacked(plan, ptrs, packed, opts);
        EXPECT_EQ(direct1.maxAbsDiff(direct), 0.0f)
            << threads << " threads (direct)";
        EXPECT_EQ(packed1.maxAbsDiff(packed), 0.0f)
            << threads << " threads (packed)";
    }
}

TEST(Execute, FuzzedNonAffineAccessForcesFallback)
{
    // Mutate one access expression into non-affine form (only
    // possible via the fuzz hook — the constructor rejects it) and
    // check the executors transparently fall back to the interpreter
    // with identical results and a logged exec.fallback metric.
    auto gemm = ops::makeGemm(4, 4, 4);
    auto plans = enumeratePlans(gemm, isa::wmmaTiny(), {});
    ASSERT_EQ(plans.size(), 1u);

    auto mutated = gemm.withMutatedInputIndex(
        1, 0, floorDiv(gemm.iters()[2].var * 2, 2));
    MappingPlan plan(mutated, isa::wmmaTiny(), plans[0].mapping());
    ASSERT_TRUE(plan.valid());

    auto &fallback =
        MetricsRegistry::global().counter("exec.fallback");
    std::uint64_t before = fallback.value();
    // floorDiv(2k, 2) evaluates like k, so the interpreter result must
    // equal the unmutated plan's — while the engine must refuse the
    // non-affine form rather than silently miscompiling it.
    EXPECT_EQ(compiledVsInterpreterError(plan, 7, 1), 0.0f);
    EXPECT_EQ(fallback.value(), before + 2); // direct + packed

    Buffer viaMutated(mutated.output());
    Buffer viaOriginal(gemm.output());
    auto inputs = makePatternInputs(gemm, 7);
    std::vector<const Buffer *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(&b);
    executeMappedDirect(plan, ptrs, viaMutated);
    executeMappedDirect(plans[0], ptrs, viaOriginal);
    EXPECT_EQ(viaMutated.maxAbsDiff(viaOriginal), 0.0f);
}

TEST(Execute, OtherIntrinsicsPreserveSemantics)
{
    // Same property on structurally different intrinsics: VNNI
    // (matrix-vector), Mali dot (scalar output), and the virtual
    // 4-iteration CONV accelerator. The int8 intrinsics run the
    // quantized conv — their dtype-legal operand typing.
    auto conv = ops::makeConv2d(tinyConvParams());
    auto qconv = ops::makeQuantizedConv2d(tinyConvParams());
    for (const auto &intr :
         {isa::avx512Vnni(), isa::maliDot(),
          isa::virtualConv(2, 2, 2, 2), isa::virtualGemv(2, 4),
          isa::virtualAxpy(4)}) {
        const bool int8 =
            intr.compute.dst().dtype == DataType::I32;
        const auto &comp = int8 ? qconv : conv;
        auto plans = enumeratePlans(comp, intr, {});
        ASSERT_GT(plans.size(), 0u) << intr.name();
        for (const auto &plan : plans) {
            SCOPED_TRACE(intr.name() + " " +
                         plan.mapping().signature(comp));
            EXPECT_LE(mappedVsReferenceError(plan), kTol);
        }
    }
}

TEST(Execute, LargeIntrinsicPaddingIsExact)
{
    // Extents far below the intrinsic problem size: everything is
    // padding-dominated, results must still be exact.
    auto gemm = ops::makeGemm(3, 2, 5);
    auto plans = enumeratePlans(gemm, isa::wmma(16, 16, 16), {});
    ASSERT_EQ(plans.size(), 1u);
    EXPECT_GT(plans[0].paddingWasteFactor(), 10.0);
    EXPECT_LE(mappedVsReferenceError(plans[0]), kTol);
}

TEST(Execute, RejectsInvalidPlan)
{
    auto conv = ops::makeConv2d(tinyConvParams());
    ComputeMapping m;
    m.groups = {{0, 1}, {}, {4, 5, 6}};
    MappingPlan plan(conv, isa::wmmaTiny(), m);
    ASSERT_FALSE(plan.valid());
    auto inputs = makePatternInputs(conv, 3);
    std::vector<const Buffer *> ptrs = {&inputs[0], &inputs[1]};
    Buffer out(conv.output());
    EXPECT_THROW(executeMappedDirect(plan, ptrs, out), PanicError);
    EXPECT_THROW(executeMappedPacked(plan, ptrs, out), PanicError);
}

TEST(Execute, SeedVariationStaysExact)
{
    auto gemm = ops::makeGemm(4, 4, 4);
    auto plans = enumeratePlans(gemm, isa::wmmaTiny(), {});
    ASSERT_EQ(plans.size(), 1u);
    for (std::uint64_t seed : {1ULL, 42ULL, 1234567ULL})
        EXPECT_LE(mappedVsReferenceError(plans[0], seed), kTol);
}

// ---------------------------------------------------------------
// Quantized / mixed-precision differentials (quant/compare.hh).
// ---------------------------------------------------------------

/**
 * Quantized operator variants at small extents, paired with an int8
 * intrinsic whose mapping space is non-empty for that operator.
 */
std::vector<std::pair<TensorComputation, Intrinsic>>
quantizedSuite()
{
    std::vector<std::pair<TensorComputation, Intrinsic>> suite;
    suite.emplace_back(ops::makeQuantizedGemm(3, 5, 8),
                       isa::avx512Vnni());
    suite.emplace_back(ops::makeQuantizedGemm(4, 4, 8),
                       isa::maliDot());
    suite.emplace_back(ops::makeQuantizedConv2d(tinyConvParams()),
                       isa::avx512Vnni());
    suite.emplace_back(ops::makeQuantizedConv2d(tinyConvParams()),
                       isa::maliDot());
    // Symmetric i8 x i8 exercises the second loader combination.
    suite.emplace_back(ops::makeQuantizedGemm(3, 5, 8, DataType::I8,
                                              DataType::I8),
                       isa::maliDot());
    return suite;
}

TEST(QuantExecute, Int8EnginesBitExactAcrossThreadCounts)
{
    // int8 accumulation is exact int32 arithmetic, so every engine
    // must agree with the scalar interpreter bit for bit — at every
    // thread count, on both mapped paths.
    for (const auto &[comp, intr] : quantizedSuite()) {
        auto plans = enumeratePlans(comp, intr, {});
        ASSERT_GT(plans.size(), 0u)
            << comp.name() << " x " << intr.name();
        for (ExecEngine engine : {ExecEngine::Walk, ExecEngine::Jit}) {
            for (int threads : {1, 4}) {
                SCOPED_TRACE(comp.name() + " x " + intr.name() +
                             " engine=" + execEngineName(engine) +
                             " threads=" + std::to_string(threads));
                auto res = engineVsInterpreterCompare(
                    plans[0], engine,
                    quant::ToleranceSpec::exactly(), 7, threads);
                EXPECT_TRUE(res.pass) << res.summary();
            }
        }
    }
}

TEST(QuantExecute, Int8EveryMappingBitExact)
{
    // Not just the first plan: every enumerated quantized mapping
    // must survive the exact differential on the walk engine.
    auto conv = ops::makeQuantizedConv2d(tinyConvParams());
    auto plans = enumeratePlans(conv, isa::avx512Vnni(), {});
    ASSERT_GT(plans.size(), 0u);
    for (const auto &plan : plans) {
        SCOPED_TRACE(plan.mapping().signature(conv));
        auto res = engineVsInterpreterCompare(
            plan, ExecEngine::Walk, quant::ToleranceSpec::exactly());
        EXPECT_TRUE(res.pass) << res.summary();
    }
}

TEST(QuantExecute, Bf16WithinDocumentedBounds)
{
    // bf16 inputs round to an 8-bit mantissa before the exact f32
    // accumulation; engines still agree bit-for-bit with each other,
    // and the result tracks the f32 reference within the documented
    // bf16 bound (docs/execution.md).
    auto b = ops::bf16Variant(ops::makeGemm(4, 5, 8));
    auto plans = enumeratePlans(b, isa::wmmaTiny(), {});
    ASSERT_GT(plans.size(), 0u);
    for (int threads : {1, 4}) {
        auto res = engineVsInterpreterCompare(
            plans[0], ExecEngine::Walk,
            quant::ToleranceSpec::exactly(), 7, threads);
        EXPECT_TRUE(res.pass) << res.summary();
    }

    // Against the float reference the comparison is bounded, not
    // exact: run the bf16 interpreter and the f32 interpreter on the
    // same pattern values and compare under the bf16 tolerance.
    auto f = ops::makeGemm(4, 5, 8,
                           DataType::F32); // same shape, f32 operands
    auto binputs = makePatternInputs(b, 7);
    std::vector<const Buffer *> bptrs;
    for (const auto &buf : binputs)
        bptrs.push_back(&buf);
    Buffer bout(b.output());
    referenceExecute(b, bptrs, bout);

    // The f32 run sees the bf16-rounded values, dequantized: that is
    // the reference the tolerance bound is defined against.
    std::vector<Buffer> finputs;
    for (const auto &buf : binputs) {
        Buffer fb(buf.decl().withDtype(DataType::F32));
        for (std::size_t i = 0; i < fb.size(); ++i)
            fb.set(i, buf.at(i));
        finputs.push_back(std::move(fb));
    }
    std::vector<const Buffer *> fptrs;
    for (const auto &buf : finputs)
        fptrs.push_back(&buf);
    Buffer fout(f.output());
    referenceExecute(f, fptrs, fout);

    auto res = quant::compareBuffers(
        bout, fout, quant::defaultToleranceFor(DataType::BF16));
    EXPECT_TRUE(res.pass) << res.summary();
}

TEST(QuantExecute, DtypeIllegalPlanIsInvalid)
{
    // A hand-built mapping of a float conv onto the int8 VNNI
    // intrinsic passes the structural Algorithm-1 check but fails
    // dtype legality, so the plan is invalid with a "dtype:" reason
    // and the executors refuse it.
    auto conv = ops::makeConv2d(tinyConvParams());
    auto qconv = ops::makeQuantizedConv2d(tinyConvParams());
    auto qplans = enumeratePlans(qconv, isa::avx512Vnni(), {});
    ASSERT_GT(qplans.size(), 0u);
    MappingPlan plan(conv, isa::avx512Vnni(),
                     qplans[0].mapping());
    EXPECT_FALSE(plan.valid());
    EXPECT_EQ(plan.validation().failure.rfind("dtype: ", 0), 0u)
        << plan.validation().failure;
    auto inputs = makePatternInputs(conv, 3);
    std::vector<const Buffer *> ptrs = {&inputs[0], &inputs[1]};
    Buffer out(conv.output());
    EXPECT_THROW(executeMappedDirect(plan, ptrs, out), PanicError);
}

} // namespace
} // namespace amos
