/**
 * @file
 * Functional-equivalence tests: every valid mapping, executed both
 * via index remapping and via the packed base/stride address path,
 * must reproduce the reference interpreter exactly. These are the
 * semantic-preservation guarantees of Sec. 5.2 put to work.
 */

#include <gtest/gtest.h>

#include "explore/tuner.hh"
#include "hw/hardware.hh"
#include "isa/intrinsics.hh"
#include "mapping/execute.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "tensor/reference.hh"

namespace amos {
namespace {

using ops::ConvParams;

constexpr float kTol = 1e-4f;

ConvParams
tinyConvParams()
{
    ConvParams pr;
    pr.batch = 2;
    pr.in_channels = 2;
    pr.out_channels = 4;
    pr.out_h = 2;
    pr.out_w = 3;
    pr.kernel_h = 2;
    pr.kernel_w = 2;
    return pr;
}

/** Small instance of each operator kind used by the param suites. */
TensorComputation
makeSmallOp(ops::OpKind kind)
{
    ConvParams pr = tinyConvParams();
    switch (kind) {
      case ops::OpKind::GMV: return ops::makeGemv(5, 7);
      case ops::OpKind::GMM: return ops::makeGemm(3, 5, 7);
      case ops::OpKind::C1D: return ops::makeConv1d(2, 3, 4, 5, 3);
      case ops::OpKind::C2D: return ops::makeConv2d(pr);
      case ops::OpKind::C3D: return ops::makeConv3d(pr, 2, 2);
      case ops::OpKind::T2D: {
        ConvParams t2 = pr;
        t2.stride = 2;
        return ops::makeTransposedConv2d(t2);
      }
      case ops::OpKind::GRP: return ops::makeGroupConv2d(pr, 2);
      case ops::OpKind::DIL: {
        ConvParams dil = pr;
        dil.dilation = 2;
        return ops::makeDilatedConv2d(dil);
      }
      case ops::OpKind::DEP: return ops::makeDepthwiseConv2d(pr, 2);
      case ops::OpKind::CAP: {
        ConvParams cap = pr;
        cap.out_h = 2;
        cap.out_w = 2;
        cap.out_channels = 2;
        return ops::makeCapsuleConv2d(cap, 2);
      }
      case ops::OpKind::BCV: return ops::makeBatchedConv2d(pr);
      case ops::OpKind::GFC: return ops::makeGroupedFC(2, 3, 4, 5);
      case ops::OpKind::MEN: return ops::makeMean(5, 6);
      case ops::OpKind::VAR: return ops::makeVariance(5, 6);
      case ops::OpKind::SCN: return ops::makeScan(3, 5);
    }
    panic("unreachable");
}

TEST(Execute, Fig3MappingReproducesReference)
{
    ConvParams pr;
    pr.batch = 1;
    pr.in_channels = 1;
    pr.out_channels = 4;
    pr.out_h = 2;
    pr.out_w = 2;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto conv = ops::makeConv2d(pr);
    ComputeMapping m;
    m.groups = {{0, 2, 3}, {1}, {4, 5, 6}};
    MappingPlan plan(conv, isa::wmmaTiny(), m);
    ASSERT_TRUE(plan.valid());
    EXPECT_LE(mappedVsReferenceError(plan), kTol);
}

TEST(Execute, AllConv2dMappingsPreserveSemantics)
{
    // The central property test: all 35 addressable C2D mappings are
    // functionally exact, trailing padding and empty groups included.
    auto conv = ops::makeConv2d(tinyConvParams());
    auto plans = enumeratePlans(conv, isa::wmmaTiny(), {});
    ASSERT_EQ(plans.size(), 35u);
    for (const auto &plan : plans) {
        SCOPED_TRACE(plan.mapping().signature(conv));
        EXPECT_LE(mappedVsReferenceError(plan), kTol);
    }
}

TEST(Execute, PermissiveMappingsAlsoPreserveSemantics)
{
    // Addressability is a performance property, not a correctness
    // one: permissive-only mappings are exact too.
    auto conv = ops::makeConv2d(tinyConvParams());
    auto plans = enumeratePlans(conv, isa::wmmaTiny(),
                                {LegalityPolicy::Permissive, 0});
    ASSERT_EQ(plans.size(), 49u);
    for (const auto &plan : plans) {
        SCOPED_TRACE(plan.mapping().signature(conv));
        EXPECT_LE(mappedVsReferenceError(plan), kTol);
    }
}

class OperatorExecution
    : public ::testing::TestWithParam<ops::OpKind>
{
};

TEST_P(OperatorExecution, EveryMappingOfEveryOperatorIsExact)
{
    // Small instance of each operator kind; every addressable mapping
    // on the tiny Tensor Core must be exact.
    TensorComputation comp = makeSmallOp(GetParam());

    auto plans = enumeratePlans(comp, isa::wmmaTiny(), {});
    ASSERT_GT(plans.size(), 0u)
        << ops::opKindName(GetParam()) << " has no valid mapping";
    for (const auto &plan : plans) {
        SCOPED_TRACE(plan.mapping().signature(comp));
        EXPECT_LE(mappedVsReferenceError(plan), kTol);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, OperatorExecution,
    ::testing::ValuesIn(ops::allOpKinds()),
    [](const ::testing::TestParamInfo<ops::OpKind> &info) {
        return ops::opKindName(info.param);
    });

class TunedOperatorDifferential
    : public ::testing::TestWithParam<ops::OpKind>
{
};

TEST_P(TunedOperatorDifferential, BestTunedPlanMatchesReference)
{
    // End-to-end differential: run the whole exploration pipeline
    // (enumerate -> validate -> GA search over schedules) and check
    // that the *winning* plan still computes the same values as the
    // naive scalar reference. Guards against the tuner preferring a
    // mapping whose execution semantics drifted.
    TensorComputation comp = makeSmallOp(GetParam());

    auto plans = enumeratePlans(comp, isa::wmmaTiny(), {});
    ASSERT_GT(plans.size(), 0u);

    TuneOptions options;
    options.generations = 2;
    options.population = 8;
    options.measureTopK = 2;
    options.exploitSteps = 0;
    options.numThreads = 2;
    auto result = tuneWithPlans(plans, hw::v100(), options);
    ASSERT_TRUE(result.tensorizable);
    ASSERT_TRUE(result.bestPlan.has_value());
    ASSERT_LT(result.bestMappingIndex, plans.size());

    SCOPED_TRACE(result.bestPlan->mapping().signature(comp));
    EXPECT_LE(mappedVsReferenceError(*result.bestPlan), kTol);
    // The winner must be one of the enumerated plans, bit-for-bit.
    EXPECT_EQ(result.bestPlan->mapping().signature(comp),
              plans[result.bestMappingIndex]
                  .mapping()
                  .signature(comp));
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, TunedOperatorDifferential,
    ::testing::ValuesIn(ops::allOpKinds()),
    [](const ::testing::TestParamInfo<ops::OpKind> &info) {
        return ops::opKindName(info.param);
    });

class CompiledEngineDifferential
    : public ::testing::TestWithParam<ops::OpKind>
{
};

TEST_P(CompiledEngineDifferential, StrideWalkIsBitIdentical)
{
    // The stride-walk engine must reproduce the scalar interpreters
    // *bit for bit* — not within tolerance — on every addressable
    // mapping of every operator kind, serial and parallel.
    TensorComputation comp = makeSmallOp(GetParam());
    auto plans = enumeratePlans(comp, isa::wmmaTiny(), {});
    ASSERT_GT(plans.size(), 0u);
    for (const auto &plan : plans) {
        SCOPED_TRACE(plan.mapping().signature(comp));
        EXPECT_EQ(compiledVsInterpreterError(plan, 7, 1), 0.0f);
        EXPECT_EQ(compiledVsInterpreterError(plan, 7, 4), 0.0f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, CompiledEngineDifferential,
    ::testing::ValuesIn(ops::allOpKinds()),
    [](const ::testing::TestParamInfo<ops::OpKind> &info) {
        return ops::opKindName(info.param);
    });

TEST(Execute, ThreadCountNeverChangesResults)
{
    // Determinism guarantee of the parallel sweep: any thread count
    // yields the 1-thread bits, for both mapped paths.
    auto gemm = ops::makeGemm(8, 6, 5);
    auto plans = enumeratePlans(gemm, isa::wmmaTiny(), {});
    ASSERT_GT(plans.size(), 0u);
    const auto &plan = plans[0];

    auto inputs = makePatternInputs(gemm, 13);
    std::vector<const Buffer *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(&b);

    Buffer direct1(gemm.output()), packed1(gemm.output());
    executeMappedDirect(plan, ptrs, direct1, ExecOptions{});
    executeMappedPacked(plan, ptrs, packed1, ExecOptions{});
    for (int threads : {2, 3, 4}) {
        ExecOptions opts;
        opts.numThreads = threads;
        Buffer direct(gemm.output()), packed(gemm.output());
        executeMappedDirect(plan, ptrs, direct, opts);
        executeMappedPacked(plan, ptrs, packed, opts);
        EXPECT_EQ(direct1.maxAbsDiff(direct), 0.0f)
            << threads << " threads (direct)";
        EXPECT_EQ(packed1.maxAbsDiff(packed), 0.0f)
            << threads << " threads (packed)";
    }
}

TEST(Execute, FuzzedNonAffineAccessForcesFallback)
{
    // Mutate one access expression into non-affine form (only
    // possible via the fuzz hook — the constructor rejects it) and
    // check the executors transparently fall back to the interpreter
    // with identical results and a logged exec.fallback metric.
    auto gemm = ops::makeGemm(4, 4, 4);
    auto plans = enumeratePlans(gemm, isa::wmmaTiny(), {});
    ASSERT_EQ(plans.size(), 1u);

    auto mutated = gemm.withMutatedInputIndex(
        1, 0, floorDiv(gemm.iters()[2].var * 2, 2));
    MappingPlan plan(mutated, isa::wmmaTiny(), plans[0].mapping());
    ASSERT_TRUE(plan.valid());

    auto &fallback =
        MetricsRegistry::global().counter("exec.fallback");
    std::uint64_t before = fallback.value();
    // floorDiv(2k, 2) evaluates like k, so the interpreter result must
    // equal the unmutated plan's — while the engine must refuse the
    // non-affine form rather than silently miscompiling it.
    EXPECT_EQ(compiledVsInterpreterError(plan, 7, 1), 0.0f);
    EXPECT_EQ(fallback.value(), before + 2); // direct + packed

    Buffer viaMutated(mutated.output());
    Buffer viaOriginal(gemm.output());
    auto inputs = makePatternInputs(gemm, 7);
    std::vector<const Buffer *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(&b);
    executeMappedDirect(plan, ptrs, viaMutated);
    executeMappedDirect(plans[0], ptrs, viaOriginal);
    EXPECT_EQ(viaMutated.maxAbsDiff(viaOriginal), 0.0f);
}

TEST(Execute, OtherIntrinsicsPreserveSemantics)
{
    // Same property on structurally different intrinsics: VNNI
    // (matrix-vector), Mali dot (scalar output), and the virtual
    // 4-iteration CONV accelerator.
    auto conv = ops::makeConv2d(tinyConvParams());
    for (const auto &intr :
         {isa::avx512Vnni(), isa::maliDot(),
          isa::virtualConv(2, 2, 2, 2), isa::virtualGemv(2, 4),
          isa::virtualAxpy(4)}) {
        auto plans = enumeratePlans(conv, intr, {});
        ASSERT_GT(plans.size(), 0u) << intr.name();
        for (const auto &plan : plans) {
            SCOPED_TRACE(intr.name() + " " +
                         plan.mapping().signature(conv));
            EXPECT_LE(mappedVsReferenceError(plan), kTol);
        }
    }
}

TEST(Execute, LargeIntrinsicPaddingIsExact)
{
    // Extents far below the intrinsic problem size: everything is
    // padding-dominated, results must still be exact.
    auto gemm = ops::makeGemm(3, 2, 5);
    auto plans = enumeratePlans(gemm, isa::wmma(16, 16, 16), {});
    ASSERT_EQ(plans.size(), 1u);
    EXPECT_GT(plans[0].paddingWasteFactor(), 10.0);
    EXPECT_LE(mappedVsReferenceError(plans[0]), kTol);
}

TEST(Execute, RejectsInvalidPlan)
{
    auto conv = ops::makeConv2d(tinyConvParams());
    ComputeMapping m;
    m.groups = {{0, 1}, {}, {4, 5, 6}};
    MappingPlan plan(conv, isa::wmmaTiny(), m);
    ASSERT_FALSE(plan.valid());
    auto inputs = makePatternInputs(conv, 3);
    std::vector<const Buffer *> ptrs = {&inputs[0], &inputs[1]};
    Buffer out(conv.output());
    EXPECT_THROW(executeMappedDirect(plan, ptrs, out), PanicError);
    EXPECT_THROW(executeMappedPacked(plan, ptrs, out), PanicError);
}

TEST(Execute, SeedVariationStaysExact)
{
    auto gemm = ops::makeGemm(4, 4, 4);
    auto plans = enumeratePlans(gemm, isa::wmmaTiny(), {});
    ASSERT_EQ(plans.size(), 1u);
    for (std::uint64_t seed : {1ULL, 42ULL, 1234567ULL})
        EXPECT_LE(mappedVsReferenceError(plans[0], seed), kTol);
}

} // namespace
} // namespace amos
