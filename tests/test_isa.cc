/**
 * @file
 * Unit tests for the hardware abstraction: compute/memory
 * abstractions, access matrices, range constraints, the intrinsic
 * registry, and the hardware presets.
 */

#include <gtest/gtest.h>

#include "hw/hardware.hh"
#include "isa/abstraction.hh"
#include "isa/intrinsics.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "support/logging.hh"

namespace amos {
namespace {

TEST(ComputeAbstraction, WmmaAccessMatrixMatchesFig4)
{
    auto intr = isa::wmma(16, 16, 16);
    auto z = intr.compute.accessMatrix();
    // rows Src1, Src2, Dst; columns i1, i2, r1 (the paper's Fig. 4).
    auto expected = BitMatrix::fromRows({
        {1, 0, 1},
        {0, 1, 1},
        {1, 1, 0},
    });
    EXPECT_EQ(z, expected);
}

TEST(ComputeAbstraction, ProblemSizeAndOps)
{
    auto intr = isa::wmma(32, 8, 16);
    std::vector<std::int64_t> expected = {32, 8, 16};
    EXPECT_EQ(intr.compute.problemSize(), expected);
    EXPECT_EQ(intr.compute.scalarOps(), 32 * 8 * 16);
}

TEST(ComputeAbstraction, OperandTileSizes)
{
    auto intr = isa::wmma(16, 16, 16);
    const auto &c = intr.compute;
    EXPECT_EQ(c.operandTileElems(c.srcs()[0]), 256);
    EXPECT_EQ(c.operandTileBytes(c.srcs()[0]), 512); // f16
    EXPECT_EQ(c.operandTileElems(c.dst()), 256);
}

TEST(ComputeAbstraction, RangeConstraintEncodesExtents)
{
    // The paper's Eq. 1 example shape 32x8x16: every row must say
    // iter_k - extent_k < 0.
    auto intr = isa::wmma(32, 8, 16);
    auto rc = intr.compute.rangeConstraint();
    ASSERT_EQ(rc.rows.size(), 3u);
    EXPECT_EQ(rc.rows[0],
              (std::vector<std::int64_t>{1, 0, 0, -32}));
    EXPECT_EQ(rc.rows[1],
              (std::vector<std::int64_t>{0, 1, 0, -8}));
    EXPECT_EQ(rc.rows[2],
              (std::vector<std::int64_t>{0, 0, 1, -16}));
}

TEST(ComputeAbstraction, ReductionFlagMustMatchDst)
{
    // i1 marked reduction but used by Dst: inconsistent.
    EXPECT_THROW(
        ComputeAbstraction(
            "bad", {{"i1", 4, true}},
            {{"Src1", {0}, DataType::F16},
             {"Src2", {0}, DataType::F16}},
            {"Dst", {0}, DataType::F16}),
        FatalError);
}

TEST(ComputeAbstraction, ToStringShowsScalarForm)
{
    auto s = isa::wmma(16, 16, 16).compute.toString();
    EXPECT_NE(s.find("Dst[i1, i2]"), std::string::npos);
    EXPECT_NE(s.find("Src1[i1, r1]"), std::string::npos);
    EXPECT_NE(s.find("r1 < 16"), std::string::npos);
}

TEST(MemoryAbstraction, ScopesPerOperand)
{
    auto intr = isa::wmma(16, 16, 16);
    const auto &mem = intr.memory;
    EXPECT_EQ(mem.forOperand("Src1").srcScope, MemScope::Shared);
    EXPECT_EQ(mem.forOperand("Src1").dstScope, MemScope::Reg);
    EXPECT_EQ(mem.forOperand("Dst").dstScope, MemScope::Global);
    EXPECT_THROW(mem.forOperand("nope"), PanicError);
    EXPECT_NE(mem.toString().find("reg.Src1 = shared.Src1"),
              std::string::npos);
}

TEST(Intrinsics, TinyWmmaMatchesRunningExample)
{
    auto intr = isa::wmmaTiny();
    std::vector<std::int64_t> expected = {2, 2, 2};
    EXPECT_EQ(intr.compute.problemSize(), expected);
}

TEST(Intrinsics, VnniIsMatrixVectorShaped)
{
    auto intr = isa::avx512Vnni();
    const auto &c = intr.compute;
    ASSERT_EQ(c.numIters(), 2u);
    EXPECT_FALSE(c.iters()[0].reduction); // i1 lanes
    EXPECT_TRUE(c.iters()[1].reduction);  // r1 depth-4 dot
    // Src1 is the broadcast activation: indexed by r1 only.
    EXPECT_EQ(c.srcs()[0].iterIndices,
              (std::vector<std::size_t>{1}));
    EXPECT_EQ(c.srcs()[1].iterIndices,
              (std::vector<std::size_t>{0, 1}));
}

TEST(Intrinsics, MaliDotIsScalarOutput)
{
    auto intr = isa::maliDot();
    EXPECT_TRUE(intr.compute.dst().iterIndices.empty());
    EXPECT_EQ(intr.compute.scalarOps(), 4);
}

TEST(Intrinsics, Int8IntrinsicsDeclareTypedOperands)
{
    // VNNI is the asymmetric u8 x i8 -> i32 convention, Mali dot the
    // symmetric i8 x i8 -> i32 one. The declared dtypes drive
    // legality: a float GEMM matches neither, the quantized variant
    // matches both (golden int8-semantics smoke check).
    auto vnni = isa::avx512Vnni();
    EXPECT_EQ(vnni.compute.srcs()[0].dtype, DataType::U8);
    EXPECT_EQ(vnni.compute.srcs()[1].dtype, DataType::I8);
    EXPECT_EQ(vnni.compute.dst().dtype, DataType::I32);
    auto mali = isa::maliDot();
    EXPECT_EQ(mali.compute.srcs()[0].dtype, DataType::I8);
    EXPECT_EQ(mali.compute.srcs()[1].dtype, DataType::I8);
    EXPECT_EQ(mali.compute.dst().dtype, DataType::I32);

    auto fgemm = ops::makeGemm(4, 4, 8);
    auto qgemm = ops::makeQuantizedGemm(4, 4, 8);
    for (const auto &intr : {vnni, mali}) {
        SCOPED_TRACE(intr.name());
        EXPECT_EQ(enumerateMappings(fgemm, intr, {}).size(), 0u);
        EXPECT_GT(enumerateMappings(qgemm, intr, {}).size(), 0u);
        EXPECT_FALSE(isTensorizable(fgemm, intr));
        EXPECT_TRUE(isTensorizable(qgemm, intr));
    }
}

TEST(Intrinsics, VirtualTrioShapes)
{
    EXPECT_EQ(isa::virtualAxpy(64).compute.numIters(), 1u);
    EXPECT_EQ(isa::virtualGemv(32, 32).compute.numIters(), 2u);
    EXPECT_EQ(isa::virtualConv(8, 4, 4, 8).compute.numIters(), 4u);
    // CONV: Dst indexed by the three spatial iterations.
    auto conv = isa::virtualConv();
    EXPECT_EQ(conv.compute.dst().iterIndices.size(), 3u);
}

TEST(Hardware, PresetsAreSane)
{
    for (const auto &spec :
         {hw::v100(), hw::a100(), hw::xeonSilver4110(), hw::maliG76(),
          hw::virtualAxpyAccel(), hw::virtualGemvAccel(),
          hw::virtualConvAccel()}) {
        SCOPED_TRACE(spec.name);
        EXPECT_GT(spec.numCores, 0);
        EXPECT_GT(spec.subcoresPerCore, 0);
        EXPECT_GT(spec.clockGhz, 0.0);
        EXPECT_GT(spec.global.readBytesPerCycle, 0.0);
        EXPECT_GT(spec.shared.capacityBytes, 0);
        EXPECT_FALSE(spec.intrinsics.empty());
        EXPECT_GT(spec.peakOpsPerCycle(), 0.0);
        EXPECT_FALSE(spec.toString().empty());
    }
}

TEST(Hardware, A100OutclassesV100)
{
    auto v = hw::v100();
    auto a = hw::a100();
    EXPECT_GT(a.peakOpsPerCycle(), v.peakOpsPerCycle());
    EXPECT_GT(a.global.readBytesPerCycle, v.global.readBytesPerCycle);
}

TEST(Hardware, PeakOpsComposesHierarchy)
{
    auto v = hw::v100();
    const auto &intr = v.primaryIntrinsic();
    double per_subcore = intr.compute.scalarOps() *
                         intr.unitsPerSubcore / intr.latencyCycles;
    EXPECT_DOUBLE_EQ(v.peakOpsPerCycle(),
                     per_subcore * v.subcoresPerCore * v.numCores);
}

} // namespace
} // namespace amos
