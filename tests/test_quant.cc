/**
 * @file
 * Unit tests for the quantized / mixed-precision subsystem
 * (src/quant): bf16 conversion goldens, affine quantization and
 * requantization, dtype legality, semantics classification, the
 * tolerance-aware comparator, and the typed Buffer storage lanes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "quant/bf16.hh"
#include "quant/compare.hh"
#include "quant/legality.hh"
#include "quant/qparams.hh"
#include "quant/semantics.hh"
#include "isa/intrinsics.hh"
#include "ops/operators.hh"
#include "support/logging.hh"
#include "tensor/tensor.hh"

namespace amos {
namespace {

using quant::KernelSemantics;

// ---------------------------------------------------------------
// bf16 conversion goldens.
// ---------------------------------------------------------------

TEST(Bf16, WideningIsExact)
{
    // bf16 bits are the top half of the binary32; widening shifts.
    EXPECT_EQ(quant::floatFromBf16(0x3F80), 1.0f);
    EXPECT_EQ(quant::floatFromBf16(0xBF80), -1.0f);
    EXPECT_EQ(quant::floatFromBf16(0x4000), 2.0f);
    EXPECT_EQ(quant::floatFromBf16(0x0000), 0.0f);
    EXPECT_EQ(quant::floatFromBf16(0x7F80),
              std::numeric_limits<float>::infinity());
}

TEST(Bf16, NarrowingRoundsToNearestEven)
{
    // Exactly representable values pass through.
    EXPECT_EQ(quant::bf16FromFloat(1.0f), 0x3F80);
    EXPECT_EQ(quant::bf16FromFloat(-2.0f), 0xC000);

    // 1 + 2^-8 sits exactly halfway between 1.0 (mantissa 0x00,
    // even) and the next bf16 (mantissa 0x01, odd): ties to even.
    EXPECT_EQ(quant::bf16FromFloat(1.00390625f), 0x3F80);
    // 1 + 3*2^-8 is halfway between 0x01 and 0x02: rounds up to
    // the even mantissa 0x02.
    EXPECT_EQ(quant::bf16FromFloat(1.01171875f), 0x3F82);
    // Just above the tie rounds up.
    EXPECT_EQ(quant::bf16FromFloat(1.00390637f), 0x3F81);

    // Rounding can carry into the exponent: the largest float below
    // 2.0 rounds to exactly 2.0.
    EXPECT_EQ(quant::bf16FromFloat(std::nextafter(2.0f, 0.0f)),
              0x4000);
}

TEST(Bf16, NaNIsQuietedAndInfinityPreserved)
{
    const std::uint16_t qnan = quant::bf16FromFloat(
        std::numeric_limits<float>::quiet_NaN());
    EXPECT_TRUE(std::isnan(quant::floatFromBf16(qnan)));
    // The quiet bit is forced so a payload-less NaN cannot collapse
    // to infinity.
    EXPECT_NE(qnan & 0x0040, 0);

    // A signalling-style NaN with a tiny payload must stay NaN too.
    std::uint32_t snan_bits = 0x7F800001u;
    float snan;
    std::memcpy(&snan, &snan_bits, sizeof(snan));
    EXPECT_TRUE(
        std::isnan(quant::floatFromBf16(quant::bf16FromFloat(snan))));

    EXPECT_EQ(quant::bf16FromFloat(
                  std::numeric_limits<float>::infinity()),
              0x7F80);
    EXPECT_EQ(quant::bf16FromFloat(
                  -std::numeric_limits<float>::infinity()),
              0xFF80);
}

TEST(Bf16, RoundTripErrorWithinHalfUlp)
{
    // |x - bf16Round(x)| <= 2^-8 * |x| for normal values (7 mantissa
    // bits -> half-ulp relative error 2^-8).
    for (float x : {0.1f, 0.3333333f, 1.5f, 3.14159265f, 1000.25f,
                    -7.77f, 1e-3f, 1e20f}) {
        const float r = quant::bf16Round(x);
        EXPECT_LE(std::abs(x - r), std::abs(x) * 0x1p-8f) << x;
    }
}

// ---------------------------------------------------------------
// Affine quantization parameters and requantization.
// ---------------------------------------------------------------

TEST(QuantParams, SymmetricInt8CoversRange)
{
    auto qp = quant::chooseQuantParams(-4.0f, 2.0f, DataType::I8);
    EXPECT_EQ(qp.zeroPoint, 0); // symmetric for signed
    // Max magnitude 4.0 maps within [-127, 127].
    const std::int64_t q = quant::quantizeValue(-4.0f, qp,
                                                DataType::I8);
    EXPECT_GE(q, -128);
    const float back = quant::dequantizeValue(q, qp);
    EXPECT_NEAR(back, -4.0f, qp.scale);
}

TEST(QuantParams, AsymmetricUint8RoundTrips)
{
    auto qp = quant::chooseQuantParams(-1.0f, 3.0f, DataType::U8);
    for (float v : {-1.0f, -0.5f, 0.0f, 1.0f, 2.9f, 3.0f}) {
        const std::int64_t q = quant::quantizeValue(v, qp,
                                                    DataType::U8);
        EXPECT_GE(q, 0);
        EXPECT_LE(q, 255);
        EXPECT_NEAR(quant::dequantizeValue(q, qp), v, qp.scale);
    }
    // Zero must be exactly representable (the whole point of the
    // asymmetric zero point).
    const std::int64_t zq = quant::quantizeValue(0.0f, qp,
                                                 DataType::U8);
    EXPECT_EQ(quant::dequantizeValue(zq, qp), 0.0f);
}

TEST(QuantParams, QuantizeSaturates)
{
    quant::QuantParams qp{1.0f, 0};
    EXPECT_EQ(quant::quantizeValue(1000.0f, qp, DataType::I8), 127);
    EXPECT_EQ(quant::quantizeValue(-1000.0f, qp, DataType::I8),
              -128);
    EXPECT_EQ(quant::quantizeValue(-5.0f, qp, DataType::U8), 0);
    EXPECT_EQ(quant::quantizeValue(300.0f, qp, DataType::U8), 255);
}

TEST(Requantize, GoldensAndClamping)
{
    // acc * scale + zp, round half away from zero, clamp to int8.
    EXPECT_EQ(quant::requantize(100, 0.5f, 0), 50);
    EXPECT_EQ(quant::requantize(5, 0.5f, 0), 3);    // 2.5 -> 3
    EXPECT_EQ(quant::requantize(-5, 0.5f, 0), -3);  // -2.5 -> -3
    EXPECT_EQ(quant::requantize(100, 0.5f, 10), 60);
    EXPECT_EQ(quant::requantize(1000, 1.0f, 0), 127);   // clamp hi
    EXPECT_EQ(quant::requantize(-1000, 1.0f, 0), -128); // clamp lo
    EXPECT_EQ(quant::requantize(0, 123.0f, 7), 7);
}

TEST(QuantParams, BufferRoundTripStaysWithinScale)
{
    TensorDecl fdecl("x", {16});
    Buffer src(fdecl);
    src.fillPattern(3);
    float lo = 0.0f, hi = 0.0f;
    for (std::size_t i = 0; i < src.size(); ++i) {
        lo = std::min(lo, src.at(i));
        hi = std::max(hi, src.at(i));
    }
    auto qp = quant::chooseQuantParams(lo, hi, DataType::I8);
    Buffer q(fdecl.withDtype(DataType::I8));
    quant::quantizeBuffer(src, qp, q);
    Buffer back(fdecl.withDtype(DataType::F32));
    quant::dequantizeBuffer(q, qp, back);
    for (std::size_t i = 0; i < src.size(); ++i)
        EXPECT_NEAR(back.at(i), src.at(i), qp.scale) << i;
}

// ---------------------------------------------------------------
// Dtype legality.
// ---------------------------------------------------------------

TEST(Legality, WidthClassesNotExactDtypes)
{
    using quant::operandDtypeCompatible;
    // Float class is interchangeable.
    EXPECT_TRUE(operandDtypeCompatible(DataType::F32, DataType::F16));
    EXPECT_TRUE(operandDtypeCompatible(DataType::BF16, DataType::F16));
    EXPECT_TRUE(operandDtypeCompatible(DataType::F16, DataType::F32));
    // Int8 class ignores signedness.
    EXPECT_TRUE(operandDtypeCompatible(DataType::I8, DataType::U8));
    EXPECT_TRUE(operandDtypeCompatible(DataType::U8, DataType::I8));
    // Classes do not mix.
    EXPECT_FALSE(operandDtypeCompatible(DataType::F32, DataType::I8));
    EXPECT_FALSE(operandDtypeCompatible(DataType::I8, DataType::F16));
    EXPECT_FALSE(operandDtypeCompatible(DataType::I32, DataType::I8));
    EXPECT_FALSE(operandDtypeCompatible(DataType::F32,
                                        DataType::I32));
}

TEST(Legality, FloatGemmIllegalOnVnniWithReason)
{
    auto gemm = ops::makeGemm(4, 4, 8);
    auto legal =
        quant::checkDtypeLegality(gemm, isa::avx512Vnni().compute);
    EXPECT_FALSE(legal.legal);
    EXPECT_NE(legal.reason.find("f16"), std::string::npos)
        << legal.reason;

    auto qgemm = ops::makeQuantizedGemm(4, 4, 8);
    EXPECT_TRUE(
        quant::checkDtypeLegality(qgemm, isa::avx512Vnni().compute)
            .legal);
    // And the reverse: the quantized GEMM cannot feed a float unit.
    EXPECT_FALSE(
        quant::checkDtypeLegality(qgemm, isa::wmmaTiny().compute)
            .legal);
}

// ---------------------------------------------------------------
// Semantics classification.
// ---------------------------------------------------------------

TEST(Semantics, ClassifiesAllThreeDisciplines)
{
    auto f = quant::classifyComputation(ops::makeGemm(2, 2, 2));
    EXPECT_TRUE(f.supported);
    EXPECT_EQ(f.kind, KernelSemantics::F32);

    auto q = quant::classifyComputation(
        ops::makeQuantizedGemm(2, 2, 2));
    EXPECT_TRUE(q.supported);
    EXPECT_EQ(q.kind, KernelSemantics::IntDot);

    auto b = quant::classifyComputation(
        ops::bf16Variant(ops::makeGemm(2, 2, 2)));
    EXPECT_TRUE(b.supported);
    EXPECT_EQ(b.kind, KernelSemantics::Bf16);
}

TEST(Semantics, Bf16AccumulationIsRejected)
{
    // bf16 output would round per engine-dependent intermediate and
    // break cross-engine bit-exactness; the classifier says why.
    auto comp = ops::makeGemm(2, 2, 2).withOperandDtypes(
        {DataType::BF16, DataType::BF16}, DataType::BF16);
    auto sem = quant::classifyComputation(comp);
    EXPECT_FALSE(sem.supported);
    EXPECT_NE(sem.reason.find("bf16 accumulation"),
              std::string::npos)
        << sem.reason;
}

TEST(Semantics, Int8NeedsI32Output)
{
    auto comp = ops::makeGemm(2, 2, 2).withOperandDtypes(
        {DataType::I8, DataType::I8}, DataType::F32);
    auto sem = quant::classifyComputation(comp);
    EXPECT_FALSE(sem.supported);
    EXPECT_NE(sem.reason.find("i32 output"), std::string::npos)
        << sem.reason;
}

TEST(Semantics, IntDotStepWrapsExactly)
{
    EXPECT_EQ(quant::intDotStep(0, 3, 4), 12);
    EXPECT_EQ(quant::intDotStep(10, -2, 5), 0);
    // Saturating nothing: the discipline wraps in two's complement.
    const std::int32_t maxv = std::numeric_limits<std::int32_t>::max();
    EXPECT_EQ(quant::intDotStep(maxv, 1, 1),
              std::numeric_limits<std::int32_t>::min());
}

// ---------------------------------------------------------------
// Tolerance-aware comparator.
// ---------------------------------------------------------------

TEST(Compare, ExactRegimeCatchesOneBit)
{
    TensorDecl decl("t", {8});
    Buffer a(decl.withDtype(DataType::I32));
    Buffer b(decl.withDtype(DataType::I32));
    for (std::size_t i = 0; i < a.size(); ++i) {
        a.intSet(i, static_cast<std::int64_t>(i) * 3 - 5);
        b.intSet(i, static_cast<std::int64_t>(i) * 3 - 5);
    }
    auto ok = quant::compareBuffers(a, b,
                                    quant::ToleranceSpec::exactly());
    EXPECT_TRUE(ok.pass);
    EXPECT_EQ(ok.failures, 0);

    b.intSet(5, b.intAt(5) + 1); // one flipped lane
    auto bad = quant::compareBuffers(
        a, b, quant::ToleranceSpec::exactly());
    EXPECT_FALSE(bad.pass);
    EXPECT_EQ(bad.failures, 1);
    EXPECT_EQ(bad.worstIndex, 5);
    EXPECT_NE(bad.summary().find("5"), std::string::npos);
}

TEST(Compare, BoundedRegimeUsesAbsPlusRel)
{
    TensorDecl decl("t", {4});
    Buffer want(decl.withDtype(DataType::F32));
    Buffer got(decl.withDtype(DataType::F32));
    want.set(0, 100.0f);
    got.set(0, 100.9f); // rel err 0.9% < 1%
    want.set(1, 0.0f);
    got.set(1, 0.005f); // abs err within 0.01
    want.set(2, -50.0f);
    got.set(2, -50.4f);
    want.set(3, 1.0f);
    got.set(3, 1.0f);
    auto spec = quant::ToleranceSpec::bounded(0.01, 0.01);
    EXPECT_TRUE(quant::compareBuffers(got, want, spec).pass);

    got.set(3, 1.5f); // way out
    auto bad = quant::compareBuffers(got, want, spec);
    EXPECT_FALSE(bad.pass);
    EXPECT_EQ(bad.failures, 1);
    EXPECT_EQ(bad.worstIndex, 3); // the failing lane, not lane 0
    // maxAbsErr tracks the largest error over ALL lanes, passing
    // ones included: lane 0's 0.9 beats the failing lane's 0.5.
    EXPECT_NEAR(bad.maxAbsErr, 0.9, 1e-4);
    EXPECT_NE(bad.summary().find("out of tolerance"),
              std::string::npos);
}

TEST(Compare, DefaultRegimeFollowsOutputDtype)
{
    EXPECT_TRUE(quant::defaultToleranceFor(DataType::I32).exact);
    EXPECT_TRUE(quant::defaultToleranceFor(DataType::I8).exact);
    EXPECT_FALSE(quant::defaultToleranceFor(DataType::F32).exact);
    EXPECT_FALSE(quant::defaultToleranceFor(DataType::BF16).exact);
    // bf16's 8-bit mantissa gets the documented looser bound.
    EXPECT_GT(quant::defaultToleranceFor(DataType::BF16).relTol,
              quant::defaultToleranceFor(DataType::F32).relTol);
}

// ---------------------------------------------------------------
// Typed Buffer storage.
// ---------------------------------------------------------------

TEST(TypedBuffer, LanesFollowDtype)
{
    TensorDecl d("t", {4});
    EXPECT_EQ(Buffer(d).storage(), StorageLane::F32); // f16 default
    EXPECT_EQ(Buffer(d.withDtype(DataType::F32)).storage(),
              StorageLane::F32);
    EXPECT_EQ(Buffer(d.withDtype(DataType::BF16)).storage(),
              StorageLane::BF16);
    EXPECT_EQ(Buffer(d.withDtype(DataType::I8)).storage(),
              StorageLane::I8);
    EXPECT_EQ(Buffer(d.withDtype(DataType::U8)).storage(),
              StorageLane::U8);
    EXPECT_EQ(Buffer(d.withDtype(DataType::I32)).storage(),
              StorageLane::I32);

    EXPECT_EQ(Buffer(d.withDtype(DataType::I8)).storageBytes(), 4u);
    EXPECT_EQ(Buffer(d.withDtype(DataType::BF16)).storageBytes(),
              8u);
    EXPECT_EQ(Buffer(d.withDtype(DataType::I32)).storageBytes(),
              16u);
}

TEST(TypedBuffer, WrongLaneAccessorPanics)
{
    Buffer f(TensorDecl("t", {2}));
    EXPECT_THROW(f.i8Data(), PanicError);
    EXPECT_THROW(f.intAt(0), PanicError);
    Buffer q(TensorDecl("t", {2}).withDtype(DataType::I8));
    EXPECT_THROW(q.data(), PanicError);
    EXPECT_THROW(q.accumulate(0, 1.0f), PanicError);
}

TEST(TypedBuffer, ConvertingSetRoundsAndSaturates)
{
    Buffer q(TensorDecl("t", {4}).withDtype(DataType::I8));
    q.set(0, 3.6f);
    q.set(1, -3.6f);
    q.set(2, 1000.0f);
    q.set(3, -1000.0f);
    EXPECT_EQ(q.intAt(0), 4);
    EXPECT_EQ(q.intAt(1), -4);
    EXPECT_EQ(q.intAt(2), 127);
    EXPECT_EQ(q.intAt(3), -128);
    EXPECT_EQ(q.at(2), 127.0f); // converting read

    Buffer b(TensorDecl("t", {1}).withDtype(DataType::BF16));
    b.set(0, 3.14159265f);
    EXPECT_EQ(b.at(0), quant::bf16Round(3.14159265f));
}

TEST(TypedBuffer, FillPatternIsDeterministicPerLane)
{
    TensorDecl d("t", {32});
    Buffer a(d.withDtype(DataType::I8));
    Buffer b(d.withDtype(DataType::I8));
    a.fillPattern(9);
    b.fillPattern(9);
    EXPECT_TRUE(a.bitEqual(b));
    b.fillPattern(10);
    EXPECT_FALSE(a.bitEqual(b));

    // Float lanes keep the historical [-1, 1) pattern; bf16 stores
    // the rounded value of the same stream.
    Buffer f(d.withDtype(DataType::F32));
    Buffer bf(d.withDtype(DataType::BF16));
    f.fillPattern(9);
    bf.fillPattern(9);
    for (std::size_t i = 0; i < f.size(); ++i) {
        EXPECT_GE(f.at(i), -1.0f);
        EXPECT_LT(f.at(i), 1.0f);
        EXPECT_EQ(bf.at(i), quant::bf16Round(f.at(i)));
    }

    // Integer lanes draw from their whole ranges eventually; at the
    // very least the pattern is not constant.
    bool varies = false;
    for (std::size_t i = 1; i < a.size(); ++i)
        varies = varies || a.intAt(i) != a.intAt(0);
    EXPECT_TRUE(varies);
}

TEST(TypedBuffer, IntAccumulateWrapsLikeIntDotStep)
{
    Buffer acc(TensorDecl("t", {1}).withDtype(DataType::I32));
    const std::int32_t maxv = std::numeric_limits<std::int32_t>::max();
    acc.intSet(0, maxv);
    acc.intAccumulate(0, 1);
    EXPECT_EQ(acc.intAt(0), std::numeric_limits<std::int32_t>::min());
    EXPECT_EQ(acc.intAt(0), quant::intDotStep(maxv, 1, 1));
}

TEST(TypedBuffer, BitEqualDistinguishesLanes)
{
    TensorDecl d("t", {2});
    Buffer i8(d.withDtype(DataType::I8));
    Buffer u8(d.withDtype(DataType::U8));
    i8.fill(1.0f);
    u8.fill(1.0f);
    EXPECT_FALSE(i8.bitEqual(u8)); // same values, different lanes
    Buffer i8b(d.withDtype(DataType::I8));
    i8b.fill(1.0f);
    EXPECT_TRUE(i8.bitEqual(i8b));
}

} // namespace
} // namespace amos
