/**
 * @file
 * Unit tests for the affine access-plan compiler: stride extraction
 * goldens, non-affine diagnosis, rollback math, split-level
 * selection, and the stride-walk engine's bit-identity with the
 * scalar interpreters.
 */

#include <gtest/gtest.h>

#include "ir/affine.hh"
#include "isa/intrinsics.hh"
#include "mapping/exec_plan.hh"
#include "mapping/execute.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "support/metrics.hh"
#include "tensor/access_walk.hh"
#include "tensor/reference.hh"

namespace amos {
namespace {

TEST(Affine, AnalyzeExtractsCoefficients)
{
    Var i("i"), j("j");
    auto analysis = analyzeAffine(i * 3 + j + 5);
    ASSERT_TRUE(analysis.ok());
    EXPECT_TRUE(analysis.reason.empty());
    EXPECT_EQ(analysis.form->coeffOf(i.node()), 3);
    EXPECT_EQ(analysis.form->coeffOf(j.node()), 1);
    EXPECT_EQ(analysis.form->constant(), 5);
}

TEST(Affine, AnalyzeDiagnosesFloorDiv)
{
    Var i("i");
    auto analysis = analyzeAffine(floorDiv(i, 2));
    ASSERT_FALSE(analysis.ok());
    EXPECT_NE(analysis.reason.find("FloorDiv"), std::string::npos)
        << analysis.reason;
    EXPECT_NE(analysis.reason.find("not affine"), std::string::npos)
        << analysis.reason;
}

TEST(Affine, AnalyzeDiagnosesVariableProduct)
{
    Var i("i"), j("j");
    auto analysis = analyzeAffine(i * j + 1);
    ASSERT_FALSE(analysis.ok());
    EXPECT_NE(analysis.reason.find("product"), std::string::npos)
        << analysis.reason;
}

TEST(Affine, FlatAccessFoldsStrides)
{
    // A GEMM-style access A[i + 2, k + 1] on a [5, 7] tensor:
    // flat = (i + 2) * 7 + (k + 1) = 7 i + k + 15.
    Var i("i"), k("k");
    auto analysis =
        analyzeFlatAccess({i + 2, k + 1}, {7, 1});
    ASSERT_TRUE(analysis.ok());
    EXPECT_EQ(analysis.form->coeffOf(i.node()), 7);
    EXPECT_EQ(analysis.form->coeffOf(k.node()), 1);
    EXPECT_EQ(analysis.form->constant(), 15);
}

TEST(Affine, FlatAccessNamesOffendingDimension)
{
    Var i("i"), k("k");
    auto analysis =
        analyzeFlatAccess({i, floorDiv(k, 2)}, {7, 1});
    ASSERT_FALSE(analysis.ok());
    EXPECT_NE(analysis.reason.find("index dim 1"), std::string::npos)
        << analysis.reason;
}

TEST(Walk, FinalizeComputesRollbacksAndAddressBox)
{
    AccessWalkPlan plan;
    plan.extents = {3, 2, 4};
    WalkOperand op;
    op.base = 5;
    op.stride = {8, -4, 1};
    plan.operands.push_back(op);
    plan.finalize();

    const WalkOperand &f = plan.operands[0];
    EXPECT_EQ(f.rollback, (std::vector<std::int64_t>{16, -4, 3}));
    // min: base + negative spans; max: base + positive spans.
    EXPECT_EQ(f.minAddr, 5 - 4);
    EXPECT_EQ(f.maxAddr, 5 + 16 + 3);
    EXPECT_EQ(plan.totalSteps(), 24);
}

TEST(Walk, CompileReferenceWalkGemmGoldens)
{
    // gemm iterators (i, j, k); A[i,k] on [3,7], B[k,j] on [7,5],
    // out[i,j] on [3,5].
    auto gemm = ops::makeGemm(3, 5, 7);
    std::string reason;
    auto plan = compileReferenceWalk(gemm, &reason);
    ASSERT_TRUE(plan.has_value()) << reason;
    ASSERT_EQ(plan->operands.size(), 3u);
    EXPECT_EQ(plan->extents, (std::vector<std::int64_t>{3, 5, 7}));
    EXPECT_EQ(plan->operands[0].stride,
              (std::vector<std::int64_t>{7, 0, 1})); // A
    EXPECT_EQ(plan->operands[1].stride,
              (std::vector<std::int64_t>{0, 1, 5})); // B
    EXPECT_EQ(plan->operands[2].stride,
              (std::vector<std::int64_t>{5, 1, 0})); // out
}

TEST(Walk, ReferenceWalkVisitsInterpreterAddressOrder)
{
    // The stride walk must produce exactly the address sequence the
    // interpreter derives via per-element expression evaluation, in
    // the same order.
    auto conv = ops::makeConv1d(2, 3, 4, 5, 3);
    auto plan = compileReferenceWalk(conv);
    ASSERT_TRUE(plan.has_value());

    std::vector<std::vector<std::int64_t>> walked;
    runAccessWalk(*plan, [&](const std::int64_t *a) {
        walked.push_back({a[0], a[1], a[2]});
    });

    std::vector<std::vector<std::int64_t>> interpreted;
    std::vector<std::int64_t> extents;
    for (const auto &iv : conv.iters())
        extents.push_back(iv.extent);
    VarBinding binding;
    forEachIndexDelta(extents, [&](const std::vector<std::int64_t>
                                       &idx,
                                   std::size_t dirty) {
        for (std::size_t s = dirty; s < conv.iters().size(); ++s)
            binding[conv.iters()[s].var.node()] = idx[s];
        auto flatOf = [&](const TensorDecl &decl,
                          const std::vector<Expr> &indices) {
            auto strides = decl.strides();
            std::int64_t flat = 0;
            for (std::size_t d = 0; d < indices.size(); ++d)
                flat += strides[d] * evalExpr(indices[d], binding);
            return flat;
        };
        interpreted.push_back(
            {flatOf(conv.inputs()[0].decl, conv.inputs()[0].indices),
             flatOf(conv.inputs()[1].decl, conv.inputs()[1].indices),
             flatOf(conv.output(), conv.outputIndices())});
    });

    EXPECT_EQ(walked, interpreted);
}

TEST(Walk, PickSplitLevelFindsDominantLevel)
{
    // Output of a GEMM over (m=4, n=5, k=3): strides (5, 1, 0).
    // Level 0's step (5) dominates the span of all other levels (4),
    // so distinct m values touch disjoint output addresses.
    AccessWalkPlan plan;
    plan.extents = {4, 5, 3};
    WalkOperand out;
    out.stride = {5, 1, 0};
    plan.operands.push_back(out);
    plan.finalize();
    EXPECT_EQ(pickSplitLevel(plan, 0, 3), 0);
    // Restricting the search below level 0 leaves nothing: n's step
    // of 1 does not dominate, k has stride 0.
    EXPECT_EQ(pickSplitLevel(plan, 0, 0), -1);
}

TEST(Walk, PickSplitLevelReportsUnsplittable)
{
    // out[i + j] style access: both levels step by 1, neither
    // dominates — the sweep must stay serial.
    AccessWalkPlan plan;
    plan.extents = {4, 4};
    WalkOperand out;
    out.stride = {1, 1};
    plan.operands.push_back(out);
    plan.finalize();
    EXPECT_EQ(pickSplitLevel(plan, 0, 2), -1);
}

TEST(Walk, ReferenceCompiledMatchesInterpreterExactly)
{
    for (auto &comp :
         {ops::makeGemm(6, 5, 4), ops::makeConv1d(2, 3, 4, 5, 3),
          ops::makeMean(5, 6)}) {
        auto inputs = makePatternInputs(comp, 11);
        std::vector<const Buffer *> ptrs;
        for (const auto &b : inputs)
            ptrs.push_back(&b);

        ExecOptions interp;
        interp.forceInterpreter = true;
        Buffer a(comp.output()), b(comp.output());
        referenceExecute(comp, ptrs, a, interp);
        referenceExecute(comp, ptrs, b, ExecOptions{});
        EXPECT_EQ(a.maxAbsDiff(b), 0.0f) << comp.name();

        for (int threads : {2, 3, 4}) {
            ExecOptions par;
            par.numThreads = threads;
            Buffer c(comp.output());
            referenceExecute(comp, ptrs, c, par);
            EXPECT_EQ(a.maxAbsDiff(c), 0.0f)
                << comp.name() << " at " << threads << " threads";
        }
    }
}

TEST(Walk, NonAffineAccessFallsBackAndStaysExact)
{
    // The constructor rejects non-affine accesses, so force one via
    // the fuzz hook; the compiled path must refuse it (with the
    // exec.fallback metric) and the interpreter must take over
    // without changing results.
    auto gemm = ops::makeGemm(4, 6, 4);
    auto mutated = gemm.withMutatedInputIndex(
        0, 0, floorDiv(Expr(gemm.iters()[0].var), 2));

    std::string reason;
    EXPECT_FALSE(compileReferenceWalk(mutated, &reason).has_value());
    EXPECT_NE(reason.find("FloorDiv"), std::string::npos) << reason;

    auto inputs = makePatternInputs(mutated, 3);
    std::vector<const Buffer *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(&b);

    auto &fallback =
        MetricsRegistry::global().counter("exec.fallback");
    std::uint64_t before = fallback.value();

    ExecOptions interp;
    interp.forceInterpreter = true;
    Buffer a(mutated.output()), b(mutated.output());
    referenceExecute(mutated, ptrs, a, interp);
    referenceExecute(mutated, ptrs, b, ExecOptions{});
    EXPECT_EQ(a.maxAbsDiff(b), 0.0f);
    EXPECT_EQ(fallback.value(), before + 1);
}

TEST(ExecPlan, CompilesGemmAndRunsBitIdentical)
{
    auto gemm = ops::makeGemm(4, 4, 4);
    auto plans = enumeratePlans(gemm, isa::wmmaTiny(), {});
    ASSERT_EQ(plans.size(), 1u);

    ExecPlan ep(plans[0]);
    ASSERT_TRUE(ep.compiled()) << ep.fallbackReason();
    EXPECT_EQ(ep.directOperands().size(), 3u);
    for (int threads : {1, 2, 4})
        EXPECT_EQ(compiledVsInterpreterError(plans[0], 7, threads),
                  0.0f)
            << threads << " threads";
}

TEST(ExecPlan, MutatedAccessFallsBackWithReason)
{
    auto gemm = ops::makeGemm(4, 4, 4);
    auto plans = enumeratePlans(gemm, isa::wmmaTiny(), {});
    ASSERT_EQ(plans.size(), 1u);
    auto mutated = gemm.withMutatedInputIndex(
        0, 1, floorDiv(Expr(gemm.iters()[2].var), 2));
    MappingPlan plan(mutated, isa::wmmaTiny(),
                     plans[0].mapping());
    ASSERT_TRUE(plan.valid());

    ExecPlan ep(plan);
    EXPECT_FALSE(ep.compiled());
    EXPECT_NE(ep.fallbackReason().find("FloorDiv"),
              std::string::npos)
        << ep.fallbackReason();

    // The executors transparently interpret the plan instead.
    auto &fallback =
        MetricsRegistry::global().counter("exec.fallback");
    std::uint64_t before = fallback.value();
    EXPECT_EQ(compiledVsInterpreterError(plan), 0.0f);
    EXPECT_EQ(fallback.value(), before + 2); // direct + packed
}

} // namespace
} // namespace amos
