/**
 * @file
 * Unit tests for network inventories and end-to-end compilation:
 * op counts against Table 2's structure, compiler dispatch, latency
 * accounting, and the Table 2 / Fig. 7 qualitative orderings.
 */

#include <gtest/gtest.h>

#include "graph/network.hh"
#include "hw/hardware.hh"

namespace amos {
namespace {

NetworkCompileOptions
fastOptions()
{
    NetworkCompileOptions options;
    options.tuning.population = 8;
    options.tuning.generations = 3;
    options.tuning.measureTopK = 3;
    options.tuning.maxMappings = 8;
    return options;
}

TEST(Networks, InventoryTotalsMatchPaperStructure)
{
    // Table 2 totals: ShuffleNet 70, ResNet-50 71, MobileNet 30,
    // MI-LSTM 11. Tensor-op counts track the paper's "Our Mapped"
    // column (50, 54, 28..29, 9).
    auto shuffle = shuffleNet(1);
    EXPECT_EQ(shuffle.totalOps(), 70);
    EXPECT_EQ(shuffle.tensorOps(), 50);

    auto r50 = resnet50(1);
    EXPECT_EQ(r50.totalOps(), 71);
    EXPECT_EQ(r50.tensorOps(), 54);

    auto mobile = mobileNetV1(1);
    EXPECT_EQ(mobile.totalOps(), 30);
    EXPECT_EQ(mobile.tensorOps(), 28);

    auto lstm = miLstm(1);
    EXPECT_EQ(lstm.totalOps(), 11);
    EXPECT_EQ(lstm.tensorOps(), 9);

    auto bert = bertBase(1);
    EXPECT_GT(bert.totalOps(), 150);
    EXPECT_GT(bert.tensorOps(), 80);
}

TEST(Networks, ResNet18UsesTable5Layers)
{
    auto net = resnet18(16);
    int convs = 0;
    for (const auto &op : net.ops)
        if (op.isTensorOp() && op.comp->name() == "conv2d")
            convs += op.count;
    // ResNet-18's twenty convolutions plus the C2 configuration that
    // Table 5 lists (21 instances over 12 distinct shapes).
    EXPECT_EQ(convs, 21);
}

TEST(Networks, BatchScalesComputations)
{
    auto b1 = resnet18(1);
    auto b16 = resnet18(16);
    double flops1 = 0.0, flops16 = 0.0;
    for (const auto &op : b1.ops)
        if (op.isTensorOp())
            flops1 += static_cast<double>(op.comp->flopCount()) *
                      op.count;
    for (const auto &op : b16.ops)
        if (op.isTensorOp())
            flops16 += static_cast<double>(op.comp->flopCount()) *
                       op.count;
    EXPECT_NEAR(flops16 / flops1, 16.0, 0.01);
}

TEST(Networks, MiLstmAtBatchOneIsMatrixVector)
{
    auto net = miLstm(1);
    for (const auto &op : net.ops) {
        if (op.isTensorOp()) {
            EXPECT_EQ(op.comp->name(), "gemv") << op.label;
        }
    }
}

TEST(CompileNetwork, AmosMapsEveryTensorOp)
{
    // The paper's central Table 2 claim: AMOS maps all operators
    // except those inherently unsupported (elementwise).
    auto net = miLstm(1);
    auto result = compileNetwork(net, hw::v100(),
                                 NetworkCompiler::Amos,
                                 fastOptions());
    EXPECT_EQ(result.mappedOps, net.tensorOps());
    EXPECT_EQ(result.totalOps, net.totalOps());
    EXPECT_GT(result.totalMs, 0.0);
}

TEST(CompileNetwork, XlaMapsStrictSubset)
{
    auto net = resnet18(16);
    auto amos_res = compileNetwork(net, hw::v100(),
                                   NetworkCompiler::Amos,
                                   fastOptions());
    auto xla_res = compileNetwork(net, hw::v100(),
                                  NetworkCompiler::Xla,
                                  fastOptions());
    EXPECT_LT(xla_res.mappedOps, amos_res.mappedOps);
    EXPECT_GT(xla_res.mappedOps, 0); // the stride-1 3x3 convs
}

TEST(CompileNetwork, XlaMapsNothingInMiLstm)
{
    // Table 2: XLA maps 0 ops of MI-LSTM (batch-1 linears are
    // matrix-vector products, which miss the GEMM pattern).
    auto net = miLstm(1);
    auto result = compileNetwork(net, hw::v100(),
                                 NetworkCompiler::Xla,
                                 fastOptions());
    EXPECT_EQ(result.mappedOps, 0);
}

TEST(CompileNetwork, TvmSkipsStridedConvs)
{
    auto net = resnet18(16);
    auto result = compileNetwork(net, hw::v100(),
                                 NetworkCompiler::Tvm,
                                 fastOptions());
    // Strided layers C0, C3, C4, C6, C7, C9, C10 (7 instances) stay
    // scalar; stride-1 convs and the classifier tensorize.
    int strided_instances = 7;
    EXPECT_EQ(result.mappedOps,
              net.tensorOps() - strided_instances);
}

TEST(CompileNetwork, LatencySumsCounts)
{
    auto net = miLstm(1);
    auto result = compileNetwork(net, hw::v100(),
                                 NetworkCompiler::PyTorch,
                                 fastOptions());
    double total = 0.0;
    for (const auto &op : result.ops)
        total += op.msPerInstance * op.count;
    EXPECT_NEAR(total, result.totalMs, 1e-9);
    EXPECT_EQ(result.ops.size(), net.ops.size());
}

TEST(CompileNetwork, AmosBeatsLibraryOnDepthwiseHeavyNet)
{
    // Fig. 7: the big ShuffleNet/MobileNet speedups come from
    // mapping depthwise/grouped convolutions that libraries execute
    // on scalar units.
    auto net = mobileNetV1(1);
    auto hw = hw::v100();
    auto amos_res = compileNetwork(net, hw, NetworkCompiler::Amos,
                                   fastOptions());
    auto torch_res = compileNetwork(net, hw, NetworkCompiler::PyTorch,
                                    fastOptions());
    EXPECT_LT(amos_res.totalMs, torch_res.totalMs);
    EXPECT_GT(amos_res.mappedOps, torch_res.mappedOps);
}

TEST(CompileNetwork, CompilerNamesStable)
{
    EXPECT_STREQ(networkCompilerName(NetworkCompiler::Amos), "AMOS");
    EXPECT_STREQ(networkCompilerName(NetworkCompiler::PyTorch),
                 "PyTorch");
    EXPECT_STREQ(networkCompilerName(NetworkCompiler::Xla), "XLA");
}

} // namespace
} // namespace amos
