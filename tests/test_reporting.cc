/**
 * @file
 * Coverage for the human-facing reporting surfaces: toString
 * renderings across modules (computations, hardware, profiles,
 * simulation results, schedules, intervals) and their content
 * guarantees. These strings are how users debug mappings, so their
 * shape is part of the public contract.
 */

#include <gtest/gtest.h>

#include "hw/hardware.hh"
#include "ir/interval.hh"
#include "isa/intrinsics.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "schedule/profile.hh"
#include "sim/simulator.hh"

namespace amos {
namespace {

TEST(Reporting, ComputationShowsLoopsAndStatement)
{
    auto conv = ops::buildRepresentative(ops::OpKind::C2D, 2);
    auto s = conv.toString();
    EXPECT_NE(s.find("for n in [0, 2)"), std::string::npos);
    EXPECT_NE(s.find("(reduce)"), std::string::npos);
    EXPECT_NE(s.find("out[n, k, p, q] += "), std::string::npos);
    EXPECT_NE(s.find("w[k, c, r, s]"), std::string::npos);
}

TEST(Reporting, HardwareSummaryListsIntrinsics)
{
    auto s = hw::v100().toString();
    EXPECT_NE(s.find("V100: 80 cores x 4 sub-cores"),
              std::string::npos);
    EXPECT_NE(s.find("96 KiB/core"), std::string::npos);
    // All three WMMA shapes listed.
    EXPECT_NE(s.find("i1 < 16"), std::string::npos);
    EXPECT_NE(s.find("i1 < 32"), std::string::npos);
    EXPECT_NE(s.find("i2 < 32"), std::string::npos);
}

TEST(Reporting, ProfileStringCarriesGridAndValidity)
{
    auto gemm = ops::makeGemm(64, 64, 64);
    ComputeMapping m;
    m.groups = {{0}, {1}, {2}};
    MappingPlan plan(gemm, isa::wmma(16, 16, 16), m);
    auto hw = hw::v100();
    auto prof = lowerKernel(plan, defaultSchedule(plan), hw);
    auto s = prof.toString();
    EXPECT_NE(s.find("blocks=1"), std::string::npos);
    EXPECT_NE(s.find("serial=64"), std::string::npos);
    EXPECT_EQ(s.find("INVALID"), std::string::npos);
}

TEST(Reporting, SimResultStringCarriesWavesAndPeak)
{
    auto gemm = ops::makeGemm(256, 256, 256);
    ComputeMapping m;
    m.groups = {{0}, {1}, {2}};
    MappingPlan plan(gemm, isa::wmma(16, 16, 16), m);
    auto hw = hw::v100();
    auto sched = defaultSchedule(plan);
    sched.axes[0].blockFactor = 16;
    auto sim = simulateKernel(lowerKernel(plan, sched, hw), hw);
    auto s = sim.toString();
    EXPECT_NE(s.find("cycles="), std::string::npos);
    EXPECT_NE(s.find("waves="), std::string::npos);
    EXPECT_NE(s.find("peak="), std::string::npos);
    EXPECT_NE(s.find("%"), std::string::npos);
}

TEST(Reporting, IntervalToString)
{
    Interval iv{-3, 7};
    EXPECT_EQ(iv.toString(), "[-3, 7]");
    EXPECT_EQ(iv.width(), 11);
    EXPECT_TRUE(iv.contains({0, 7}));
    EXPECT_FALSE(iv.contains({0, 8}));
}

TEST(Reporting, MemoryAbstractionRendersAllScopes)
{
    auto s = isa::wmma(16, 16, 16).memory.toString();
    EXPECT_NE(s.find("reg.Src1 = shared.Src1"), std::string::npos);
    EXPECT_NE(s.find("reg.Src2 = shared.Src2"), std::string::npos);
    EXPECT_NE(s.find("global.Dst = reg.Dst"), std::string::npos);
}

TEST(Reporting, MappingStringsForDegenerateGroups)
{
    // GEMV on wmma: i2 is uncovered, its physical expression is the
    // constant 0 and its memory contribution vanishes.
    auto gemv = ops::makeGemv(32, 32);
    ComputeMapping m;
    m.groups = {{0}, {}, {1}};
    MappingPlan plan(gemv, isa::wmma(16, 16, 16), m);
    ASSERT_TRUE(plan.valid());
    auto cm = plan.computeMappingString();
    EXPECT_NE(cm.find("[i1, i2, r1] <- [(i % 16), 0, (k % 16)]"),
              std::string::npos);
    auto mm = plan.memoryMappingString();
    EXPECT_NE(mm.find("addr_Dst"), std::string::npos);
}

TEST(Reporting, PseudoCodeMarksSerialBudget)
{
    auto conv = ops::buildRepresentative(ops::OpKind::C2D, 1);
    auto hw = hw::v100();
    auto plans =
        enumeratePlans(conv, hw.primaryIntrinsic(),
                       {LegalityPolicy::Addressable, 1});
    ASSERT_EQ(plans.size(), 1u);
    auto sched = expertSchedule(plans[0], hw);
    auto code = renderPseudoCode(plans[0], sched, hw);
    EXPECT_NE(code.find("// grid:"), std::string::npos);
    EXPECT_NE(code.find("serial calls/warp"), std::string::npos);
}

} // namespace
} // namespace amos
