/**
 * @file
 * Unit tests for tensors, buffers, computations, and the reference
 * interpreter.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "tensor/computation.hh"
#include "tensor/reference.hh"
#include "tensor/tensor.hh"

namespace amos {
namespace {

TEST(TensorDecl, ShapeQueries)
{
    TensorDecl t("a", {2, 3, 4}, DataType::F16);
    EXPECT_EQ(t.numElements(), 24);
    EXPECT_EQ(t.numBytes(), 48);
    std::vector<std::int64_t> strides = {12, 4, 1};
    EXPECT_EQ(t.strides(), strides);
    EXPECT_EQ(t.toString(), "a[2, 3, 4]:f16");
}

TEST(TensorDecl, RejectsNonPositiveDims)
{
    EXPECT_THROW(TensorDecl("bad", {2, 0}), FatalError);
}

TEST(DataTypes, ByteWidths)
{
    EXPECT_EQ(dtypeBytes(DataType::F16), 2);
    EXPECT_EQ(dtypeBytes(DataType::F32), 4);
    EXPECT_EQ(dtypeBytes(DataType::I8), 1);
    EXPECT_EQ(dtypeBytes(DataType::I32), 4);
    EXPECT_EQ(dtypeName(DataType::F16), "f16");
}

TEST(Buffer, FlattenAndAccess)
{
    Buffer b(TensorDecl("t", {2, 3}));
    EXPECT_EQ(b.flatten({1, 2}), 5);
    b.set(5, 2.5f);
    EXPECT_FLOAT_EQ(b.at(5), 2.5f);
    b.accumulate(5, 1.5f);
    EXPECT_FLOAT_EQ(b.at(5), 4.0f);
    EXPECT_THROW(b.flatten({2, 0}), PanicError);
    EXPECT_THROW(b.at(6), PanicError);
}

TEST(Buffer, PatternFillIsDeterministicAndBounded)
{
    Buffer a(TensorDecl("t", {64}));
    Buffer b(TensorDecl("t", {64}));
    a.fillPattern(3);
    b.fillPattern(3);
    EXPECT_FLOAT_EQ(a.maxAbsDiff(b), 0.0f);
    b.fillPattern(4);
    EXPECT_GT(a.maxAbsDiff(b), 0.0f);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_LE(a.data()[i], 1.0f);
        EXPECT_GE(a.data()[i], -1.0f);
    }
}

/** Small GEMM built by hand to exercise TensorComputation. */
TensorComputation
tinyGemm(std::int64_t m = 2, std::int64_t n = 3, std::int64_t k = 4)
{
    IterVar i{Var("i"), m, IterKind::Spatial};
    IterVar j{Var("j"), n, IterKind::Spatial};
    IterVar r{Var("k"), k, IterKind::Reduction};
    TensorDecl a("A", {m, k});
    TensorDecl b("B", {k, n});
    TensorDecl out("out", {m, n});
    return TensorComputation("gemm", {i, j, r}, out, {i.var, j.var},
                             {{a, {i.var, r.var}},
                              {b, {r.var, j.var}}});
}

TEST(TensorComputation, CountsAndKinds)
{
    auto gemm = tinyGemm(2, 3, 4);
    EXPECT_EQ(gemm.totalIterations(), 24);
    EXPECT_EQ(gemm.flopCount(), 48);
    EXPECT_EQ(gemm.itersOfKind(IterKind::Spatial).size(), 2u);
    EXPECT_EQ(gemm.itersOfKind(IterKind::Reduction).size(), 1u);
    EXPECT_EQ(gemm.iterExtent(gemm.iters()[2].var.node()), 4);
}

TEST(TensorComputation, RejectsReductionInOutput)
{
    IterVar i{Var("i"), 2, IterKind::Spatial};
    IterVar r{Var("k"), 4, IterKind::Reduction};
    TensorDecl a("A", {2, 4});
    TensorDecl out("out", {4});
    EXPECT_THROW(TensorComputation("bad", {i, r}, out, {r.var},
                                   {{a, {i.var, r.var}},
                                    {a, {i.var, r.var}}}),
                 FatalError);
}

TEST(TensorComputation, RejectsUnusedIterator)
{
    IterVar i{Var("i"), 2, IterKind::Spatial};
    IterVar z{Var("z"), 3, IterKind::Spatial};
    TensorDecl a("A", {2});
    TensorDecl out("out", {2, 3});
    // z is used in the output, i in input and output: both used.
    EXPECT_NO_THROW(TensorComputation(
        "ok", {i, z}, out, {i.var, z.var},
        {{a, {i.var}}, {a, {i.var}}}));
    // An iterator used nowhere must be rejected.
    TensorDecl out1("out", {2});
    EXPECT_THROW(TensorComputation("bad", {i, z}, out1, {i.var},
                                   {{a, {i.var}}, {a, {i.var}}}),
                 FatalError);
}

TEST(TensorComputation, RejectsWrongOperandCount)
{
    IterVar i{Var("i"), 2, IterKind::Spatial};
    TensorDecl a("A", {2});
    TensorDecl out("out", {2});
    EXPECT_THROW(TensorComputation("bad", {i}, out, {i.var},
                                   {{a, {i.var}}},
                                   CombineKind::MultiplyAdd),
                 FatalError);
    EXPECT_NO_THROW(TensorComputation("ok", {i}, out, {i.var},
                                      {{a, {i.var}}},
                                      CombineKind::SumReduce));
}

TEST(TensorComputation, TensorizeBarrierRoundTrip)
{
    auto gemm = tinyGemm();
    const VarNode *i = gemm.iters()[0].var.node();
    EXPECT_FALSE(gemm.isTensorizeBarrier(i));
    gemm.addTensorizeBarrier(i);
    EXPECT_TRUE(gemm.isTensorizeBarrier(i));
    Var foreign("w");
    EXPECT_THROW(gemm.addTensorizeBarrier(foreign.node()),
                 PanicError);
}

TEST(Reference, GemmMatchesManualLoop)
{
    auto gemm = tinyGemm(3, 2, 5);
    auto inputs = makePatternInputs(gemm, 11);
    Buffer out(gemm.output());
    std::vector<const Buffer *> ptrs = {&inputs[0], &inputs[1]};
    referenceExecute(gemm, ptrs, out);

    for (std::int64_t i = 0; i < 3; ++i) {
        for (std::int64_t j = 0; j < 2; ++j) {
            float acc = 0.0f;
            for (std::int64_t k = 0; k < 5; ++k)
                acc += inputs[0].at(i * 5 + k) *
                       inputs[1].at(k * 2 + j);
            EXPECT_NEAR(out.at(i * 2 + j), acc, 1e-5f);
        }
    }
}

TEST(Reference, SumReduceSemantics)
{
    IterVar i{Var("i"), 2, IterKind::Spatial};
    IterVar r{Var("k"), 3, IterKind::Reduction};
    TensorDecl a("A", {2, 3});
    TensorDecl out("out", {2});
    TensorComputation rowsum("rowsum", {i, r}, out, {i.var},
                             {{a, {i.var, r.var}}},
                             CombineKind::SumReduce);
    Buffer in(a);
    for (std::int64_t f = 0; f < 6; ++f)
        in.set(f, static_cast<float>(f));
    Buffer result(out);
    referenceExecute(rowsum, {&in}, result);
    EXPECT_FLOAT_EQ(result.at(0), 0 + 1 + 2);
    EXPECT_FLOAT_EQ(result.at(1), 3 + 4 + 5);
}

TEST(Reference, AccumulatesOntoExistingOutput)
{
    auto gemm = tinyGemm(2, 2, 2);
    auto inputs = makePatternInputs(gemm, 5);
    std::vector<const Buffer *> ptrs = {&inputs[0], &inputs[1]};
    Buffer once(gemm.output());
    referenceExecute(gemm, ptrs, once);
    Buffer twice(gemm.output());
    referenceExecute(gemm, ptrs, twice);
    referenceExecute(gemm, ptrs, twice);
    for (std::int64_t f = 0; f < 4; ++f)
        EXPECT_NEAR(twice.at(f), 2.0f * once.at(f), 1e-5f);
}

TEST(Reference, InputCountMismatchPanics)
{
    auto gemm = tinyGemm();
    Buffer out(gemm.output());
    EXPECT_THROW(referenceExecute(gemm, {}, out), PanicError);
}

} // namespace
} // namespace amos
