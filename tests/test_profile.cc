/**
 * @file
 * Unit tests for kernel-profile lowering: grid structure, footprint
 * and traffic inference, reuse across non-dependent axes, coalescing
 * strides, validity limits, and the pseudo-code renderer.
 */

#include <gtest/gtest.h>

#include "hw/hardware.hh"
#include "isa/intrinsics.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "schedule/profile.hh"

namespace amos {
namespace {

/** GEMM 64x64x64 on 16x16x16 wmma: 4x4x4 tile grid. */
MappingPlan
gemmPlan()
{
    auto gemm = ops::makeGemm(64, 64, 64);
    ComputeMapping m;
    m.groups = {{0}, {1}, {2}};
    return MappingPlan(gemm, isa::wmma(16, 16, 16), m);
}

TEST(Profile, SerialDefaultGridIsOneBlock)
{
    auto plan = gemmPlan();
    auto hw = hw::v100();
    auto prof = lowerKernel(plan, defaultSchedule(plan), hw);
    EXPECT_EQ(prof.numBlocks, 1);
    EXPECT_EQ(prof.warpsPerBlock, 1);
    EXPECT_EQ(prof.serialCallsPerWarp, 4 * 4 * 4);
    EXPECT_EQ(prof.totalCalls, 64);
    EXPECT_DOUBLE_EQ(prof.paddingWaste, 1.0);
    EXPECT_EQ(prof.usefulOps, 64 * 64 * 64);
}

TEST(Profile, BlockAndWarpSplitsMultiply)
{
    auto plan = gemmPlan();
    auto hw = hw::v100();
    auto sched = defaultSchedule(plan);
    // Axes: i1.q (4), i2.q (4), r1.q (4, reduction).
    sched.axes[0].blockFactor = 2;
    sched.axes[0].warpFactor = 2;
    sched.axes[1].blockFactor = 4;
    auto prof = lowerKernel(plan, sched, hw);
    EXPECT_EQ(prof.numBlocks, 8);
    EXPECT_EQ(prof.warpsPerBlock, 2);
    // serial: i1 4/(2*2)=1, i2 4/4=1, r1 4.
    EXPECT_EQ(prof.serialCallsPerWarp, 4);
}

TEST(Profile, ReductionAxisCannotBeParallel)
{
    auto plan = gemmPlan();
    auto sched = defaultSchedule(plan);
    sched.axes[2].blockFactor = 2; // r1.q is the third axis
    EXPECT_THROW(lowerKernel(plan, sched, hw::v100()), PanicError);
}

TEST(Profile, ScheduleShapeMismatchPanics)
{
    auto plan = gemmPlan();
    Schedule sched;
    sched.axes.resize(1);
    EXPECT_THROW(lowerKernel(plan, sched, hw::v100()), PanicError);
}

TEST(Profile, OperandReuseAcrossNonDependentAxes)
{
    auto plan = gemmPlan();
    auto hw = hw::v100();
    auto prof = lowerKernel(plan, defaultSchedule(plan), hw);
    ASSERT_EQ(prof.operands.size(), 3u);
    const auto &a = prof.operands[0]; // Src1[i1,r1]: 4x4 tiles
    const auto &b = prof.operands[1]; // Src2[r1,i2]: 4x4 tiles
    const auto &c = prof.operands[2]; // Dst[i1,i2]: 4x4 tiles
    // One serial warp touches every tile of A and B but its 16
    // accumulator tiles only once each.
    EXPECT_EQ(a.tilesPerWarp, 16);
    EXPECT_EQ(b.tilesPerWarp, 16);
    EXPECT_EQ(c.tilesPerWarp, 16);
    EXPECT_EQ(a.tilesTotal, 16);
    EXPECT_EQ(c.tilesTotal, 16);
    EXPECT_TRUE(c.isOutput);
}

TEST(Profile, TrafficScalesWithBlockTile)
{
    auto plan = gemmPlan();
    auto hw = hw::v100();
    auto whole = lowerKernel(plan, defaultSchedule(plan), hw);
    auto sched = defaultSchedule(plan);
    sched.axes[0].blockFactor = 4; // split i1 across 4 blocks
    auto split = lowerKernel(plan, sched, hw);
    // Each block now loads a quarter of A but all of B.
    EXPECT_LT(split.globalLoadBytesPerBlock,
              whole.globalLoadBytesPerBlock);
    EXPECT_EQ(split.numBlocks, 4);
    // Store traffic per block shrinks by 4.
    EXPECT_EQ(split.globalStoreBytesPerBlock * 4,
              whole.globalStoreBytesPerBlock);
}

TEST(Profile, SharedFootprintTracksStagingAndDepth)
{
    auto plan = gemmPlan();
    auto hw = hw::v100();
    auto sched = defaultSchedule(plan);
    auto prof1 = lowerKernel(plan, sched, hw);
    sched.stageDepth = 2;
    auto prof2 = lowerKernel(plan, sched, hw);
    EXPECT_EQ(prof2.sharedBytesPerBlock,
              2 * prof1.sharedBytesPerBlock);
    EXPECT_GT(prof1.sharedBytesPerBlock, 0);
}

TEST(Profile, RegisterFootprintIncludesAccumulators)
{
    auto plan = gemmPlan();
    auto hw = hw::v100();
    auto sched = defaultSchedule(plan);
    auto prof = lowerKernel(plan, sched, hw);
    // 16 accumulator tiles of 16x16 f16 plus two staged fragments.
    EXPECT_GE(prof.regBytesPerWarp, 16 * 512);
}

TEST(Profile, CapacityViolationFlagsInvalid)
{
    // A giant GEMM staged without splitting blows shared memory.
    auto gemm = ops::makeGemm(4096, 4096, 64);
    ComputeMapping m;
    m.groups = {{0}, {1}, {2}};
    MappingPlan plan(gemm, isa::wmma(16, 16, 16), m);
    auto hw = hw::v100();
    auto prof = lowerKernel(plan, defaultSchedule(plan), hw);
    EXPECT_FALSE(prof.fitsShared || prof.fitsRegs);
    EXPECT_FALSE(prof.valid());
    EXPECT_NE(prof.toString().find("INVALID"), std::string::npos);
}

TEST(Profile, ContiguousRunFollowsSoftwareLayout)
{
    // GEMM tiles: A[i,k] with i -> i1, k -> r1. Within a tile, k is
    // unit stride with extent 64, and i (stride 64) chains onto it:
    // the whole tile is one contiguous run. For B[k,j], j is unit
    // stride (extent 64) and k chains at stride 64.
    auto plan = gemmPlan();
    auto prof = lowerKernel(plan, defaultSchedule(plan), hw::v100());
    EXPECT_EQ(prof.operands[0].contiguousRun, 64 * 64);
    EXPECT_EQ(prof.operands[1].contiguousRun, 64 * 64);
    EXPECT_EQ(prof.operands[2].contiguousRun, 64 * 64);
}

TEST(Profile, ShortRunsDetectedOnTransposedAccess)
{
    // GEMM against a transposed B (B[j,k] accessed as [j,k] but the
    // intrinsic wants Src2[r1,i2]): within the tile, k (r1) has
    // stride 1... build instead a column-major A: A[k,i] so that the
    // i-direction is strided and k contiguous only via extent.
    std::int64_t m = 64, n = 64, kk = 8;
    IterVar i{Var("i"), m, IterKind::Spatial};
    IterVar j{Var("j"), n, IterKind::Spatial};
    IterVar r{Var("k"), kk, IterKind::Reduction};
    TensorDecl a("A", {m, kk}); // row-major: k unit stride, extent 8
    TensorDecl b("B", {kk, n});
    TensorDecl out("out", {m, n});
    TensorComputation gemm("gemm_shallow", {i, j, r}, out,
                           {i.var, j.var},
                           {{a, {i.var, r.var}},
                            {b, {r.var, j.var}}});
    ComputeMapping cm;
    cm.groups = {{0}, {1}, {2}};
    MappingPlan plan(gemm, isa::wmma(16, 16, 16), cm);
    auto prof = lowerKernel(plan, defaultSchedule(plan), hw::v100());
    // A's run: k unit-stride extent 8, then i chains at stride 8:
    // full 512; B's run: j unit stride extent 64, k chains at 64.
    EXPECT_EQ(prof.operands[0].contiguousRun, 8 * 64);
    EXPECT_EQ(prof.operands[1].contiguousRun, 64 * 8);
}

TEST(Profile, GatherMappingHasShortRun)
{
    // C2D mapped with r1 = {r} only: the image tile walks p,q
    // (via i1) and r. q is unit stride (extent 8) but r's stride is
    // the image width (10), which does not chain: run stays 8. The
    // weight tile walks k (stride 9) and r (stride 3): no unit
    // stride at all, run 1.
    ops::ConvParams pr;
    pr.batch = 16;
    pr.in_channels = 32;
    pr.out_channels = 32;
    pr.out_h = 8;
    pr.out_w = 8;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto conv = ops::makeConv2d(pr);
    ComputeMapping gather;
    gather.groups = {{2, 3}, {1}, {5}}; // p,q | k | r
    MappingPlan plan(conv, isa::wmma(16, 16, 16), gather);
    auto prof = lowerKernel(plan, defaultSchedule(plan), hw::v100());
    EXPECT_EQ(prof.operands[0].contiguousRun, 8);
    EXPECT_EQ(prof.operands[1].contiguousRun, 1);
}

TEST(Profile, PaddingWasteFlowsThrough)
{
    auto gemm = ops::makeGemm(20, 16, 16); // 20 pads to 32
    ComputeMapping m;
    m.groups = {{0}, {1}, {2}};
    MappingPlan plan(gemm, isa::wmma(16, 16, 16), m);
    auto prof = lowerKernel(plan, defaultSchedule(plan), hw::v100());
    EXPECT_NEAR(prof.paddingWaste, 32.0 / 20.0, 1e-9);
    EXPECT_EQ(prof.totalCalls, 2);
}

TEST(Profile, PseudoCodeMentionsStructure)
{
    auto plan = gemmPlan();
    auto hw = hw::v100();
    auto sched = defaultSchedule(plan);
    sched.axes[0].blockFactor = 4;
    auto code = renderPseudoCode(plan, sched, hw);
    EXPECT_NE(code.find("wmma_16x16x16"), std::string::npos);
    EXPECT_NE(code.find("bind blockIdx"), std::string::npos);
    EXPECT_NE(code.find("reg.Src1 = shared.Src1"),
              std::string::npos);
    EXPECT_NE(code.find("global.Dst"), std::string::npos);
}

} // namespace
} // namespace amos
