/**
 * @file
 * The declarative-ISA-spec proof suite (isa/spec.hh).
 *
 * Three pillars:
 *
 *  - Equivalence: every hand-registered intrinsic now derives from a
 *    JSON spec; this suite proves each spec-derived twin bit-identical
 *    to the frozen hand-written construction
 *    (tests/hand_built_intrinsics.hh) — structurally, through
 *    byte-identical matching matrices on every enumerated plan,
 *    through the shared golden mapping-count matrix, and through
 *    exact (maxAbsDiff == 0) differential execution across the
 *    interpreter, stride-walk, and JIT engines.
 *
 *  - Round-trip: serializing any registered intrinsic to spec JSON
 *    and re-deriving reproduces an equivalent intrinsic.
 *
 *  - Fuzz: systematic and pseudo-random mutations of the embedded
 *    specs (dropped fields, wrong kinds, out-of-range extents,
 *    dangling names, illegal dtype pairs, corrupted text) always
 *    produce structured diagnostics and never crash.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "golden_counts.hh"
#include "hand_built_intrinsics.hh"
#include "hw/hardware.hh"
#include "hw/spec_target.hh"
#include "isa/intrinsics.hh"
#include "isa/spec.hh"
#include "mapping/execute.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "quant/compare.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace amos {
namespace {

using isa::SpecDiag;

/** A spec-derived intrinsic next to its frozen hand-written twin. */
struct Twin
{
    std::string label;
    Intrinsic spec;
    Intrinsic hand;
};

std::vector<Twin>
registeredTwins()
{
    std::vector<Twin> out;
    out.push_back({"wmmaTiny", isa::wmmaTiny(), handbuilt::wmmaTiny()});
    out.push_back({"wmma16x16x16", isa::wmma(16, 16, 16),
                   handbuilt::wmma(16, 16, 16)});
    out.push_back({"wmma32x8x16", isa::wmma(32, 8, 16),
                   handbuilt::wmma(32, 8, 16)});
    out.push_back({"wmma8x32x16", isa::wmma(8, 32, 16),
                   handbuilt::wmma(8, 32, 16)});
    out.push_back(
        {"avx512Vnni", isa::avx512Vnni(), handbuilt::avx512Vnni()});
    out.push_back({"maliDot", isa::maliDot(), handbuilt::maliDot()});
    out.push_back({"virtualAxpy", isa::virtualAxpy(),
                   handbuilt::virtualAxpy()});
    out.push_back({"virtualGemv", isa::virtualGemv(),
                   handbuilt::virtualGemv()});
    out.push_back({"virtualConv", isa::virtualConv(),
                   handbuilt::virtualConv()});
    return out;
}

/** The dtype-legal conv2d workload for an intrinsic. */
TensorComputation
legalConv(const Intrinsic &intr)
{
    auto conv = ops::makeConv2d(golden::smallConvParams());
    if (intr.compute.dst().dtype == DataType::I32)
        return ops::quantizedVariant(conv);
    return conv;
}

bool
hasCode(const std::vector<SpecDiag> &diags, const std::string &code)
{
    for (const auto &d : diags)
        if (d.code == code)
            return true;
    return false;
}

// --------------------------------------------------------------------
// Equivalence: spec-derived registry == frozen hand constructions.
// --------------------------------------------------------------------

TEST(IsaSpecEquivalence, EveryTwinBitIdentical)
{
    for (const auto &twin : registeredTwins()) {
        SCOPED_TRACE(twin.label);
        std::string why;
        EXPECT_TRUE(isa::intrinsicEquivalent(twin.spec, twin.hand,
                                             &why))
            << why;
    }
}

TEST(IsaSpecEquivalence, WmmaVariantListMatches)
{
    auto spec = isa::wmmaVariants();
    auto hand = handbuilt::wmmaVariants();
    ASSERT_EQ(spec.size(), hand.size());
    for (std::size_t i = 0; i < spec.size(); ++i) {
        std::string why;
        EXPECT_TRUE(isa::intrinsicEquivalent(spec[i], hand[i], &why))
            << spec[i].name() << ": " << why;
    }
}

TEST(IsaSpecEquivalence, MatchingMatricesByteIdentical)
{
    // Plan-for-plan, the matching matrix Y the validator computes
    // must be the same bit pattern for the spec twin and the hand
    // twin — the strongest structural guarantee the mapping layer
    // can ask of the derivation.
    for (const auto &twin : registeredTwins()) {
        SCOPED_TRACE(twin.label);
        auto comp = legalConv(twin.spec);
        auto specPlans = enumeratePlans(comp, twin.spec, {});
        auto handPlans = enumeratePlans(comp, twin.hand, {});
        ASSERT_EQ(specPlans.size(), handPlans.size());
        ASSERT_GT(specPlans.size(), 0u);
        for (std::size_t p = 0; p < specPlans.size(); ++p) {
            EXPECT_TRUE(specPlans[p].matchingMatrix() ==
                        handPlans[p].matchingMatrix())
                << "plan #" << p << ":\n"
                << specPlans[p].matchingMatrix().toString() << "vs\n"
                << handPlans[p].matchingMatrix().toString();
            EXPECT_EQ(specPlans[p].valid(), handPlans[p].valid());
        }
    }
}

TEST(IsaSpecEquivalence, GoldenMappingCountsMatchFixture)
{
    // The shared golden fixture (golden_counts.hh) runs on the
    // spec-derived registry; recompute every row that has a hand
    // twin with the frozen construction and require the identical
    // counts. The amx row has no hand twin by design (spec-only).
    std::map<std::string, Intrinsic> hand;
    hand.emplace("wmmaTiny", handbuilt::wmmaTiny());
    hand.emplace("wmma16", handbuilt::wmma(16, 16, 16));
    hand.emplace("avx512Vnni", handbuilt::avx512Vnni());
    hand.emplace("maliDot", handbuilt::maliDot());
    hand.emplace("virtualGemv", handbuilt::virtualGemv());
    hand.emplace("virtualAxpy", handbuilt::virtualAxpy());
    hand.emplace("virtualConv", handbuilt::virtualConv());

    auto comps = golden::operatorColumns();
    bool sawSpecOnly = false;
    for (const auto &row : golden::intrinsicRows()) {
        auto it = hand.find(row.name);
        if (it == hand.end()) {
            EXPECT_STREQ(row.name, "amx");
            sawSpecOnly = true;
        }
        for (std::size_t c = 0; c < comps.size(); ++c) {
            SCOPED_TRACE(std::string(row.name) + " x " +
                         comps[c].name);
            const auto comp =
                row.int8 ? ops::quantizedVariant(comps[c].comp)
                         : comps[c].comp;
            EXPECT_EQ(golden::countAddressable(comp, row.intr),
                      row.counts[c]);
            if (it != hand.end())
                EXPECT_EQ(
                    golden::countAddressable(comp, it->second),
                    row.counts[c]);
        }
    }
    EXPECT_TRUE(sawSpecOnly);
}

TEST(IsaSpecEquivalence, DifferentialExecutionExactAcrossEngines)
{
    // Execute a plan of every spec-derived intrinsic (including the
    // spec-only amx target) through the stride-walk and JIT engines
    // against the interpreter: the deviation must be exactly zero.
    std::vector<std::pair<std::string, Intrinsic>> intrs;
    for (auto &twin : registeredTwins())
        intrs.emplace_back(twin.label, std::move(twin.spec));
    intrs.emplace_back("amx", hw::byName("amx").primaryIntrinsic());

    for (const auto &[label, intr] : intrs) {
        SCOPED_TRACE(label);
        auto comp = legalConv(intr);
        auto plans = enumeratePlans(comp, intr, {});
        ASSERT_GT(plans.size(), 0u);
        const auto &plan = plans[0];
        ASSERT_TRUE(plan.valid()) << plan.validation().failure;
        for (auto engine : {ExecEngine::Walk, ExecEngine::Jit}) {
            auto res = engineVsInterpreterCompare(
                plan, engine, quant::ToleranceSpec::exactly());
            EXPECT_TRUE(res.pass) << res.summary();
            EXPECT_EQ(res.maxAbsErr, 0.0) << res.summary();
        }
    }
}

// --------------------------------------------------------------------
// Round-trip: serialize -> parse -> derive is the identity.
// --------------------------------------------------------------------

TEST(IsaSpecRoundTrip, SerializeParseDeriveIsIdentity)
{
    std::vector<std::pair<std::string, Intrinsic>> intrs;
    for (auto &twin : registeredTwins())
        intrs.emplace_back(twin.label, std::move(twin.spec));
    intrs.emplace_back("amx", hw::byName("amx").primaryIntrinsic());

    for (const auto &[label, intr] : intrs) {
        SCOPED_TRACE(label);
        Json doc = isa::intrinsicToSpecJson(intr);
        auto parsed = isa::parseIntrinsicSpec(doc);
        ASSERT_TRUE(parsed.ok()) << isa::diagsToString(parsed.diags);
        auto derived = isa::deriveIntrinsic(*parsed.spec);
        ASSERT_TRUE(derived.ok())
            << isa::diagsToString(derived.diags);
        std::string why;
        EXPECT_TRUE(isa::intrinsicEquivalent(*derived.intrinsic,
                                             intr, &why))
            << why;
    }
}

TEST(IsaSpecRoundTrip, SurvivesTextSerialization)
{
    // dump() -> parse text path (what a user-written file goes
    // through) must round-trip as well.
    Json doc = isa::intrinsicToSpecJson(isa::wmmaTiny());
    auto parsed = isa::parseIntrinsicSpecText(doc.dump());
    ASSERT_TRUE(parsed.ok()) << isa::diagsToString(parsed.diags);
    auto derived = isa::deriveIntrinsic(*parsed.spec);
    ASSERT_TRUE(derived.ok());
    std::string why;
    EXPECT_TRUE(isa::intrinsicEquivalent(*derived.intrinsic,
                                         isa::wmmaTiny(), &why))
        << why;
}

// --------------------------------------------------------------------
// Embedded registry and spec-only targets.
// --------------------------------------------------------------------

TEST(IsaSpecEmbedded, AllEmbeddedSpecsParseAndDerive)
{
    const auto &names = isa::embeddedSpecNames();
    ASSERT_GE(names.size(), 7u);
    for (const auto &name : names) {
        SCOPED_TRACE(name);
        const char *text = isa::embeddedSpecText(name);
        ASSERT_NE(text, nullptr);
        auto parsed = isa::parseIntrinsicSpecText(text);
        ASSERT_TRUE(parsed.ok()) << isa::diagsToString(parsed.diags);
        EXPECT_EQ(parsed.spec->specName, name);
        auto variants = isa::deriveVariants(*parsed.spec);
        ASSERT_TRUE(variants.ok())
            << isa::diagsToString(variants.diags);
        EXPECT_GT(variants.intrinsics.size(), 0u);
    }
    EXPECT_EQ(isa::embeddedSpecText("no-such-spec"), nullptr);
}

TEST(IsaSpecEmbedded, DeriveRejectsBadBindings)
{
    const auto &spec = isa::embeddedSpec("wmma");
    auto unknown = isa::deriveIntrinsic(spec, {{"zz", 4}});
    EXPECT_FALSE(unknown.ok());
    EXPECT_TRUE(hasCode(unknown.diags, "dangling-param"))
        << isa::diagsToString(unknown.diags);
    auto range = isa::deriveIntrinsic(spec, {{"m", 100000}});
    EXPECT_FALSE(range.ok());
    EXPECT_TRUE(hasCode(range.diags, "param-out-of-range"))
        << isa::diagsToString(range.diags);
}

TEST(IsaSpecEmbedded, AmxTargetLoadsThroughByName)
{
    // The spec-only target: no C++ registration anywhere, named
    // purely through the embedded JSON spec.
    const auto &names = hw::knownNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "amx"),
              names.end());

    HardwareSpec amx = hw::byName("amx");
    EXPECT_EQ(amx.name, "AMX");
    EXPECT_EQ(amx.numCores, 32);
    const auto &intr = amx.primaryIntrinsic();
    EXPECT_EQ(intr.name(), "amx_tile_16x16x64");
    ASSERT_EQ(intr.compute.numIters(), 3u);
    EXPECT_EQ(intr.compute.iters()[2].extent, 64);
    EXPECT_TRUE(intr.compute.iters()[2].reduction);
    EXPECT_EQ(intr.compute.srcs()[0].dtype, DataType::U8);
    EXPECT_EQ(intr.compute.srcs()[1].dtype, DataType::I8);
    EXPECT_EQ(intr.compute.dst().dtype, DataType::I32);
    EXPECT_GT(amx.peakOpsPerCycle(), 0.0);
}

TEST(IsaSpecEmbedded, SpecFileTargetLoads)
{
    // "spec:<path>" — onboarding a target from a user file.
    std::string path =
        testing::TempDir() + "/amos_isa_spec_amx.json";
    {
        std::ofstream out(path);
        out << isa::embeddedSpecText("amx");
    }
    HardwareSpec viaFile = hw::byName("spec:" + path);
    EXPECT_EQ(viaFile.name, "AMX");
    std::string why;
    EXPECT_TRUE(isa::intrinsicEquivalent(
        viaFile.primaryIntrinsic(),
        hw::byName("amx").primaryIntrinsic(), &why))
        << why;

    auto missing = hw::targetFromSpecFile("/no/such/file.json");
    EXPECT_FALSE(missing.ok());
    EXPECT_TRUE(hasCode(missing.diags, "unreadable-file"));

    // Intrinsic-only specs (no "hardware" section) are not targets.
    auto intrOnly =
        hw::targetFromSpecText(isa::embeddedSpecText("wmma"));
    EXPECT_FALSE(intrOnly.ok());
    EXPECT_TRUE(hasCode(intrOnly.diags, "missing-field"));

    EXPECT_THROW(hw::byName("spec:/no/such/file.json"), FatalError);
    EXPECT_THROW(hw::byName("no-such-target"), FatalError);
}

// --------------------------------------------------------------------
// Fuzz: every malformed-spec failure mode is a structured
// diagnostic, never a crash.
// --------------------------------------------------------------------

/** Copy of `obj` without `key`. */
Json
withoutKey(const Json &obj, const std::string &key)
{
    Json out = Json::object();
    for (const auto &[k, v] : obj.entries())
        if (k != key)
            out.set(k, v);
    return out;
}

/** Copy of `obj` with `key` set to `v`. */
Json
withKey(Json obj, const std::string &key, Json v)
{
    obj.set(key, std::move(v));
    return obj;
}

/** Copy of array `arr` with element `idx` replaced by `v`. */
Json
withElem(const Json &arr, std::size_t idx, Json v)
{
    Json out = Json::array();
    for (std::size_t i = 0; i < arr.size(); ++i)
        out.push(i == idx ? v : arr.at(i));
    return out;
}

/** Copy of array `arr` without element `idx`. */
Json
withoutElem(const Json &arr, std::size_t idx)
{
    Json out = Json::array();
    for (std::size_t i = 0; i < arr.size(); ++i)
        if (i != idx)
            out.push(arr.at(i));
    return out;
}

Json
embeddedDoc(const std::string &name)
{
    return Json::parse(isa::embeddedSpecText(name));
}

/** Every key path in the document (array indices as decimals). */
void
collectPaths(const Json &node, std::vector<std::string> &cur,
             std::vector<std::vector<std::string>> &out)
{
    if (node.kind() == Json::Kind::Object) {
        for (const auto &[key, value] : node.entries()) {
            cur.push_back(key);
            out.push_back(cur);
            collectPaths(value, cur, out);
            cur.pop_back();
        }
    } else if (node.kind() == Json::Kind::Array) {
        for (std::size_t i = 0; i < node.size(); ++i) {
            cur.push_back(std::to_string(i));
            out.push_back(cur);
            collectPaths(node.at(i), cur, out);
            cur.pop_back();
        }
    }
}

/** Rebuild `node` with the subtree at `path` dropped (or replaced). */
Json
rebuild(const Json &node, const std::vector<std::string> &path,
        std::size_t depth, const Json *replacement)
{
    const std::string &step = path[depth];
    bool last = depth + 1 == path.size();
    if (node.kind() == Json::Kind::Array) {
        auto idx = static_cast<std::size_t>(std::stoul(step));
        if (last)
            return replacement != nullptr
                       ? withElem(node, idx, *replacement)
                       : withoutElem(node, idx);
        return withElem(node, idx,
                        rebuild(node.at(idx), path, depth + 1,
                                replacement));
    }
    if (last)
        return replacement != nullptr
                   ? withKey(node, step, *replacement)
                   : withoutKey(node, step);
    return withKey(node, step,
                   rebuild(node.get(step), path, depth + 1,
                           replacement));
}

/**
 * The fuzz invariant: parsing (and, when parsing succeeds, deriving)
 * must never throw, and failure is always a structured diagnostic
 * with a non-empty code and message.
 */
void
expectStructuredOutcome(const Json &doc, const std::string &trace)
{
    SCOPED_TRACE(trace);
    isa::SpecParseResult parsed;
    ASSERT_NO_THROW(parsed = isa::parseIntrinsicSpec(doc));
    if (parsed.ok()) {
        isa::SpecVariantsResult variants;
        ASSERT_NO_THROW(variants =
                            isa::deriveVariants(*parsed.spec));
        if (!variants.ok())
            EXPECT_FALSE(variants.diags.empty());
    } else {
        EXPECT_FALSE(parsed.diags.empty());
        for (const auto &d : parsed.diags) {
            EXPECT_FALSE(d.code.empty());
            EXPECT_FALSE(d.message.empty());
            EXPECT_NE(d.toString().find(d.code), std::string::npos);
        }
    }
    // The hardware-target loader shares the contract.
    hw::TargetLoadResult target;
    ASSERT_NO_THROW(target = hw::targetFromSpecJson(doc));
    if (!target.ok())
        EXPECT_FALSE(target.diags.empty());
}

TEST(IsaSpecFuzz, TargetedMutationsProduceStableCodes)
{
    struct Case
    {
        const char *label;
        const char *base;          ///< embedded spec to mutate
        std::function<Json(const Json &)> mutate;
        const char *expectCode;
    };
    auto intr = [](const Json &doc, const std::string &key,
                   Json v) {
        return withKey(doc, "intrinsic",
                       withKey(doc.get("intrinsic"), key,
                               std::move(v)));
    };
    std::vector<Case> cases = {
        {"drop spec name", "wmma",
         [](const Json &d) { return withoutKey(d, "name"); },
         "missing-field"},
        {"drop intrinsic", "wmma",
         [](const Json &d) { return withoutKey(d, "intrinsic"); },
         "missing-field"},
        {"drop iters", "wmma",
         [&](const Json &d) {
             return withKey(d, "intrinsic",
                            withoutKey(d.get("intrinsic"), "iters"));
         },
         "missing-field"},
        {"unsupported schema", "wmma",
         [](const Json &d) {
             return withKey(d, "schema", Json("amos-isa-spec-v9"));
         },
         "bad-schema"},
        {"intrinsic name wrong kind", "wmma",
         [&](const Json &d) { return intr(d, "name", Json(3)); },
         "bad-type"},
        {"empty iteration list", "wmma",
         [&](const Json &d) {
             return intr(d, "iters", Json::array());
         },
         "no-iters"},
        {"zero extent", "mali_dot",
         [&](const Json &d) {
             const Json &iters = d.get("intrinsic").get("iters");
             return intr(d, "iters",
                         withElem(iters, 0,
                                  withKey(iters.at(0), "extent",
                                          Json(0))));
         },
         "bad-extent"},
        {"extent names unknown parameter", "wmma",
         [&](const Json &d) {
             const Json &iters = d.get("intrinsic").get("iters");
             return intr(d, "iters",
                         withElem(iters, 0,
                                  withKey(iters.at(0), "extent",
                                          Json("zz"))));
         },
         "dangling-param"},
        {"bad iteration kind", "wmma",
         [&](const Json &d) {
             const Json &iters = d.get("intrinsic").get("iters");
             return intr(d, "iters",
                         withElem(iters, 0,
                                  withKey(iters.at(0), "kind",
                                          Json("diagonal"))));
         },
         "bad-kind"},
        {"dangling operand index", "wmma",
         [&](const Json &d) {
             const Json &srcs = d.get("intrinsic").get("srcs");
             Json indices = Json::array();
             indices.push(Json("qq"));
             return intr(d, "srcs",
                         withElem(srcs, 0,
                                  withKey(srcs.at(0), "indices",
                                          std::move(indices))));
         },
         "dangling-index"},
        {"unknown dtype", "wmma",
         [&](const Json &d) {
             const Json &srcs = d.get("intrinsic").get("srcs");
             return intr(d, "srcs",
                         withElem(srcs, 0,
                                  withKey(srcs.at(0), "dtype",
                                          Json("f64"))));
         },
         "bad-dtype"},
        {"unknown combine", "wmma",
         [&](const Json &d) {
             return intr(d, "combine", Json("divide"));
         },
         "bad-combine"},
        {"unknown memory scope", "wmma",
         [&](const Json &d) {
             const Json &mem = d.get("intrinsic").get("memory");
             return intr(d, "memory",
                         withElem(mem, 0,
                                  withKey(mem.at(0), "from",
                                          Json("l3"))));
         },
         "bad-scope"},
        {"mixed source width classes", "vnni",
         [&](const Json &d) {
             const Json &srcs = d.get("intrinsic").get("srcs");
             return intr(d, "srcs",
                         withElem(srcs, 0,
                                  withKey(srcs.at(0), "dtype",
                                          Json("f16"))));
         },
         "illegal-dtype-pair"},
        {"int8 sources into f16 accumulator", "vnni",
         [&](const Json &d) {
             return intr(d, "dst",
                         withKey(d.get("intrinsic").get("dst"),
                                 "dtype", Json("f16")));
         },
         "illegal-dtype-pair"},
        {"float sources into i32 accumulator", "wmma",
         [&](const Json &d) {
             return intr(d, "dst",
                         withKey(d.get("intrinsic").get("dst"),
                                 "dtype", Json("i32")));
         },
         "illegal-dtype-pair"},
        {"staging names unknown operand", "wmma",
         [&](const Json &d) {
             const Json &mem = d.get("intrinsic").get("memory");
             return intr(d, "memory",
                         withElem(mem, 0,
                                  withKey(mem.at(0), "operand",
                                          Json("Nope"))));
         },
         "unknown-operand"},
        {"operand staged twice", "wmma",
         [&](const Json &d) {
             Json mem = d.get("intrinsic").get("memory");
             mem.push(mem.at(0));
             return intr(d, "memory", std::move(mem));
         },
         "duplicate-staging"},
        {"operand never staged", "wmma",
         [&](const Json &d) {
             const Json &mem = d.get("intrinsic").get("memory");
             return intr(d, "memory", withoutElem(mem, 0));
         },
         "missing-staging"},
        {"negative latency", "wmma",
         [&](const Json &d) {
             return intr(d, "timing",
                         withKey(d.get("intrinsic").get("timing"),
                                 "latency_cycles", Json(-1.0)));
         },
         "bad-timing"},
        {"default outside range", "wmma",
         [&](const Json &d) {
             const Json &params = d.get("intrinsic").get("params");
             return intr(d, "params",
                         withElem(params, 0,
                                  withKey(params.at(0), "default",
                                          Json(0))));
         },
         "param-out-of-range"},
        {"inverted range", "wmma",
         [&](const Json &d) {
             const Json &params = d.get("intrinsic").get("params");
             Json range = Json::array();
             range.push(Json(5));
             range.push(Json(2));
             return intr(d, "params",
                         withElem(params, 0,
                                  withKey(params.at(0), "range",
                                          std::move(range))));
         },
         "bad-range"},
        {"variant binds unknown parameter", "wmma",
         [](const Json &d) {
             Json variants = d.get("variants");
             Json binding = Json::object();
             binding.set("zz", Json(3));
             variants.push(std::move(binding));
             return withKey(d, "variants", std::move(variants));
         },
         "dangling-param"},
        {"variant out of range", "wmma",
         [](const Json &d) {
             Json binding = Json::object();
             binding.set("m", Json(512));
             Json variants = d.get("variants");
             variants.push(std::move(binding));
             return withKey(d, "variants", std::move(variants));
         },
         "param-out-of-range"},
        {"duplicate iteration name", "wmma",
         [&](const Json &d) {
             const Json &iters = d.get("intrinsic").get("iters");
             return intr(d, "iters",
                         withElem(iters, 1,
                                  withKey(iters.at(1), "name",
                                          Json("i1"))));
         },
         "duplicate-name"},
        {"spatial iteration missing from dst", "wmma",
         [&](const Json &d) {
             const Json &iters = d.get("intrinsic").get("iters");
             return intr(d, "iters",
                         withElem(iters, 2,
                                  withKey(iters.at(2), "kind",
                                          Json("spatial"))));
         },
         "reduction-mismatch"},
        {"multiply-add with one source", "wmma",
         [&](const Json &d) {
             const Json &srcs = d.get("intrinsic").get("srcs");
             return intr(d, "srcs", withoutElem(srcs, 1));
         },
         "operand-count"},
    };

    for (const auto &c : cases) {
        SCOPED_TRACE(c.label);
        Json mutated = c.mutate(embeddedDoc(c.base));
        auto parsed = isa::parseIntrinsicSpec(mutated);
        EXPECT_FALSE(parsed.ok());
        EXPECT_TRUE(hasCode(parsed.diags, c.expectCode))
            << "expected code '" << c.expectCode << "', got:\n"
            << isa::diagsToString(parsed.diags);
        expectStructuredOutcome(mutated, c.label);
    }
}

TEST(IsaSpecFuzz, NonObjectDocumentsAreDiagnosed)
{
    auto arr = isa::parseIntrinsicSpec(Json::array());
    EXPECT_FALSE(arr.ok());
    EXPECT_TRUE(hasCode(arr.diags, "bad-type"));

    auto text = isa::parseIntrinsicSpecText("{ not json");
    EXPECT_FALSE(text.ok());
    EXPECT_TRUE(hasCode(text.diags, "bad-json"));
}

TEST(IsaSpecFuzz, DropEveryKeyNeverCrashes)
{
    for (const auto &name : isa::embeddedSpecNames()) {
        Json doc = embeddedDoc(name);
        std::vector<std::vector<std::string>> paths;
        std::vector<std::string> cur;
        collectPaths(doc, cur, paths);
        for (const auto &path : paths) {
            Json mutated = rebuild(doc, path, 0, nullptr);
            std::string trace = name + ": drop";
            for (const auto &step : path)
                trace += "/" + step;
            expectStructuredOutcome(mutated, trace);
        }
    }
}

TEST(IsaSpecFuzz, WrongKindEveryNodeNeverCrashes)
{
    const Json replacements[] = {Json(true), Json(-7),
                                 Json("surprise"), Json::array(),
                                 Json::object(), Json()};
    for (const auto &name : isa::embeddedSpecNames()) {
        Json doc = embeddedDoc(name);
        std::vector<std::vector<std::string>> paths;
        std::vector<std::string> cur;
        collectPaths(doc, cur, paths);
        std::size_t n = 0;
        for (const auto &path : paths) {
            // Cycle through the replacement kinds; combined with the
            // full path sweep this covers every field x a wrong kind.
            const Json &r =
                replacements[n++ % std::size(replacements)];
            Json mutated = rebuild(doc, path, 0, &r);
            std::string trace = name + ": replace";
            for (const auto &step : path)
                trace += "/" + step;
            expectStructuredOutcome(mutated, trace);
        }
    }
}

TEST(IsaSpecFuzz, CorruptedTextNeverCrashes)
{
    // Deterministic text-level corruption: truncations at every
    // stride-16 offset plus LCG-driven single-character flips.
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    auto next = [&state] {
        state = state * 6364136223846793005ull +
                1442695040888963407ull;
        return state >> 33;
    };
    for (const auto &name : isa::embeddedSpecNames()) {
        std::string text = isa::embeddedSpecText(name);
        for (std::size_t cut = 0; cut < text.size(); cut += 16) {
            auto res = isa::parseIntrinsicSpecText(
                text.substr(0, cut));
            if (!res.ok())
                EXPECT_FALSE(res.diags.empty());
        }
        for (int i = 0; i < 256; ++i) {
            std::string mutated = text;
            std::size_t pos = next() % mutated.size();
            mutated[pos] = static_cast<char>(next() % 128);
            auto res = isa::parseIntrinsicSpecText(mutated);
            if (!res.ok())
                EXPECT_FALSE(res.diags.empty());
            auto target = hw::targetFromSpecText(mutated);
            if (!target.ok())
                EXPECT_FALSE(target.diags.empty());
        }
    }
}

TEST(IsaSpecFuzz, RandomStructuralMutationsNeverCrash)
{
    std::uint64_t state = 0xD1B54A32D192ED03ull;
    auto next = [&state] {
        state = state * 6364136223846793005ull +
                1442695040888963407ull;
        return state >> 33;
    };
    const Json replacements[] = {Json(true), Json(-1), Json(0),
                                 Json(""), Json::array(), Json()};
    for (const auto &name : isa::embeddedSpecNames()) {
        Json doc = embeddedDoc(name);
        std::vector<std::vector<std::string>> paths;
        std::vector<std::string> cur;
        collectPaths(doc, cur, paths);
        for (int round = 0; round < 64; ++round) {
            // Stack two random mutations to reach states a single
            // edit cannot produce. Paths are re-collected after each
            // edit: a replaced or dropped subtree invalidates every
            // path that descended through it.
            Json mutated = doc;
            for (int edit = 0; edit < 2; ++edit) {
                if (paths.empty())
                    break;
                const auto path = paths[next() % paths.size()];
                if (next() % 3 == 0) {
                    mutated = rebuild(mutated, path, 0, nullptr);
                } else {
                    const Json &r =
                        replacements[next() %
                                     std::size(replacements)];
                    mutated = rebuild(mutated, path, 0, &r);
                }
                paths.clear();
                cur.clear();
                collectPaths(mutated, cur, paths);
            }
            expectStructuredOutcome(
                mutated, name + ": round " + std::to_string(round));
            paths.clear();
            cur.clear();
            collectPaths(doc, cur, paths);
        }
    }
}

TEST(IsaSpecDiag, DiagnosticsCarryCodePathMessage)
{
    // The structured triple is the API: stable code, JSON-pointer
    // path to the offending node, human message.
    Json doc = embeddedDoc("wmma");
    const Json &srcs = doc.get("intrinsic").get("srcs");
    Json indices = Json::array();
    indices.push(Json("qq"));
    Json mutated = withKey(
        doc, "intrinsic",
        withKey(doc.get("intrinsic"), "srcs",
                withElem(srcs, 0,
                         withKey(srcs.at(0), "indices",
                                 std::move(indices)))));
    auto parsed = isa::parseIntrinsicSpec(mutated);
    ASSERT_FALSE(parsed.ok());
    bool found = false;
    for (const auto &d : parsed.diags) {
        if (d.code != "dangling-index")
            continue;
        found = true;
        EXPECT_EQ(d.path, "/intrinsic/srcs/0/indices/0");
        EXPECT_NE(d.message.find("qq"), std::string::npos);
        EXPECT_NE(d.toString().find("dangling-index"),
                  std::string::npos);
    }
    EXPECT_TRUE(found) << isa::diagsToString(parsed.diags);
}

} // namespace
} // namespace amos
