/**
 * @file
 * Coverage for facade and registry paths not exercised elsewhere:
 * intrinsic variants, the scalar-code escape hatch, pseudo-code on
 * non-WMMA targets, intrinsic-name reporting, and report wording.
 */

#include <gtest/gtest.h>

#include "amos/amos.hh"
#include "isa/intrinsics.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"

namespace amos {
namespace {

TEST(Variants, ThreeWmmaShapesWithEqualThroughput)
{
    auto variants = isa::wmmaVariants();
    ASSERT_EQ(variants.size(), 3u);
    std::int64_t ops0 = variants[0].compute.scalarOps();
    for (const auto &intr : variants) {
        EXPECT_EQ(intr.compute.scalarOps(), ops0);
        EXPECT_EQ(intr.compute.numIters(), 3u);
    }
    EXPECT_EQ(variants[0].compute.problemSize(),
              (std::vector<std::int64_t>{16, 16, 16}));
    EXPECT_EQ(variants[1].compute.problemSize(),
              (std::vector<std::int64_t>{32, 8, 16}));
    EXPECT_EQ(variants[2].compute.problemSize(),
              (std::vector<std::int64_t>{8, 32, 16}));
}

TEST(Variants, GpuPresetsExposeAllShapes)
{
    EXPECT_EQ(hw::v100().intrinsics.size(), 3u);
    EXPECT_EQ(hw::a100().intrinsics.size(), 3u);
    // A100's third-generation units run every shape at the faster
    // rate.
    for (const auto &intr : hw::a100().intrinsics)
        EXPECT_DOUBLE_EQ(intr.latencyCycles, 4.0);
}

TEST(Variants, TunerReportsWinningShape)
{
    TuneOptions options;
    options.generations = 4;
    auto res = tune(ops::makeGemm(64, 256, 64), hw::a100(), options);
    ASSERT_TRUE(res.tensorizable);
    EXPECT_EQ(res.intrinsicName.rfind("wmma_", 0), 0u);
}

TEST(Facade, ScalarEscapeHatchOnDegenerateMapping)
{
    // T2D at batch 1: the only mappable spatial iterator is the
    // batch (extent 1), so tensorized code wastes almost the whole
    // problem size and AMOS ships its scalar code instead — while
    // still reporting the operator as mappable.
    ops::ConvParams pr;
    pr.batch = 1;
    pr.in_channels = 128;
    pr.out_channels = 64;
    pr.out_h = 28;
    pr.out_w = 28;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    pr.stride = 2;
    auto t2d = ops::makeTransposedConv2d(pr);
    TuneOptions options;
    options.generations = 4;
    Compiler compiler(hw::v100(), options);
    auto result = compiler.compile(t2d);
    EXPECT_TRUE(result.tensorized);
    EXPECT_TRUE(result.usedScalarCode);
    EXPECT_LE(result.cycles, result.tuning.bestCycles);
}

TEST(Facade, BigGemmNeverTakesTheScalarHatch)
{
    TuneOptions options;
    options.generations = 6;
    Compiler compiler(hw::v100(), options);
    auto result = compiler.compile(ops::makeGemm(512, 512, 512));
    EXPECT_TRUE(result.tensorized);
    EXPECT_FALSE(result.usedScalarCode);
}

TEST(Facade, PseudoCodeOnNonWmmaTargets)
{
    // Both non-WMMA presets expose int8 intrinsics, so the pseudo
    // code check runs on the quantized conv.
    auto conv = ops::quantizedVariant(
        ops::buildRepresentative(ops::OpKind::C2D, 1));
    for (const auto &spec : {hw::xeonSilver4110(), hw::maliG76()}) {
        SCOPED_TRACE(spec.name);
        TuneOptions options;
        options.generations = 3;
        Compiler compiler(spec, options);
        auto result = compiler.compile(conv);
        ASSERT_TRUE(result.tensorized);
        EXPECT_NE(result.pseudoCode.find(
                      spec.primaryIntrinsic().name()),
                  std::string::npos);
        EXPECT_NE(result.pseudoCode.find("for "),
                  std::string::npos);
    }
}

TEST(Facade, ReportWordsMatchOutcome)
{
    TuneOptions options;
    options.generations = 3;
    Compiler compiler(hw::v100(), options);
    auto good = compiler.compile(ops::makeGemm(128, 128, 128));
    EXPECT_NE(good.report().find("tensorized"), std::string::npos);
    EXPECT_EQ(good.report().find("scalar fallback"),
              std::string::npos);

    IterVar i{Var("i"), 128, IterKind::Spatial};
    TensorDecl a("A", {128});
    TensorDecl out("out", {128});
    TensorComputation sum("sum", {i}, out, {i.var}, {{a, {i.var}}},
                          CombineKind::SumReduce);
    auto bad = compiler.compile(sum);
    EXPECT_NE(bad.report().find("scalar fallback"),
              std::string::npos);
}

TEST(Facade, MappingCountAdditiveAcrossShapes)
{
    // countMappings uses the primary intrinsic; tune() explores all
    // shapes. The pool sizes relate 1:3 for shape-symmetric
    // operators.
    auto conv = ops::buildRepresentative(ops::OpKind::C2D, 1);
    Compiler compiler(hw::v100(), TuneOptions{});
    auto per_shape = compiler.countMappings(conv);
    auto res = tune(conv, hw::v100(), TuneOptions{});
    EXPECT_EQ(res.numMappings, 3 * per_shape);
}

TEST(Facade, HardwareWithoutIntrinsicsIsAUserError)
{
    HardwareSpec empty;
    empty.name = "empty";
    EXPECT_THROW(empty.primaryIntrinsic(), FatalError);
}

} // namespace
} // namespace amos
