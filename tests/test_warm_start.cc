/**
 * @file
 * Tests for the warm-start layer: the shape/op feature embedding
 * (metric properties, key round-trips, brute-force NN equivalence),
 * seed translation and schedule clamping, and the tuner-level
 * guarantees — warm-started searches stay bit-identical across
 * thread counts and the patience early-stop bounds the generation
 * count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "amos/amos.hh"
#include "explore/tuner.hh"
#include "explore/warm_start.hh"
#include "hw/hardware.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "schedule/schedule.hh"
#include "support/rng.hh"

namespace amos {
namespace {

ShapeFeature
gemmFeature(std::int64_t m, std::int64_t n, std::int64_t k)
{
    return shapeFeatureOf(ops::makeGemm(m, n, k), hw::v100());
}

TEST(WarmStartMode, NamesRoundTrip)
{
    for (auto mode :
         {WarmStartMode::Off, WarmStartMode::Neighbors,
          WarmStartMode::Model, WarmStartMode::Both}) {
        auto parsed = warmStartModeFromName(warmStartModeName(mode));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, mode);
    }
    EXPECT_FALSE(warmStartModeFromName("").has_value());
    EXPECT_FALSE(warmStartModeFromName("warm").has_value());
    EXPECT_FALSE(warmStartModeFromName("Neighbors").has_value());
}

TEST(ShapeFeature, SelfDistanceIsZero)
{
    auto f = gemmFeature(128, 64, 32);
    EXPECT_TRUE(f.valid());
    EXPECT_DOUBLE_EQ(shapeDistance(f, f), 0.0);
}

TEST(ShapeFeature, DistanceIsSymmetric)
{
    Rng rng(41);
    for (int i = 0; i < 64; ++i) {
        auto a = gemmFeature(rng.uniformInt(1, 512),
                             rng.uniformInt(1, 512),
                             rng.uniformInt(1, 512));
        auto b = gemmFeature(rng.uniformInt(1, 512),
                             rng.uniformInt(1, 512),
                             rng.uniformInt(1, 512));
        EXPECT_DOUBLE_EQ(shapeDistance(a, b), shapeDistance(b, a));
    }
}

TEST(ShapeFeature, DistanceGrowsWithScale)
{
    // Scaling one dimension further away must increase the
    // distance monotonically (log-space embedding).
    auto base = gemmFeature(64, 64, 64);
    double prev = 0.0;
    for (std::int64_t m : {64, 128, 256, 512, 1024}) {
        double d = shapeDistance(base, gemmFeature(m, 64, 64));
        EXPECT_GE(d, prev);
        if (m > 64)
            EXPECT_GT(d, prev);
        prev = d;
    }
}

TEST(ShapeFeature, CategoricalMismatchIsInfinite)
{
    auto hw = hw::v100();
    auto gemm = shapeFeatureOf(ops::makeGemm(64, 64, 64), hw);
    ops::ConvParams pr;
    pr.batch = 4;
    pr.in_channels = 16;
    pr.out_channels = 16;
    pr.out_h = 7;
    pr.out_w = 7;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto conv = shapeFeatureOf(ops::makeConv2d(pr), hw);
    EXPECT_TRUE(std::isinf(shapeDistance(gemm, conv)));

    auto other_hw = gemm;
    other_hw.hw = "a100";
    EXPECT_TRUE(std::isinf(shapeDistance(gemm, other_hw)));

    auto other_dtype = gemm;
    other_dtype.dtypes = "f32_f32_f32";
    EXPECT_TRUE(std::isinf(shapeDistance(gemm, other_dtype)));
}

TEST(ShapeFeature, KeyRoundTripsThroughTheTuningCache)
{
    auto hw = hw::v100();
    auto gemm = ops::makeGemm(128, 64, 32);
    auto direct = shapeFeatureOf(gemm, hw);
    auto parsed = shapeFeatureOfKey(TuningCache::keyFor(gemm, hw));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(shapeDistance(direct, *parsed), 0.0);

    // The serve layer appends search-knob and warm-start segments;
    // both must parse to the same embedding.
    auto with_knobs = shapeFeatureOfKey(
        TuningCache::keyFor(gemm, hw) + "/g8_s2022");
    ASSERT_TRUE(with_knobs.has_value());
    EXPECT_DOUBLE_EQ(shapeDistance(direct, *with_knobs), 0.0);

    auto with_warm = shapeFeatureOfKey(
        TuningCache::keyFor(gemm, hw) +
        "/g8_s2022/wneighbors-m0123abcd");
    ASSERT_TRUE(with_warm.has_value());
    EXPECT_DOUBLE_EQ(shapeDistance(direct, *with_warm), 0.0);
}

TEST(ShapeFeature, KeyParsesDtypeSignatures)
{
    auto plain = shapeFeatureOfKey("v100/gemm_64_64_64");
    ASSERT_TRUE(plain.has_value());
    EXPECT_EQ(plain->family, "gemm");
    EXPECT_EQ(plain->hw, "v100");
    EXPECT_TRUE(plain->dtypes.empty());
    ASSERT_EQ(plain->dims.size(), 3u);

    auto typed =
        shapeFeatureOfKey("v100/gemm_64_64_64/f32_f32_f32");
    ASSERT_TRUE(typed.has_value());
    EXPECT_EQ(typed->dtypes, "f32_f32_f32");
    EXPECT_TRUE(std::isinf(shapeDistance(*plain, *typed)));

    auto typed_knobs = shapeFeatureOfKey(
        "v100/gemm_64_64_64/f32_f32_f32/g4_s0/wboth");
    ASSERT_TRUE(typed_knobs.has_value());
    EXPECT_DOUBLE_EQ(shapeDistance(*typed, *typed_knobs), 0.0);
}

TEST(ShapeFeature, ForeignKeysDegradeToNoDonor)
{
    EXPECT_FALSE(shapeFeatureOfKey("").has_value());
    EXPECT_FALSE(shapeFeatureOfKey("v100").has_value());
    EXPECT_FALSE(shapeFeatureOfKey("v100/gemm").has_value());
    EXPECT_FALSE(shapeFeatureOfKey("v100/64_64").has_value());
    EXPECT_FALSE(
        shapeFeatureOfKey("v100/gemm_64_64_64/banana!").has_value());
}

TEST(NearestSeeds, MatchesBruteForceOnRandomShapes)
{
    Rng rng(2022);
    for (int round = 0; round < 20; ++round) {
        auto target = gemmFeature(rng.uniformInt(1, 1024),
                                  rng.uniformInt(1, 1024),
                                  rng.uniformInt(1, 1024));
        std::vector<WarmSeed> donors;
        for (int i = 0; i < 24; ++i) {
            WarmSeed s;
            auto m = rng.uniformInt(1, 1024);
            auto n = rng.uniformInt(1, 1024);
            auto k = rng.uniformInt(1, 1024);
            s.sourceKey = "v100/gemm_" + std::to_string(m) + "_" +
                          std::to_string(n) + "_" +
                          std::to_string(k);
            donors.push_back(std::move(s));
        }
        // A few donors that must never be selected.
        WarmSeed junk;
        junk.sourceKey = "not a cache key";
        donors.push_back(junk);
        junk.sourceKey = "v100/conv2d_8_16_16_7_7_3_3";
        donors.push_back(junk);

        // Brute force: (distance, key) pairs, total order.
        std::vector<std::pair<double, std::string>> ranked;
        for (const auto &d : donors) {
            auto f = shapeFeatureOfKey(d.sourceKey);
            if (!f)
                continue;
            double dist = shapeDistance(target, *f);
            if (dist <= kWarmStartMaxDistance)
                ranked.emplace_back(dist, d.sourceKey);
        }
        std::sort(ranked.begin(), ranked.end());
        if (ranked.size() > kWarmStartMaxNeighbors)
            ranked.resize(kWarmStartMaxNeighbors);

        auto picked = nearestSeeds(target, donors);
        ASSERT_EQ(picked.size(), ranked.size());
        for (std::size_t i = 0; i < picked.size(); ++i) {
            EXPECT_EQ(picked[i].sourceKey, ranked[i].second);
            EXPECT_DOUBLE_EQ(picked[i].distance, ranked[i].first);
        }
    }
}

TEST(NearestSeeds, SelectionIsDonorOrderInvariant)
{
    auto target = gemmFeature(96, 64, 64);
    std::vector<WarmSeed> donors;
    for (std::int64_t m : {32, 64, 128, 256, 512}) {
        WarmSeed s;
        s.sourceKey = "v100/gemm_" + std::to_string(m) + "_64_64";
        donors.push_back(std::move(s));
    }
    auto forward = nearestSeeds(target, donors);
    std::reverse(donors.begin(), donors.end());
    auto backward = nearestSeeds(target, donors);
    ASSERT_EQ(forward.size(), backward.size());
    for (std::size_t i = 0; i < forward.size(); ++i)
        EXPECT_EQ(forward[i].sourceKey, backward[i].sourceKey);
}

TEST(ClampSchedule, LegalSchedulesAreFixpoints)
{
    // Clamping is a projection onto the legal envelope: a schedule
    // sampleSchedule produced for the same plan must survive
    // unchanged, and clamping is idempotent on anything.
    auto gemm = ops::makeGemm(128, 128, 64);
    auto hw = hw::v100();
    auto plans = enumeratePlans(gemm, hw.primaryIntrinsic(), {});
    ASSERT_FALSE(plans.empty());
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        const auto &plan = plans[static_cast<std::size_t>(
            rng.uniformInt(0,
                           static_cast<std::int64_t>(plans.size()) -
                               1))];
        auto legal = sampleSchedule(plan, rng);
        EXPECT_EQ(clampSchedule(plan, legal).toString(),
                  legal.toString());
    }
}

TEST(ClampSchedule, ForeignSchedulesLandOnTheLegalEnvelope)
{
    auto small = ops::makeGemm(32, 32, 32);
    auto big = ops::makeGemm(512, 256, 128);
    auto hw = hw::v100();
    auto small_plans =
        enumeratePlans(small, hw.primaryIntrinsic(), {});
    auto big_plans = enumeratePlans(big, hw.primaryIntrinsic(), {});
    ASSERT_FALSE(small_plans.empty());
    ASSERT_FALSE(big_plans.empty());
    Rng rng(13);
    for (int i = 0; i < 50; ++i) {
        const auto &donor_plan = big_plans[static_cast<std::size_t>(
            rng.uniformInt(
                0,
                static_cast<std::int64_t>(big_plans.size()) - 1))];
        const auto &target_plan =
            small_plans[static_cast<std::size_t>(rng.uniformInt(
                0,
                static_cast<std::int64_t>(small_plans.size()) -
                    1))];
        auto donor = sampleSchedule(donor_plan, rng);
        auto clamped = clampSchedule(target_plan, donor);
        // Idempotence: already on the envelope.
        EXPECT_EQ(clampSchedule(target_plan, clamped).toString(),
                  clamped.toString());
        // Reduction axes stay serial.
        for (std::size_t a = 0; a < clamped.axes.size(); ++a) {
            if (axisIsReduction(target_plan, a)) {
                EXPECT_EQ(clamped.axes[a].blockFactor, 1);
                EXPECT_EQ(clamped.axes[a].warpFactor, 1);
            }
        }
    }
}

TEST(TranslateSeed, PrefersTheExactMappingMatch)
{
    // A conv has a rich mapping pool (gemm's is a single plan per
    // intrinsic shape), so "exact match beats first-on-intrinsic"
    // is actually observable.
    ops::ConvParams pr;
    pr.batch = 16;
    pr.in_channels = 64;
    pr.out_channels = 64;
    pr.out_h = 14;
    pr.out_w = 14;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto conv = ops::makeConv2d(pr);
    auto hw = hw::v100();
    auto plans = enumeratePlans(conv, hw.primaryIntrinsic(), {});
    ASSERT_GT(plans.size(), 1u);
    for (std::size_t pick : {std::size_t(0), plans.size() - 1}) {
        WarmSeed seed;
        seed.intrinsicName = plans[pick].intrinsic().name();
        seed.mapping = plans[pick].mapping();
        seed.schedule = defaultSchedule(plans[pick]);
        auto translated = translateSeed(seed, plans);
        ASSERT_TRUE(translated.has_value());
        EXPECT_EQ(translated->first, pick);
    }
}

TEST(TranslateSeed, UnknownIntrinsicIsDropped)
{
    auto gemm = ops::makeGemm(64, 64, 64);
    auto hw = hw::v100();
    auto plans = enumeratePlans(gemm, hw.primaryIntrinsic(), {});
    ASSERT_FALSE(plans.empty());
    WarmSeed seed;
    seed.intrinsicName = "no-such-intrinsic";
    seed.mapping = plans[0].mapping();
    seed.schedule = defaultSchedule(plans[0]);
    EXPECT_FALSE(translateSeed(seed, plans).has_value());
}

/** Tune `donor`, convert the winner into a WarmSeed for reuse. */
WarmSeed
tunedSeed(const TensorComputation &donor, const HardwareSpec &hw,
          TuneOptions options)
{
    auto result = tune(donor, hw, options);
    EXPECT_TRUE(result.tensorizable);
    WarmSeed seed;
    seed.sourceKey = TuningCache::keyFor(donor, hw);
    seed.intrinsicName = result.intrinsicName;
    seed.mapping = result.bestPlan->mapping();
    seed.schedule = result.bestSchedule;
    return seed;
}

void
expectIdenticalResults(const TuneResult &a, const TuneResult &b)
{
    EXPECT_EQ(a.bestCycles, b.bestCycles);
    EXPECT_EQ(a.bestMappingIndex, b.bestMappingIndex);
    EXPECT_EQ(a.mappingSignature, b.mappingSignature);
    EXPECT_EQ(a.computeMapping, b.computeMapping);
    EXPECT_EQ(a.measurements, b.measurements);
    EXPECT_EQ(a.warmStartSeeded, b.warmStartSeeded);
    EXPECT_EQ(a.bestSchedule.toString(), b.bestSchedule.toString());
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].mappingIndex, b.trace[i].mappingIndex);
        EXPECT_EQ(a.trace[i].measuredCycles,
                  b.trace[i].measuredCycles);
        EXPECT_EQ(a.trace[i].bestSoFarCycles,
                  b.trace[i].bestSoFarCycles);
    }
}

TEST(Tuner, WarmSeedsEnterGenerationZero)
{
    auto hw = hw::v100();
    TuneOptions cold;
    cold.generations = 3;
    cold.seed = 11;
    auto seed = tunedSeed(ops::makeGemm(64, 64, 64), hw, cold);

    TuneOptions warm = cold;
    warm.warmStart.mode = WarmStartMode::Neighbors;
    warm.warmStart.seeds = {seed};
    auto result = tune(ops::makeGemm(96, 64, 64), hw, warm);
    ASSERT_TRUE(result.tensorizable);
    EXPECT_EQ(result.warmStartNeighbors, 1);
    EXPECT_EQ(result.warmStartSeeded, 1);
    EXPECT_TRUE(std::isfinite(result.bestCycles));

    // Warm generation 0 measures the seeds instead of the whole
    // expert pool, so the search issues fewer measurements.
    auto cold_run = tune(ops::makeGemm(96, 64, 64), hw, cold);
    EXPECT_LT(result.measurements, cold_run.measurements);
    EXPECT_EQ(cold_run.warmStartSeeded, 0);
}

TEST(Tuner, WarmStartIsThreadCountInvariant)
{
    auto hw = hw::v100();
    TuneOptions cold;
    cold.generations = 3;
    cold.seed = 5;
    auto seed_a = tunedSeed(ops::makeGemm(64, 64, 64), hw, cold);
    auto seed_b = tunedSeed(ops::makeGemm(128, 64, 64), hw, cold);

    TuneOptions base;
    base.generations = 3;
    base.seed = 2022;
    base.numThreads = 1;
    base.warmStart.mode = WarmStartMode::Neighbors;
    base.warmStart.seeds = {seed_a, seed_b};
    auto gemm = ops::makeGemm(96, 64, 64);
    auto serial = tune(gemm, hw, base);
    ASSERT_TRUE(serial.tensorizable);
    EXPECT_GT(serial.warmStartSeeded, 0);
    for (int threads : {2, 8}) {
        TuneOptions options = base;
        options.numThreads = threads;
        expectIdenticalResults(serial, tune(gemm, hw, options));
    }
}

TEST(Tuner, ModelSnapshotScreeningIsThreadCountInvariant)
{
    auto hw = hw::v100();
    auto gemm = ops::makeGemm(96, 64, 64);

    // Train a snapshot from one exploration's own measurements.
    auto model = std::make_shared<LearnedModel>();
    TuneOptions harvest;
    harvest.generations = 4;
    harvest.numThreads = 1;
    harvest.sampleSink = model.get();
    tune(ops::makeGemm(64, 64, 64), hw, harvest);
    model->fit();
    ASSERT_TRUE(model->trained());

    TuneOptions base;
    base.generations = 3;
    base.seed = 9;
    base.numThreads = 1;
    base.warmStart.mode = WarmStartMode::Model;
    base.warmStart.model = model;
    auto serial = tune(gemm, hw, base);
    ASSERT_TRUE(serial.tensorizable);
    for (int threads : {2, 8}) {
        TuneOptions options = base;
        options.numThreads = threads;
        expectIdenticalResults(serial, tune(gemm, hw, options));
    }
}

TEST(Tuner, SampleSinkIsResultNeutral)
{
    auto hw = hw::v100();
    auto gemm = ops::makeGemm(96, 64, 64);
    TuneOptions plain;
    plain.generations = 3;
    auto a = tune(gemm, hw, plain);

    LearnedModel sink;
    TuneOptions sinked = plain;
    sinked.sampleSink = &sink;
    auto b = tune(gemm, hw, sinked);
    expectIdenticalResults(a, b);
    EXPECT_GT(sink.sampleCount(), 0u);
}

TEST(Tuner, PatienceBoundsTheGenerationCount)
{
    auto hw = hw::v100();
    auto gemm = ops::makeGemm(64, 64, 64);
    TuneOptions full;
    full.generations = 12;
    full.seed = 3;
    auto baseline = tune(gemm, hw, full);

    TuneOptions impatient = full;
    impatient.warmStart.patience = 1;
    auto stopped = tune(gemm, hw, impatient);
    ASSERT_TRUE(stopped.tensorizable);
    EXPECT_LE(stopped.telemetry.size(), baseline.telemetry.size());
    EXPECT_LE(stopped.measurements, baseline.measurements);
    // The early stop never abandons the incumbent.
    EXPECT_TRUE(std::isfinite(stopped.bestCycles));
}

TEST(Compiler, CompileWithCacheSeedsFromNeighbors)
{
    auto hw = hw::v100();
    TuningCache cache;
    TuneOptions options;
    options.generations = 3;
    options.warmStart.mode = WarmStartMode::Neighbors;
    Compiler compiler(hw, options);

    // First compile: empty cache, no donors, still succeeds.
    auto first =
        compiler.compileWithCache(ops::makeGemm(64, 64, 64), cache);
    ASSERT_TRUE(first.tensorized);
    EXPECT_EQ(first.tuning.warmStartNeighbors, 0);

    // Second compile, new shape in the same family: the cached
    // winner becomes a donor.
    auto second =
        compiler.compileWithCache(ops::makeGemm(96, 64, 64), cache);
    ASSERT_TRUE(second.tensorized);
    EXPECT_EQ(second.tuning.warmStartNeighbors, 1);
    EXPECT_GT(second.tuning.warmStartSeeded, 0);

    // Replay of the second shape hits the cache without a search.
    auto replay =
        compiler.compileWithCache(ops::makeGemm(96, 64, 64), cache);
    EXPECT_EQ(replay.measurements, 0);
    EXPECT_DOUBLE_EQ(replay.cycles, second.cycles);
}

} // namespace
} // namespace amos
