/**
 * @file
 * Frozen copies of the hand-written intrinsic constructions that
 * predate the declarative-spec refactor (git history: the original
 * src/isa/intrinsics.cc). These are the golden reference for the
 * equivalence suite in test_isa_spec.cc: the spec-derived registry in
 * isa/intrinsics.hh must stay bit-identical to what these build.
 *
 * Deliberately NOT kept in sync with src/ — if an intrinsic's
 * definition ever needs to change, change the JSON spec, then update
 * this freeze in the same commit with the reason in the diff.
 */

#ifndef AMOS_TESTS_HAND_BUILT_INTRINSICS_HH
#define AMOS_TESTS_HAND_BUILT_INTRINSICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/abstraction.hh"

namespace amos {
namespace handbuilt {

inline MemoryAbstraction
matmulStyleMemory()
{
    return MemoryAbstraction({
        {"Src1", MemScope::Reg, MemScope::Shared},
        {"Src2", MemScope::Reg, MemScope::Shared},
        {"Dst", MemScope::Global, MemScope::Reg},
    });
}

inline Intrinsic
wmma(std::int64_t m, std::int64_t n, std::int64_t k)
{
    ComputeAbstraction compute(
        "wmma_" + std::to_string(m) + "x" + std::to_string(n) + "x" +
            std::to_string(k),
        {{"i1", m, false}, {"i2", n, false}, {"r1", k, true}},
        {{"Src1", {0, 2}, DataType::F16},
         {"Src2", {2, 1}, DataType::F16}},
        {"Dst", {0, 1}, DataType::F16});
    Intrinsic out{std::move(compute), matmulStyleMemory()};
    out.latencyCycles = 8.0;
    out.unitsPerSubcore = 2;
    out.regFileBytes = 64 * 1024;
    return out;
}

inline Intrinsic
wmmaTiny()
{
    return wmma(2, 2, 2);
}

inline std::vector<Intrinsic>
wmmaVariants()
{
    return {wmma(16, 16, 16), wmma(32, 8, 16), wmma(8, 32, 16)};
}

inline Intrinsic
avx512Vnni()
{
    ComputeAbstraction compute(
        "avx512_vnni_dpbusds",
        {{"i1", 16, false}, {"r1", 4, true}},
        {{"Src1", {1}, DataType::U8},
         {"Src2", {0, 1}, DataType::I8}},
        {"Dst", {0}, DataType::I32});
    Intrinsic out{std::move(compute), matmulStyleMemory()};
    out.latencyCycles = 4.0;
    out.unitsPerSubcore = 1;
    out.regFileBytes = 2 * 1024;
    return out;
}

inline Intrinsic
maliDot()
{
    ComputeAbstraction compute(
        "arm_dot",
        {{"r1", 4, true}},
        {{"Src1", {0}, DataType::I8}, {"Src2", {0}, DataType::I8}},
        {"Dst", {}, DataType::I32});
    Intrinsic out{std::move(compute), matmulStyleMemory()};
    out.latencyCycles = 2.0;
    out.unitsPerSubcore = 4;
    out.regFileBytes = 1024;
    return out;
}

inline Intrinsic
virtualAxpy(std::int64_t lanes = 64)
{
    ComputeAbstraction compute(
        "vaxpy_" + std::to_string(lanes),
        {{"i1", lanes, false}},
        {{"Src1", {0}, DataType::F32}, {"Src2", {}, DataType::F32}},
        {"Dst", {0}, DataType::F32});
    Intrinsic out{std::move(compute), matmulStyleMemory()};
    out.latencyCycles = 2.0;
    out.unitsPerSubcore = 2;
    out.regFileBytes = 16 * 1024;
    return out;
}

inline Intrinsic
virtualGemv(std::int64_t rows = 32, std::int64_t depth = 32)
{
    ComputeAbstraction compute(
        "vgemv_" + std::to_string(rows) + "x" + std::to_string(depth),
        {{"i1", rows, false}, {"r1", depth, true}},
        {{"Src1", {0, 1}, DataType::F16},
         {"Src2", {1}, DataType::F16}},
        {"Dst", {0}, DataType::F32});
    Intrinsic out{std::move(compute), matmulStyleMemory()};
    out.latencyCycles = 6.0;
    out.unitsPerSubcore = 1;
    out.regFileBytes = 32 * 1024;
    return out;
}

inline Intrinsic
virtualConv(std::int64_t out_ch = 8, std::int64_t height = 4,
            std::int64_t width = 4, std::int64_t in_ch = 8)
{
    ComputeAbstraction compute(
        "vconv_" + std::to_string(out_ch) + "x" +
            std::to_string(height) + "x" + std::to_string(width) +
            "x" + std::to_string(in_ch),
        {{"i1", out_ch, false},
         {"i2", height, false},
         {"i3", width, false},
         {"r1", in_ch, true}},
        {{"Src1", {3, 1, 2}, DataType::F16},
         {"Src2", {0, 3}, DataType::F16}},
        {"Dst", {0, 1, 2}, DataType::F32});
    Intrinsic out{std::move(compute), matmulStyleMemory()};
    out.latencyCycles = 12.0;
    out.unitsPerSubcore = 1;
    out.regFileBytes = 64 * 1024;
    return out;
}

} // namespace handbuilt
} // namespace amos

#endif // AMOS_TESTS_HAND_BUILT_INTRINSICS_HH
