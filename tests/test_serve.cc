/**
 * @file
 * Tests for the compilation service: protocol round-trips, cache
 * tiering (memory hit, disk hit, restart warm-up), in-flight
 * coalescing under a concurrent-client hammer, deadline and
 * queue-full error paths, graceful drain, and the NDJSON server
 * loop. The hammer and drain tests run under TSan in CI.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "explore/tuner.hh"
#include "explore/warm_start.hh"
#include "ops/operators.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "support/rng.hh"
#include "support/trace.hh"

namespace amos {
namespace serve {
namespace {

/** A cheap exploration: small gemm, two generations. */
CompileRequest
fastRequest()
{
    CompileRequest req;
    req.op = "gemm";
    req.dims = {{"m", 64}, {"n", 64}, {"k", 64}};
    req.hw = "v100";
    req.generations = 2;
    return req;
}

/** An exploration slow enough to still be running mid-test. */
CompileRequest
slowRequest(int variant = 0)
{
    CompileRequest req;
    req.op = "conv2d";
    req.dims = {{"batch", 8 + variant}, {"cin", 128},
                {"cout", 128},          {"size", 28},
                {"kernel", 3}};
    req.hw = "v100";
    req.generations = 120;
    return req;
}

/** Unique scratch directory for disk-tier tests. */
std::string
freshDiskDir(const std::string &tag)
{
    auto dir = std::filesystem::temp_directory_path() /
               ("amos_serve_" + tag + "_" +
                std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

TEST(Protocol, RequestRoundTrip)
{
    CompileRequest req;
    req.id = "r42";
    req.op = "gemm";
    req.dims = {{"m", 128}, {"n", 64}, {"k", 32}};
    req.hw = "a100";
    req.generations = 5;
    req.seed = 7;
    req.deadlineMs = 250.0;
    auto round = CompileRequest::fromJson(
        Json::parse(req.toJson().dump()));
    EXPECT_EQ(round.id, "r42");
    EXPECT_EQ(round.op, "gemm");
    EXPECT_EQ(round.hw, "a100");
    EXPECT_EQ(round.dims, req.dims);
    EXPECT_EQ(round.generations, 5);
    EXPECT_EQ(round.seed, 7u);
    EXPECT_DOUBLE_EQ(round.deadlineMs, 250.0);
    EXPECT_EQ(round.cacheKey(), req.cacheKey());
}

TEST(Protocol, CacheKeySeparatesSearchKnobs)
{
    auto a = fastRequest();
    auto b = fastRequest();
    EXPECT_EQ(a.cacheKey(), b.cacheKey());
    b.generations = 3;
    EXPECT_NE(a.cacheKey(), b.cacheKey());
    b = fastRequest();
    b.seed = 1;
    EXPECT_NE(a.cacheKey(), b.cacheKey());
    b = fastRequest();
    b.hw = "a100";
    EXPECT_NE(a.cacheKey(), b.cacheKey());
    // Deadlines and threads do not change the artifact.
    b = fastRequest();
    b.deadlineMs = 9.0;
    b.numThreads = 4;
    EXPECT_EQ(a.cacheKey(), b.cacheKey());
}

TEST(Protocol, DtypeRoundTripsAndSplitsCacheKey)
{
    auto plain = fastRequest();
    // Default dtype stays off the wire so old clients and servers
    // interoperate unchanged.
    EXPECT_EQ(plain.toJson().dump().find("dtype"),
              std::string::npos);

    auto quant = fastRequest();
    quant.dtype = "u8i8";
    auto round = CompileRequest::fromJson(
        Json::parse(quant.toJson().dump()));
    EXPECT_EQ(round.dtype, "u8i8");
    // A quantized compile is a different artifact.
    EXPECT_NE(round.cacheKey(), plain.cacheKey());
    EXPECT_EQ(round.cacheKey(), quant.cacheKey());

    auto bad = fastRequest();
    bad.dtype = "fp64";
    EXPECT_THROW(bad.cacheKey(), FatalError);
}

TEST(Protocol, RejectsMalformedRequests)
{
    EXPECT_THROW(CompileRequest::fromJson(Json::parse("[1,2]")),
                 FatalError);
    EXPECT_THROW(CompileRequest::fromJson(Json::parse(
                     R"({"type":"stats"})")),
                 FatalError);
    EXPECT_THROW(CompileRequest::fromJson(Json::parse(
                     R"({"op":"gemm","m":"wide"})")),
                 FatalError);
    EXPECT_THROW(CompileRequest::fromJson(Json::parse(
                     R"({"generations":0})")),
                 FatalError);
}

TEST(Protocol, ResultJsonCarriesTheReportFields)
{
    CompileResult result;
    result.tensorized = true;
    result.cycles = 123.0;
    result.milliseconds = 0.5;
    result.gflops = 9.0;
    result.mappingsExplored = 4;
    result.measurements = 17;
    result.mappingSignature = "[n | k | c]";
    auto json = compileResultToJson(result);
    EXPECT_TRUE(json.get("tensorized").asBool());
    EXPECT_DOUBLE_EQ(json.get("cycles").asNumber(), 123.0);
    EXPECT_EQ(json.get("mappings_explored").asInt(), 4);
    EXPECT_EQ(json.get("measurements").asInt(), 17);
    EXPECT_EQ(json.get("mapping_signature").asString(),
              "[n | k | c]");
    EXPECT_FALSE(json.has("pseudo_code"));
}

TEST(Service, BadRequestsAreTypedErrors)
{
    ServeOptions options;
    options.workers = 1;
    CompileService service(options);
    auto bad_op = fastRequest();
    bad_op.op = "fft";
    auto outcome = service.serve(bad_op);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.error, ErrorCode::BadRequest);

    auto bad_hw = fastRequest();
    bad_hw.hw = "tpu";
    outcome = service.serve(bad_hw);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.error, ErrorCode::BadRequest);
    EXPECT_EQ(service.stats().compiles, 0u);
}

TEST(Service, RepeatHitsMemoryTierWithoutExploring)
{
    ServeOptions options;
    options.workers = 1;
    CompileService service(options);

    auto miss = service.serve(fastRequest());
    ASSERT_TRUE(miss.ok);
    EXPECT_EQ(miss.servedBy, "compile");
    EXPECT_GT(miss.result.measurements, 0);

    auto hit = service.serve(fastRequest());
    ASSERT_TRUE(hit.ok);
    EXPECT_EQ(hit.servedBy, "memory");
    // The replay performs zero tuner measurements and reproduces
    // the tuned latency bit-for-bit.
    EXPECT_EQ(hit.result.measurements, 0);
    EXPECT_DOUBLE_EQ(hit.result.cycles, miss.result.cycles);

    auto stats = service.stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.compiles, 1u);
    EXPECT_EQ(stats.memoryHits, 1u);
    EXPECT_EQ(stats.latencyCount, 2u);
}

TEST(Service, HammerCoalescesIdenticalRequests)
{
    // N concurrent identical requests must trigger exactly ONE
    // exploration: whoever arrives while it runs joins it, whoever
    // arrives after it finished hits the memory tier.
    const int clients = 16;
    ServeOptions options;
    options.workers = 2;
    CompileService service(options);

    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<ServeOutcome> outcomes(clients);
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            ready.fetch_add(1);
            while (!go.load(std::memory_order_relaxed))
                std::this_thread::yield();
            outcomes[c] = service.serve(fastRequest());
        });
    while (ready.load() < clients)
        std::this_thread::yield();
    go.store(true);
    for (auto &t : threads)
        t.join();

    for (const auto &outcome : outcomes) {
        ASSERT_TRUE(outcome.ok) << outcome.message;
        EXPECT_TRUE(outcome.servedBy == "compile" ||
                    outcome.servedBy == "coalesced" ||
                    outcome.servedBy == "memory")
            << outcome.servedBy;
        EXPECT_GT(outcome.result.cycles, 0.0);
    }
    auto stats = service.stats();
    EXPECT_EQ(stats.compiles, 1u);
    EXPECT_EQ(stats.coalesced + stats.memoryHits,
              static_cast<std::uint64_t>(clients - 1));
    EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(clients));
}

TEST(Service, DeadlineExceededCancelsTheExploration)
{
    ServeOptions options;
    options.workers = 1;
    CompileService service(options);

    auto req = slowRequest();
    req.deadlineMs = 30.0;
    auto outcome = service.serve(req);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.error, ErrorCode::DeadlineExceeded);
    EXPECT_GE(service.stats().deadlineExceeded, 1u);

    // The cancelled exploration must not have poisoned the cache:
    // a follow-up with no deadline compiles cleanly.
    auto retry = slowRequest();
    retry.generations = 1;
    auto ok = service.serve(retry);
    EXPECT_TRUE(ok.ok);
}

TEST(Service, QueueFullShedsLoad)
{
    ServeOptions options;
    options.workers = 1;
    options.maxQueue = 1;
    CompileService service(options);

    auto first = service.submit(slowRequest(0));
    // Distinct workload while the only slot is occupied: shed.
    auto shed = service.submit(slowRequest(1));
    auto shed_outcome = service.wait(shed);
    EXPECT_FALSE(shed_outcome.ok);
    EXPECT_EQ(shed_outcome.error, ErrorCode::QueueFull);

    // An identical request coalesces instead of being shed.
    auto joined = service.submit(slowRequest(0));
    auto first_outcome = service.wait(first);
    auto joined_outcome = service.wait(joined);
    EXPECT_TRUE(first_outcome.ok);
    EXPECT_TRUE(joined_outcome.ok);
    EXPECT_EQ(joined_outcome.servedBy, "coalesced");

    auto stats = service.stats();
    EXPECT_EQ(stats.rejectedQueueFull, 1u);
    EXPECT_EQ(stats.coalesced, 1u);
    EXPECT_EQ(stats.compiles, 1u);
}

TEST(Service, RestartWarmsFromDiskTier)
{
    auto dir = freshDiskDir("warm");
    auto req = fastRequest();

    {
        ServeOptions options;
        options.workers = 1;
        options.cache.diskDir = dir;
        options.cache.diskShards = 4;
        CompileService service(options);
        auto cold = service.serve(req);
        ASSERT_TRUE(cold.ok);
        EXPECT_EQ(cold.servedBy, "compile");
        service.drain(); // clean shutdown persists the disk tier
    }

    {
        // A fresh process image: the disk tier warms the memory
        // tier, so the repeated request never re-explores.
        ServeOptions options;
        options.workers = 1;
        options.cache.diskDir = dir;
        options.cache.diskShards = 4;
        CompileService service(options);
        EXPECT_GE(service.stats().warmedEntries, 1u);
        auto warm = service.serve(req);
        ASSERT_TRUE(warm.ok);
        EXPECT_EQ(warm.servedBy, "memory");
        EXPECT_EQ(service.stats().compiles, 0u);
    }

    {
        // Without warm-up the first hit is served by the disk tier
        // and promoted; the second comes from memory.
        ServeOptions options;
        options.workers = 1;
        options.cache.diskDir = dir;
        options.cache.diskShards = 4;
        options.warmOnStart = false;
        CompileService service(options);
        auto disk = service.serve(req);
        ASSERT_TRUE(disk.ok);
        EXPECT_EQ(disk.servedBy, "disk");
        auto mem = service.serve(req);
        ASSERT_TRUE(mem.ok);
        EXPECT_EQ(mem.servedBy, "memory");
        auto stats = service.stats();
        EXPECT_EQ(stats.diskHits, 1u);
        EXPECT_EQ(stats.memoryHits, 1u);
        EXPECT_EQ(stats.compiles, 0u);
    }

    std::filesystem::remove_all(dir);
}

TEST(Service, DrainFinishesInflightAndRejectsNewWork)
{
    ServeOptions options;
    options.workers = 1;
    CompileService service(options);

    auto ticket = service.submit(fastRequest());
    service.drain(); // must block until the exploration resolves

    auto outcome = service.wait(ticket);
    EXPECT_TRUE(outcome.ok);

    auto late = service.serve(fastRequest());
    EXPECT_FALSE(late.ok);
    EXPECT_EQ(late.error, ErrorCode::ShuttingDown);
}

TEST(TieredCacheTest, LruBoundHoldsAndDiskBacksEvictions)
{
    auto dir = freshDiskDir("lru");
    TieredCache::Options options;
    options.memoryCapacity = 2;
    options.diskDir = dir;
    options.diskShards = 2;
    TieredCache cache(options);

    CacheEntry entry;
    entry.intrinsicName = "wmma_16x16x16";
    entry.mapping.groups = {{0}, {1}, {4}};
    entry.cycles = 1.0;
    cache.put("a", entry);
    cache.put("b", entry);
    cache.put("c", entry); // evicts "a" from memory, not from disk
    EXPECT_EQ(cache.memorySize(), 2u);
    EXPECT_EQ(cache.diskSize(), 3u);

    TieredCache::Tier tier;
    auto got = cache.get("a", &tier);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(tier, TieredCache::Tier::Disk);
    // The disk hit was promoted.
    got = cache.get("a", &tier);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(tier, TieredCache::Tier::Memory);

    EXPECT_FALSE(cache.get("absent", &tier).has_value());
    EXPECT_EQ(tier, TieredCache::Tier::None);
    std::filesystem::remove_all(dir);
}

TEST(Server, StreamServesAndCoalescesOverNdjson)
{
    ServeOptions options;
    options.workers = 2;
    CompileService service(options);

    std::string gemm =
        R"("op":"gemm","m":64,"n":64,"k":64,"hw":"v100",)"
        R"("generations":2)";
    std::istringstream in(
        "{\"type\":\"compile\",\"id\":\"a\"," + gemm + "}\n" +
        "{\"type\":\"compile\",\"id\":\"b\"," + gemm + "}\n" +
        "not json\n"
        "{\"type\":\"stats\",\"id\":\"s\"}\n"
        "{\"type\":\"shutdown\"}\n");
    std::ostringstream out;
    int errors = serveStream(service, in, out);
    EXPECT_EQ(errors, 1); // the "not json" line

    // Responses may interleave: index them by id.
    std::map<std::string, Json> by_id;
    Json stats_line;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
        auto json = Json::parse(line);
        if (json.has("stats"))
            stats_line = json;
        else if (json.has("id"))
            by_id[json.get("id").asString()] = json;
        else
            EXPECT_FALSE(json.get("ok").asBool());
    }
    ASSERT_TRUE(by_id.count("a"));
    ASSERT_TRUE(by_id.count("b"));
    EXPECT_TRUE(by_id["a"].get("ok").asBool());
    EXPECT_TRUE(by_id["b"].get("ok").asBool());
    // One of the two identical requests compiled; the other was
    // coalesced onto it or found it in the memory tier.
    std::string sa = by_id["a"].get("served_by").asString();
    std::string sb = by_id["b"].get("served_by").asString();
    EXPECT_TRUE((sa == "compile") != (sb == "compile"))
        << sa << " / " << sb;
    EXPECT_EQ(service.stats().compiles, 1u);
    ASSERT_FALSE(stats_line.isNull());
    EXPECT_GE(stats_line.get("stats")
                  .get("requests")
                  .asInt(),
              2);
}

TEST(Server, ReplayTraceIsDeterministic)
{
    auto dir = freshDiskDir("replay");
    std::string trace_path = dir + "/trace.ndjson";
    {
        std::ofstream trace(trace_path);
        std::string gemm =
            R"({"type":"compile","op":"gemm","m":64,"n":64,)"
            R"("k":64,"hw":"v100","generations":2,"id":)";
        trace << "# cold, then repeated (must hit), then distinct\n";
        trace << gemm << "\"t1\"}\n";
        trace << gemm << "\"t2\"}\n";
        trace << R"({"type":"compile","op":"gemv","m":256,)"
              << R"("k":256,"hw":"vgemv","generations":2,)"
              << R"("id":"t3"})" << "\n";
    }

    ServeOptions options;
    options.workers = 1;
    CompileService service(options);
    std::ostringstream out;
    int failed = replayTrace(service, trace_path, out);
    EXPECT_EQ(failed, 0);

    std::vector<Json> lines;
    std::istringstream parsed(out.str());
    std::string line;
    while (std::getline(parsed, line))
        lines.push_back(Json::parse(line));
    ASSERT_EQ(lines.size(), 4u); // 3 responses + final stats
    EXPECT_EQ(lines[0].get("served_by").asString(), "compile");
    EXPECT_EQ(lines[1].get("served_by").asString(), "memory");
    EXPECT_EQ(lines[2].get("served_by").asString(), "compile");
    EXPECT_EQ(lines[3].get("stats").get("memory_hits").asInt(), 1);
    std::filesystem::remove_all(dir);
}

TEST(Protocol, TraceIdRoundTripsOutsideTheCacheKey)
{
    auto req = fastRequest();
    auto untraced_key = req.cacheKey();
    req.id = "r1";
    req.traceId = "tr-99";
    auto round = CompileRequest::fromJson(
        Json::parse(req.toJson().dump()));
    EXPECT_EQ(round.traceId, "tr-99");
    // Tracing is observability, not semantics: it must never split
    // the cache key.
    EXPECT_EQ(round.cacheKey(), untraced_key);
}

TEST(Service, TraceIdAttachesSpanTreesToResponses)
{
    ServeOptions options;
    options.workers = 1;
    CompileService service(options);

    auto req = fastRequest();
    req.id = "c1";
    req.traceId = "trace-cold";
    auto cold = service.serve(req);
    ASSERT_TRUE(cold.ok);
    EXPECT_EQ(cold.servedBy, "compile");
    ASSERT_FALSE(cold.trace.isNull());
    EXPECT_EQ(cold.trace.get("trace_id").asString(), "trace-cold");
    const auto &spans = cold.trace.get("spans");
    ASSERT_GT(spans.size(), 0u);
    // A cold compile's tree is rooted at the compile span, with the
    // exploration pipeline nested underneath.
    EXPECT_EQ(spans.at(0).get("name").asString(), "serve.compile");
    std::string dumped = cold.trace.dump();
    EXPECT_NE(dumped.find("explore.tune"), std::string::npos);

    req.traceId = "trace-warm";
    auto warm = service.serve(req);
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(warm.servedBy, "memory");
    ASSERT_FALSE(warm.trace.isNull());
    EXPECT_EQ(warm.trace.get("trace_id").asString(), "trace-warm");
    EXPECT_EQ(warm.trace.get("spans").at(0).get("name").asString(),
              "serve.cache_hit");

    // Untraced requests pay nothing and carry no tree.
    req.traceId.clear();
    auto plain = service.serve(req);
    ASSERT_TRUE(plain.ok);
    EXPECT_TRUE(plain.trace.isNull());
}

TEST(Service, StatsExposeUnifiedMetrics)
{
    ServeOptions options;
    options.workers = 1;
    CompileService service(options);
    ASSERT_TRUE(service.serve(fastRequest()).ok);
    ASSERT_TRUE(service.serve(fastRequest()).ok);

    auto stats = service.stats();
    EXPECT_EQ(stats.metrics.at("serve.requests"), 2u);
    EXPECT_EQ(stats.metrics.at("serve.compiles"), 1u);
    EXPECT_EQ(stats.metrics.at("serve.memory_hits"), 1u);
    EXPECT_EQ(stats.metrics.at("cache.misses"), 1u);
    EXPECT_EQ(stats.metrics.at("cache.memory_hits"), 1u);
    EXPECT_EQ(stats.metrics.at("cache.puts"), 1u);
    // The legacy counters and the unified registry must agree.
    EXPECT_EQ(stats.requests, stats.metrics.at("serve.requests"));
    EXPECT_EQ(stats.memoryHits,
              stats.metrics.at("serve.memory_hits"));

    auto json = stats.toJson();
    ASSERT_TRUE(json.has("metrics"));
    EXPECT_EQ(json.get("metrics").get("serve.requests").asInt(), 2);
    EXPECT_EQ(json.get("metrics").get("serve.compiles").asInt(), 1);
}

TEST(Server, OversizedLinesAreShedWithTypedErrors)
{
    // A line past the 1 MiB admission bound is answered with a typed
    // bad_request *without being parsed*; the stream then keeps
    // serving.
    ServeOptions options;
    options.workers = 1;
    CompileService service(options);

    std::string huge = R"({"type":"compile","op":"gemm","id":")" +
                       std::string((1 << 20), 'x') + "\"}";
    std::istringstream in(huge + "\n" +
                          "{\"type\":\"stats\",\"id\":\"s\"}\n"
                          "{\"type\":\"shutdown\"}\n");
    std::ostringstream out;
    int errors = serveStream(service, in, out);
    EXPECT_EQ(errors, 1);

    bool saw_reject = false, saw_stats = false;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
        auto json = Json::parse(line);
        if (json.has("stats")) {
            saw_stats = true;
        } else {
            EXPECT_FALSE(json.get("ok").asBool());
            EXPECT_EQ(json.get("error").get("code").asString(),
                      "bad_request");
            EXPECT_NE(json.get("error")
                          .get("message")
                          .asString()
                          .find("exceeds"),
                      std::string::npos);
            saw_reject = true;
        }
    }
    EXPECT_TRUE(saw_reject);
    EXPECT_TRUE(saw_stats);
    EXPECT_EQ(service.stats().requests, 0u);
}

TEST(Server, MalformedInputNeverCrashesTheStream)
{
    // NDJSON robustness fuzz: random garbage, truncated requests,
    // well-formed JSON of the wrong shape, and unknown types must
    // each produce exactly one typed error response — never a crash,
    // never a dropped stream.
    const std::string valid =
        R"({"type":"compile","op":"gemm","m":64,"n":64,"k":64,)"
        R"("hw":"v100","generations":2,"id":"ok"})";

    std::vector<std::string> bad;
    // Every proper prefix of a JSON object is invalid JSON.
    for (std::size_t n = 1; n < valid.size(); n += 9)
        bad.push_back(valid.substr(0, n));
    // Deterministic printable garbage (newline-free).
    Rng rng(20260806);
    const std::string charset =
        "{}[]\",:abcdefghijklmnopqrstuvwxyz0123456789 .+-\\/";
    for (int i = 0; i < 32; ++i) {
        auto len =
            static_cast<std::size_t>(rng.uniformInt(1, 80));
        std::string junk;
        for (std::size_t j = 0; j < len; ++j)
            junk += charset[static_cast<std::size_t>(rng.uniformInt(
                0,
                static_cast<std::int64_t>(charset.size()) - 1))];
        bad.push_back(junk);
    }
    // Well-formed JSON, wrong shape or content.
    bad.push_back("[1,2,3]");
    bad.push_back("42");
    bad.push_back("\"compile\"");
    bad.push_back(R"({"type":"warp_speed"})");
    bad.push_back(R"({"type":"compile","op":"gemm","m":"wide"})");
    bad.push_back(R"({"type":"compile","generations":0})");

    std::string stream;
    for (const auto &line : bad)
        stream += line + "\n";
    stream += "{\"type\":\"stats\",\"id\":\"s\"}\n";
    stream += "{\"type\":\"shutdown\"}\n";

    ServeOptions options;
    options.workers = 1;
    CompileService service(options);
    std::istringstream in(stream);
    std::ostringstream out;
    int errors = serveStream(service, in, out);
    EXPECT_EQ(errors, static_cast<int>(bad.size()));

    std::size_t rejects = 0, stats_lines = 0;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
        auto json = Json::parse(line); // responses are valid JSON
        if (json.has("stats")) {
            ++stats_lines;
            continue;
        }
        EXPECT_FALSE(json.get("ok").asBool());
        EXPECT_EQ(json.get("error").get("code").asString(),
                  "bad_request");
        ++rejects;
    }
    EXPECT_EQ(rejects, bad.size());
    EXPECT_EQ(stats_lines, 1u);
    // Nothing malformed ever reached the service.
    EXPECT_EQ(service.stats().requests, 0u);
}

TEST(Server, ReplayTraceRejectsOversizedAndMalformedLines)
{
    auto dir = freshDiskDir("replay_fuzz");
    std::string trace_path = dir + "/trace.ndjson";
    {
        std::ofstream trace(trace_path);
        trace << "# comment survives\n";
        trace << std::string((1 << 20) + 7, 'z') << "\n";
        trace << "still not json\n";
        trace << R"({"type":"compile","op":"gemm","m":64,"n":64,)"
              << R"("k":64,"hw":"v100","generations":2,"id":"g"})"
              << "\n";
    }

    ServeOptions options;
    options.workers = 1;
    CompileService service(options);
    std::ostringstream out;
    int failed = replayTrace(service, trace_path, out);
    EXPECT_EQ(failed, 2); // oversized + malformed; the compile ran
    EXPECT_EQ(service.stats().compiles, 1u);
    std::filesystem::remove_all(dir);
}

TEST(Protocol, ExplainFlagRoundTripsOutsideTheCacheKey)
{
    auto req = fastRequest();
    auto plain_key = req.cacheKey();
    req.explain = true;

    // Explain is pure output shaping: two requests that differ only
    // in it must land on the same cache entry (and coalesce).
    EXPECT_EQ(req.cacheKey(), plain_key);

    auto json = req.toJson();
    EXPECT_TRUE(json.get("explain").asBool());
    auto round =
        CompileRequest::fromJson(Json::parse(json.dump()));
    EXPECT_TRUE(round.explain);
    EXPECT_EQ(round.cacheKey(), plain_key);

    // Absent by default, so old clients see unchanged wire output.
    EXPECT_FALSE(fastRequest().toJson().has("explain"));
}

TEST(Service, ExplainShapesBothCompileAndCacheHitResponses)
{
    ServeOptions options;
    options.workers = 1;
    CompileService service(options);

    auto req = fastRequest();
    req.explain = true;
    auto compiled = service.serve(req);
    ASSERT_TRUE(compiled.ok);
    ASSERT_FALSE(compiled.explain.isNull());
    auto verdict = compiled.explain.get("winner")
                       .get("attribution")
                       .get("bottleneck");
    EXPECT_FALSE(verdict.asString().empty());
    EXPECT_TRUE(compiled.toJson("c").has("explain"));

    // A plain request on the warm entry stays lean...
    auto lean = service.serve(fastRequest());
    ASSERT_TRUE(lean.ok);
    EXPECT_TRUE(lean.explain.isNull());
    EXPECT_FALSE(lean.toJson("l").has("explain"));

    // ...while the memory-tier replay can still explain itself.
    auto hit = service.serve(req);
    ASSERT_TRUE(hit.ok);
    EXPECT_EQ(hit.servedBy, "memory");
    ASSERT_FALSE(hit.explain.isNull());
    EXPECT_EQ(hit.explain.get("winner")
                  .get("attribution")
                  .get("bottleneck")
                  .asString(),
              verdict.asString());
}

TEST(Server, MetricsVerbSpeaksPrometheusExposition)
{
    ServeOptions options;
    options.workers = 1;
    CompileService service(options);

    std::istringstream in(
        R"({"type":"compile","op":"gemm","m":64,"n":64,"k":64,)"
        R"("hw":"v100","generations":2,"id":"c"})"
        "\n"
        R"({"type":"metrics","id":"m"})"
        "\n"
        R"({"type":"shutdown"})"
        "\n");
    std::ostringstream out;
    int errors = serveStream(service, in, out);
    EXPECT_EQ(errors, 0);

    Json metrics;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
        auto json = Json::parse(line);
        if (json.has("id") && json.get("id").asString() == "m")
            metrics = json;
    }
    ASSERT_FALSE(metrics.isNull());
    EXPECT_TRUE(metrics.get("ok").asBool());
    EXPECT_EQ(metrics.get("content_type").asString(),
              "text/plain; version=0.0.4");
    auto body = metrics.get("body").asString();
    EXPECT_NE(body.find("# TYPE amos_serve_requests_total counter"),
              std::string::npos)
        << body;
    EXPECT_NE(body.find("amos_serve_requests_total 1"),
              std::string::npos)
        << body;
    EXPECT_NE(body.find("amos_serve_latency_ms_count"),
              std::string::npos)
        << body;
}

TEST(Server, HealthzTracksDrainState)
{
    ServeOptions options;
    options.workers = 1;
    CompileService service(options);

    auto healthz = [&service] {
        std::istringstream in("{\"type\":\"healthz\"}\n"
                              "{\"type\":\"shutdown\"}\n");
        std::ostringstream out;
        EXPECT_EQ(serveStream(service, in, out), 0);
        std::istringstream lines(out.str());
        std::string line;
        std::getline(lines, line);
        return Json::parse(line);
    };

    // In-band the service is live; serveStream drains it when the
    // stream closes, which the next scrape must report.
    auto serving = healthz();
    EXPECT_TRUE(serving.get("ok").asBool());
    EXPECT_EQ(serving.get("status").asString(), "serving");
    EXPECT_FALSE(serving.get("draining").asBool());

    EXPECT_TRUE(service.draining());
    auto drained = healthz();
    EXPECT_EQ(drained.get("status").asString(), "draining");
    EXPECT_TRUE(drained.get("draining").asBool());
}

TEST(Server, ReplayTraceAnswersControlVerbs)
{
    auto dir = freshDiskDir("replay_verbs");
    std::string trace_path = dir + "/trace.ndjson";
    {
        std::ofstream trace(trace_path);
        trace << R"({"type":"compile","op":"gemm","m":64,"n":64,)"
              << R"("k":64,"hw":"v100","generations":2,"id":"c"})"
              << "\n";
        trace << R"({"type":"healthz","id":"h"})" << "\n";
        trace << R"({"type":"metrics","id":"m"})" << "\n";
    }

    ServeOptions options;
    options.workers = 1;
    CompileService service(options);
    std::ostringstream out;
    int failed = replayTrace(service, trace_path, out);
    EXPECT_EQ(failed, 0);

    std::map<std::string, Json> by_id;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
        auto json = Json::parse(line);
        if (json.has("id"))
            by_id[json.get("id").asString()] = json;
    }
    ASSERT_TRUE(by_id.count("c"));
    ASSERT_TRUE(by_id.count("h"));
    ASSERT_TRUE(by_id.count("m"));
    EXPECT_EQ(by_id["h"].get("status").asString(), "serving");
    EXPECT_NE(by_id["m"].get("body").asString().find(
                  "amos_serve_compiles_total"),
              std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Service, SlowRequestYieldsPostmortemWithoutTraceId)
{
    ServeOptions options;
    options.workers = 1;
    options.slowMs = 0.001; // everything is "slow"
    CompileService service(options);

    // Nobody passed a trace_id and global tracing is off: the
    // flight recorder alone must reconstruct the request.
    ASSERT_FALSE(Tracer::global().enabled());
    auto outcome = service.serve(fastRequest());
    ASSERT_TRUE(outcome.ok);
    EXPECT_GE(outcome.queueWaitMs, 0.0);

    auto stats = service.stats();
    EXPECT_GE(stats.slowRequests, 1u);
    EXPECT_GE(stats.slowlogRecorded, 1u);

    Json slowlog = service.slowlogJson();
    ASSERT_GE(slowlog.get("count").asInt(), 1);
    const Json &pm = slowlog.get("postmortems").at(0);
    EXPECT_EQ(pm.get("reason").asString(), "slow");
    EXPECT_EQ(pm.get("served_by").asString(), "compile");
    EXPECT_GT(pm.get("latency_ms").asNumber(), 0.0);
    EXPECT_GE(pm.get("queue_wait_ms").asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(pm.get("slow_threshold_ms").asNumber(), 0.001);

    // What the request walked into at admission.
    const Json &admission = pm.get("admission");
    EXPECT_TRUE(admission.has("inflight"));
    EXPECT_TRUE(admission.has("queue_depth"));

    // What the service did while it was in flight.
    const Json &delta = pm.get("metrics_delta");
    EXPECT_GE(delta.get("serve.compiles").asInt(), 1);

    // The full span tree, straight from the flight rings: rooted at
    // serve.compile with the exploration nested inside.
    const Json &trace = pm.get("trace");
    EXPECT_GT(trace.get("flight_seq").asInt(), 0);
    const Json &spans = trace.get("spans");
    ASSERT_GE(spans.size(), 1u);
    EXPECT_EQ(spans.at(0).get("name").asString(), "serve.compile");
    const Json &children = spans.at(0).get("children");
    ASSERT_GE(children.size(), 1u);
    bool tuned = false;
    for (std::size_t i = 0; i < children.size(); ++i)
        tuned |= children.at(i).get("name").asString() ==
                 "explore.tune";
    EXPECT_TRUE(tuned);
}

TEST(Service, ShedRequestsAreRetainedWithAdmissionState)
{
    ServeOptions options;
    options.workers = 1;
    options.maxQueue = 1;
    CompileService service(options);

    auto first = service.submit(slowRequest(0));
    auto shed = service.submit(slowRequest(1));
    auto shed_outcome = service.wait(shed);
    ASSERT_FALSE(shed_outcome.ok);
    ASSERT_EQ(shed_outcome.error, ErrorCode::QueueFull);

    Json slowlog = service.slowlogJson();
    ASSERT_GE(slowlog.get("count").asInt(), 1);
    const Json &pm = slowlog.get("postmortems").at(0);
    EXPECT_EQ(pm.get("reason").asString(), "shed");
    EXPECT_EQ(pm.get("error").get("code").asString(), "queue_full");
    // The shed request saw the saturated admission state.
    EXPECT_GE(pm.get("admission").get("inflight").asNumber(), 1.0);

    EXPECT_TRUE(service.wait(first).ok);
}

TEST(Service, SlowlogIsBoundedMostRecentFirst)
{
    ServeOptions options;
    options.workers = 1;
    options.slowMs = 0.001;
    options.slowlogSize = 2;
    CompileService service(options);

    for (int i = 0; i < 4; ++i) {
        auto req = fastRequest();
        req.dims["m"] = 64 + 16 * i; // distinct: no cache hits
        ASSERT_TRUE(service.serve(req).ok);
    }
    Json slowlog = service.slowlogJson();
    EXPECT_EQ(slowlog.get("count").asInt(), 4);
    EXPECT_EQ(slowlog.get("postmortems").size(), 2u);
    // limit=1 trims further, keeping the most recent entry.
    EXPECT_EQ(service.slowlogJson(1).get("postmortems").size(), 1u);
    EXPECT_EQ(service.stats().slowlogRecorded, 4u);
}

TEST(Service, StatsCarryWindowedSloFields)
{
    ServeOptions options;
    options.workers = 1;
    options.slowMs = 1e6; // nothing is slow; window still fills
    CompileService service(options);
    ASSERT_TRUE(service.serve(fastRequest()).ok);

    auto stats = service.stats();
    EXPECT_GE(stats.windowCount, 1u);
    EXPECT_GT(stats.windowP99Ms, 0.0);
    EXPECT_DOUBLE_EQ(stats.slowThresholdMs, 1e6);
    EXPECT_GE(stats.windowP99Ms, stats.windowP50Ms);
    EXPECT_DOUBLE_EQ(stats.sloBurnRate, 0.0);

    Json doc = stats.toJson();
    EXPECT_TRUE(doc.has("window"));
    EXPECT_TRUE(doc.has("slo"));

    auto text = service.prometheusText();
    EXPECT_NE(text.find("amos_serve_queue_wait_ms_count"),
              std::string::npos)
        << text;
    EXPECT_NE(
        text.find("# TYPE amos_serve_latency_ms_window gauge"),
        std::string::npos)
        << text;
    EXPECT_NE(
        text.find("amos_serve_latency_ms_window{quantile=\"0.99\"}"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("amos_serve_window_p99_ms"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("amos_serve_slo_burn_rate"),
              std::string::npos)
        << text;
}

TEST(Server, SlowlogVerbReturnsPostmortemsOverNdjson)
{
    // replayTrace serves synchronously, so the slowlog line is
    // guaranteed to observe the finished compile (over serveStream
    // a control verb can overtake an in-flight request).
    auto dir = freshDiskDir("slowlogverb");
    auto trace_path = dir + "/trace.ndjson";
    {
        std::ofstream trace(trace_path);
        trace << R"({"type":"compile","op":"gemm","m":64,"n":64,)"
              << R"("k":64,"hw":"v100","generations":2,"id":"c"})"
              << "\n"
              << R"({"type":"slowlog","id":"s","limit":1})" << "\n";
    }

    ServeOptions options;
    options.workers = 1;
    options.slowMs = 0.001;
    CompileService service(options);
    std::ostringstream out;
    int failed = replayTrace(service, trace_path, out);
    EXPECT_EQ(failed, 0);

    Json reply;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
        auto json = Json::parse(line);
        if (json.has("id") && json.get("id").asString() == "s")
            reply = json;
    }
    ASSERT_FALSE(reply.isNull());
    EXPECT_TRUE(reply.get("ok").asBool());
    const Json &slowlog = reply.get("slowlog");
    EXPECT_GE(slowlog.get("count").asInt(), 1);
    ASSERT_EQ(slowlog.get("postmortems").size(), 1u);
    const Json &pm = slowlog.get("postmortems").at(0);
    EXPECT_EQ(pm.get("reason").asString(), "slow");
    EXPECT_TRUE(pm.get("trace").has("spans"));
    std::filesystem::remove_all(dir);
}

TEST(Server, FlightdumpVerbWritesTheRings)
{
    auto dir = freshDiskDir("flightdump");
    auto path = dir + "/flight.json";
    auto trace_path = dir + "/trace.ndjson";
    {
        std::ofstream trace(trace_path);
        trace << R"({"type":"compile","op":"gemm","m":64,"n":64,)"
              << R"("k":64,"hw":"v100","generations":2,"id":"c"})"
              << "\n"
              << R"({"type":"flightdump","id":"f","path":")" << path
              << R"("})" << "\n"
              << R"({"type":"flightdump","id":"bad"})" << "\n";
    }

    ServeOptions options;
    options.workers = 1;
    CompileService service(options);
    std::ostringstream out;
    replayTrace(service, trace_path, out);

    std::map<std::string, Json> by_id;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
        auto json = Json::parse(line);
        if (json.has("id"))
            by_id[json.get("id").asString()] = json;
    }
    ASSERT_TRUE(by_id.count("f"));
    EXPECT_TRUE(by_id["f"].get("ok").asBool());
    const Json &dump = by_id["f"].get("flightdump");
    EXPECT_EQ(dump.get("path").asString(), path);
    EXPECT_GE(dump.get("records").asInt(), 1);

    std::ifstream file(path);
    std::string text((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
    Json parsed = Json::parse(text);
    EXPECT_GE(parsed.get("records").size(), 1u);

    // Missing "path" is a typed protocol error, not a crash.
    ASSERT_TRUE(by_id.count("bad"));
    EXPECT_FALSE(by_id["bad"].get("ok").asBool());

    std::filesystem::remove_all(dir);
}

TEST(Protocol, WarmStartRoundTripsAndJoinsTheCacheKey)
{
    auto plain = fastRequest();
    auto warm = fastRequest();
    warm.warmStart = "neighbors";

    // Warm-started searches explore a different candidate sequence,
    // so they must not collide with cold entries...
    EXPECT_NE(warm.cacheKey(), plain.cacheKey());
    auto both = fastRequest();
    both.warmStart = "both";
    EXPECT_NE(both.cacheKey(), warm.cacheKey());

    // ...but an explicit "off" IS the cold search: historical keys
    // (and persisted caches) stay valid.
    auto off = fastRequest();
    off.warmStart = "off";
    EXPECT_EQ(off.cacheKey(), plain.cacheKey());

    auto json = warm.toJson();
    EXPECT_EQ(json.get("warm_start").asString(), "neighbors");
    auto round = CompileRequest::fromJson(Json::parse(json.dump()));
    EXPECT_EQ(round.warmStart, "neighbors");
    EXPECT_EQ(round.cacheKey(), warm.cacheKey());

    // Absent by default, so old clients see unchanged wire output.
    EXPECT_FALSE(fastRequest().toJson().has("warm_start"));
}

TEST(Protocol, RejectsUnknownWarmStartModes)
{
    auto json = fastRequest().toJson();
    json.set("warm_start", Json("banana"));
    EXPECT_THROW(CompileRequest::fromJson(json), std::exception);
}

TEST(Service, WarmStartSeedsFromTheMemoryTierAndExportsMetrics)
{
    ServeOptions options;
    options.workers = 1;
    options.warmStart = WarmStartMode::Neighbors;
    CompileService service(options);

    // First shape: empty cache, nothing to seed from.
    auto cold = service.serve(fastRequest());
    ASSERT_TRUE(cold.ok);

    // Same family, new dims: the cached winner becomes a donor.
    auto req = fastRequest();
    req.dims = {{"m", 96}, {"n", 64}, {"k", 64}};
    auto warm = service.serve(req);
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(warm.servedBy, "compile");

    auto stats = service.stats();
    EXPECT_GE(stats.metrics.at("explore.warmstart_neighbors"), 1u);
    EXPECT_GE(stats.metrics.at("explore.warmstart_seeded"), 1u);
    EXPECT_EQ(stats.metrics.at("explore.model_reloads"), 0u);

    auto body = service.prometheusText();
    EXPECT_NE(
        body.find("amos_explore_warmstart_seeded_total"),
        std::string::npos)
        << body;
    EXPECT_NE(
        body.find("amos_explore_warmstart_neighbors_total"),
        std::string::npos)
        << body;
}

TEST(Service, WarmStartModeSeparatesCacheEntries)
{
    ServeOptions options;
    options.workers = 1;
    CompileService service(options);

    auto cold = service.serve(fastRequest());
    ASSERT_TRUE(cold.ok);
    EXPECT_EQ(cold.servedBy, "compile");

    // The same shape with per-request warm-start lands on its own
    // entry (first time a compile, then a memory hit).
    auto req = fastRequest();
    req.warmStart = "neighbors";
    auto warm = service.serve(req);
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(warm.servedBy, "compile");
    auto again = service.serve(req);
    ASSERT_TRUE(again.ok);
    EXPECT_EQ(again.servedBy, "memory");

    // An invalid per-request mode is a typed error, not a crash.
    auto bad = fastRequest();
    bad.warmStart = "banana";
    auto outcome = service.serve(bad);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.error, ErrorCode::BadRequest);
}

/** Train a small snapshot off one exploration's measurements. */
std::string
writeSnapshot(const std::string &dir)
{
    LearnedModel model;
    TuneOptions options;
    options.generations = 3;
    options.numThreads = 1;
    options.sampleSink = &model;
    tune(ops::makeGemm(64, 64, 64), hw::v100(), options);
    model.fit();
    EXPECT_TRUE(model.trained());
    auto path = dir + "/model.json";
    model.saveFile(path);
    return path;
}

TEST(Server, ReloadModelVerbHotSwapsSnapshots)
{
    auto dir = freshDiskDir("reload_model");
    auto snapshot = writeSnapshot(dir);

    ServeOptions options;
    options.workers = 1;
    CompileService service(options);
    EXPECT_EQ(service.modelSnapshot(), nullptr);

    std::istringstream in(
        R"({"type":"reload_model","id":"r1","path":")" + snapshot +
        R"("})"
        "\n"
        R"({"type":"compile","id":"c1","op":"gemm","m":96,"n":64,)"
        R"("k":64,"hw":"v100","generations":2,)"
        R"("warm_start":"model"})"
        "\n"
        R"({"type":"reload_model","id":"r2","path":"/no/such"})"
        "\n"
        R"({"type":"reload_model","id":"r3"})"
        "\n");
    std::ostringstream out;
    serveStream(service, in, out);

    std::map<std::string, Json> by_id;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
        auto json = Json::parse(line);
        if (json.has("id"))
            by_id[json.get("id").asString()] = json;
    }

    // Successful reload: structured receipt with the digest.
    ASSERT_TRUE(by_id.count("r1"));
    EXPECT_TRUE(by_id["r1"].get("ok").asBool());
    const Json &receipt = by_id["r1"].get("reload_model");
    EXPECT_EQ(receipt.get("path").asString(), snapshot);
    EXPECT_EQ(receipt.get("digest").asString().size(), 16u);
    EXPECT_GT(receipt.get("samples").asInt(), 0);

    // The swapped model served the model-mode compile.
    ASSERT_TRUE(by_id.count("c1"));
    EXPECT_TRUE(by_id["c1"].get("ok").asBool());
    ASSERT_NE(service.modelSnapshot(), nullptr);
    EXPECT_TRUE(service.modelSnapshot()->trained());

    // A bad file is a structured error — and the previous snapshot
    // stays in service.
    ASSERT_TRUE(by_id.count("r2"));
    EXPECT_FALSE(by_id["r2"].get("ok").asBool());
    EXPECT_FALSE(by_id["r2"]
                     .get("reload_model")
                     .get("error")
                     .asString()
                     .empty());
    EXPECT_NE(service.modelSnapshot(), nullptr);

    // Missing "path" is a typed protocol error.
    ASSERT_TRUE(by_id.count("r3"));
    EXPECT_FALSE(by_id["r3"].get("ok").asBool());

    auto stats = service.stats();
    EXPECT_EQ(stats.metrics.at("explore.model_reloads"), 1u);
    std::filesystem::remove_all(dir);
}

TEST(Service, PreloadsModelSnapshotOnStart)
{
    auto dir = freshDiskDir("preload_model");
    auto snapshot = writeSnapshot(dir);

    ServeOptions options;
    options.workers = 1;
    options.warmStart = WarmStartMode::Model;
    options.modelSnapshotPath = snapshot;
    CompileService service(options);
    ASSERT_NE(service.modelSnapshot(), nullptr);
    EXPECT_TRUE(service.modelSnapshot()->trained());

    auto outcome = service.serve(fastRequest());
    EXPECT_TRUE(outcome.ok);

    // A missing file degrades to analytic screening, not a crash.
    ServeOptions degraded;
    degraded.workers = 1;
    degraded.warmStart = WarmStartMode::Model;
    degraded.modelSnapshotPath = dir + "/absent.json";
    CompileService fallback(degraded);
    EXPECT_EQ(fallback.modelSnapshot(), nullptr);
    EXPECT_TRUE(fallback.serve(fastRequest()).ok);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace serve
} // namespace amos
