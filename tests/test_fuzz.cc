/**
 * @file
 * Property-based fuzzing of the whole pipeline: randomly generated
 * tensor computations (random loop structures, operand roles, and
 * convolution-style compound accesses) are pushed through mapping
 * enumeration, Algorithm-1 validation, functional execution, and
 * schedule lowering / simulation, asserting the invariants that no
 * hand-picked example can cover:
 *
 *  - every enumerated mapping passes Algorithm 1;
 *  - every mapping executes exactly (both executor paths);
 *  - the permissive space contains the addressable space;
 *  - random legal schedules lower to internally consistent profiles
 *    and finite simulations.
 *
 * A second suite fuzzes Algorithm 1 directly at the matrix level:
 * random (X, Y, Z) triples constructed to be valid must validate,
 * single-bit perturbations of mapped columns must be rejected, and
 * the verdict must be stable under operand relabelling.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/intrinsics.hh"
#include "mapping/execute.hh"
#include "mapping/generate.hh"
#include "mapping/validate.hh"
#include "model/perf_model.hh"
#include "sim/simulator.hh"
#include "support/bit_matrix.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace amos {
namespace {

/** Randomly generated single-statement tensor computation. */
TensorComputation
randomComputation(Rng &rng)
{
    int n_spatial = static_cast<int>(rng.uniformInt(1, 3));
    int n_reduce = static_cast<int>(rng.uniformInt(1, 2));

    struct Axis
    {
        IterVar iv;
        int role; // bit0: in0, bit1: in1 (output implied for spatial)
        int conv_partner = -1; // reduction iter fused additively
    };
    std::vector<Axis> spatial, reduce;
    for (int i = 0; i < n_spatial; ++i) {
        Axis axis{{Var("p" + std::to_string(i)),
                   rng.uniformInt(1, 4), IterKind::Spatial},
                  0};
        // Spatial roles: in0-only, in1-only, both, or neither
        // (output-only iterators are rejected by the computation
        // validator unless they appear in an input, so force one).
        axis.role = static_cast<int>(rng.uniformInt(1, 3));
        spatial.push_back(axis);
    }
    for (int i = 0; i < n_reduce; ++i) {
        Axis axis{{Var("r" + std::to_string(i)),
                   rng.uniformInt(1, 3), IterKind::Reduction},
                  0};
        axis.role = static_cast<int>(rng.uniformInt(1, 3));
        reduce.push_back(axis);
    }
    // Convolution-style compound access: with probability, a spatial
    // iterator that reads in0 shares an input dimension with a
    // reduction iterator that reads in0 (index p + r).
    for (auto &sp : spatial) {
        if (!(sp.role & 1))
            continue;
        if (!rng.flip(0.4))
            continue;
        for (int j = 0; j < n_reduce; ++j) {
            if ((reduce[j].role & 1) && reduce[j].conv_partner < 0) {
                sp.conv_partner = j;
                reduce[j].conv_partner = 1; // taken
                break;
            }
        }
    }

    // Assemble accesses.
    std::vector<IterVar> iters;
    for (const auto &a : spatial)
        iters.push_back(a.iv);
    for (const auto &a : reduce)
        iters.push_back(a.iv);

    std::vector<Expr> in0_idx, in1_idx, out_idx;
    std::vector<std::int64_t> in0_shape, in1_shape, out_shape;
    for (const auto &a : spatial) {
        out_idx.push_back(a.iv.var);
        out_shape.push_back(a.iv.extent);
        if (a.role & 1) {
            if (a.conv_partner >= 0) {
                const auto &r = reduce[a.conv_partner].iv;
                in0_idx.push_back(a.iv.var + r.var);
                in0_shape.push_back(a.iv.extent + r.extent - 1);
            } else {
                in0_idx.push_back(a.iv.var);
                in0_shape.push_back(a.iv.extent);
            }
        }
        if (a.role & 2) {
            in1_idx.push_back(a.iv.var);
            in1_shape.push_back(a.iv.extent);
        }
    }
    for (std::size_t j = 0; j < reduce.size(); ++j) {
        const auto &a = reduce[j];
        bool fused_into_spatial = false;
        for (const auto &sp : spatial)
            fused_into_spatial |=
                sp.conv_partner == static_cast<int>(j);
        if ((a.role & 1) && !fused_into_spatial) {
            in0_idx.push_back(a.iv.var);
            in0_shape.push_back(a.iv.extent);
        }
        if (a.role & 2) {
            in1_idx.push_back(a.iv.var);
            in1_shape.push_back(a.iv.extent);
        }
        if ((a.role & 1) && fused_into_spatial && !(a.role & 2)) {
            // Already used via the compound access: fine.
            continue;
        }
    }
    // Guarantee non-empty inputs: fall back to indexing the first
    // iterator.
    if (in0_idx.empty()) {
        in0_idx.push_back(iters.front().var);
        in0_shape.push_back(iters.front().extent);
    }
    if (in1_idx.empty()) {
        in1_idx.push_back(iters.back().var);
        in1_shape.push_back(iters.back().extent);
    }

    TensorDecl in0("A", in0_shape);
    TensorDecl in1("B", in1_shape);
    TensorDecl out("out", out_shape);
    return TensorComputation("fuzz", iters, out, out_idx,
                             {{in0, in0_idx}, {in1, in1_idx}});
}

class PipelineFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(PipelineFuzz, EnumerationValidationExecution)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    auto comp = randomComputation(rng);
    SCOPED_TRACE(comp.toString());

    for (const auto &intr :
         {isa::wmmaTiny(), isa::virtualConv(2, 2, 2, 2),
          isa::virtualGemv(2, 2)}) {
        SCOPED_TRACE(intr.name());
        GeneratorOptions addressable;
        GeneratorOptions permissive;
        permissive.policy = LegalityPolicy::Permissive;
        auto strict = enumerateMappings(comp, intr, addressable);
        auto loose = enumerateMappings(comp, intr, permissive);

        // Containment: addressable subset of permissive.
        std::set<std::string> loose_sigs;
        for (const auto &m : loose)
            loose_sigs.insert(m.signature(comp));
        EXPECT_GE(loose.size(), strict.size());
        for (const auto &m : strict)
            EXPECT_TRUE(loose_sigs.count(m.signature(comp)))
                << m.signature(comp);

        // Every mapping validates and executes exactly.
        for (const auto &m : loose) {
            MappingPlan plan(comp, intr, m);
            ASSERT_TRUE(plan.valid())
                << m.signature(comp) << ": "
                << plan.validation().failure;
            EXPECT_LE(mappedVsReferenceError(plan), 1e-4f)
                << m.signature(comp);
        }
    }
}

TEST_P(PipelineFuzz, SchedulesLowerConsistently)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
    auto comp = randomComputation(rng);
    auto hw = hw::v100();
    auto plans =
        enumeratePlans(comp, isa::wmma(4, 4, 4), {});
    if (plans.empty())
        return; // nothing to schedule; other fuzz cases cover it
    SCOPED_TRACE(comp.toString());

    for (int i = 0; i < 8; ++i) {
        const auto &plan = plans[static_cast<std::size_t>(
            rng.uniformInt(0,
                           static_cast<std::int64_t>(plans.size()) -
                               1))];
        auto sched = sampleSchedule(plan, rng);
        auto prof = lowerKernel(plan, sched, hw);

        // Grid covers the iteration space.
        EXPECT_GE(prof.numBlocks * prof.warpsPerBlock *
                      prof.serialCallsPerWarp,
                  prof.totalCalls);
        // Padding inflation is at least one.
        EXPECT_GE(prof.paddingWaste, 1.0 - 1e-9);
        // Traffic and footprints are non-negative and finite.
        EXPECT_GE(prof.globalLoadBytesPerBlock, 0);
        EXPECT_GE(prof.globalStoreBytesPerBlock, 0);
        EXPECT_GE(prof.sharedBytesPerBlock, 0);

        if (prof.valid()) {
            auto est = modelEstimate(prof, hw);
            auto sim = simulateKernel(prof, hw);
            EXPECT_TRUE(std::isfinite(est.totalCycles));
            EXPECT_TRUE(std::isfinite(sim.cycles));
            EXPECT_GT(sim.cycles, 0.0);
            EXPECT_LE(sim.peakFraction, 1.0 + 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range(0, 24));

/** Random rows x cols matrix with roughly `density` set bits. */
BitMatrix
randomBitMatrix(Rng &rng, std::size_t rows, std::size_t cols,
                double density = 0.5)
{
    BitMatrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m.set(r, c, rng.flip(density));
    return m;
}

/**
 * Random injective matching: every intrinsic iteration k is assigned
 * a distinct software iteration (requires n_sw >= n_intr). These are
 * exactly the matchings Algorithm 1 is built around.
 */
BitMatrix
randomInjectiveMatching(Rng &rng, std::size_t n_intr,
                        std::size_t n_sw)
{
    std::vector<std::size_t> cols(n_sw);
    for (std::size_t i = 0; i < n_sw; ++i)
        cols[i] = i;
    // Fisher-Yates prefix shuffle.
    for (std::size_t i = 0; i < n_intr; ++i) {
        auto j = static_cast<std::size_t>(rng.uniformInt(
            static_cast<std::int64_t>(i),
            static_cast<std::int64_t>(n_sw) - 1));
        std::swap(cols[i], cols[j]);
    }
    BitMatrix y(n_intr, n_sw);
    for (std::size_t k = 0; k < n_intr; ++k)
        y.set(k, cols[k], true);
    return y;
}

class Algorithm1Fuzz : public ::testing::TestWithParam<int>
{
  protected:
    Rng rng{static_cast<std::uint64_t>(GetParam()) * 6151 + 101};
};

TEST_P(Algorithm1Fuzz, IdentityMatchingIsAlwaysValid)
{
    // Y = I, Z = X: the intrinsic is the computation. Valid even
    // under the strict (no-relaxation) algorithm, and the derived
    // matrices are X itself.
    auto ops = static_cast<std::size_t>(rng.uniformInt(1, 4));
    auto n = static_cast<std::size_t>(rng.uniformInt(1, 6));
    auto x = randomBitMatrix(rng, ops, n);
    auto res =
        validateMatching(x, BitMatrix::identity(n), x, false);
    EXPECT_TRUE(res.valid) << res.failure;
    EXPECT_EQ(res.softwareAccess, x);
    EXPECT_EQ(res.hardwareAccess, x);
}

TEST_P(Algorithm1Fuzz, DerivedAccessFromInjectiveMatchingValidates)
{
    // Construct X := Z * Y from a random Z and a random injective
    // matching Y. Then X' = Z * Y = X by construction, and
    // Z' = X * Yt = Z * (Y * Yt) = Z because injective matchings
    // satisfy Y * Yt = I. Strict validity is guaranteed.
    auto ops = static_cast<std::size_t>(rng.uniformInt(1, 4));
    auto n_intr = static_cast<std::size_t>(rng.uniformInt(1, 4));
    auto n_sw = n_intr + static_cast<std::size_t>(
                             rng.uniformInt(0, 3));
    auto z = randomBitMatrix(rng, ops, n_intr);
    auto y = randomInjectiveMatching(rng, n_intr, n_sw);
    auto x = z.star(y);

    auto strict = validateMatching(x, y, z, false);
    EXPECT_TRUE(strict.valid) << strict.failure;
    auto partial = validateMatching(x, y, z, true);
    EXPECT_TRUE(partial.valid) << partial.failure;
    EXPECT_EQ(strict.softwareAccess, x);
    EXPECT_EQ(strict.hardwareAccess, z);
}

TEST_P(Algorithm1Fuzz, FlippingAMappedAccessBitInvalidates)
{
    // Perturbing X in any software iteration column that Y actually
    // maps breaks X' = X there: the algorithm must report a failure
    // at exactly that (operand, iteration).
    auto ops = static_cast<std::size_t>(rng.uniformInt(1, 4));
    auto n_intr = static_cast<std::size_t>(rng.uniformInt(1, 4));
    auto n_sw = n_intr + static_cast<std::size_t>(
                             rng.uniformInt(0, 3));
    auto z = randomBitMatrix(rng, ops, n_intr);
    auto y = randomInjectiveMatching(rng, n_intr, n_sw);
    auto x = z.star(y);

    // Pick a mapped software column (one with a set Y bit).
    auto k = static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(n_intr) - 1));
    std::size_t mapped_col = 0;
    for (std::size_t s = 0; s < n_sw; ++s)
        if (y.at(k, s))
            mapped_col = s;
    auto r = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(ops) - 1));
    x.set(r, mapped_col, !x.at(r, mapped_col));

    auto res = validateMatching(x, y, z, true);
    EXPECT_FALSE(res.valid);
    EXPECT_FALSE(res.failure.empty());
}

TEST_P(Algorithm1Fuzz, OperandPermutationPreservesVerdict)
{
    // Relabelling operands (the same row permutation applied to X
    // and Z) cannot change the verdict: the checks are row-wise.
    auto ops = static_cast<std::size_t>(rng.uniformInt(2, 4));
    auto n_intr = static_cast<std::size_t>(rng.uniformInt(1, 4));
    auto n_sw = static_cast<std::size_t>(rng.uniformInt(
        static_cast<std::int64_t>(n_intr), 6));
    auto x = randomBitMatrix(rng, ops, n_sw);
    auto y = randomBitMatrix(rng, n_intr, n_sw, 0.3);
    auto z = randomBitMatrix(rng, ops, n_intr);
    auto base = validateMatching(x, y, z, true);

    // Random row permutation.
    std::vector<std::size_t> perm(ops);
    for (std::size_t i = 0; i < ops; ++i)
        perm[i] = i;
    for (std::size_t i = 0; i + 1 < ops; ++i) {
        auto j = static_cast<std::size_t>(rng.uniformInt(
            static_cast<std::int64_t>(i),
            static_cast<std::int64_t>(ops) - 1));
        std::swap(perm[i], perm[j]);
    }
    BitMatrix xp(ops, n_sw), zp(ops, n_intr);
    for (std::size_t i = 0; i < ops; ++i) {
        for (std::size_t c = 0; c < n_sw; ++c)
            xp.set(i, c, x.at(perm[i], c));
        for (std::size_t c = 0; c < n_intr; ++c)
            zp.set(i, c, z.at(perm[i], c));
    }
    auto permuted = validateMatching(xp, y, zp, true);
    EXPECT_EQ(base.valid, permuted.valid)
        << base.failure << " vs " << permuted.failure;
}

TEST_P(Algorithm1Fuzz, ConflictingDoubleMatchingIsRejected)
{
    // Start from a valid injective matching, then additionally map
    // an already-mapped software iteration to a second intrinsic
    // iteration whose access column strictly adds operand bits. The
    // union in X' = Z * Y then disagrees with X: must be invalid.
    auto ops = static_cast<std::size_t>(rng.uniformInt(2, 4));
    std::size_t n_intr = 2 + static_cast<std::size_t>(
                                 rng.uniformInt(0, 2));
    auto n_sw = n_intr + static_cast<std::size_t>(
                             rng.uniformInt(0, 2));
    auto z = randomBitMatrix(rng, ops, n_intr);
    // Force intrinsic iteration 0 to access an operand iteration 1
    // does not, so their columns conflict.
    z.set(0, 0, true);
    z.set(0, 1, false);
    auto y = randomInjectiveMatching(rng, n_intr, n_sw);
    auto x = z.star(y);

    // Software column matched to intrinsic iteration 1.
    std::size_t s1 = 0;
    for (std::size_t s = 0; s < n_sw; ++s)
        if (y.at(1, s))
            s1 = s;
    y.set(0, s1, true); // now s1 drives intrinsic iters 0 and 1

    auto res = validateMatching(x, y, z, true);
    EXPECT_FALSE(res.valid);
    EXPECT_FALSE(res.failure.empty());
}

TEST_P(Algorithm1Fuzz, VerdictIsDeterministic)
{
    auto ops = static_cast<std::size_t>(rng.uniformInt(1, 4));
    auto n_intr = static_cast<std::size_t>(rng.uniformInt(1, 4));
    auto n_sw = static_cast<std::size_t>(rng.uniformInt(1, 6));
    auto x = randomBitMatrix(rng, ops, n_sw);
    auto y = randomBitMatrix(rng, n_intr, n_sw, 0.3);
    auto z = randomBitMatrix(rng, ops, n_intr);
    auto a = validateMatching(x, y, z, true);
    auto b = validateMatching(x, y, z, true);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.failure, b.failure);
    EXPECT_EQ(a.softwareAccess, b.softwareAccess);
    EXPECT_EQ(a.hardwareAccess, b.hardwareAccess);
}

TEST(Algorithm1, DimensionMismatchesPanic)
{
    // Shape preconditions hold regardless of contents: operand
    // counts must agree and Y must be (intrinsic x software).
    BitMatrix x(2, 3), y(2, 3), z(2, 2);
    EXPECT_THROW(validateMatching(BitMatrix(1, 3), y, z, true),
                 PanicError);
    EXPECT_THROW(validateMatching(x, BitMatrix(1, 3), z, true),
                 PanicError);
    EXPECT_THROW(validateMatching(x, BitMatrix(2, 2), z, true),
                 PanicError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Algorithm1Fuzz,
                         ::testing::Range(0, 48));

} // namespace
} // namespace amos
