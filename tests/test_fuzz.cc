/**
 * @file
 * Property-based fuzzing of the whole pipeline: randomly generated
 * tensor computations (random loop structures, operand roles, and
 * convolution-style compound accesses) are pushed through mapping
 * enumeration, Algorithm-1 validation, functional execution, and
 * schedule lowering / simulation, asserting the invariants that no
 * hand-picked example can cover:
 *
 *  - every enumerated mapping passes Algorithm 1;
 *  - every mapping executes exactly (both executor paths);
 *  - the permissive space contains the addressable space;
 *  - random legal schedules lower to internally consistent profiles
 *    and finite simulations.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/intrinsics.hh"
#include "mapping/execute.hh"
#include "mapping/generate.hh"
#include "model/perf_model.hh"
#include "sim/simulator.hh"
#include "support/rng.hh"

namespace amos {
namespace {

/** Randomly generated single-statement tensor computation. */
TensorComputation
randomComputation(Rng &rng)
{
    int n_spatial = static_cast<int>(rng.uniformInt(1, 3));
    int n_reduce = static_cast<int>(rng.uniformInt(1, 2));

    struct Axis
    {
        IterVar iv;
        int role; // bit0: in0, bit1: in1 (output implied for spatial)
        int conv_partner = -1; // reduction iter fused additively
    };
    std::vector<Axis> spatial, reduce;
    for (int i = 0; i < n_spatial; ++i) {
        Axis axis{{Var("p" + std::to_string(i)),
                   rng.uniformInt(1, 4), IterKind::Spatial},
                  0};
        // Spatial roles: in0-only, in1-only, both, or neither
        // (output-only iterators are rejected by the computation
        // validator unless they appear in an input, so force one).
        axis.role = static_cast<int>(rng.uniformInt(1, 3));
        spatial.push_back(axis);
    }
    for (int i = 0; i < n_reduce; ++i) {
        Axis axis{{Var("r" + std::to_string(i)),
                   rng.uniformInt(1, 3), IterKind::Reduction},
                  0};
        axis.role = static_cast<int>(rng.uniformInt(1, 3));
        reduce.push_back(axis);
    }
    // Convolution-style compound access: with probability, a spatial
    // iterator that reads in0 shares an input dimension with a
    // reduction iterator that reads in0 (index p + r).
    for (auto &sp : spatial) {
        if (!(sp.role & 1))
            continue;
        if (!rng.flip(0.4))
            continue;
        for (int j = 0; j < n_reduce; ++j) {
            if ((reduce[j].role & 1) && reduce[j].conv_partner < 0) {
                sp.conv_partner = j;
                reduce[j].conv_partner = 1; // taken
                break;
            }
        }
    }

    // Assemble accesses.
    std::vector<IterVar> iters;
    for (const auto &a : spatial)
        iters.push_back(a.iv);
    for (const auto &a : reduce)
        iters.push_back(a.iv);

    std::vector<Expr> in0_idx, in1_idx, out_idx;
    std::vector<std::int64_t> in0_shape, in1_shape, out_shape;
    for (const auto &a : spatial) {
        out_idx.push_back(a.iv.var);
        out_shape.push_back(a.iv.extent);
        if (a.role & 1) {
            if (a.conv_partner >= 0) {
                const auto &r = reduce[a.conv_partner].iv;
                in0_idx.push_back(a.iv.var + r.var);
                in0_shape.push_back(a.iv.extent + r.extent - 1);
            } else {
                in0_idx.push_back(a.iv.var);
                in0_shape.push_back(a.iv.extent);
            }
        }
        if (a.role & 2) {
            in1_idx.push_back(a.iv.var);
            in1_shape.push_back(a.iv.extent);
        }
    }
    for (std::size_t j = 0; j < reduce.size(); ++j) {
        const auto &a = reduce[j];
        bool fused_into_spatial = false;
        for (const auto &sp : spatial)
            fused_into_spatial |=
                sp.conv_partner == static_cast<int>(j);
        if ((a.role & 1) && !fused_into_spatial) {
            in0_idx.push_back(a.iv.var);
            in0_shape.push_back(a.iv.extent);
        }
        if (a.role & 2) {
            in1_idx.push_back(a.iv.var);
            in1_shape.push_back(a.iv.extent);
        }
        if ((a.role & 1) && fused_into_spatial && !(a.role & 2)) {
            // Already used via the compound access: fine.
            continue;
        }
    }
    // Guarantee non-empty inputs: fall back to indexing the first
    // iterator.
    if (in0_idx.empty()) {
        in0_idx.push_back(iters.front().var);
        in0_shape.push_back(iters.front().extent);
    }
    if (in1_idx.empty()) {
        in1_idx.push_back(iters.back().var);
        in1_shape.push_back(iters.back().extent);
    }

    TensorDecl in0("A", in0_shape);
    TensorDecl in1("B", in1_shape);
    TensorDecl out("out", out_shape);
    return TensorComputation("fuzz", iters, out, out_idx,
                             {{in0, in0_idx}, {in1, in1_idx}});
}

class PipelineFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(PipelineFuzz, EnumerationValidationExecution)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    auto comp = randomComputation(rng);
    SCOPED_TRACE(comp.toString());

    for (const auto &intr :
         {isa::wmmaTiny(), isa::virtualConv(2, 2, 2, 2),
          isa::virtualGemv(2, 2)}) {
        SCOPED_TRACE(intr.name());
        GeneratorOptions addressable;
        GeneratorOptions permissive;
        permissive.policy = LegalityPolicy::Permissive;
        auto strict = enumerateMappings(comp, intr, addressable);
        auto loose = enumerateMappings(comp, intr, permissive);

        // Containment: addressable subset of permissive.
        std::set<std::string> loose_sigs;
        for (const auto &m : loose)
            loose_sigs.insert(m.signature(comp));
        EXPECT_GE(loose.size(), strict.size());
        for (const auto &m : strict)
            EXPECT_TRUE(loose_sigs.count(m.signature(comp)))
                << m.signature(comp);

        // Every mapping validates and executes exactly.
        for (const auto &m : loose) {
            MappingPlan plan(comp, intr, m);
            ASSERT_TRUE(plan.valid())
                << m.signature(comp) << ": "
                << plan.validation().failure;
            EXPECT_LE(mappedVsReferenceError(plan), 1e-4f)
                << m.signature(comp);
        }
    }
}

TEST_P(PipelineFuzz, SchedulesLowerConsistently)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
    auto comp = randomComputation(rng);
    auto hw = hw::v100();
    auto plans =
        enumeratePlans(comp, isa::wmma(4, 4, 4), {});
    if (plans.empty())
        return; // nothing to schedule; other fuzz cases cover it
    SCOPED_TRACE(comp.toString());

    for (int i = 0; i < 8; ++i) {
        const auto &plan = plans[static_cast<std::size_t>(
            rng.uniformInt(0,
                           static_cast<std::int64_t>(plans.size()) -
                               1))];
        auto sched = sampleSchedule(plan, rng);
        auto prof = lowerKernel(plan, sched, hw);

        // Grid covers the iteration space.
        EXPECT_GE(prof.numBlocks * prof.warpsPerBlock *
                      prof.serialCallsPerWarp,
                  prof.totalCalls);
        // Padding inflation is at least one.
        EXPECT_GE(prof.paddingWaste, 1.0 - 1e-9);
        // Traffic and footprints are non-negative and finite.
        EXPECT_GE(prof.globalLoadBytesPerBlock, 0);
        EXPECT_GE(prof.globalStoreBytesPerBlock, 0);
        EXPECT_GE(prof.sharedBytesPerBlock, 0);

        if (prof.valid()) {
            auto est = modelEstimate(prof, hw);
            auto sim = simulateKernel(prof, hw);
            EXPECT_TRUE(std::isfinite(est.totalCycles));
            EXPECT_TRUE(std::isfinite(sim.cycles));
            EXPECT_GT(sim.cycles, 0.0);
            EXPECT_LE(sim.peakFraction, 1.0 + 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range(0, 24));

} // namespace
} // namespace amos
