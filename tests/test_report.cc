/**
 * @file
 * Tests for the explainability layer: cycle attribution arithmetic
 * (buckets sum to the model's total, one dominant verdict), golden
 * bottleneck classifications on known workloads (bandwidth-starved
 * GEMV vs compute-bound GEMM), roofline coordinates, explain-report
 * JSON schema and round-trip, search-telemetry invariants, the CSV
 * serialiser, and the Prometheus text exposition self-check.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>

#include "amos/amos.hh"
#include "explore/trace_io.hh"
#include "ops/operators.hh"
#include "report/explain.hh"
#include "report/prometheus.hh"
#include "support/histogram.hh"
#include "support/metrics.hh"

namespace amos {
namespace {

using report::attributeCycles;
using report::Bottleneck;
using report::bottleneckName;
using report::ExplainReport;
using report::explainResult;
using report::explainToJson;
using report::explainToText;

/** Tune options small enough for unit tests, deterministic seed. */
TuneOptions
fastTuning()
{
    TuneOptions options;
    options.population = 16;
    options.generations = 3;
    options.measureTopK = 4;
    options.seed = 2022;
    options.numThreads = 1;
    return options;
}

ExplainReport
compileAndExplain(const TensorComputation &comp,
                  const HardwareSpec &hw)
{
    Compiler compiler(hw, fastTuning());
    auto result = compiler.compile(comp);
    return explainResult(result, comp, hw);
}

double
bucketSum(const report::CycleAttribution &a)
{
    return a.computeCycles + a.sharedReadCycles +
           a.globalReadCycles + a.globalWriteCycles;
}

TEST(Attribution, BandwidthStarvedEstimateIsReadBound)
{
    ModelEstimate est;
    est.computeBlock = 100.0;
    est.readGlobal = 800.0;
    est.writeGlobal = 100.0;
    est.computeWarp = 30.0;
    est.readShared = 70.0;
    est.totalCycles = 2000.0;

    auto a = attributeCycles(est);
    // compute share 100/1000 split 30/70 across the warp terms.
    EXPECT_DOUBLE_EQ(a.computeCycles, 60.0);
    EXPECT_DOUBLE_EQ(a.sharedReadCycles, 140.0);
    EXPECT_DOUBLE_EQ(a.globalReadCycles, 1600.0);
    EXPECT_DOUBLE_EQ(a.globalWriteCycles, 200.0);
    EXPECT_DOUBLE_EQ(bucketSum(a), est.totalCycles);
    EXPECT_EQ(a.bottleneck, Bottleneck::GlobalRead);
    EXPECT_DOUBLE_EQ(a.dominance, 0.8);
}

TEST(Attribution, ComputeHeavyEstimateIsComputeBound)
{
    ModelEstimate est;
    est.computeBlock = 800.0;
    est.readGlobal = 150.0;
    est.writeGlobal = 50.0;
    est.computeWarp = 90.0;
    est.readShared = 10.0;
    est.totalCycles = 5000.0;

    auto a = attributeCycles(est);
    EXPECT_DOUBLE_EQ(a.computeCycles, 5000.0 * 0.8 * 0.9);
    EXPECT_DOUBLE_EQ(bucketSum(a), est.totalCycles);
    EXPECT_EQ(a.bottleneck, Bottleneck::Compute);
}

TEST(Attribution, DegenerateEstimateDefaultsToCompute)
{
    ModelEstimate est; // all terms zero
    auto a = attributeCycles(est);
    EXPECT_EQ(a.bottleneck, Bottleneck::Compute);
    EXPECT_DOUBLE_EQ(a.dominance, 1.0);
    EXPECT_DOUBLE_EQ(bucketSum(a), 0.0);
}

TEST(Attribution, WireNamesAreStable)
{
    EXPECT_STREQ(bottleneckName(Bottleneck::Compute), "compute");
    EXPECT_STREQ(bottleneckName(Bottleneck::SharedRead),
                 "shared_read");
    EXPECT_STREQ(bottleneckName(Bottleneck::GlobalRead),
                 "global_read");
    EXPECT_STREQ(bottleneckName(Bottleneck::GlobalWrite),
                 "global_write");
}

TEST(Roofline, CoordinatesFollowTheProfile)
{
    KernelProfile prof;
    prof.numBlocks = 10;
    prof.globalLoadBytesPerBlock = 800;
    prof.globalStoreBytesPerBlock = 200;
    prof.usefulOps = 100000;

    auto hw = hw::v100();
    auto r = report::rooflinePoint(prof, hw, 50.0);
    EXPECT_DOUBLE_EQ(r.operationalIntensity, 10.0);
    EXPECT_DOUBLE_EQ(r.attainedOpsPerCycle, 2000.0);
    EXPECT_DOUBLE_EQ(r.peakOpsPerCycle, hw.peakOpsPerCycle());
    EXPECT_DOUBLE_EQ(r.bandwidthOpsPerCycle,
                     10.0 * hw.global.readBytesPerCycle);
    EXPECT_DOUBLE_EQ(r.ridgeIntensity,
                     hw.peakOpsPerCycle() /
                         hw.global.readBytesPerCycle);
    EXPECT_EQ(r.memoryBound,
              r.operationalIntensity < r.ridgeIntensity);
}

TEST(GoldenWorkloads, GemvOnV100IsReadBound)
{
    // A 256x256 GEMV streams its matrix once: ~2 flops per loaded
    // element, far left of the V100 ridge.
    auto rep = compileAndExplain(ops::makeGemv(256, 256),
                                 hw::v100());
    ASSERT_TRUE(rep.tensorized);
    ASSERT_FALSE(rep.candidates.empty());
    const auto &winner = rep.candidates.front();
    EXPECT_TRUE(winner.attribution.bottleneck ==
                    Bottleneck::SharedRead ||
                winner.attribution.bottleneck ==
                    Bottleneck::GlobalRead)
        << "gemv classified "
        << bottleneckName(winner.attribution.bottleneck);
    EXPECT_TRUE(winner.roofline.memoryBound);
}

TEST(GoldenWorkloads, GemmOnXeonIsComputeBound)
{
    // On the AVX-512 target the FMA peak is modest relative to the
    // modelled cache bandwidth, so a square GEMM lands compute-bound.
    // The VNNI intrinsic is int8, so the workload is the quantized
    // u8xi8 GEMM.
    auto rep = compileAndExplain(ops::makeQuantizedGemm(64, 64, 64),
                                 hw::xeonSilver4110());
    ASSERT_TRUE(rep.tensorized);
    ASSERT_FALSE(rep.candidates.empty());
    EXPECT_EQ(rep.candidates.front().attribution.bottleneck,
              Bottleneck::Compute);
}

TEST(ExplainReport, AttributionSumsToModelTotalOnRealWinner)
{
    auto rep = compileAndExplain(ops::makeGemv(256, 256),
                                 hw::v100());
    ASSERT_FALSE(rep.candidates.empty());
    for (const auto &cand : rep.candidates) {
        const auto &a = cand.attribution;
        ASSERT_GT(a.totalCycles, 0.0);
        EXPECT_NEAR(bucketSum(a), a.totalCycles,
                    1e-9 * a.totalCycles);
        EXPECT_GE(a.dominance, 0.25); // argmax of four buckets
        EXPECT_LE(a.dominance, 1.0);
        ASSERT_EQ(cand.levels.size(), 2u);
        EXPECT_EQ(cand.levels[0].level, "warp");
        EXPECT_EQ(cand.levels[1].level, "block");
    }
}

TEST(ExplainReport, TelemetryCoversEveryGeneration)
{
    auto hw = hw::v100();
    auto comp = ops::makeGemm(64, 64, 64);
    Compiler compiler(hw, fastTuning());
    auto result = compiler.compile(comp);
    auto rep = explainResult(result, comp, hw);

    // One row per GA generation at minimum; exploit rows follow.
    int search_rows = 0;
    for (const auto &row : rep.telemetry) {
        if (row.phase == "search")
            ++search_rows;
        else
            EXPECT_EQ(row.phase, "exploit");
        EXPECT_GT(row.populationSize, 0);
        EXPECT_GE(row.distinctGenomes, row.distinctMappings > 0
                                           ? std::size_t{1}
                                           : std::size_t{0});
        EXPECT_GE(row.measuredNew, 0);
        EXPECT_GE(row.measuredReused, 0);
    }
    EXPECT_GE(search_rows, fastTuning().generations);

    // The incumbent series never worsens within the search phase.
    double best = 0.0;
    for (const auto &row : rep.telemetry) {
        if (row.phase != "search" || row.bestMeasuredCycles <= 0)
            continue;
        if (best > 0) {
            EXPECT_LE(row.bestMeasuredCycles, best * (1 + 1e-12));
        }
        best = row.bestMeasuredCycles;
    }
}

TEST(ExplainReport, TelemetryIsThreadCountInvariant)
{
    auto hw = hw::v100();
    auto comp = ops::makeGemm(64, 64, 64);
    TuneOptions serial = fastTuning();
    TuneOptions parallel = fastTuning();
    parallel.numThreads = 4;

    auto a = tune(comp, hw, serial);
    auto b = tune(comp, hw, parallel);
    ASSERT_EQ(a.telemetry.size(), b.telemetry.size());
    for (std::size_t i = 0; i < a.telemetry.size(); ++i) {
        const auto &ra = a.telemetry[i];
        const auto &rb = b.telemetry[i];
        EXPECT_EQ(ra.generation, rb.generation);
        EXPECT_EQ(ra.phase, rb.phase);
        EXPECT_EQ(ra.populationSize, rb.populationSize);
        EXPECT_EQ(ra.distinctMappings, rb.distinctMappings);
        EXPECT_EQ(ra.distinctGenomes, rb.distinctGenomes);
        EXPECT_EQ(ra.measuredNew, rb.measuredNew);
        EXPECT_EQ(ra.measuredReused, rb.measuredReused);
        EXPECT_DOUBLE_EQ(ra.bestMeasuredCycles,
                         rb.bestMeasuredCycles);
        EXPECT_DOUBLE_EQ(ra.meanMeasuredCycles,
                         rb.meanMeasuredCycles);
    }
}

TEST(ExplainReport, JsonSchemaAndRoundTrip)
{
    auto hw = hw::v100();
    auto comp = ops::makeGemm(64, 64, 64);
    Compiler compiler(hw, fastTuning());
    auto result = compiler.compile(comp);
    auto rep = explainResult(result, comp, hw);
    Json json = explainToJson(rep);

    for (const char *key :
         {"workload", "hardware", "flops", "tensorized", "cycles",
          "milliseconds", "gflops", "mappings_explored",
          "measurements", "winner", "runners_up",
          "model_agreement", "telemetry"})
        EXPECT_TRUE(json.has(key)) << "missing key " << key;

    const Json &winner = json.get("winner");
    EXPECT_TRUE(winner.has("attribution"));
    EXPECT_TRUE(winner.has("levels"));
    EXPECT_TRUE(winner.has("roofline"));
    const Json &attr = winner.get("attribution");
    std::set<std::string> verdicts{"compute", "shared_read",
                                   "global_read", "global_write"};
    EXPECT_EQ(verdicts.count(
                  attr.get("bottleneck").asString()),
              1u);
    EXPECT_EQ(json.get("telemetry").size(), rep.telemetry.size());

    // Round-trip through the writer+parser preserves everything the
    // CI smoke and dashboards read.
    Json reparsed = Json::parse(json.dump());
    EXPECT_EQ(reparsed.dump(), json.dump());
    EXPECT_EQ(reparsed.get("workload").asString(), rep.workload);
    EXPECT_NEAR(reparsed.get("cycles").asNumber(), rep.cycles,
                1e-9 * rep.cycles);
    EXPECT_EQ(reparsed.get("winner")
                  .get("attribution")
                  .get("bottleneck")
                  .asString(),
              bottleneckName(rep.candidates.front()
                                 .attribution.bottleneck));
}

TEST(ExplainReport, TextReportNamesTheVerdict)
{
    auto rep = compileAndExplain(ops::makeGemv(256, 256),
                                 hw::v100());
    auto text = explainToText(rep);
    EXPECT_NE(text.find("## Verdict"), std::string::npos);
    EXPECT_NE(text.find("-bound"), std::string::npos);
    EXPECT_NE(text.find("## Cycle attribution"),
              std::string::npos);
    EXPECT_NE(text.find("## Roofline"), std::string::npos);
    EXPECT_NE(text.find("## Search telemetry"), std::string::npos);
}

TEST(ExplainReport, ScalarFallbackExplainsItself)
{
    // A result that fell back to scalar code has no winner to
    // attribute; the report must say so instead of crashing.
    auto comp = ops::makeGemm(64, 64, 64);
    CompileResult result; // tensorized = false, no tuning outcome
    result.cycles = 1234.0;
    result.milliseconds = 0.001;
    auto rep = explainResult(result, comp, hw::v100());
    EXPECT_FALSE(rep.tensorized);
    EXPECT_TRUE(rep.candidates.empty());
    Json json = explainToJson(rep);
    EXPECT_FALSE(json.has("winner"));
    auto text = explainToText(rep);
    EXPECT_NE(text.find("not tensorized"), std::string::npos);
}

TEST(ExplainReport, CacheReplayCarriesAWinner)
{
    auto hw = hw::v100();
    auto comp = ops::makeGemm(64, 64, 64);
    Compiler compiler(hw, fastTuning());
    TuningCache cache;
    auto first = compiler.compileWithCache(comp, cache);
    ASSERT_TRUE(first.tensorized);
    auto replay = compiler.compileWithCache(comp, cache);
    ASSERT_TRUE(replay.tensorized);
    ASSERT_TRUE(replay.tuning.bestPlan.has_value());

    auto rep = explainResult(replay, comp, hw);
    ASSERT_FALSE(rep.candidates.empty());
    EXPECT_EQ(rep.candidates.front().role, "winner");
    EXPECT_GT(rep.candidates.front().attribution.totalCycles, 0.0);
    // No search ran, so there is no telemetry to report.
    EXPECT_TRUE(rep.telemetry.empty());
}

TEST(TelemetryCsv, HeaderAndRowsMatch)
{
    GenerationTelemetry row;
    row.generation = 2;
    row.phase = "exploit";
    row.populationSize = 16;
    row.distinctMappings = 3;
    row.distinctGenomes = 12;
    row.measuredNew = 4;
    row.measuredReused = 7;
    auto csv = telemetryToCsv({row});
    std::istringstream lines(csv);
    std::string header, data;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_EQ(header,
              "generation,phase,population,distinct_mappings,"
              "distinct_genomes,measured_new,measured_reused,"
              "best_predicted,mean_predicted,best_measured,"
              "mean_measured");
    ASSERT_TRUE(std::getline(lines, data));
    EXPECT_EQ(data.substr(0, 20), "2,exploit,16,3,12,4,");
}

TEST(Prometheus, NamesAreSanitised)
{
    EXPECT_EQ(report::prometheusName("serve.requests"),
              "amos_serve_requests");
    EXPECT_EQ(report::prometheusName("cache.memory-hits"),
              "amos_cache_memory_hits");
    EXPECT_EQ(report::prometheusName("latency ms"),
              "amos_latency_ms");
}

TEST(Prometheus, ExpositionCarriesTypedSeries)
{
    MetricsRegistry registry;
    registry.counter("serve.requests").add(41);
    registry.counter("serve.requests").add(1);
    registry.gauge("serve.inflight").set(3.0);
    LatencyHistogram latency;
    latency.record(1.0);
    latency.record(2.0);
    latency.record(3.0);

    auto text = report::prometheusExposition(
        registry, {{"serve.latency_ms", &latency}});

    EXPECT_NE(text.find("# TYPE amos_serve_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("amos_serve_requests_total 42"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE amos_serve_inflight gauge"),
              std::string::npos);
    EXPECT_NE(text.find("amos_serve_inflight 3"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE amos_serve_latency_ms summary"),
              std::string::npos);
    EXPECT_NE(text.find("amos_serve_latency_ms{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("amos_serve_latency_ms_count 3"),
              std::string::npos);
    EXPECT_NE(text.find("amos_serve_latency_ms_sum 6"),
              std::string::npos);

    // Every line is a comment or `<name>[{labels}] <value>`.
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        if (line[0] == '#')
            continue;
        auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_EQ(line.rfind("amos_", 0), 0u) << line;
        EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
    }
}

TEST(Prometheus, EmptyRegistryRendersNothing)
{
    MetricsRegistry registry;
    EXPECT_EQ(report::prometheusExposition(registry), "");
}

TEST(Prometheus, CollidingCounterNamesMergeIntoOneFamily)
{
    // "a.b" and "a_b" both sanitise to amos_a_b_total; emitting the
    // family twice would be invalid exposition, so the values sum
    // and the HELP line names every source.
    MetricsRegistry registry;
    registry.counter("a.b").add(3);
    registry.counter("a_b").add(4);
    EXPECT_EQ(report::prometheusExposition(registry),
              "# HELP amos_a_b_total AMOS counter a.b + a_b\n"
              "# TYPE amos_a_b_total counter\n"
              "amos_a_b_total 7\n");
}

TEST(Prometheus, CollidingGaugeNamesLastWins)
{
    // Gauges cannot be summed; the lexicographically-last dotted
    // name deterministically wins.
    MetricsRegistry registry;
    registry.gauge("g.x").set(1.0);
    registry.gauge("g_x").set(2.0);
    EXPECT_EQ(report::prometheusExposition(registry),
              "# HELP amos_g_x AMOS gauge g_x\n"
              "# TYPE amos_g_x gauge\n"
              "amos_g_x 2\n");
}

TEST(Prometheus, ZeroSampleHistogramRendersZeroSummary)
{
    MetricsRegistry registry;
    LatencyHistogram idle;
    EXPECT_EQ(
        report::prometheusExposition(registry,
                                     {{"idle.ms", &idle}}),
        "# HELP amos_idle_ms AMOS latency summary idle.ms\n"
        "# TYPE amos_idle_ms summary\n"
        "amos_idle_ms{quantile=\"0.5\"} 0\n"
        "amos_idle_ms{quantile=\"0.95\"} 0\n"
        "amos_idle_ms{quantile=\"0.99\"} 0\n"
        "amos_idle_ms_sum 0\n"
        "amos_idle_ms_count 0\n");
}

TEST(Prometheus, WindowedHistogramRendersGaugeQuantiles)
{
    MetricsRegistry registry;
    SlidingWindowHistogram window(30.0, 6);
    EXPECT_EQ(
        report::prometheusExposition(registry, {},
                                     {{"w.ms", &window}}),
        "# HELP amos_w_ms AMOS windowed latency quantiles w.ms "
        "(last 30s)\n"
        "# TYPE amos_w_ms gauge\n"
        "amos_w_ms{quantile=\"0.5\"} 0\n"
        "amos_w_ms{quantile=\"0.95\"} 0\n"
        "amos_w_ms{quantile=\"0.99\"} 0\n"
        "# HELP amos_w_ms_count AMOS windowed sample count w.ms "
        "(last 30s)\n"
        "# TYPE amos_w_ms_count gauge\n"
        "amos_w_ms_count 0\n");
}

TEST(Prometheus, CountersAreMonotonicAcrossScrapes)
{
    MetricsRegistry registry;
    auto &requests = registry.counter("serve.requests");
    requests.add(1);
    auto first = report::prometheusExposition(registry);
    requests.add(5);
    auto second = report::prometheusExposition(registry);

    auto value_of = [](const std::string &text) {
        // Match the sample line, not the "# HELP"/"# TYPE"
        // comments that also carry the series name.
        auto pos = text.find("\namos_serve_requests_total ");
        EXPECT_NE(pos, std::string::npos);
        return std::stod(text.substr(
            pos + std::string("\namos_serve_requests_total ")
                      .size()));
    };
    EXPECT_EQ(value_of(first), 1.0);
    EXPECT_EQ(value_of(second), 6.0);
    EXPECT_GE(value_of(second), value_of(first));
}

} // namespace
} // namespace amos
