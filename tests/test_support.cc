/**
 * @file
 * Unit tests for the support library: bit matrices, math helpers,
 * logging, string utilities, the seeded RNG, the LRU map, the
 * latency histogram, and the cancellation token.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "support/bit_matrix.hh"
#include "support/cancellation.hh"
#include "support/histogram.hh"
#include "support/logging.hh"
#include "support/lru.hh"
#include "support/math_utils.hh"
#include "support/rng.hh"
#include "support/str_utils.hh"

namespace amos {
namespace {

TEST(BitMatrix, ConstructsZeroed)
{
    BitMatrix m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.popcount(), 0u);
}

TEST(BitMatrix, FromRowsRoundTrips)
{
    auto m = BitMatrix::fromRows({{1, 0, 1}, {0, 1, 0}});
    EXPECT_TRUE(m.at(0, 0));
    EXPECT_FALSE(m.at(0, 1));
    EXPECT_TRUE(m.at(0, 2));
    EXPECT_TRUE(m.at(1, 1));
    EXPECT_EQ(m.popcount(), 3u);
}

TEST(BitMatrix, FromRowsRejectsRagged)
{
    EXPECT_THROW(BitMatrix::fromRows({{1, 0}, {1}}), PanicError);
}

TEST(BitMatrix, IdentityActsAsStarIdentity)
{
    auto m = BitMatrix::fromRows({{1, 0, 1}, {0, 1, 1}});
    auto id = BitMatrix::identity(3);
    EXPECT_EQ(m.star(id), m);
    EXPECT_EQ(BitMatrix::identity(2).star(m), m);
}

TEST(BitMatrix, StarIsBooleanOrOfAnds)
{
    // The paper's example structure: Z (3x3) star Y (3x7).
    auto z = BitMatrix::fromRows({{1, 0, 1}, {0, 1, 1}, {1, 1, 0}});
    auto y = BitMatrix::fromRows({
        {1, 0, 1, 1, 0, 0, 0},
        {0, 1, 0, 0, 0, 0, 0},
        {0, 0, 0, 0, 1, 1, 1},
    });
    auto x = z.star(y);
    // Row 0 of Z selects Y rows 0 and 2 (i1, r1).
    auto expected = BitMatrix::fromRows({
        {1, 0, 1, 1, 1, 1, 1},
        {0, 1, 0, 0, 1, 1, 1},
        {1, 1, 1, 1, 0, 0, 0},
    });
    EXPECT_EQ(x, expected);
}

TEST(BitMatrix, StarShapeMismatchPanics)
{
    BitMatrix a(2, 3), b(4, 2);
    EXPECT_THROW(a.star(b), PanicError);
}

TEST(BitMatrix, TransposeInvolution)
{
    auto m = BitMatrix::fromRows({{1, 0, 1}, {0, 1, 1}});
    EXPECT_EQ(m.transposed().transposed(), m);
    EXPECT_TRUE(m.transposed().at(2, 1));
}

TEST(BitMatrix, ColumnExtraction)
{
    auto m = BitMatrix::fromRows({{1, 0}, {0, 1}, {1, 1}});
    std::vector<bool> col0 = {true, false, true};
    EXPECT_EQ(m.column(0), col0);
    EXPECT_FALSE(m.columnIsZero(0));
    BitMatrix zero(2, 2);
    EXPECT_TRUE(zero.columnIsZero(1));
}

TEST(MathUtils, CeilDiv)
{
    EXPECT_EQ(ceilDiv(9, 2), 5);
    EXPECT_EQ(ceilDiv(8, 2), 4);
    EXPECT_EQ(ceilDiv(1, 16), 1);
}

TEST(MathUtils, RoundUp)
{
    EXPECT_EQ(roundUp(9, 4), 12);
    EXPECT_EQ(roundUp(8, 4), 8);
}

TEST(MathUtils, DivisorsSortedAndComplete)
{
    auto d = divisorsOf(12);
    std::vector<std::int64_t> expected = {1, 2, 3, 4, 6, 12};
    EXPECT_EQ(d, expected);
    EXPECT_EQ(divisorsOf(1), std::vector<std::int64_t>{1});
    EXPECT_THROW(divisorsOf(0), PanicError);
}

TEST(MathUtils, TileCandidatesIncludePowersOfTwoAndDivisors)
{
    auto c = tileCandidates(12);
    for (std::int64_t v : {1, 2, 3, 4, 6, 8, 12})
        EXPECT_NE(std::find(c.begin(), c.end(), v), c.end())
            << "missing " << v;
    for (auto v : c) {
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 12);
    }
}

TEST(MathUtils, FactorSplitsCoverExtent)
{
    for (const auto &split : factorSplits(12, 3)) {
        ASSERT_EQ(split.size(), 3u);
        std::int64_t covered = split[0] * split[1] * split[2];
        EXPECT_GE(covered, 12);
    }
}

TEST(MathUtils, GeometricMean)
{
    EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
    EXPECT_THROW(geometricMean({1.0, -1.0}), PanicError);
}

TEST(Logging, FatalAndPanicThrowDistinctTypes)
{
    EXPECT_THROW(fatal("user error ", 42), FatalError);
    EXPECT_THROW(panic("bug ", 42), PanicError);
    EXPECT_NO_THROW(require(true, "fine"));
    EXPECT_THROW(require(false, "broken"), PanicError);
    EXPECT_THROW(expect(false, "bad input"), FatalError);
}

TEST(Logging, MessagesCarryFormattedContent)
{
    try {
        fatal("value was ", 7, " not ", 8);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value was 7 not 8"),
                  std::string::npos);
    }
}

TEST(StrUtils, JoinAndPad)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(padLeft("7", 3), "  7");
    EXPECT_EQ(padRight("7", 3), "7  ");
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
}

TEST(StrUtils, TextTableAlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "10"});
    t.addRow({"longer", "2"});
    std::string s = t.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_THROW(t.addRow({"only-one-cell"}), PanicError);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(99), b(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.uniformInt(3, 9);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 9);
    }
    EXPECT_THROW(rng.uniformInt(5, 4), PanicError);
}

TEST(Rng, ChoicePicksExistingElements)
{
    Rng rng(11);
    std::vector<int> items = {1, 2, 3};
    for (int i = 0; i < 50; ++i) {
        int v = rng.choice(items);
        EXPECT_TRUE(v >= 1 && v <= 3);
    }
    std::vector<int> empty;
    EXPECT_THROW(rng.choice(empty), PanicError);
}

TEST(LruMap, EvictsLeastRecentlyUsed)
{
    LruMap<std::string, int> lru(2);
    EXPECT_FALSE(lru.put("a", 1).has_value());
    EXPECT_FALSE(lru.put("b", 2).has_value());
    // Touch "a" so "b" becomes the eviction victim.
    EXPECT_EQ(lru.get("a").value(), 1);
    auto evicted = lru.put("c", 3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, "b");
    EXPECT_FALSE(lru.get("b").has_value());
    EXPECT_TRUE(lru.contains("a"));
    EXPECT_TRUE(lru.contains("c"));
    EXPECT_EQ(lru.size(), 2u);
}

TEST(LruMap, PutOverwritesWithoutEvicting)
{
    LruMap<std::string, int> lru(2);
    lru.put("a", 1);
    lru.put("b", 2);
    EXPECT_FALSE(lru.put("a", 10).has_value());
    EXPECT_EQ(lru.get("a").value(), 10);
    EXPECT_EQ(lru.size(), 2u);
}

TEST(LruMap, ZeroCapacityIsUnbounded)
{
    LruMap<int, int> lru(0);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(lru.put(i, i).has_value());
    EXPECT_EQ(lru.size(), 100u);
}

TEST(LatencyHistogram, QuantilesBracketTheSamples)
{
    LatencyHistogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.quantileMs(0.5), 0.0);
    for (int i = 1; i <= 100; ++i)
        hist.record(static_cast<double>(i)); // 1..100 ms
    EXPECT_EQ(hist.count(), 100u);
    EXPECT_NEAR(hist.meanMs(), 50.5, 1e-9);
    // Log-bucketed estimates: within the ~25% bucket growth.
    EXPECT_NEAR(hist.quantileMs(0.50), 50.0, 15.0);
    EXPECT_NEAR(hist.quantileMs(0.95), 95.0, 25.0);
    EXPECT_LE(hist.quantileMs(0.99), 100.0);
    EXPECT_GE(hist.quantileMs(0.99), hist.quantileMs(0.50));
    auto json = hist.summaryJson();
    EXPECT_EQ(json.get("count").asInt(), 100);
    EXPECT_GT(json.get("p95_ms").asNumber(),
              json.get("p50_ms").asNumber());
}

TEST(LatencyHistogram, ClampsToObservedRange)
{
    LatencyHistogram hist;
    hist.record(3.0);
    hist.record(3.0);
    EXPECT_DOUBLE_EQ(hist.quantileMs(0.5), 3.0);
    EXPECT_DOUBLE_EQ(hist.quantileMs(0.99), 3.0);
}

TEST(SlidingWindowHistogram, EmptyWindowReportsZeros)
{
    SlidingWindowHistogram hist(60.0, 12);
    EXPECT_DOUBLE_EQ(hist.windowSeconds(), 60.0);
    EXPECT_EQ(hist.windowCountAt(0.0), 0u);
    EXPECT_DOUBLE_EQ(hist.windowMeanMsAt(0.0), 0.0);
    EXPECT_DOUBLE_EQ(hist.windowQuantileMsAt(0.99, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(hist.breachFractionAt(10.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(hist.burnRateAt(10.0, 0.01, 0.0), 0.0);
    Json json = hist.summaryJsonAt(0.0);
    EXPECT_EQ(json.get("count").asInt(), 0);
    EXPECT_DOUBLE_EQ(json.get("window_s").asNumber(), 60.0);
}

TEST(SlidingWindowHistogram, WindowedQuantilesBracketSamples)
{
    SlidingWindowHistogram hist(60.0, 12);
    for (int i = 1; i <= 100; ++i)
        hist.recordAt(static_cast<double>(i), 1.0); // 1..100 ms
    EXPECT_EQ(hist.windowCountAt(1.0), 100u);
    EXPECT_NEAR(hist.windowMeanMsAt(1.0), 50.5, 1e-9);
    // Same log-bucket estimator (and tolerance) as LatencyHistogram.
    EXPECT_NEAR(hist.windowQuantileMsAt(0.50, 1.0), 50.0, 15.0);
    EXPECT_NEAR(hist.windowQuantileMsAt(0.95, 1.0), 95.0, 25.0);
    EXPECT_LE(hist.windowQuantileMsAt(0.99, 1.0), 100.0);
    Json json = hist.summaryJsonAt(1.0);
    EXPECT_EQ(json.get("count").asInt(), 100);
    EXPECT_GT(json.get("p95_ms").asNumber(),
              json.get("p50_ms").asNumber());
}

TEST(SlidingWindowHistogram, SamplesExpireWithTheWindow)
{
    SlidingWindowHistogram hist(60.0, 12);
    hist.recordAt(10.0, 0.0);
    // Still visible just inside the window...
    EXPECT_EQ(hist.windowCountAt(59.0), 1u);
    // ...gone once the epoch falls out of it.
    EXPECT_EQ(hist.windowCountAt(65.0), 0u);
    EXPECT_DOUBLE_EQ(hist.windowQuantileMsAt(0.99, 65.0), 0.0);
}

TEST(SlidingWindowHistogram, EpochSlotsRecycleWithoutLeaking)
{
    SlidingWindowHistogram hist(60.0, 12);
    hist.recordAt(5.0, 2.0);
    // 62s maps onto the same epoch slot (12 epochs of 5s); the slot
    // must be recycled, not merged with the stale contents.
    hist.recordAt(7.0, 62.0);
    EXPECT_EQ(hist.windowCountAt(62.0), 1u);
    EXPECT_DOUBLE_EQ(hist.windowMeanMsAt(62.0), 7.0);
}

TEST(SlidingWindowHistogram, BreachFractionAndBurnRate)
{
    SlidingWindowHistogram hist(60.0, 12);
    for (int i = 0; i < 90; ++i)
        hist.recordAt(1.0, 1.0);
    for (int i = 0; i < 10; ++i)
        hist.recordAt(100.0, 1.0);
    EXPECT_NEAR(hist.breachFractionAt(50.0, 1.0), 0.10, 1e-12);
    // Burning 10% of requests against a 1% budget: burn rate 10.
    EXPECT_NEAR(hist.burnRateAt(50.0, 0.01, 1.0), 10.0, 1e-9);
    // Threshold above every sample: no breach.
    EXPECT_DOUBLE_EQ(hist.breachFractionAt(1000.0, 1.0), 0.0);
    // Non-positive budget cannot divide.
    EXPECT_DOUBLE_EQ(hist.burnRateAt(50.0, 0.0, 1.0), 0.0);
}

TEST(SlidingWindowHistogram, ConcurrentRecordAndQueryHammer)
{
    SlidingWindowHistogram hist(60.0, 12);
    const int kThreads = 16;
    const int kSamples = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&hist, t] {
            for (int i = 0; i < kSamples; ++i) {
                // 0..49.9s: every epoch stays inside a 60s window.
                double at = 0.1 * static_cast<double>(i);
                hist.recordAt(static_cast<double>(t + 1), at);
                if (i % 64 == 0) { // readers race the writers
                    hist.windowQuantileMsAt(0.99, at);
                    hist.breachFractionAt(8.0, at);
                    hist.summaryJsonAt(at);
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(hist.windowCountAt(49.9),
              static_cast<std::uint64_t>(kThreads) * kSamples);
}

TEST(CancelToken, ExplicitCancel)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    token.checkpoint("work"); // no-op while live
    token.cancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_FALSE(token.deadlineExpired());
    EXPECT_THROW(token.checkpoint("work"), CancelledError);
}

TEST(CancelToken, DeadlineFires)
{
    CancelToken token;
    token.setDeadline(CancelToken::Clock::now() -
                      std::chrono::milliseconds(1));
    EXPECT_TRUE(token.deadlineExpired());
    EXPECT_TRUE(token.cancelled());
    EXPECT_THROW(token.checkpoint("work"), CancelledError);
}

TEST(CancelToken, ExtendOnlyMovesLater)
{
    CancelToken token;
    auto past =
        CancelToken::Clock::now() - std::chrono::milliseconds(1);
    auto future =
        CancelToken::Clock::now() + std::chrono::hours(1);
    token.setDeadline(past);
    token.extendDeadline(future);
    EXPECT_FALSE(token.cancelled());
    // Extending backwards is a no-op.
    token.extendDeadline(past);
    EXPECT_FALSE(token.cancelled());
    // A no-deadline joiner clears the deadline entirely.
    token.setDeadline(past);
    token.extendDeadline(CancelToken::Clock::time_point::max());
    EXPECT_FALSE(token.hasDeadline());
}

} // namespace
} // namespace amos
