/**
 * @file
 * Integration tests of the public Compiler facade: the full Fig. 2
 * flow from software definition to simulated implementation, across
 * operators and hardware targets.
 */

#include <gtest/gtest.h>

#include "amos/amos.hh"
#include "ops/conv_layers.hh"

namespace amos {
namespace {

TuneOptions
fastTuning()
{
    TuneOptions options;
    options.population = 10;
    options.generations = 4;
    options.measureTopK = 4;
    return options;
}

TEST(Compiler, CompilesConvEndToEnd)
{
    Compiler compiler(hw::v100(), fastTuning());
    auto conv = ops::resnet18ConvLayers(16)[5].build();
    auto result = compiler.compile(conv);
    ASSERT_TRUE(result.tensorized);
    EXPECT_GT(result.gflops, 0.0);
    // 35 mappings per WMMA problem shape, three shapes exposed.
    EXPECT_EQ(result.mappingsExplored, 3 * 35u);
    EXPECT_NE(result.computeMapping.find("i1"), std::string::npos);
    EXPECT_NE(result.memoryMapping.find("addr_Src1"),
              std::string::npos);
    EXPECT_NE(result.pseudoCode.find("wmma"), std::string::npos);
    auto report = result.report();
    EXPECT_NE(report.find("tensorized"), std::string::npos);
    EXPECT_NE(report.find("GFLOPS"), std::string::npos);
}

TEST(Compiler, ScalarFallbackForUnsupportedShape)
{
    Compiler compiler(hw::v100(), fastTuning());
    IterVar i{Var("i"), 1024, IterKind::Spatial};
    TensorDecl a("A", {1024});
    TensorDecl out("out", {1024});
    TensorComputation sum("rowsum", {i}, out, {i.var},
                          {{a, {i.var}}}, CombineKind::SumReduce);
    auto result = compiler.compile(sum);
    EXPECT_FALSE(result.tensorized);
    EXPECT_GT(result.milliseconds, 0.0);
    EXPECT_NE(result.report().find("scalar fallback"),
              std::string::npos);
}

TEST(Compiler, CountMappingsMatchesTable6OnAllTargets)
{
    auto conv = ops::resnet18ConvLayers(16)[5].build();
    Compiler v100(hw::v100());
    EXPECT_EQ(v100.countMappings(conv), 35u);
    // The int8 targets count their Table-6 mappings on the quantized
    // variant; the float conv is dtype-illegal there and counts zero.
    auto qconv = ops::quantizedVariant(conv);
    // VNNI: k -> lanes, 7 reduction subsets.
    Compiler cpu(hw::xeonSilver4110());
    EXPECT_EQ(cpu.countMappings(qconv), 7u);
    EXPECT_EQ(cpu.countMappings(conv), 0u);
    // Mali dot: 7 reduction subsets.
    Compiler mali(hw::maliG76());
    EXPECT_EQ(mali.countMappings(qconv), 7u);
    EXPECT_EQ(mali.countMappings(conv), 0u);
}

TEST(Compiler, WorksOnEveryHardwarePreset)
{
    auto conv = ops::resnet18ConvLayers(4)[8].build();
    // GPU presets take the float layer, int8 presets its quantized
    // u8xi8 variant (their intrinsics reject float operands).
    struct Case
    {
        HardwareSpec spec;
        bool quantized;
    };
    for (const auto &[spec, quantized] :
         {Case{hw::v100(), false}, Case{hw::a100(), false},
          Case{hw::xeonSilver4110(), true},
          Case{hw::maliG76(), true}}) {
        SCOPED_TRACE(spec.name);
        Compiler compiler(spec, fastTuning());
        auto result = compiler.compile(
            quantized ? ops::quantizedVariant(conv) : conv);
        EXPECT_TRUE(result.tensorized);
        EXPECT_TRUE(std::isfinite(result.milliseconds));
        EXPECT_GT(result.milliseconds, 0.0);
    }
}

TEST(Compiler, A100FasterThanV100OnBigConv)
{
    // Deterministic comparison: identical mapping and schedule rule
    // on both chips (the library proxy), so only the hardware
    // differs.
    auto conv = ops::resnet18ConvLayers(16)[1].build();
    auto rv = baselines::libraryProxy(conv, hw::v100());
    auto ra = baselines::libraryProxy(conv, hw::a100());
    ASSERT_TRUE(rv.tensorized && ra.tensorized);
    EXPECT_LT(ra.milliseconds, rv.milliseconds);
}

TEST(Compiler, VirtualAcceleratorsCompileC3D)
{
    // Sec. 7.5: the AXPY/GEMV/CONV virtual accelerators all accept
    // C3D through their own intrinsics.
    ops::ConvParams pr;
    pr.batch = 2;
    pr.in_channels = 16;
    pr.out_channels = 16;
    pr.out_h = 8;
    pr.out_w = 8;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto c3d = ops::makeConv3d(pr, 4, 3);
    for (const auto &spec :
         {hw::virtualAxpyAccel(), hw::virtualGemvAccel(),
          hw::virtualConvAccel()}) {
        SCOPED_TRACE(spec.name);
        Compiler compiler(spec, fastTuning());
        EXPECT_GT(compiler.countMappings(c3d), 0u);
        auto result = compiler.compile(c3d);
        EXPECT_TRUE(result.tensorized);
    }
}

TEST(Compiler, NetworkFacadeDelegates)
{
    Compiler compiler(hw::v100(), fastTuning());
    auto result = compiler.compileNetwork(miLstm(1));
    EXPECT_EQ(result.compiler, NetworkCompiler::Amos);
    EXPECT_EQ(result.mappedOps, 9);
}

} // namespace
} // namespace amos
