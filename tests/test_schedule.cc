/**
 * @file
 * Unit tests for schedules: legality, sampling, mutation, crossover,
 * and the reduction-axis restriction.
 */

#include <gtest/gtest.h>

#include "isa/intrinsics.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"
#include "schedule/schedule.hh"

namespace amos {
namespace {

MappingPlan
c2dPlan()
{
    ops::ConvParams pr;
    pr.batch = 4;
    pr.in_channels = 16;
    pr.out_channels = 32;
    pr.out_h = 8;
    pr.out_w = 8;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    auto conv = ops::makeConv2d(pr);
    ComputeMapping m;
    m.groups = {{0, 3}, {1}, {4, 5}}; // n,q | k | c,r
    return MappingPlan(conv, isa::wmma(16, 16, 16), m);
}

TEST(Schedule, DefaultIsAllSerial)
{
    auto plan = c2dPlan();
    auto sched = defaultSchedule(plan);
    ASSERT_EQ(sched.axes.size(), plan.outerAxes().size());
    for (const auto &axis : sched.axes) {
        EXPECT_EQ(axis.blockFactor, 1);
        EXPECT_EQ(axis.warpFactor, 1);
    }
    EXPECT_EQ(sched.stageDepth, 1);
}

TEST(Schedule, ReductionAxisDetection)
{
    auto plan = c2dPlan();
    // Outer axes: unmapped p (spatial), unmapped s (reduction), then
    // group quotients i1.q/i2.q (spatial), r1.q (reduction).
    int reductions = 0;
    for (std::size_t a = 0; a < plan.outerAxes().size(); ++a)
        reductions += axisIsReduction(plan, a);
    EXPECT_EQ(reductions, 2); // s and r1.q
}

TEST(Schedule, SamplingNeverParallelisesReductions)
{
    auto plan = c2dPlan();
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        auto sched = sampleSchedule(plan, rng);
        for (std::size_t a = 0; a < sched.axes.size(); ++a) {
            if (axisIsReduction(plan, a)) {
                EXPECT_EQ(sched.axes[a].blockFactor, 1);
                EXPECT_EQ(sched.axes[a].warpFactor, 1);
            } else {
                EXPECT_GE(sched.axes[a].blockFactor, 1);
            }
        }
        EXPECT_TRUE(sched.stageDepth == 1 || sched.stageDepth == 2);
        EXPECT_GE(sched.vectorLanes, 1);
        EXPECT_LE(sched.vectorLanes, 8);
    }
}

TEST(Schedule, SamplingIsDeterministicPerSeed)
{
    auto plan = c2dPlan();
    Rng a(42), b(42);
    for (int i = 0; i < 20; ++i) {
        auto sa = sampleSchedule(plan, a);
        auto sb = sampleSchedule(plan, b);
        EXPECT_EQ(sa.toString(), sb.toString());
    }
}

TEST(Schedule, MutationChangesSomethingEventually)
{
    auto plan = c2dPlan();
    Rng rng(3);
    auto base = sampleSchedule(plan, rng);
    bool changed = false;
    for (int i = 0; i < 50 && !changed; ++i)
        changed = mutateSchedule(plan, base, rng).toString() !=
                  base.toString();
    EXPECT_TRUE(changed);
}

TEST(Schedule, MutationPreservesReductionLegality)
{
    auto plan = c2dPlan();
    Rng rng(11);
    auto sched = sampleSchedule(plan, rng);
    for (int i = 0; i < 200; ++i) {
        sched = mutateSchedule(plan, sched, rng);
        for (std::size_t a = 0; a < sched.axes.size(); ++a) {
            if (axisIsReduction(plan, a)) {
                EXPECT_EQ(sched.axes[a].blockFactor, 1);
                EXPECT_EQ(sched.axes[a].warpFactor, 1);
            }
        }
    }
}

TEST(Schedule, CrossoverMixesParents)
{
    auto plan = c2dPlan();
    Rng rng(5);
    auto a = sampleSchedule(plan, rng);
    auto b = sampleSchedule(plan, rng);
    auto child = crossoverSchedules(a, b, rng);
    ASSERT_EQ(child.axes.size(), a.axes.size());
    for (std::size_t i = 0; i < child.axes.size(); ++i) {
        bool from_a =
            child.axes[i].blockFactor == a.axes[i].blockFactor &&
            child.axes[i].warpFactor == a.axes[i].warpFactor;
        bool from_b =
            child.axes[i].blockFactor == b.axes[i].blockFactor &&
            child.axes[i].warpFactor == b.axes[i].warpFactor;
        EXPECT_TRUE(from_a || from_b);
    }
}

TEST(Schedule, CrossoverRejectsMismatchedShapes)
{
    auto plan = c2dPlan();
    Rng rng(9);
    auto a = sampleSchedule(plan, rng);
    Schedule b = a;
    b.axes.pop_back();
    EXPECT_THROW(crossoverSchedules(a, b, rng), PanicError);
}

TEST(Schedule, ToStringMentionsAllKnobs)
{
    auto plan = c2dPlan();
    auto sched = defaultSchedule(plan);
    auto s = sched.toString();
    EXPECT_NE(s.find("stage="), std::string::npos);
    EXPECT_NE(s.find("vec="), std::string::npos);
    EXPECT_NE(s.find("unroll="), std::string::npos);
}

} // namespace
} // namespace amos
