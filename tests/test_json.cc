/**
 * @file
 * Unit tests for the JSON utility: construction, typed access,
 * serialisation stability, parsing, round-trips, and error handling.
 */

#include <gtest/gtest.h>

#include "support/json.hh"
#include "support/logging.hh"

namespace amos {
namespace {

TEST(Json, ScalarKindsAndAccessors)
{
    EXPECT_TRUE(Json().isNull());
    EXPECT_TRUE(Json(true).asBool());
    EXPECT_DOUBLE_EQ(Json(3.5).asNumber(), 3.5);
    EXPECT_EQ(Json(std::int64_t{42}).asInt(), 42);
    EXPECT_EQ(Json("hello").asString(), "hello");
}

TEST(Json, AccessorKindMismatchPanics)
{
    EXPECT_THROW(Json(1.0).asString(), PanicError);
    EXPECT_THROW(Json("x").asNumber(), PanicError);
    EXPECT_THROW(Json().asBool(), PanicError);
    EXPECT_THROW(Json(1.0).push(Json()), PanicError);
    EXPECT_THROW(Json(1.0).set("k", Json()), PanicError);
}

TEST(Json, ArrayOperations)
{
    Json arr = Json::array();
    arr.push(Json(1));
    arr.push(Json("two"));
    ASSERT_EQ(arr.size(), 2u);
    EXPECT_EQ(arr.at(0).asInt(), 1);
    EXPECT_EQ(arr.at(1).asString(), "two");
    EXPECT_THROW(arr.at(2), PanicError);
}

TEST(Json, ObjectOperations)
{
    Json obj = Json::object();
    obj.set("a", Json(1));
    obj.set("b", Json::array());
    EXPECT_TRUE(obj.has("a"));
    EXPECT_FALSE(obj.has("c"));
    EXPECT_EQ(obj.get("a").asInt(), 1);
    EXPECT_THROW(obj.get("c"), PanicError);
    EXPECT_EQ(obj.entries().size(), 2u);
}

TEST(Json, DumpIsCompactAndStable)
{
    Json obj = Json::object();
    obj.set("z", Json(1));
    obj.set("a", Json(2));
    // Keys serialise sorted for reproducible files.
    EXPECT_EQ(obj.dump(), "{\"a\":2,\"z\":1}");
    Json arr = Json::array();
    arr.push(Json(true));
    arr.push(Json());
    EXPECT_EQ(arr.dump(), "[true,null]");
}

TEST(Json, NumbersRoundTripIntegers)
{
    EXPECT_EQ(Json(std::int64_t{123456789}).dump(), "123456789");
    EXPECT_EQ(Json(-7).dump(), "-7");
    // Fractions survive a dump/parse cycle.
    auto parsed = Json::parse(Json(0.125).dump());
    EXPECT_DOUBLE_EQ(parsed.asNumber(), 0.125);
}

TEST(Json, StringEscapes)
{
    Json s("line\n\"quoted\"\\slash\t");
    auto round = Json::parse(s.dump());
    EXPECT_EQ(round.asString(), s.asString());
}

TEST(Json, ParsesNestedDocuments)
{
    auto doc = Json::parse(
        R"({"name":"amos","nums":[1,2.5,-3],"nested":{"ok":true},)"
        R"("none":null})");
    EXPECT_EQ(doc.get("name").asString(), "amos");
    EXPECT_EQ(doc.get("nums").size(), 3u);
    EXPECT_DOUBLE_EQ(doc.get("nums").at(1).asNumber(), 2.5);
    EXPECT_TRUE(doc.get("nested").get("ok").asBool());
    EXPECT_TRUE(doc.get("none").isNull());
}

TEST(Json, ParsesWhitespaceTolerant)
{
    auto doc = Json::parse("  { \"a\" : [ 1 , 2 ] }  ");
    EXPECT_EQ(doc.get("a").size(), 2u);
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(Json::parse(""), FatalError);
    EXPECT_THROW(Json::parse("{"), FatalError);
    EXPECT_THROW(Json::parse("[1,]2"), FatalError);
    EXPECT_THROW(Json::parse("{\"a\":}"), FatalError);
    EXPECT_THROW(Json::parse("tru"), FatalError);
    EXPECT_THROW(Json::parse("[1] extra"), FatalError);
    EXPECT_THROW(Json::parse("\"unterminated"), FatalError);
}

TEST(Json, DeepRoundTrip)
{
    Json root = Json::object();
    Json layers = Json::array();
    for (int i = 0; i < 5; ++i) {
        Json layer = Json::object();
        layer.set("id", Json(i));
        layer.set("label", Json("L" + std::to_string(i)));
        Json factors = Json::array();
        for (int f = 1; f <= i + 1; ++f)
            factors.push(Json(f));
        layer.set("factors", std::move(factors));
        layers.push(std::move(layer));
    }
    root.set("layers", std::move(layers));
    auto round = Json::parse(root.dump());
    EXPECT_EQ(round.dump(), root.dump());
    EXPECT_EQ(round.get("layers").at(3).get("factors").size(), 4u);
}

} // namespace
} // namespace amos
