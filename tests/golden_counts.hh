/**
 * @file
 * Shared golden-count fixture: the feasible-mapping-count matrix for
 * every modelled intrinsic x a representative operator set at Table
 * 6's small extents. One definition drives both test_generate.cc
 * (regression anchor for the enumerator) and test_isa_spec.cc (the
 * spec-derived registry must reproduce the same counts), so the two
 * suites can never drift apart on what "golden" means.
 */

#ifndef AMOS_TESTS_GOLDEN_COUNTS_HH
#define AMOS_TESTS_GOLDEN_COUNTS_HH

#include <array>
#include <cstddef>
#include <vector>

#include "hw/hardware.hh"
#include "isa/intrinsics.hh"
#include "mapping/generate.hh"
#include "ops/operators.hh"

namespace amos {
namespace golden {

inline ops::ConvParams
smallConvParams()
{
    ops::ConvParams pr;
    pr.batch = 2;
    pr.in_channels = 2;
    pr.out_channels = 4;
    pr.out_h = 2;
    pr.out_w = 2;
    pr.kernel_h = 3;
    pr.kernel_w = 3;
    return pr;
}

constexpr std::size_t kNumOperators = 6;

struct OperatorCol
{
    const char *name;
    TensorComputation comp;
};

/** The representative operator set, in golden-matrix column order. */
inline std::vector<OperatorCol>
operatorColumns()
{
    ops::ConvParams pr = smallConvParams();
    std::vector<OperatorCol> cols;
    cols.push_back({"gemm", ops::makeGemm(4, 4, 4)});
    cols.push_back({"gemv", ops::makeGemv(8, 8)});
    cols.push_back({"conv1d", ops::makeConv1d(2, 2, 4, 4, 3)});
    cols.push_back({"conv2d", ops::makeConv2d(pr)});
    cols.push_back({"depthwise", ops::makeDepthwiseConv2d(pr, 2)});
    cols.push_back({"group", ops::makeGroupConv2d(pr, 2)});
    return cols;
}

struct IntrinsicRow
{
    const char *name;
    Intrinsic intr;
    bool int8; ///< counts run on the quantized operator variant
    std::array<std::size_t, kNumOperators> counts;
};

/**
 * The golden matrix: one row per modelled intrinsic, column order as
 * operatorColumns(). virtualConv's compute has a different operand
 * structure, so gemm/gemv yield 0. The int8 intrinsics (including
 * the spec-only AMX tile unit) count on the quantized u8xi8 variants
 * — their mapping spaces are unchanged by the retyping, which is
 * exactly what makes the counts comparable with the float rows.
 */
inline std::vector<IntrinsicRow>
intrinsicRows()
{
    std::vector<IntrinsicRow> rows;
    rows.push_back(
        {"wmmaTiny", isa::wmmaTiny(), false, {1, 1, 9, 35, 15, 35}});
    rows.push_back({"wmma16", isa::wmma(16, 16, 16), false,
                    {1, 1, 9, 35, 15, 35}});
    rows.push_back(
        {"avx512Vnni", isa::avx512Vnni(), true, {1, 1, 3, 7, 3, 7}});
    rows.push_back(
        {"maliDot", isa::maliDot(), true, {1, 1, 3, 7, 3, 7}});
    rows.push_back({"virtualGemv", isa::virtualGemv(), false,
                    {1, 1, 9, 35, 15, 35}});
    rows.push_back({"virtualAxpy", isa::virtualAxpy(), false,
                    {1, 1, 3, 5, 5, 5}});
    rows.push_back({"virtualConv", isa::virtualConv(), false,
                    {0, 0, 6, 28, 12, 28}});
    // The spec-only target: same wmma-shaped compute at int8 types,
    // reached exclusively through the embedded-spec registry.
    rows.push_back({"amx", hw::byName("amx").primaryIntrinsic(), true,
                    {1, 1, 9, 35, 15, 35}});
    return rows;
}

/** Addressable-policy mapping count, the golden matrix's metric. */
inline std::size_t
countAddressable(const TensorComputation &comp, const Intrinsic &intr)
{
    GeneratorOptions options;
    options.policy = LegalityPolicy::Addressable;
    return enumerateMappings(comp, intr, options).size();
}

} // namespace golden
} // namespace amos

#endif // AMOS_TESTS_GOLDEN_COUNTS_HH
