/**
 * @file
 * Unit tests for the thread pool and parallelFor: task completion,
 * exception propagation, full index coverage, nesting, and the
 * determinism of per-index RNG streams under concurrency.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "support/logging.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"

namespace amos {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&] { ++counter; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] {});
    auto bad = pool.submit([] { fatal("task exploded"); });
    EXPECT_NO_THROW(ok.get());
    EXPECT_THROW(bad.get(), FatalError);
    // The pool survives a throwing task.
    auto after = pool.submit([] {});
    EXPECT_NO_THROW(after.get());
}

TEST(ThreadPool, RejectsEmptyTask)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.submit(std::function<void()>{}), PanicError);
}

TEST(ThreadPool, ResolveThreadsMapsZeroToHardware)
{
    EXPECT_GE(ThreadPool::resolveThreads(0), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(3), 3u);
    EXPECT_GE(ThreadPool::resolveThreads(-2), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h.store(0);
    parallelFor(n, [&](std::size_t i) { ++hits[i]; }, 8);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, ZeroAndOneIterationEdgeCases)
{
    int calls = 0;
    parallelFor(0, [&](std::size_t) { ++calls; }, 4);
    EXPECT_EQ(calls, 0);
    parallelFor(1, [&](std::size_t) { ++calls; }, 4);
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SerialWhenOneThread)
{
    // numThreads=1 must run in index order on the calling thread.
    std::vector<std::size_t> order;
    parallelFor(16, [&](std::size_t i) { order.push_back(i); }, 1);
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, PropagatesFirstBodyException)
{
    std::atomic<int> completed{0};
    EXPECT_THROW(
        parallelFor(
            64,
            [&](std::size_t i) {
                if (i == 13)
                    fatal("body failed at 13");
                ++completed;
            },
            4),
        FatalError);
    // Remaining indices may be skipped after the failure, but no
    // body may run twice.
    EXPECT_LE(completed.load(), 63);
}

TEST(ParallelFor, NestedCallsRunInlineAndComplete)
{
    const std::size_t outer = 8, inner = 32;
    std::vector<std::atomic<int>> counts(outer);
    for (auto &c : counts)
        c.store(0);
    std::atomic<bool> saw_region_flag{false};
    parallelFor(
        outer,
        [&](std::size_t i) {
            parallelFor(
                inner,
                [&](std::size_t) {
                    if (insideParallelRegion())
                        saw_region_flag.store(true);
                    ++counts[i];
                },
                4);
        },
        4);
    for (std::size_t i = 0; i < outer; ++i)
        EXPECT_EQ(counts[i].load(), static_cast<int>(inner));
    EXPECT_TRUE(saw_region_flag.load());
}

TEST(ParallelFor, PerIndexRngStreamsAreOrderIndependent)
{
    // The tuner's determinism rests on this: draws seeded by
    // mixSeed(seed, index, step) must not depend on which thread
    // reaches an index first.
    const std::size_t n = 256;
    std::vector<std::int64_t> serial(n), parallel(n);
    for (std::size_t i = 0; i < n; ++i) {
        Rng rng(mixSeed(42, i, 7));
        serial[i] = rng.uniformInt(0, 1 << 20);
    }
    parallelFor(
        n,
        [&](std::size_t i) {
            Rng rng(mixSeed(42, i, 7));
            parallel[i] = rng.uniformInt(0, 1 << 20);
        },
        8);
    EXPECT_EQ(serial, parallel);
}

TEST(MixSeed, DistinctStreamsAndSteps)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t stream = 0; stream < 64; ++stream)
        for (std::uint64_t step = 0; step < 16; ++step)
            seeds.insert(mixSeed(2022, stream, step));
    // All (stream, step) pairs must land on distinct seeds.
    EXPECT_EQ(seeds.size(), 64u * 16u);
    EXPECT_NE(mixSeed(1, 0, 0), mixSeed(2, 0, 0));
}

} // namespace
} // namespace amos
