# Empty compiler generated dependencies file for amos_hw.
# This may be replaced when dependencies are built.
