file(REMOVE_RECURSE
  "CMakeFiles/amos_hw.dir/hardware.cc.o"
  "CMakeFiles/amos_hw.dir/hardware.cc.o.d"
  "libamos_hw.a"
  "libamos_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
