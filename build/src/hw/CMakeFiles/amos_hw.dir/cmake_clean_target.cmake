file(REMOVE_RECURSE
  "libamos_hw.a"
)
