file(REMOVE_RECURSE
  "CMakeFiles/amos_isa.dir/abstraction.cc.o"
  "CMakeFiles/amos_isa.dir/abstraction.cc.o.d"
  "CMakeFiles/amos_isa.dir/intrinsics.cc.o"
  "CMakeFiles/amos_isa.dir/intrinsics.cc.o.d"
  "libamos_isa.a"
  "libamos_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
