# Empty dependencies file for amos_isa.
# This may be replaced when dependencies are built.
