
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/abstraction.cc" "src/isa/CMakeFiles/amos_isa.dir/abstraction.cc.o" "gcc" "src/isa/CMakeFiles/amos_isa.dir/abstraction.cc.o.d"
  "/root/repo/src/isa/intrinsics.cc" "src/isa/CMakeFiles/amos_isa.dir/intrinsics.cc.o" "gcc" "src/isa/CMakeFiles/amos_isa.dir/intrinsics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/amos_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/amos_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/amos_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
