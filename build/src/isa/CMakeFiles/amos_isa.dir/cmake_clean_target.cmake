file(REMOVE_RECURSE
  "libamos_isa.a"
)
