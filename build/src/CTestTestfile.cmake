# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("tensor")
subdirs("ops")
subdirs("isa")
subdirs("hw")
subdirs("mapping")
subdirs("model")
subdirs("schedule")
subdirs("codegen")
subdirs("sim")
subdirs("explore")
subdirs("baselines")
subdirs("graph")
subdirs("amos")
