file(REMOVE_RECURSE
  "CMakeFiles/amos_sim.dir/simulator.cc.o"
  "CMakeFiles/amos_sim.dir/simulator.cc.o.d"
  "libamos_sim.a"
  "libamos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
