# Empty dependencies file for amos_sim.
# This may be replaced when dependencies are built.
