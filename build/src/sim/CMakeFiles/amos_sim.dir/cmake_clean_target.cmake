file(REMOVE_RECURSE
  "libamos_sim.a"
)
