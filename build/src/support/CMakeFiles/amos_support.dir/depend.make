# Empty dependencies file for amos_support.
# This may be replaced when dependencies are built.
