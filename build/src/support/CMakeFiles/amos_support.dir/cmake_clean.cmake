file(REMOVE_RECURSE
  "CMakeFiles/amos_support.dir/bit_matrix.cc.o"
  "CMakeFiles/amos_support.dir/bit_matrix.cc.o.d"
  "CMakeFiles/amos_support.dir/json.cc.o"
  "CMakeFiles/amos_support.dir/json.cc.o.d"
  "CMakeFiles/amos_support.dir/math_utils.cc.o"
  "CMakeFiles/amos_support.dir/math_utils.cc.o.d"
  "CMakeFiles/amos_support.dir/str_utils.cc.o"
  "CMakeFiles/amos_support.dir/str_utils.cc.o.d"
  "libamos_support.a"
  "libamos_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
