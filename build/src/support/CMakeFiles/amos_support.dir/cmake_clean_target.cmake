file(REMOVE_RECURSE
  "libamos_support.a"
)
