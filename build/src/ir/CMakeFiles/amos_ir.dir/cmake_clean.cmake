file(REMOVE_RECURSE
  "CMakeFiles/amos_ir.dir/affine.cc.o"
  "CMakeFiles/amos_ir.dir/affine.cc.o.d"
  "CMakeFiles/amos_ir.dir/expr.cc.o"
  "CMakeFiles/amos_ir.dir/expr.cc.o.d"
  "CMakeFiles/amos_ir.dir/interval.cc.o"
  "CMakeFiles/amos_ir.dir/interval.cc.o.d"
  "libamos_ir.a"
  "libamos_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
