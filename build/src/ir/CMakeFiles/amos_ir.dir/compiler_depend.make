# Empty compiler generated dependencies file for amos_ir.
# This may be replaced when dependencies are built.
