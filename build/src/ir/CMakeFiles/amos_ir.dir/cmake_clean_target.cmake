file(REMOVE_RECURSE
  "libamos_ir.a"
)
