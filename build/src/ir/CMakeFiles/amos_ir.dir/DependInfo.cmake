
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/affine.cc" "src/ir/CMakeFiles/amos_ir.dir/affine.cc.o" "gcc" "src/ir/CMakeFiles/amos_ir.dir/affine.cc.o.d"
  "/root/repo/src/ir/expr.cc" "src/ir/CMakeFiles/amos_ir.dir/expr.cc.o" "gcc" "src/ir/CMakeFiles/amos_ir.dir/expr.cc.o.d"
  "/root/repo/src/ir/interval.cc" "src/ir/CMakeFiles/amos_ir.dir/interval.cc.o" "gcc" "src/ir/CMakeFiles/amos_ir.dir/interval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/amos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
