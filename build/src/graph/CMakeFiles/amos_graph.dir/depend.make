# Empty dependencies file for amos_graph.
# This may be replaced when dependencies are built.
