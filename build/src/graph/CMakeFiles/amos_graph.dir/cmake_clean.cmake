file(REMOVE_RECURSE
  "CMakeFiles/amos_graph.dir/network.cc.o"
  "CMakeFiles/amos_graph.dir/network.cc.o.d"
  "CMakeFiles/amos_graph.dir/networks.cc.o"
  "CMakeFiles/amos_graph.dir/networks.cc.o.d"
  "libamos_graph.a"
  "libamos_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
