file(REMOVE_RECURSE
  "libamos_graph.a"
)
