# Empty dependencies file for amos_model.
# This may be replaced when dependencies are built.
