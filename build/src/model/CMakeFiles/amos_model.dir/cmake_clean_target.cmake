file(REMOVE_RECURSE
  "libamos_model.a"
)
