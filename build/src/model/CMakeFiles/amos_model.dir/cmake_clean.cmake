file(REMOVE_RECURSE
  "CMakeFiles/amos_model.dir/perf_model.cc.o"
  "CMakeFiles/amos_model.dir/perf_model.cc.o.d"
  "libamos_model.a"
  "libamos_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
