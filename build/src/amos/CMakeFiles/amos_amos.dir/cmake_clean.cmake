file(REMOVE_RECURSE
  "CMakeFiles/amos_amos.dir/amos.cc.o"
  "CMakeFiles/amos_amos.dir/amos.cc.o.d"
  "CMakeFiles/amos_amos.dir/cache.cc.o"
  "CMakeFiles/amos_amos.dir/cache.cc.o.d"
  "libamos_amos.a"
  "libamos_amos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_amos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
