file(REMOVE_RECURSE
  "libamos_amos.a"
)
