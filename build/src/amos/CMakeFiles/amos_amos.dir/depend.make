# Empty dependencies file for amos_amos.
# This may be replaced when dependencies are built.
