file(REMOVE_RECURSE
  "CMakeFiles/amos_mapping.dir/execute.cc.o"
  "CMakeFiles/amos_mapping.dir/execute.cc.o.d"
  "CMakeFiles/amos_mapping.dir/generate.cc.o"
  "CMakeFiles/amos_mapping.dir/generate.cc.o.d"
  "CMakeFiles/amos_mapping.dir/mapping.cc.o"
  "CMakeFiles/amos_mapping.dir/mapping.cc.o.d"
  "CMakeFiles/amos_mapping.dir/validate.cc.o"
  "CMakeFiles/amos_mapping.dir/validate.cc.o.d"
  "CMakeFiles/amos_mapping.dir/verify_bounds.cc.o"
  "CMakeFiles/amos_mapping.dir/verify_bounds.cc.o.d"
  "libamos_mapping.a"
  "libamos_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
