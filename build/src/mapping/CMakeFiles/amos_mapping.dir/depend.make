# Empty dependencies file for amos_mapping.
# This may be replaced when dependencies are built.
