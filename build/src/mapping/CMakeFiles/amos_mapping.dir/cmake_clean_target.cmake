file(REMOVE_RECURSE
  "libamos_mapping.a"
)
