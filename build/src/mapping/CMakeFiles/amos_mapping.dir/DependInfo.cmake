
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/execute.cc" "src/mapping/CMakeFiles/amos_mapping.dir/execute.cc.o" "gcc" "src/mapping/CMakeFiles/amos_mapping.dir/execute.cc.o.d"
  "/root/repo/src/mapping/generate.cc" "src/mapping/CMakeFiles/amos_mapping.dir/generate.cc.o" "gcc" "src/mapping/CMakeFiles/amos_mapping.dir/generate.cc.o.d"
  "/root/repo/src/mapping/mapping.cc" "src/mapping/CMakeFiles/amos_mapping.dir/mapping.cc.o" "gcc" "src/mapping/CMakeFiles/amos_mapping.dir/mapping.cc.o.d"
  "/root/repo/src/mapping/validate.cc" "src/mapping/CMakeFiles/amos_mapping.dir/validate.cc.o" "gcc" "src/mapping/CMakeFiles/amos_mapping.dir/validate.cc.o.d"
  "/root/repo/src/mapping/verify_bounds.cc" "src/mapping/CMakeFiles/amos_mapping.dir/verify_bounds.cc.o" "gcc" "src/mapping/CMakeFiles/amos_mapping.dir/verify_bounds.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/amos_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/amos_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/amos_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/amos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
