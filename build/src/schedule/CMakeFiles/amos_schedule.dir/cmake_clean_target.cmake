file(REMOVE_RECURSE
  "libamos_schedule.a"
)
