# Empty dependencies file for amos_schedule.
# This may be replaced when dependencies are built.
