file(REMOVE_RECURSE
  "CMakeFiles/amos_schedule.dir/profile.cc.o"
  "CMakeFiles/amos_schedule.dir/profile.cc.o.d"
  "CMakeFiles/amos_schedule.dir/schedule.cc.o"
  "CMakeFiles/amos_schedule.dir/schedule.cc.o.d"
  "libamos_schedule.a"
  "libamos_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
