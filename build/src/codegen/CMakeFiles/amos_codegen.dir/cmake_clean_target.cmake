file(REMOVE_RECURSE
  "libamos_codegen.a"
)
