# Empty dependencies file for amos_codegen.
# This may be replaced when dependencies are built.
