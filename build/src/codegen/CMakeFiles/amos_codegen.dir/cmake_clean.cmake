file(REMOVE_RECURSE
  "CMakeFiles/amos_codegen.dir/codegen.cc.o"
  "CMakeFiles/amos_codegen.dir/codegen.cc.o.d"
  "libamos_codegen.a"
  "libamos_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
