file(REMOVE_RECURSE
  "CMakeFiles/amos_ops.dir/config_suite.cc.o"
  "CMakeFiles/amos_ops.dir/config_suite.cc.o.d"
  "CMakeFiles/amos_ops.dir/conv_layers.cc.o"
  "CMakeFiles/amos_ops.dir/conv_layers.cc.o.d"
  "CMakeFiles/amos_ops.dir/operators.cc.o"
  "CMakeFiles/amos_ops.dir/operators.cc.o.d"
  "libamos_ops.a"
  "libamos_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
