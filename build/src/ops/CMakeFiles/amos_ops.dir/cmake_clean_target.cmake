file(REMOVE_RECURSE
  "libamos_ops.a"
)
