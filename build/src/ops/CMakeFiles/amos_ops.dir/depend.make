# Empty dependencies file for amos_ops.
# This may be replaced when dependencies are built.
