file(REMOVE_RECURSE
  "CMakeFiles/amos_explore.dir/learned_model.cc.o"
  "CMakeFiles/amos_explore.dir/learned_model.cc.o.d"
  "CMakeFiles/amos_explore.dir/stats.cc.o"
  "CMakeFiles/amos_explore.dir/stats.cc.o.d"
  "CMakeFiles/amos_explore.dir/trace_io.cc.o"
  "CMakeFiles/amos_explore.dir/trace_io.cc.o.d"
  "CMakeFiles/amos_explore.dir/tuner.cc.o"
  "CMakeFiles/amos_explore.dir/tuner.cc.o.d"
  "libamos_explore.a"
  "libamos_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
