file(REMOVE_RECURSE
  "libamos_explore.a"
)
