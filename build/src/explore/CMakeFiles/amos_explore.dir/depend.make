# Empty dependencies file for amos_explore.
# This may be replaced when dependencies are built.
