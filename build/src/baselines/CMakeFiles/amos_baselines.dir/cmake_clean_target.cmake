file(REMOVE_RECURSE
  "libamos_baselines.a"
)
