file(REMOVE_RECURSE
  "CMakeFiles/amos_baselines.dir/baselines.cc.o"
  "CMakeFiles/amos_baselines.dir/baselines.cc.o.d"
  "libamos_baselines.a"
  "libamos_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
