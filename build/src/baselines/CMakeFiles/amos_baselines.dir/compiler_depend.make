# Empty compiler generated dependencies file for amos_baselines.
# This may be replaced when dependencies are built.
