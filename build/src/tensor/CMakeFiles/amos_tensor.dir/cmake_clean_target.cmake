file(REMOVE_RECURSE
  "libamos_tensor.a"
)
