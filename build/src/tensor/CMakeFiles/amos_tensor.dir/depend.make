# Empty dependencies file for amos_tensor.
# This may be replaced when dependencies are built.
