file(REMOVE_RECURSE
  "CMakeFiles/amos_tensor.dir/computation.cc.o"
  "CMakeFiles/amos_tensor.dir/computation.cc.o.d"
  "CMakeFiles/amos_tensor.dir/reference.cc.o"
  "CMakeFiles/amos_tensor.dir/reference.cc.o.d"
  "CMakeFiles/amos_tensor.dir/tensor.cc.o"
  "CMakeFiles/amos_tensor.dir/tensor.cc.o.d"
  "libamos_tensor.a"
  "libamos_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
