file(REMOVE_RECURSE
  "CMakeFiles/test_config_suite.dir/test_config_suite.cc.o"
  "CMakeFiles/test_config_suite.dir/test_config_suite.cc.o.d"
  "test_config_suite"
  "test_config_suite.pdb"
  "test_config_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
