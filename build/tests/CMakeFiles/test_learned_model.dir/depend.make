# Empty dependencies file for test_learned_model.
# This may be replaced when dependencies are built.
