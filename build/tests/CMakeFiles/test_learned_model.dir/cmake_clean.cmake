file(REMOVE_RECURSE
  "CMakeFiles/test_learned_model.dir/test_learned_model.cc.o"
  "CMakeFiles/test_learned_model.dir/test_learned_model.cc.o.d"
  "test_learned_model"
  "test_learned_model.pdb"
  "test_learned_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_learned_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
