# Empty dependencies file for test_amos.
# This may be replaced when dependencies are built.
