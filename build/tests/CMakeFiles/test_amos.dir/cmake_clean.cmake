file(REMOVE_RECURSE
  "CMakeFiles/test_amos.dir/test_amos.cc.o"
  "CMakeFiles/test_amos.dir/test_amos.cc.o.d"
  "test_amos"
  "test_amos.pdb"
  "test_amos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_amos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
