# Empty dependencies file for test_model_sim.
# This may be replaced when dependencies are built.
