# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
include("/root/repo/build/tests/test_mapping[1]_include.cmake")
include("/root/repo/build/tests/test_generate[1]_include.cmake")
include("/root/repo/build/tests/test_execute[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_model_sim[1]_include.cmake")
include("/root/repo/build/tests/test_tuner[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_amos[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_learned_model[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_interval[1]_include.cmake")
include("/root/repo/build/tests/test_config_suite[1]_include.cmake")
include("/root/repo/build/tests/test_facade[1]_include.cmake")
include("/root/repo/build/tests/test_reporting[1]_include.cmake")
