file(REMOVE_RECURSE
  "../bench/bench_fig6_c2d"
  "../bench/bench_fig6_c2d.pdb"
  "CMakeFiles/bench_fig6_c2d.dir/bench_fig6_c2d.cc.o"
  "CMakeFiles/bench_fig6_c2d.dir/bench_fig6_c2d.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_c2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
