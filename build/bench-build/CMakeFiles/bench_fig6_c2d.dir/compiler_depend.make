# Empty compiler generated dependencies file for bench_fig6_c2d.
# This may be replaced when dependencies are built.
