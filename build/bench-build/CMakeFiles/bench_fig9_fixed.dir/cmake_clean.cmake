file(REMOVE_RECURSE
  "../bench/bench_fig9_fixed"
  "../bench/bench_fig9_fixed.pdb"
  "CMakeFiles/bench_fig9_fixed.dir/bench_fig9_fixed.cc.o"
  "CMakeFiles/bench_fig9_fixed.dir/bench_fig9_fixed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
