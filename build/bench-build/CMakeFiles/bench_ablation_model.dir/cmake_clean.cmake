file(REMOVE_RECURSE
  "../bench/bench_ablation_model"
  "../bench/bench_ablation_model.pdb"
  "CMakeFiles/bench_ablation_model.dir/bench_ablation_model.cc.o"
  "CMakeFiles/bench_ablation_model.dir/bench_ablation_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
