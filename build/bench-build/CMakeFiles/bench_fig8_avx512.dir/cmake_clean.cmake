file(REMOVE_RECURSE
  "../bench/bench_fig8_avx512"
  "../bench/bench_fig8_avx512.pdb"
  "CMakeFiles/bench_fig8_avx512.dir/bench_fig8_avx512.cc.o"
  "CMakeFiles/bench_fig8_avx512.dir/bench_fig8_avx512.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_avx512.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
