# Empty dependencies file for bench_fig8_avx512.
# This may be replaced when dependencies are built.
