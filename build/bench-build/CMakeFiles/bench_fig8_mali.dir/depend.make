# Empty dependencies file for bench_fig8_mali.
# This may be replaced when dependencies are built.
