file(REMOVE_RECURSE
  "../bench/bench_fig8_mali"
  "../bench/bench_fig8_mali.pdb"
  "CMakeFiles/bench_fig8_mali.dir/bench_fig8_mali.cc.o"
  "CMakeFiles/bench_fig8_mali.dir/bench_fig8_mali.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mali.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
