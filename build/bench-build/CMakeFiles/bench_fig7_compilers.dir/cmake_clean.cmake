file(REMOVE_RECURSE
  "../bench/bench_fig7_compilers"
  "../bench/bench_fig7_compilers.pdb"
  "CMakeFiles/bench_fig7_compilers.dir/bench_fig7_compilers.cc.o"
  "CMakeFiles/bench_fig7_compilers.dir/bench_fig7_compilers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_compilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
