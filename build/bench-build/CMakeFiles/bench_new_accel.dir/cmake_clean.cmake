file(REMOVE_RECURSE
  "../bench/bench_new_accel"
  "../bench/bench_new_accel.pdb"
  "CMakeFiles/bench_new_accel.dir/bench_new_accel.cc.o"
  "CMakeFiles/bench_new_accel.dir/bench_new_accel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_new_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
