# Empty dependencies file for bench_new_accel.
# This may be replaced when dependencies are built.
