file(REMOVE_RECURSE
  "../bench/bench_fig7_networks"
  "../bench/bench_fig7_networks.pdb"
  "CMakeFiles/bench_fig7_networks.dir/bench_fig7_networks.cc.o"
  "CMakeFiles/bench_fig7_networks.dir/bench_fig7_networks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
