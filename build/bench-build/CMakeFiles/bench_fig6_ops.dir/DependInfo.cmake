
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_ops.cc" "bench-build/CMakeFiles/bench_fig6_ops.dir/bench_fig6_ops.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig6_ops.dir/bench_fig6_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amos/CMakeFiles/amos_amos.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/amos_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/amos_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/amos_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/amos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/amos_model.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/amos_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/amos_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/amos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/amos_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/amos_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/amos_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/amos_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/amos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
