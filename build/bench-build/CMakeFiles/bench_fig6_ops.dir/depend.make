# Empty dependencies file for bench_fig6_ops.
# This may be replaced when dependencies are built.
