file(REMOVE_RECURSE
  "../bench/bench_fig6_ops"
  "../bench/bench_fig6_ops.pdb"
  "CMakeFiles/bench_fig6_ops.dir/bench_fig6_ops.cc.o"
  "CMakeFiles/bench_fig6_ops.dir/bench_fig6_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
