file(REMOVE_RECURSE
  "../bench/bench_ablation_intrinsic"
  "../bench/bench_ablation_intrinsic.pdb"
  "CMakeFiles/bench_ablation_intrinsic.dir/bench_ablation_intrinsic.cc.o"
  "CMakeFiles/bench_ablation_intrinsic.dir/bench_ablation_intrinsic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_intrinsic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
