# Empty compiler generated dependencies file for bench_ablation_intrinsic.
# This may be replaced when dependencies are built.
