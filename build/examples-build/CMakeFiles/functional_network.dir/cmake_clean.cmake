file(REMOVE_RECURSE
  "../examples/functional_network"
  "../examples/functional_network.pdb"
  "CMakeFiles/functional_network.dir/functional_network.cpp.o"
  "CMakeFiles/functional_network.dir/functional_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
