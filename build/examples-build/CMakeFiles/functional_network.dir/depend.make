# Empty dependencies file for functional_network.
# This may be replaced when dependencies are built.
