file(REMOVE_RECURSE
  "../examples/custom_accelerator"
  "../examples/custom_accelerator.pdb"
  "CMakeFiles/custom_accelerator.dir/custom_accelerator.cpp.o"
  "CMakeFiles/custom_accelerator.dir/custom_accelerator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
