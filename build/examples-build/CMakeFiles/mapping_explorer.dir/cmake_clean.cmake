file(REMOVE_RECURSE
  "../examples/mapping_explorer"
  "../examples/mapping_explorer.pdb"
  "CMakeFiles/mapping_explorer.dir/mapping_explorer.cpp.o"
  "CMakeFiles/mapping_explorer.dir/mapping_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
