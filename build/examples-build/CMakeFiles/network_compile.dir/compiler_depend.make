# Empty compiler generated dependencies file for network_compile.
# This may be replaced when dependencies are built.
