file(REMOVE_RECURSE
  "../examples/network_compile"
  "../examples/network_compile.pdb"
  "CMakeFiles/network_compile.dir/network_compile.cpp.o"
  "CMakeFiles/network_compile.dir/network_compile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
