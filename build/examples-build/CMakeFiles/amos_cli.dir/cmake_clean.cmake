file(REMOVE_RECURSE
  "../examples/amos_cli"
  "../examples/amos_cli.pdb"
  "CMakeFiles/amos_cli.dir/amos_cli.cpp.o"
  "CMakeFiles/amos_cli.dir/amos_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amos_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
