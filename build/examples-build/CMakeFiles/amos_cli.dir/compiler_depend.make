# Empty compiler generated dependencies file for amos_cli.
# This may be replaced when dependencies are built.
