#include "validate.hh"

#include "support/logging.hh"
#include "support/trace.hh"

namespace amos {

ValidationResult
validateMatching(const BitMatrix &x, const BitMatrix &y,
                 const BitMatrix &z, bool allow_partial)
{
    TraceSpan span("mapping.validate", "mapping");
    require(x.rows() == z.rows(),
            "validateMatching: operand counts differ (X has ",
            x.rows(), ", Z has ", z.rows(), ")");
    require(y.rows() == z.cols(),
            "validateMatching: Y rows (", y.rows(),
            ") must equal intrinsic iteration count (", z.cols(), ")");
    require(y.cols() == x.cols(),
            "validateMatching: Y cols (", y.cols(),
            ") must equal software iteration count (", x.cols(), ")");

    ValidationResult res;
    res.softwareAccess = z.star(y);
    res.hardwareAccess = x.star(y.transposed());

    // X' = X over (mapped) software iteration columns.
    for (std::size_t s = 0; s < x.cols(); ++s) {
        bool mapped = false;
        for (std::size_t k = 0; k < y.rows(); ++k)
            mapped |= y.at(k, s);
        if (allow_partial && !mapped)
            continue; // outer loop: excluded from the check
        for (std::size_t t = 0; t < x.rows(); ++t) {
            if (res.softwareAccess.at(t, s) != x.at(t, s)) {
                res.failure = "software access mismatch at operand " +
                              std::to_string(t) + ", iteration " +
                              std::to_string(s);
                return res;
            }
        }
    }

    // Z' = Z over (covered) intrinsic iteration columns.
    for (std::size_t k = 0; k < z.cols(); ++k) {
        bool covered = false;
        for (std::size_t s = 0; s < y.cols(); ++s)
            covered |= y.at(k, s);
        if (allow_partial && !covered)
            continue; // padded to extent 1: excluded from the check
        for (std::size_t t = 0; t < z.rows(); ++t) {
            if (res.hardwareAccess.at(t, k) != z.at(t, k)) {
                res.failure = "hardware access mismatch at operand " +
                              std::to_string(t) +
                              ", intrinsic iteration " +
                              std::to_string(k);
                return res;
            }
        }
    }

    res.valid = true;
    return res;
}

} // namespace amos
