/**
 * @file
 * Static bounds verification of a mapping plan: interval analysis
 * proves, without executing anything, that
 *
 *  - every physical compute-mapping expression stays inside its
 *    intrinsic iteration's extent,
 *  - every quotient expression stays inside its tile-grid extent,
 *  - every packed address (base + within-tile offset) stays inside
 *    its operand's packed buffer.
 *
 * This complements the dynamic executors in mapping/execute.hh: the
 * executors check value correctness on one input, the verifier
 * checks address safety for the whole iteration domain at once.
 */

#ifndef AMOS_MAPPING_VERIFY_BOUNDS_HH
#define AMOS_MAPPING_VERIFY_BOUNDS_HH

#include <string>

#include "ir/interval.hh"
#include "mapping/mapping.hh"

namespace amos {

/** Outcome of static verification. */
struct BoundsReport
{
    bool ok = true;
    std::string failure; ///< first violated property, empty when ok
};

/** Iterator ranges of a computation: [0, extent-1] each. */
IntervalEnv iterationIntervals(const TensorComputation &comp);

/** Statically verify a (valid) mapping plan's address bounds. */
BoundsReport verifyPlanBounds(const MappingPlan &plan);

} // namespace amos

#endif // AMOS_MAPPING_VERIFY_BOUNDS_HH
