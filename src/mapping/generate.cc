#include "generate.hh"

#include <algorithm>

#include "quant/legality.hh"
#include "support/logging.hh"
#include "support/trace.hh"

namespace amos {

namespace {

/**
 * Output-tensor dimension position of a spatial software iteration
 * (-1 if it does not appear in the output index list).
 */
int
outputDimOf(const TensorComputation &comp, std::size_t s)
{
    const VarNode *var = comp.iters()[s].var.node();
    const auto &indices = comp.outputIndices();
    for (std::size_t d = 0; d < indices.size(); ++d)
        if (usesVar(indices[d], var))
            return static_cast<int>(d);
    return -1;
}

/**
 * Check the addressability (run-suffix) rule for one spatial group:
 * within each maximal run of adjacent output dimensions among the
 * candidates, selected iterations must form a suffix of the run.
 */
bool
groupIsAddressable(const TensorComputation &comp,
                   const std::vector<std::size_t> &candidates,
                   const std::vector<std::size_t> &selected)
{
    if (candidates.empty())
        return true;

    // Order candidates by their output dimension.
    std::vector<std::pair<int, std::size_t>> by_dim;
    for (auto s : candidates) {
        int dim = outputDimOf(comp, s);
        if (dim < 0)
            return true; // not output-addressing: no constraint
        by_dim.push_back({dim, s});
    }
    std::sort(by_dim.begin(), by_dim.end());

    auto is_selected = [&selected](std::size_t s) {
        return std::find(selected.begin(), selected.end(), s) !=
               selected.end();
    };

    // Walk maximal runs of adjacent dimensions; inside a run a
    // selected iteration may not be followed (inward) by an
    // unselected one.
    std::size_t i = 0;
    while (i < by_dim.size()) {
        std::size_t j = i;
        while (j + 1 < by_dim.size() &&
               by_dim[j + 1].first == by_dim[j].first + 1)
            ++j;
        // Run spans [i, j]; require selected entries to be a suffix.
        bool seen_selected = false;
        for (std::size_t p = i; p <= j; ++p) {
            bool sel = is_selected(by_dim[p].second);
            if (seen_selected && !sel)
                return false;
            seen_selected |= sel;
        }
        i = j + 1;
    }
    return true;
}

} // namespace

std::vector<ComputeMapping>
enumerateMappings(const TensorComputation &comp, const Intrinsic &intr,
                  const GeneratorOptions &options)
{
    TraceSpan span("mapping.enumerate", "mapping");
    span.arg("computation", comp.name());
    span.arg("intrinsic", intr.name());

    const auto &compute = intr.compute;

    // Dtype legality is part of mapping validity: when the operand
    // shapes line up (same arity and combine kind), every candidate
    // would bind software operands to intrinsic lanes, so incompatible
    // dtype classes kill the whole enumeration up front. Arity or
    // combine mismatches keep their historical behaviour (the
    // structural machinery below rejects or scores them on its own).
    if (comp.inputs().size() == compute.numSrcs() &&
        comp.combine() == compute.combine()) {
        const auto legal = quant::checkDtypeLegality(comp, compute);
        if (!legal.legal) {
            span.arg("dtype_illegal", legal.reason);
            span.arg("candidates", static_cast<std::int64_t>(0));
            return {};
        }
    }

    BitMatrix compat = compatibilityMatrix(comp, compute);
    std::size_t num_sw = comp.numIters();
    std::size_t num_hw = compute.numIters();

    // Candidate intrinsic iterations per software iteration.
    std::vector<std::vector<std::size_t>> choices(num_sw);
    for (std::size_t s = 0; s < num_sw; ++s)
        for (std::size_t k = 0; k < num_hw; ++k)
            if (compat.at(k, s))
                choices[s].push_back(k);

    // Compatible software iterations per intrinsic iteration (the
    // candidate pool used by the addressability rule and the
    // nonempty-group requirement).
    std::vector<std::vector<std::size_t>> pool(num_hw);
    for (std::size_t k = 0; k < num_hw; ++k)
        for (std::size_t s = 0; s < num_sw; ++s)
            if (compat.at(k, s))
                pool[k].push_back(s);

    BitMatrix x = softwareAccessMatrix(comp);
    BitMatrix z = compute.accessMatrix();

    std::vector<ComputeMapping> out;
    ComputeMapping current;
    current.groups.assign(num_hw, {});

    // Depth-first assignment: software iteration s goes to one of its
    // compatible intrinsic iterations, or stays outer.
    auto emit = [&]() {
        // A group must be nonempty whenever some software iteration
        // is compatible with it: an intrinsic dimension that could be
        // covered but is not would silently waste the whole dimension.
        for (std::size_t k = 0; k < num_hw; ++k)
            if (current.groups[k].empty() && !pool[k].empty())
                return;

        if (options.policy == LegalityPolicy::Addressable) {
            for (std::size_t k = 0; k < num_hw; ++k) {
                if (compute.iters()[k].reduction)
                    continue;
                if (!groupIsAddressable(comp, pool[k],
                                        current.groups[k]))
                    return;
            }
        }

        // The paper's Algorithm-1 check (guaranteed by construction
        // from the compatibility matrix, but run regardless: this is
        // the framework's ground truth for semantic preservation).
        BitMatrix y(num_hw, num_sw);
        for (std::size_t k = 0; k < num_hw; ++k)
            for (auto s : current.groups[k])
                y.set(k, s, true);
        if (!validateMatching(x, y, z, true).valid)
            return;

        out.push_back(current);
    };

    // Recursive DFS over software iterations: each is assigned to one
    // compatible intrinsic iteration or (first branch) stays outer.
    auto capped = [&]() {
        return options.maxCandidates &&
               out.size() >= options.maxCandidates;
    };
    auto dfs = [&](auto &&self, std::size_t depth) -> void {
        if (capped())
            return;
        if (depth == num_sw) {
            emit();
            return;
        }
        self(self, depth + 1); // leave outer
        for (auto k : choices[depth]) {
            if (capped())
                return;
            current.groups[k].push_back(depth);
            self(self, depth + 1);
            current.groups[k].pop_back();
        }
    };
    dfs(dfs, 0);
    span.arg("candidates",
             static_cast<std::int64_t>(out.size()));
    return out;
}

std::vector<MappingPlan>
enumeratePlans(const TensorComputation &comp, const Intrinsic &intr,
               const GeneratorOptions &options)
{
    std::vector<MappingPlan> plans;
    for (auto &mapping : enumerateMappings(comp, intr, options)) {
        MappingPlan plan(comp, intr, std::move(mapping));
        require(plan.valid(),
                "enumerateMappings produced an invalid mapping for ",
                comp.name(), " on ", intr.name());
        plans.push_back(std::move(plan));
    }
    return plans;
}

bool
isTensorizable(const TensorComputation &comp, const Intrinsic &intr)
{
    if (comp.inputs().size() != intr.compute.numSrcs() ||
        comp.combine() != intr.compute.combine())
        return false;
    if (!quant::checkDtypeLegality(comp, intr.compute).legal)
        return false;
    GeneratorOptions options;
    options.maxCandidates = 1;
    return !enumerateMappings(comp, intr, options).empty();
}

} // namespace amos
