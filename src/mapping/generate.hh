/**
 * @file
 * Mapping-space enumeration (Sec. 5.1 + 7.6 of the AMOS paper).
 *
 * Every software iteration is assigned to a compatible intrinsic
 * iteration or left as an outer loop; Algorithm 1 then validates the
 * candidate. Two legality policies are provided:
 *
 *  - Permissive: any assignment whose per-iteration compatibility
 *    holds (exact Algorithm-1 semantics). A group may only be empty
 *    when no software iteration is compatible with it at all.
 *
 *  - Addressable (default): additionally requires the fused groups of
 *    *output-addressing* (spatial) intrinsic iterations to be
 *    realisable with the single-stride tile addressing of the memory
 *    abstraction: within each maximal run of adjacent output-tensor
 *    dimensions, the selected iterations must form a suffix of the
 *    run. This reproduces the mapping counts the paper reports for
 *    C2D/GRP/DIL (35) and T2D (7); see EXPERIMENTS.md for the full
 *    comparison.
 */

#ifndef AMOS_MAPPING_GENERATE_HH
#define AMOS_MAPPING_GENERATE_HH

#include <vector>

#include "mapping/mapping.hh"

namespace amos {

/** Fusion-legality policy for spatial groups. */
enum class LegalityPolicy
{
    Permissive,
    Addressable,
};

/** Options controlling mapping enumeration. */
struct GeneratorOptions
{
    LegalityPolicy policy = LegalityPolicy::Addressable;

    /** Safety cap on enumerated candidates (0 = unlimited). */
    std::size_t maxCandidates = 0;
};

/**
 * Enumerate all valid compute mappings of a computation onto an
 * intrinsic under the given policy. Each returned mapping passes
 * Algorithm 1.
 */
std::vector<ComputeMapping> enumerateMappings(
    const TensorComputation &comp, const Intrinsic &intr,
    const GeneratorOptions &options = {});

/**
 * Convenience: enumerate and wrap each mapping in a full plan.
 */
std::vector<MappingPlan> enumeratePlans(
    const TensorComputation &comp, const Intrinsic &intr,
    const GeneratorOptions &options = {});

/**
 * True iff at least one valid mapping exists (used by the network
 * mapper to decide tensorizability of an operator).
 */
bool isTensorizable(const TensorComputation &comp,
                    const Intrinsic &intr);

} // namespace amos

#endif // AMOS_MAPPING_GENERATE_HH
