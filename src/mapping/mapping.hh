/**
 * @file
 * Software-hardware mapping (Def. 4.3) and the two-step mapping
 * generation of Sec. 5.1.
 *
 * A ComputeMapping assigns each software iteration to at most one
 * intrinsic iteration; iterations fused into the same intrinsic
 * iteration are flattened in loop order. The MappingPlan materialises
 * everything downstream consumers need:
 *
 *  - the matching matrix Y and its validation against Algorithm 1;
 *  - virtual mapping (no hardware constraints): fused flat indices,
 *    zero base addresses, full-shape strides;
 *  - physical mapping (problem-size and capacity constraints): mod
 *    restriction per intrinsic iteration, quotient outer loops,
 *    trailing padding factors, tiled base address / stride
 *    expressions per operand (the paper's Fig. 3 parts g/h).
 */

#ifndef AMOS_MAPPING_MAPPING_HH
#define AMOS_MAPPING_MAPPING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/abstraction.hh"
#include "mapping/validate.hh"
#include "support/bit_matrix.hh"
#include "tensor/computation.hh"

namespace amos {

/**
 * Compute mapping: for each intrinsic iteration, the ordered list of
 * software iteration positions fused into it. Software iterations in
 * no group stay outer loops.
 */
struct ComputeMapping
{
    std::vector<std::vector<std::size_t>> groups;

    /** True iff software iteration s appears in some group. */
    bool isMapped(std::size_t s) const;

    /** Compact signature like "[n,q | k | c,r]" for diagnostics. */
    std::string signature(const TensorComputation &comp) const;
};

/**
 * Software access matrix X (Fig. 4): rows are operands in the order
 * [inputs..., output], columns are software iterations; an entry is
 * set iff the iteration appears in the operand's access indices.
 */
BitMatrix softwareAccessMatrix(const TensorComputation &comp);

/**
 * Compatibility matrix: entry (k, s) set iff software iteration s may
 * map to intrinsic iteration k, i.e. column s of X equals column k of
 * Z and s carries no tensorize barrier.
 */
BitMatrix compatibilityMatrix(const TensorComputation &comp,
                              const ComputeAbstraction &intr);

/**
 * Everything derivable from (computation, intrinsic, compute
 * mapping): validated matrices, fused/quotient structure, padding,
 * mapping expressions, per-operand memory mapping.
 */
class MappingPlan
{
  public:
    /** Per-intrinsic-iteration fusion summary. */
    struct GroupInfo
    {
        std::vector<std::size_t> members; ///< software iter positions
        std::int64_t fusedExtent = 1;     ///< product of member extents
        std::int64_t intrinsicExtent = 1; ///< problem size along iter
        std::int64_t quotient = 1;        ///< ceil(fused / intrinsic)
        bool padded = false;              ///< trailing padding needed
    };

    /** One axis of the outer (schedulable) loop nest. */
    struct OuterAxis
    {
        enum class Kind
        {
            Unmapped,      ///< a software iteration left outside
            GroupQuotient, ///< tile index of an intrinsic iteration
        };
        Kind kind;
        std::size_t ref; ///< iter position or intrinsic iter index
        std::int64_t extent = 1;
        std::string name;
    };

    /** Per-operand physical memory-mapping summary. */
    struct OperandInfo
    {
        std::string name;
        bool isOutput = false;
        int inputIndex = -1;          ///< -1 for the output
        DataType dtype = DataType::F16;
        /// Intrinsic iterations indexing this operand, in order.
        std::vector<std::size_t> intrinsicIters;
        /// Outer axes (indices into outerAxes()) the operand's tile
        /// address depends on; reuse happens across all other axes.
        std::vector<std::size_t> dependentAxes;
        std::int64_t tileElems = 1;   ///< elements per intrinsic tile
        std::int64_t tileBytes = 0;
        /// Row stride inside the packed tile (the paper's stride_x).
        std::int64_t tileStride = 1;
        /// Number of distinct tiles the operand occupies overall.
        std::int64_t numTiles = 1;
        /// Base-address expression over software iterators (Fig. 3h).
        Expr baseAddress;
    };

    /**
     * Build a plan. The computation and intrinsic are copied into the
     * plan (both are cheap handle-holders), so callers may pass
     * temporaries.
     */
    MappingPlan(TensorComputation comp, Intrinsic intr,
                ComputeMapping mapping);

    const TensorComputation &computation() const { return _comp; }
    const Intrinsic &intrinsic() const { return _intr; }
    const ComputeMapping &mapping() const { return _mapping; }

    /** Matching matrix Y built from the groups. */
    const BitMatrix &matchingMatrix() const { return _y; }

    /** Algorithm-1 validation result for (X, Y, Z). */
    const ValidationResult &validation() const { return _validation; }
    bool valid() const { return _validation.valid; }

    const std::vector<GroupInfo> &groups() const { return _groups; }
    const std::vector<std::size_t> &unmappedIters() const
    {
        return _unmapped;
    }
    const std::vector<OuterAxis> &outerAxes() const
    {
        return _outerAxes;
    }
    const std::vector<OperandInfo> &operands() const
    {
        return _operands;
    }

    /** Total intrinsic calls = product of outer-axis extents. */
    std::int64_t intrinsicCallCount() const;

    /**
     * Compute inflation from trailing padding: executed scalar ops
     * divided by useful scalar ops (>= 1).
     */
    double paddingWasteFactor() const;

    /**
     * Virtual compute-mapping expressions (step 1 of Sec. 5.1): the
     * unrestricted fused flat index per intrinsic iteration.
     */
    std::vector<Expr> virtualComputeExprs() const;

    /**
     * Physical compute-mapping expressions (step 2): fused flat index
     * modulo the intrinsic extent, as printed in Table 5.
     */
    std::vector<Expr> physicalComputeExprs() const;

    /** Quotient expressions locating the tile per intrinsic iter. */
    std::vector<Expr> quotientExprs() const;

    /** Table-5-style one-line rendering of the compute mapping. */
    std::string computeMappingString() const;

    /** Fig. 3h-style rendering of the memory mapping. */
    std::string memoryMappingString() const;

  private:
    void buildGroups();
    void buildOuterAxes();
    void buildOperands();
    Expr fusedFlatExpr(const GroupInfo &group) const;

    TensorComputation _comp;
    Intrinsic _intr;
    ComputeMapping _mapping;
    BitMatrix _y;
    ValidationResult _validation;
    std::vector<GroupInfo> _groups;
    std::vector<std::size_t> _unmapped;
    std::vector<OuterAxis> _outerAxes;
    std::vector<OperandInfo> _operands;
};

} // namespace amos

#endif // AMOS_MAPPING_MAPPING_HH
