#include "execute.hh"

#include "mapping/exec_plan.hh"
#include "mapping/jit_hook.hh"
#include "quant/semantics.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/trace.hh"
#include "tensor/reference.hh"

namespace amos {

namespace {

/** Odometer over a list of extents; calls fn with the index vector. */
template <typename Fn>
void
forEachIndex(const std::vector<std::int64_t> &extents, Fn fn)
{
    std::vector<std::int64_t> idx(extents.size(), 0);
    for (auto e : extents)
        if (e <= 0)
            return;
    bool done = false;
    while (!done) {
        fn(idx);
        std::size_t d = extents.size();
        done = extents.empty();
        while (d > 0) {
            --d;
            if (++idx[d] < extents[d])
                break;
            idx[d] = 0;
            if (d == 0)
                done = true;
        }
    }
}

/** Unflatten a fused flat value into member software coordinates. */
void
unflattenGroup(const TensorComputation &comp,
               const MappingPlan::GroupInfo &group, std::int64_t flat,
               std::vector<std::int64_t> &sw_coords)
{
    for (std::size_t pos = group.members.size(); pos-- > 0;) {
        std::size_t s = group.members[pos];
        std::int64_t extent = comp.iters()[s].extent;
        sw_coords[s] = flat % extent;
        flat /= extent;
    }
}

std::int64_t
readAccess(const Buffer &buf, const std::vector<Expr> &indices,
           const VarBinding &binding,
           std::vector<std::int64_t> &scratch)
{
    scratch.resize(indices.size());
    for (std::size_t d = 0; d < indices.size(); ++d)
        scratch[d] = evalExpr(indices[d], binding);
    return buf.flatten(scratch);
}

/** Scalar interpreter for the direct path (fallback + baseline). */
void
interpretMappedDirect(const MappingPlan &plan,
                      const std::vector<const Buffer *> &inputs,
                      Buffer &output)
{
    const auto &comp = plan.computation();
    const auto &intr = plan.intrinsic().compute;
    // IntDot accumulates exactly through the integer lanes; the
    // float disciplines use the converting view (exact widening for
    // bf16 inputs, since their output is f32).
    const bool intDot = quant::classifyComputation(comp).kind ==
                        quant::KernelSemantics::IntDot;

    std::vector<std::int64_t> outer_extents;
    for (const auto &axis : plan.outerAxes())
        outer_extents.push_back(axis.extent);
    std::vector<std::int64_t> intr_extents = intr.problemSize();

    const auto &groups = plan.groups();
    const std::size_t K = groups.size();
    std::vector<std::int64_t> sw_coords(comp.numIters(), 0);
    std::vector<std::int64_t> scratch;
    VarBinding binding;
    for (std::size_t s = 0; s < comp.numIters(); ++s)
        binding[comp.iters()[s].var.node()] = 0;

    forEachIndex(outer_extents, [&](const std::vector<std::int64_t>
                                        &outer) {
        // Quotient per intrinsic iteration at this outer coordinate.
        std::vector<std::int64_t> quotient(K, 0);
        for (std::size_t a = 0; a < plan.outerAxes().size(); ++a) {
            const auto &axis = plan.outerAxes()[a];
            if (axis.kind == MappingPlan::OuterAxis::Kind::Unmapped) {
                sw_coords[axis.ref] = outer[a];
                binding[comp.iters()[axis.ref].var.node()] = outer[a];
            } else {
                quotient[axis.ref] = outer[a];
            }
        }

        // Rebind only group coordinates the intrinsic odometer moved
        // (or ones left stale by a padding skip).
        std::size_t stale = 0;
        forEachIndexDelta(intr_extents, [&](const std::vector<
                                                std::int64_t> &intr_idx,
                                            std::size_t dirty) {
            for (std::size_t k = std::min(dirty, stale); k < K; ++k) {
                std::int64_t flat =
                    quotient[k] * groups[k].intrinsicExtent +
                    intr_idx[k];
                if (flat >= groups[k].fusedExtent) {
                    stale = k;
                    return; // trailing padding
                }
                unflattenGroup(comp, groups[k], flat, sw_coords);
                for (auto s : groups[k].members)
                    binding[comp.iters()[s].var.node()] =
                        sw_coords[s];
            }
            stale = K;

            std::int64_t out_flat = readAccess(
                output, comp.outputIndices(), binding, scratch);
            const bool mulAdd =
                comp.combine() == CombineKind::MultiplyAdd;
            std::int64_t in0_flat = readAccess(
                *inputs[0], comp.inputs()[0].indices, binding,
                scratch);
            std::int64_t in1_flat =
                mulAdd ? readAccess(*inputs[1],
                                    comp.inputs()[1].indices, binding,
                                    scratch)
                       : -1;
            if (intDot) {
                std::int64_t update = inputs[0]->intAt(in0_flat);
                if (mulAdd)
                    update *= inputs[1]->intAt(in1_flat);
                output.intAccumulate(out_flat, update);
            } else {
                float update = inputs[0]->at(in0_flat);
                if (mulAdd)
                    update *= inputs[1]->at(in1_flat);
                output.accumulate(out_flat, update);
            }
        });
    });
}

/** Interpreter staging arithmetic, float disciplines. */
struct InterpFloatOps
{
    using Stream = float;
    static Stream
    load(const Buffer &b, std::int64_t i)
    {
        return b.at(i); // exact widening for bf16 lanes
    }
    static void
    store(Buffer &b, std::int64_t i, Stream v)
    {
        b.set(i, v);
    }
    static void
    mulAdd(Stream &slot, Stream a, Stream b)
    {
        slot += a * b;
    }
    static void
    add(Stream &slot, Stream a)
    {
        slot += a;
    }
};

/**
 * Interpreter staging arithmetic, IntDot discipline: exact loads and
 * the wrapping int32 accumulate of quant::intDotStep.
 */
struct InterpIntOps
{
    using Stream = std::int32_t;
    static Stream
    load(const Buffer &b, std::int64_t i)
    {
        return static_cast<Stream>(b.intAt(i));
    }
    static void
    store(Buffer &b, std::int64_t i, Stream v)
    {
        b.intSet(i, v);
    }
    static void
    mulAdd(Stream &slot, Stream a, Stream b)
    {
        slot = static_cast<Stream>(
            static_cast<std::int64_t>(slot) +
            static_cast<std::int64_t>(a) * b);
    }
    static void
    add(Stream &slot, Stream a)
    {
        slot = static_cast<Stream>(static_cast<std::int64_t>(slot) +
                                   a);
    }
};

/** Scalar interpreter for the packed path (fallback + baseline). */
template <typename Ops>
void
interpretMappedPackedT(const MappingPlan &plan,
                       const std::vector<const Buffer *> &inputs,
                       Buffer &output)
{
    using StreamT = typename Ops::Stream;
    const auto &comp = plan.computation();
    const auto &intr = plan.intrinsic().compute;

    const auto &operands = plan.operands();
    auto phys_exprs = plan.physicalComputeExprs();

    // Packed storage per operand: numTiles x tileElems, zero-filled
    // so trailing-padding slots contribute nothing.
    std::vector<std::vector<StreamT>> packed;
    for (const auto &op : operands)
        packed.emplace_back(
            static_cast<std::size_t>(op.numTiles * op.tileElems),
            StreamT{});

    // Packed address of an operand under a full software binding:
    // evaluated base-address expression plus the row-major physical
    // offset inside the tile.
    auto packed_addr = [&](const MappingPlan::OperandInfo &op,
                           const VarBinding &binding) {
        std::int64_t addr = evalExpr(op.baseAddress, binding);
        std::int64_t offset = 0;
        for (auto k : op.intrinsicIters) {
            std::int64_t phys = evalExpr(phys_exprs[k], binding);
            offset = offset * intr.iters()[k].extent + phys;
        }
        return addr + offset;
    };

    // Stage 1: pack the inputs by sweeping the software domain,
    // rebinding only the coordinates the odometer moved.
    std::vector<std::int64_t> sw_extents;
    for (const auto &iv : comp.iters())
        sw_extents.push_back(iv.extent);

    VarBinding binding;
    std::vector<std::int64_t> scratch;
    forEachIndexDelta(sw_extents, [&](const std::vector<std::int64_t>
                                          &idx,
                                      std::size_t dirty) {
        for (std::size_t s = dirty; s < comp.numIters(); ++s)
            binding[comp.iters()[s].var.node()] = idx[s];
        for (std::size_t m = 0; m < inputs.size(); ++m) {
            const auto &op = operands[m];
            std::int64_t src = readAccess(
                *inputs[m], comp.inputs()[m].indices, binding,
                scratch);
            std::int64_t dst = packed_addr(op, binding);
            require(dst >= 0 &&
                    dst < static_cast<std::int64_t>(packed[m].size()),
                    "packed input address out of range for ", op.name,
                    ": addr ", dst, " size ", packed[m].size());
            packed[m][static_cast<std::size_t>(dst)] =
                Ops::load(*inputs[m], src);
        }
    });

    // Stage 2: execute intrinsic calls purely on packed tiles.
    const auto &dst_op = operands.back();
    std::vector<std::int64_t> outer_extents;
    for (const auto &axis : plan.outerAxes())
        outer_extents.push_back(axis.extent);
    std::vector<std::int64_t> intr_extents = intr.problemSize();
    const auto &groups = plan.groups();

    forEachIndex(outer_extents, [&](const std::vector<std::int64_t>
                                        &outer) {
        // Representative software binding for this tile: within-tile
        // index zero. Base addresses only depend on quotients and
        // unmapped iterations, both fixed by the outer coordinate.
        std::vector<std::int64_t> sw_coords(comp.numIters(), 0);
        for (std::size_t a = 0; a < plan.outerAxes().size(); ++a) {
            const auto &axis = plan.outerAxes()[a];
            if (axis.kind == MappingPlan::OuterAxis::Kind::Unmapped) {
                sw_coords[axis.ref] = outer[a];
            } else {
                std::int64_t flat =
                    outer[a] * groups[axis.ref].intrinsicExtent;
                unflattenGroup(comp, groups[axis.ref], flat,
                               sw_coords);
            }
        }
        for (std::size_t s = 0; s < comp.numIters(); ++s)
            binding[comp.iters()[s].var.node()] = sw_coords[s];

        std::vector<std::int64_t> bases(operands.size());
        for (std::size_t m = 0; m < operands.size(); ++m)
            bases[m] = evalExpr(operands[m].baseAddress, binding);

        // One intrinsic call: the inner loops below are the scalar
        // semantics of the compute abstraction.
        forEachIndex(intr_extents, [&](const std::vector<std::int64_t>
                                           &intr_idx) {
            auto tile_offset =
                [&](const MappingPlan::OperandInfo &op) {
                    std::int64_t offset = 0;
                    for (auto k : op.intrinsicIters)
                        offset = offset * intr.iters()[k].extent +
                                 intr_idx[k];
                    return offset;
                };
            std::size_t dst_idx = operands.size() - 1;
            StreamT &slot = packed[dst_idx][static_cast<std::size_t>(
                bases[dst_idx] + tile_offset(dst_op))];
            switch (comp.combine()) {
              case CombineKind::MultiplyAdd: {
                StreamT a = packed[0][static_cast<std::size_t>(
                    bases[0] + tile_offset(operands[0]))];
                StreamT b = packed[1][static_cast<std::size_t>(
                    bases[1] + tile_offset(operands[1]))];
                Ops::mulAdd(slot, a, b);
                break;
              }
              case CombineKind::SumReduce:
                Ops::add(slot, packed[0][static_cast<std::size_t>(
                                   bases[0] +
                                   tile_offset(operands[0]))]);
                break;
            }
        });
    });

    // Stage 3: unpack the output back to the software layout.
    forEachIndexDelta(sw_extents, [&](const std::vector<std::int64_t>
                                          &idx,
                                      std::size_t dirty) {
        for (std::size_t s = dirty; s < comp.numIters(); ++s)
            binding[comp.iters()[s].var.node()] = idx[s];
        std::int64_t sw = readAccess(output, comp.outputIndices(),
                                     binding, scratch);
        std::int64_t src = packed_addr(dst_op, binding);
        Ops::store(output, sw,
                   packed.back()[static_cast<std::size_t>(src)]);
    });
}

/** Dispatch the packed interpreter on the computation's discipline. */
void
interpretMappedPacked(const MappingPlan &plan,
                      const std::vector<const Buffer *> &inputs,
                      Buffer &output)
{
    const auto sem = quant::classifyComputation(plan.computation());
    if (sem.kind == quant::KernelSemantics::IntDot)
        interpretMappedPackedT<InterpIntOps>(plan, inputs, output);
    else
        interpretMappedPackedT<InterpFloatOps>(plan, inputs, output);
}

/** The matching hook of the path being dispatched (or nullptr). */
using MappedJitFn = bool (*)(const MappingPlan &, const ExecPlan &,
                             const std::vector<const Buffer *> &,
                             Buffer &, std::string *);

/** Shared engine-selection logic of the two mapped executors. */
template <typename SelectHook, typename RunCompiled,
          typename RunInterp>
ExecReport
dispatchMapped(const char *spanName, const MappingPlan &plan,
               const std::vector<const Buffer *> &inputs,
               Buffer &output, const ExecOptions &opts,
               SelectHook &&selectHook, RunCompiled &&runCompiled,
               RunInterp &&runInterp)
{
    TraceSpan span(spanName, "exec");
    auto &metrics = MetricsRegistry::global();
    ExecReport report;
    const ExecEngine engine = opts.resolvedEngine();
    if (engine != ExecEngine::Interpreter) {
        ExecPlan ep(plan);
        std::string why = ep.fallbackReason();
        const bool fits =
            ep.compiled() && ep.buffersMatch(inputs, output, &why);

        if (engine == ExecEngine::Jit) {
            const MappedJitHooks *hooks = mappedJitHooks();
            MappedJitFn fn = hooks ? selectHook(*hooks) : nullptr;
            std::string jitWhy;
            if (!fits)
                jitWhy = why;
            else if (!fn)
                jitWhy = "jit tier not linked";
            else if (fn(plan, ep, inputs, output, &jitWhy)) {
                metrics.counter("exec.jit_runs").add();
                span.arg("engine", "jit");
                report.engine = "jit";
                return report;
            }
            metrics.counter("exec.jit_fallback").add();
            span.arg("jit_fallback", jitWhy);
            report.jitFallback = jitWhy;
            AMOS_LOG(Debug)
                << spanName << " jit tier falls back for "
                << plan.computation().name() << ": " << jitWhy;
        }

        if (fits) {
            WalkRunStats stats = runCompiled(ep);
            noteWalkRun(span, stats, opts.numThreads);
            report.engine = "walk";
            report.threadsUsed = stats.threadsUsed;
            return report;
        }
        metrics.counter("exec.fallback").add();
        span.arg("fallback", why);
        AMOS_LOG(Debug)
            << spanName << " falls back to the interpreter for "
            << plan.computation().name() << ": " << why;
    }
    metrics.counter("exec.interpreter_runs").add();
    span.arg("engine", "interpreter");
    runInterp();
    return report;
}

} // namespace

ExecReport
executeMappedDirect(const MappingPlan &plan,
                    const std::vector<const Buffer *> &inputs,
                    Buffer &output)
{
    return executeMappedDirect(plan, inputs, output, ExecOptions{});
}

ExecReport
executeMappedDirect(const MappingPlan &plan,
                    const std::vector<const Buffer *> &inputs,
                    Buffer &output, const ExecOptions &opts)
{
    require(plan.valid(),
            "executeMappedDirect on an invalid mapping for ",
            plan.computation().name());
    require(inputs.size() == plan.computation().inputs().size(),
            "executeMappedDirect: input count mismatch");
    const auto sem = quant::classifyComputation(plan.computation());
    require(sem.supported, "executeMappedDirect(",
            plan.computation().name(), "): ", sem.reason);
    return dispatchMapped(
        "exec.direct", plan, inputs, output, opts,
        [](const MappedJitHooks &h) { return h.runDirect; },
        [&](const ExecPlan &ep) {
            return ep.runDirect(inputs, output, opts);
        },
        [&]() { interpretMappedDirect(plan, inputs, output); });
}

ExecReport
executeMappedPacked(const MappingPlan &plan,
                    const std::vector<const Buffer *> &inputs,
                    Buffer &output)
{
    return executeMappedPacked(plan, inputs, output, ExecOptions{});
}

ExecReport
executeMappedPacked(const MappingPlan &plan,
                    const std::vector<const Buffer *> &inputs,
                    Buffer &output, const ExecOptions &opts)
{
    require(plan.valid(),
            "executeMappedPacked on an invalid mapping for ",
            plan.computation().name());
    require(inputs.size() == plan.computation().inputs().size(),
            "executeMappedPacked: input count mismatch");
    const auto sem = quant::classifyComputation(plan.computation());
    require(sem.supported, "executeMappedPacked(",
            plan.computation().name(), "): ", sem.reason);
    return dispatchMapped(
        "exec.packed", plan, inputs, output, opts,
        [](const MappedJitHooks &h) { return h.runPacked; },
        [&](const ExecPlan &ep) {
            return ep.runPacked(inputs, output, opts);
        },
        [&]() { interpretMappedPacked(plan, inputs, output); });
}

float
mappedVsReferenceError(const MappingPlan &plan, std::uint64_t seed)
{
    const auto &comp = plan.computation();
    auto inputs = makePatternInputs(comp, seed);
    std::vector<const Buffer *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(&b);

    Buffer ref(comp.output());
    referenceExecute(comp, ptrs, ref);

    Buffer direct(comp.output());
    executeMappedDirect(plan, ptrs, direct);

    Buffer packed(comp.output());
    executeMappedPacked(plan, ptrs, packed);

    return std::max(ref.maxAbsDiff(direct), ref.maxAbsDiff(packed));
}

float
compiledVsInterpreterError(const MappingPlan &plan,
                           std::uint64_t seed, int numThreads)
{
    const auto &comp = plan.computation();
    auto inputs = makePatternInputs(comp, seed);
    std::vector<const Buffer *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(&b);

    ExecOptions interp;
    interp.forceInterpreter = true;
    ExecOptions compiled;
    compiled.numThreads = numThreads;

    Buffer di(comp.output()), dc(comp.output());
    executeMappedDirect(plan, ptrs, di, interp);
    executeMappedDirect(plan, ptrs, dc, compiled);

    Buffer pi(comp.output()), pc(comp.output());
    executeMappedPacked(plan, ptrs, pi, interp);
    executeMappedPacked(plan, ptrs, pc, compiled);

    return std::max(di.maxAbsDiff(dc), pi.maxAbsDiff(pc));
}

float
engineVsInterpreterError(const MappingPlan &plan, ExecEngine engine,
                         std::uint64_t seed, ExecReport *directReport,
                         ExecReport *packedReport)
{
    const auto &comp = plan.computation();
    auto inputs = makePatternInputs(comp, seed);
    std::vector<const Buffer *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(&b);

    ExecOptions interp;
    interp.engine = ExecEngine::Interpreter;
    ExecOptions tiered;
    tiered.engine = engine;

    Buffer di(comp.output()), dt(comp.output());
    executeMappedDirect(plan, ptrs, di, interp);
    ExecReport dr = executeMappedDirect(plan, ptrs, dt, tiered);

    Buffer pi(comp.output()), pt(comp.output());
    executeMappedPacked(plan, ptrs, pi, interp);
    ExecReport pr = executeMappedPacked(plan, ptrs, pt, tiered);

    if (directReport)
        *directReport = dr;
    if (packedReport)
        *packedReport = pr;
    return std::max(di.maxAbsDiff(dt), pi.maxAbsDiff(pt));
}

quant::CompareResult
engineVsInterpreterCompare(const MappingPlan &plan, ExecEngine engine,
                           const quant::ToleranceSpec &spec,
                           std::uint64_t seed, int numThreads,
                           ExecReport *directReport,
                           ExecReport *packedReport)
{
    const auto &comp = plan.computation();
    auto inputs = makePatternInputs(comp, seed);
    std::vector<const Buffer *> ptrs;
    for (const auto &b : inputs)
        ptrs.push_back(&b);

    ExecOptions interp;
    interp.engine = ExecEngine::Interpreter;
    ExecOptions tiered;
    tiered.engine = engine;
    tiered.numThreads = numThreads;

    Buffer di(comp.output()), dt(comp.output());
    executeMappedDirect(plan, ptrs, di, interp);
    ExecReport dr = executeMappedDirect(plan, ptrs, dt, tiered);

    Buffer pi(comp.output()), pt(comp.output());
    executeMappedPacked(plan, ptrs, pi, interp);
    ExecReport pr = executeMappedPacked(plan, ptrs, pt, tiered);

    if (directReport)
        *directReport = dr;
    if (packedReport)
        *packedReport = pr;

    // Worst of the two paths: a failing comparison wins; among two
    // passing (or two failing) ones, the larger absolute error wins.
    auto dcmp = quant::compareBuffers(dt, di, spec);
    auto pcmp = quant::compareBuffers(pt, pi, spec);
    if (dcmp.pass != pcmp.pass)
        return dcmp.pass ? pcmp : dcmp;
    return dcmp.maxAbsErr >= pcmp.maxAbsErr ? dcmp : pcmp;
}

} // namespace amos
