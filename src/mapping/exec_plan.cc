#include "exec_plan.hh"

#include <algorithm>
#include <cmath>

#include "ir/affine.hh"
#include "quant/typed_exec.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"

namespace amos {

namespace {

/**
 * Stride walk over the mapped loop nest: outer axes around per-group
 * intrinsic counters whose software coordinates are mixed-radix
 * digits of the fused flat value.
 *
 * Per tile the walker decodes each group's start digits once, clamps
 * the counter to the valid (non-padding) limit, and then advances
 * every operand address incrementally: a counter increment moves one
 * group's digit odometer (one coefficient add, rollbacks on digit
 * carries) plus that counter's packed-tile stride; a counter carry
 * restores the address snapshot taken when the counter last left
 * zero. The executed tuples — and hence accumulation order — are
 * exactly the interpreter's non-padding subsequence.
 *
 * `restrictAxis`, when >= 0, confines that outer axis to [lo, hi);
 * used by the parallel sweep.
 */
template <typename Body>
void
runMappedWalkRange(const std::vector<std::int64_t> &iterExt,
                   const std::vector<ExecPlan::Axis> &axes,
                   const std::vector<ExecPlan::Group> &groups,
                   const ExecPlan::Operand *const *ops,
                   std::size_t nops, int restrictAxis, std::int64_t lo,
                   std::int64_t hi, Body &&body)
{
    const std::size_t A = axes.size();
    const std::size_t K = groups.size();
    const std::size_t S = iterExt.size();
    require(nops <= kMaxWalkOperands && S <= kMaxWalkLevels,
            "runMappedWalkRange: nest too large (", nops,
            " operands, ", S, " iterators)");

    // Flattened coefficient tables: absent components read as zero.
    std::vector<std::int64_t> swc(nops * S, 0), swr(nops * S, 0);
    std::vector<std::int64_t> tst(nops * std::max<std::size_t>(K, 1),
                                  0);
    std::vector<std::int64_t> ost(nops * std::max<std::size_t>(A, 1),
                                  0);
    for (std::size_t m = 0; m < nops; ++m) {
        const ExecPlan::Operand &op = *ops[m];
        for (std::size_t s = 0; s < op.swCoeff.size(); ++s) {
            swc[m * S + s] = op.swCoeff[s];
            swr[m * S + s] = op.swRollback[s];
        }
        for (std::size_t k = 0; k < op.tStride.size(); ++k)
            tst[m * K + k] = op.tStride[k];
        for (std::size_t a = 0; a < op.outerStride.size(); ++a)
            ost[m * A + a] = op.outerStride[a];
    }

    std::vector<std::int64_t> aext(A, 1), oidx(A, 0), oval(A, 0);
    for (std::size_t a = 0; a < A; ++a) {
        aext[a] = static_cast<int>(a) == restrictAxis
                      ? hi - lo
                      : axes[a].extent;
        if (aext[a] <= 0)
            return;
        oval[a] = static_cast<int>(a) == restrictAxis ? lo : 0;
    }

    std::vector<std::int64_t> sw(S, 0), startSw(S, 0);
    std::vector<std::int64_t> t(K, 0), startFlat(K, 0), lim(K, 0);
    std::vector<std::int64_t> qv(K, 0);
    std::vector<std::int64_t> saved(std::max<std::size_t>(K, 1) *
                                    nops);
    std::int64_t addr[kMaxWalkOperands];

    auto runTile = [&]() {
        // Decode each group's tile-start digits; clamp the counter to
        // the valid limit (the interpreter skips the padding tail).
        for (std::size_t k = 0; k < K; ++k) {
            const ExecPlan::Group &g = groups[k];
            startFlat[k] = qv[k] * g.intrinsicExtent;
            lim[k] = std::min(g.intrinsicExtent,
                              g.fusedExtent - startFlat[k]);
            if (lim[k] <= 0)
                return; // tile is pure padding
            std::int64_t f = startFlat[k];
            for (std::size_t pos = g.members.size(); pos-- > 0;) {
                startSw[g.members[pos]] = f % g.extents[pos];
                f /= g.extents[pos];
            }
            t[k] = 0;
        }
        sw = startSw;
        for (std::size_t m = 0; m < nops; ++m) {
            std::int64_t a0 = ops[m]->base;
            for (std::size_t s = 0; s < S; ++s)
                a0 += swc[m * S + s] * sw[s];
            for (std::size_t a = 0; a < A; ++a)
                a0 += ost[m * A + a] * oval[a];
            addr[m] = a0;
        }
        for (std::size_t k = 0; k < K; ++k)
            for (std::size_t m = 0; m < nops; ++m)
                saved[k * nops + m] = addr[m];

        while (true) {
            body(addr);
            if (K == 0)
                return;
            std::size_t d = K;
            while (true) {
                --d;
                if (t[d] + 1 < lim[d]) {
                    ++t[d];
                    const ExecPlan::Group &g = groups[d];
                    for (std::size_t pos = g.members.size();
                         pos-- > 0;) {
                        std::size_t s = g.members[pos];
                        if (++sw[s] < g.extents[pos]) {
                            for (std::size_t m = 0; m < nops; ++m)
                                addr[m] += swc[m * S + s];
                            break;
                        }
                        sw[s] = 0;
                        for (std::size_t m = 0; m < nops; ++m)
                            addr[m] -= swr[m * S + s];
                    }
                    for (std::size_t m = 0; m < nops; ++m)
                        addr[m] += tst[m * K + d];
                    for (std::size_t j = d + 1; j < K; ++j)
                        for (std::size_t m = 0; m < nops; ++m)
                            saved[j * nops + m] = addr[m];
                    break;
                }
                // Carry: group d back to its tile-start digits.
                t[d] = 0;
                const ExecPlan::Group &g = groups[d];
                std::int64_t f = startFlat[d];
                for (std::size_t pos = g.members.size(); pos-- > 0;) {
                    sw[g.members[pos]] = f % g.extents[pos];
                    f /= g.extents[pos];
                }
                for (std::size_t m = 0; m < nops; ++m)
                    addr[m] = saved[d * nops + m];
                if (d == 0)
                    return;
            }
        }
    };

    auto applyAxes = [&]() {
        for (std::size_t a = 0; a < A; ++a) {
            if (axes[a].isQuotient)
                qv[axes[a].ref] = oval[a];
            else
                startSw[axes[a].ref] = oval[a];
        }
    };

    if (A == 0) {
        runTile();
        return;
    }
    while (true) {
        applyAxes();
        runTile();
        std::size_t d = A;
        while (true) {
            --d;
            if (++oidx[d] < aext[d]) {
                ++oval[d];
                break;
            }
            oidx[d] = 0;
            oval[d] = static_cast<int>(d) == restrictAxis ? lo : 0;
            if (d == 0)
                return;
        }
    }
}

/**
 * Parallel mapped sweep over `splitAxis` (already proven to touch
 * disjoint output elements per axis value): contiguous chunks, one
 * serial range walk per chunk. Bit-identical for any thread count.
 */
template <typename Body>
WalkRunStats
runMappedWalkParallel(const std::vector<std::int64_t> &iterExt,
                      const std::vector<ExecPlan::Axis> &axes,
                      const std::vector<ExecPlan::Group> &groups,
                      const ExecPlan::Operand *const *ops,
                      std::size_t nops, int splitAxis, int numThreads,
                      Body &&body)
{
    WalkRunStats stats;
    std::size_t threads = ThreadPool::resolveThreads(numThreads);
    if (threads <= 1 || splitAxis < 0) {
        runMappedWalkRange(iterExt, axes, groups, ops, nops, -1, 0, 0,
                           body);
        return stats;
    }
    std::int64_t extent =
        axes[static_cast<std::size_t>(splitAxis)].extent;
    std::size_t chunks = std::min<std::size_t>(
        threads, static_cast<std::size_t>(extent));
    stats.threadsUsed = static_cast<int>(chunks);
    stats.splitLevel = splitAxis;
    parallelFor(
        chunks,
        [&](std::size_t c) {
            std::int64_t lo = extent * static_cast<std::int64_t>(c) /
                              static_cast<std::int64_t>(chunks);
            std::int64_t hi =
                extent * static_cast<std::int64_t>(c + 1) /
                static_cast<std::int64_t>(chunks);
            runMappedWalkRange(iterExt, axes, groups, ops, nops,
                               splitAxis, lo, hi, body);
        },
        static_cast<int>(chunks));
    return stats;
}

/** Stage-B arithmetic on float staging streams. */
struct FloatStreamOps
{
    using Stream = float;
    static void
    mulAdd(Stream *d, std::int64_t di, const Stream *x,
           std::int64_t xi, const Stream *y, std::int64_t yi)
    {
        d[di] += x[xi] * y[yi];
    }
    static void
    add(Stream *d, std::int64_t di, const Stream *x, std::int64_t xi)
    {
        d[di] += x[xi];
    }
};

/**
 * Stage-B arithmetic on int32 staging streams: the IntDot discipline
 * (int64 intermediates, wrapping int32 accumulate — identical to
 * quant::intDotStep, so packed results match the direct path bit for
 * bit).
 */
struct IntStreamOps
{
    using Stream = std::int32_t;
    static void
    mulAdd(Stream *d, std::int64_t di, const Stream *x,
           std::int64_t xi, const Stream *y, std::int64_t yi)
    {
        d[di] = static_cast<Stream>(
            static_cast<std::int64_t>(d[di]) +
            static_cast<std::int64_t>(x[xi]) * y[yi]);
    }
    static void
    add(Stream *d, std::int64_t di, const Stream *x, std::int64_t xi)
    {
        d[di] = static_cast<Stream>(
            static_cast<std::int64_t>(d[di]) + x[xi]);
    }
};

/**
 * Typed packed pipeline: pack (typed, possibly widening, loads) into
 * StreamT staging buffers, affine compute on the streams, unpack
 * through the output accessor. StreamT is float for the float
 * disciplines (bf16 decodes on pack, exactly) and int32 for IntDot
 * (8-bit values widen on pack, so stage B is the exact dot).
 *
 * For SumReduce `l1` is unused; callers pass `l0` twice.
 */
template <typename Ops, typename L0, typename L1, typename OutAcc>
WalkRunStats
runPackedTyped(const ExecPlan &plan, const ExecOptions &opts, L0 l0,
               L1 l1, OutAcc outAcc)
{
    using StreamT = typename Ops::Stream;
    const std::size_t nin = plan.numInputs();
    std::vector<std::vector<StreamT>> packed;
    for (auto sz : plan.packedSizes())
        packed.emplace_back(static_cast<std::size_t>(sz), StreamT{});

    const auto &direct = plan.directOperands();
    const auto &pops = plan.packedOperands();

    // Stage A (serial): pack each input's valid software points into
    // its tile stream. Operand pairs: [source, packed destination].
    {
        const ExecPlan::Operand *ops[kMaxWalkOperands];
        StreamT *dst[kMaxWalkOperands / 2];
        for (std::size_t m = 0; m < nin; ++m) {
            ops[2 * m] = &direct[m];
            ops[2 * m + 1] = &pops[m];
            dst[m] = packed[m].data();
        }
        runMappedWalkRange(
            plan.iterExtents(), plan.axes(), plan.groups(), ops,
            2 * nin, -1, 0, 0, [&](const std::int64_t *a) {
                dst[0][a[1]] = static_cast<StreamT>(l0.load(a[0]));
                if (nin > 1)
                    dst[1][a[3]] =
                        static_cast<StreamT>(l1.load(a[2]));
            });
    }

    // Stage B (parallel): intrinsic calls purely on packed streams —
    // a plain affine walk over [outer axes][intrinsic counters].
    // Padding slots hold zeros, exactly like the interpreter's sweep.
    WalkRunStats stats;
    {
        const AccessWalkPlan &stageB = plan.stageB();
        const std::size_t splitLevels = static_cast<std::size_t>(
            plan.packedSplitLevel() < 0 ? 0
                                        : plan.packedSplitLevel() + 1);
        StreamT *pdst = packed.back().data();
        const StreamT *p0 = packed[0].data();
        switch (plan.combine()) {
          case CombineKind::MultiplyAdd: {
            const StreamT *p1 = packed[1].data();
            stats = runAccessWalkParallel(
                stageB, stageB.operands.size() - 1, splitLevels,
                opts.numThreads, [&](const std::int64_t *a) {
                    Ops::mulAdd(pdst, a[2], p0, a[0], p1, a[1]);
                });
            break;
          }
          case CombineKind::SumReduce:
            stats = runAccessWalkParallel(
                stageB, stageB.operands.size() - 1, splitLevels,
                opts.numThreads, [&](const std::int64_t *a) {
                    Ops::add(pdst, a[1], p0, a[0]);
                });
            break;
        }
    }

    // Stage C (serial): unpack the output stream back to the
    // software layout. Operands: [packed source, software output].
    {
        const ExecPlan::Operand *ops[2] = {&pops.back(),
                                           &direct.back()};
        const StreamT *psrc = packed.back().data();
        runMappedWalkRange(plan.iterExtents(), plan.axes(),
                           plan.groups(), ops, 2, -1, 0, 0,
                           [&](const std::int64_t *a) {
                               outAcc.store(a[1], psrc[a[0]]);
                           });
    }
    return stats;
}

} // namespace

ExecPlan::ExecPlan(const MappingPlan &plan)
{
    compile(plan);
}

void
ExecPlan::compile(const MappingPlan &plan)
{
    if (!plan.valid()) {
        _reason = "mapping plan failed validation";
        return;
    }
    const auto &comp = plan.computation();
    _semantics = quant::classifyComputation(comp);
    if (!_semantics.supported) {
        _reason = "unsupported dtype semantics: " + _semantics.reason;
        return;
    }
    _combine = comp.combine();
    _numInputs = comp.inputs().size();
    for (const auto &in : comp.inputs()) {
        _inputShapes.push_back(in.decl.shape());
        _operandDtypes.push_back(in.decl.dtype());
    }
    _operandDtypes.push_back(comp.output().dtype());
    _outputShape = comp.output().shape();
    for (const auto &iv : comp.iters())
        _iterExtents.push_back(iv.extent);
    if (_iterExtents.size() > kMaxWalkLevels ||
        _numInputs + 1 > kMaxWalkOperands ||
        2 * _numInputs > kMaxWalkOperands) {
        _reason = "loop nest exceeds the walk engine's limits";
        return;
    }

    for (const auto &axis : plan.outerAxes()) {
        Axis a;
        a.isQuotient =
            axis.kind == MappingPlan::OuterAxis::Kind::GroupQuotient;
        a.ref = axis.ref;
        a.extent = axis.extent;
        _axes.push_back(a);
    }
    for (const auto &g : plan.groups()) {
        Group group;
        group.members = g.members;
        for (auto s : g.members)
            group.extents.push_back(comp.iters()[s].extent);
        group.intrinsicExtent = g.intrinsicExtent;
        group.fusedExtent = g.fusedExtent;
        _groups.push_back(std::move(group));
    }

    if (!compileDirectOperands(plan))
        return;
    if (!compilePackedOperands(plan))
        return;
    _directSplit = computeDirectSplit();
    _packedSplit = pickSplitLevel(_stageB, _stageB.operands.size() - 1,
                                  _axes.size());
}

bool
ExecPlan::compileDirectOperands(const MappingPlan &plan)
{
    const auto &comp = plan.computation();
    const std::size_t S = _iterExtents.size();
    const std::size_t K = _groups.size();
    const std::size_t A = _axes.size();

    auto compileOne = [&](const TensorDecl &decl,
                          const std::vector<Expr> &indices,
                          std::int64_t bufSize) {
        auto analysis = analyzeFlatAccess(indices, decl.strides());
        if (!analysis.ok()) {
            _reason = decl.name() + ": " + analysis.reason;
            return false;
        }
        Operand op;
        op.base = analysis.form->constant();
        op.swCoeff.resize(S);
        op.swRollback.resize(S);
        op.minAddr = op.base;
        op.maxAddr = op.base;
        for (std::size_t s = 0; s < S; ++s) {
            std::int64_t c =
                analysis.form->coeffOf(comp.iters()[s].var.node());
            op.swCoeff[s] = c;
            op.swRollback[s] = c * (_iterExtents[s] - 1);
            if (op.swRollback[s] < 0)
                op.minAddr += op.swRollback[s];
            else
                op.maxAddr += op.swRollback[s];
        }
        op.tStride.assign(K, 0);
        op.outerStride.assign(A, 0);
        if (op.minAddr < 0 || op.maxAddr >= bufSize) {
            _reason = decl.name() + ": address box [" +
                      std::to_string(op.minAddr) + ", " +
                      std::to_string(op.maxAddr) +
                      "] exceeds declared size " +
                      std::to_string(bufSize);
            return false;
        }
        _direct.push_back(std::move(op));
        return true;
    };

    for (const auto &in : comp.inputs())
        if (!compileOne(in.decl, in.indices, in.decl.numElements()))
            return false;
    return compileOne(comp.output(), comp.outputIndices(),
                      comp.output().numElements());
}

bool
ExecPlan::compilePackedOperands(const MappingPlan &plan)
{
    const auto &comp = plan.computation();
    const auto &intr = plan.intrinsic().compute;
    const std::size_t S = _iterExtents.size();
    const std::size_t K = _groups.size();
    const std::size_t A = _axes.size();

    // Software coordinates representing one outer-axis value, all
    // other axes at zero; quotient axes decode q * I into the group's
    // member digits.
    auto applyAxisValue = [&](std::vector<std::int64_t> &sw,
                              std::size_t a, std::int64_t v) {
        const Axis &ax = _axes[a];
        if (!ax.isQuotient) {
            sw[ax.ref] = v;
            return;
        }
        const Group &g = _groups[ax.ref];
        std::int64_t f = v * g.intrinsicExtent;
        for (std::size_t pos = g.members.size(); pos-- > 0;) {
            sw[g.members[pos]] = f % g.extents[pos];
            f /= g.extents[pos];
        }
    };
    VarBinding binding;
    auto evalAt = [&](const Expr &e,
                      const std::vector<std::int64_t> &sw) {
        for (std::size_t s = 0; s < S; ++s)
            binding[comp.iters()[s].var.node()] = sw[s];
        return evalExpr(e, binding);
    };

    for (const auto &op : plan.operands()) {
        Operand p;
        p.tStride.assign(K, 0);
        std::int64_t w = 1;
        for (auto it = op.intrinsicIters.rbegin();
             it != op.intrinsicIters.rend(); ++it) {
            p.tStride[*it] = w;
            w *= intr.iters()[*it].extent;
        }

        // Tile base addresses are linear over the outer axes by
        // construction; recover the per-axis strides by probing and
        // cross-check linearity at the all-max corner.
        std::vector<std::int64_t> sw0(S, 0);
        p.base = evalAt(op.baseAddress, sw0);
        p.outerStride.assign(A, 0);
        for (std::size_t a = 0; a < A; ++a) {
            if (_axes[a].extent < 2)
                continue;
            auto sw = sw0;
            applyAxisValue(sw, a, 1);
            p.outerStride[a] = evalAt(op.baseAddress, sw) - p.base;
        }
        auto corner = sw0;
        std::int64_t predicted = p.base;
        for (std::size_t a = 0; a < A; ++a) {
            if (_axes[a].extent < 2)
                continue;
            applyAxisValue(corner, a, _axes[a].extent - 1);
            predicted += p.outerStride[a] * (_axes[a].extent - 1);
        }
        if (evalAt(op.baseAddress, corner) != predicted) {
            _reason = "tile base address of " + op.name +
                      " is not linear over the outer axes";
            return false;
        }
        _packed.push_back(std::move(p));
        _packedSizes.push_back(op.numTiles * op.tileElems);
    }

    // Stage-B (compute) nest: outer axes then intrinsic counters,
    // purely affine over the packed streams.
    for (std::size_t a = 0; a < A; ++a)
        _stageB.extents.push_back(_axes[a].extent);
    for (std::size_t k = 0; k < K; ++k)
        _stageB.extents.push_back(_groups[k].intrinsicExtent);
    for (const auto &p : _packed) {
        WalkOperand wop;
        wop.base = p.base;
        wop.stride = p.outerStride;
        wop.stride.insert(wop.stride.end(), p.tStride.begin(),
                          p.tStride.end());
        _stageB.operands.push_back(std::move(wop));
    }
    _stageB.finalize();
    for (std::size_t m = 0; m < _packed.size(); ++m) {
        _packed[m].minAddr = _stageB.operands[m].minAddr;
        _packed[m].maxAddr = _stageB.operands[m].maxAddr;
        if (_packed[m].minAddr < 0 ||
            _packed[m].maxAddr >= _packedSizes[m]) {
            _reason = "packed stream of " + plan.operands()[m].name +
                      ": address box [" +
                      std::to_string(_packed[m].minAddr) + ", " +
                      std::to_string(_packed[m].maxAddr) +
                      "] exceeds packed size " +
                      std::to_string(_packedSizes[m]);
            return false;
        }
    }
    return true;
}

/**
 * Find an outer axis whose values write provably disjoint output
 * elements, so the direct sweep can split it across threads.
 *
 * For an unmapped axis the output address moves by coeff_s per step;
 * for a quotient axis it moves by alpha * I per step, provided the
 * member coefficients are proportional to the digit strides (the
 * address is then linear in the fused flat value, addr contribution
 * = alpha * flat). Either way, consecutive axis values stay disjoint
 * iff the per-unit step |alpha| exceeds the combined span of every
 * iterator outside the axis.
 */
int
ExecPlan::computeDirectSplit() const
{
    const Operand &out = _direct.back();
    std::int64_t total = 0;
    for (std::size_t s = 0; s < _iterExtents.size(); ++s)
        total += std::abs(out.swCoeff[s]) * (_iterExtents[s] - 1);

    for (std::size_t a = 0; a < _axes.size(); ++a) {
        const Axis &ax = _axes[a];
        if (ax.extent < 2)
            continue;
        std::int64_t alpha = 0;
        std::int64_t spanM = 0;
        if (!ax.isQuotient) {
            alpha = out.swCoeff[ax.ref];
            spanM = std::abs(alpha) * (_iterExtents[ax.ref] - 1);
        } else {
            const Group &g = _groups[ax.ref];
            if (g.members.empty())
                continue;
            // Digit stride of member pos in the fused flat value.
            std::vector<std::int64_t> dstr(g.members.size(), 1);
            for (std::size_t pos = g.members.size(); pos-- > 1;)
                dstr[pos - 1] = dstr[pos] * g.extents[pos];
            alpha = out.swCoeff[g.members.back()];
            bool linear = true;
            for (std::size_t pos = 0; pos < g.members.size(); ++pos) {
                if (out.swCoeff[g.members[pos]] !=
                    alpha * dstr[pos]) {
                    linear = false;
                    break;
                }
                spanM += std::abs(out.swCoeff[g.members[pos]]) *
                         (g.extents[pos] - 1);
            }
            if (!linear)
                continue;
        }
        if (alpha != 0 && std::abs(alpha) > total - spanM)
            return static_cast<int>(a);
    }
    return -1;
}

bool
ExecPlan::buffersMatch(const std::vector<const Buffer *> &inputs,
                       const Buffer &output, std::string *why) const
{
    if (inputs.size() != _numInputs) {
        if (why)
            *why = "input count mismatch";
        return false;
    }
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (inputs[i]->decl().shape() != _inputShapes[i]) {
            if (why)
                *why = "input " + std::to_string(i) +
                       " shape differs from the declared shape";
            return false;
        }
        if (inputs[i]->storage() !=
            dtypeStorageLane(_operandDtypes[i])) {
            if (why)
                *why = "input " + std::to_string(i) +
                       " storage lane differs from the declared dtype";
            return false;
        }
    }
    if (output.decl().shape() != _outputShape) {
        if (why)
            *why = "output shape differs from the declared shape";
        return false;
    }
    if (output.storage() != dtypeStorageLane(_operandDtypes.back())) {
        if (why)
            *why = "output storage lane differs from the declared "
                   "dtype";
        return false;
    }
    return true;
}

WalkRunStats
ExecPlan::runDirect(const std::vector<const Buffer *> &inputs,
                    Buffer &output, const ExecOptions &opts) const
{
    require(compiled(), "ExecPlan::runDirect on an uncompiled plan: ",
            _reason);
    std::string why;
    require(buffersMatch(inputs, output, &why),
            "ExecPlan::runDirect: ", why);

    const Operand *ops[kMaxWalkOperands];
    for (std::size_t m = 0; m < _numInputs; ++m)
        ops[m] = &_direct[m];
    ops[_numInputs] = &_direct.back();

    // The walk generates addresses; loaders/accumulator carry the
    // numeric discipline (float MAC, exact int32 dot, bf16 widening).
    WalkRunStats stats;
    switch (_combine) {
      case CombineKind::MultiplyAdd:
        quant::dispatchMulAdd(
            _semantics, *inputs[0], *inputs[1], output,
            [&](auto l0, auto l1, auto acc) {
                stats = runMappedWalkParallel(
                    _iterExtents, _axes, _groups, ops, _numInputs + 1,
                    _directSplit, opts.numThreads,
                    [&](const std::int64_t *a) {
                        acc.add(a[2], l0.load(a[0]) * l1.load(a[1]));
                    });
            });
        break;
      case CombineKind::SumReduce:
        quant::dispatchSum(
            _semantics, *inputs[0], output, [&](auto l0, auto acc) {
                stats = runMappedWalkParallel(
                    _iterExtents, _axes, _groups, ops, _numInputs + 1,
                    _directSplit, opts.numThreads,
                    [&](const std::int64_t *a) {
                        acc.add(a[1], l0.load(a[0]));
                    });
            });
        break;
    }
    return stats;
}

WalkRunStats
ExecPlan::runPacked(const std::vector<const Buffer *> &inputs,
                    Buffer &output, const ExecOptions &opts) const
{
    require(compiled(), "ExecPlan::runPacked on an uncompiled plan: ",
            _reason);
    std::string why;
    require(buffersMatch(inputs, output, &why),
            "ExecPlan::runPacked: ", why);

    const bool mulAdd = _combine == CombineKind::MultiplyAdd;
    switch (_semantics.kind) {
      case quant::KernelSemantics::F32: {
        quant::FloatLoader l0{inputs[0]->data()};
        quant::FloatLoader l1{mulAdd ? inputs[1]->data()
                                     : inputs[0]->data()};
        return runPackedTyped<FloatStreamOps>(
            *this, opts, l0, l1, quant::FloatAccum{output.data()});
      }
      case quant::KernelSemantics::Bf16: {
        quant::Bf16Loader l0{inputs[0]->bf16Data()};
        quant::Bf16Loader l1{mulAdd ? inputs[1]->bf16Data()
                                    : inputs[0]->bf16Data()};
        return runPackedTyped<FloatStreamOps>(
            *this, opts, l0, l1, quant::FloatAccum{output.data()});
      }
      case quant::KernelSemantics::IntDot: {
        WalkRunStats stats;
        quant::I32Accum acc{output.i32Data()};
        quant::withInt8Loader(*inputs[0], [&](auto l0) {
            if (mulAdd)
                quant::withInt8Loader(*inputs[1], [&](auto l1) {
                    stats = runPackedTyped<IntStreamOps>(*this, opts,
                                                         l0, l1, acc);
                });
            else
                stats = runPackedTyped<IntStreamOps>(*this, opts, l0,
                                                     l0, acc);
        });
        return stats;
      }
    }
    return WalkRunStats{};
}

} // namespace amos
