/**
 * @file
 * Software-hardware mapping validation (Algorithm 1, Sec. 5.2).
 *
 * Inputs are the three binary matrices of Fig. 4:
 *   X — software access matrix   (operands x software iterations)
 *   Y — iteration matching matrix (intrinsic iters x software iters)
 *   Z — intrinsic access matrix  (operands x intrinsic iterations)
 *
 * The algorithm computes X' = Z ★ Y (software access relationship)
 * and Z' = X ★ Yᵀ (hardware access relationship) with boolean matrix
 * products and requires X' = X and Z' = Z.
 *
 * Two relaxations reflect how partial mappings execute (and are
 * needed so e.g. GEMV maps onto a matmul intrinsic at all):
 *  - software iterations left unmapped (all-zero Y column) become
 *    outer loops; their X columns are excluded from the X' = X check;
 *  - intrinsic iterations no software iteration maps to (all-zero Y
 *    row) are padded to extent 1; their Z columns are excluded from
 *    the Z' = Z check.
 * Callers can disable the relaxations to get the strict algorithm.
 */

#ifndef AMOS_MAPPING_VALIDATE_HH
#define AMOS_MAPPING_VALIDATE_HH

#include <string>

#include "support/bit_matrix.hh"

namespace amos {

/** Outcome of one validation run, with the derived matrices. */
struct ValidationResult
{
    bool valid = false;
    BitMatrix softwareAccess; ///< X' = Z ★ Y
    BitMatrix hardwareAccess; ///< Z' = X ★ Yᵀ
    std::string failure;      ///< empty when valid
};

/**
 * Run Algorithm 1.
 *
 * @param x Software access matrix (operands x software iterations).
 * @param y Matching matrix (intrinsic iters x software iterations).
 * @param z Intrinsic access matrix (operands x intrinsic iterations).
 * @param allow_partial Apply the unmapped-column / uncovered-row
 *        relaxations described above (default true).
 */
ValidationResult validateMatching(const BitMatrix &x,
                                  const BitMatrix &y,
                                  const BitMatrix &z,
                                  bool allow_partial = true);

} // namespace amos

#endif // AMOS_MAPPING_VALIDATE_HH
