/**
 * @file
 * Compiled execution plans for mapped computations.
 *
 * An ExecPlan lowers a MappingPlan once into per-operand flat-address
 * stride tables aligned to the execution loop nest, so the functional
 * executors can run as incremental stride walks instead of
 * re-evaluating access expressions per scalar element:
 *
 *  - Every software access index is affine in the loop iterators, so
 *    each operand's flat address is base + sum coeff_s * sw_s over
 *    the software coordinates (ir/affine.hh extracts the coefficients
 *    and reports why when an access is not affine).
 *
 *  - The direct executor's nest (outer axes x intrinsic iterations)
 *    reconstructs software coordinates as mixed-radix digits of each
 *    group's fused flat value. The engine advances those digits as a
 *    per-group odometer: one coefficient add per increment, a
 *    precomputed rollback per digit carry, and a saved-address
 *    restore per group carry (which also covers the early carry that
 *    skips a trailing-padding tail). Zero hash lookups, zero
 *    evalExpr calls, zero allocations in the inner loop.
 *
 *  - The packed executor's pack / compute / unpack stages are
 *    restructured onto the same nest. Tile base addresses — floordiv
 *    expressions over software iterators, but linear over the outer
 *    axes by construction — are lowered to per-axis strides by
 *    probing, with a corner cross-check that falls back to the
 *    interpreter if linearity ever failed to hold.
 *
 * The outer-tile sweep parallelises over an axis whose values
 * provably write disjoint output elements (see
 * tensor/access_walk.hh); results are bit-identical to the serial
 * interpreter for every thread count.
 */

#ifndef AMOS_MAPPING_EXEC_PLAN_HH
#define AMOS_MAPPING_EXEC_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mapping/mapping.hh"
#include "quant/semantics.hh"
#include "tensor/access_walk.hh"
#include "tensor/tensor.hh"

namespace amos {

/**
 * Compiled form of one MappingPlan: stride tables for the direct
 * executor and the three packed stages. Compile once, run many
 * times; when compilation fails (non-affine access, address box out
 * of range, non-linear tile base) the plan records the reason and
 * callers fall back to the interpreter.
 */
class ExecPlan
{
  public:
    /** Analyze and compile; never throws on unsupported plans. */
    explicit ExecPlan(const MappingPlan &plan);

    /** True iff the stride-walk engine can run this plan. */
    bool compiled() const { return _reason.empty(); }

    /** Why compilation fell back (empty when compiled). */
    const std::string &fallbackReason() const { return _reason; }

    /**
     * Outer axis the direct sweep splits across threads, or -1 when
     * no axis provably writes disjoint output elements (the sweep
     * then stays serial regardless of the requested thread count).
     */
    int directSplitAxis() const { return _directSplit; }

    /** Split level of the packed compute stage, or -1. */
    int packedSplitLevel() const { return _packedSplit; }

    /**
     * True iff the runtime buffers have exactly the declared shapes
     * the stride tables were compiled from.
     */
    bool buffersMatch(const std::vector<const Buffer *> &inputs,
                      const Buffer &output,
                      std::string *why = nullptr) const;

    /** Stride-walk executions; require compiled() and buffersMatch. */
    WalkRunStats runDirect(const std::vector<const Buffer *> &inputs,
                           Buffer &output,
                           const ExecOptions &opts = {}) const;
    WalkRunStats runPacked(const std::vector<const Buffer *> &inputs,
                           Buffer &output,
                           const ExecOptions &opts = {}) const;

    /// @name Compiled tables (exposed for tests and diagnostics).
    /// @{

    /** One loop axis of the outer (tile) sweep. */
    struct Axis
    {
        bool isQuotient = false;
        std::size_t ref = 0;     ///< sw iter position or group index
        std::int64_t extent = 1;
    };

    /** Fused-group digit odometer description. */
    struct Group
    {
        std::vector<std::size_t> members; ///< sw positions, loop order
        std::vector<std::int64_t> extents;
        std::int64_t intrinsicExtent = 1; ///< I
        std::int64_t fusedExtent = 1;     ///< F
    };

    /** One operand's compiled address stream. */
    struct Operand
    {
        /// Flat-address coefficient per software iterator (empty for
        /// packed-tile streams).
        std::vector<std::int64_t> swCoeff;
        /// swCoeff[s] * (extent_s - 1): subtracted on a digit carry.
        std::vector<std::int64_t> swRollback;
        /// Address step per intrinsic-iteration counter.
        std::vector<std::int64_t> tStride;
        /// Address step per outer axis (packed tile bases).
        std::vector<std::int64_t> outerStride;
        std::int64_t base = 0;
        std::int64_t minAddr = 0; ///< over the full iteration box
        std::int64_t maxAddr = 0;
    };

    const std::vector<Axis> &axes() const { return _axes; }
    const std::vector<Group> &groups() const { return _groups; }
    /** Direct-path operands: inputs in order, then the output. */
    const std::vector<Operand> &directOperands() const
    {
        return _direct;
    }
    /** Packed-tile streams: inputs in order, then the output. */
    const std::vector<Operand> &packedOperands() const
    {
        return _packed;
    }
    /** Element count of each packed stream, aligned to the above. */
    const std::vector<std::int64_t> &packedSizes() const
    {
        return _packedSizes;
    }
    /** The packed compute stage's pure affine nest. */
    const AccessWalkPlan &stageB() const { return _stageB; }
    CombineKind combine() const { return _combine; }
    std::size_t numInputs() const { return _numInputs; }
    /** Numeric discipline the plan executes under. */
    const quant::SemanticsInfo &semantics() const
    {
        return _semantics;
    }
    /** Declared operand dtypes: inputs in order, then the output. */
    const std::vector<DataType> &operandDtypes() const
    {
        return _operandDtypes;
    }
    /** Software iterator extents, in declaration order. */
    const std::vector<std::int64_t> &iterExtents() const
    {
        return _iterExtents;
    }
    /// @}

  private:
    struct PackedOperand;

    void compile(const MappingPlan &plan);
    bool compileDirectOperands(const MappingPlan &plan);
    bool compilePackedOperands(const MappingPlan &plan);
    int computeDirectSplit() const;

    std::string _reason;
    CombineKind _combine = CombineKind::MultiplyAdd;
    std::size_t _numInputs = 0;
    quant::SemanticsInfo _semantics;
    std::vector<DataType> _operandDtypes; ///< inputs..., output
    std::vector<std::vector<std::int64_t>> _inputShapes;
    std::vector<std::int64_t> _outputShape;
    std::vector<std::int64_t> _iterExtents;
    std::vector<Axis> _axes;
    std::vector<Group> _groups;
    std::vector<Operand> _direct;   ///< inputs..., output
    /// Packed-tile streams (inputs..., output): tile base per outer
    /// axis + offset per intrinsic counter; sized buffers.
    std::vector<Operand> _packed;
    std::vector<std::int64_t> _packedSizes;
    AccessWalkPlan _stageB;         ///< pure affine compute stage
    int _directSplit = -1;
    int _packedSplit = -1;
};

} // namespace amos

#endif // AMOS_MAPPING_EXEC_PLAN_HH
