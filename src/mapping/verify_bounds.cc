#include "verify_bounds.hh"

#include "support/logging.hh"

namespace amos {

IntervalEnv
iterationIntervals(const TensorComputation &comp)
{
    IntervalEnv env;
    for (const auto &iv : comp.iters())
        env[iv.var.node()] = {0, iv.extent - 1};
    return env;
}

BoundsReport
verifyPlanBounds(const MappingPlan &plan)
{
    require(plan.valid(), "verifyPlanBounds on an invalid plan");
    BoundsReport report;
    auto fail = [&report](std::string why) {
        report.ok = false;
        if (report.failure.empty())
            report.failure = std::move(why);
    };

    const auto &comp = plan.computation();
    const auto &intr = plan.intrinsic().compute;
    auto env = iterationIntervals(comp);

    // Physical compute expressions stay inside the problem size.
    auto phys = plan.physicalComputeExprs();
    for (std::size_t k = 0; k < phys.size(); ++k) {
        Interval want{0, intr.iters()[k].extent - 1};
        Interval got = evalInterval(phys[k], env);
        if (!want.contains(got))
            fail("physical expression of " + intr.iters()[k].name +
                 " ranges " + got.toString() + " outside " +
                 want.toString());
    }

    // Quotients stay inside the tile grid.
    auto quot = plan.quotientExprs();
    for (std::size_t k = 0; k < quot.size(); ++k) {
        Interval want{0, plan.groups()[k].quotient - 1};
        Interval got = evalInterval(quot[k], env);
        if (!want.contains(got))
            fail("quotient of " + intr.iters()[k].name + " ranges " +
                 got.toString() + " outside " + want.toString());
    }

    // Packed addresses stay inside each operand's buffer.
    for (const auto &op : plan.operands()) {
        Expr offset(std::int64_t{0});
        for (auto k : op.intrinsicIters)
            offset = offset * Expr(intr.iters()[k].extent) + phys[k];
        Interval addr =
            evalInterval(op.baseAddress + offset, env);
        Interval want{0, op.numTiles * op.tileElems - 1};
        if (!want.contains(addr))
            fail("packed address of " + op.name + " ranges " +
                 addr.toString() + " outside " + want.toString());
    }
    return report;
}

} // namespace amos
