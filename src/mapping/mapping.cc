#include "mapping.hh"

#include <algorithm>

#include "quant/legality.hh"
#include "support/logging.hh"
#include "support/math_utils.hh"
#include "support/str_utils.hh"

namespace amos {

bool
ComputeMapping::isMapped(std::size_t s) const
{
    for (const auto &group : groups)
        for (auto member : group)
            if (member == s)
                return true;
    return false;
}

std::string
ComputeMapping::signature(const TensorComputation &comp) const
{
    std::vector<std::string> parts;
    for (const auto &group : groups) {
        parts.push_back(joinMapped(group, ",",
            [&comp](std::size_t s) {
                return comp.iters()[s].name();
            }));
    }
    return "[" + join(parts, " | ") + "]";
}

BitMatrix
softwareAccessMatrix(const TensorComputation &comp)
{
    const auto &iters = comp.iters();
    BitMatrix x(comp.inputs().size() + 1, iters.size());
    for (std::size_t m = 0; m < comp.inputs().size(); ++m) {
        for (const auto &idx : comp.inputs()[m].indices)
            for (std::size_t s = 0; s < iters.size(); ++s)
                if (usesVar(idx, iters[s].var.node()))
                    x.set(m, s, true);
    }
    std::size_t out_row = comp.inputs().size();
    for (const auto &idx : comp.outputIndices())
        for (std::size_t s = 0; s < iters.size(); ++s)
            if (usesVar(idx, iters[s].var.node()))
                x.set(out_row, s, true);
    return x;
}

BitMatrix
compatibilityMatrix(const TensorComputation &comp,
                    const ComputeAbstraction &intr)
{
    expect(comp.inputs().size() == intr.numSrcs(),
           "compatibilityMatrix: computation has ",
           comp.inputs().size(), " inputs but intrinsic ",
           intr.name(), " has ", intr.numSrcs(), " sources");
    expect(comp.combine() == intr.combine(),
           "compatibilityMatrix: combine kind mismatch between ",
           comp.name(), " and ", intr.name());

    BitMatrix x = softwareAccessMatrix(comp);
    BitMatrix z = intr.accessMatrix();
    BitMatrix compat(z.cols(), x.cols());
    for (std::size_t k = 0; k < z.cols(); ++k) {
        for (std::size_t s = 0; s < x.cols(); ++s) {
            if (comp.isTensorizeBarrier(
                    comp.iters()[s].var.node()))
                continue;
            if (x.column(s) == z.column(k))
                compat.set(k, s, true);
        }
    }
    return compat;
}

MappingPlan::MappingPlan(TensorComputation comp, Intrinsic intr,
                         ComputeMapping mapping)
    : _comp(std::move(comp)), _intr(std::move(intr)),
      _mapping(std::move(mapping))
{
    std::size_t num_intrinsic = _intr.compute.numIters();
    expect(_mapping.groups.size() == num_intrinsic,
           "MappingPlan: mapping has ", _mapping.groups.size(),
           " groups but intrinsic ", _intr.name(), " has ",
           num_intrinsic, " iterations");

    // Matching matrix Y and the Algorithm-1 validation.
    _y = BitMatrix(num_intrinsic, _comp.numIters());
    std::vector<int> owner(_comp.numIters(), -1);
    for (std::size_t k = 0; k < num_intrinsic; ++k) {
        for (auto s : _mapping.groups[k]) {
            expect(s < _comp.numIters(),
                   "MappingPlan: group member out of range");
            expect(owner[s] < 0, "MappingPlan: software iteration ",
                   _comp.iters()[s].name(),
                   " mapped to two intrinsic iterations");
            owner[s] = static_cast<int>(k);
            _y.set(k, s, true);
        }
    }
    _validation = validateMatching(softwareAccessMatrix(_comp), _y,
                                   _intr.compute.accessMatrix());

    // Dtype legality is part of validity: a structurally sound
    // matching that binds, say, float software operands to int8
    // intrinsic lanes is still not executable on the hardware.
    if (_validation.valid) {
        const auto legal =
            quant::checkDtypeLegality(_comp, _intr.compute);
        if (!legal.legal) {
            _validation.valid = false;
            _validation.failure = "dtype: " + legal.reason;
        }
    }

    buildGroups();
    buildOuterAxes();
    buildOperands();
}

void
MappingPlan::buildGroups()
{
    const auto &iters = _comp.iters();
    const auto &intr_iters = _intr.compute.iters();
    for (std::size_t k = 0; k < intr_iters.size(); ++k) {
        GroupInfo info;
        info.members = _mapping.groups[k];
        // Keep members in loop order: the fused flat index follows
        // the original nesting.
        std::sort(info.members.begin(), info.members.end());
        for (auto s : info.members)
            info.fusedExtent *= iters[s].extent;
        info.intrinsicExtent = intr_iters[k].extent;
        info.quotient = ceilDiv(info.fusedExtent, info.intrinsicExtent);
        info.padded =
            info.fusedExtent % info.intrinsicExtent != 0 ||
            info.fusedExtent < info.intrinsicExtent;
        _groups.push_back(std::move(info));
    }
    for (std::size_t s = 0; s < iters.size(); ++s)
        if (!_mapping.isMapped(s))
            _unmapped.push_back(s);
}

void
MappingPlan::buildOuterAxes()
{
    const auto &iters = _comp.iters();
    for (auto s : _unmapped) {
        OuterAxis axis;
        axis.kind = OuterAxis::Kind::Unmapped;
        axis.ref = s;
        axis.extent = iters[s].extent;
        axis.name = iters[s].name();
        _outerAxes.push_back(std::move(axis));
    }
    const auto &intr_iters = _intr.compute.iters();
    for (std::size_t k = 0; k < _groups.size(); ++k) {
        if (_groups[k].quotient == 1)
            continue; // degenerate axis: nothing to iterate
        OuterAxis axis;
        axis.kind = OuterAxis::Kind::GroupQuotient;
        axis.ref = k;
        axis.extent = _groups[k].quotient;
        axis.name = intr_iters[k].name + ".q";
        _outerAxes.push_back(std::move(axis));
    }
}

void
MappingPlan::buildOperands()
{
    const auto &compute = _intr.compute;
    auto build = [this, &compute](const IntrinsicOperand &intr_op,
                                  const std::vector<Expr> &sw_indices,
                                  bool is_output, int input_index) {
        OperandInfo info;
        info.name = intr_op.name;
        info.isOutput = is_output;
        info.inputIndex = input_index;
        info.dtype = intr_op.dtype;
        info.intrinsicIters = intr_op.iterIndices;
        info.tileElems = compute.operandTileElems(intr_op);
        info.tileBytes = compute.operandTileBytes(intr_op);
        if (intr_op.iterIndices.empty()) {
            info.tileStride = 1;
        } else {
            info.tileStride =
                info.tileElems /
                compute.iters()[intr_op.iterIndices.front()].extent;
        }

        // Which outer axes does the tile address depend on?
        for (std::size_t a = 0; a < _outerAxes.size(); ++a) {
            const auto &axis = _outerAxes[a];
            bool depends = false;
            if (axis.kind == OuterAxis::Kind::Unmapped) {
                const VarNode *var =
                    _comp.iters()[axis.ref].var.node();
                for (const auto &idx : sw_indices)
                    depends |= usesVar(idx, var);
            } else {
                for (auto k : intr_op.iterIndices)
                    depends |= k == axis.ref;
            }
            if (depends)
                info.dependentAxes.push_back(a);
        }
        for (auto a : info.dependentAxes)
            info.numTiles *= _outerAxes[a].extent;

        // Base address: flatten the dependent outer coordinates and
        // scale by the tile size (Fig. 3 part h).
        Expr base(std::int64_t{0});
        std::int64_t scale = info.tileElems;
        for (std::size_t pos = info.dependentAxes.size(); pos-- > 0;) {
            std::size_t a = info.dependentAxes[pos];
            const auto &axis = _outerAxes[a];
            Expr coord;
            if (axis.kind == OuterAxis::Kind::Unmapped) {
                coord = _comp.iters()[axis.ref].var;
            } else {
                coord = floorDiv(fusedFlatExpr(_groups[axis.ref]),
                                 Expr(_groups[axis.ref]
                                          .intrinsicExtent));
            }
            base = base + coord * Expr(scale);
            scale *= axis.extent;
        }
        info.baseAddress = base;
        _operands.push_back(std::move(info));
    };

    for (std::size_t m = 0; m < compute.numSrcs(); ++m)
        build(compute.srcs()[m], _comp.inputs()[m].indices, false,
              static_cast<int>(m));
    build(compute.dst(), _comp.outputIndices(), true, -1);
}

Expr
MappingPlan::fusedFlatExpr(const GroupInfo &group) const
{
    const auto &iters = _comp.iters();
    // Strides of the fused (row-major) flattening.
    std::vector<std::int64_t> strides(group.members.size(), 1);
    for (std::size_t pos = group.members.size(); pos-- > 1;)
        strides[pos - 1] = strides[pos] *
                           iters[group.members[pos]].extent;
    // Build left to right so renderings read like the paper's
    // (n * 4 + p * 2 + q) examples.
    Expr flat(std::int64_t{0});
    for (std::size_t pos = 0; pos < group.members.size(); ++pos)
        flat = flat + iters[group.members[pos]].var *
                      Expr(strides[pos]);
    return flat;
}

std::int64_t
MappingPlan::intrinsicCallCount() const
{
    std::int64_t calls = 1;
    for (const auto &axis : _outerAxes)
        calls *= axis.extent;
    return calls;
}

double
MappingPlan::paddingWasteFactor() const
{
    double executed = 1.0;
    double useful = 1.0;
    for (const auto &group : _groups) {
        executed *= static_cast<double>(group.quotient *
                                        group.intrinsicExtent);
        useful *= static_cast<double>(group.fusedExtent);
    }
    return executed / useful;
}

std::vector<Expr>
MappingPlan::virtualComputeExprs() const
{
    std::vector<Expr> out;
    for (const auto &group : _groups)
        out.push_back(fusedFlatExpr(group));
    return out;
}

std::vector<Expr>
MappingPlan::physicalComputeExprs() const
{
    std::vector<Expr> out;
    for (const auto &group : _groups)
        out.push_back(floorMod(fusedFlatExpr(group),
                               Expr(group.intrinsicExtent)));
    return out;
}

std::vector<Expr>
MappingPlan::quotientExprs() const
{
    std::vector<Expr> out;
    for (const auto &group : _groups)
        out.push_back(floorDiv(fusedFlatExpr(group),
                               Expr(group.intrinsicExtent)));
    return out;
}

std::string
MappingPlan::computeMappingString() const
{
    const auto &intr_iters = _intr.compute.iters();
    std::vector<std::string> lhs, rhs;
    auto exprs = physicalComputeExprs();
    for (std::size_t k = 0; k < intr_iters.size(); ++k) {
        lhs.push_back(intr_iters[k].name);
        rhs.push_back(exprToString(exprs[k]));
    }
    return "[" + join(lhs, ", ") + "] <- [" + join(rhs, ", ") + "]";
}

std::string
MappingPlan::memoryMappingString() const
{
    std::string out;
    for (const auto &op : _operands) {
        out += "addr_" + op.name + " <- " +
               exprToString(op.baseAddress) + "\n";
        out += "stride_" + op.name + " <- " +
               std::to_string(op.tileStride) + "\n";
    }
    return out;
}

} // namespace amos
