#include "jit_hook.hh"

#include <atomic>

namespace amos {

namespace {
std::atomic<const MappedJitHooks *> g_mappedHooks{nullptr};
} // namespace

void
setMappedJitHooks(const MappedJitHooks *hooks)
{
    g_mappedHooks.store(hooks, std::memory_order_release);
}

const MappedJitHooks *
mappedJitHooks()
{
    return g_mappedHooks.load(std::memory_order_acquire);
}

} // namespace amos
