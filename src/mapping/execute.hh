/**
 * @file
 * Functional execution of a mapped computation.
 *
 * Two independent paths, both checked against the reference
 * interpreter in tests:
 *
 *  - executeMappedDirect: walks outer axes x intrinsic iterations,
 *    inverts the fused flat indices back to software coordinates,
 *    skips trailing-padding slots, and applies the update at the
 *    software addresses. Verifies the compute mapping.
 *
 *  - executeMappedPacked: first *stages* every operand into the tiled
 *    layout dictated by the memory mapping (base address + stride
 *    expressions, zero padding in the tails), then executes intrinsic
 *    calls purely on the packed buffers, and finally unpacks the
 *    output. Verifies the memory mapping: any error in the base
 *    address or stride arithmetic breaks the result.
 *
 * Both paths default to the compiled stride-walk engine (see
 * mapping/exec_plan.hh): the mapping is lowered once into per-operand
 * address stride tables and executed without per-element expression
 * evaluation, bit-identical to the scalar interpreters, which remain
 * as the transparent fallback for plans the engine cannot compile
 * (logged via the exec.fallback metric). ExecOptions selects the
 * engine and the thread count of the outer-tile sweep; results are
 * identical for every thread count.
 *
 * With ExecEngine::Jit each path is additionally lowered to native
 * code through the registered JIT hooks (mapping/jit_hook.hh),
 * falling back to the stride walk — and then the interpreter — when
 * the tier declines (logged via exec.jit_fallback). All executors
 * return an ExecReport naming the tier that actually ran.
 */

#ifndef AMOS_MAPPING_EXECUTE_HH
#define AMOS_MAPPING_EXECUTE_HH

#include <vector>

#include "mapping/mapping.hh"
#include "quant/compare.hh"
#include "tensor/access_walk.hh"
#include "tensor/tensor.hh"

namespace amos {

/** Execute via index-remapping (compute-mapping check). */
ExecReport executeMappedDirect(const MappingPlan &plan,
                               const std::vector<const Buffer *> &inputs,
                               Buffer &output);
ExecReport executeMappedDirect(const MappingPlan &plan,
                               const std::vector<const Buffer *> &inputs,
                               Buffer &output, const ExecOptions &opts);

/** Execute via packed tiles (memory-mapping check). */
ExecReport executeMappedPacked(const MappingPlan &plan,
                               const std::vector<const Buffer *> &inputs,
                               Buffer &output);
ExecReport executeMappedPacked(const MappingPlan &plan,
                               const std::vector<const Buffer *> &inputs,
                               Buffer &output, const ExecOptions &opts);

/**
 * Convenience used by tests: run both mapped paths on pattern inputs
 * and return the largest deviation from the reference interpreter.
 */
float mappedVsReferenceError(const MappingPlan &plan,
                             std::uint64_t seed = 7);

/**
 * Differential check of the compiled engine itself: run both mapped
 * paths with the interpreter forced and with the stride-walk engine
 * at `numThreads`, on identical pattern inputs, and return the
 * largest deviation. Zero iff the engine is bit-identical.
 */
float compiledVsInterpreterError(const MappingPlan &plan,
                                 std::uint64_t seed = 7,
                                 int numThreads = 1);

/**
 * Differential check of an arbitrary tier: run both mapped paths
 * with the interpreter forced and with the requested engine, on
 * identical pattern inputs, and return the largest deviation. The
 * optional reports record which tier each path actually used (e.g.
 * to assert that the JIT tier really ran rather than fell back).
 */
float engineVsInterpreterError(const MappingPlan &plan,
                               ExecEngine engine,
                               std::uint64_t seed = 7,
                               ExecReport *directReport = nullptr,
                               ExecReport *packedReport = nullptr);

/**
 * Tolerance-aware differential harness: run both mapped paths with
 * the interpreter forced and with the requested engine at
 * `numThreads`, on identical pattern inputs, and compare each pair
 * of outputs under `spec` (quant/compare.hh). Integer outputs are
 * compared bit-exactly by default; the returned result is the worst
 * of the direct and packed comparisons. The optional reports record
 * which tier each path actually used.
 */
quant::CompareResult
engineVsInterpreterCompare(const MappingPlan &plan, ExecEngine engine,
                           const quant::ToleranceSpec &spec,
                           std::uint64_t seed = 7, int numThreads = 1,
                           ExecReport *directReport = nullptr,
                           ExecReport *packedReport = nullptr);

} // namespace amos

#endif // AMOS_MAPPING_EXECUTE_HH
