/**
 * @file
 * Registration point for the mapped executors' JIT tier.
 *
 * The mapped executors (mapping/execute.hh) sit below codegen and the
 * JIT subsystem in the library graph, so they cannot call them
 * directly without a dependency cycle. Instead the amos_jit library
 * installs these hooks from a static registrar (force-linked via
 * WHOLE_ARCHIVE, or explicitly with jit::ensureLinked()); when no
 * hook is installed — binaries that do not link amos_jit — the JIT
 * tier transparently reports "jit tier not linked" and execution
 * falls back to the stride walk.
 */

#ifndef AMOS_MAPPING_JIT_HOOK_HH
#define AMOS_MAPPING_JIT_HOOK_HH

#include <string>
#include <vector>

#include "mapping/exec_plan.hh"
#include "mapping/mapping.hh"
#include "tensor/tensor.hh"

namespace amos {

/**
 * JIT entry points for the two mapped execution paths. Each returns
 * true when the jitted kernel ran (output holds the result) and
 * false — with `why` explaining — when the tier declines and the
 * caller should fall back. `ep` is already compiled and checked
 * against the buffers.
 */
struct MappedJitHooks
{
    bool (*runDirect)(const MappingPlan &plan, const ExecPlan &ep,
                      const std::vector<const Buffer *> &inputs,
                      Buffer &output, std::string *why) = nullptr;
    bool (*runPacked)(const MappingPlan &plan, const ExecPlan &ep,
                      const std::vector<const Buffer *> &inputs,
                      Buffer &output, std::string *why) = nullptr;
};

/** Install (or clear, with nullptr) the mapped JIT hooks. */
void setMappedJitHooks(const MappedJitHooks *hooks);

/** Currently installed hooks, or nullptr. */
const MappedJitHooks *mappedJitHooks();

} // namespace amos

#endif // AMOS_MAPPING_JIT_HOOK_HH
