/**
 * @file
 * Operator inventories of the evaluated networks, derived from the
 * published architectures. Identical configurations carry a count.
 */

#include "network.hh"

#include "ops/conv_layers.hh"
#include "ops/operators.hh"

namespace amos {

namespace {

using ops::ConvParams;

GraphOp
tensorOp(std::string label, TensorComputation comp, int count = 1)
{
    GraphOp op;
    op.label = std::move(label);
    op.comp = std::move(comp);
    op.count = count;
    return op;
}

/** Elementwise/memory-bound node: flops-per-element ~1. */
GraphOp
elemOp(std::string label, double elements, int count = 1,
       double flops_per_elem = 1.0)
{
    GraphOp op;
    op.label = std::move(label);
    op.elementwiseFlops = elements * flops_per_elem;
    op.elementwiseBytes = elements * 4.0; // read + write f16
    op.count = count;
    return op;
}

TensorComputation
conv(std::int64_t n, std::int64_t c, std::int64_t k, std::int64_t hw_,
     std::int64_t kern, std::int64_t stride)
{
    ConvParams pr;
    pr.batch = n;
    pr.in_channels = c;
    pr.out_channels = k;
    pr.out_h = hw_;
    pr.out_w = hw_;
    pr.kernel_h = kern;
    pr.kernel_w = kern;
    pr.stride = stride;
    return ops::makeConv2d(pr);
}

/** Linear layer: GEMV at batch 1 (the MI-LSTM situation), else GEMM. */
TensorComputation
linear(std::int64_t rows, std::int64_t out_features,
       std::int64_t in_features)
{
    if (rows == 1)
        return ops::makeGemv(out_features, in_features);
    return ops::makeGemm(rows, out_features, in_features);
}

/** Batched matmul (4 iterations; defeats 3-loop GEMM patterns). */
TensorComputation
batchedMatmul(std::int64_t b, std::int64_t m, std::int64_t n,
              std::int64_t k)
{
    IterVar bi{Var("b"), b, IterKind::Spatial};
    IterVar i{Var("i"), m, IterKind::Spatial};
    IterVar j{Var("j"), n, IterKind::Spatial};
    IterVar r{Var("k"), k, IterKind::Reduction};
    TensorDecl a("A", {b, m, k});
    TensorDecl bmat("B", {b, k, n});
    TensorDecl out("out", {b, m, n});
    return TensorComputation(
        "batched_matmul", {bi, i, j, r}, out,
        {bi.var, i.var, j.var},
        {{a, {bi.var, i.var, r.var}},
         {bmat, {bi.var, r.var, j.var}}});
}

} // namespace

int
Network::totalOps() const
{
    int n = 0;
    for (const auto &op : ops)
        n += op.count;
    return n;
}

int
Network::tensorOps() const
{
    int n = 0;
    for (const auto &op : ops)
        if (op.isTensorOp())
            n += op.count;
    return n;
}

Network
shuffleNet(std::int64_t batch)
{
    // ShuffleNet v1 (g = 4): stem conv, three stages of units built
    // from grouped 1x1 convolutions and 3x3 depthwise convolutions,
    // global pool and classifier. 50 tensor ops + 20 others = 70.
    Network net;
    net.name = "ShuffleNet";
    auto b = batch;

    ConvParams dw;
    dw.batch = b;
    dw.kernel_h = dw.kernel_w = 3;

    auto gconv = [&](std::int64_t g, std::int64_t cpg,
                     std::int64_t kpg, std::int64_t hw_) {
        ConvParams pr;
        pr.batch = b;
        pr.in_channels = cpg;
        pr.out_channels = kpg;
        pr.out_h = pr.out_w = hw_;
        pr.kernel_h = pr.kernel_w = 1;
        return ops::makeGroupConv2d(pr, g);
    };
    auto depthwise = [&](std::int64_t c, std::int64_t hw_,
                         std::int64_t stride) {
        ConvParams pr;
        pr.batch = b;
        pr.in_channels = c;
        pr.out_h = pr.out_w = hw_;
        pr.kernel_h = pr.kernel_w = 3;
        pr.stride = stride;
        return ops::makeDepthwiseConv2d(pr, 1);
    };

    net.ops.push_back(tensorOp("conv1", conv(b, 3, 24, 112, 3, 2)));
    // Stage 2: 4 units at 28x28, 272 channels, groups 4 (68/group).
    net.ops.push_back(tensorOp("s2.gconv_a", gconv(4, 68, 17, 28), 4));
    net.ops.push_back(tensorOp("s2.dwconv", depthwise(68, 28, 1), 4));
    net.ops.push_back(tensorOp("s2.gconv_b", gconv(4, 17, 68, 28), 4));
    // Stage 3: 8 units at 14x14, 544 channels.
    net.ops.push_back(
        tensorOp("s3.gconv_a", gconv(4, 136, 34, 14), 8));
    net.ops.push_back(tensorOp("s3.dwconv", depthwise(136, 14, 1), 8));
    net.ops.push_back(
        tensorOp("s3.gconv_b", gconv(4, 34, 136, 14), 8));
    // Stage 4: 4 units at 7x7, 1088 channels.
    net.ops.push_back(tensorOp("s4.gconv_a", gconv(4, 272, 68, 7), 4));
    net.ops.push_back(tensorOp("s4.dwconv", depthwise(272, 7, 1), 4));
    net.ops.push_back(tensorOp("s4.gconv_b", gconv(4, 68, 272, 7), 4));
    net.ops.push_back(tensorOp("fc", linear(b, 1000, 1088)));

    double act = static_cast<double>(b) * 272 * 28 * 28;
    net.ops.push_back(elemOp("maxpool", act, 1));
    net.ops.push_back(elemOp("relu", act, 9));
    net.ops.push_back(elemOp("channel_shuffle", act, 4));
    net.ops.push_back(elemOp("residual_add", act, 4));
    net.ops.push_back(elemOp("avgpool_shortcut", act, 1));
    net.ops.push_back(elemOp("global_pool", act / 16.0, 1));
    return net;
}

Network
resnet18(std::int64_t batch)
{
    // The twelve distinct convolutions of Table 5 with their
    // repetition counts, plus the classifier and elementwise nodes.
    Network net;
    net.name = "ResNet-18";
    auto layers = ops::resnet18ConvLayers(batch);
    const int counts[12] = {1, 4, 1, 1, 1, 3, 1, 1, 3, 1, 1, 3};
    for (std::size_t i = 0; i < layers.size(); ++i)
        net.ops.push_back(tensorOp(layers[i].label,
                                   layers[i].build(), counts[i]));
    net.ops.push_back(tensorOp("fc", linear(batch, 1000, 512)));

    double act = static_cast<double>(batch) * 64 * 56 * 56;
    net.ops.push_back(elemOp("maxpool", act, 1));
    net.ops.push_back(elemOp("relu", act, 8));
    net.ops.push_back(elemOp("residual_add", act, 8));
    net.ops.push_back(elemOp("global_pool", act / 49.0, 1));
    return net;
}

Network
resnet50(std::int64_t batch)
{
    // Bottleneck blocks: 1x1 / 3x3 / 1x1 per block, a strided 3x3
    // and a 1x1 downsample at each stage boundary; 53 convolutions
    // plus the classifier = 54 tensor ops (the count AMOS maps in
    // Table 2); 17 elementwise nodes complete the 71.
    Network net;
    net.name = "ResNet-50";
    auto b = batch;
    net.ops.push_back(tensorOp("conv1", conv(b, 3, 64, 112, 7, 2)));

    struct Stage
    {
        std::int64_t width;   // bottleneck width
        std::int64_t out;     // block output channels
        std::int64_t hw;      // output spatial
        int blocks;
    };
    const Stage stages[4] = {{64, 256, 56, 3},
                             {128, 512, 28, 4},
                             {256, 1024, 14, 6},
                             {512, 2048, 7, 3}};
    std::int64_t in_ch = 64;
    for (int s = 0; s < 4; ++s) {
        const auto &st = stages[s];
        std::string tag = "l" + std::to_string(s + 1);
        std::int64_t stride = s == 0 ? 1 : 2;
        // First block (possibly strided) with downsample.
        net.ops.push_back(tensorOp(
            tag + ".b0.conv1x1_in",
            conv(b, in_ch, st.width, st.hw * stride, 1, 1)));
        net.ops.push_back(tensorOp(
            tag + ".b0.conv3x3",
            conv(b, st.width, st.width, st.hw, 3, stride)));
        net.ops.push_back(tensorOp(
            tag + ".b0.conv1x1_out",
            conv(b, st.width, st.out, st.hw, 1, 1)));
        net.ops.push_back(tensorOp(
            tag + ".b0.downsample",
            conv(b, in_ch, st.out, st.hw, 1, stride)));
        // Remaining identity blocks.
        if (st.blocks > 1) {
            net.ops.push_back(tensorOp(
                tag + ".conv1x1_in",
                conv(b, st.out, st.width, st.hw, 1, 1),
                st.blocks - 1));
            net.ops.push_back(tensorOp(
                tag + ".conv3x3",
                conv(b, st.width, st.width, st.hw, 3, 1),
                st.blocks - 1));
            net.ops.push_back(tensorOp(
                tag + ".conv1x1_out",
                conv(b, st.width, st.out, st.hw, 1, 1),
                st.blocks - 1));
        }
        in_ch = st.out;
    }
    net.ops.push_back(tensorOp("fc", linear(b, 1000, 2048)));

    double act = static_cast<double>(b) * 256 * 56 * 56;
    net.ops.push_back(elemOp("maxpool", act, 1));
    net.ops.push_back(elemOp("relu", act, 8));
    net.ops.push_back(elemOp("residual_add", act, 7));
    net.ops.push_back(elemOp("global_pool", act / 49.0, 1));
    return net;
}

Network
mobileNetV1(std::int64_t batch)
{
    // Stem conv, 13 depthwise + 13 pointwise stages, classifier:
    // 28 tensor ops; pool and softmax complete the 30 of Table 2.
    Network net;
    net.name = "MobileNet-V1";
    auto b = batch;
    net.ops.push_back(tensorOp("conv1", conv(b, 3, 32, 112, 3, 2)));

    struct Dw
    {
        std::int64_t ch;
        std::int64_t hw;
        std::int64_t stride;
        std::int64_t out;
        int count;
    };
    const Dw rows[] = {
        {32, 112, 1, 64, 1},  {64, 56, 2, 128, 1},
        {128, 56, 1, 128, 1}, {128, 28, 2, 256, 1},
        {256, 28, 1, 256, 1}, {256, 14, 2, 512, 1},
        {512, 14, 1, 512, 5}, {512, 7, 2, 1024, 1},
        {1024, 7, 1, 1024, 1},
    };
    int idx = 0;
    for (const auto &row : rows) {
        ConvParams dw;
        dw.batch = b;
        dw.in_channels = row.ch;
        dw.out_h = dw.out_w = row.hw / row.stride;
        dw.kernel_h = dw.kernel_w = 3;
        dw.stride = row.stride;
        std::string tag = "dw" + std::to_string(idx);
        net.ops.push_back(tensorOp(
            tag, ops::makeDepthwiseConv2d(dw, 1), row.count));
        net.ops.push_back(tensorOp(
            "pw" + std::to_string(idx),
            conv(b, row.ch, row.out, row.hw / row.stride, 1, 1),
            row.count));
        ++idx;
    }
    net.ops.push_back(tensorOp("fc", linear(b, 1000, 1024)));
    double act = static_cast<double>(b) * 128 * 56 * 56;
    net.ops.push_back(elemOp("global_pool", act / 32.0, 1));
    net.ops.push_back(elemOp("softmax", static_cast<double>(b) * 1000,
                             1));
    return net;
}

Network
bertBase(std::int64_t batch, std::int64_t seq_len)
{
    // 12 encoder layers, hidden 768, 12 heads, FFN 3072. Per layer:
    // 4 projections (GEMM), 2 attention batched matmuls, 2 FFN
    // GEMMs; layernorms, softmax, GELU, and residual adds are
    // elementwise.
    Network net;
    net.name = "Bert";
    std::int64_t rows = batch * seq_len;
    const int L = 12;

    net.ops.push_back(
        tensorOp("qkv_proj", linear(rows, 768, 768), 3 * L));
    net.ops.push_back(
        tensorOp("attn_out_proj", linear(rows, 768, 768), L));
    net.ops.push_back(tensorOp(
        "attn_scores",
        batchedMatmul(batch * 12, seq_len, seq_len, 64), L));
    net.ops.push_back(tensorOp(
        "attn_context",
        batchedMatmul(batch * 12, seq_len, 64, seq_len), L));
    net.ops.push_back(
        tensorOp("ffn_up", linear(rows, 3072, 768), L));
    net.ops.push_back(
        tensorOp("ffn_down", linear(rows, 768, 3072), L));
    net.ops.push_back(tensorOp("pooler", linear(batch, 768, 768)));

    double act = static_cast<double>(rows) * 768;
    net.ops.push_back(elemOp("embeddings", act, 3));
    net.ops.push_back(elemOp("layernorm", act, 2 * L, 4.0));
    net.ops.push_back(
        elemOp("softmax",
               static_cast<double>(batch) * 12 * seq_len * seq_len,
               L, 4.0));
    net.ops.push_back(
        elemOp("gelu", static_cast<double>(rows) * 3072, L, 8.0));
    net.ops.push_back(elemOp("residual_add", act, 2 * L));
    net.ops.push_back(elemOp("bias_add", act, 2 * L));
    net.ops.push_back(
        elemOp("attn_mask_add",
               static_cast<double>(batch) * 12 * seq_len * seq_len,
               L));
    net.ops.push_back(elemOp("tanh_pool",
                             static_cast<double>(batch) * 768, 1));
    return net;
}

Network
miLstm(std::int64_t batch, std::int64_t hidden)
{
    // Multiplicative-integration LSTM cell: eight gate projections
    // (W x and U h for each of the four gates) plus the output
    // projection are linear layers — matrix-vector products at batch
    // one; the multiplicative integration and nonlinearities are
    // elementwise. 9 of 11 ops are mappable (Table 2).
    Network net;
    net.name = "MI-LSTM";
    net.ops.push_back(
        tensorOp("gate_Wx", linear(batch, hidden, hidden), 4));
    net.ops.push_back(
        tensorOp("gate_Uh", linear(batch, hidden, hidden), 4));
    net.ops.push_back(
        tensorOp("output_proj", linear(batch, hidden, hidden)));
    double act = static_cast<double>(batch) * hidden;
    net.ops.push_back(elemOp("mi_gates", act, 1, 6.0));
    net.ops.push_back(elemOp("cell_update", act, 1, 4.0));
    return net;
}

Network
transformer(std::int64_t batch, std::int64_t seq_len)
{
    // A 6-layer encoder of the original Transformer configuration
    // (hidden 512, FFN 2048, 8 heads).
    Network net;
    net.name = "Transformer";
    std::int64_t rows = batch * seq_len;
    const int L = 6;
    net.ops.push_back(
        tensorOp("qkv_proj", linear(rows, 512, 512), 3 * L));
    net.ops.push_back(
        tensorOp("attn_out_proj", linear(rows, 512, 512), L));
    net.ops.push_back(tensorOp(
        "attn_scores",
        batchedMatmul(batch * 8, seq_len, seq_len, 64), L));
    net.ops.push_back(tensorOp(
        "attn_context",
        batchedMatmul(batch * 8, seq_len, 64, seq_len), L));
    net.ops.push_back(tensorOp("ffn_up", linear(rows, 2048, 512), L));
    net.ops.push_back(
        tensorOp("ffn_down", linear(rows, 512, 2048), L));
    double act = static_cast<double>(rows) * 512;
    net.ops.push_back(elemOp("layernorm", act, 2 * L, 4.0));
    net.ops.push_back(
        elemOp("softmax",
               static_cast<double>(batch) * 8 * seq_len * seq_len, L,
               4.0));
    net.ops.push_back(elemOp("residual_add", act, 2 * L));
    return net;
}

} // namespace amos
