/**
 * @file
 * Network graphs: operator inventories of the DNNs the paper
 * evaluates end to end (ShuffleNet, ResNet-18/50, MobileNet-V1,
 * Bert-base, MI-LSTM, Transformer), plus the machinery to compile a
 * whole network with AMOS or a baseline and sum its latency.
 *
 * Only the multiset of operator configurations matters for the
 * paper's end-to-end numbers (Table 2, Fig. 7); the inventories here
 * are derived from the published architectures, with identical
 * configurations deduplicated through a repetition count.
 */

#ifndef AMOS_GRAPH_NETWORK_HH
#define AMOS_GRAPH_NETWORK_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "baselines/baselines.hh"
#include "explore/tuner.hh"
#include "tensor/computation.hh"

namespace amos {

/** One node of a network graph. */
struct GraphOp
{
    std::string label;

    /// Tensor ops carry a computation; elementwise/memory-bound ops
    /// (ReLU, pooling, batch-norm, softmax, shuffle, residual adds)
    /// carry only a cost description, since no intrinsic can help
    /// them (the paper: "inherently not supported by Tensor Core").
    std::optional<TensorComputation> comp;

    /// For elementwise ops: scalar flops and global bytes touched.
    double elementwiseFlops = 0.0;
    double elementwiseBytes = 0.0;

    /// How many identically-configured instances the network has.
    int count = 1;

    bool isTensorOp() const { return comp.has_value(); }
};

/** A whole network: named list of ops. */
struct Network
{
    std::string name;
    std::vector<GraphOp> ops;

    /** Total graph nodes including repetition counts. */
    int totalOps() const;
    /** Tensor-op nodes including repetition counts. */
    int tensorOps() const;
};

/// @name Network inventories (Sec. 7.1 benchmarks).
/// @{
Network shuffleNet(std::int64_t batch);
Network resnet18(std::int64_t batch);
Network resnet50(std::int64_t batch);
Network mobileNetV1(std::int64_t batch);
Network bertBase(std::int64_t batch, std::int64_t seq_len = 128);
Network miLstm(std::int64_t batch, std::int64_t hidden = 1024);
Network transformer(std::int64_t batch, std::int64_t seq_len = 128);
/// @}

/** Which compiler maps the network's tensor ops. */
enum class NetworkCompiler
{
    Amos,
    PyTorch, ///< library proxy
    Unit,
    Tvm,     ///< hand-written template proxy (fuse_hw + tuning)
    Xla,
};

/** Printable name of a network compiler. */
const char *networkCompilerName(NetworkCompiler compiler);

/** Per-op outcome inside a compiled network. */
struct CompiledOp
{
    std::string label;
    bool tensorized = false;
    int count = 1;
    double msPerInstance = 0.0;
    std::string mappingSignature;
};

/** Outcome of compiling a whole network. */
struct NetworkResult
{
    std::string network;
    NetworkCompiler compiler;
    double totalMs = 0.0;
    int mappedOps = 0;  ///< tensor ops lowered to the intrinsic
    int totalOps = 0;   ///< all graph nodes
    std::vector<CompiledOp> ops;
};

/** Tuning budget knobs for network compilation. */
struct NetworkCompileOptions
{
    TuneOptions tuning{};
};

/**
 * Compile every op of a network with the chosen compiler and sum the
 * latencies (identical configurations are compiled once).
 */
NetworkResult compileNetwork(const Network &net,
                             const HardwareSpec &hw,
                             NetworkCompiler compiler,
                             const NetworkCompileOptions &options = {});

} // namespace amos

#endif // AMOS_GRAPH_NETWORK_HH
