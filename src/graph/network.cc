#include "network.hh"

#include "ir/affine.hh"
#include "support/logging.hh"

namespace amos {

const char *
networkCompilerName(NetworkCompiler compiler)
{
    switch (compiler) {
      case NetworkCompiler::Amos: return "AMOS";
      case NetworkCompiler::PyTorch: return "PyTorch";
      case NetworkCompiler::Unit: return "UNIT";
      case NetworkCompiler::Tvm: return "TVM";
      case NetworkCompiler::Xla: return "XLA";
    }
    return "?";
}

namespace {

/**
 * Spatial stride of a convolution-shaped computation: the largest
 * affine coefficient a spatial iterator carries inside any input
 * access index (1 for unit-stride ops and for non-convolutions).
 */
std::int64_t
spatialStrideOf(const TensorComputation &comp)
{
    std::int64_t stride = 1;
    for (const auto &in : comp.inputs()) {
        for (const auto &idx : in.indices) {
            auto form = tryToAffine(idx);
            if (!form)
                continue;
            if (form->terms().size() < 2)
                continue; // pure single-iterator index
            for (const auto &term : form->terms()) {
                for (const auto &iv : comp.iters()) {
                    if (iv.var.node() == term.var &&
                        iv.kind == IterKind::Spatial) {
                        stride = std::max<std::int64_t>(
                            stride, term.coeff < 0 ? -term.coeff
                                                   : term.coeff);
                    }
                }
            }
        }
    }
    return stride;
}

/** Compile one tensor op with the selected compiler. */
baselines::BaselineResult
compileTensorOp(const TensorComputation &comp, const HardwareSpec &hw,
                NetworkCompiler compiler, const TuneOptions &tuning)
{
    using namespace baselines;
    switch (compiler) {
      case NetworkCompiler::Amos: {
        auto result = tune(comp, hw, tuning);
        if (!result.tensorizable)
            return scalarExecution(comp, hw, 0.6, "amos-scalar");
        BaselineResult res;
        res.baseline = "amos";
        res.tensorized = true;
        res.cycles = result.bestCycles;
        // Ship the faster of tensorized and own scalar code (see
        // Compiler::compile); the operator still counts as mapped.
        auto scalar = scalarExecution(comp, hw, 0.6, "amos-scalar");
        res.cycles = std::min(res.cycles, scalar.cycles);
        res.milliseconds = cyclesToMs(res.cycles, hw);
        res.mappingSignature = result.mappingSignature;
        return res;
      }
      case NetworkCompiler::PyTorch:
        return libraryProxy(comp, hw);
      case NetworkCompiler::Unit:
        return unitProxy(comp, hw);
      case NetworkCompiler::Tvm: {
        // The hand-written TVM templates do not emit Tensor Core
        // intrinsics for strided convolutions (Sec. 7.4): address
        // generation defeats the template.
        if (spatialStrideOf(comp) > 1)
            return scalarExecution(comp, hw, 0.6, "tvm");
        TuneOptions small = tuning;
        small.population = std::min(small.population, 12);
        small.generations = std::min(small.generations, 5);
        auto res = amosFixedMapping(comp, hw, FixedMapping::Im2col,
                                    small);
        res.baseline = "tvm";
        return res;
      }
      case NetworkCompiler::Xla:
        return xlaProxy(comp, hw);
    }
    panic("compileTensorOp: unknown compiler");
}

} // namespace

NetworkResult
compileNetwork(const Network &net, const HardwareSpec &hw,
               NetworkCompiler compiler,
               const NetworkCompileOptions &options)
{
    NetworkResult result;
    result.network = net.name;
    result.compiler = compiler;
    result.totalOps = net.totalOps();

    for (const auto &op : net.ops) {
        CompiledOp compiled;
        compiled.label = op.label;
        compiled.count = op.count;
        if (op.isTensorOp()) {
            auto res = compileTensorOp(*op.comp, hw, compiler,
                                       options.tuning);
            compiled.tensorized = res.tensorized;
            compiled.msPerInstance = res.milliseconds;
            compiled.mappingSignature = res.mappingSignature;
            if (res.tensorized)
                result.mappedOps += op.count;
        } else {
            auto sim = simulateScalar(op.elementwiseFlops,
                                      op.elementwiseBytes, hw, 0.7);
            compiled.msPerInstance = sim.milliseconds;
        }
        result.totalMs += compiled.msPerInstance * op.count;
        result.ops.push_back(std::move(compiled));
    }
    return result;
}

} // namespace amos
