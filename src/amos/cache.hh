/**
 * @file
 * Tuning cache: persist the outcome of mapping/schedule exploration
 * so a production deployment tunes each (operator, hardware) pair
 * once. Entries serialise the compute mapping (iterator groups), the
 * schedule, and the winning intrinsic by name; they re-materialise
 * into a MappingPlan for any structurally identical computation.
 */

#ifndef AMOS_AMOS_CACHE_HH
#define AMOS_AMOS_CACHE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "hw/hardware.hh"
#include "mapping/mapping.hh"
#include "schedule/schedule.hh"
#include "support/json.hh"

namespace amos {

/// @name Mapping / schedule serialisation.
/// @{
Json mappingToJson(const ComputeMapping &mapping);
ComputeMapping mappingFromJson(const Json &json);
Json scheduleToJson(const Schedule &sched);
Schedule scheduleFromJson(const Json &json);
/// @}

/** One persisted tuning outcome. */
struct CacheEntry
{
    std::string intrinsicName;
    ComputeMapping mapping;
    Schedule schedule;
    double cycles = 0.0;

    Json toJson() const;
    static CacheEntry fromJson(const Json &json);

    /**
     * Re-materialise the plan on a hardware spec; nullopt when the
     * named intrinsic is absent or the mapping no longer validates.
     */
    std::optional<MappingPlan> instantiate(
        const TensorComputation &comp, const HardwareSpec &hw) const;
};

/**
 * File-backed map from workload keys to cache entries.
 *
 * All member functions are safe to call from multiple threads
 * concurrently (a production deployment tunes many operators at
 * once against one shared cache). lookup() hands out a reference
 * whose mapped value may be rewritten by a concurrent insert() of
 * the same key — concurrent readers should prefer tryGet(), which
 * copies the entry under the lock.
 */
class TuningCache
{
  public:
    TuningCache() = default;
    TuningCache(const TuningCache &other);
    TuningCache &operator=(const TuningCache &other);
    TuningCache(TuningCache &&other) noexcept;
    TuningCache &operator=(TuningCache &&other) noexcept;

    /**
     * Cache key of a workload: operator name, iterator extents, and
     * hardware name (structure beyond extents is implied by the
     * operator name for all library operators).
     */
    static std::string keyFor(const TensorComputation &comp,
                              const HardwareSpec &hw);

    bool contains(const std::string &key) const;
    const CacheEntry &lookup(const std::string &key) const;
    /** Copy of the entry under the cache lock; nullopt on miss. */
    std::optional<CacheEntry> tryGet(const std::string &key) const;
    void insert(const std::string &key, CacheEntry entry);
    std::size_t size() const;

    /** Copy of every (key, entry) pair under one lock acquisition. */
    std::vector<std::pair<std::string, CacheEntry>> snapshot() const;

    Json toJson() const;
    /**
     * Rebuild from JSON, skipping (with a warning) entries that do
     * not deserialise — a partially corrupt cache degrades into a
     * smaller cache, never into an aborted load.
     */
    static TuningCache fromJson(const Json &json);

    /**
     * Persist to / restore from a file (JSON document). saveFile is
     * crash-safe: it writes a sibling temp file and rename()s it
     * into place, so readers never observe a torn document.
     * loadFile raises fatal() only when the file cannot be opened;
     * unparseable content yields an empty cache with a warning.
     */
    void saveFile(const std::string &path) const;
    static TuningCache loadFile(const std::string &path);

    /** loadFile when the file exists, else an empty cache. */
    static TuningCache loadFileIfExists(const std::string &path);

    /// @name Lifetime access statistics.
    /// Monotonic counters over contains()/tryGet()/lookup() probes
    /// and insert() calls; copies of a cache start from the source's
    /// current values. Feed these into a MetricsRegistry to expose
    /// them alongside the rest of the pipeline metrics.
    /// @{
    std::uint64_t hitCount() const;
    std::uint64_t missCount() const;
    std::uint64_t insertCount() const;
    /// @}

  private:
    mutable std::mutex _mutex;
    std::map<std::string, CacheEntry> _entries;

    mutable std::atomic<std::uint64_t> _hits{0};
    mutable std::atomic<std::uint64_t> _misses{0};
    std::atomic<std::uint64_t> _inserts{0};
};

} // namespace amos

#endif // AMOS_AMOS_CACHE_HH
