#include "cache.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace amos {

Json
mappingToJson(const ComputeMapping &mapping)
{
    Json groups = Json::array();
    for (const auto &group : mapping.groups) {
        Json members = Json::array();
        for (auto s : group)
            members.push(Json(static_cast<std::int64_t>(s)));
        groups.push(std::move(members));
    }
    Json out = Json::object();
    out.set("groups", std::move(groups));
    return out;
}

ComputeMapping
mappingFromJson(const Json &json)
{
    ComputeMapping mapping;
    const Json &groups = json.get("groups");
    for (std::size_t k = 0; k < groups.size(); ++k) {
        std::vector<std::size_t> members;
        for (std::size_t i = 0; i < groups.at(k).size(); ++i) {
            auto v = groups.at(k).at(i).asInt();
            expect(v >= 0, "cache: negative iterator index");
            members.push_back(static_cast<std::size_t>(v));
        }
        mapping.groups.push_back(std::move(members));
    }
    return mapping;
}

Json
scheduleToJson(const Schedule &sched)
{
    Json axes = Json::array();
    for (const auto &axis : sched.axes) {
        Json a = Json::object();
        a.set("block", Json(axis.blockFactor));
        a.set("warp", Json(axis.warpFactor));
        axes.push(std::move(a));
    }
    Json out = Json::object();
    out.set("axes", std::move(axes));
    out.set("stage", Json(sched.stageDepth));
    out.set("vector", Json(sched.vectorLanes));
    out.set("unroll", Json(sched.unrollDepth));
    return out;
}

Schedule
scheduleFromJson(const Json &json)
{
    Schedule sched;
    const Json &axes = json.get("axes");
    for (std::size_t i = 0; i < axes.size(); ++i) {
        AxisSchedule axis;
        axis.blockFactor = axes.at(i).get("block").asInt();
        axis.warpFactor = axes.at(i).get("warp").asInt();
        expect(axis.blockFactor >= 1 && axis.warpFactor >= 1,
               "cache: non-positive schedule factor");
        sched.axes.push_back(axis);
    }
    sched.stageDepth = static_cast<int>(json.get("stage").asInt());
    sched.vectorLanes = static_cast<int>(json.get("vector").asInt());
    sched.unrollDepth = static_cast<int>(json.get("unroll").asInt());
    return sched;
}

Json
CacheEntry::toJson() const
{
    Json out = Json::object();
    out.set("intrinsic", Json(intrinsicName));
    out.set("mapping", mappingToJson(mapping));
    out.set("schedule", scheduleToJson(schedule));
    out.set("cycles", Json(cycles));
    return out;
}

CacheEntry
CacheEntry::fromJson(const Json &json)
{
    CacheEntry entry;
    entry.intrinsicName = json.get("intrinsic").asString();
    entry.mapping = mappingFromJson(json.get("mapping"));
    entry.schedule = scheduleFromJson(json.get("schedule"));
    entry.cycles = json.get("cycles").asNumber();
    return entry;
}

std::optional<MappingPlan>
CacheEntry::instantiate(const TensorComputation &comp,
                        const HardwareSpec &hw) const
{
    for (const auto &intr : hw.intrinsics) {
        if (intr.name() != intrinsicName)
            continue;
        if (mapping.groups.size() != intr.compute.numIters())
            return std::nullopt;
        for (const auto &group : mapping.groups)
            for (auto s : group)
                if (s >= comp.numIters())
                    return std::nullopt;
        MappingPlan plan(comp, intr, mapping);
        if (!plan.valid())
            return std::nullopt;
        return plan;
    }
    return std::nullopt;
}

TuningCache::TuningCache(const TuningCache &other)
{
    std::lock_guard<std::mutex> lock(other._mutex);
    _entries = other._entries;
    _hits.store(other._hits.load());
    _misses.store(other._misses.load());
    _inserts.store(other._inserts.load());
}

TuningCache &
TuningCache::operator=(const TuningCache &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(_mutex, other._mutex);
    _entries = other._entries;
    _hits.store(other._hits.load());
    _misses.store(other._misses.load());
    _inserts.store(other._inserts.load());
    return *this;
}

TuningCache::TuningCache(TuningCache &&other) noexcept
{
    std::lock_guard<std::mutex> lock(other._mutex);
    _entries = std::move(other._entries);
    _hits.store(other._hits.load());
    _misses.store(other._misses.load());
    _inserts.store(other._inserts.load());
}

TuningCache &
TuningCache::operator=(TuningCache &&other) noexcept
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(_mutex, other._mutex);
    _entries = std::move(other._entries);
    _hits.store(other._hits.load());
    _misses.store(other._misses.load());
    _inserts.store(other._inserts.load());
    return *this;
}

std::string
TuningCache::keyFor(const TensorComputation &comp,
                    const HardwareSpec &hw)
{
    std::ostringstream key;
    key << hw.name << "/" << comp.name();
    for (const auto &iv : comp.iters())
        key << "_" << iv.extent;
    // Typed variants are distinct artifacts; the all-f16 default
    // keeps its historical key so persisted caches stay valid.
    bool allDefault = comp.output().dtype() == DataType::F16;
    for (const auto &in : comp.inputs())
        allDefault = allDefault && in.decl.dtype() == DataType::F16;
    if (!allDefault) {
        key << "/";
        for (const auto &in : comp.inputs())
            key << dtypeName(in.decl.dtype()) << "_";
        key << dtypeName(comp.output().dtype());
    }
    return key.str();
}

bool
TuningCache::contains(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    bool found = _entries.count(key) > 0;
    (found ? _hits : _misses).fetch_add(1, std::memory_order_relaxed);
    return found;
}

const CacheEntry &
TuningCache::lookup(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _entries.find(key);
    require(it != _entries.end(), "TuningCache: missing key ", key);
    _hits.fetch_add(1, std::memory_order_relaxed);
    // std::map node references stay valid across later inserts (the
    // mapped *value* may still be rewritten by a same-key insert —
    // see the class comment; tryGet() is the concurrent-safe read).
    return it->second;
}

std::optional<CacheEntry>
TuningCache::tryGet(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _entries.find(key);
    if (it == _entries.end()) {
        _misses.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    _hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
TuningCache::insert(const std::string &key, CacheEntry entry)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _entries[key] = std::move(entry);
    _inserts.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
TuningCache::hitCount() const
{
    return _hits.load(std::memory_order_relaxed);
}

std::uint64_t
TuningCache::missCount() const
{
    return _misses.load(std::memory_order_relaxed);
}

std::uint64_t
TuningCache::insertCount() const
{
    return _inserts.load(std::memory_order_relaxed);
}

std::size_t
TuningCache::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _entries.size();
}

std::vector<std::pair<std::string, CacheEntry>>
TuningCache::snapshot() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<std::pair<std::string, CacheEntry>> out;
    out.reserve(_entries.size());
    for (const auto &[key, entry] : _entries)
        out.emplace_back(key, entry);
    return out;
}

Json
TuningCache::toJson() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Json out = Json::object();
    for (const auto &[key, entry] : _entries)
        out.set(key, entry.toJson());
    return out;
}

TuningCache
TuningCache::fromJson(const Json &json)
{
    TuningCache cache;
    if (json.kind() != Json::Kind::Object) {
        warn("TuningCache: document root is not an object; "
             "starting empty");
        return cache;
    }
    for (const auto &[key, value] : json.entries()) {
        try {
            cache._entries[key] = CacheEntry::fromJson(value);
        } catch (const std::exception &e) {
            warn("TuningCache: skipping corrupt entry '", key,
                 "': ", e.what());
        }
    }
    return cache;
}

void
TuningCache::saveFile(const std::string &path) const
{
    // Write-temp-then-rename: a crash mid-write leaves the previous
    // file intact, and rename() within a directory is atomic, so a
    // concurrent loadFile sees either the old or the new document.
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        expect(out.good(), "TuningCache: cannot write ", tmp);
        out << toJson().dump() << "\n";
        out.flush();
        expect(out.good(), "TuningCache: short write to ", tmp);
    }
    expect(std::rename(tmp.c_str(), path.c_str()) == 0,
           "TuningCache: cannot rename ", tmp, " to ", path);
}

TuningCache
TuningCache::loadFile(const std::string &path)
{
    std::ifstream in(path);
    expect(in.good(), "TuningCache: cannot read ", path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    try {
        return fromJson(Json::parse(buffer.str()));
    } catch (const std::exception &e) {
        // A truncated or corrupt file (crash mid-write predating the
        // atomic rename, disk fault) costs the cached entries, never
        // the process.
        warn("TuningCache: cannot parse ", path, " (", e.what(),
             "); starting empty");
        return TuningCache();
    }
}

TuningCache
TuningCache::loadFileIfExists(const std::string &path)
{
    std::ifstream probe(path);
    if (!probe.good())
        return TuningCache();
    probe.close();
    return loadFile(path);
}

} // namespace amos
