/**
 * @file
 * Public entry point of the AMOS reproduction: the end-to-end
 * compilation flow of Fig. 2 of the paper.
 *
 *   software definition  ->  mapping generation  ->  validation
 *        -> exploration (model + tuning) -> implementation
 *
 * Typical use:
 *
 *   auto hw = amos::hw::v100();
 *   auto conv = amos::ops::makeConv2d({...});
 *   amos::Compiler compiler(hw);
 *   auto result = compiler.compile(conv);
 *   std::cout << result.report();
 *
 * The compiler owns the hardware description; compile() returns the
 * best mapping + schedule found together with the simulated latency
 * and the exploration trace.
 */

#ifndef AMOS_AMOS_AMOS_HH
#define AMOS_AMOS_AMOS_HH

#include <optional>
#include <string>

#include "amos/cache.hh"
#include "explore/stats.hh"
#include "explore/tuner.hh"
#include "graph/network.hh"
#include "hw/hardware.hh"
#include "ops/operators.hh"
#include "schedule/profile.hh"

namespace amos {

/** Outcome of compiling one operator. */
struct CompileResult
{
    /// False when the operator has no valid mapping on the target;
    /// latency then refers to the scalar fallback.
    bool tensorized = false;

    /// True when a valid mapping exists but AMOS's own scalar code
    /// was faster and shipped instead (degenerate-padding cases).
    bool usedScalarCode = false;

    double cycles = 0.0;
    double milliseconds = 0.0;
    double gflops = 0.0; ///< useful flops over achieved runtime

    std::size_t mappingsExplored = 0;
    int measurements = 0;

    std::string mappingSignature;
    std::string computeMapping;
    std::string memoryMapping;
    std::string pseudoCode;

    TuneResult tuning; ///< full tuner output incl. trace and plan

    /** Multi-line human-readable summary. */
    std::string report() const;
};

/**
 * Re-execute a persisted tuning outcome: instantiate the entry's
 * mapping on the hardware, lower and simulate the cached schedule,
 * and package a CompileResult — no exploration, so the whole replay
 * costs a single simulator run. nullopt when the entry is stale
 * (intrinsic absent or mapping no longer valid). Both the
 * compile-with-cache fast path and the serve layer's cache tiers
 * funnel through here.
 */
std::optional<CompileResult> replayCacheEntry(
    const CacheEntry &entry, const TensorComputation &comp,
    const HardwareSpec &hw);

/** The AMOS compiler for a fixed hardware target. */
class Compiler
{
  public:
    explicit Compiler(HardwareSpec hw, TuneOptions options = {})
        : _hw(std::move(hw)), _options(options)
    {}

    const HardwareSpec &hardware() const { return _hw; }
    const TuneOptions &options() const { return _options; }

    /**
     * Compile one operator: enumerate + validate mappings, explore
     * mappings x schedules, simulate, and package the winner.
     */
    CompileResult compile(const TensorComputation &comp) const;

    /**
     * Count the valid mappings of an operator on this target
     * (Table 6 / Sec. 7.5 experiments).
     */
    std::size_t countMappings(const TensorComputation &comp) const;

    /** Compile a whole network (Sec. 7.4). */
    NetworkResult compileNetwork(const Network &net) const;

    /**
     * Compile through a tuning cache: structurally identical
     * workloads re-materialise the persisted mapping + schedule
     * instead of re-exploring; misses tune and populate the cache.
     */
    CompileResult compileWithCache(const TensorComputation &comp,
                                   TuningCache &cache) const;

  private:
    HardwareSpec _hw;
    TuneOptions _options;
};

} // namespace amos

#endif // AMOS_AMOS_AMOS_HH
