#include "amos.hh"

#include "support/str_utils.hh"

namespace amos {

std::string
CompileResult::report() const
{
    std::string out;
    out += tensorized ? "tensorized\n" : "scalar fallback\n";
    out += "  latency: " + fmtDouble(milliseconds, 4) + " ms (" +
           fmtDouble(cycles, 0) + " cycles, " +
           fmtDouble(gflops, 1) + " GFLOPS)\n";
    out += "  mappings explored: " +
           std::to_string(mappingsExplored) + ", measurements: " +
           std::to_string(measurements) + "\n";
    if (tensorized) {
        out += "  mapping: " + mappingSignature + "\n";
        out += "  compute: " + computeMapping + "\n";
    }
    return out;
}

CompileResult
Compiler::compile(const TensorComputation &comp) const
{
    CompileResult result;
    auto tuned = tune(comp, _hw, _options);
    result.tuning = tuned;

    if (!tuned.tensorizable) {
        auto res =
            baselines::scalarExecution(comp, _hw, 0.6, "amos-scalar");
        result.cycles = res.cycles;
        result.milliseconds = res.milliseconds;
        result.gflops =
            static_cast<double>(comp.flopCount()) /
            (result.milliseconds * 1e6);
        return result;
    }

    result.tensorized = true;
    result.cycles = tuned.bestCycles;

    // A valid mapping is not always a profitable one: degenerate
    // intrinsic dimensions (e.g. T2D at batch 1, where only the
    // batch iterator may feed i1) waste most of the problem size.
    // Like any complete compiler, AMOS ships the faster of its
    // tensorized and scalar code for the same operator.
    auto scalar =
        baselines::scalarExecution(comp, _hw, 0.6, "amos-scalar");
    if (scalar.cycles < result.cycles) {
        result.cycles = scalar.cycles;
        result.usedScalarCode = true;
    }

    result.milliseconds = cyclesToMs(result.cycles, _hw);
    result.gflops = static_cast<double>(comp.flopCount()) /
                    (result.milliseconds * 1e6);
    result.mappingsExplored = tuned.numMappings;
    result.measurements = tuned.measurements;
    result.mappingSignature = tuned.mappingSignature;
    result.computeMapping = tuned.computeMapping;
    if (tuned.bestPlan) {
        result.memoryMapping = tuned.bestPlan->memoryMappingString();
        result.pseudoCode = renderPseudoCode(
            *tuned.bestPlan, tuned.bestSchedule, _hw);
    }
    return result;
}

std::size_t
Compiler::countMappings(const TensorComputation &comp) const
{
    const auto &intr = _hw.primaryIntrinsic();
    if (comp.inputs().size() != intr.compute.numSrcs() ||
        comp.combine() != intr.compute.combine())
        return 0;
    return enumerateMappings(comp, intr, _options.mappingOptions)
        .size();
}

std::optional<CompileResult>
replayCacheEntry(const CacheEntry &entry,
                 const TensorComputation &comp,
                 const HardwareSpec &hw)
{
    auto plan = entry.instantiate(comp, hw);
    if (!plan)
        return std::nullopt;
    CompileResult result;
    result.tensorized = true;
    auto prof = lowerKernel(*plan, entry.schedule, hw);
    auto sim = simulateKernel(prof, hw);
    result.cycles = sim.cycles;
    auto scalar =
        baselines::scalarExecution(comp, hw, 0.6, "amos-scalar");
    if (scalar.cycles < result.cycles) {
        result.cycles = scalar.cycles;
        result.usedScalarCode = true;
    }
    result.milliseconds = cyclesToMs(result.cycles, hw);
    result.gflops = static_cast<double>(comp.flopCount()) /
                    (result.milliseconds * 1e6);
    result.mappingSignature = plan->mapping().signature(comp);
    result.computeMapping = plan->computeMappingString();
    result.memoryMapping = plan->memoryMappingString();
    result.pseudoCode = renderPseudoCode(*plan, entry.schedule, hw);

    // Re-materialise enough of the tuner outcome that downstream
    // consumers (explain reports, --emit-c) treat a cache replay
    // like a fresh compile. The trace and telemetry stay empty: no
    // search happened.
    result.tuning.tensorizable = true;
    result.tuning.bestPlan = *plan;
    result.tuning.bestSchedule = entry.schedule;
    result.tuning.bestCycles = sim.cycles;
    result.tuning.bestModelCycles =
        modelEstimate(prof, hw).totalCycles;
    result.tuning.bestSim = sim;
    result.tuning.mappingSignature = result.mappingSignature;
    result.tuning.computeMapping = result.computeMapping;
    result.tuning.intrinsicName = plan->intrinsic().name();
    return result;
}

CompileResult
Compiler::compileWithCache(const TensorComputation &comp,
                           TuningCache &cache) const
{
    auto key = TuningCache::keyFor(comp, _hw);
    // tryGet copies the entry under the cache lock, so concurrent
    // compilers inserting the same key cannot tear the read.
    if (auto entry = cache.tryGet(key)) {
        if (auto result = replayCacheEntry(*entry, comp, _hw))
            return *result;
        // A stale or foreign entry: fall through to a fresh tune.
    }

    // Warm start from the same cache that missed: other shapes'
    // winners seed this exploration. The donor scan runs over a
    // snapshot() copy, never under the cache mutex, and explicit
    // caller-provided seeds are left alone.
    TuneOptions options = _options;
    if (warmStartUsesNeighbors(options.warmStart.mode) &&
        options.warmStart.seeds.empty()) {
        std::vector<WarmSeed> donors;
        for (auto &[donor_key, entry] : cache.snapshot()) {
            if (donor_key == key)
                continue;
            WarmSeed seed;
            seed.sourceKey = donor_key;
            seed.intrinsicName = entry.intrinsicName;
            seed.mapping = entry.mapping;
            seed.schedule = entry.schedule;
            donors.push_back(std::move(seed));
        }
        options.warmStart.seeds =
            nearestSeeds(shapeFeatureOf(comp, _hw),
                         std::move(donors));
    }

    auto result = Compiler(_hw, options).compile(comp);
    if (result.tensorized && result.tuning.bestPlan) {
        CacheEntry entry;
        entry.intrinsicName =
            result.tuning.bestPlan->intrinsic().name();
        entry.mapping = result.tuning.bestPlan->mapping();
        entry.schedule = result.tuning.bestSchedule;
        entry.cycles = result.tuning.bestCycles;
        cache.insert(key, std::move(entry));
    }
    return result;
}

NetworkResult
Compiler::compileNetwork(const Network &net) const
{
    NetworkCompileOptions options;
    options.tuning = _options;
    return amos::compileNetwork(net, _hw, NetworkCompiler::Amos,
                                options);
}

} // namespace amos
