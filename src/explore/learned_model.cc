#include "learned_model.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "model/perf_model.hh"
#include "support/logging.hh"

namespace amos {

namespace {

double
log1pSafe(double v)
{
    return std::log1p(std::max(v, 0.0));
}

/**
 * Solve the symmetric positive-definite system A x = b in place with
 * Gaussian elimination and partial pivoting (dimensions here are
 * ~a dozen, so no factorisation library is warranted).
 */
std::vector<double>
solveDense(std::vector<std::vector<double>> a, std::vector<double> b)
{
    std::size_t n = b.size();
    for (std::size_t col = 0; col < n; ++col) {
        // Pivot.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::fabs(a[r][col]) > std::fabs(a[pivot][col]))
                pivot = r;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        require(std::fabs(a[col][col]) > 1e-12,
                "solveDense: singular system");
        for (std::size_t r = col + 1; r < n; ++r) {
            double f = a[r][col] / a[col][col];
            for (std::size_t c = col; c < n; ++c)
                a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t row = n; row-- > 0;) {
        double acc = b[row];
        for (std::size_t c = row + 1; c < n; ++c)
            acc -= a[row][c] * x[c];
        x[row] = acc / a[row][row];
    }
    return x;
}

} // namespace

std::vector<double>
LearnedModel::features(const KernelProfile &prof,
                       const HardwareSpec &hw)
{
    std::vector<double> f;
    f.push_back(1.0); // bias
    f.push_back(log1pSafe(static_cast<double>(prof.numBlocks)));
    f.push_back(log1pSafe(static_cast<double>(prof.warpsPerBlock)));
    f.push_back(
        log1pSafe(static_cast<double>(prof.serialCallsPerWarp)));
    f.push_back(
        log1pSafe(static_cast<double>(prof.sharedBytesPerBlock)));
    f.push_back(log1pSafe(
        static_cast<double>(prof.globalLoadBytesPerBlock)));
    f.push_back(log1pSafe(
        static_cast<double>(prof.globalStoreBytesPerBlock)));
    f.push_back(
        log1pSafe(static_cast<double>(prof.sharedLoadBytesPerWarp)));
    f.push_back(prof.paddingWaste);
    f.push_back(static_cast<double>(prof.addressTerms));
    f.push_back(static_cast<double>(prof.stageDepth));
    f.push_back(static_cast<double>(prof.vectorLanes));
    // Stacking: the analytic estimate is the strongest single
    // feature; the regression learns its bias.
    double analytic = modelCycles(prof, hw);
    f.push_back(std::isfinite(analytic) ? std::log(analytic) : 30.0);
    return f;
}

std::size_t
LearnedModel::featureCount()
{
    return 13;
}

void
LearnedModel::addSample(const KernelProfile &prof,
                        const HardwareSpec &hw,
                        double measured_cycles)
{
    if (!(measured_cycles > 0.0) || !std::isfinite(measured_cycles))
        return;
    _samples.push_back(features(prof, hw));
    _targets.push_back(std::log(measured_cycles));
}

void
LearnedModel::fit(double ridge)
{
    if (_targets.size() < kMinSamples)
        return;
    std::size_t n = featureCount();
    std::vector<std::vector<double>> ata(
        n, std::vector<double>(n, 0.0));
    std::vector<double> atb(n, 0.0);
    for (std::size_t s = 0; s < _samples.size(); ++s) {
        const auto &x = _samples[s];
        for (std::size_t i = 0; i < n; ++i) {
            atb[i] += x[i] * _targets[s];
            for (std::size_t j = 0; j < n; ++j)
                ata[i][j] += x[i] * x[j];
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        ata[i][i] += ridge * static_cast<double>(_samples.size());
    _weights = solveDense(std::move(ata), std::move(atb));
    _trained = true;
    _fittedSamples = _targets.size();
}

Json
LearnedModel::toJson() const
{
    require(_trained, "LearnedModel: snapshot of untrained model");
    Json weights = Json::array();
    for (double w : _weights)
        weights.push(Json(w));
    Json out = Json::object();
    out.set("schema", Json(std::string(kSnapshotSchema)));
    out.set("feature_count",
            Json(static_cast<std::int64_t>(featureCount())));
    out.set("samples",
            Json(static_cast<std::int64_t>(_fittedSamples)));
    out.set("weights", std::move(weights));
    return out;
}

std::optional<LearnedModel>
LearnedModel::fromJson(const Json &json)
{
    if (json.kind() != Json::Kind::Object ||
        !json.has("schema") || !json.has("weights") ||
        !json.has("feature_count")) {
        warn("LearnedModel: snapshot is not a model document");
        return std::nullopt;
    }
    try {
        if (json.get("schema").asString() != kSnapshotSchema) {
            warn("LearnedModel: unknown snapshot schema '",
                 json.get("schema").asString(), "'");
            return std::nullopt;
        }
        auto count = json.get("feature_count").asInt();
        if (count != static_cast<std::int64_t>(featureCount())) {
            warn("LearnedModel: snapshot has ", count,
                 " features, expected ", featureCount());
            return std::nullopt;
        }
        const Json &weights = json.get("weights");
        if (weights.size() != featureCount()) {
            warn("LearnedModel: snapshot has ", weights.size(),
                 " weights, expected ", featureCount());
            return std::nullopt;
        }
        LearnedModel model;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            double w = weights.at(i).asNumber();
            if (!std::isfinite(w)) {
                warn("LearnedModel: non-finite snapshot weight");
                return std::nullopt;
            }
            model._weights.push_back(w);
        }
        model._trained = true;
        if (json.has("samples") && json.get("samples").asInt() > 0) {
            model._fittedSamples =
                static_cast<std::size_t>(json.get("samples").asInt());
        }
        return model;
    } catch (const std::exception &e) {
        warn("LearnedModel: corrupt snapshot (", e.what(), ")");
        return std::nullopt;
    }
}

void
LearnedModel::saveFile(const std::string &path) const
{
    // Same write-temp-then-rename discipline as TuningCache::saveFile,
    // so a hot-reloading server never observes a half-written model.
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        expect(out.good(), "LearnedModel: cannot write ", tmp);
        out << toJson().dump() << "\n";
        out.flush();
        expect(out.good(), "LearnedModel: short write to ", tmp);
    }
    expect(std::rename(tmp.c_str(), path.c_str()) == 0,
           "LearnedModel: cannot rename ", tmp, " to ", path);
}

std::optional<LearnedModel>
LearnedModel::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in.good()) {
        warn("LearnedModel: cannot read snapshot ", path);
        return std::nullopt;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    try {
        return fromJson(Json::parse(buffer.str()));
    } catch (const std::exception &e) {
        warn("LearnedModel: cannot parse snapshot ", path, " (",
             e.what(), ")");
        return std::nullopt;
    }
}

std::string
LearnedModel::digest() const
{
    std::string doc = toJson().dump();
    std::uint64_t h = 1469598103934665603ull; // FNV-1a
    for (unsigned char c : doc) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf);
}

double
LearnedModel::predictCycles(const KernelProfile &prof,
                            const HardwareSpec &hw) const
{
    if (!prof.valid())
        return std::numeric_limits<double>::infinity();
    if (!_trained)
        return modelCycles(prof, hw);
    auto x = features(prof, hw);
    double log_cycles = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        log_cycles += _weights[i] * x[i];
    // Clamp: extrapolation far outside the training range is noise.
    log_cycles = std::min(std::max(log_cycles, 0.0), 40.0);
    return std::exp(log_cycles);
}

} // namespace amos
