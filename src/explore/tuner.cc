#include "tuner.hh"

#include "explore/learned_model.hh"
#include "schedule/profile.hh"
#include "support/thread_pool.hh"
#include "support/trace.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <unordered_map>

#include "support/logging.hh"

namespace amos {

namespace {

/** One member of the genetic population. */
struct Candidate
{
    std::size_t mappingIndex = 0;
    Schedule schedule;
    double modelCycles = std::numeric_limits<double>::infinity();
    double simCycles = std::numeric_limits<double>::quiet_NaN();

    bool measured() const { return !std::isnan(simCycles); }

    /** Fitness key: measured cycles when known, model otherwise. */
    double
    fitness() const
    {
        return measured() ? simCycles : modelCycles;
    }
};

/**
 * Per-candidate RNG stream. Every random draw of the tuner depends
 * only on (seed, candidate index, generation) — never on a shared
 * generator whose state would depend on evaluation order — so the
 * search trajectory is bit-identical for every thread count.
 */
Rng
candidateRng(const TuneOptions &options, std::size_t index,
             int generation)
{
    return Rng(mixSeed(options.seed, index,
                       static_cast<std::uint64_t>(generation)));
}

/**
 * Indices 0..n-1 ordered by ascending key, ties broken by index:
 * a total order, so the ranking is unambiguous regardless of the
 * sort algorithm or how the keys were produced.
 */
template <typename Key>
std::vector<std::size_t>
sortedOrder(std::size_t n, Key key)
{
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  double ka = key(a), kb = key(b);
                  if (ka != kb)
                      return ka < kb;
                  return a < b;
              });
    return order;
}

} // namespace

TuneResult
tuneWithPlans(const std::vector<MappingPlan> &plans,
              const HardwareSpec &hw, const TuneOptions &options)
{
    TuneResult result;
    if (plans.empty())
        return result;
    result.tensorizable = true;
    result.numMappings = plans.size();

    TraceSpan tune_span("explore.tune", "explore");
    tune_span.arg("mappings",
                  static_cast<std::int64_t>(plans.size()));
    tune_span.arg("generations",
                  static_cast<std::int64_t>(options.generations));
    tune_span.arg("hw", hw.name);

    const int num_threads = options.numThreads;

    // Warm start (neighbor seeding): translate donor genomes onto
    // this plan pool. Translation is serial and depends only on
    // (seeds, plans), never on thread count; duplicates collapse so
    // a seed never crowds out more than one random slot.
    std::vector<Candidate> warm_genomes;
    if (warmStartUsesNeighbors(options.warmStart.mode)) {
        result.warmStartNeighbors =
            static_cast<int>(options.warmStart.seeds.size());
        std::set<std::string> seen;
        for (const auto &seed : options.warmStart.seeds) {
            auto slot = translateSeed(seed, plans);
            if (!slot)
                continue;
            std::string sig = std::to_string(slot->first) + "/" +
                              slot->second.toString();
            if (!seen.insert(sig).second)
                continue;
            Candidate c;
            c.mappingIndex = slot->first;
            c.schedule = slot->second;
            warm_genomes.push_back(std::move(c));
            if (warm_genomes.size() >=
                static_cast<std::size_t>(std::max(0, options.population)))
                break;
        }
        result.warmStartSeeded =
            static_cast<int>(warm_genomes.size());
    }

    // --- Stage 0 (the paper's Sec. 5.3 flow): enumerate every
    // mapping, pair each with the expert schedule heuristic, and let
    // the performance model screen the whole pool; random samples
    // add schedule diversity. Warm seeds occupy the fixed slots just
    // after the expert-scheduled plans — slot assignment is by index,
    // so the pool is identical at every thread count. The best-
    // predicted candidates are measured and the population is trimmed
    // by fitness.
    std::size_t pool_size =
        plans.size() +
        static_cast<std::size_t>(std::max(0, options.population));
    std::vector<Candidate> population(pool_size);
    parallelFor(
        pool_size,
        [&](std::size_t i) {
            Candidate &c = population[i];
            if (i < plans.size()) {
                c.mappingIndex = i;
                c.schedule = expertSchedule(plans[i], hw);
            } else if (i < plans.size() + warm_genomes.size()) {
                c = warm_genomes[i - plans.size()];
            } else {
                Rng rng = candidateRng(options, i, 0);
                c.mappingIndex = static_cast<std::size_t>(
                    rng.uniformInt(
                        0,
                        static_cast<std::int64_t>(plans.size()) - 1));
                c.schedule = sampleSchedule(plans[c.mappingIndex],
                                            rng);
            }
        },
        num_threads);

    double best_cycles = std::numeric_limits<double>::infinity();
    Candidate best;
    SimResult best_sim;
    int step = 0;

    LearnedModel learned;

    // Warm start (model snapshot): a pre-trained screen replaces the
    // analytic fallback from generation 0. The snapshot is copied
    // once here and stays fixed for the whole run — only the online
    // path (useLearnedModel) ever refits, so a given (seed, snapshot)
    // pair always walks the same trajectory.
    const bool warm_model =
        warmStartUsesModel(options.warmStart.mode) &&
        options.warmStart.model && options.warmStart.model->trained();
    if (warm_model)
        learned = *options.warmStart.model;
    const bool screen_learned = options.useLearnedModel || warm_model;

    // Model screening of the whole population. lowerKernel and both
    // cost models are pure functions of (plan, schedule, hw), and
    // each body writes only its own candidate, so the fan-out is
    // race-free and order-independent.
    auto evaluate_population = [&]() {
        TraceSpan eval_span("explore.model_eval", "explore");
        eval_span.arg("candidates", static_cast<std::int64_t>(
                                        population.size()));
        parallelFor(
            population.size(),
            [&](std::size_t i) {
                Candidate &c = population[i];
                auto prof =
                    lowerKernel(plans[c.mappingIndex], c.schedule, hw);
                c.modelCycles =
                    screen_learned && learned.trained()
                        ? learned.predictCycles(prof, hw)
                        : modelCycles(prof, hw);
            },
            num_threads);
    };

    /// Best measured candidate per mapping: drives the exploitation
    /// ranking and the runners-up reported for explainability.
    std::unordered_map<std::size_t, Candidate> mapping_best;

    // Measure a batch: simulate every selected candidate in parallel,
    // then fold the outcomes into the archive serially in selection
    // order, so the trace, the incumbent, and the learned-model
    // sample set are identical to a one-at-a-time run.
    auto measure_batch = [&](const std::vector<std::size_t>
                                 &selected) {
        if (options.cancel)
            options.cancel->checkpoint("mapping exploration");
        TraceSpan measure_span("explore.measure", "explore");
        measure_span.arg("batch", static_cast<std::int64_t>(
                                      selected.size()));
        std::vector<KernelProfile> profs(selected.size());
        std::vector<SimResult> sims(selected.size());
        parallelFor(
            selected.size(),
            [&](std::size_t k) {
                const Candidate &c = population[selected[k]];
                profs[k] =
                    lowerKernel(plans[c.mappingIndex], c.schedule, hw);
                sims[k] = simulateKernel(profs[k], hw);
            },
            num_threads);
        for (std::size_t k = 0; k < selected.size(); ++k) {
            Candidate &c = population[selected[k]];
            const SimResult &sim = sims[k];
            c.simCycles = sim.cycles;
            ++result.measurements;
            if (options.useLearnedModel && sim.schedulable)
                learned.addSample(profs[k], hw, sim.cycles);
            if (options.sampleSink && sim.schedulable)
                options.sampleSink->addSample(profs[k], hw,
                                              sim.cycles);
            if (sim.schedulable) {
                auto it = mapping_best.find(c.mappingIndex);
                if (it == mapping_best.end() ||
                    sim.cycles < it->second.simCycles)
                    mapping_best[c.mappingIndex] = c;
            }
            // Strict < keeps the earliest candidate on ties: the
            // winner is reduced by (cycles, selection order).
            if (sim.schedulable && sim.cycles < best_cycles) {
                best_cycles = sim.cycles;
                best = c;
                best_sim = sim;
            }
            if (std::isfinite(c.modelCycles) &&
                std::isfinite(sim.cycles)) {
                result.trace.push_back({++step, c.mappingIndex,
                                        c.modelCycles, sim.cycles,
                                        best_cycles});
            }
        }
    };

    // Early-stop bookkeeping for warm-start patience: the incumbent
    // at the last improving generation and the stall count since.
    double patience_best = std::numeric_limits<double>::infinity();
    int patience_stall = 0;

    // The oversized stage-0 pool shrinks through selection until the
    // working population size is reached.
    for (int gen = 0; gen < options.generations; ++gen) {
        if (options.cancel)
            options.cancel->checkpoint("mapping exploration");
        TraceSpan gen_span("explore.generation", "explore");
        gen_span.arg("gen", static_cast<std::int64_t>(gen));
        evaluate_population();

        // Model screening: measure the best-predicted unmeasured
        // candidates on the simulator.
        auto order = sortedOrder(population.size(), [&](std::size_t i) {
            return population[i].modelCycles;
        });
        // The screening generation measures every mapping once (the
        // paper enumerates all valid mappings and evaluates each):
        // AMOS's total budget scales with the pool size, while the
        // fixed-mapping ablations get the same *per-mapping* depth.
        // Warm seeding replaces that full-pool sweep with the seeded
        // genomes — the donor already told us which mappings win, so
        // the big generation-0 measurement bill is the latency cut.
        int budget =
            gen == 0 ? static_cast<int>(warm_genomes.empty()
                                            ? plans.size()
                                            : warm_genomes.size()) +
                           options.measureTopK
                     : options.measureTopK;
        std::vector<std::size_t> selected;
        if (gen == 0) {
            // Warm seeds are always measured first, in seed order:
            // their real cycles must enter the archive even when the
            // model screen ranks them poorly on the new shape.
            for (std::size_t j = 0; j < warm_genomes.size(); ++j)
                selected.push_back(plans.size() + j);
        }
        for (auto idx : order) {
            if (static_cast<int>(selected.size()) >= budget)
                break;
            if (population[idx].measured())
                continue;
            if (gen == 0 && idx >= plans.size() &&
                idx < plans.size() + warm_genomes.size())
                continue; // already force-selected above
            selected.push_back(idx);
        }
        // Archive hits: candidates that carried an earlier
        // measurement into this generation, so screening them again
        // cost nothing (the tuner's measurement cache at work).
        int reused = static_cast<int>(std::count_if(
            population.begin(), population.end(),
            [](const Candidate &c) { return c.measured(); }));
        measure_batch(selected);

        if (options.useLearnedModel)
            learned.fit();

        // Telemetry row for this generation. Everything here is
        // derived from the ordered serial state, so the rows are
        // bit-identical for every thread count.
        {
            GenerationTelemetry row;
            row.generation = gen;
            row.populationSize =
                static_cast<int>(population.size());
            std::set<std::size_t> mappings;
            std::set<std::string> genomes;
            double pred_best =
                std::numeric_limits<double>::infinity();
            double pred_sum = 0.0;
            std::size_t pred_n = 0;
            for (const auto &c : population) {
                mappings.insert(c.mappingIndex);
                genomes.insert(std::to_string(c.mappingIndex) +
                               "/" + c.schedule.toString());
                if (std::isfinite(c.modelCycles)) {
                    pred_best = std::min(pred_best, c.modelCycles);
                    pred_sum += c.modelCycles;
                    ++pred_n;
                }
            }
            row.distinctMappings = mappings.size();
            row.distinctGenomes = genomes.size();
            row.measuredNew = static_cast<int>(selected.size());
            row.measuredReused = reused;
            row.bestPredictedCycles =
                std::isfinite(pred_best) ? pred_best : 0.0;
            row.meanPredictedCycles =
                pred_n ? pred_sum / static_cast<double>(pred_n)
                       : 0.0;
            row.bestMeasuredCycles =
                std::isfinite(best_cycles) ? best_cycles : 0.0;
            double meas_sum = 0.0;
            std::size_t meas_n = 0;
            for (auto idx : selected) {
                double cycles = population[idx].simCycles;
                if (std::isfinite(cycles)) {
                    meas_sum += cycles;
                    ++meas_n;
                }
            }
            row.meanMeasuredCycles =
                meas_n ? meas_sum / static_cast<double>(meas_n)
                       : 0.0;
            result.telemetry.push_back(std::move(row));
        }

        // Warm-start patience: stop once the incumbent has not
        // improved for `patience` consecutive generations. Driven
        // entirely by the ordered serial incumbent, so the stopping
        // generation is thread-count invariant.
        if (options.warmStart.patience > 0) {
            if (best_cycles < patience_best) {
                patience_best = best_cycles;
                patience_stall = 0;
            } else if (++patience_stall >=
                       options.warmStart.patience) {
                break;
            }
        }

        // Selection: keep the better half by (fitness, index).
        auto rank = sortedOrder(population.size(), [&](std::size_t i) {
            return population[i].fitness();
        });
        std::size_t survivors = std::min(
            population.size(),
            std::max<std::size_t>(2, population.size() / 2));
        std::vector<Candidate> kept;
        kept.reserve(survivors);
        for (std::size_t r = 0; r < survivors; ++r)
            kept.push_back(std::move(population[rank[r]]));
        population = std::move(kept);

        // Reproduction: crossover within a mapping, mutation, the
        // occasional mapping hop, and fresh immigrants. Each child
        // draws from its own (seed, slot, generation) stream and
        // reads only the const parent pool, so children can be
        // produced concurrently.
        std::size_t target = std::max(
            population.size(),
            static_cast<std::size_t>(std::max(0, options.population)));
        std::vector<Candidate> next(target);
        std::copy(population.begin(), population.end(), next.begin());
        parallelFor(
            target - population.size(),
            [&](std::size_t offset) {
                std::size_t slot = population.size() + offset;
                Rng rng = candidateRng(options, slot, gen + 1);
                Candidate &child = next[slot];
                double roll = rng.uniformReal();
                if (roll < 0.4 && population.size() >= 2) {
                    // Crossover between two parents; schedules are
                    // only compatible within the same mapping.
                    const Candidate &a = rng.choice(population);
                    const Candidate &b = rng.choice(population);
                    child = a;
                    child.simCycles =
                        std::numeric_limits<double>::quiet_NaN();
                    if (a.mappingIndex == b.mappingIndex) {
                        child.schedule = crossoverSchedules(
                            a.schedule, b.schedule, rng);
                    } else {
                        child.schedule = mutateSchedule(
                            plans[child.mappingIndex], child.schedule,
                            rng);
                    }
                } else if (roll < 0.8) {
                    child = rng.choice(population);
                    child.simCycles =
                        std::numeric_limits<double>::quiet_NaN();
                    child.schedule = mutateSchedule(
                        plans[child.mappingIndex], child.schedule,
                        rng);
                } else {
                    // Immigrant: possibly a different mapping.
                    child.mappingIndex = static_cast<std::size_t>(
                        rng.uniformInt(
                            0, static_cast<std::int64_t>(
                                   plans.size()) - 1));
                    child.schedule = sampleSchedule(
                        plans[child.mappingIndex], rng);
                }
            },
            num_threads);
        population = std::move(next);
    }

    if (!std::isfinite(best_cycles)) {
        // Nothing schedulable was measured (e.g. every sampled
        // schedule blew the shared-memory budget): fall back to the
        // serial default schedule of the first mapping.
        Candidate c;
        c.mappingIndex = 0;
        c.schedule = defaultSchedule(plans[0]);
        auto prof = lowerKernel(plans[0], c.schedule, hw);
        c.modelCycles = screen_learned && learned.trained()
                            ? learned.predictCycles(prof, hw)
                            : modelCycles(prof, hw);
        population.push_back(std::move(c));
        measure_batch({population.size() - 1});
    }

    // --- Exploitation: rerun the full schedule search restricted to
    // the most promising mappings, so the flexible search never
    // trails a dedicated single-mapping tuner. (The paper's AMOS
    // similarly spends its trial budget proportionally to the size
    // of the space it explores.)
    if (options.exploitSteps > 0 && std::isfinite(best_cycles) &&
        plans.size() > 1) {
        TraceSpan exploit_span("explore.exploit", "explore");
        // Top three distinct mappings by their best measured cycles;
        // sorting (cycles, index) pairs makes the ranking total.
        std::vector<std::pair<double, std::size_t>> ranked;
        for (const auto &[idx, cand] : mapping_best)
            ranked.push_back({cand.simCycles, idx});
        std::sort(ranked.begin(), ranked.end());
        if (ranked.size() > 3)
            ranked.resize(3);

        TuneOptions sub = options;
        sub.exploitSteps = 0; // recursion base case
        // Seeds were translated for the *full* pool; inside the
        // single-plan sub-searches they would re-translate onto the
        // wrong indices. The model snapshot transfers unchanged.
        sub.warmStart.seeds.clear();
        for (const auto &[cycles, idx] : ranked) {
            if (options.cancel)
                options.cancel->checkpoint("mapping exploitation");
            std::vector<MappingPlan> one = {plans[idx]};
            auto subres = tuneWithPlans(one, hw, sub);
            result.measurements += subres.measurements;
            for (auto sub_step : subres.trace) {
                sub_step.mappingIndex = idx;
                sub_step.step = ++step;
                sub_step.bestSoFarCycles = std::min(
                    sub_step.bestSoFarCycles, best_cycles);
                result.trace.push_back(sub_step);
            }
            for (auto row : subres.telemetry) {
                row.phase = "exploit";
                result.telemetry.push_back(std::move(row));
            }
            if (subres.tensorizable) {
                // The exploit sub-search may have improved this
                // mapping's archive entry; the runners-up report
                // should reflect it.
                auto &cand = mapping_best[idx];
                if (subres.bestCycles < cand.simCycles) {
                    cand.mappingIndex = idx;
                    cand.schedule = subres.bestSchedule;
                    cand.simCycles = subres.bestCycles;
                    cand.modelCycles = subres.bestModelCycles;
                }
            }
            if (subres.tensorizable &&
                subres.bestCycles < best_cycles) {
                best_cycles = subres.bestCycles;
                best.mappingIndex = idx;
                best.schedule = subres.bestSchedule;
                best.modelCycles = subres.bestModelCycles;
                best_sim = subres.bestSim;
            }
        }
    }

    require(std::isfinite(best_cycles),
            "tune: no schedulable candidate found for ",
            plans[0].computation().name(), " on ", hw.name);

    // Runners-up: the best measured candidate of each non-winning
    // mapping, ranked by (cycles, index) so the list is total-ordered
    // and thread-count invariant.
    {
        std::vector<std::pair<double, std::size_t>> ranked;
        for (const auto &[idx, cand] : mapping_best)
            if (idx != best.mappingIndex)
                ranked.push_back({cand.simCycles, idx});
        std::sort(ranked.begin(), ranked.end());
        if (ranked.size() > 3)
            ranked.resize(3);
        for (const auto &[cycles, idx] : ranked) {
            const Candidate &cand = mapping_best.at(idx);
            RunnerUp up;
            up.mappingIndex = idx;
            up.plan = plans[idx];
            up.schedule = cand.schedule;
            up.measuredCycles = cand.simCycles;
            up.modelCycles = cand.modelCycles;
            result.runnersUp.push_back(std::move(up));
        }
    }

    result.bestMappingIndex = best.mappingIndex;
    result.bestSchedule = best.schedule;
    result.bestCycles = best_cycles;
    result.bestModelCycles = best.modelCycles;
    result.bestSim = best_sim;
    result.bestPlan = plans[best.mappingIndex];
    result.mappingSignature = plans[best.mappingIndex]
                                  .mapping()
                                  .signature(plans[best.mappingIndex]
                                                 .computation());
    result.computeMapping =
        plans[best.mappingIndex].computeMappingString();
    result.intrinsicName = plans[best.mappingIndex].intrinsic().name();
    return result;
}

TuneResult
tune(const TensorComputation &comp, const HardwareSpec &hw,
     const TuneOptions &options)
{
    // The mapping pool spans every intrinsic the accelerator exposes
    // (e.g. the three WMMA problem shapes): intrinsic selection is
    // explored jointly with iteration mapping and scheduling.
    std::vector<MappingPlan> plans;
    for (const auto &intr : hw.intrinsics) {
        if (comp.inputs().size() != intr.compute.numSrcs() ||
            comp.combine() != intr.compute.combine())
            continue;
        std::size_t budget = 0;
        if (options.maxMappings) {
            if (plans.size() >= options.maxMappings)
                break;
            budget = options.maxMappings - plans.size();
        }
        GeneratorOptions gen = options.mappingOptions;
        if (budget)
            gen.maxCandidates = budget;
        for (auto &plan : enumeratePlans(comp, intr, gen))
            plans.push_back(std::move(plan));
    }
    return tuneWithPlans(plans, hw, options);
}

TuneResult
tuneWithMapping(const MappingPlan &plan, const HardwareSpec &hw,
                const TuneOptions &options)
{
    std::vector<MappingPlan> plans = {plan};
    return tuneWithPlans(plans, hw, options);
}

} // namespace amos
