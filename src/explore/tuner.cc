#include "tuner.hh"

#include "explore/learned_model.hh"
#include "schedule/profile.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "support/logging.hh"

namespace amos {

namespace {

/** One member of the genetic population. */
struct Candidate
{
    std::size_t mappingIndex = 0;
    Schedule schedule;
    double modelCycles = std::numeric_limits<double>::infinity();
    double simCycles = std::numeric_limits<double>::quiet_NaN();

    bool measured() const { return !std::isnan(simCycles); }

    /** Fitness key: measured cycles when known, model otherwise. */
    double
    fitness() const
    {
        return measured() ? simCycles : modelCycles;
    }
};

} // namespace

TuneResult
tuneWithPlans(const std::vector<MappingPlan> &plans,
              const HardwareSpec &hw, const TuneOptions &options)
{
    TuneResult result;
    if (plans.empty())
        return result;
    result.tensorizable = true;
    result.numMappings = plans.size();

    Rng rng(options.seed);

    // --- Stage 0 (the paper's Sec. 5.3 flow): enumerate every
    // mapping, pair each with the expert schedule heuristic, and let
    // the performance model screen the whole pool; random samples
    // add schedule diversity. The best-predicted candidates are
    // measured and the population is trimmed by fitness.
    std::vector<Candidate> population;
    for (std::size_t i = 0; i < plans.size(); ++i) {
        Candidate c;
        c.mappingIndex = i;
        c.schedule = expertSchedule(plans[i], hw);
        population.push_back(std::move(c));
    }
    for (int i = 0; i < options.population; ++i) {
        Candidate c;
        c.mappingIndex = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(plans.size()) - 1));
        c.schedule = sampleSchedule(plans[c.mappingIndex], rng);
        population.push_back(std::move(c));
    }

    double best_cycles = std::numeric_limits<double>::infinity();
    Candidate best;
    SimResult best_sim;
    int step = 0;

    LearnedModel learned;
    auto evaluate_model = [&](Candidate &c) {
        auto prof = lowerKernel(plans[c.mappingIndex], c.schedule, hw);
        c.modelCycles = options.useLearnedModel && learned.trained()
                            ? learned.predictCycles(prof, hw)
                            : modelCycles(prof, hw);
    };

    std::unordered_map<std::size_t, double> mapping_best;
    auto measure = [&](Candidate &c) {
        auto prof = lowerKernel(plans[c.mappingIndex], c.schedule, hw);
        auto sim = simulateKernel(prof, hw);
        c.simCycles = sim.cycles;
        ++result.measurements;
        if (options.useLearnedModel && sim.schedulable)
            learned.addSample(prof, hw, sim.cycles);
        if (sim.schedulable) {
            auto it = mapping_best.find(c.mappingIndex);
            if (it == mapping_best.end() || sim.cycles < it->second)
                mapping_best[c.mappingIndex] = sim.cycles;
        }
        if (sim.schedulable && sim.cycles < best_cycles) {
            best_cycles = sim.cycles;
            best = c;
            best_sim = sim;
        }
        if (std::isfinite(c.modelCycles) &&
            std::isfinite(sim.cycles)) {
            result.trace.push_back({++step, c.mappingIndex,
                                    c.modelCycles, sim.cycles,
                                    best_cycles});
        }
    };

    // The oversized stage-0 pool shrinks through selection until the
    // working population size is reached.
    for (int gen = 0; gen < options.generations; ++gen) {
        for (auto &c : population)
            evaluate_model(c);

        // Model screening: measure the best-predicted unmeasured
        // candidates on the simulator.
        std::vector<std::size_t> order(population.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return population[a].modelCycles <
                             population[b].modelCycles;
                  });
        // The screening generation measures every mapping once (the
        // paper enumerates all valid mappings and evaluates each):
        // AMOS's total budget scales with the pool size, while the
        // fixed-mapping ablations get the same *per-mapping* depth.
        int budget =
            gen == 0 ? static_cast<int>(plans.size()) +
                           options.measureTopK
                     : options.measureTopK;
        int measured = 0;
        for (auto idx : order) {
            if (measured >= budget)
                break;
            if (!population[idx].measured()) {
                measure(population[idx]);
                ++measured;
            }
        }

        if (options.useLearnedModel)
            learned.fit();

        // Selection: keep the better half by fitness.
        std::sort(population.begin(), population.end(),
                  [](const Candidate &a, const Candidate &b) {
                      return a.fitness() < b.fitness();
                  });
        std::size_t survivors =
            std::max<std::size_t>(2, population.size() / 2);
        population.resize(survivors);

        // Reproduction: crossover within a mapping, mutation, the
        // occasional mapping hop, and fresh immigrants.
        std::vector<Candidate> next = population;
        while (next.size() <
               static_cast<std::size_t>(options.population)) {
            double roll = rng.uniformReal();
            if (roll < 0.4 && population.size() >= 2) {
                // Crossover between two parents; schedules are only
                // compatible within the same mapping.
                const Candidate &a = rng.choice(population);
                const Candidate &b = rng.choice(population);
                Candidate child = a;
                child.simCycles =
                    std::numeric_limits<double>::quiet_NaN();
                if (a.mappingIndex == b.mappingIndex) {
                    child.schedule = crossoverSchedules(
                        a.schedule, b.schedule, rng);
                } else {
                    child.schedule = mutateSchedule(
                        plans[child.mappingIndex], child.schedule,
                        rng);
                }
                next.push_back(std::move(child));
            } else if (roll < 0.8) {
                Candidate child = rng.choice(population);
                child.simCycles =
                    std::numeric_limits<double>::quiet_NaN();
                child.schedule = mutateSchedule(
                    plans[child.mappingIndex], child.schedule, rng);
                next.push_back(std::move(child));
            } else {
                // Immigrant: possibly a different mapping.
                Candidate c;
                c.mappingIndex = static_cast<std::size_t>(
                    rng.uniformInt(
                        0,
                        static_cast<std::int64_t>(plans.size()) - 1));
                c.schedule = sampleSchedule(plans[c.mappingIndex],
                                            rng);
                next.push_back(std::move(c));
            }
        }
        population = std::move(next);
    }

    if (!std::isfinite(best_cycles)) {
        // Nothing schedulable was measured (e.g. every sampled
        // schedule blew the shared-memory budget): fall back to the
        // serial default schedule of the first mapping.
        Candidate c;
        c.mappingIndex = 0;
        c.schedule = defaultSchedule(plans[0]);
        evaluate_model(c);
        measure(c);
    }

    // --- Exploitation: rerun the full schedule search restricted to
    // the most promising mappings, so the flexible search never
    // trails a dedicated single-mapping tuner. (The paper's AMOS
    // similarly spends its trial budget proportionally to the size
    // of the space it explores.)
    if (options.exploitSteps > 0 && std::isfinite(best_cycles) &&
        plans.size() > 1) {
        // Top three distinct mappings by their best measured cycles.
        std::vector<std::pair<double, std::size_t>> ranked;
        for (const auto &[idx, cycles] : mapping_best)
            ranked.push_back({cycles, idx});
        std::sort(ranked.begin(), ranked.end());
        if (ranked.size() > 3)
            ranked.resize(3);

        TuneOptions sub = options;
        sub.exploitSteps = 0; // recursion base case
        for (const auto &[cycles, idx] : ranked) {
            std::vector<MappingPlan> one = {plans[idx]};
            auto subres = tuneWithPlans(one, hw, sub);
            result.measurements += subres.measurements;
            for (auto sub_step : subres.trace) {
                sub_step.mappingIndex = idx;
                sub_step.step = ++step;
                sub_step.bestSoFarCycles = std::min(
                    sub_step.bestSoFarCycles, best_cycles);
                result.trace.push_back(sub_step);
            }
            if (subres.tensorizable &&
                subres.bestCycles < best_cycles) {
                best_cycles = subres.bestCycles;
                best.mappingIndex = idx;
                best.schedule = subres.bestSchedule;
                best.modelCycles = subres.bestModelCycles;
                best_sim = subres.bestSim;
            }
        }
    }

    require(std::isfinite(best_cycles),
            "tune: no schedulable candidate found for ",
            plans[0].computation().name(), " on ", hw.name);

    result.bestMappingIndex = best.mappingIndex;
    result.bestSchedule = best.schedule;
    result.bestCycles = best_cycles;
    result.bestModelCycles = best.modelCycles;
    result.bestSim = best_sim;
    result.bestPlan = plans[best.mappingIndex];
    result.mappingSignature = plans[best.mappingIndex]
                                  .mapping()
                                  .signature(plans[best.mappingIndex]
                                                 .computation());
    result.computeMapping =
        plans[best.mappingIndex].computeMappingString();
    result.intrinsicName = plans[best.mappingIndex].intrinsic().name();
    return result;
}

TuneResult
tune(const TensorComputation &comp, const HardwareSpec &hw,
     const TuneOptions &options)
{
    // The mapping pool spans every intrinsic the accelerator exposes
    // (e.g. the three WMMA problem shapes): intrinsic selection is
    // explored jointly with iteration mapping and scheduling.
    std::vector<MappingPlan> plans;
    for (const auto &intr : hw.intrinsics) {
        if (comp.inputs().size() != intr.compute.numSrcs() ||
            comp.combine() != intr.compute.combine())
            continue;
        std::size_t budget = 0;
        if (options.maxMappings) {
            if (plans.size() >= options.maxMappings)
                break;
            budget = options.maxMappings - plans.size();
        }
        GeneratorOptions gen = options.mappingOptions;
        if (budget)
            gen.maxCandidates = budget;
        for (auto &plan : enumeratePlans(comp, intr, gen))
            plans.push_back(std::move(plan));
    }
    return tuneWithPlans(plans, hw, options);
}

TuneResult
tuneWithMapping(const MappingPlan &plan, const HardwareSpec &hw,
                const TuneOptions &options)
{
    std::vector<MappingPlan> plans = {plan};
    return tuneWithPlans(plans, hw, options);
}

} // namespace amos
