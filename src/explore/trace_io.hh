/**
 * @file
 * Exploration-trace export: CSV serialisation of the tuner's
 * predicted/measured series so the paper's figures can be re-plotted
 * from bench output (`bench_fig5 <dir>` writes one CSV per layer).
 */

#ifndef AMOS_EXPLORE_TRACE_IO_HH
#define AMOS_EXPLORE_TRACE_IO_HH

#include <string>
#include <vector>

#include "explore/tuner.hh"

namespace amos {

/**
 * Render a trace as CSV with a header row:
 * step,mapping,predicted_cycles,measured_cycles,best_cycles
 */
std::string traceToCsv(const std::vector<ExplorationStep> &trace);

/**
 * Render per-generation search telemetry as CSV with a header row:
 * generation,phase,population,distinct_mappings,distinct_genomes,
 * measured_new,measured_reused,best_predicted,mean_predicted,
 * best_measured,mean_measured
 */
std::string telemetryToCsv(
    const std::vector<GenerationTelemetry> &telemetry);

/** Write a text file, raising fatal() on I/O failure. */
void writeTextFile(const std::string &path,
                   const std::string &content);

} // namespace amos

#endif // AMOS_EXPLORE_TRACE_IO_HH
