/**
 * @file
 * Warm-start layer for the mapping/schedule exploration: transfer
 * tuning knowledge across structurally related shapes instead of
 * restarting every search from scratch (the ROADMAP's warm-start
 * item; in the spirit of ISA Mapper's mapping transfer and the
 * learned-cost-model-driven searches of AutoTVM/TensorIR).
 *
 * Two mechanisms, independently switchable:
 *
 *  - Neighbor seeding: a shape/op feature embedding (operator
 *    family, dtype signature, hardware, log-scaled iteration
 *    extents) indexes previously tuned winners; the k nearest cached
 *    (mapping, schedule) genomes are translated to the new shape —
 *    clamped and re-validated against the new mapping pool — and
 *    injected into the GA's generation-0 population. When no donor
 *    is close enough the tuner falls back to plain random seeding.
 *
 *  - Learned-model snapshots: a pre-trained LearnedModel (JSON
 *    snapshot, see learned_model.hh) screens candidates from
 *    generation 0 instead of the analytic-only fallback.
 *
 * Determinism contract: for a fixed (seed, donor set, snapshot) the
 * tuned result is bit-identical at every thread count — seeds occupy
 * fixed population slots and all selection stays serial. Warm-start
 * inputs that change the search outcome join the serve cache key
 * (docs/exploration.md).
 */

#ifndef AMOS_EXPLORE_WARM_START_HH
#define AMOS_EXPLORE_WARM_START_HH

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "explore/learned_model.hh"
#include "hw/hardware.hh"
#include "mapping/mapping.hh"
#include "schedule/schedule.hh"
#include "tensor/computation.hh"

namespace amos {

/** Which warm-start mechanisms an exploration uses. */
enum class WarmStartMode
{
    Off,       ///< plain cold search (historical behaviour)
    Neighbors, ///< seed the GA from nearby cached winners
    Model,     ///< screen with a pre-trained model snapshot
    Both,      ///< neighbors + model
};

/** Wire/CLI name of a mode ("off", "neighbors", "model", "both"). */
const char *warmStartModeName(WarmStartMode mode);

/** Parse a mode name; nullopt on anything unknown. */
std::optional<WarmStartMode>
warmStartModeFromName(const std::string &name);

/** True when the mode includes neighbor seeding. */
inline bool
warmStartUsesNeighbors(WarmStartMode mode)
{
    return mode == WarmStartMode::Neighbors ||
           mode == WarmStartMode::Both;
}

/** True when the mode includes model-snapshot screening. */
inline bool
warmStartUsesModel(WarmStartMode mode)
{
    return mode == WarmStartMode::Model ||
           mode == WarmStartMode::Both;
}

/**
 * Shape/op feature embedding. Categorical components (operator
 * family, dtype signature, hardware) gate comparability — mixing
 * them would let a gemm seed a conv2d — and the numeric component is
 * the log1p-scaled iteration extents, so "twice as large along one
 * dimension" is the same step everywhere in the space.
 */
struct ShapeFeature
{
    std::string family; ///< operator name ("conv2d", "gemm", ...)
    /// Operand dtype signature; empty for the all-f16 default,
    /// matching TuningCache::keyFor's historical-key rule.
    std::string dtypes;
    std::string hw;
    std::vector<double> dims; ///< log1p of iteration extents

    bool valid() const { return !family.empty(); }
};

/** Embed a computation/hardware pair. */
ShapeFeature shapeFeatureOf(const TensorComputation &comp,
                            const HardwareSpec &hw);

/**
 * Recover the embedding from a tuning-cache key
 * ("hw/op_e1_e2...[/dtypes]", with or without the serve layer's
 * trailing "/gN_sS[/w...]" search-knob segments). nullopt when the
 * key does not parse — foreign keys degrade to "no donor", never to
 * an error.
 */
std::optional<ShapeFeature>
shapeFeatureOfKey(const std::string &key);

/**
 * Distance between two embeddings: Euclidean over the log-scaled
 * dims when family/dtypes/hw all match (self-distance 0, symmetric,
 * monotone in any single-dim scaling), +infinity otherwise.
 */
double shapeDistance(const ShapeFeature &a, const ShapeFeature &b);

/**
 * One cached winner proposed as a GA seed. Structurally a tuning-
 * cache entry, restated here so the explore layer stays independent
 * of the cache's serialisation types (amos_amos links amos_explore,
 * not the other way around).
 */
struct WarmSeed
{
    /// Donor's tuning-cache key (provenance + embedding source).
    std::string sourceKey;
    std::string intrinsicName;
    ComputeMapping mapping;
    Schedule schedule;
    /// Filled by nearestSeeds: embedding distance to the target.
    double distance = 0.0;
};

/// Default neighbor-selection policy (docs/exploration.md).
inline constexpr std::size_t kWarmStartMaxNeighbors = 3;
inline constexpr double kWarmStartMaxDistance = 8.0;

/// Early-stop patience the serve/CLI layers apply to warm-started
/// searches: a well-seeded run converges in its first generations,
/// so burning the full cold budget afterwards is pure latency. Cold
/// searches keep patience 0 (run every generation) — the warm cache
/// keys are already disjoint from cold ones.
inline constexpr int kWarmStartPatience = 2;

/**
 * Rank donors by (distance to target, sourceKey) — a total order,
 * so the selection is deterministic regardless of donor order — and
 * keep the `maxNeighbors` nearest within `maxDistance`. Donors whose
 * key does not parse or whose family/dtypes/hw differ (infinite
 * distance) are dropped; an empty result means "fall back to random
 * seeding". Never call this while holding a cache lock: distances
 * are O(donors) of floating-point work on copied data.
 */
std::vector<WarmSeed>
nearestSeeds(const ShapeFeature &target, std::vector<WarmSeed> donors,
             std::size_t maxNeighbors = kWarmStartMaxNeighbors,
             double maxDistance = kWarmStartMaxDistance);

/**
 * Clamp a donor schedule onto a plan's legality envelope: spatial
 * block/warp factors snap to the nearest (log-space) legal tile
 * candidate of the plan's own extents, reduction axes stay serial,
 * global knobs snap to their choice sets. Deterministic; always
 * returns a schedule sampleSchedule could have produced.
 */
Schedule clampSchedule(const MappingPlan &plan,
                       const Schedule &donor);

/**
 * Translate a seed onto a mapping pool: prefer the plan with the
 * donor's exact (intrinsic, iterator-grouping) pair, else any plan
 * on the donor's intrinsic; nullopt when the intrinsic is absent
 * from the pool. The schedule is clamped to the chosen plan.
 */
std::optional<std::pair<std::size_t, Schedule>>
translateSeed(const WarmSeed &seed,
              const std::vector<MappingPlan> &plans);

/**
 * Warm-start knobs carried inside TuneOptions. `seeds` must already
 * be NN-selected (nearestSeeds); the tuner translates them onto its
 * own plan pool and injects the survivors into generation 0.
 */
struct WarmStartOptions
{
    WarmStartMode mode = WarmStartMode::Off;
    /// Donor genomes (neighbor modes); ignored when empty.
    std::vector<WarmSeed> seeds;
    /// Pre-trained snapshot (model modes); ignored when null or
    /// untrained. Shared: many concurrent tunes may read it.
    std::shared_ptr<const LearnedModel> model;
    /// Early-stop patience: end the GA after this many consecutive
    /// non-improving generations (0 = run every generation, the
    /// historical behaviour). Joins the cache key when used.
    int patience = 0;
};

} // namespace amos

#endif // AMOS_EXPLORE_WARM_START_HH
