/**
 * @file
 * Learned cost model (the "Learn Algo." box of the paper's Fig. 2):
 * a ridge regression over kernel-profile features, trained online on
 * the (profile, measured-cycles) pairs the tuner accumulates, and
 * stacked on top of the analytic model (whose prediction is itself a
 * feature). Mirrors the statistical-cost-model-plus-analysis recipe
 * of AutoTVM/Ansor that AMOS plugs into.
 */

#ifndef AMOS_EXPLORE_LEARNED_MODEL_HH
#define AMOS_EXPLORE_LEARNED_MODEL_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "hw/hardware.hh"
#include "schedule/profile.hh"
#include "support/json.hh"

namespace amos {

/** Online ridge-regression cost model over profile features. */
class LearnedModel
{
  public:
    /**
     * Feature vector of a kernel profile: log-scaled structural and
     * traffic quantities plus the analytic model's estimate.
     */
    static std::vector<double> features(const KernelProfile &prof,
                                        const HardwareSpec &hw);

    /** Number of features (including the bias term). */
    static std::size_t featureCount();

    /** Record one measured sample. */
    void addSample(const KernelProfile &prof, const HardwareSpec &hw,
                   double measured_cycles);

    /**
     * Fit ridge regression on log(cycles). No-op below the minimum
     * sample count.
     */
    void fit(double ridge = 1e-3);

    /** True once fit() has produced usable weights. */
    bool trained() const { return _trained; }

    std::size_t sampleCount() const { return _targets.size(); }

    /**
     * Predict cycles for a profile. Falls back to the analytic model
     * until trained.
     */
    double predictCycles(const KernelProfile &prof,
                         const HardwareSpec &hw) const;

    /** Minimum samples before fit() produces weights. */
    static constexpr std::size_t kMinSamples = 8;

    /** Schema tag stamped into every snapshot document. */
    static constexpr const char *kSnapshotSchema =
        "amos-learned-model-v1";

    /** Number of samples the current weights were fitted on. */
    std::size_t fittedSamples() const { return _fittedSamples; }

    /**
     * Serialise the fitted weights (not the raw samples — snapshots
     * are a screening artifact, not a training checkpoint). Requires
     * trained().
     */
    Json toJson() const;

    /**
     * Deserialise a snapshot. nullopt — never a throw — on any
     * corruption: wrong root kind, missing/mismatched schema tag,
     * wrong feature count, wrong weight count, or non-finite
     * weights. Callers fall back to the analytic model.
     */
    static std::optional<LearnedModel> fromJson(const Json &json);

    /** Atomically (write-temp-then-rename) save a snapshot file. */
    void saveFile(const std::string &path) const;

    /**
     * Load a snapshot file. nullopt (with a warning) on an
     * unreadable, unparseable, or corrupt file — hot paths must
     * degrade to analytic screening, never crash.
     */
    static std::optional<LearnedModel>
    loadFile(const std::string &path);

    /**
     * Stable content digest of the snapshot (FNV-1a over the JSON
     * dump, hex). Distinguishes snapshots in cache keys: two models
     * with identical weights share a digest.
     */
    std::string digest() const;

  private:
    std::vector<std::vector<double>> _samples;
    std::vector<double> _targets; ///< log(cycles)
    std::vector<double> _weights;
    bool _trained = false;
    std::size_t _fittedSamples = 0;
};

} // namespace amos

#endif // AMOS_EXPLORE_LEARNED_MODEL_HH
