/**
 * @file
 * Learned cost model (the "Learn Algo." box of the paper's Fig. 2):
 * a ridge regression over kernel-profile features, trained online on
 * the (profile, measured-cycles) pairs the tuner accumulates, and
 * stacked on top of the analytic model (whose prediction is itself a
 * feature). Mirrors the statistical-cost-model-plus-analysis recipe
 * of AutoTVM/Ansor that AMOS plugs into.
 */

#ifndef AMOS_EXPLORE_LEARNED_MODEL_HH
#define AMOS_EXPLORE_LEARNED_MODEL_HH

#include <cstddef>
#include <vector>

#include "hw/hardware.hh"
#include "schedule/profile.hh"

namespace amos {

/** Online ridge-regression cost model over profile features. */
class LearnedModel
{
  public:
    /**
     * Feature vector of a kernel profile: log-scaled structural and
     * traffic quantities plus the analytic model's estimate.
     */
    static std::vector<double> features(const KernelProfile &prof,
                                        const HardwareSpec &hw);

    /** Number of features (including the bias term). */
    static std::size_t featureCount();

    /** Record one measured sample. */
    void addSample(const KernelProfile &prof, const HardwareSpec &hw,
                   double measured_cycles);

    /**
     * Fit ridge regression on log(cycles). No-op below the minimum
     * sample count.
     */
    void fit(double ridge = 1e-3);

    /** True once fit() has produced usable weights. */
    bool trained() const { return _trained; }

    std::size_t sampleCount() const { return _targets.size(); }

    /**
     * Predict cycles for a profile. Falls back to the analytic model
     * until trained.
     */
    double predictCycles(const KernelProfile &prof,
                         const HardwareSpec &hw) const;

    /** Minimum samples before fit() produces weights. */
    static constexpr std::size_t kMinSamples = 8;

  private:
    std::vector<std::vector<double>> _samples;
    std::vector<double> _targets; ///< log(cycles)
    std::vector<double> _weights;
    bool _trained = false;
};

} // namespace amos

#endif // AMOS_EXPLORE_LEARNED_MODEL_HH
