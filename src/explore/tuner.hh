/**
 * @file
 * Joint mapping + schedule exploration (Sec. 5.3 of the AMOS paper).
 *
 * AMOS enumerates all valid mappings, then explores the combined
 * space of mappings and schedule parameters with a genetic algorithm.
 * The analytic performance model screens candidates cheaply; the top
 * candidates of each generation are "measured" (here: simulated) and
 * the archive of measurements drives selection. The predicted/
 * measured pairs are recorded as the exploration trace used by the
 * model-validation experiment (Fig. 5).
 */

#ifndef AMOS_EXPLORE_TUNER_HH
#define AMOS_EXPLORE_TUNER_HH

#include <optional>
#include <string>
#include <vector>

#include "explore/warm_start.hh"
#include "hw/hardware.hh"
#include "mapping/generate.hh"
#include "model/perf_model.hh"
#include "schedule/schedule.hh"
#include "sim/simulator.hh"
#include "support/cancellation.hh"

namespace amos {

/** Tuner configuration. */
struct TuneOptions
{
    int population = 24;
    int generations = 10;
    /// Model-screened candidates measured per generation.
    int measureTopK = 6;
    std::uint64_t seed = 2022;
    /// Hill-climbing measurements spent polishing the best mapping
    /// after the genetic search (exploit-after-explore).
    int exploitSteps = 64;
    /// Screen candidates with the online learned cost model (ridge
    /// regression over profile features, Fig. 2's "Learn Algo.")
    /// once enough measurements exist, instead of the analytic model
    /// alone.
    bool useLearnedModel = false;
    /// Mapping enumeration policy/caps.
    GeneratorOptions mappingOptions{};
    /// Cap on the mapping pool entering exploration (0 = all).
    std::size_t maxMappings = 0;
    /// Worker threads fanning out candidate evaluation, schedule
    /// sampling, and simulator measurements (0 = one per hardware
    /// thread, 1 = fully serial). The search trajectory is
    /// bit-identical for every value: random draws come from
    /// per-candidate streams and all reductions are ordered.
    int numThreads = 0;
    /// Cooperative cancellation: when set, the tuner polls the token
    /// at generation boundaries and before each measurement batch,
    /// throwing CancelledError once it fires. The serve layer uses
    /// this for per-request deadlines and abandoned explorations;
    /// not part of the tuning-cache key.
    CancelToken *cancel = nullptr;
    /// Warm start: neighbor seeds injected into generation 0 and/or
    /// a pre-trained model snapshot used for screening. The mode,
    /// seed set, and snapshot all steer the search, so they join the
    /// tuning-cache key at the serve layer (warm_start.hh).
    WarmStartOptions warmStart{};
    /// When set, every schedulable measurement is also fed to this
    /// model (in ordered serial fold, so the sample set is thread-
    /// count invariant). Pure telemetry collection for offline
    /// training — never read during the search, so it is result-
    /// neutral and excluded from the tuning-cache key like `cancel`.
    LearnedModel *sampleSink = nullptr;
};

/** One predicted/measured pair from the exploration trace. */
struct ExplorationStep
{
    int step = 0;
    std::size_t mappingIndex = 0;
    double predictedCycles = 0.0;
    double measuredCycles = 0.0;
    double bestSoFarCycles = 0.0;
};

/**
 * Search telemetry: one row per GA generation, recorded alongside
 * the exploration trace. Convergence (best/mean series), population
 * diversity, and measurement-archive reuse are what an explain
 * report needs to answer "did the search actually converge, and did
 * it keep exploring or just re-measure the same candidates?".
 */
struct GenerationTelemetry
{
    int generation = 0;
    /// "search" for the main GA loop, "exploit" for the
    /// exploit-after-explore sub-searches.
    std::string phase = "search";

    int populationSize = 0;
    /// Distinct mappings represented in the population (diversity
    /// across the mapping dimension).
    std::size_t distinctMappings = 0;
    /// Distinct (mapping, schedule) genomes in the population.
    std::size_t distinctGenomes = 0;

    /// Fresh simulator measurements spent this generation.
    int measuredNew = 0;
    /// Candidates whose fitness reused an archived measurement
    /// instead of a new simulator run (measurement-cache hits).
    int measuredReused = 0;

    double bestPredictedCycles = 0.0; ///< best model score, this gen
    double meanPredictedCycles = 0.0; ///< mean finite model score
    double bestMeasuredCycles = 0.0;  ///< incumbent after this gen
    /// Mean of this generation's schedulable measurements (0 when
    /// nothing new was measured).
    double meanMeasuredCycles = 0.0;
};

/**
 * A non-winning mapping's best measured candidate, kept so reports
 * can attribute the runners-up, not just the winner.
 */
struct RunnerUp
{
    std::size_t mappingIndex = 0;
    std::optional<MappingPlan> plan;
    Schedule schedule;
    double measuredCycles = 0.0;
    double modelCycles = 0.0;
};

/** Outcome of tuning one operator on one accelerator. */
struct TuneResult
{
    /// False when no valid mapping exists (caller should fall back
    /// to the scalar units).
    bool tensorizable = false;

    std::size_t numMappings = 0;
    int measurements = 0;

    /// Neighbor seeds offered to the search (warm start).
    int warmStartNeighbors = 0;
    /// Seeds that survived translation onto this mapping pool and
    /// entered generation 0.
    int warmStartSeeded = 0;

    std::size_t bestMappingIndex = 0;
    Schedule bestSchedule;
    double bestCycles = 0.0;      ///< simulator ("measured")
    double bestModelCycles = 0.0; ///< analytic model on the winner
    SimResult bestSim;

    std::optional<MappingPlan> bestPlan;
    std::string mappingSignature;
    std::string computeMapping;
    std::string intrinsicName; ///< the winning intrinsic (shape)

    std::vector<ExplorationStep> trace;
    /// One row per GA generation (main loop first, then exploit
    /// sub-search rows), identical for every thread count.
    std::vector<GenerationTelemetry> telemetry;
    /// Up to three non-winning mappings, best first.
    std::vector<RunnerUp> runnersUp;
};

/**
 * Tune a computation on an accelerator: enumerate valid mappings,
 * explore schedules genetically, measure on the simulator, return
 * the best (mapping, schedule) found.
 */
TuneResult tune(const TensorComputation &comp, const HardwareSpec &hw,
                const TuneOptions &options = {});

/**
 * Tune with a pinned mapping (used by the fixed-mapping baselines:
 * schedules are explored, the mapping is not).
 */
TuneResult tuneWithMapping(const MappingPlan &plan,
                           const HardwareSpec &hw,
                           const TuneOptions &options = {});

/**
 * Tune over an explicit mapping pool (the general entry point the
 * other two forward to).
 */
TuneResult tuneWithPlans(const std::vector<MappingPlan> &plans,
                         const HardwareSpec &hw,
                         const TuneOptions &options = {});

} // namespace amos

#endif // AMOS_EXPLORE_TUNER_HH
