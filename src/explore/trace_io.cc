#include "trace_io.hh"

#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace amos {

std::string
traceToCsv(const std::vector<ExplorationStep> &trace)
{
    std::ostringstream out;
    out << "step,mapping,predicted_cycles,measured_cycles,"
           "best_cycles\n";
    for (const auto &step : trace) {
        out << step.step << "," << step.mappingIndex << ","
            << step.predictedCycles << "," << step.measuredCycles
            << "," << step.bestSoFarCycles << "\n";
    }
    return out.str();
}

void
writeTextFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    expect(out.good(), "writeTextFile: cannot open ", path);
    out << content;
    expect(out.good(), "writeTextFile: failed writing ", path);
}

} // namespace amos
