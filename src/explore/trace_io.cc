#include "trace_io.hh"

#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace amos {

std::string
traceToCsv(const std::vector<ExplorationStep> &trace)
{
    std::ostringstream out;
    out << "step,mapping,predicted_cycles,measured_cycles,"
           "best_cycles\n";
    for (const auto &step : trace) {
        out << step.step << "," << step.mappingIndex << ","
            << step.predictedCycles << "," << step.measuredCycles
            << "," << step.bestSoFarCycles << "\n";
    }
    return out.str();
}

std::string
telemetryToCsv(const std::vector<GenerationTelemetry> &telemetry)
{
    std::ostringstream out;
    out << "generation,phase,population,distinct_mappings,"
           "distinct_genomes,measured_new,measured_reused,"
           "best_predicted,mean_predicted,best_measured,"
           "mean_measured\n";
    for (const auto &row : telemetry) {
        out << row.generation << "," << row.phase << ","
            << row.populationSize << "," << row.distinctMappings
            << "," << row.distinctGenomes << "," << row.measuredNew
            << "," << row.measuredReused << ","
            << row.bestPredictedCycles << ","
            << row.meanPredictedCycles << ","
            << row.bestMeasuredCycles << ","
            << row.meanMeasuredCycles << "\n";
    }
    return out.str();
}

void
writeTextFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    expect(out.good(), "writeTextFile: cannot open ", path);
    out << content;
    expect(out.good(), "writeTextFile: failed writing ", path);
}

} // namespace amos
