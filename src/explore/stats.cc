#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/math_utils.hh"

namespace amos {

double
pairwiseAccuracy(const std::vector<ExplorationStep> &trace)
{
    if (trace.size() < 2)
        return 1.0;
    std::size_t agree = 0, total = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        for (std::size_t j = i + 1; j < trace.size(); ++j) {
            double dp = trace[i].predictedCycles -
                        trace[j].predictedCycles;
            double dm = trace[i].measuredCycles -
                        trace[j].measuredCycles;
            if (dp == 0.0 || dm == 0.0)
                continue; // ties carry no ordering information
            ++total;
            agree += (dp > 0) == (dm > 0);
        }
    }
    return total == 0 ? 1.0
                      : static_cast<double>(agree) /
                            static_cast<double>(total);
}

double
topFractionRecall(const std::vector<ExplorationStep> &trace,
                  double fraction)
{
    require(fraction > 0.0 && fraction <= 1.0,
            "topFractionRecall: fraction must be in (0, 1], got ",
            fraction);
    if (trace.empty())
        return 1.0;

    std::size_t n = trace.size();
    std::size_t k = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(n)));
    k = std::max<std::size_t>(1, std::min(k, n));

    auto ranked_by = [&](bool by_measured) {
        std::vector<std::size_t> order(n);
        for (std::size_t i = 0; i < n; ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      double va = by_measured
                                      ? trace[a].measuredCycles
                                      : trace[a].predictedCycles;
                      double vb = by_measured
                                      ? trace[b].measuredCycles
                                      : trace[b].predictedCycles;
                      return va < vb;
                  });
        order.resize(k);
        return order;
    };

    auto true_top = ranked_by(true);
    auto pred_top = ranked_by(false);
    std::size_t hit = 0;
    for (auto t : true_top)
        hit += std::find(pred_top.begin(), pred_top.end(), t) !=
               pred_top.end();
    return static_cast<double>(hit) / static_cast<double>(k);
}

double
geoMeanRelativeError(const std::vector<ExplorationStep> &trace)
{
    if (trace.empty())
        return 1.0;
    std::vector<double> ratios;
    ratios.reserve(trace.size());
    for (const auto &step : trace) {
        double hi = std::max(step.predictedCycles,
                             step.measuredCycles);
        double lo = std::min(step.predictedCycles,
                             step.measuredCycles);
        if (lo > 0.0)
            ratios.push_back(hi / lo);
    }
    return ratios.empty() ? 1.0 : geometricMean(ratios);
}

} // namespace amos
