/**
 * @file
 * Exploration statistics for the model-validation experiment
 * (Fig. 5): pairwise rank accuracy between predicted and measured
 * performance, and top-k recall of the model's ranking.
 */

#ifndef AMOS_EXPLORE_STATS_HH
#define AMOS_EXPLORE_STATS_HH

#include <vector>

#include "explore/tuner.hh"

namespace amos {

/**
 * Pairwise (rank) accuracy: over all pairs of trace entries, the
 * fraction whose predicted ordering matches the measured ordering.
 * Returns 1.0 for fewer than two entries.
 */
double pairwiseAccuracy(const std::vector<ExplorationStep> &trace);

/**
 * Recall of the model's top fraction: of the truly (measured) best
 * ceil(q*n) entries, the fraction the model also places in its best
 * ceil(q*n). Returns 1.0 for an empty trace.
 */
double topFractionRecall(const std::vector<ExplorationStep> &trace,
                         double fraction);

/**
 * Relative error statistics of predicted vs measured cycles:
 * geometric mean of max(pred,meas)/min(pred,meas).
 */
double geoMeanRelativeError(
    const std::vector<ExplorationStep> &trace);

} // namespace amos

#endif // AMOS_EXPLORE_STATS_HH
