#include "warm_start.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/math_utils.hh"

namespace amos {

const char *
warmStartModeName(WarmStartMode mode)
{
    switch (mode) {
    case WarmStartMode::Off:
        return "off";
    case WarmStartMode::Neighbors:
        return "neighbors";
    case WarmStartMode::Model:
        return "model";
    case WarmStartMode::Both:
        return "both";
    }
    return "off";
}

std::optional<WarmStartMode>
warmStartModeFromName(const std::string &name)
{
    if (name == "off")
        return WarmStartMode::Off;
    if (name == "neighbors")
        return WarmStartMode::Neighbors;
    if (name == "model")
        return WarmStartMode::Model;
    if (name == "both")
        return WarmStartMode::Both;
    return std::nullopt;
}

ShapeFeature
shapeFeatureOf(const TensorComputation &comp, const HardwareSpec &hw)
{
    ShapeFeature feat;
    feat.family = comp.name();
    feat.hw = hw.name;
    for (const auto &iv : comp.iters())
        feat.dims.push_back(std::log1p(static_cast<double>(iv.extent)));
    // Mirror TuningCache::keyFor: the all-f16 default keeps an empty
    // signature so embeddings and historical cache keys agree.
    bool allDefault = comp.output().dtype() == DataType::F16;
    for (const auto &in : comp.inputs())
        allDefault = allDefault && in.decl.dtype() == DataType::F16;
    if (!allDefault) {
        std::ostringstream sig;
        for (const auto &in : comp.inputs())
            sig << dtypeName(in.decl.dtype()) << "_";
        sig << dtypeName(comp.output().dtype());
        feat.dtypes = sig.str();
    }
    return feat;
}

namespace {

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string part;
    for (char c : text) {
        if (c == sep) {
            out.push_back(part);
            part.clear();
        } else {
            part += c;
        }
    }
    out.push_back(part);
    return out;
}

bool
allDigits(const std::string &token)
{
    if (token.empty())
        return false;
    for (char c : token)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/// Dtype signatures ("f16_f16_f32") are '_'-joined lowercase
/// alphanumeric names; anything else in that position marks a
/// foreign key.
bool
looksLikeDtypeSignature(const std::string &seg)
{
    auto parts = splitOn(seg, '_');
    if (parts.empty())
        return false;
    for (const auto &part : parts) {
        if (part.empty())
            return false;
        for (char c : part) {
            auto u = static_cast<unsigned char>(c);
            if (!std::islower(u) && !std::isdigit(u))
                return false;
        }
    }
    return true;
}

/// "g<digits>_s<digits>" — the serve layer's search-knob suffix.
bool
isSearchKnobSegment(const std::string &seg)
{
    auto parts = splitOn(seg, '_');
    return parts.size() == 2 && parts[0].size() > 1 &&
           parts[0][0] == 'g' && allDigits(parts[0].substr(1)) &&
           parts[1].size() > 1 && parts[1][0] == 's' &&
           allDigits(parts[1].substr(1));
}

/// "w<mode>[-m<digest>]" — the serve layer's warm-start suffix.
bool
isWarmSuffixSegment(const std::string &seg)
{
    if (seg.empty() || seg[0] != 'w')
        return false;
    std::string body = seg.substr(1);
    auto dash = body.find('-');
    if (dash != std::string::npos)
        body = body.substr(0, dash);
    return warmStartModeFromName(body).has_value();
}

/// Snap `want` to the choice in `cands` nearest in log space; ties
/// break toward the smaller candidate (cands is sorted ascending).
std::int64_t
snapToChoices(std::int64_t want, const std::vector<std::int64_t> &cands)
{
    double target = std::log(static_cast<double>(std::max<std::int64_t>(want, 1)));
    std::int64_t best = cands.front();
    double bestGap = std::numeric_limits<double>::infinity();
    for (std::int64_t c : cands) {
        double gap = std::abs(std::log(static_cast<double>(c)) - target);
        if (gap < bestGap) {
            bestGap = gap;
            best = c;
        }
    }
    return best;
}

int
snapToChoices(int want, const std::vector<int> &choices)
{
    std::vector<std::int64_t> cands(choices.begin(), choices.end());
    return static_cast<int>(snapToChoices(static_cast<std::int64_t>(want), cands));
}

// sampleSchedule's global knob sets (schedule.cc keeps its own copies
// in an anonymous namespace); clamped donors must land inside them.
const std::vector<int> kStageChoices = {1, 2};
const std::vector<int> kVectorChoices = {1, 2, 4, 8};
const std::vector<int> kUnrollChoices = {1, 2, 4};

} // namespace

std::optional<ShapeFeature>
shapeFeatureOfKey(const std::string &key)
{
    auto segments = splitOn(key, '/');
    if (segments.size() < 2)
        return std::nullopt;

    ShapeFeature feat;
    feat.hw = segments[0];

    // Segment 1 is "<name>_<e1>_<e2>...": extents are the maximal run
    // of all-digit tokens on the right, so operator names containing
    // digits ("conv2d") or underscores parse correctly.
    auto tokens = splitOn(segments[1], '_');
    std::size_t firstExtent = tokens.size();
    while (firstExtent > 0 && allDigits(tokens[firstExtent - 1]))
        --firstExtent;
    if (firstExtent == 0 || firstExtent == tokens.size())
        return std::nullopt; // no name, or no extents
    for (std::size_t i = 0; i < firstExtent; ++i) {
        if (i)
            feat.family += "_";
        feat.family += tokens[i];
    }
    for (std::size_t i = firstExtent; i < tokens.size(); ++i) {
        double extent = std::stod(tokens[i]);
        feat.dims.push_back(std::log1p(extent));
    }

    // Optional trailing segments: dtype signature, then the serve
    // layer's search-knob and warm-start suffixes (ignored — they
    // describe the search, not the shape).
    for (std::size_t s = 2; s < segments.size(); ++s) {
        if (isSearchKnobSegment(segments[s]) ||
            isWarmSuffixSegment(segments[s]))
            break;
        if (s == 2 && looksLikeDtypeSignature(segments[s])) {
            feat.dtypes = segments[s];
            continue;
        }
        return std::nullopt; // unrecognised extra segment
    }
    if (feat.hw.empty() || !feat.valid())
        return std::nullopt;
    return feat;
}

double
shapeDistance(const ShapeFeature &a, const ShapeFeature &b)
{
    if (a.family != b.family || a.dtypes != b.dtypes || a.hw != b.hw ||
        a.dims.size() != b.dims.size())
        return std::numeric_limits<double>::infinity();
    double sum = 0.0;
    for (std::size_t i = 0; i < a.dims.size(); ++i) {
        double d = a.dims[i] - b.dims[i];
        sum += d * d;
    }
    return std::sqrt(sum);
}

std::vector<WarmSeed>
nearestSeeds(const ShapeFeature &target, std::vector<WarmSeed> donors,
             std::size_t maxNeighbors, double maxDistance)
{
    std::vector<WarmSeed> kept;
    for (auto &donor : donors) {
        auto feat = shapeFeatureOfKey(donor.sourceKey);
        if (!feat)
            continue;
        double dist = shapeDistance(target, *feat);
        if (!(dist <= maxDistance)) // also drops inf/NaN
            continue;
        donor.distance = dist;
        kept.push_back(std::move(donor));
    }
    std::sort(kept.begin(), kept.end(),
              [](const WarmSeed &a, const WarmSeed &b) {
                  if (a.distance != b.distance)
                      return a.distance < b.distance;
                  return a.sourceKey < b.sourceKey;
              });
    if (kept.size() > maxNeighbors)
        kept.resize(maxNeighbors);
    return kept;
}

Schedule
clampSchedule(const MappingPlan &plan, const Schedule &donor)
{
    Schedule sched = defaultSchedule(plan);
    for (std::size_t a = 0; a < sched.axes.size(); ++a) {
        if (axisIsReduction(plan, a))
            continue; // reduction axes stay serial, as in sampling
        if (a >= donor.axes.size())
            continue;
        std::int64_t extent = plan.outerAxes()[a].extent;
        auto cands = tileCandidates(extent);
        std::int64_t bf = snapToChoices(donor.axes[a].blockFactor, cands);
        auto warpCands = tileCandidates(ceilDiv(extent, bf));
        sched.axes[a].blockFactor = bf;
        sched.axes[a].warpFactor =
            snapToChoices(donor.axes[a].warpFactor, warpCands);
    }
    sched.stageDepth = snapToChoices(donor.stageDepth, kStageChoices);
    sched.vectorLanes = snapToChoices(donor.vectorLanes, kVectorChoices);
    sched.unrollDepth = snapToChoices(donor.unrollDepth, kUnrollChoices);
    return sched;
}

std::optional<std::pair<std::size_t, Schedule>>
translateSeed(const WarmSeed &seed, const std::vector<MappingPlan> &plans)
{
    std::optional<std::size_t> sameIntrinsic;
    for (std::size_t i = 0; i < plans.size(); ++i) {
        if (plans[i].intrinsic().name() != seed.intrinsicName)
            continue;
        if (plans[i].mapping().groups == seed.mapping.groups)
            return std::make_pair(i, clampSchedule(plans[i], seed.schedule));
        if (!sameIntrinsic)
            sameIntrinsic = i;
    }
    if (sameIntrinsic) {
        return std::make_pair(*sameIntrinsic,
                              clampSchedule(plans[*sameIntrinsic],
                                            seed.schedule));
    }
    return std::nullopt;
}

} // namespace amos
