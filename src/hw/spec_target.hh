/**
 * @file
 * Spec-loaded hardware targets: a JSON ISA spec whose document also
 * carries a "hardware" section describes a complete accelerator —
 * the intrinsic (derived via isa/spec.hh) plus the 3-level machine
 * organisation the performance model and simulator consume. Such
 * targets need no C++ registration at all: hw::byName resolves them
 * from the embedded spec registry (e.g. "amx") or, with the
 * "spec:<path>" prefix, from a user-supplied file, so the CLI and
 * the serve path can name them like any built-in preset.
 *
 * Error handling follows isa/spec.hh: malformed hardware sections
 * produce structured diagnostics, never crashes.
 */

#ifndef AMOS_HW_SPEC_TARGET_HH
#define AMOS_HW_SPEC_TARGET_HH

#include <optional>
#include <string>
#include <vector>

#include "hw/hardware.hh"
#include "isa/spec.hh"
#include "support/json.hh"

namespace amos {
namespace hw {

/** Result of loading a full hardware target from a spec document. */
struct TargetLoadResult
{
    std::optional<HardwareSpec> hardware;
    std::vector<isa::SpecDiag> diags;

    bool ok() const { return hardware.has_value() && diags.empty(); }
};

/**
 * Build a complete HardwareSpec from one spec document: the
 * intrinsic section derives the target's intrinsics (every declared
 * variant), the required "hardware" section supplies cores,
 * sub-cores, clock, the three memory levels, and the overhead /
 * occupancy knobs. A document without a "hardware" section is a
 * diagnostic ("missing-field" at /hardware).
 */
TargetLoadResult targetFromSpecJson(const Json &doc);

/** Parse from JSON text (malformed JSON becomes a "bad-json" diag). */
TargetLoadResult targetFromSpecText(const std::string &text);

/** Load from a file on disk (unreadable file is a diagnostic). */
TargetLoadResult targetFromSpecFile(const std::string &path);

/**
 * Names of embedded specs that carry a "hardware" section, sorted —
 * the spec-only targets hw::byName accepts in addition to the
 * hand-registered presets.
 */
const std::vector<std::string> &embeddedTargetNames();

/**
 * Load an embedded spec-only target by name; raises fatal() on an
 * unknown name or (impossible for shipped specs, which tests
 * validate) a spec that fails to load.
 */
HardwareSpec embeddedTarget(const std::string &name);

} // namespace hw
} // namespace amos

#endif // AMOS_HW_SPEC_TARGET_HH
