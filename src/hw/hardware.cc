#include "hardware.hh"

#include "hw/spec_target.hh"
#include "support/logging.hh"
#include "support/str_utils.hh"

namespace amos {

const Intrinsic &
HardwareSpec::primaryIntrinsic() const
{
    expect(!intrinsics.empty(), name, ": no intrinsics registered");
    return intrinsics.front();
}

double
HardwareSpec::peakOpsPerCycle() const
{
    const auto &intr = primaryIntrinsic();
    double per_call = static_cast<double>(intr.compute.scalarOps());
    double calls_per_cycle =
        intr.unitsPerSubcore / intr.latencyCycles;
    return per_call * calls_per_cycle * subcoresPerCore * numCores;
}

std::string
HardwareSpec::toString() const
{
    std::string out = name + ": " + std::to_string(numCores) +
                      " cores x " + std::to_string(subcoresPerCore) +
                      " sub-cores @ " + fmtDouble(clockGhz, 2) +
                      " GHz\n";
    out += "  shared: " + std::to_string(shared.capacityBytes / 1024) +
           " KiB/core, global bw " +
           fmtDouble(global.readBytesPerCycle, 1) + " B/cyc\n";
    for (const auto &intr : intrinsics)
        out += "  intrinsic: " + intr.compute.toString() + "\n";
    return out;
}

namespace hw {

HardwareSpec
v100()
{
    HardwareSpec s;
    s.name = "V100";
    s.numCores = 80;           // SMs
    s.subcoresPerCore = 4;     // processing blocks per SM
    s.clockGhz = 1.38;
    // 900 GB/s HBM2 -> ~652 B/cycle chip-wide.
    s.global = {"global", 0, 652.0, 652.0};
    // 96 KiB shared memory per SM; ~128 B/cycle/SM load.
    s.shared = {"shared", 96 * 1024, 128.0, 64.0};
    s.reg = {"reg", 64 * 1024, 256.0, 256.0};
    s.launchOverheadCycles = 4000.0;
    s.frameworkOverheadCycles = 8000.0; // ~6 us eager dispatch
    s.maxBlocksPerCore = 32;
    s.scalarLanesPerCore = 64; // fp32 CUDA lanes per SM
    s.intrinsics = isa::wmmaVariants();
    return s;
}

HardwareSpec
a100()
{
    HardwareSpec s;
    s.name = "A100";
    s.numCores = 108;
    s.subcoresPerCore = 4;
    s.clockGhz = 1.41;
    // ~1555 GB/s HBM2e -> ~1103 B/cycle.
    s.global = {"global", 0, 1103.0, 1103.0};
    // 164 KiB usable shared memory per SM, faster paths than Volta.
    s.shared = {"shared", 164 * 1024, 256.0, 128.0};
    s.reg = {"reg", 64 * 1024, 512.0, 512.0};
    s.launchOverheadCycles = 4000.0;
    s.frameworkOverheadCycles = 8000.0;
    s.maxBlocksPerCore = 32;
    s.scalarLanesPerCore = 64;
    // Third-generation tensor cores: double the per-call throughput.
    s.intrinsics = isa::wmmaVariants();
    for (auto &intr : s.intrinsics)
        intr.latencyCycles = 4.0;
    return s;
}

HardwareSpec
xeonSilver4110()
{
    HardwareSpec s;
    s.name = "XeonSilver4110";
    s.numCores = 8;
    s.subcoresPerCore = 1;
    s.clockGhz = 2.1;
    // ~60 GB/s six-channel DDR4 -> ~28 B/cycle socket-wide.
    s.global = {"global", 0, 28.0, 28.0};
    // 1 MiB L2 per core as the staging buffer.
    s.shared = {"shared", 1024 * 1024, 64.0, 32.0};
    s.reg = {"reg", 2 * 1024, 128.0, 128.0};
    s.launchOverheadCycles = 500.0; // thread-pool dispatch
    s.frameworkOverheadCycles = 3000.0;
    s.maxBlocksPerCore = 2;
    s.scalarLanesPerCore = 16; // AVX-512 fp32 lanes
    s.intrinsics = {isa::avx512Vnni()};
    return s;
}

HardwareSpec
maliG76()
{
    HardwareSpec s;
    s.name = "MaliG76";
    s.numCores = 12;           // shader cores (G76 MP12)
    s.subcoresPerCore = 3;     // execution engines per core
    s.clockGhz = 0.72;
    // ~30 GB/s LPDDR4X -> ~42 B/cycle.
    s.global = {"global", 0, 42.0, 42.0};
    // 64 KiB local/L1 per core.
    s.shared = {"shared", 64 * 1024, 32.0, 16.0};
    s.reg = {"reg", 1024, 64.0, 64.0};
    s.launchOverheadCycles = 8000.0; // driver dispatch is costly
    s.frameworkOverheadCycles = 10000.0;
    s.maxBlocksPerCore = 4;
    s.scalarLanesPerCore = 8;
    s.intrinsics = {isa::maliDot()};
    return s;
}

HardwareSpec
virtualAxpyAccel()
{
    HardwareSpec s;
    s.name = "VirtualAXPY";
    s.numCores = 16;
    s.subcoresPerCore = 2;
    s.clockGhz = 1.0;
    s.global = {"global", 0, 128.0, 128.0};
    s.shared = {"shared", 128 * 1024, 64.0, 32.0};
    s.reg = {"reg", 16 * 1024, 128.0, 128.0};
    s.launchOverheadCycles = 1000.0;
    s.maxBlocksPerCore = 8;
    s.scalarLanesPerCore = 8;
    s.intrinsics = {isa::virtualAxpy()};
    return s;
}

HardwareSpec
virtualGemvAccel()
{
    HardwareSpec s = virtualAxpyAccel();
    s.name = "VirtualGEMV";
    s.intrinsics = {isa::virtualGemv()};
    return s;
}

HardwareSpec
virtualConvAccel()
{
    HardwareSpec s = virtualAxpyAccel();
    s.name = "VirtualCONV";
    s.intrinsics = {isa::virtualConv()};
    return s;
}

const std::vector<std::string> &
knownNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out = {"v100",  "a100",  "xeon",
                                        "mali",  "vaxpy", "vgemv",
                                        "vconv"};
        // Spec-only targets: every embedded ISA spec that carries a
        // "hardware" section is a nameable accelerator with no C++
        // registration anywhere (e.g. "amx").
        for (const auto &name : embeddedTargetNames())
            out.push_back(name);
        return out;
    }();
    return names;
}

HardwareSpec
byName(const std::string &name)
{
    if (name == "v100")
        return v100();
    if (name == "a100")
        return a100();
    if (name == "xeon")
        return xeonSilver4110();
    if (name == "mali")
        return maliG76();
    if (name == "vaxpy")
        return virtualAxpyAccel();
    if (name == "vgemv")
        return virtualGemvAccel();
    if (name == "vconv")
        return virtualConvAccel();
    // "spec:<path>": load a user-supplied ISA spec file with a
    // hardware section — target onboarding without recompiling.
    if (name.rfind("spec:", 0) == 0) {
        auto loaded = targetFromSpecFile(name.substr(5));
        if (!loaded.ok())
            fatal("spec target '", name, "' failed to load:\n",
                  isa::diagsToString(loaded.diags));
        return std::move(*loaded.hardware);
    }
    for (const auto &embedded : embeddedTargetNames())
        if (name == embedded)
            return embeddedTarget(name);
    fatal("unknown hardware '", name, "' (", join(knownNames(), "|"),
          "|spec:<path>)");
}

} // namespace hw
} // namespace amos
