/**
 * @file
 * Hardware specifications of the modelled spatial accelerators.
 *
 * Follows the 3-level organisation of Fig. 1a of the paper: cores
 * sharing global memory, sub-cores within a core sharing a buffer
 * (shared memory / cache), and a PE array inside each sub-core that
 * executes intrinsics. The numbers for the commercial parts come from
 * their public specifications; they drive a simulator, not silicon,
 * so only relative magnitudes matter (see DESIGN.md).
 */

#ifndef AMOS_HW_HARDWARE_HH
#define AMOS_HW_HARDWARE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/abstraction.hh"
#include "isa/intrinsics.hh"

namespace amos {

/** One memory level: capacity per owning unit and bandwidths. */
struct MemoryLevelSpec
{
    std::string name;
    std::int64_t capacityBytes = 0;  ///< per owning unit (0 = ample)
    double readBytesPerCycle = 0.0;  ///< per owning unit
    double writeBytesPerCycle = 0.0; ///< per owning unit
};

/**
 * A complete accelerator description consumed by the performance
 * model and the simulator.
 */
struct HardwareSpec
{
    std::string name;

    int numCores = 1;          ///< outer level (SMs / CPU cores)
    int subcoresPerCore = 1;   ///< sub-cores sharing one buffer

    /// Off-chip memory shared by all cores (capacity ignored).
    /// Cross-block L2 reuse is deliberately not modelled: the
    /// simulator treats every block's staging traffic as streaming,
    /// a conservative simplification documented in DESIGN.md.
    MemoryLevelSpec global;
    /// Per-core buffer (GPU shared memory, CPU L2).
    MemoryLevelSpec shared;
    /// Per-sub-core register file for operand fragments.
    MemoryLevelSpec reg;

    double clockGhz = 1.0;

    /** Kernel-launch / dispatch overhead in cycles. */
    double launchOverheadCycles = 0.0;

    /**
     * Per-operator overhead of an eager framework (PyTorch-style
     * dispatch, allocator, and kernel-selection costs) in cycles.
     * Compiled flows (AMOS, the template compilers, XLA) do not pay
     * it; the library proxy does.
     */
    double frameworkOverheadCycles = 0.0;

    /** Occupancy cap: resident threadblocks per core. */
    int maxBlocksPerCore = 32;

    /**
     * Scalar fallback throughput: general-purpose multiply-add lanes
     * per core (used when an operator cannot be tensorized).
     */
    int scalarLanesPerCore = 64;

    /** Intrinsics this accelerator exposes. */
    std::vector<Intrinsic> intrinsics;

    /** The first intrinsic (most specs expose exactly one). */
    const Intrinsic &primaryIntrinsic() const;

    /** Peak tensorized throughput in scalar ops per cycle. */
    double peakOpsPerCycle() const;

    std::string toString() const;
};

namespace hw {

/** Volta V100-like Tensor Core GPU (Sec. 7.1). */
HardwareSpec v100();

/** Ampere A100-like Tensor Core GPU. */
HardwareSpec a100();

/** Xeon Silver 4110-like AVX-512 CPU. */
HardwareSpec xeonSilver4110();

/** Mali G76-like Bifrost GPU with dot units. */
HardwareSpec maliG76();

/** Virtual accelerator built around the AXPY intrinsic (Sec. 7.5). */
HardwareSpec virtualAxpyAccel();

/** Virtual accelerator built around the GEMV intrinsic. */
HardwareSpec virtualGemvAccel();

/** Virtual accelerator built around the CONV intrinsic. */
HardwareSpec virtualConvAccel();

/**
 * Look a spec up by its CLI/protocol name
 * (v100|a100|xeon|mali|vaxpy|vgemv|vconv), by the name of an
 * embedded spec-only target (a JSON ISA spec with a "hardware"
 * section, e.g. "amx" — see hw/spec_target.hh), or as
 * "spec:<path>" to load a user-supplied spec file; raises fatal()
 * on an unknown name, listing the alternatives.
 */
HardwareSpec byName(const std::string &name);

/** The names byName() accepts, in presentation order. */
const std::vector<std::string> &knownNames();

} // namespace hw
} // namespace amos

#endif // AMOS_HW_HARDWARE_HH
