#include "spec_target.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace amos {
namespace hw {

namespace {

using isa::SpecDiag;

const char *
jsonKindName(Json::Kind kind)
{
    switch (kind) {
      case Json::Kind::Null: return "null";
      case Json::Kind::Bool: return "bool";
      case Json::Kind::Number: return "number";
      case Json::Kind::String: return "string";
      case Json::Kind::Array: return "array";
      case Json::Kind::Object: return "object";
    }
    return "?";
}

/** Guarded field access mirroring the isa spec reader. */
const Json *
field(const Json &obj, const std::string &path,
      const std::string &key, Json::Kind kind, bool required,
      std::vector<SpecDiag> &diags)
{
    if (obj.kind() != Json::Kind::Object) {
        diags.push_back({"bad-type", path,
                         std::string("expected object, got ") +
                             jsonKindName(obj.kind())});
        return nullptr;
    }
    if (!obj.has(key)) {
        if (required)
            diags.push_back({"missing-field", path + "/" + key,
                             "required field '" + key +
                                 "' is absent"});
        return nullptr;
    }
    const Json &f = obj.get(key);
    if (f.kind() != kind) {
        diags.push_back({"bad-type", path + "/" + key,
                         std::string("expected ") +
                             jsonKindName(kind) + ", got " +
                             jsonKindName(f.kind())});
        return nullptr;
    }
    return &f;
}

bool
positiveInt(const Json &num, const std::string &path, std::int64_t min,
            std::int64_t *out, std::vector<SpecDiag> &diags)
{
    double v = num.asNumber();
    if (!(v == std::floor(v))) {
        diags.push_back({"bad-type", path,
                         "expected an integer, got " +
                             std::to_string(v)});
        return false;
    }
    auto n = static_cast<std::int64_t>(v);
    if (n < min) {
        diags.push_back({"bad-extent", path,
                         "value must be >= " + std::to_string(min) +
                             ", got " + std::to_string(n)});
        return false;
    }
    *out = n;
    return true;
}

MemoryLevelSpec
parseLevel(const Json &hwNode, const std::string &path,
           const std::string &key, std::vector<SpecDiag> &diags)
{
    MemoryLevelSpec level;
    level.name = key;
    const Json *node =
        field(hwNode, path, key, Json::Kind::Object, true, diags);
    if (node == nullptr)
        return level;
    std::string lpath = path + "/" + key;
    if (const Json *cap = field(*node, lpath, "capacity_bytes",
                                Json::Kind::Number, true, diags))
        positiveInt(*cap, lpath + "/capacity_bytes", 0,
                    &level.capacityBytes, diags);
    if (const Json *read = field(*node, lpath, "read_bpc",
                                 Json::Kind::Number, true, diags)) {
        level.readBytesPerCycle = read->asNumber();
        if (!(level.readBytesPerCycle >= 0.0))
            diags.push_back({"bad-bandwidth", lpath + "/read_bpc",
                             "bandwidth must be >= 0"});
    }
    if (const Json *write = field(*node, lpath, "write_bpc",
                                  Json::Kind::Number, true, diags)) {
        level.writeBytesPerCycle = write->asNumber();
        if (!(level.writeBytesPerCycle >= 0.0))
            diags.push_back({"bad-bandwidth", lpath + "/write_bpc",
                             "bandwidth must be >= 0"});
    }
    return level;
}

} // namespace

TargetLoadResult
targetFromSpecJson(const Json &doc)
{
    std::vector<SpecDiag> diags;

    auto parsed = isa::parseIntrinsicSpec(doc);
    if (!parsed.ok())
        return {std::nullopt, std::move(parsed.diags)};

    if (doc.kind() != Json::Kind::Object || !doc.has("hardware")) {
        diags.push_back({"missing-field", "/hardware",
                         "spec-loaded targets need a 'hardware' "
                         "section (intrinsic-only specs derive "
                         "through isa/spec.hh instead)"});
        return {std::nullopt, std::move(diags)};
    }

    auto variants = isa::deriveVariants(*parsed.spec);
    if (!variants.ok())
        return {std::nullopt, std::move(variants.diags)};

    const Json &hwNode = doc.get("hardware");
    std::string path = "/hardware";
    HardwareSpec spec;

    if (const Json *name = field(hwNode, path, "name",
                                 Json::Kind::String, true, diags)) {
        spec.name = name->asString();
        if (spec.name.empty())
            diags.push_back({"empty-name", path + "/name",
                             "hardware name must be non-empty"});
    }
    std::int64_t n = 0;
    if (const Json *cores = field(hwNode, path, "cores",
                                  Json::Kind::Number, true, diags)) {
        if (positiveInt(*cores, path + "/cores", 1, &n, diags))
            spec.numCores = static_cast<int>(n);
    }
    if (const Json *sub = field(hwNode, path, "subcores_per_core",
                                Json::Kind::Number, true, diags)) {
        if (positiveInt(*sub, path + "/subcores_per_core", 1, &n,
                        diags))
            spec.subcoresPerCore = static_cast<int>(n);
    }
    if (const Json *clock = field(hwNode, path, "clock_ghz",
                                  Json::Kind::Number, true, diags)) {
        spec.clockGhz = clock->asNumber();
        if (!(spec.clockGhz > 0.0))
            diags.push_back({"bad-clock", path + "/clock_ghz",
                             "clock must be > 0 GHz"});
    }
    spec.global = parseLevel(hwNode, path, "global", diags);
    spec.shared = parseLevel(hwNode, path, "shared", diags);
    spec.reg = parseLevel(hwNode, path, "reg", diags);

    if (const Json *launch =
            field(hwNode, path, "launch_overhead_cycles",
                  Json::Kind::Number, false, diags))
        spec.launchOverheadCycles = launch->asNumber();
    if (const Json *framework =
            field(hwNode, path, "framework_overhead_cycles",
                  Json::Kind::Number, false, diags))
        spec.frameworkOverheadCycles = framework->asNumber();
    if (const Json *blocks =
            field(hwNode, path, "max_blocks_per_core",
                  Json::Kind::Number, false, diags)) {
        if (positiveInt(*blocks, path + "/max_blocks_per_core", 1,
                        &n, diags))
            spec.maxBlocksPerCore = static_cast<int>(n);
    }
    if (const Json *lanes =
            field(hwNode, path, "scalar_lanes_per_core",
                  Json::Kind::Number, false, diags)) {
        if (positiveInt(*lanes, path + "/scalar_lanes_per_core", 1,
                        &n, diags))
            spec.scalarLanesPerCore = static_cast<int>(n);
    }

    if (!diags.empty())
        return {std::nullopt, std::move(diags)};

    spec.intrinsics = std::move(variants.intrinsics);
    return {std::move(spec), {}};
}

TargetLoadResult
targetFromSpecText(const std::string &text)
{
    try {
        return targetFromSpecJson(Json::parse(text));
    } catch (const FatalError &err) {
        return {std::nullopt, {{"bad-json", "", err.what()}}};
    }
}

TargetLoadResult
targetFromSpecFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        return {std::nullopt,
                {{"unreadable-file", "",
                  "cannot read spec file '" + path + "'"}}};
    }
    std::ostringstream text;
    text << in.rdbuf();
    return targetFromSpecText(text.str());
}

const std::vector<std::string> &
embeddedTargetNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &name : isa::embeddedSpecNames()) {
            const char *text = isa::embeddedSpecText(name);
            try {
                if (Json::parse(text).has("hardware"))
                    out.push_back(name);
            } catch (const FatalError &) {
                // Unparsable embedded specs are caught by the spec
                // test suite; never a reason to crash name listing.
            }
        }
        return out;
    }();
    return names;
}

HardwareSpec
embeddedTarget(const std::string &name)
{
    const char *text = isa::embeddedSpecText(name);
    if (text == nullptr)
        fatal("unknown embedded ISA spec '", name, "'");
    auto loaded = targetFromSpecText(text);
    if (!loaded.ok())
        fatal("embedded spec target '", name, "' is invalid:\n",
              isa::diagsToString(loaded.diags));
    return std::move(*loaded.hardware);
}

} // namespace hw
} // namespace amos
