#include "operators.hh"

#include "support/logging.hh"

namespace amos {
namespace ops {

namespace {

/** Input spatial extent implied by valid convolution. */
std::int64_t
inExtent(std::int64_t out, std::int64_t kernel, std::int64_t stride,
         std::int64_t dilation)
{
    return (out - 1) * stride + (kernel - 1) * dilation + 1;
}

IterVar
spatial(const std::string &name, std::int64_t extent)
{
    return {Var(name), extent, IterKind::Spatial};
}

IterVar
reduce(const std::string &name, std::int64_t extent)
{
    return {Var(name), extent, IterKind::Reduction};
}

} // namespace

TensorComputation
makeGemv(std::int64_t m, std::int64_t k, DataType dtype)
{
    IterVar i = spatial("i", m);
    IterVar r = reduce("k", k);
    TensorDecl a("A", {m, k}, dtype);
    TensorDecl x("x", {k}, dtype);
    TensorDecl out("out", {m}, dtype);
    return TensorComputation(
        "gemv", {i, r}, out, {i.var},
        {{a, {i.var, r.var}}, {x, {r.var}}});
}

TensorComputation
makeGemm(std::int64_t m, std::int64_t n, std::int64_t k, DataType dtype)
{
    IterVar i = spatial("i", m);
    IterVar j = spatial("j", n);
    IterVar r = reduce("k", k);
    TensorDecl a("A", {m, k}, dtype);
    TensorDecl b("B", {k, n}, dtype);
    TensorDecl out("out", {m, n}, dtype);
    return TensorComputation(
        "gemm", {i, j, r}, out, {i.var, j.var},
        {{a, {i.var, r.var}}, {b, {r.var, j.var}}});
}

TensorComputation
makeConv1d(std::int64_t batch, std::int64_t in_channels,
           std::int64_t out_channels, std::int64_t out_len,
           std::int64_t kernel, std::int64_t stride, DataType dtype)
{
    IterVar n = spatial("n", batch);
    IterVar k = spatial("k", out_channels);
    IterVar p = spatial("p", out_len);
    IterVar c = reduce("c", in_channels);
    IterVar r = reduce("r", kernel);
    std::int64_t in_len = inExtent(out_len, kernel, stride, 1);
    TensorDecl in("in", {batch, in_channels, in_len}, dtype);
    TensorDecl w("w", {out_channels, in_channels, kernel}, dtype);
    TensorDecl out("out", {batch, out_channels, out_len}, dtype);
    return TensorComputation(
        "conv1d", {n, k, p, c, r}, out, {n.var, k.var, p.var},
        {{in, {n.var, c.var, p.var * stride + r.var}},
         {w, {k.var, c.var, r.var}}});
}

TensorComputation
makeConv2d(const ConvParams &pr)
{
    IterVar n = spatial("n", pr.batch);
    IterVar k = spatial("k", pr.out_channels);
    IterVar p = spatial("p", pr.out_h);
    IterVar q = spatial("q", pr.out_w);
    IterVar c = reduce("c", pr.in_channels);
    IterVar r = reduce("r", pr.kernel_h);
    IterVar s = reduce("s", pr.kernel_w);
    std::int64_t in_h =
        inExtent(pr.out_h, pr.kernel_h, pr.stride, pr.dilation);
    std::int64_t in_w =
        inExtent(pr.out_w, pr.kernel_w, pr.stride, pr.dilation);
    TensorDecl in("in", {pr.batch, pr.in_channels, in_h, in_w},
                  pr.dtype);
    TensorDecl w("w",
                 {pr.out_channels, pr.in_channels, pr.kernel_h,
                  pr.kernel_w},
                 pr.dtype);
    TensorDecl out("out", {pr.batch, pr.out_channels, pr.out_h,
                           pr.out_w},
                   pr.dtype);
    return TensorComputation(
        "conv2d", {n, k, p, q, c, r, s}, out,
        {n.var, k.var, p.var, q.var},
        {{in,
          {n.var, c.var, p.var * pr.stride + r.var * pr.dilation,
           q.var * pr.stride + s.var * pr.dilation}},
         {w, {k.var, c.var, r.var, s.var}}});
}

TensorComputation
makeConv2dNHWC(const ConvParams &pr)
{
    IterVar n = spatial("n", pr.batch);
    IterVar p = spatial("p", pr.out_h);
    IterVar q = spatial("q", pr.out_w);
    IterVar k = spatial("k", pr.out_channels);
    IterVar c = reduce("c", pr.in_channels);
    IterVar r = reduce("r", pr.kernel_h);
    IterVar s = reduce("s", pr.kernel_w);
    std::int64_t in_h =
        inExtent(pr.out_h, pr.kernel_h, pr.stride, pr.dilation);
    std::int64_t in_w =
        inExtent(pr.out_w, pr.kernel_w, pr.stride, pr.dilation);
    TensorDecl in("in", {pr.batch, in_h, in_w, pr.in_channels},
                  pr.dtype);
    TensorDecl w("w",
                 {pr.kernel_h, pr.kernel_w, pr.in_channels,
                  pr.out_channels},
                 pr.dtype);
    TensorDecl out("out", {pr.batch, pr.out_h, pr.out_w,
                           pr.out_channels},
                   pr.dtype);
    return TensorComputation(
        "conv2d_nhwc", {n, p, q, k, c, r, s}, out,
        {n.var, p.var, q.var, k.var},
        {{in,
          {n.var, p.var * pr.stride + r.var * pr.dilation,
           q.var * pr.stride + s.var * pr.dilation, c.var}},
         {w, {r.var, s.var, c.var, k.var}}});
}

TensorComputation
makeConv3d(const ConvParams &pr, std::int64_t out_d,
           std::int64_t kernel_d)
{
    IterVar n = spatial("n", pr.batch);
    IterVar k = spatial("k", pr.out_channels);
    IterVar d = spatial("d", out_d);
    IterVar p = spatial("p", pr.out_h);
    IterVar q = spatial("q", pr.out_w);
    IterVar c = reduce("c", pr.in_channels);
    IterVar t = reduce("t", kernel_d);
    IterVar r = reduce("r", pr.kernel_h);
    IterVar s = reduce("s", pr.kernel_w);
    std::int64_t in_d = inExtent(out_d, kernel_d, pr.stride, 1);
    std::int64_t in_h =
        inExtent(pr.out_h, pr.kernel_h, pr.stride, pr.dilation);
    std::int64_t in_w =
        inExtent(pr.out_w, pr.kernel_w, pr.stride, pr.dilation);
    TensorDecl in("in",
                  {pr.batch, pr.in_channels, in_d, in_h, in_w},
                  pr.dtype);
    TensorDecl w("w",
                 {pr.out_channels, pr.in_channels, kernel_d,
                  pr.kernel_h, pr.kernel_w},
                 pr.dtype);
    TensorDecl out("out",
                   {pr.batch, pr.out_channels, out_d, pr.out_h,
                    pr.out_w},
                   pr.dtype);
    return TensorComputation(
        "conv3d", {n, k, d, p, q, c, t, r, s}, out,
        {n.var, k.var, d.var, p.var, q.var},
        {{in,
          {n.var, c.var, d.var * pr.stride + t.var,
           p.var * pr.stride + r.var * pr.dilation,
           q.var * pr.stride + s.var * pr.dilation}},
         {w, {k.var, c.var, t.var, r.var, s.var}}});
}

TensorComputation
makeTransposedConv2d(const ConvParams &pr)
{
    // Zero-stuffed-input formulation: the input is conceptually
    // upsampled by `stride` with zero insertion, then convolved with
    // stride 1. All accesses stay affine; the cost is that adjacent
    // output pixels read different weight sub-pixel phases, which is
    // why p and q carry tensorize barriers.
    ConvParams stuffed = pr;
    stuffed.stride = 1;
    auto comp = makeConv2d(stuffed);

    TensorComputation t2d(
        "transposed_conv2d", comp.iters(), comp.output(),
        comp.outputIndices(),
        {comp.inputs()[0], comp.inputs()[1]});
    for (const auto &iv : t2d.iters()) {
        if (iv.name() == "p" || iv.name() == "q")
            t2d.addTensorizeBarrier(iv.var.node());
    }
    return t2d;
}

TensorComputation
makeGroupConv2d(const ConvParams &pr, std::int64_t groups)
{
    expect(pr.in_channels % 1 == 0 && groups > 0,
           "group conv: invalid group count");
    IterVar n = spatial("n", pr.batch);
    IterVar g = spatial("g", groups);
    IterVar k = spatial("k", pr.out_channels);
    IterVar p = spatial("p", pr.out_h);
    IterVar q = spatial("q", pr.out_w);
    IterVar c = reduce("c", pr.in_channels);
    IterVar r = reduce("r", pr.kernel_h);
    IterVar s = reduce("s", pr.kernel_w);
    std::int64_t in_h =
        inExtent(pr.out_h, pr.kernel_h, pr.stride, pr.dilation);
    std::int64_t in_w =
        inExtent(pr.out_w, pr.kernel_w, pr.stride, pr.dilation);
    // in_channels / out_channels are per-group extents here.
    TensorDecl in("in",
                  {pr.batch, groups, pr.in_channels, in_h, in_w},
                  pr.dtype);
    TensorDecl w("w",
                 {groups, pr.out_channels, pr.in_channels,
                  pr.kernel_h, pr.kernel_w},
                 pr.dtype);
    TensorDecl out("out",
                   {pr.batch, groups, pr.out_channels, pr.out_h,
                    pr.out_w},
                   pr.dtype);
    return TensorComputation(
        "group_conv2d", {n, g, k, p, q, c, r, s}, out,
        {n.var, g.var, k.var, p.var, q.var},
        {{in,
          {n.var, g.var, c.var,
           p.var * pr.stride + r.var * pr.dilation,
           q.var * pr.stride + s.var * pr.dilation}},
         {w, {g.var, k.var, c.var, r.var, s.var}}});
}

TensorComputation
makeDilatedConv2d(const ConvParams &pr)
{
    expect(pr.dilation > 1,
           "dilated conv: dilation must exceed 1, got ", pr.dilation);
    auto comp = makeConv2d(pr);
    return TensorComputation(
        "dilated_conv2d", comp.iters(), comp.output(),
        comp.outputIndices(),
        {comp.inputs()[0], comp.inputs()[1]});
}

TensorComputation
makeDepthwiseConv2d(const ConvParams &pr, std::int64_t multiplier)
{
    IterVar n = spatial("n", pr.batch);
    IterVar c = spatial("c", pr.in_channels);
    IterVar m = spatial("m", multiplier);
    IterVar p = spatial("p", pr.out_h);
    IterVar q = spatial("q", pr.out_w);
    IterVar r = reduce("r", pr.kernel_h);
    IterVar s = reduce("s", pr.kernel_w);
    std::int64_t in_h =
        inExtent(pr.out_h, pr.kernel_h, pr.stride, pr.dilation);
    std::int64_t in_w =
        inExtent(pr.out_w, pr.kernel_w, pr.stride, pr.dilation);
    TensorDecl in("in", {pr.batch, pr.in_channels, in_h, in_w},
                  pr.dtype);
    TensorDecl w("w",
                 {pr.in_channels, multiplier, pr.kernel_h,
                  pr.kernel_w},
                 pr.dtype);
    TensorDecl out("out",
                   {pr.batch, pr.in_channels, multiplier, pr.out_h,
                    pr.out_w},
                   pr.dtype);
    return TensorComputation(
        "depthwise_conv2d", {n, c, m, p, q, r, s}, out,
        {n.var, c.var, m.var, p.var, q.var},
        {{in,
          {n.var, c.var, p.var * pr.stride + r.var * pr.dilation,
           q.var * pr.stride + s.var * pr.dilation}},
         {w, {c.var, m.var, r.var, s.var}}});
}

TensorComputation
makeCapsuleConv2d(const ConvParams &pr, std::int64_t capsule_dim)
{
    IterVar n = spatial("n", pr.batch);
    IterVar k = spatial("k", pr.out_channels);
    IterVar p = spatial("p", pr.out_h);
    IterVar q = spatial("q", pr.out_w);
    IterVar ci = spatial("ci", capsule_dim);
    IterVar cj = spatial("cj", capsule_dim);
    IterVar c = reduce("c", pr.in_channels);
    IterVar r = reduce("r", pr.kernel_h);
    IterVar s = reduce("s", pr.kernel_w);
    IterVar ck = reduce("ck", capsule_dim);
    std::int64_t in_h =
        inExtent(pr.out_h, pr.kernel_h, pr.stride, pr.dilation);
    std::int64_t in_w =
        inExtent(pr.out_w, pr.kernel_w, pr.stride, pr.dilation);
    TensorDecl in("in",
                  {pr.batch, pr.in_channels, in_h, in_w, capsule_dim,
                   capsule_dim},
                  pr.dtype);
    TensorDecl w("w",
                 {pr.out_channels, pr.in_channels, pr.kernel_h,
                  pr.kernel_w, capsule_dim, capsule_dim},
                 pr.dtype);
    TensorDecl out("out",
                   {pr.batch, pr.out_channels, pr.out_h, pr.out_w,
                    capsule_dim, capsule_dim},
                   pr.dtype);
    return TensorComputation(
        "capsule_conv2d", {n, k, p, q, ci, cj, c, r, s, ck}, out,
        {n.var, k.var, p.var, q.var, ci.var, cj.var},
        {{in,
          {n.var, c.var, p.var * pr.stride + r.var,
           q.var * pr.stride + s.var, ci.var, ck.var}},
         {w, {k.var, c.var, r.var, s.var, ck.var, cj.var}}});
}

TensorComputation
makeBatchedConv2d(const ConvParams &pr)
{
    IterVar n = spatial("n", pr.batch);
    IterVar k = spatial("k", pr.out_channels);
    IterVar p = spatial("p", pr.out_h);
    IterVar q = spatial("q", pr.out_w);
    IterVar c = reduce("c", pr.in_channels);
    IterVar r = reduce("r", pr.kernel_h);
    IterVar s = reduce("s", pr.kernel_w);
    std::int64_t in_h =
        inExtent(pr.out_h, pr.kernel_h, pr.stride, pr.dilation);
    std::int64_t in_w =
        inExtent(pr.out_w, pr.kernel_w, pr.stride, pr.dilation);
    TensorDecl in("in", {pr.batch, pr.in_channels, in_h, in_w},
                  pr.dtype);
    TensorDecl w("w",
                 {pr.batch, pr.out_channels, pr.in_channels,
                  pr.kernel_h, pr.kernel_w},
                 pr.dtype);
    TensorDecl out("out", {pr.batch, pr.out_channels, pr.out_h,
                           pr.out_w},
                   pr.dtype);
    return TensorComputation(
        "batched_conv2d", {n, k, p, q, c, r, s}, out,
        {n.var, k.var, p.var, q.var},
        {{in,
          {n.var, c.var, p.var * pr.stride + r.var,
           q.var * pr.stride + s.var}},
         {w, {n.var, k.var, c.var, r.var, s.var}}});
}

TensorComputation
makeGroupedFC(std::int64_t batch, std::int64_t groups,
              std::int64_t out_features, std::int64_t in_features,
              DataType dtype)
{
    IterVar b = spatial("b", batch);
    IterVar g = spatial("g", groups);
    IterVar n = spatial("n", out_features);
    IterVar k = reduce("k", in_features);
    TensorDecl in("in", {batch, groups, in_features}, dtype);
    TensorDecl w("w", {groups, out_features, in_features}, dtype);
    TensorDecl out("out", {batch, groups, out_features}, dtype);
    return TensorComputation(
        "grouped_fc", {b, g, n, k}, out, {b.var, g.var, n.var},
        {{in, {b.var, g.var, k.var}},
         {w, {g.var, n.var, k.var}}});
}

TensorComputation
makeMean(std::int64_t rows, std::int64_t cols, DataType dtype)
{
    IterVar i = spatial("i", rows);
    IterVar k = reduce("k", cols);
    TensorDecl in("in", {rows, cols}, dtype);
    TensorDecl scale("inv_k", {cols}, dtype);
    TensorDecl out("out", {rows}, dtype);
    return TensorComputation(
        "mean", {i, k}, out, {i.var},
        {{in, {i.var, k.var}}, {scale, {k.var}}});
}

TensorComputation
makeVariance(std::int64_t rows, std::int64_t cols, DataType dtype)
{
    IterVar i = spatial("i", rows);
    IterVar k = reduce("k", cols);
    TensorDecl in("in", {rows, cols}, dtype);
    TensorDecl out("out", {rows}, dtype);
    return TensorComputation(
        "variance", {i, k}, out, {i.var},
        {{in, {i.var, k.var}}, {in, {i.var, k.var}}});
}

TensorComputation
makeScan(std::int64_t rows, std::int64_t cols, DataType dtype)
{
    IterVar i = spatial("i", rows);
    IterVar j = spatial("j", cols);
    IterVar k = reduce("k", cols);
    TensorDecl in("in", {rows, cols}, dtype);
    TensorDecl tri("lower_tri", {cols, cols}, dtype);
    TensorDecl out("out", {rows, cols}, dtype);
    return TensorComputation(
        "scan", {i, j, k}, out, {i.var, j.var},
        {{in, {i.var, k.var}}, {tri, {k.var, j.var}}});
}

TensorComputation
quantizedVariant(const TensorComputation &comp, DataType in0,
                 DataType in1)
{
    std::vector<DataType> inputs;
    inputs.push_back(in0);
    if (comp.inputs().size() > 1)
        inputs.push_back(in1);
    return comp.withOperandDtypes(inputs, DataType::I32);
}

TensorComputation
bf16Variant(const TensorComputation &comp)
{
    std::vector<DataType> inputs(comp.inputs().size(),
                                 DataType::BF16);
    return comp.withOperandDtypes(inputs, DataType::F32);
}

TensorComputation
makeQuantizedGemm(std::int64_t m, std::int64_t n, std::int64_t k,
                  DataType a, DataType b)
{
    return quantizedVariant(makeGemm(m, n, k), a, b);
}

TensorComputation
makeQuantizedConv2d(const ConvParams &params, DataType a, DataType b)
{
    return quantizedVariant(makeConv2d(params), a, b);
}

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::GMV: return "GMV";
      case OpKind::GMM: return "GMM";
      case OpKind::C1D: return "C1D";
      case OpKind::C2D: return "C2D";
      case OpKind::C3D: return "C3D";
      case OpKind::T2D: return "T2D";
      case OpKind::GRP: return "GRP";
      case OpKind::DIL: return "DIL";
      case OpKind::DEP: return "DEP";
      case OpKind::CAP: return "CAP";
      case OpKind::BCV: return "BCV";
      case OpKind::GFC: return "GFC";
      case OpKind::MEN: return "MEN";
      case OpKind::VAR: return "VAR";
      case OpKind::SCN: return "SCN";
    }
    return "?";
}

const std::vector<OpKind> &
allOpKinds()
{
    static const std::vector<OpKind> kinds = {
        OpKind::GMV, OpKind::GMM, OpKind::C1D, OpKind::C2D,
        OpKind::C3D, OpKind::T2D, OpKind::GRP, OpKind::DIL,
        OpKind::DEP, OpKind::CAP, OpKind::BCV, OpKind::GFC,
        OpKind::MEN, OpKind::VAR, OpKind::SCN,
    };
    return kinds;
}

TensorComputation
buildRepresentative(OpKind kind, std::int64_t batch)
{
    switch (kind) {
      case OpKind::GMV:
        // MI-LSTM hidden projection at batch 1 collapses to GEMV.
        return makeGemv(1024, 1024 * batch);
      case OpKind::GMM:
        // Bert-base attention projection.
        return makeGemm(batch * 512, 768, 768);
      case OpKind::C1D:
        // Temporal convolution (e.g. speech frontends).
        return makeConv1d(batch, 64, 128, 128, 3);
      case OpKind::C2D:
        // ResNet-18 C5.
        return makeConv2d({batch, 128, 128, 28, 28, 3, 3, 1, 1,
                           DataType::F16});
      case OpKind::C3D:
        // Video conv (SlowFast-style).
        return makeConv3d({batch, 64, 64, 28, 28, 3, 3, 1, 1,
                           DataType::F16},
                          8, 3);
      case OpKind::T2D:
        // Decoder upsampling (DCGAN-style).
        return makeTransposedConv2d({batch, 128, 64, 28, 28, 3, 3, 2,
                                     1, DataType::F16});
      case OpKind::GRP:
        // ShuffleNet grouped 1x1-ish stage (3x3 for generality).
        return makeGroupConv2d({batch, 32, 32, 28, 28, 3, 3, 1, 1,
                                DataType::F16},
                               4);
      case OpKind::DIL:
        // DeepLab atrous convolution.
        return makeDilatedConv2d({batch, 128, 128, 28, 28, 3, 3, 1, 2,
                                  DataType::F16});
      case OpKind::DEP:
        // MobileNet depthwise stage.
        return makeDepthwiseConv2d({batch, 128, 128, 28, 28, 3, 3, 1,
                                    1, DataType::F16});
      case OpKind::CAP:
        // CapsNet convolutional capsule layer.
        return makeCapsuleConv2d({batch, 8, 16, 6, 6, 3, 3, 1, 1,
                                  DataType::F16},
                                 4);
      case OpKind::BCV:
        // CondConv per-sample expert kernels.
        return makeBatchedConv2d({batch * 8, 64, 64, 14, 14, 3, 3, 1,
                                  1, DataType::F16});
      case OpKind::GFC:
        // WeightNet grouped fully-connected.
        return makeGroupedFC(batch, 16, 64, 128);
      case OpKind::MEN:
        return makeMean(batch * 512, 768);
      case OpKind::VAR:
        return makeVariance(batch * 512, 768);
      case OpKind::SCN:
        return makeScan(batch * 64, 256);
    }
    panic("buildRepresentative: unknown kind");
}

namespace {

template <OpKind Kind>
TensorComputation
buildAt(std::int64_t batch)
{
    return buildRepresentative(Kind, batch);
}

} // namespace

const std::vector<OpConfig> &
operatorSuite()
{
    static const std::vector<OpConfig> suite = {
        {OpKind::GMV, "GMV", &buildAt<OpKind::GMV>},
        {OpKind::GMM, "GMM", &buildAt<OpKind::GMM>},
        {OpKind::C1D, "C1D", &buildAt<OpKind::C1D>},
        {OpKind::C2D, "C2D", &buildAt<OpKind::C2D>},
        {OpKind::C3D, "C3D", &buildAt<OpKind::C3D>},
        {OpKind::T2D, "T2D", &buildAt<OpKind::T2D>},
        {OpKind::GRP, "GRP", &buildAt<OpKind::GRP>},
        {OpKind::DIL, "DIL", &buildAt<OpKind::DIL>},
        {OpKind::DEP, "DEP", &buildAt<OpKind::DEP>},
        {OpKind::CAP, "CAP", &buildAt<OpKind::CAP>},
        {OpKind::BCV, "BCV", &buildAt<OpKind::BCV>},
        {OpKind::GFC, "GFC", &buildAt<OpKind::GFC>},
        {OpKind::MEN, "MEN", &buildAt<OpKind::MEN>},
        {OpKind::VAR, "VAR", &buildAt<OpKind::VAR>},
        {OpKind::SCN, "SCN", &buildAt<OpKind::SCN>},
    };
    return suite;
}

} // namespace ops
} // namespace amos
