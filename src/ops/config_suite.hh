/**
 * @file
 * The full single-operator configuration suite of Sec. 7.3: the
 * paper evaluates 113 configurations (7–8 per operator family),
 * "all extracted from real-world networks". This table rebuilds a
 * suite of the same size and provenance: ResNet-18/50, MobileNet,
 * ShuffleNet, Bert, MI-LSTM, DeepLab, CondConv, WeightNet, CapsNet,
 * video CNNs, and decoder upsampling stacks.
 */

#ifndef AMOS_OPS_CONFIG_SUITE_HH
#define AMOS_OPS_CONFIG_SUITE_HH

#include <functional>
#include <string>
#include <vector>

#include "ops/operators.hh"

namespace amos {
namespace ops {

/** One evaluated configuration: provenance label + builder. */
struct SuiteEntry
{
    OpKind kind;
    std::string label; ///< e.g. "C2D/resnet50-l2"
    std::function<TensorComputation(std::int64_t batch)> build;
};

/**
 * The full configuration suite (113 entries, 7-8 per family).
 * Builders take the batch size; every entry builds and runs on all
 * modelled accelerators.
 */
const std::vector<SuiteEntry> &configSuite();

/** The suite filtered to one operator family. */
std::vector<SuiteEntry> configsOf(OpKind kind);

} // namespace ops
} // namespace amos

#endif // AMOS_OPS_CONFIG_SUITE_HH
