#include "conv_layers.hh"

namespace amos {
namespace ops {

TensorComputation
ConvLayerConfig::build(DataType dtype) const
{
    ConvParams pr;
    pr.batch = batch;
    pr.in_channels = in_channels;
    pr.out_channels = out_channels;
    pr.out_h = height;
    pr.out_w = width;
    pr.kernel_h = kernel;
    pr.kernel_w = kernel;
    pr.stride = stride;
    pr.dtype = dtype;
    return makeConv2d(pr);
}

TensorComputation
ConvLayerConfig::buildDepthwise(DataType dtype) const
{
    ConvParams pr;
    pr.batch = batch;
    pr.in_channels = in_channels;
    pr.out_channels = in_channels;
    pr.out_h = height;
    pr.out_w = width;
    pr.kernel_h = kernel;
    pr.kernel_w = kernel;
    pr.stride = stride;
    pr.dtype = dtype;
    return makeDepthwiseConv2d(pr, 1);
}

std::vector<ConvLayerConfig>
resnet18ConvLayers(std::int64_t batch)
{
    // Table 5 of the paper: n, c, k, p(=q), r(=s), stride for each
    // distinct ResNet-18 convolution. p/q are output spatial sizes.
    return {
        {"C0", batch, 3, 64, 112, 112, 7, 2},
        {"C1", batch, 64, 64, 56, 56, 3, 1},
        {"C2", batch, 64, 64, 56, 56, 1, 1},
        {"C3", batch, 64, 128, 28, 28, 3, 2},
        {"C4", batch, 64, 128, 28, 28, 1, 2},
        {"C5", batch, 128, 128, 28, 28, 3, 1},
        {"C6", batch, 128, 256, 14, 14, 3, 2},
        {"C7", batch, 128, 256, 14, 14, 1, 2},
        {"C8", batch, 256, 256, 14, 14, 3, 1},
        {"C9", batch, 256, 512, 7, 7, 3, 2},
        {"C10", batch, 256, 512, 7, 7, 1, 2},
        {"C11", batch, 512, 512, 7, 7, 3, 1},
    };
}

std::vector<ConvLayerConfig>
mobilenetV2Layers(std::int64_t batch)
{
    // Seven depthwise stages of MobileNet-V2 (input resolution 224):
    // channel count, spatial size, and stride per inverted-residual
    // stage.
    return {
        {"L1", batch, 32, 32, 112, 112, 3, 1},
        {"L2", batch, 96, 96, 56, 56, 3, 2},
        {"L3", batch, 144, 144, 56, 56, 3, 1},
        {"L4", batch, 144, 144, 28, 28, 3, 2},
        {"L5", batch, 192, 192, 28, 28, 3, 1},
        {"L6", batch, 384, 384, 14, 14, 3, 1},
        {"L7", batch, 576, 576, 14, 14, 3, 1},
    };
}

} // namespace ops
} // namespace amos
