/**
 * @file
 * Operator library: factory functions building the TensorComputation
 * for every workload evaluated in the AMOS paper (Sec. 7.3):
 * GEMV, GEMM, 1D/2D/3D convolution, transposed / grouped / dilated /
 * depthwise / capsule / batched convolution, grouped fully-connected,
 * mean, variance, and scan.
 *
 * Conventions:
 *  - Convolutions are expressed in "valid" form over an implicitly
 *    pre-padded input: the factories take *output* spatial sizes and
 *    derive the input extent (out-1)*stride + (kernel-1)*dilation + 1.
 *  - Transposed convolution uses the zero-stuffed-input formulation
 *    so all accesses stay affine; its output spatial iterators carry
 *    tensorize barriers (see TensorComputation::addTensorizeBarrier).
 *  - Mean is written as a dot with a constant 1/K vector, variance as
 *    a self-product reduction, and scan as multiplication by a
 *    constant lower-triangular ones matrix: these are exactly the
 *    forms that make them tensorizable on matmul-like intrinsics.
 */

#ifndef AMOS_OPS_OPERATORS_HH
#define AMOS_OPS_OPERATORS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/computation.hh"

namespace amos {
namespace ops {

/** Matrix-vector multiply: out[i] += A[i,k] x[k]. */
TensorComputation makeGemv(std::int64_t m, std::int64_t k,
                           DataType dtype = DataType::F16);

/** Matrix-matrix multiply: out[i,j] += A[i,k] B[k,j]. */
TensorComputation makeGemm(std::int64_t m, std::int64_t n,
                           std::int64_t k,
                           DataType dtype = DataType::F16);

/** Parameters shared by the convolution family. */
struct ConvParams
{
    std::int64_t batch = 1;
    std::int64_t in_channels = 1;
    std::int64_t out_channels = 1;
    std::int64_t out_h = 1;   ///< output height (P)
    std::int64_t out_w = 1;   ///< output width (Q)
    std::int64_t kernel_h = 1;
    std::int64_t kernel_w = 1;
    std::int64_t stride = 1;
    std::int64_t dilation = 1;
    DataType dtype = DataType::F16;
};

/** 1D convolution: out[n,k,p] += in[n,c,p*st+r] w[k,c,r]. */
TensorComputation makeConv1d(std::int64_t batch,
                             std::int64_t in_channels,
                             std::int64_t out_channels,
                             std::int64_t out_len,
                             std::int64_t kernel,
                             std::int64_t stride = 1,
                             DataType dtype = DataType::F16);

/**
 * 2D convolution (NCHW):
 * out[n,k,p,q] += in[n,c,p*st+r*dil,q*st+s*dil] w[k,c,r,s].
 */
TensorComputation makeConv2d(const ConvParams &params);

/**
 * 2D convolution in channels-last (NHWC/RSCK) layout:
 * out[n,p,q,k] += in[n,p*st+r*dil,q*st+s*dil,c] w[r,s,c,k].
 * Same mathematics as makeConv2d; only tensor layouts differ —
 * which is exactly what layout-gated templates are sensitive to
 * and AMOS is not (Sec. 7.3).
 */
TensorComputation makeConv2dNHWC(const ConvParams &params);

/** 3D convolution: adds depth dims d (output) and t (kernel). */
TensorComputation makeConv3d(const ConvParams &params,
                             std::int64_t out_d, std::int64_t kernel_d);

/**
 * Transposed 2D convolution in zero-stuffed-input form; `stride` is
 * the upsampling factor. Output spatial iterators are tensorize
 * barriers.
 */
TensorComputation makeTransposedConv2d(const ConvParams &params);

/** Grouped 2D convolution with `groups` channel groups. */
TensorComputation makeGroupConv2d(const ConvParams &params,
                                  std::int64_t groups);

/** Dilated 2D convolution (ConvParams::dilation > 1). */
TensorComputation makeDilatedConv2d(const ConvParams &params);

/**
 * Depthwise 2D convolution with channel multiplier:
 * out[n,c,m,p,q] += in[n,c,p+r,q+s] w[c,m,r,s].
 */
TensorComputation makeDepthwiseConv2d(const ConvParams &params,
                                      std::int64_t multiplier = 1);

/**
 * Capsule 2D convolution (pose-matrix form):
 * out[n,k,p,q,ci,cj] += in[n,c,p+r,q+s,ci,ck] w[k,c,r,s,ck,cj].
 */
TensorComputation makeCapsuleConv2d(const ConvParams &params,
                                    std::int64_t capsule_dim = 4);

/**
 * Batched (conditionally parameterised) convolution with per-sample
 * weights: out[n,k,p,q] += in[n,c,p+r,q+s] w[n,k,c,r,s].
 */
TensorComputation makeBatchedConv2d(const ConvParams &params);

/**
 * Grouped fully-connected: out[b,g,n] += in[b,g,k] w[g,n,k].
 */
TensorComputation makeGroupedFC(std::int64_t batch, std::int64_t groups,
                                std::int64_t out_features,
                                std::int64_t in_features,
                                DataType dtype = DataType::F16);

/**
 * Row mean as a dot with a constant 1/K vector:
 * out[i] += in[i,k] ones_over_k[k].
 */
TensorComputation makeMean(std::int64_t rows, std::int64_t cols,
                           DataType dtype = DataType::F16);

/**
 * Row second moment (variance building block):
 * out[i] += in[i,k] in[i,k].
 */
TensorComputation makeVariance(std::int64_t rows, std::int64_t cols,
                               DataType dtype = DataType::F16);

/**
 * Inclusive scan by constant triangular matrix:
 * out[i,j] += in[i,k] lower_tri[k,j].
 */
TensorComputation makeScan(std::int64_t rows, std::int64_t cols,
                           DataType dtype = DataType::F16);

/**
 * Quantized variant of any computation from this library: every
 * input is retyped to an 8-bit integer dtype and the output to i32
 * (the exact widening-accumulate discipline — see
 * quant/semantics.hh). The defaults follow the common asymmetric
 * activations x symmetric weights convention (u8 data, i8 weights);
 * single-input computations use `in0`. Shapes, accesses, and
 * barriers are preserved verbatim, so mapping counts are directly
 * comparable with the float variant.
 */
TensorComputation quantizedVariant(const TensorComputation &comp,
                                   DataType in0 = DataType::U8,
                                   DataType in1 = DataType::I8);

/** bf16 variant: bf16 inputs, f32 accumulator output. */
TensorComputation bf16Variant(const TensorComputation &comp);

/** Quantized GEMM: u8/i8 inputs (by default), i32 accumulators. */
TensorComputation makeQuantizedGemm(std::int64_t m, std::int64_t n,
                                    std::int64_t k,
                                    DataType a = DataType::U8,
                                    DataType b = DataType::I8);

/** Quantized 2D convolution (NCHW), i32 accumulators. */
TensorComputation makeQuantizedConv2d(const ConvParams &params,
                                      DataType a = DataType::U8,
                                      DataType b = DataType::I8);

/** Identifier of each operator family (paper's abbreviations). */
enum class OpKind
{
    GMV, GMM, C1D, C2D, C3D, T2D, GRP, DIL, DEP, CAP, BCV, GFC,
    MEN, VAR, SCN,
};

/** Paper abbreviation for an operator kind. */
const char *opKindName(OpKind kind);

/** All operator kinds in the paper's presentation order. */
const std::vector<OpKind> &allOpKinds();

/**
 * A representative configuration of an operator kind, as used by the
 * single-operator evaluation (Sec. 7.3 tests 113 configurations drawn
 * from real networks).
 */
struct OpConfig
{
    OpKind kind;
    std::string label;
    /// Factory thunk result: the computation at a given batch size.
    TensorComputation (*build)(std::int64_t batch);
};

/**
 * The representative configuration suite: several configurations per
 * operator kind, with shapes drawn from the networks the paper cites
 * (ResNet, MobileNet, ShuffleNet, Bert, MI-LSTM, CondConv, CapsNet).
 */
const std::vector<OpConfig> &operatorSuite();

/** Build one representative computation of the given kind. */
TensorComputation buildRepresentative(OpKind kind,
                                      std::int64_t batch = 1);

} // namespace ops
} // namespace amos

#endif // AMOS_OPS_OPERATORS_HH
