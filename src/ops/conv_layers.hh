/**
 * @file
 * Named convolution-layer configuration suites used by the paper's
 * evaluation: the twelve distinct C2D layers of ResNet-18 (Table 5,
 * labelled C0..C11) and the seven depthwise/conv layer pairs of
 * MobileNet-V2 used in the Mali experiment (Fig. 8b).
 */

#ifndef AMOS_OPS_CONV_LAYERS_HH
#define AMOS_OPS_CONV_LAYERS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ops/operators.hh"

namespace amos {
namespace ops {

/** One convolution layer configuration (Table 5 row). */
struct ConvLayerConfig
{
    std::string label;
    std::int64_t batch;
    std::int64_t in_channels;
    std::int64_t out_channels;
    std::int64_t height;  ///< output height
    std::int64_t width;   ///< output width
    std::int64_t kernel;
    std::int64_t stride;

    /** Build the C2D computation for this layer. */
    TensorComputation build(DataType dtype = DataType::F16) const;

    /** Build the depthwise variant with the same spatial shape. */
    TensorComputation buildDepthwise(
        DataType dtype = DataType::F16) const;
};

/**
 * The twelve distinct ResNet-18 convolution layers of Table 5
 * (C0..C11) at the given batch size (the paper uses 16).
 */
std::vector<ConvLayerConfig> resnet18ConvLayers(
    std::int64_t batch = 16);

/**
 * The seven MobileNet-V2 layer configurations used for the Mali
 * experiment (Fig. 8b): each has a pointwise/regular conv and a
 * depthwise sibling.
 */
std::vector<ConvLayerConfig> mobilenetV2Layers(std::int64_t batch = 1);

} // namespace ops
} // namespace amos

#endif // AMOS_OPS_CONV_LAYERS_HH
