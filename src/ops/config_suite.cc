#include "config_suite.hh"

namespace amos {
namespace ops {

namespace {

ConvParams
cp(std::int64_t cin, std::int64_t cout, std::int64_t size,
   std::int64_t kernel, std::int64_t stride = 1,
   std::int64_t dilation = 1)
{
    ConvParams pr;
    pr.in_channels = cin;
    pr.out_channels = cout;
    pr.out_h = pr.out_w = size;
    pr.kernel_h = pr.kernel_w = kernel;
    pr.stride = stride;
    pr.dilation = dilation;
    return pr;
}

ConvParams
at(ConvParams pr, std::int64_t batch)
{
    pr.batch = batch;
    return pr;
}

std::vector<SuiteEntry>
buildSuite()
{
    std::vector<SuiteEntry> s;
    auto add = [&s](OpKind kind, std::string label,
                    std::function<TensorComputation(std::int64_t)>
                        build) {
        s.push_back({kind, std::move(label), std::move(build)});
    };

    // --- GMV: batch-1 linear layers (MI-LSTM, classifiers). ---
    struct MV
    {
        const char *tag;
        std::int64_t m, k;
    };
    for (MV row : std::initializer_list<MV>{
             {"milstm-gate", 1024, 1024},
             {"milstm-wide", 2048, 1024},
             {"resnet50-fc", 1000, 2048},
             {"mobilenet-fc", 1000, 1024},
             {"bert-pooler", 768, 768},
             {"shufflenet-fc", 1000, 1088},
             {"lm-head", 4096, 1024},
             {"narrow", 256, 4096}}) {
        add(OpKind::GMV, std::string("GMV/") + row.tag,
            [row](std::int64_t batch) {
                return makeGemv(row.m, row.k * 1 + 0 * batch);
            });
    }

    // --- GMM: transformer projections and classifier matmuls. ---
    struct MM
    {
        const char *tag;
        std::int64_t m, n, k;
    };
    for (MM row : std::initializer_list<MM>{
             {"bert-qkv", 512, 768, 768},
             {"bert-ffn-up", 512, 3072, 768},
             {"bert-ffn-down", 512, 768, 3072},
             {"transformer-proj", 128, 512, 512},
             {"square-512", 512, 512, 512},
             {"tall", 2048, 256, 512},
             {"wide", 256, 2048, 512},
             {"deep-k", 256, 256, 4096}}) {
        add(OpKind::GMM, std::string("GMM/") + row.tag,
            [row](std::int64_t batch) {
                return makeGemm(row.m * batch, row.n, row.k);
            });
    }

    // --- C1D: temporal convolutions. ---
    struct C1
    {
        const char *tag;
        std::int64_t cin, cout, len, kernel, stride;
    };
    for (C1 row : std::initializer_list<C1>{
             {"speech-front", 64, 128, 128, 3, 1},
             {"wavenet-ish", 128, 128, 64, 5, 1},
             {"downsample", 128, 256, 64, 3, 2},
             {"deep", 256, 256, 32, 3, 1},
             {"wide-kernel", 64, 64, 96, 9, 1},
             {"narrow", 32, 64, 256, 3, 1},
             {"stride4", 64, 128, 32, 7, 4},
             {"head", 256, 512, 16, 3, 1}}) {
        add(OpKind::C1D, std::string("C1D/") + row.tag,
            [row](std::int64_t batch) {
                return makeConv1d(batch, row.cin, row.cout, row.len,
                                  row.kernel, row.stride);
            });
    }

    // --- C2D: ResNet-style convolutions. ---
    struct C2
    {
        const char *tag;
        ConvParams pr;
    };
    for (C2 row : std::initializer_list<C2>{
             {"resnet-c1", cp(64, 64, 56, 3)},
             {"resnet-c5", cp(128, 128, 28, 3)},
             {"resnet-c8", cp(256, 256, 14, 3)},
             {"resnet-c11", cp(512, 512, 7, 3)},
             {"strided", cp(64, 128, 28, 3, 2)},
             {"pointwise", cp(256, 512, 14, 1)},
             {"stem", cp(3, 64, 112, 7, 2)},
             {"wide", cp(64, 64, 56, 5)}}) {
        add(OpKind::C2D, std::string("C2D/") + row.tag,
            [row](std::int64_t batch) {
                return makeConv2d(at(row.pr, batch));
            });
    }

    // --- C3D: video convolutions. ---
    struct C3
    {
        const char *tag;
        ConvParams pr;
        std::int64_t depth, kdepth;
    };
    for (C3 row : std::initializer_list<C3>{
             {"slowfast", cp(32, 64, 28, 3), 8, 3},
             {"i3d-mid", cp(64, 64, 14, 3), 8, 3},
             {"i3d-deep", cp(128, 128, 7, 3), 4, 3},
             {"temporal-only", cp(64, 64, 14, 1), 8, 3},
             {"spatial-only", cp(64, 64, 14, 3), 8, 1},
             {"stem", cp(3, 32, 56, 5, 2), 8, 3},
             {"head", cp(256, 256, 4, 3), 2, 3}}) {
        add(OpKind::C3D, std::string("C3D/") + row.tag,
            [row](std::int64_t batch) {
                return makeConv3d(at(row.pr, batch), row.depth,
                                  row.kdepth);
            });
    }

    // --- T2D: decoder upsampling. ---
    for (C2 row : std::initializer_list<C2>{
             {"dcgan-1", cp(128, 64, 28, 3, 2)},
             {"dcgan-2", cp(256, 128, 14, 3, 2)},
             {"unet-up", cp(512, 256, 8, 2, 2)},
             {"seg-head", cp(64, 32, 56, 3, 2)},
             {"big-kernel", cp(128, 64, 14, 5, 2)},
             {"shallow", cp(32, 16, 56, 3, 2)},
             {"deep", cp(512, 512, 7, 3, 2)}}) {
        add(OpKind::T2D, std::string("T2D/") + row.tag,
            [row](std::int64_t batch) {
                return makeTransposedConv2d(at(row.pr, batch));
            });
    }

    // --- GRP: ShuffleNet / ResNeXt grouped convolutions. ---
    struct G2
    {
        const char *tag;
        ConvParams pr;
        std::int64_t groups;
    };
    for (G2 row : std::initializer_list<G2>{
             {"shufflenet-s2", cp(68, 17, 28, 1), 4},
             {"shufflenet-s3", cp(136, 34, 14, 1), 4},
             {"shufflenet-s4", cp(272, 68, 7, 1), 4},
             {"resnext", cp(4, 4, 14, 3), 32},
             {"two-group", cp(64, 64, 28, 3), 2},
             {"wide-group", cp(32, 32, 28, 3), 4},
             {"strided-group", cp(34, 34, 14, 3, 2), 4},
             {"deep-group", cp(16, 16, 7, 3), 8}}) {
        add(OpKind::GRP, std::string("GRP/") + row.tag,
            [row](std::int64_t batch) {
                return makeGroupConv2d(at(row.pr, batch),
                                       row.groups);
            });
    }

    // --- DIL: DeepLab atrous convolutions. ---
    for (C2 row : std::initializer_list<C2>{
             {"aspp-r2", cp(128, 128, 28, 3, 1, 2)},
             {"aspp-r4", cp(256, 256, 14, 3, 1, 4)},
             {"aspp-r6", cp(256, 256, 14, 3, 1, 6)},
             {"context", cp(64, 64, 56, 3, 1, 2)},
             {"deep", cp(512, 512, 7, 3, 1, 2)},
             {"wide-rate", cp(128, 128, 28, 3, 1, 8)},
             {"strided-dil", cp(128, 128, 14, 3, 2, 2)},
             {"small", cp(32, 32, 28, 3, 1, 2)}}) {
        add(OpKind::DIL, std::string("DIL/") + row.tag,
            [row](std::int64_t batch) {
                return makeDilatedConv2d(at(row.pr, batch));
            });
    }

    // --- DEP: MobileNet depthwise stages. ---
    struct D2
    {
        const char *tag;
        ConvParams pr;
        std::int64_t multiplier;
    };
    for (D2 row : std::initializer_list<D2>{
             {"mbv1-s2", cp(128, 0, 56, 3), 1},
             {"mbv1-s3", cp(256, 0, 28, 3), 1},
             {"mbv1-s4", cp(512, 0, 14, 3), 1},
             {"mbv1-s5", cp(1024, 0, 7, 3), 1},
             {"strided", cp(128, 0, 28, 3, 2), 1},
             {"multiplier-2", cp(64, 0, 28, 3), 2},
             {"big-kernel", cp(128, 0, 14, 5), 1},
             {"tiny", cp(32, 0, 112, 3), 1}}) {
        add(OpKind::DEP, std::string("DEP/") + row.tag,
            [row](std::int64_t batch) {
                return makeDepthwiseConv2d(at(row.pr, batch),
                                           row.multiplier);
            });
    }

    // --- CAP: capsule convolutions. ---
    for (G2 row : std::initializer_list<G2>{
             {"capsnet-prim", cp(8, 16, 6, 3), 4},
             {"capsnet-deep", cp(16, 16, 4, 3), 4},
             {"small-pose", cp(8, 8, 6, 3), 2},
             {"wide", cp(16, 32, 6, 3), 4},
             {"stride", cp(8, 16, 6, 3, 2), 4},
             {"tall", cp(8, 16, 10, 3), 4},
             {"mini", cp(4, 8, 4, 3), 4}}) {
        add(OpKind::CAP, std::string("CAP/") + row.tag,
            [row](std::int64_t batch) {
                return makeCapsuleConv2d(at(row.pr, batch),
                                         row.groups);
            });
    }

    // --- BCV: CondConv per-sample expert kernels. ---
    for (C2 row : std::initializer_list<C2>{
             {"condconv-mid", cp(64, 64, 14, 3)},
             {"condconv-deep", cp(128, 128, 7, 3)},
             {"condconv-wide", cp(128, 256, 14, 3)},
             {"pointwise", cp(256, 256, 14, 1)},
             {"strided", cp(64, 128, 14, 3, 2)},
             {"early", cp(32, 64, 28, 3)},
             {"late", cp(256, 512, 7, 3)}}) {
        add(OpKind::BCV, std::string("BCV/") + row.tag,
            [row](std::int64_t batch) {
                return makeBatchedConv2d(at(row.pr, batch * 8));
            });
    }

    // --- GFC: WeightNet grouped fully-connected. ---
    struct FC
    {
        const char *tag;
        std::int64_t groups, out, in;
    };
    for (FC row : std::initializer_list<FC>{
             {"weightnet-16", 16, 64, 128},
             {"weightnet-32", 32, 128, 64},
             {"few-groups", 4, 256, 256},
             {"many-groups", 64, 32, 32},
             {"wide", 16, 512, 128},
             {"deep", 16, 64, 1024},
             {"tiny", 8, 16, 16}}) {
        add(OpKind::GFC, std::string("GFC/") + row.tag,
            [row](std::int64_t batch) {
                return makeGroupedFC(batch, row.groups, row.out,
                                     row.in);
            });
    }

    // --- MEN / VAR: normalisation statistics. ---
    struct RC
    {
        const char *tag;
        std::int64_t rows, cols;
    };
    const std::initializer_list<RC> stat_rows = {
        {"bert-ln", 512, 768},    {"gpt-ln", 1024, 1024},
        {"vision-gn", 256, 3136}, {"small", 64, 256},
        {"wide", 128, 8192},      {"tall", 8192, 128},
        {"square", 1024, 1024}};
    for (RC row : stat_rows) {
        add(OpKind::MEN, std::string("MEN/") + row.tag,
            [row](std::int64_t batch) {
                return makeMean(row.rows * batch, row.cols);
            });
        add(OpKind::VAR, std::string("VAR/") + row.tag,
            [row](std::int64_t batch) {
                return makeVariance(row.rows * batch, row.cols);
            });
    }

    // --- SCN: scan / prefix-sum workloads. ---
    for (RC row : std::initializer_list<RC>{
             {"rows-64", 64, 256},
             {"rows-128", 128, 512},
             {"long", 32, 1024},
             {"short", 256, 64},
             {"square", 128, 128},
             {"wide", 16, 2048},
             {"tiny", 32, 32},
             {"batchy", 512, 128}}) {
        add(OpKind::SCN, std::string("SCN/") + row.tag,
            [row](std::int64_t batch) {
                return makeScan(row.rows * batch, row.cols);
            });
    }

    return s;
}

} // namespace

const std::vector<SuiteEntry> &
configSuite()
{
    static const std::vector<SuiteEntry> suite = buildSuite();
    return suite;
}

std::vector<SuiteEntry>
configsOf(OpKind kind)
{
    std::vector<SuiteEntry> out;
    for (const auto &entry : configSuite())
        if (entry.kind == kind)
            out.push_back(entry);
    return out;
}

} // namespace ops
} // namespace amos
