#include "jit.hh"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/dylib.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/subprocess.hh"
#include "support/trace.hh"

namespace amos {

namespace {

std::string
envOr(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? v : fallback;
}

std::string
hexKey(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

/** Unique per-process suffix for temp files next to the target. */
std::string
tempSuffix()
{
    static std::atomic<std::uint64_t> counter{0};
    return std::to_string(static_cast<long>(::getpid())) + "." +
           std::to_string(counter.fetch_add(1));
}

} // namespace

/** One cached kernel: a loaded library or a cached failure. */
struct JitEngine::Entry
{
    bool ready = false;
    bool failed = false;
    bool fromDisk = false;
    std::string why;
    ExecKernelFn fn = nullptr;
    DynamicLibrary lib;
};

JitOptions
JitOptions::fromEnv()
{
    JitOptions opts;
    opts.compiler = envOr("AMOS_JIT_CC", "cc");
    // -ffp-contract=off: fused multiply-adds change accumulation
    // bits, and the tier's contract is bit-identity with the
    // interpreter (C compilers default to contract=fast at -O3).
    opts.flags = envOr("AMOS_JIT_CFLAGS",
                       "-O3 -march=native -ffp-contract=off");
    opts.cacheDir = envOr("AMOS_JIT_CACHE_DIR",
                          envOr("TMPDIR", "/tmp") +
                              "/amos-jit-cache");
    return opts;
}

JitEngine::JitEngine(JitOptions opts) : _opts(std::move(opts)) {}

JitEngine::~JitEngine() = default;

JitEngine &
JitEngine::global()
{
    static JitEngine engine;
    return engine;
}

std::uint64_t
JitEngine::fnv1a(const std::string &data)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : data) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t
JitEngine::keyFor(const std::string &source) const
{
    return fnv1a(_opts.compiler + "\n" + _opts.flags + "\n" + source);
}

std::string
JitEngine::cachePathFor(const std::string &source) const
{
    return _opts.cacheDir + "/amos_jit_" + hexKey(keyFor(source)) +
           ".so";
}

bool
JitEngine::compilerAvailable(std::string *why)
{
    {
        std::lock_guard<std::mutex> lk(_mutex);
        if (_probed) {
            if (!_compilerOk && why)
                *why = "jit compiler '" + _opts.compiler +
                       "' is not available";
            return _compilerOk;
        }
    }
    // Probe outside the lock (runs a shell); racing probes agree.
    const bool ok = programAvailable(_opts.compiler);
    std::lock_guard<std::mutex> lk(_mutex);
    _probed = true;
    _compilerOk = ok;
    if (!ok && why)
        *why = "jit compiler '" + _opts.compiler +
               "' is not available";
    return ok;
}

JitStats
JitEngine::stats() const
{
    std::lock_guard<std::mutex> lk(_mutex);
    return _stats;
}

/**
 * Load-or-compile one kernel, without holding the engine lock. Only
 * the thread that inserted the entry runs this; everyone else waits
 * on the condition variable. Returns the entry with either `fn` or
 * (`failed`, `why`) filled; the caller publishes it.
 */
std::shared_ptr<JitEngine::Entry>
JitEngine::build(std::uint64_t key, const std::string &source)
{
    auto e = std::make_shared<Entry>();
    auto fail = [&](std::string why) {
        e->failed = true;
        e->why = std::move(why);
        return e;
    };

    std::error_code ec;
    std::filesystem::create_directories(_opts.cacheDir, ec);
    if (ec)
        return fail("cannot create jit cache dir '" + _opts.cacheDir +
                    "': " + ec.message());

    const std::string soPath =
        _opts.cacheDir + "/amos_jit_" + hexKey(key) + ".so";

    // Warm start: a previous process may have installed the object.
    // A corrupt or truncated file is deleted and rebuilt.
    if (std::filesystem::exists(soPath, ec) && !ec) {
        TraceSpan span("jit.cache_probe", "jit");
        span.arg("key", hexKey(key));
        std::string loadErr;
        if (e->lib.open(soPath, &loadErr)) {
            e->fn = reinterpret_cast<ExecKernelFn>(
                e->lib.symbol(kExecKernelSymbol, &loadErr));
            if (e->fn) {
                e->fromDisk = true;
                span.arg("hit", "disk");
                return e;
            }
        }
        AMOS_LOG(Debug) << "jit: discarding unusable cached object "
                        << soPath << ": " << loadErr;
        e->lib.close();
        std::filesystem::remove(soPath, ec);
        MetricsRegistry::global()
            .counter("jit.corrupt_cache_evictions")
            .add();
        span.arg("hit", "evicted");
    }

    std::string why;
    if (!compilerAvailable(&why))
        return fail(std::move(why));

    const std::string suffix = tempSuffix();
    const std::string srcPath = soPath + "." + suffix + ".c";
    const std::string tmpSo = soPath + "." + suffix + ".tmp";
    {
        std::ofstream src(srcPath);
        src << source;
        if (!src)
            return fail("cannot write jit source file " + srcPath);
    }

    SharedObjectJob job;
    job.compiler = _opts.compiler;
    job.flags = _opts.flags;
    job.sourcePath = srcPath;
    job.outputPath = tmpSo;
    std::string errText;
    bool compiled;
    {
        TraceSpan span("jit.compile", "jit");
        span.arg("key", hexKey(key));
        compiled = compileSharedObject(job, &errText);
        span.arg("ok", compiled ? "true" : "false");
    }
    std::filesystem::remove(srcPath, ec);
    if (!compiled)
        return fail("jit compile failed: " + errText);

    // Atomic install: readers only ever see complete objects.
    if (std::rename(tmpSo.c_str(), soPath.c_str()) != 0) {
        std::filesystem::remove(tmpSo, ec);
        return fail("cannot install jit object at " + soPath);
    }

    std::string loadErr;
    TraceSpan span("jit.dlopen", "jit");
    span.arg("key", hexKey(key));
    if (!e->lib.open(soPath, &loadErr))
        return fail("cannot load jit object: " + loadErr);
    e->fn = reinterpret_cast<ExecKernelFn>(
        e->lib.symbol(kExecKernelSymbol, &loadErr));
    if (!e->fn)
        return fail("jit object misses its entry point: " + loadErr);
    return e;
}

ExecKernelFn
JitEngine::getOrCompile(const std::string &source, std::string *why)
{
    const std::uint64_t key = keyFor(source);
    std::shared_ptr<Entry> entry;
    bool owner = false;
    {
        std::unique_lock<std::mutex> lk(_mutex);
        auto &slot = _table[key];
        if (!slot) {
            slot = std::make_shared<Entry>();
            owner = true;
        }
        entry = slot;
        if (!owner) {
            // Coalesce: wait for the in-flight compile (or pick up a
            // finished — possibly negative — result immediately).
            _ready.wait(lk, [&] { return entry->ready; });
            if (!entry->failed)
                ++_stats.memoryHits;
            if (entry->failed && why)
                *why = entry->why;
            return entry->fn;
        }
    }

    auto built = build(key, source);
    {
        std::lock_guard<std::mutex> lk(_mutex);
        entry->failed = built->failed;
        entry->fromDisk = built->fromDisk;
        entry->why = built->why;
        entry->fn = built->fn;
        entry->lib = std::move(built->lib);
        entry->ready = true;
        if (entry->failed) {
            ++_stats.failures;
            MetricsRegistry::global()
                .counter("jit.failures")
                .add();
        } else if (entry->fromDisk) {
            ++_stats.diskHits;
            MetricsRegistry::global()
                .counter("jit.disk_hits")
                .add();
        } else {
            ++_stats.compiles;
            MetricsRegistry::global()
                .counter("jit.compiles")
                .add();
        }
    }
    _ready.notify_all();
    if (entry->failed && why)
        *why = entry->why;
    return entry->fn;
}

} // namespace amos
