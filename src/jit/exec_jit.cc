/**
 * @file
 * The executor-facing half of the JIT tier: lower the precompiled
 * plans to C via codegen/exec_c.hh, compile through the global
 * JitEngine, and run the resulting kernel. Installed into the
 * executors' hook points (tensor/jit_hook.hh, mapping/jit_hook.hh)
 * by a static registrar; binaries link amos_jit with WHOLE_ARCHIVE
 * (or call jit::ensureLinked()) so the registrar is not dropped.
 */

#include "codegen/exec_c.hh"
#include "jit/jit.hh"
#include "mapping/jit_hook.hh"
#include "tensor/jit_hook.hh"

namespace amos {

namespace {

/**
 * The emitted kernels declare their operand pointers restrict, so an
 * output buffer aliasing an input would be undefined behaviour — the
 * tier declines and the (alias-safe) stride walk runs instead.
 */
bool
outputAliasesInput(const Buffer &output,
                   const std::vector<const Buffer *> &inputs)
{
    const char *ob = static_cast<const char *>(output.rawData());
    const char *oe = ob + output.storageBytes();
    for (const Buffer *in : inputs) {
        const char *b = static_cast<const char *>(in->rawData());
        const char *e = b + in->storageBytes();
        if (b < oe && ob < e)
            return true;
    }
    return false;
}

bool
compileAndRun(const std::string &source,
              const std::vector<const Buffer *> &inputs,
              Buffer &output, std::string *why)
{
    ExecKernelFn fn = JitEngine::global().getOrCompile(source, why);
    if (!fn)
        return false;
    const void *ptrs[kMaxWalkOperands] = {nullptr};
    for (std::size_t i = 0; i < inputs.size(); ++i)
        ptrs[i] = inputs[i]->rawData();
    fn(ptrs, output.rawData());
    return true;
}

bool
jitReferenceRun(const TensorComputation &comp,
                const AccessWalkPlan &plan,
                const std::vector<const Buffer *> &inputs,
                Buffer &output, std::string *why)
{
    if (outputAliasesInput(output, inputs)) {
        *why = "output buffer aliases an input";
        return false;
    }
    std::vector<DataType> dtypes;
    for (const auto &in : comp.inputs())
        dtypes.push_back(in.decl.dtype());
    dtypes.push_back(comp.output().dtype());
    const std::string source = generateWalkKernelC(
        plan, comp.combine(), inputs.size(),
        "reference nest of " + comp.name(), dtypes);
    return compileAndRun(source, inputs, output, why);
}

bool
jitMappedDirectRun(const MappingPlan &plan, const ExecPlan &ep,
                   const std::vector<const Buffer *> &inputs,
                   Buffer &output, std::string *why)
{
    if (outputAliasesInput(output, inputs)) {
        *why = "output buffer aliases an input";
        return false;
    }
    const std::string source = generateDirectKernelC(
        ep, "direct mapped nest of " + plan.computation().name());
    return compileAndRun(source, inputs, output, why);
}

bool
jitMappedPackedRun(const MappingPlan &plan, const ExecPlan &ep,
                   const std::vector<const Buffer *> &inputs,
                   Buffer &output, std::string *why)
{
    if (outputAliasesInput(output, inputs)) {
        *why = "output buffer aliases an input";
        return false;
    }
    const std::string source = generatePackedKernelC(
        ep, "packed mapped nest of " + plan.computation().name());
    return compileAndRun(source, inputs, output, why);
}

const ReferenceJitHook kReferenceHook{&jitReferenceRun};
const MappedJitHooks kMappedHooks{&jitMappedDirectRun,
                                  &jitMappedPackedRun};

void
installHooks()
{
    setReferenceJitHook(&kReferenceHook);
    setMappedJitHooks(&kMappedHooks);
}

struct Registrar
{
    Registrar() { installHooks(); }
};
const Registrar g_registrar{};

} // namespace

namespace jit {

void
ensureLinked()
{
    installHooks();
}

} // namespace jit

} // namespace amos
