/**
 * @file
 * Native-codegen JIT execution tier: compile generated C kernels with
 * the system compiler, cache the shared objects, and hand back
 * callable function pointers.
 *
 * Cache design mirrors the tuning cache: the key is a content hash
 * (FNV-1a over compiler + flags + generated source), so identical
 * plans share one kernel across runs and across processes. Each
 * engine keeps an in-memory handle table (dlopen'd libraries +
 * resolved entry points, with in-flight compile coalescing and
 * negative-result caching) over an on-disk .so store; installs are
 * crash-safe (compile to a temp path, rename() into place), and a
 * corrupt or truncated .so is deleted and recompiled instead of
 * crashing the process.
 *
 * Environment knobs:
 *  - AMOS_JIT_CC        compiler driver (default "cc"); pointing this
 *                       at a nonexistent path exercises the fallback
 *  - AMOS_JIT_CFLAGS    optimisation flags (default
 *                       "-O3 -march=native -ffp-contract=off"; never
 *                       -ffast-math or FMA contraction — the
 *                       kernels' accumulation is bit-exact)
 *  - AMOS_JIT_CACHE_DIR on-disk store (default
 *                       $TMPDIR/amos-jit-cache)
 */

#ifndef AMOS_JIT_JIT_HH
#define AMOS_JIT_JIT_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "codegen/exec_c.hh"

namespace amos {

/** Compiler / cache configuration of one JIT engine. */
struct JitOptions
{
    std::string compiler = "cc";
    std::string flags = "-O3 -march=native";
    std::string cacheDir;

    /** Defaults overridden by the AMOS_JIT_* environment knobs. */
    static JitOptions fromEnv();
};

/** Monotonic counters of one engine (snapshot, test-visible). */
struct JitStats
{
    std::int64_t compiles = 0;    ///< real compiler invocations
    std::int64_t memoryHits = 0;  ///< served from the handle table
    std::int64_t diskHits = 0;    ///< dlopen'd a previously built .so
    std::int64_t failures = 0;    ///< compile or load failures
};

/**
 * A kernel cache + compiler driver. Thread-safe; concurrent requests
 * for the same source coalesce onto one compile. Most callers use
 * global(); tests construct private engines over scratch cache
 * directories.
 */
class JitEngine
{
  public:
    explicit JitEngine(JitOptions opts = JitOptions::fromEnv());
    ~JitEngine();

    JitEngine(const JitEngine &) = delete;
    JitEngine &operator=(const JitEngine &) = delete;

    /** The process-wide engine the executor hooks compile through. */
    static JitEngine &global();

    /**
     * Return the entry point of the kernel for `source`, compiling
     * and/or loading it if needed. Returns nullptr — with `why` —
     * when no compiler is available, compilation fails, or the built
     * object cannot be loaded; failures are cached so a broken
     * kernel is diagnosed once, not per execution.
     */
    ExecKernelFn getOrCompile(const std::string &source,
                              std::string *why);

    /** Probe (once) whether the configured compiler can run. */
    bool compilerAvailable(std::string *why = nullptr);

    const JitOptions &options() const { return _opts; }
    JitStats stats() const;

    /** Content hash of a kernel under this engine's configuration. */
    std::uint64_t keyFor(const std::string &source) const;
    /** On-disk .so path for `source` (test hook: corruption etc.). */
    std::string cachePathFor(const std::string &source) const;

    /** FNV-1a 64-bit, exposed for cache-key tests. */
    static std::uint64_t fnv1a(const std::string &data);

  private:
    struct Entry;

    std::shared_ptr<Entry> build(std::uint64_t key,
                                 const std::string &source);

    JitOptions _opts;
    mutable std::mutex _mutex;
    std::condition_variable _ready;
    std::map<std::uint64_t, std::shared_ptr<Entry>> _table;
    JitStats _stats;
    bool _probed = false;
    bool _compilerOk = false;
};

namespace jit {

/**
 * Force the executor hooks to be installed even when the linker
 * dropped the static registrar (see mapping/jit_hook.hh). Calling
 * this from any binary that links amos_jit is always safe.
 */
void ensureLinked();

} // namespace jit

} // namespace amos

#endif // AMOS_JIT_JIT_HH
