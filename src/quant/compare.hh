/**
 * @file
 * Tolerance-aware buffer comparison for the differential suites.
 *
 * Two regimes:
 *
 *  - Exact: integer accumulation (and any engine-vs-engine check) is
 *    deterministic, so the comparison is per-lane bit equality — a
 *    single flipped bit fails.
 *  - Bounded: value-changing paths (requantization, bf16 input
 *    rounding) are compared against a float reference within
 *    |got - want| <= absTol + relTol * |want|.
 *
 * defaultToleranceFor() picks the regime from the output dtype:
 * integer outputs are exact, float-class outputs get the documented
 * bounds (docs/execution.md).
 */

#ifndef AMOS_QUANT_COMPARE_HH
#define AMOS_QUANT_COMPARE_HH

#include <cstdint>
#include <string>

#include "tensor/dtype.hh"
#include "tensor/tensor.hh"

namespace amos {
namespace quant {

/** Comparison regime + bounds. */
struct ToleranceSpec
{
    bool exact = true;   ///< bit equality per lane
    double absTol = 0.0; ///< bounded regime: absolute term
    double relTol = 0.0; ///< bounded regime: relative term

    static ToleranceSpec exactly() { return ToleranceSpec{}; }
    static ToleranceSpec
    bounded(double absTol, double relTol)
    {
        return ToleranceSpec{false, absTol, relTol};
    }
};

/**
 * Default regime per output dtype: exact for integer lanes, bounded
 * (1e-5 abs, 1e-4 rel) for f16/f32, and a looser 1e-2 relative bound
 * for bf16's 8-bit mantissa.
 */
ToleranceSpec defaultToleranceFor(DataType outputDtype);

/** Outcome of one comparison. */
struct CompareResult
{
    bool pass = false;
    std::int64_t failures = 0;    ///< lanes out of tolerance
    std::int64_t worstIndex = -1; ///< flat index of the worst lane
    double maxAbsErr = 0.0;
    double maxRelErr = 0.0;

    /** One-line human summary for test failure messages. */
    std::string summary() const;
};

/**
 * Compare `got` against `want` under `spec`. Sizes must match; under
 * the exact regime the storage lanes must match too (comparing an
 * i32 buffer against a float buffer bit-exactly is a harness bug).
 */
CompareResult compareBuffers(const Buffer &got, const Buffer &want,
                             const ToleranceSpec &spec);

} // namespace quant
} // namespace amos

#endif // AMOS_QUANT_COMPARE_HH
