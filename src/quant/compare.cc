#include "compare.hh"

#include <cmath>

#include "quant/semantics.hh"
#include "support/logging.hh"

namespace amos {
namespace quant {

ToleranceSpec
defaultToleranceFor(DataType outputDtype)
{
    switch (outputDtype) {
      case DataType::I8:
      case DataType::U8:
      case DataType::I32:
        return ToleranceSpec::exactly();
      case DataType::BF16:
        return ToleranceSpec::bounded(1e-2, 1e-2);
      case DataType::F16:
      case DataType::F32:
        return ToleranceSpec::bounded(1e-5, 1e-4);
    }
    std::abort(); // unreachable for in-range enumerators
}

std::string
CompareResult::summary() const
{
    if (pass)
        return "pass (maxAbsErr " + std::to_string(maxAbsErr) + ")";
    return std::to_string(failures) +
           " lane(s) out of tolerance; worst at index " +
           std::to_string(worstIndex) + ": absErr " +
           std::to_string(maxAbsErr) + ", relErr " +
           std::to_string(maxRelErr);
}

CompareResult
compareBuffers(const Buffer &got, const Buffer &want,
               const ToleranceSpec &spec)
{
    CompareResult result;
    require(got.size() == want.size(),
            "compareBuffers: size mismatch ", got.size(), " vs ",
            want.size());

    if (spec.exact) {
        require(storageKindOf(got.decl().dtype()) ==
                    storageKindOf(want.decl().dtype()),
                "compareBuffers(exact): storage lanes differ (",
                dtypeName(got.decl().dtype()), " vs ",
                dtypeName(want.decl().dtype()), ")");
        result.pass = got.bitEqual(want);
        if (result.pass)
            return result;
        // Locate the worst lane for the failure message.
        for (std::size_t i = 0; i < got.size(); ++i) {
            const auto idx = static_cast<std::int64_t>(i);
            const double g = got.at(idx);
            const double w = want.at(idx);
            const double abs_err = std::fabs(g - w);
            const bool differs =
                abs_err > 0 || std::signbit(g) != std::signbit(w) ||
                std::isnan(g) != std::isnan(w);
            if (!differs)
                continue;
            ++result.failures;
            if (abs_err >= result.maxAbsErr) {
                result.maxAbsErr = abs_err;
                result.worstIndex = idx;
            }
        }
        if (result.failures == 0) {
            // Bit difference invisible through the float view (e.g.
            // NaN payloads): report index 0 as a placeholder.
            result.failures = 1;
            result.worstIndex = 0;
        }
        return result;
    }

    result.pass = true;
    for (std::size_t i = 0; i < got.size(); ++i) {
        const auto idx = static_cast<std::int64_t>(i);
        const double g = got.at(idx);
        const double w = want.at(idx);
        const double abs_err = std::fabs(g - w);
        const double rel_err =
            w != 0.0 ? abs_err / std::fabs(w) : abs_err;
        const bool ok =
            abs_err <= spec.absTol + spec.relTol * std::fabs(w);
        if (abs_err > result.maxAbsErr) {
            result.maxAbsErr = abs_err;
            if (!ok || result.worstIndex < 0)
                result.worstIndex = idx;
        }
        result.maxRelErr = std::max(result.maxRelErr, rel_err);
        if (!ok) {
            result.pass = false;
            ++result.failures;
            result.worstIndex = idx;
        }
    }
    return result;
}

} // namespace quant
} // namespace amos
