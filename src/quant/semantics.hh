/**
 * @file
 * Execution semantics of a typed computation.
 *
 * The functional engines (reference interpreter, stride-walk ExecPlan,
 * JIT) run one of three numeric disciplines, chosen once per
 * computation from the declared operand dtypes:
 *
 *  - F32:    float-lane operands (f16/f32 declarations both store
 *            host floats), float multiply-accumulate — the historical
 *            behaviour and the default.
 *  - IntDot: 8-bit integer inputs (i8/u8 in any mix), i32 output.
 *            Widening multiply with exact int32 accumulation (the
 *            arithmetic runs in int64 and wraps into int32 two's
 *            complement, so it is sanitizer-clean even on adversarial
 *            inputs). Bit-exact across every engine and thread count.
 *  - Bf16:   bf16 inputs, f32 output. Inputs widen exactly, the
 *            accumulator is f32 — the standard mixed-precision dot
 *            product, also bit-exact across engines.
 *
 * Any other dtype combination is unsupported: classify() reports why,
 * and the executors refuse it up front instead of silently computing
 * in the wrong domain. bf16 *accumulation* (a bf16 output) is
 * deliberately out: per-step rounding would make the packed path
 * (which accumulates in staging buffers) diverge from the direct
 * path, breaking the engines' bit-exactness contract.
 *
 * Header-only on purpose: the reference executor (amos_tensor) sits
 * below the amos_quant library in the link graph but still needs to
 * classify computations.
 */

#ifndef AMOS_QUANT_SEMANTICS_HH
#define AMOS_QUANT_SEMANTICS_HH

#include <string>

#include "tensor/computation.hh"
#include "tensor/dtype.hh"

namespace amos {
namespace quant {

/** Host storage lane of a dtype (see tensor/tensor.hh). */
using StorageKind = StorageLane;

/** Storage lane a dtype is kept in at runtime. */
inline StorageKind
storageKindOf(DataType t)
{
    return dtypeStorageLane(t);
}

/** True iff the dtype lives in the host-float lane or bf16. */
inline bool
dtypeIsFloatClass(DataType t)
{
    return t == DataType::F16 || t == DataType::F32 ||
           t == DataType::BF16;
}

/** True iff the dtype is an 8-bit integer (i8 or u8). */
inline bool
dtypeIsInt8Class(DataType t)
{
    return t == DataType::I8 || t == DataType::U8;
}

/** Numeric discipline of one computation (see file comment). */
enum class KernelSemantics
{
    F32,
    IntDot,
    Bf16,
};

/** Stable lowercase name ("f32", "intdot", "bf16"). */
inline const char *
kernelSemanticsName(KernelSemantics k)
{
    switch (k) {
      case KernelSemantics::F32: return "f32";
      case KernelSemantics::IntDot: return "intdot";
      case KernelSemantics::Bf16: return "bf16";
    }
    std::abort(); // unreachable for in-range enumerators
}

/** Outcome of classifying a computation's operand dtypes. */
struct SemanticsInfo
{
    bool supported = false;
    KernelSemantics kind = KernelSemantics::F32;
    std::string reason; ///< why unsupported (empty when supported)
};

/**
 * Classify a computation's operand dtypes into one of the three
 * engine disciplines, or report why no engine can run it.
 */
inline SemanticsInfo
classifyComputation(const TensorComputation &comp)
{
    SemanticsInfo info;
    const DataType out = comp.output().dtype();

    bool allHostFloat = storageKindOf(out) == StorageKind::F32;
    bool allBf16In = !comp.inputs().empty();
    bool allInt8In = !comp.inputs().empty();
    for (const auto &in : comp.inputs()) {
        const DataType t = in.decl.dtype();
        allHostFloat =
            allHostFloat && storageKindOf(t) == StorageKind::F32;
        allBf16In = allBf16In && t == DataType::BF16;
        allInt8In = allInt8In && dtypeIsInt8Class(t);
    }

    if (allHostFloat) {
        info.supported = true;
        info.kind = KernelSemantics::F32;
        return info;
    }
    if (allInt8In && out == DataType::I32) {
        info.supported = true;
        info.kind = KernelSemantics::IntDot;
        return info;
    }
    if (allBf16In && out == DataType::F32) {
        info.supported = true;
        info.kind = KernelSemantics::Bf16;
        return info;
    }

    std::string types;
    for (const auto &in : comp.inputs())
        types += dtypeName(in.decl.dtype()) + ",";
    types += "->" + dtypeName(out);
    if (allBf16In && out == DataType::BF16)
        info.reason =
            "bf16 accumulation is unsupported (" + types +
            "); declare an f32 output for bf16 inputs";
    else if (allInt8In)
        info.reason = "int8 inputs require an i32 output, got " +
                      types;
    else
        info.reason =
            "no engine discipline for operand dtypes " + types +
            " (supported: float-lane, i8/u8->i32, bf16->f32)";
    return info;
}

/**
 * One exact widening multiply-accumulate step of the IntDot
 * discipline: acc + a * b in int64, wrapped into int32 two's
 * complement. Every engine — including the emitted C — performs
 * exactly this operation, so integer results are bit-identical.
 */
inline std::int32_t
intDotStep(std::int32_t acc, std::int64_t a, std::int64_t b)
{
    return static_cast<std::int32_t>(
        static_cast<std::int64_t>(acc) + a * b);
}

} // namespace quant
} // namespace amos

#endif // AMOS_QUANT_SEMANTICS_HH
