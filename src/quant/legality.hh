/**
 * @file
 * Dtype legality of a software-to-intrinsic mapping.
 *
 * The compute abstraction (Sec. 4.1) declares an element type per
 * intrinsic operand — avx512_vnni_dpbusds is u8,i8 -> i32, wmma is
 * f16 -> f16 — and a mapping is only meaningful when the software
 * operands live in the same numeric class: an fp32 GEMM cannot
 * tensorize onto a VNNI dot product, an int8 GEMM cannot tensorize
 * onto wmma. The check is by *width class*, not exact dtype:
 *
 *   float class  f16 | f32 | bf16   <->  f16 | f32 | bf16
 *   int8 class   i8 | u8            <->  i8 | u8
 *   int32        i32                <->  i32
 *
 * Signedness and exact float width stay software-side decisions (the
 * functional model executes the software dtypes; the hardware
 * declaration constrains the class the unit physically consumes).
 * Dtype legality is enforced in two places: enumerateMappings()
 * rejects illegal (computation, intrinsic) pairs before searching,
 * and MappingPlan validation fails so a hand-built illegal mapping
 * can never execute or be tuned.
 */

#ifndef AMOS_QUANT_LEGALITY_HH
#define AMOS_QUANT_LEGALITY_HH

#include <string>

#include "isa/abstraction.hh"
#include "tensor/computation.hh"
#include "tensor/dtype.hh"

namespace amos {
namespace quant {

/** True iff a software operand dtype may feed a hardware operand. */
bool operandDtypeCompatible(DataType sw, DataType hw);

/** Outcome of a dtype-legality check. */
struct DtypeLegality
{
    bool legal = false;
    std::string reason; ///< first violation (empty when legal)
};

/**
 * Check every (software operand, intrinsic operand) pair — inputs
 * against srcs in order, output against dst. Operand-count or
 * combine-kind mismatches are reported as illegal rather than
 * panicking, so callers may probe arbitrary pairs.
 */
DtypeLegality checkDtypeLegality(const TensorComputation &comp,
                                 const ComputeAbstraction &intr);

} // namespace quant
} // namespace amos

#endif // AMOS_QUANT_LEGALITY_HH
