#include "legality.hh"

#include "quant/semantics.hh"

namespace amos {
namespace quant {

namespace {

/** Width class used for compatibility (see header). */
enum class DtypeClass
{
    Float,
    Int8,
    Int32,
};

DtypeClass
classOf(DataType t)
{
    if (dtypeIsFloatClass(t))
        return DtypeClass::Float;
    if (dtypeIsInt8Class(t))
        return DtypeClass::Int8;
    return DtypeClass::Int32;
}

} // namespace

bool
operandDtypeCompatible(DataType sw, DataType hw)
{
    return classOf(sw) == classOf(hw);
}

DtypeLegality
checkDtypeLegality(const TensorComputation &comp,
                   const ComputeAbstraction &intr)
{
    DtypeLegality result;
    if (comp.inputs().size() != intr.numSrcs()) {
        result.reason = "operand count mismatch: " +
                        std::to_string(comp.inputs().size()) +
                        " software inputs vs " +
                        std::to_string(intr.numSrcs()) +
                        " intrinsic srcs";
        return result;
    }
    if (comp.combine() != intr.combine()) {
        result.reason = "combine kind mismatch";
        return result;
    }
    for (std::size_t i = 0; i < comp.inputs().size(); ++i) {
        const DataType sw = comp.inputs()[i].decl.dtype();
        const DataType hw = intr.srcs()[i].dtype;
        if (!operandDtypeCompatible(sw, hw)) {
            result.reason = "input " + std::to_string(i) + " (" +
                            comp.inputs()[i].decl.name() + ":" +
                            dtypeName(sw) + ") incompatible with " +
                            intr.name() + "." + intr.srcs()[i].name +
                            ":" + dtypeName(hw);
            return result;
        }
    }
    const DataType swOut = comp.output().dtype();
    const DataType hwOut = intr.dst().dtype;
    if (!operandDtypeCompatible(swOut, hwOut)) {
        result.reason = "output (" + comp.output().name() + ":" +
                        dtypeName(swOut) + ") incompatible with " +
                        intr.name() + "." + intr.dst().name + ":" +
                        dtypeName(hwOut);
        return result;
    }
    result.legal = true;
    return result;
}

} // namespace quant
} // namespace amos
