/**
 * @file
 * Typed operand accessors + dispatch for the functional engines.
 *
 * The stride-walk templates (tensor/access_walk.hh) and the mapped
 * walkers (mapping/exec_plan.cc) are address generators: they hand a
 * body flat addresses and know nothing about element types. This
 * header supplies the other half — tiny pointer-like accessors over a
 * Buffer's storage lane, and a dispatcher that instantiates a generic
 * body once per *legal* dtype combination (see semantics.hh):
 *
 *   F32    : FloatLoader x{1,2} -> FloatAccum      (1 combo)
 *   Bf16   : Bf16Loader  x{1,2} -> FloatAccum      (1 combo)
 *   IntDot : {I8,U8}Loader^n    -> I32Accum        (<= 4 combos)
 *
 * Loaders return the arithmetic type of their discipline (float or
 * int64), accumulators wrap the discipline's exact add — so each
 * engine writes one body per combine kind and gets every dtype path
 * with identical accumulation order.
 */

#ifndef AMOS_QUANT_TYPED_EXEC_HH
#define AMOS_QUANT_TYPED_EXEC_HH

#include <cstdint>

#include "quant/bf16.hh"
#include "quant/semantics.hh"
#include "support/logging.hh"
#include "tensor/tensor.hh"

namespace amos {
namespace quant {

/** Float-lane reader (declared f16 or f32; host floats). */
struct FloatLoader
{
    const float *p;
    float load(std::int64_t a) const { return p[a]; }
};

/** bf16-lane reader: exact widening on every load. */
struct Bf16Loader
{
    const std::uint16_t *p;
    float load(std::int64_t a) const { return floatFromBf16(p[a]); }
};

/** i8-lane reader, widened to the int64 arithmetic domain. */
struct I8Loader
{
    const std::int8_t *p;
    std::int64_t load(std::int64_t a) const { return p[a]; }
};

/** u8-lane reader, widened to the int64 arithmetic domain. */
struct U8Loader
{
    const std::uint8_t *p;
    std::int64_t load(std::int64_t a) const { return p[a]; }
};

/** Float accumulator / store target. */
struct FloatAccum
{
    float *p;
    void add(std::int64_t a, float v) const { p[a] += v; }
    void store(std::int64_t a, float v) const { p[a] = v; }
    float load(std::int64_t a) const { return p[a]; }
};

/** Exact int32 accumulator (int64 arithmetic, wrapping cast). */
struct I32Accum
{
    std::int32_t *p;
    void add(std::int64_t a, std::int64_t v) const
    {
        p[a] = static_cast<std::int32_t>(
            static_cast<std::int64_t>(p[a]) + v);
    }
    void store(std::int64_t a, std::int64_t v) const
    {
        p[a] = static_cast<std::int32_t>(v);
    }
    std::int64_t load(std::int64_t a) const { return p[a]; }
};

/**
 * Invoke fn(loader) with the accessor matching an 8-bit input lane.
 */
template <typename Fn>
void
withInt8Loader(const Buffer &buf, Fn &&fn)
{
    if (buf.decl().dtype() == DataType::I8)
        fn(I8Loader{buf.i8Data()});
    else
        fn(U8Loader{buf.u8Data()});
}

/**
 * Dispatch a two-input multiply-add body over the computation's
 * discipline: calls fn(in0, in1, out) with accessors whose load/add
 * types match. The semantics must be supported (callers classify and
 * reject first) and the buffers must already be lane-checked.
 */
template <typename Fn>
void
dispatchMulAdd(const SemanticsInfo &sem, const Buffer &in0,
               const Buffer &in1, Buffer &out, Fn &&fn)
{
    require(sem.supported, "dispatchMulAdd: unsupported semantics: ",
            sem.reason);
    switch (sem.kind) {
      case KernelSemantics::F32:
        fn(FloatLoader{in0.data()}, FloatLoader{in1.data()},
           FloatAccum{out.data()});
        return;
      case KernelSemantics::Bf16:
        fn(Bf16Loader{in0.bf16Data()}, Bf16Loader{in1.bf16Data()},
           FloatAccum{out.data()});
        return;
      case KernelSemantics::IntDot:
        withInt8Loader(in0, [&](auto l0) {
            withInt8Loader(in1, [&](auto l1) {
                fn(l0, l1, I32Accum{out.i32Data()});
            });
        });
        return;
    }
}

/** Single-input (SumReduce) variant: calls fn(in0, out). */
template <typename Fn>
void
dispatchSum(const SemanticsInfo &sem, const Buffer &in0, Buffer &out,
            Fn &&fn)
{
    require(sem.supported, "dispatchSum: unsupported semantics: ",
            sem.reason);
    switch (sem.kind) {
      case KernelSemantics::F32:
        fn(FloatLoader{in0.data()}, FloatAccum{out.data()});
        return;
      case KernelSemantics::Bf16:
        fn(Bf16Loader{in0.bf16Data()}, FloatAccum{out.data()});
        return;
      case KernelSemantics::IntDot:
        withInt8Loader(in0,
                       [&](auto l0) { fn(l0, I32Accum{out.i32Data()}); });
        return;
    }
}

} // namespace quant
} // namespace amos

#endif // AMOS_QUANT_TYPED_EXEC_HH
