/**
 * @file
 * Affine quantization parameters and requantization.
 *
 * The standard uniform-affine scheme: a real value r is represented
 * by an integer q with r = scale * (q - zeroPoint). Inputs quantize
 * with round-to-nearest (half away from zero, like std::lround) and
 * saturate to the dtype's range; an i32 accumulator requantizes back
 * to int8 by rescaling with the product of the input scales over the
 * output scale, rounding once, then saturating — the classic gemmlowp
 * / ONNX QLinear pipeline, expressed in double precision because the
 * functional model cares about value fidelity, not fixed-point
 * instruction selection. The tolerance harness (quant/compare.hh)
 * bounds the end-to-end error instead of demanding bit equality.
 */

#ifndef AMOS_QUANT_QPARAMS_HH
#define AMOS_QUANT_QPARAMS_HH

#include <cstdint>

#include "tensor/dtype.hh"
#include "tensor/tensor.hh"

namespace amos {
namespace quant {

/** Uniform affine quantization: real = scale * (q - zeroPoint). */
struct QuantParams
{
    float scale = 1.0f;
    std::int32_t zeroPoint = 0;
};

/** Smallest/largest representable value of an integer dtype. */
std::int64_t dtypeIntMin(DataType t);
std::int64_t dtypeIntMax(DataType t);

/**
 * Symmetric (i8) or asymmetric (u8) parameters covering [minv, maxv].
 * Degenerate ranges quantize to scale 1 so round trips stay finite.
 */
QuantParams chooseQuantParams(float minv, float maxv, DataType t);

/** Quantize one real value: round, shift, saturate to t's range. */
std::int64_t quantizeValue(float real, const QuantParams &qp,
                           DataType t);

/** Dequantize one integer value. */
float dequantizeValue(std::int64_t q, const QuantParams &qp);

/**
 * Requantize an i32 accumulator to int8: acc * scale + zeroPoint,
 * rounded to nearest (half away from zero) and saturated to
 * [-128, 127]. `scale` is inScale0 * inScale1 / outScale.
 */
std::int32_t requantize(std::int32_t acc, float scale,
                        std::int32_t zeroPoint);

/**
 * Quantize a float-lane buffer into an integer-lane buffer of the
 * same shape (element count must match; dst's dtype picks the range).
 */
void quantizeBuffer(const Buffer &src, const QuantParams &qp,
                    Buffer &dst);

/** Dequantize an integer-lane buffer into a float-lane buffer. */
void dequantizeBuffer(const Buffer &src, const QuantParams &qp,
                      Buffer &dst);

} // namespace quant
} // namespace amos

#endif // AMOS_QUANT_QPARAMS_HH
