/**
 * @file
 * bfloat16 <-> float conversions.
 *
 * bf16 is the top 16 bits of an IEEE-754 binary32: 1 sign, 8
 * exponent, 7 mantissa bits. Widening a bf16 to float is exact (shift
 * the bits up); narrowing rounds to nearest, ties to even, on the
 * discarded 16 mantissa bits — the same rule hardware bf16 units use,
 * so the functional engines agree with real accelerators bit for bit
 * on the conversion itself. NaNs are quieted (the canonical-NaN
 * payload is kept non-zero so a NaN never collapses to infinity).
 */

#ifndef AMOS_QUANT_BF16_HH
#define AMOS_QUANT_BF16_HH

#include <cstdint>
#include <cstring>

namespace amos {
namespace quant {

/** Exact widening conversion: bf16 bits -> float. */
inline float
floatFromBf16(std::uint16_t bits)
{
    const std::uint32_t u = static_cast<std::uint32_t>(bits) << 16;
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

/** Round-to-nearest-even narrowing conversion: float -> bf16 bits. */
inline std::uint16_t
bf16FromFloat(float value)
{
    std::uint32_t u;
    std::memcpy(&u, &value, sizeof(u));
    if ((u & 0x7F800000u) == 0x7F800000u && (u & 0x007FFFFFu) != 0u)
        return static_cast<std::uint16_t>((u >> 16) | 0x0040u); // qNaN
    // Round to nearest, ties to even, on the low 16 bits.
    const std::uint32_t lsb = (u >> 16) & 1u;
    u += 0x7FFFu + lsb;
    return static_cast<std::uint16_t>(u >> 16);
}

/** One float -> bf16 -> float round trip (the storage quantizer). */
inline float
bf16Round(float value)
{
    return floatFromBf16(bf16FromFloat(value));
}

} // namespace quant
} // namespace amos

#endif // AMOS_QUANT_BF16_HH
