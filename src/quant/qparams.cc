#include "qparams.hh"

#include <algorithm>
#include <cmath>

#include "quant/semantics.hh"
#include "support/logging.hh"

namespace amos {
namespace quant {

std::int64_t
dtypeIntMin(DataType t)
{
    switch (t) {
      case DataType::I8: return -128;
      case DataType::U8: return 0;
      case DataType::I32: return INT32_MIN;
      case DataType::F16:
      case DataType::F32:
      case DataType::BF16:
        break;
    }
    panic("dtypeIntMin on non-integer dtype ", dtypeName(t));
}

std::int64_t
dtypeIntMax(DataType t)
{
    switch (t) {
      case DataType::I8: return 127;
      case DataType::U8: return 255;
      case DataType::I32: return INT32_MAX;
      case DataType::F16:
      case DataType::F32:
      case DataType::BF16:
        break;
    }
    panic("dtypeIntMax on non-integer dtype ", dtypeName(t));
}

QuantParams
chooseQuantParams(float minv, float maxv, DataType t)
{
    QuantParams qp;
    const double lo = dtypeIntMin(t);
    const double hi = dtypeIntMax(t);
    if (t == DataType::I8) {
        // Symmetric: zero point 0, scale covering the larger |bound|.
        const double amax =
            std::max(std::fabs(minv), std::fabs(maxv));
        qp.scale = amax > 0 ? static_cast<float>(amax / hi) : 1.0f;
        qp.zeroPoint = 0;
        return qp;
    }
    // Asymmetric: the range must include 0 so zero is exact.
    const double rmin = std::min(0.0, static_cast<double>(minv));
    const double rmax = std::max(0.0, static_cast<double>(maxv));
    const double span = rmax - rmin;
    qp.scale = span > 0 ? static_cast<float>(span / (hi - lo)) : 1.0f;
    const double zp = lo - rmin / qp.scale;
    qp.zeroPoint = static_cast<std::int32_t>(std::llround(
        std::clamp(zp, lo, hi)));
    return qp;
}

std::int64_t
quantizeValue(float real, const QuantParams &qp, DataType t)
{
    const double q =
        static_cast<double>(real) / qp.scale + qp.zeroPoint;
    return std::clamp<std::int64_t>(std::llround(q), dtypeIntMin(t),
                                    dtypeIntMax(t));
}

float
dequantizeValue(std::int64_t q, const QuantParams &qp)
{
    return qp.scale * static_cast<float>(q - qp.zeroPoint);
}

std::int32_t
requantize(std::int32_t acc, float scale, std::int32_t zeroPoint)
{
    const double r =
        static_cast<double>(acc) * static_cast<double>(scale) +
        zeroPoint;
    return static_cast<std::int32_t>(
        std::clamp<std::int64_t>(std::llround(r), -128, 127));
}

void
quantizeBuffer(const Buffer &src, const QuantParams &qp, Buffer &dst)
{
    require(src.size() == dst.size(),
            "quantizeBuffer: size mismatch ", src.size(), " vs ",
            dst.size());
    const DataType t = dst.decl().dtype();
    require(!dtypeIsFloatClass(t),
            "quantizeBuffer: destination must be integer, got ",
            dtypeName(t));
    for (std::size_t i = 0; i < src.size(); ++i)
        dst.intSet(static_cast<std::int64_t>(i),
                   quantizeValue(src.at(static_cast<std::int64_t>(i)),
                                 qp, t));
}

void
dequantizeBuffer(const Buffer &src, const QuantParams &qp,
                 Buffer &dst)
{
    require(src.size() == dst.size(),
            "dequantizeBuffer: size mismatch ", src.size(), " vs ",
            dst.size());
    require(dtypeIsFloatClass(dst.decl().dtype()),
            "dequantizeBuffer: destination must be float-class");
    for (std::size_t i = 0; i < src.size(); ++i)
        dst.set(static_cast<std::int64_t>(i),
                dequantizeValue(
                    src.intAt(static_cast<std::int64_t>(i)), qp));
}

} // namespace quant
} // namespace amos
