#include "abstraction.hh"

#include "support/logging.hh"
#include "support/str_utils.hh"

namespace amos {

const char *
memScopeName(MemScope scope)
{
    switch (scope) {
      case MemScope::Global: return "global";
      case MemScope::Shared: return "shared";
      case MemScope::Reg: return "reg";
    }
    return "?";
}

ComputeAbstraction::ComputeAbstraction(
    std::string name, std::vector<IntrinsicIter> iters,
    std::vector<IntrinsicOperand> srcs, IntrinsicOperand dst,
    CombineKind combine)
    : _name(std::move(name)), _iters(std::move(iters)),
      _srcs(std::move(srcs)), _dst(std::move(dst)), _combine(combine)
{
    expect(!_iters.empty(), _name, ": intrinsic with no iterations");
    for (const auto &it : _iters)
        expect(it.extent > 0, _name, ": iteration ", it.name,
               " has non-positive extent");
    auto check_operand = [this](const IntrinsicOperand &op) {
        for (auto idx : op.iterIndices)
            expect(idx < _iters.size(), _name, ": operand ", op.name,
                   " indexes unknown iteration #", idx);
    };
    for (const auto &src : _srcs)
        check_operand(src);
    check_operand(_dst);

    // Consistency between the reduction flags and Dst usage.
    for (std::size_t k = 0; k < _iters.size(); ++k) {
        bool in_dst = false;
        for (auto idx : _dst.iterIndices)
            in_dst |= idx == k;
        expect(in_dst != _iters[k].reduction, _name, ": iteration ",
               _iters[k].name,
               " reduction flag inconsistent with Dst indexing");
    }

    switch (_combine) {
      case CombineKind::MultiplyAdd:
        expect(_srcs.size() == 2, _name,
               ": MultiplyAdd intrinsic needs 2 sources");
        break;
      case CombineKind::SumReduce:
        expect(_srcs.size() == 1, _name,
               ": SumReduce intrinsic needs 1 source");
        break;
    }
}

BitMatrix
ComputeAbstraction::accessMatrix() const
{
    BitMatrix z(_srcs.size() + 1, _iters.size());
    for (std::size_t m = 0; m < _srcs.size(); ++m)
        for (auto idx : _srcs[m].iterIndices)
            z.set(m, idx, true);
    for (auto idx : _dst.iterIndices)
        z.set(_srcs.size(), idx, true);
    return z;
}

std::vector<std::int64_t>
ComputeAbstraction::problemSize() const
{
    std::vector<std::int64_t> out;
    out.reserve(_iters.size());
    for (const auto &it : _iters)
        out.push_back(it.extent);
    return out;
}

std::int64_t
ComputeAbstraction::scalarOps() const
{
    std::int64_t n = 1;
    for (const auto &it : _iters)
        n *= it.extent;
    return n;
}

std::int64_t
ComputeAbstraction::operandTileElems(const IntrinsicOperand &op) const
{
    std::int64_t n = 1;
    for (auto idx : op.iterIndices)
        n *= _iters[idx].extent;
    return n;
}

std::int64_t
ComputeAbstraction::operandTileBytes(const IntrinsicOperand &op) const
{
    return operandTileElems(op) * dtypeBytes(op.dtype);
}

ComputeAbstraction::RangeConstraint
ComputeAbstraction::rangeConstraint() const
{
    // Row k encodes iter_k - extent_k < 0, i.e. coefficient 1 on
    // iteration k and constant -extent_k, matching the paper's
    // A·i + sum(Bm·jm) + C < 0 form after stacking all iterations.
    RangeConstraint out;
    for (std::size_t k = 0; k < _iters.size(); ++k) {
        std::vector<std::int64_t> row(_iters.size() + 1, 0);
        row[k] = 1;
        row.back() = -_iters[k].extent;
        out.rows.push_back(std::move(row));
    }
    return out;
}

std::string
ComputeAbstraction::toString() const
{
    auto render_operand = [this](const IntrinsicOperand &op) {
        return op.name + "[" +
               joinMapped(op.iterIndices, ", ",
                          [this](std::size_t idx) {
                              return _iters[idx].name;
                          }) +
               "]";
    };
    std::string out = render_operand(_dst);
    out += _combine == CombineKind::MultiplyAdd ? " = multiply-add("
                                                : " = sum(";
    std::vector<std::string> parts;
    for (const auto &src : _srcs)
        parts.push_back(render_operand(src));
    out += join(parts, ", ") + ")";
    out += "  s.t. ";
    parts.clear();
    for (const auto &it : _iters)
        parts.push_back(it.name + " < " + std::to_string(it.extent));
    out += join(parts, ", ");
    return out;
}

const MemoryAbstraction::Statement &
MemoryAbstraction::forOperand(const std::string &name) const
{
    for (const auto &stmt : _statements)
        if (stmt.operand == name)
            return stmt;
    panic("MemoryAbstraction: no statement for operand ", name);
}

std::string
MemoryAbstraction::toString() const
{
    std::string out;
    for (const auto &stmt : _statements) {
        out += std::string(memScopeName(stmt.dstScope)) + "." +
               stmt.operand + " = " + memScopeName(stmt.srcScope) +
               "." + stmt.operand + "\n";
    }
    return out;
}

} // namespace amos
