#include "intrinsics.hh"

namespace amos {
namespace isa {

namespace {

MemoryAbstraction
matmulStyleMemory()
{
    return MemoryAbstraction({
        {"Src1", MemScope::Reg, MemScope::Shared},
        {"Src2", MemScope::Reg, MemScope::Shared},
        {"Dst", MemScope::Global, MemScope::Reg},
    });
}

MemoryAbstraction
registerDirectMemory()
{
    // CPU/Mali style: operands come straight from the cache level the
    // model treats as "shared"; the accumulator is written back to
    // global memory when the tile retires.
    return MemoryAbstraction({
        {"Src1", MemScope::Reg, MemScope::Shared},
        {"Src2", MemScope::Reg, MemScope::Shared},
        {"Dst", MemScope::Global, MemScope::Reg},
    });
}

} // namespace

Intrinsic
wmma(std::int64_t m, std::int64_t n, std::int64_t k)
{
    ComputeAbstraction compute(
        "wmma_" + std::to_string(m) + "x" + std::to_string(n) + "x" +
            std::to_string(k),
        {{"i1", m, false}, {"i2", n, false}, {"r1", k, true}},
        {{"Src1", {0, 2}, DataType::F16},
         {"Src2", {2, 1}, DataType::F16}},
        {"Dst", {0, 1}, DataType::F16});
    Intrinsic out{std::move(compute), matmulStyleMemory()};
    // One mma_sync has a ~8-cycle pipelined latency on Volta-class
    // tensor cores; two tensor units serve each sub-core.
    out.latencyCycles = 8.0;
    out.unitsPerSubcore = 2;
    out.regFileBytes = 64 * 1024;
    return out;
}

Intrinsic
wmmaTiny()
{
    return wmma(2, 2, 2);
}

std::vector<Intrinsic>
wmmaVariants()
{
    return {wmma(16, 16, 16), wmma(32, 8, 16), wmma(8, 32, 16)};
}

Intrinsic
avx512Vnni()
{
    ComputeAbstraction compute(
        "avx512_vnni_dpbusds",
        {{"i1", 16, false}, {"r1", 4, true}},
        {{"Src1", {1}, DataType::U8},
         {"Src2", {0, 1}, DataType::I8}},
        {"Dst", {0}, DataType::I32});
    Intrinsic out{std::move(compute), registerDirectMemory()};
    // Fused into the FMA pipe: ~1 issue per cycle with 4-cycle
    // latency, one VNNI port per core.
    out.latencyCycles = 4.0;
    out.unitsPerSubcore = 1;
    out.regFileBytes = 2 * 1024; // 32 zmm registers
    return out;
}

Intrinsic
maliDot()
{
    ComputeAbstraction compute(
        "arm_dot",
        {{"r1", 4, true}},
        {{"Src1", {0}, DataType::I8}, {"Src2", {0}, DataType::I8}},
        {"Dst", {}, DataType::I32});
    Intrinsic out{std::move(compute), registerDirectMemory()};
    out.latencyCycles = 2.0;
    out.unitsPerSubcore = 4;
    out.regFileBytes = 1024;
    return out;
}

Intrinsic
virtualAxpy(std::int64_t lanes)
{
    ComputeAbstraction compute(
        "vaxpy_" + std::to_string(lanes),
        {{"i1", lanes, false}},
        {{"Src1", {0}, DataType::F32}, {"Src2", {}, DataType::F32}},
        {"Dst", {0}, DataType::F32});
    Intrinsic out{std::move(compute), matmulStyleMemory()};
    out.latencyCycles = 2.0;
    out.unitsPerSubcore = 2;
    out.regFileBytes = 16 * 1024;
    return out;
}

Intrinsic
virtualGemv(std::int64_t rows, std::int64_t depth)
{
    ComputeAbstraction compute(
        "vgemv_" + std::to_string(rows) + "x" + std::to_string(depth),
        {{"i1", rows, false}, {"r1", depth, true}},
        {{"Src1", {0, 1}, DataType::F16},
         {"Src2", {1}, DataType::F16}},
        {"Dst", {0}, DataType::F32});
    Intrinsic out{std::move(compute), matmulStyleMemory()};
    out.latencyCycles = 6.0;
    out.unitsPerSubcore = 1;
    out.regFileBytes = 32 * 1024;
    return out;
}

Intrinsic
virtualConv(std::int64_t out_ch, std::int64_t height,
            std::int64_t width, std::int64_t in_ch)
{
    ComputeAbstraction compute(
        "vconv_" + std::to_string(out_ch) + "x" +
            std::to_string(height) + "x" + std::to_string(width) +
            "x" + std::to_string(in_ch),
        {{"i1", out_ch, false},
         {"i2", height, false},
         {"i3", width, false},
         {"r1", in_ch, true}},
        {{"Src1", {3, 1, 2}, DataType::F16},
         {"Src2", {0, 3}, DataType::F16}},
        {"Dst", {0, 1, 2}, DataType::F32});
    Intrinsic out{std::move(compute), matmulStyleMemory()};
    out.latencyCycles = 12.0;
    out.unitsPerSubcore = 1;
    out.regFileBytes = 64 * 1024;
    return out;
}

} // namespace isa
} // namespace amos
