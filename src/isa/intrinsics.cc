#include "intrinsics.hh"

#include "isa/spec.hh"
#include "support/logging.hh"

namespace amos {
namespace isa {

namespace {

/**
 * Derive one intrinsic from an embedded spec. The equivalence suite
 * (tests/test_isa_spec.cc) proves every derivation bit-identical to
 * the frozen hand-written construction, which is what lets these
 * registrations be thin wrappers. Out-of-range problem sizes raise
 * fatal() with the structured diagnostics, matching the abstraction
 * constructor's historical behaviour for bad extents.
 */
Intrinsic
fromSpec(const char *spec_name,
         const std::map<std::string, std::int64_t> &bindings = {})
{
    auto derived = deriveIntrinsic(embeddedSpec(spec_name), bindings);
    if (!derived.ok())
        fatal("ISA spec '", spec_name, "' derivation failed:\n",
              diagsToString(derived.diags));
    return std::move(*derived.intrinsic);
}

} // namespace

Intrinsic
wmma(std::int64_t m, std::int64_t n, std::int64_t k)
{
    return fromSpec("wmma", {{"m", m}, {"n", n}, {"k", k}});
}

Intrinsic
wmmaTiny()
{
    return wmma(2, 2, 2);
}

std::vector<Intrinsic>
wmmaVariants()
{
    auto variants = deriveVariants(embeddedSpec("wmma"));
    if (!variants.ok())
        fatal("ISA spec 'wmma' variant derivation failed:\n",
              diagsToString(variants.diags));
    return std::move(variants.intrinsics);
}

Intrinsic
avx512Vnni()
{
    return fromSpec("vnni");
}

Intrinsic
maliDot()
{
    return fromSpec("mali_dot");
}

Intrinsic
virtualAxpy(std::int64_t lanes)
{
    return fromSpec("vaxpy", {{"lanes", lanes}});
}

Intrinsic
virtualGemv(std::int64_t rows, std::int64_t depth)
{
    return fromSpec("vgemv", {{"rows", rows}, {"depth", depth}});
}

Intrinsic
virtualConv(std::int64_t out_ch, std::int64_t height,
            std::int64_t width, std::int64_t in_ch)
{
    return fromSpec("vconv", {{"out_ch", out_ch},
                              {"height", height},
                              {"width", width},
                              {"in_ch", in_ch}});
}

} // namespace isa
} // namespace amos
