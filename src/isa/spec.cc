#include "spec.hh"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <set>

#include "support/logging.hh"
#include "support/str_utils.hh"

namespace amos {
namespace isa {

std::string
SpecDiag::toString() const
{
    return code + " at " + (path.empty() ? "/" : path) + ": " +
           message;
}

std::string
diagsToString(const std::vector<SpecDiag> &diags)
{
    std::string out;
    for (const auto &d : diags)
        out += d.toString() + "\n";
    return out;
}

namespace {

/** Numeric width class for dtype-pair legality (quant/legality.hh). */
enum class WidthClass
{
    Float,
    Int8,
    Int32,
};

WidthClass
widthClassOf(DataType t)
{
    switch (t) {
      case DataType::F16:
      case DataType::F32:
      case DataType::BF16:
        return WidthClass::Float;
      case DataType::I8:
      case DataType::U8:
        return WidthClass::Int8;
      case DataType::I32:
        return WidthClass::Int32;
    }
    return WidthClass::Float; // unreachable for in-range enumerators
}

const char *
widthClassName(WidthClass c)
{
    switch (c) {
      case WidthClass::Float: return "float";
      case WidthClass::Int8: return "int8";
      case WidthClass::Int32: return "int32";
    }
    return "?";
}

bool
dtypeFromName(const std::string &name, DataType *out)
{
    static const std::map<std::string, DataType> table = {
        {"f16", DataType::F16},   {"f32", DataType::F32},
        {"bf16", DataType::BF16}, {"i8", DataType::I8},
        {"u8", DataType::U8},     {"i32", DataType::I32},
    };
    auto it = table.find(name);
    if (it == table.end())
        return false;
    *out = it->second;
    return true;
}

bool
memScopeFromName(const std::string &name, MemScope *out)
{
    if (name == "global")
        *out = MemScope::Global;
    else if (name == "shared")
        *out = MemScope::Shared;
    else if (name == "reg")
        *out = MemScope::Reg;
    else
        return false;
    return true;
}

const char *
jsonKindName(Json::Kind kind)
{
    switch (kind) {
      case Json::Kind::Null: return "null";
      case Json::Kind::Bool: return "bool";
      case Json::Kind::Number: return "number";
      case Json::Kind::String: return "string";
      case Json::Kind::Array: return "array";
      case Json::Kind::Object: return "object";
    }
    return "?";
}

/**
 * Diagnostic accumulator with guarded JSON access: every accessor
 * records a structured diagnostic instead of panicking, so arbitrary
 * mutations of a valid document degrade into error reports.
 */
class SpecReader
{
  public:
    std::vector<SpecDiag> diags;

    void addDiag(std::string code, std::string path,
                 std::string message)
    {
        diags.push_back(
            {std::move(code), std::move(path), std::move(message)});
    }

    /** Required field of an object; nullptr + diag when bad. */
    const Json *field(const Json &obj, const std::string &path,
                      const std::string &key, Json::Kind kind)
    {
        const Json *f = optField(obj, path, key, kind);
        if (f == nullptr && obj.kind() == Json::Kind::Object &&
            !obj.has(key))
            addDiag("missing-field", path + "/" + key,
                    "required field '" + key + "' is absent");
        return f;
    }

    /** Optional field: nullptr when absent; diag on a kind clash. */
    const Json *optField(const Json &obj, const std::string &path,
                         const std::string &key, Json::Kind kind)
    {
        if (obj.kind() != Json::Kind::Object) {
            addDiag("bad-type", path,
                    std::string("expected object, got ") +
                        jsonKindName(obj.kind()));
            return nullptr;
        }
        if (!obj.has(key))
            return nullptr;
        const Json &f = obj.get(key);
        if (f.kind() != kind) {
            addDiag("bad-type", path + "/" + key,
                    std::string("expected ") + jsonKindName(kind) +
                        ", got " + jsonKindName(f.kind()));
            return nullptr;
        }
        return &f;
    }

    /** Integral number; false + diag on fractional values. */
    bool asInteger(const Json &num, const std::string &path,
                   std::int64_t *out)
    {
        double v = num.asNumber();
        if (!(v == std::floor(v)) || std::abs(v) > 1e15) {
            addDiag("bad-type", path,
                    "expected an integer, got " + std::to_string(v));
            return false;
        }
        *out = static_cast<std::int64_t>(v);
        return true;
    }
};

/** Collect "{placeholder}" names out of a name template. */
std::vector<std::string>
templatePlaceholders(const std::string &tmpl)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while ((pos = tmpl.find('{', pos)) != std::string::npos) {
        auto end = tmpl.find('}', pos);
        if (end == std::string::npos)
            break;
        out.push_back(tmpl.substr(pos + 1, end - pos - 1));
        pos = end + 1;
    }
    return out;
}

std::string
substituteTemplate(const std::string &tmpl,
                   const std::map<std::string, std::int64_t> &values)
{
    std::string out;
    std::size_t pos = 0;
    while (pos < tmpl.size()) {
        if (tmpl[pos] == '{') {
            auto end = tmpl.find('}', pos);
            if (end != std::string::npos) {
                auto name = tmpl.substr(pos + 1, end - pos - 1);
                auto it = values.find(name);
                if (it != values.end()) {
                    out += std::to_string(it->second);
                    pos = end + 1;
                    continue;
                }
            }
        }
        out += tmpl[pos++];
    }
    return out;
}

const SpecParam *
findParam(const IntrinsicSpec &spec, const std::string &name)
{
    for (const auto &p : spec.params)
        if (p.name == name)
            return &p;
    return nullptr;
}

void
parseParams(SpecReader &rd, const Json &intr, IntrinsicSpec &spec)
{
    const Json *params =
        rd.optField(intr, "/intrinsic", "params", Json::Kind::Array);
    if (params == nullptr)
        return;
    std::set<std::string> seen;
    for (std::size_t i = 0; i < params->size(); ++i) {
        std::string path =
            "/intrinsic/params/" + std::to_string(i);
        const Json &p = params->at(i);
        SpecParam out;
        if (const Json *name =
                rd.field(p, path, "name", Json::Kind::String)) {
            out.name = name->asString();
            if (out.name.empty())
                rd.addDiag("empty-name", path + "/name",
                           "parameter name must be non-empty");
            if (!seen.insert(out.name).second)
                rd.addDiag("duplicate-name", path + "/name",
                           "parameter '" + out.name +
                               "' declared twice");
        }
        if (const Json *def =
                rd.field(p, path, "default", Json::Kind::Number))
            rd.asInteger(*def, path + "/default", &out.defaultValue);
        if (const Json *range =
                rd.field(p, path, "range", Json::Kind::Array)) {
            if (range->size() != 2) {
                rd.addDiag("bad-range", path + "/range",
                           "range must be [min, max]");
            } else if (range->at(0).kind() != Json::Kind::Number ||
                       range->at(1).kind() != Json::Kind::Number) {
                rd.addDiag("bad-type", path + "/range",
                           "range bounds must be numbers");
            } else if (rd.asInteger(range->at(0), path + "/range/0",
                                    &out.minValue) &&
                       rd.asInteger(range->at(1), path + "/range/1",
                                    &out.maxValue)) {
                if (out.minValue < 1)
                    rd.addDiag("bad-range", path + "/range",
                               "problem-size minimum must be >= 1");
                if (out.minValue > out.maxValue)
                    rd.addDiag("bad-range", path + "/range",
                               "min exceeds max");
                else if (out.defaultValue < out.minValue ||
                         out.defaultValue > out.maxValue)
                    rd.addDiag(
                        "param-out-of-range", path + "/default",
                        "default " +
                            std::to_string(out.defaultValue) +
                            " outside legal range [" +
                            std::to_string(out.minValue) + ", " +
                            std::to_string(out.maxValue) + "]");
            }
        }
        spec.params.push_back(std::move(out));
    }
}

void
parseIters(SpecReader &rd, const Json &intr, IntrinsicSpec &spec)
{
    const Json *iters =
        rd.field(intr, "/intrinsic", "iters", Json::Kind::Array);
    if (iters == nullptr)
        return;
    if (iters->size() == 0)
        rd.addDiag("no-iters", "/intrinsic/iters",
                   "an intrinsic needs at least one iteration");
    std::set<std::string> seen;
    for (std::size_t i = 0; i < iters->size(); ++i) {
        std::string path = "/intrinsic/iters/" + std::to_string(i);
        const Json &it = iters->at(i);
        IntrinsicSpec::IterSpec out;
        if (const Json *name =
                rd.field(it, path, "name", Json::Kind::String)) {
            out.name = name->asString();
            if (out.name.empty())
                rd.addDiag("empty-name", path + "/name",
                           "iteration name must be non-empty");
            if (!seen.insert(out.name).second)
                rd.addDiag("duplicate-name", path + "/name",
                           "iteration '" + out.name +
                               "' declared twice");
        }
        if (const Json *kind =
                rd.field(it, path, "kind", Json::Kind::String)) {
            const auto &k = kind->asString();
            if (k == "reduction")
                out.reduction = true;
            else if (k != "spatial")
                rd.addDiag("bad-kind", path + "/kind",
                           "iteration kind must be "
                           "'spatial' or 'reduction', got '" +
                               k + "'");
        }
        if (it.kind() == Json::Kind::Object && it.has("extent")) {
            const Json &ext = it.get("extent");
            if (ext.kind() == Json::Kind::String) {
                out.extentParam = ext.asString();
                if (findParam(spec, out.extentParam) == nullptr)
                    rd.addDiag("dangling-param", path + "/extent",
                               "extent references undeclared "
                               "parameter '" +
                                   out.extentParam + "'");
            } else if (ext.kind() == Json::Kind::Number) {
                if (rd.asInteger(ext, path + "/extent",
                                 &out.extentLiteral) &&
                    out.extentLiteral < 1)
                    rd.addDiag(
                        "bad-extent", path + "/extent",
                        "extent must be >= 1, got " +
                            std::to_string(out.extentLiteral));
            } else {
                rd.addDiag("bad-type", path + "/extent",
                           std::string("extent must be a number or "
                                       "a parameter name, got ") +
                               jsonKindName(ext.kind()));
            }
        } else {
            rd.addDiag("missing-field", path + "/extent",
                       "required field 'extent' is absent");
        }
        spec.iters.push_back(std::move(out));
    }
}

bool
specHasIter(const IntrinsicSpec &spec, const std::string &name)
{
    for (const auto &it : spec.iters)
        if (it.name == name)
            return true;
    return false;
}

IntrinsicSpec::OperandSpec
parseOperand(SpecReader &rd, const Json &op, const std::string &path,
             const IntrinsicSpec &spec,
             std::set<std::string> &operandNames)
{
    IntrinsicSpec::OperandSpec out;
    if (const Json *name =
            rd.field(op, path, "name", Json::Kind::String)) {
        out.name = name->asString();
        if (out.name.empty())
            rd.addDiag("empty-name", path + "/name",
                       "operand name must be non-empty");
        if (!operandNames.insert(out.name).second)
            rd.addDiag("duplicate-name", path + "/name",
                       "operand '" + out.name + "' declared twice");
    }
    if (const Json *indices =
            rd.field(op, path, "indices", Json::Kind::Array)) {
        std::set<std::string> seen;
        for (std::size_t i = 0; i < indices->size(); ++i) {
            std::string ipath =
                path + "/indices/" + std::to_string(i);
            const Json &idx = indices->at(i);
            if (idx.kind() != Json::Kind::String) {
                rd.addDiag("bad-type", ipath,
                           std::string("expected an iteration name "
                                       "string, got ") +
                               jsonKindName(idx.kind()));
                continue;
            }
            const auto &iname = idx.asString();
            if (!specHasIter(spec, iname)) {
                rd.addDiag("dangling-index", ipath,
                           "operand indexes unknown iteration '" +
                               iname + "'");
                continue;
            }
            if (!seen.insert(iname).second)
                rd.addDiag("duplicate-index", ipath,
                           "iteration '" + iname +
                               "' indexes the operand twice");
            out.indices.push_back(iname);
        }
    }
    if (const Json *dtype =
            rd.field(op, path, "dtype", Json::Kind::String)) {
        if (!dtypeFromName(dtype->asString(), &out.dtype))
            rd.addDiag("bad-dtype", path + "/dtype",
                       "unknown dtype '" + dtype->asString() +
                           "' (f16|f32|bf16|i8|u8|i32)");
    }
    return out;
}

void
validateSemantics(SpecReader &rd, const IntrinsicSpec &spec)
{
    // Operand count must match the combine kind.
    std::size_t want =
        spec.combine == CombineKind::MultiplyAdd ? 2 : 1;
    if (spec.srcs.size() != want)
        rd.addDiag(
            "operand-count", "/intrinsic/srcs",
            (spec.combine == CombineKind::MultiplyAdd
                 ? std::string("multiply-add")
                 : std::string("sum-reduce")) +
                " needs " + std::to_string(want) + " sources, got " +
                std::to_string(spec.srcs.size()));

    // An iteration is a reduction iff Dst does not use it.
    for (const auto &it : spec.iters) {
        bool in_dst =
            std::find(spec.dst.indices.begin(),
                      spec.dst.indices.end(),
                      it.name) != spec.dst.indices.end();
        if (in_dst == it.reduction)
            rd.addDiag("reduction-mismatch", "/intrinsic/dst/indices",
                       "iteration '" + it.name + "' is " +
                           (it.reduction ? "a reduction"
                                         : "spatial") +
                           " but " + (in_dst ? "" : "not ") +
                           "indexed by Dst");
    }

    // Dtype-pair legality: sources must share a numeric width class
    // and the accumulator class follows it (float -> float,
    // int8 -> i32, i32 -> i32), mirroring quant/legality.hh.
    if (!spec.srcs.empty()) {
        WidthClass src_class = widthClassOf(spec.srcs[0].dtype);
        for (std::size_t m = 1; m < spec.srcs.size(); ++m) {
            WidthClass c = widthClassOf(spec.srcs[m].dtype);
            if (c != src_class)
                rd.addDiag(
                    "illegal-dtype-pair",
                    "/intrinsic/srcs/" + std::to_string(m) +
                        "/dtype",
                    std::string("source width classes differ (") +
                        widthClassName(src_class) + " vs " +
                        widthClassName(c) + ")");
        }
        WidthClass dst_class = widthClassOf(spec.dst.dtype);
        WidthClass want_dst = src_class == WidthClass::Float
                                  ? WidthClass::Float
                                  : WidthClass::Int32;
        if (dst_class != want_dst)
            rd.addDiag("illegal-dtype-pair", "/intrinsic/dst/dtype",
                       std::string(widthClassName(src_class)) +
                           " sources must accumulate into a " +
                           widthClassName(want_dst) +
                           " destination, got " +
                           dtypeName(spec.dst.dtype));
    }

    // The name template may only reference declared parameters.
    for (const auto &ph : templatePlaceholders(spec.nameTemplate))
        if (findParam(spec, ph) == nullptr)
            rd.addDiag("dangling-param", "/intrinsic/name",
                       "name template references undeclared "
                       "parameter '" +
                           ph + "'");

    // Every operand needs exactly one staging statement.
    std::set<std::string> staged;
    for (std::size_t i = 0; i < spec.memory.size(); ++i) {
        const auto &stmt = spec.memory[i];
        std::string path =
            "/intrinsic/memory/" + std::to_string(i);
        bool known = stmt.operand == spec.dst.name;
        for (const auto &src : spec.srcs)
            known |= stmt.operand == src.name;
        if (!known)
            rd.addDiag("unknown-operand", path + "/operand",
                       "staging statement names unknown operand '" +
                           stmt.operand + "'");
        else if (!staged.insert(stmt.operand).second)
            rd.addDiag("duplicate-staging", path + "/operand",
                       "operand '" + stmt.operand +
                           "' staged twice");
    }
    for (const auto &src : spec.srcs)
        if (!src.name.empty() && !staged.count(src.name))
            rd.addDiag("missing-staging", "/intrinsic/memory",
                       "no staging statement for operand '" +
                           src.name + "'");
    if (!spec.dst.name.empty() && !staged.count(spec.dst.name))
        rd.addDiag("missing-staging", "/intrinsic/memory",
                   "no staging statement for operand '" +
                       spec.dst.name + "'");

    // Timing attributes must be physical.
    if (!(spec.latencyCycles > 0.0))
        rd.addDiag("bad-timing", "/intrinsic/timing/latency_cycles",
                   "latency must be > 0");
    if (spec.unitsPerSubcore < 1)
        rd.addDiag("bad-timing",
                   "/intrinsic/timing/units_per_subcore",
                   "units per sub-core must be >= 1");
    if (spec.regFileBytes < 0)
        rd.addDiag("bad-timing",
                   "/intrinsic/timing/reg_file_bytes",
                   "register-file bytes must be >= 0");

    // Variants must bind known parameters to in-range values.
    for (std::size_t v = 0; v < spec.variants.size(); ++v) {
        std::string path = "/variants/" + std::to_string(v);
        for (const auto &[name, value] : spec.variants[v]) {
            const SpecParam *p = findParam(spec, name);
            if (p == nullptr) {
                rd.addDiag("dangling-param", path + "/" + name,
                           "variant binds undeclared parameter '" +
                               name + "'");
            } else if (value < p->minValue || value > p->maxValue) {
                rd.addDiag("param-out-of-range", path + "/" + name,
                           std::to_string(value) +
                               " outside legal range [" +
                               std::to_string(p->minValue) + ", " +
                               std::to_string(p->maxValue) + "]");
            }
        }
    }
}

} // namespace

SpecParseResult
parseIntrinsicSpec(const Json &doc)
{
    SpecReader rd;
    IntrinsicSpec spec;

    if (doc.kind() != Json::Kind::Object) {
        rd.addDiag("bad-type", "",
                   std::string("spec document must be an object, "
                               "got ") +
                       jsonKindName(doc.kind()));
        return {std::nullopt, std::move(rd.diags)};
    }

    if (const Json *schema =
            rd.optField(doc, "", "schema", Json::Kind::String)) {
        if (schema->asString() != "amos-isa-spec-v1")
            rd.addDiag("bad-schema", "/schema",
                       "unsupported schema '" + schema->asString() +
                           "' (expected amos-isa-spec-v1)");
    }
    if (const Json *name =
            rd.field(doc, "", "name", Json::Kind::String)) {
        spec.specName = name->asString();
        if (spec.specName.empty())
            rd.addDiag("empty-name", "/name",
                       "spec name must be non-empty");
    }
    if (const Json *desc =
            rd.optField(doc, "", "description", Json::Kind::String))
        spec.description = desc->asString();

    const Json *intr =
        rd.field(doc, "", "intrinsic", Json::Kind::Object);
    if (intr == nullptr)
        return {std::nullopt, std::move(rd.diags)};

    if (const Json *name = rd.field(*intr, "/intrinsic", "name",
                                    Json::Kind::String)) {
        spec.nameTemplate = name->asString();
        if (spec.nameTemplate.empty())
            rd.addDiag("empty-name", "/intrinsic/name",
                       "intrinsic name must be non-empty");
    }
    if (const Json *combine = rd.optField(
            *intr, "/intrinsic", "combine", Json::Kind::String)) {
        const auto &c = combine->asString();
        if (c == "sum-reduce")
            spec.combine = CombineKind::SumReduce;
        else if (c != "multiply-add")
            rd.addDiag("bad-combine", "/intrinsic/combine",
                       "combine must be 'multiply-add' or "
                       "'sum-reduce', got '" +
                           c + "'");
    }

    parseParams(rd, *intr, spec);
    parseIters(rd, *intr, spec);

    if (const Json *srcs = rd.field(*intr, "/intrinsic", "srcs",
                                    Json::Kind::Array)) {
        std::set<std::string> operandNames;
        for (std::size_t i = 0; i < srcs->size(); ++i) {
            std::string path =
                "/intrinsic/srcs/" + std::to_string(i);
            if (srcs->at(i).kind() != Json::Kind::Object) {
                rd.addDiag("bad-type", path,
                           std::string("expected object, got ") +
                               jsonKindName(srcs->at(i).kind()));
                continue;
            }
            spec.srcs.push_back(parseOperand(rd, srcs->at(i), path,
                                             spec, operandNames));
        }
        if (const Json *dst = rd.field(*intr, "/intrinsic", "dst",
                                       Json::Kind::Object))
            spec.dst = parseOperand(rd, *dst, "/intrinsic/dst",
                                    spec, operandNames);
    } else {
        rd.field(*intr, "/intrinsic", "dst", Json::Kind::Object);
    }

    if (const Json *memory = rd.field(*intr, "/intrinsic", "memory",
                                      Json::Kind::Array)) {
        for (std::size_t i = 0; i < memory->size(); ++i) {
            std::string path =
                "/intrinsic/memory/" + std::to_string(i);
            const Json &stmt = memory->at(i);
            IntrinsicSpec::StageSpec out;
            if (const Json *op = rd.field(stmt, path, "operand",
                                          Json::Kind::String))
                out.operand = op->asString();
            if (const Json *from = rd.field(stmt, path, "from",
                                            Json::Kind::String)) {
                if (!memScopeFromName(from->asString(), &out.from))
                    rd.addDiag("bad-scope", path + "/from",
                               "unknown scope '" +
                                   from->asString() +
                                   "' (global|shared|reg)");
            }
            if (const Json *to = rd.field(stmt, path, "to",
                                          Json::Kind::String)) {
                if (!memScopeFromName(to->asString(), &out.to))
                    rd.addDiag("bad-scope", path + "/to",
                               "unknown scope '" + to->asString() +
                                   "' (global|shared|reg)");
            }
            spec.memory.push_back(std::move(out));
        }
    }

    if (const Json *timing = rd.optField(*intr, "/intrinsic",
                                         "timing",
                                         Json::Kind::Object)) {
        std::string path = "/intrinsic/timing";
        if (const Json *lat = rd.optField(
                *timing, path, "latency_cycles", Json::Kind::Number))
            spec.latencyCycles = lat->asNumber();
        if (const Json *units =
                rd.optField(*timing, path, "units_per_subcore",
                            Json::Kind::Number)) {
            std::int64_t v = 0;
            if (rd.asInteger(*units, path + "/units_per_subcore",
                             &v))
                spec.unitsPerSubcore = static_cast<int>(v);
        }
        if (const Json *reg =
                rd.optField(*timing, path, "reg_file_bytes",
                            Json::Kind::Number))
            rd.asInteger(*reg, path + "/reg_file_bytes",
                         &spec.regFileBytes);
    }

    if (const Json *variants =
            rd.optField(doc, "", "variants", Json::Kind::Array)) {
        for (std::size_t v = 0; v < variants->size(); ++v) {
            std::string path = "/variants/" + std::to_string(v);
            const Json &var = variants->at(v);
            if (var.kind() != Json::Kind::Object) {
                rd.addDiag("bad-type", path,
                           std::string("expected object, got ") +
                               jsonKindName(var.kind()));
                continue;
            }
            std::map<std::string, std::int64_t> binds;
            for (const auto &[key, value] : var.entries()) {
                if (value.kind() != Json::Kind::Number) {
                    rd.addDiag("bad-type", path + "/" + key,
                               std::string(
                                   "expected number, got ") +
                                   jsonKindName(value.kind()));
                    continue;
                }
                std::int64_t n = 0;
                if (rd.asInteger(value, path + "/" + key, &n))
                    binds[key] = n;
            }
            spec.variants.push_back(std::move(binds));
        }
    }

    validateSemantics(rd, spec);

    if (!rd.diags.empty())
        return {std::nullopt, std::move(rd.diags)};
    return {std::move(spec), {}};
}

SpecParseResult
parseIntrinsicSpecText(const std::string &text)
{
    try {
        return parseIntrinsicSpec(Json::parse(text));
    } catch (const FatalError &err) {
        return {std::nullopt,
                {{"bad-json", "", err.what()}}};
    }
}

SpecDeriveResult
deriveIntrinsic(const IntrinsicSpec &spec,
                const std::map<std::string, std::int64_t> &bindings)
{
    std::vector<SpecDiag> diags;

    // Resolve the parameter environment: defaults, then overrides.
    std::map<std::string, std::int64_t> env;
    for (const auto &p : spec.params)
        env[p.name] = p.defaultValue;
    for (const auto &[name, value] : bindings) {
        const SpecParam *p = findParam(spec, name);
        if (p == nullptr) {
            diags.push_back({"dangling-param", "/params",
                             "binding names undeclared parameter '" +
                                 name + "'"});
            continue;
        }
        if (value < p->minValue || value > p->maxValue) {
            diags.push_back(
                {"param-out-of-range", "/params/" + name,
                 std::to_string(value) +
                     " outside legal range [" +
                     std::to_string(p->minValue) + ", " +
                     std::to_string(p->maxValue) + "]"});
            continue;
        }
        env[name] = value;
    }
    if (!diags.empty())
        return {std::nullopt, std::move(diags)};

    std::vector<IntrinsicIter> iters;
    std::map<std::string, std::size_t> iterPos;
    for (const auto &it : spec.iters) {
        std::int64_t extent = it.extentParam.empty()
                                  ? it.extentLiteral
                                  : env.at(it.extentParam);
        iterPos[it.name] = iters.size();
        iters.push_back({it.name, extent, it.reduction});
    }

    auto resolveOperand =
        [&](const IntrinsicSpec::OperandSpec &op) {
            IntrinsicOperand out;
            out.name = op.name;
            out.dtype = op.dtype;
            for (const auto &iname : op.indices)
                out.iterIndices.push_back(iterPos.at(iname));
            return out;
        };

    std::vector<IntrinsicOperand> srcs;
    for (const auto &src : spec.srcs)
        srcs.push_back(resolveOperand(src));

    try {
        ComputeAbstraction compute(
            substituteTemplate(spec.nameTemplate, env),
            std::move(iters), std::move(srcs),
            resolveOperand(spec.dst), spec.combine);
        std::vector<MemoryAbstraction::Statement> statements;
        for (const auto &stmt : spec.memory)
            statements.push_back(
                {stmt.operand, stmt.to, stmt.from});
        Intrinsic out{std::move(compute),
                      MemoryAbstraction(std::move(statements))};
        out.latencyCycles = spec.latencyCycles;
        out.unitsPerSubcore = spec.unitsPerSubcore;
        out.regFileBytes = spec.regFileBytes;
        return {std::move(out), {}};
    } catch (const FatalError &err) {
        // Defence in depth: parse-time validation should have caught
        // everything the abstraction constructor checks.
        return {std::nullopt,
                {{"derive-failed", "/intrinsic", err.what()}}};
    }
}

SpecVariantsResult
deriveVariants(const IntrinsicSpec &spec)
{
    SpecVariantsResult out;
    std::vector<std::map<std::string, std::int64_t>> variants =
        spec.variants;
    if (variants.empty())
        variants.push_back({});
    for (const auto &binds : variants) {
        auto derived = deriveIntrinsic(spec, binds);
        if (!derived.ok()) {
            out.intrinsics.clear();
            out.diags = std::move(derived.diags);
            return out;
        }
        out.intrinsics.push_back(std::move(*derived.intrinsic));
    }
    return out;
}

Json
intrinsicToSpecJson(const Intrinsic &intr)
{
    const auto &c = intr.compute;

    Json iters = Json::array();
    for (const auto &it : c.iters()) {
        Json j = Json::object();
        j.set("name", Json(it.name));
        j.set("extent", Json(it.extent));
        j.set("kind",
              Json(it.reduction ? "reduction" : "spatial"));
        iters.push(std::move(j));
    }

    auto operandJson = [&](const IntrinsicOperand &op) {
        Json j = Json::object();
        j.set("name", Json(op.name));
        Json indices = Json::array();
        for (auto idx : op.iterIndices)
            indices.push(Json(c.iters()[idx].name));
        j.set("indices", std::move(indices));
        j.set("dtype", Json(dtypeName(op.dtype)));
        return j;
    };

    Json srcs = Json::array();
    for (const auto &src : c.srcs())
        srcs.push(operandJson(src));

    Json memory = Json::array();
    for (const auto &stmt : intr.memory.statements()) {
        Json j = Json::object();
        j.set("operand", Json(stmt.operand));
        j.set("from", Json(memScopeName(stmt.srcScope)));
        j.set("to", Json(memScopeName(stmt.dstScope)));
        memory.push(std::move(j));
    }

    Json timing = Json::object();
    timing.set("latency_cycles", Json(intr.latencyCycles));
    timing.set("units_per_subcore", Json(intr.unitsPerSubcore));
    timing.set("reg_file_bytes", Json(intr.regFileBytes));

    Json spec = Json::object();
    spec.set("name", Json(c.name()));
    spec.set("combine",
             Json(c.combine() == CombineKind::MultiplyAdd
                      ? "multiply-add"
                      : "sum-reduce"));
    spec.set("iters", std::move(iters));
    spec.set("srcs", std::move(srcs));
    spec.set("dst", operandJson(c.dst()));
    spec.set("memory", std::move(memory));
    spec.set("timing", std::move(timing));

    Json doc = Json::object();
    doc.set("schema", Json("amos-isa-spec-v1"));
    doc.set("name", Json(c.name()));
    doc.set("intrinsic", std::move(spec));
    return doc;
}

bool
intrinsicEquivalent(const Intrinsic &a, const Intrinsic &b,
                    std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why != nullptr)
            *why = msg;
        return false;
    };

    const auto &ca = a.compute;
    const auto &cb = b.compute;
    if (ca.name() != cb.name())
        return fail("name: '" + ca.name() + "' vs '" + cb.name() +
                    "'");
    if (ca.combine() != cb.combine())
        return fail("combine kind differs");
    if (ca.numIters() != cb.numIters())
        return fail("iteration count differs");
    for (std::size_t k = 0; k < ca.numIters(); ++k) {
        const auto &ia = ca.iters()[k];
        const auto &ib = cb.iters()[k];
        if (ia.name != ib.name || ia.extent != ib.extent ||
            ia.reduction != ib.reduction)
            return fail("iteration #" + std::to_string(k) +
                        " differs: " + ia.name + "/" +
                        std::to_string(ia.extent) + " vs " +
                        ib.name + "/" + std::to_string(ib.extent));
    }
    auto operandsEqual = [&](const IntrinsicOperand &oa,
                             const IntrinsicOperand &ob,
                             const std::string &label) {
        if (oa.name != ob.name)
            return fail(label + " name differs: " + oa.name +
                        " vs " + ob.name);
        if (oa.iterIndices != ob.iterIndices)
            return fail(label + " index list differs");
        if (oa.dtype != ob.dtype)
            return fail(label + " dtype differs: " +
                        dtypeName(oa.dtype) + " vs " +
                        dtypeName(ob.dtype));
        return true;
    };
    if (ca.numSrcs() != cb.numSrcs())
        return fail("source count differs");
    for (std::size_t m = 0; m < ca.numSrcs(); ++m)
        if (!operandsEqual(ca.srcs()[m], cb.srcs()[m],
                           "src #" + std::to_string(m)))
            return false;
    if (!operandsEqual(ca.dst(), cb.dst(), "dst"))
        return false;
    if (!(ca.accessMatrix() == cb.accessMatrix()))
        return fail("access matrices differ");

    const auto &ma = a.memory.statements();
    const auto &mb = b.memory.statements();
    if (ma.size() != mb.size())
        return fail("memory statement count differs");
    for (std::size_t i = 0; i < ma.size(); ++i)
        if (ma[i].operand != mb[i].operand ||
            ma[i].srcScope != mb[i].srcScope ||
            ma[i].dstScope != mb[i].dstScope)
            return fail("memory statement #" + std::to_string(i) +
                        " differs");

    if (a.latencyCycles != b.latencyCycles)
        return fail("latency differs");
    if (a.unitsPerSubcore != b.unitsPerSubcore)
        return fail("units per sub-core differ");
    if (a.regFileBytes != b.regFileBytes)
        return fail("register-file bytes differ");
    return true;
}

const IntrinsicSpec &
embeddedSpec(const std::string &name)
{
    static std::mutex mutex;
    static std::map<std::string, IntrinsicSpec> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(name);
    if (it != cache.end())
        return it->second;
    const char *text = embeddedSpecText(name);
    if (text == nullptr)
        fatal("unknown embedded ISA spec '", name, "' (",
              join(embeddedSpecNames(), "|"), ")");
    auto parsed = parseIntrinsicSpecText(text);
    if (!parsed.ok())
        fatal("embedded ISA spec '", name, "' is invalid:\n",
              diagsToString(parsed.diags));
    return cache.emplace(name, std::move(*parsed.spec))
        .first->second;
}

} // namespace isa
} // namespace amos
