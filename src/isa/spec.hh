/**
 * @file
 * Declarative ISA specifications (JSON) and the loader that derives
 * full hardware intrinsics from them.
 *
 * Every intrinsic this repository models can be described without
 * C++: a spec names the intrinsic iterations and their extents
 * (einsum-style indexed access patterns), the operand element types,
 * the memory staging level of each operand, and the problem-size
 * parameters with their legal ranges. From one spec the loader
 * derives everything `Intrinsic` carries — the compute abstraction
 * (and therefore the access matrix Z, range constraints, and
 * matching-matrix machinery), the memory abstraction, and the timing
 * attributes — so onboarding a new spatial accelerator is writing a
 * JSON file, not recompiling the compiler (docs/abstraction.md walks
 * the schema).
 *
 * Error handling is diagnostics-first: malformed specs never crash
 * and never yield a silently-wrong intrinsic. Every failure mode —
 * missing fields, wrong JSON kinds, out-of-range extents, dangling
 * iteration or parameter names, operand/combine mismatches, illegal
 * dtype pairs — produces a structured SpecDiag with a stable code
 * and a JSON-pointer-style path, and the partial result is dropped.
 * tests/test_isa_spec.cc fuzzes mutated specs against this contract
 * and proves every built-in spec bit-identical to its hand-written
 * twin.
 *
 * The spec files under src/isa/specs/ are embedded into the library
 * at build time (see specs/embed_specs.cmake); embeddedSpecNames()/
 * embeddedSpecText() expose them, and intrinsics.cc derives the
 * whole registry from them.
 */

#ifndef AMOS_ISA_SPEC_HH
#define AMOS_ISA_SPEC_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/abstraction.hh"
#include "support/json.hh"

namespace amos {
namespace isa {

/**
 * One structured diagnostic from spec parsing, validation, or
 * derivation. `code` is a stable kebab-case identifier suitable for
 * programmatic matching; `path` locates the offending node in the
 * spec document (JSON-pointer style, e.g. "/intrinsic/iters/1/extent");
 * `message` is the human explanation.
 */
struct SpecDiag
{
    std::string code;
    std::string path;
    std::string message;

    /** "code at path: message" one-liner for logs and test output. */
    std::string toString() const;
};

/** Render a diagnostic list, one per line (empty string when none). */
std::string diagsToString(const std::vector<SpecDiag> &diags);

/** A problem-size parameter and its legal (inclusive) range. */
struct SpecParam
{
    std::string name;
    std::int64_t defaultValue = 1;
    std::int64_t minValue = 1;
    std::int64_t maxValue = 1;
};

/**
 * Parsed, validated form of one ISA spec document. Still declarative
 * — extents may reference parameters — so one spec can derive a
 * family of intrinsics (e.g. the three WMMA shapes).
 */
struct IntrinsicSpec
{
    /** Registry name of the spec (the document's "name" field). */
    std::string specName;
    std::string description;

    std::vector<SpecParam> params;

    /**
     * Intrinsic-name template; "{param}" placeholders are substituted
     * with the bound value at derive time (e.g. "wmma_{m}x{n}x{k}").
     */
    std::string nameTemplate;

    CombineKind combine = CombineKind::MultiplyAdd;

    /** One intrinsic iteration: literal extent or a parameter ref. */
    struct IterSpec
    {
        std::string name;
        bool reduction = false;
        /** When extentParam is empty the literal extent applies. */
        std::string extentParam;
        std::int64_t extentLiteral = 0;
    };
    std::vector<IterSpec> iters;

    /** One operand: einsum-style index list of iteration names. */
    struct OperandSpec
    {
        std::string name;
        std::vector<std::string> indices;
        DataType dtype = DataType::F16;
    };
    std::vector<OperandSpec> srcs;
    OperandSpec dst;

    /** One staging statement: operand moves `to` <- `from`. */
    struct StageSpec
    {
        std::string operand;
        MemScope from = MemScope::Shared;
        MemScope to = MemScope::Reg;
    };
    std::vector<StageSpec> memory;

    double latencyCycles = 1.0;
    int unitsPerSubcore = 1;
    std::int64_t regFileBytes = 64 * 1024;

    /**
     * Named problem-size bindings the target ships (the document's
     * "variants" list); empty means "defaults only".
     */
    std::vector<std::map<std::string, std::int64_t>> variants;
};

/** Result of parsing a spec document. */
struct SpecParseResult
{
    std::optional<IntrinsicSpec> spec;
    std::vector<SpecDiag> diags;

    bool ok() const { return spec.has_value() && diags.empty(); }
};

/**
 * Parse and validate one spec document. Never throws: every failure
 * mode lands in `diags` and leaves `spec` empty. A returned spec has
 * passed full structural validation (unique names, resolvable
 * references, legal dtype pairing, covered staging, ranges).
 */
SpecParseResult parseIntrinsicSpec(const Json &doc);

/** Parse from JSON text (malformed JSON becomes a "bad-json" diag). */
SpecParseResult parseIntrinsicSpecText(const std::string &text);

/** Result of deriving a concrete intrinsic from a spec. */
struct SpecDeriveResult
{
    std::optional<Intrinsic> intrinsic;
    std::vector<SpecDiag> diags;

    bool ok() const { return intrinsic.has_value() && diags.empty(); }
};

/**
 * Derive a concrete Intrinsic from a validated spec. `bindings`
 * overrides parameter defaults; unknown parameter names and values
 * outside the declared legal range are diagnostics, not crashes.
 */
SpecDeriveResult
deriveIntrinsic(const IntrinsicSpec &spec,
                const std::map<std::string, std::int64_t> &bindings = {});

/**
 * Derive every shipped variant (the spec's "variants" list, or the
 * parameter defaults when none are declared), in document order.
 * Diagnostics from any variant abort the whole derivation.
 */
struct SpecVariantsResult
{
    std::vector<Intrinsic> intrinsics;
    std::vector<SpecDiag> diags;

    bool ok() const { return !intrinsics.empty() && diags.empty(); }
};
SpecVariantsResult deriveVariants(const IntrinsicSpec &spec);

/**
 * Serialize a concrete intrinsic back to a spec document that
 * re-derives it exactly (extents become literals, the name template
 * the literal name). The round-trip property — derive(serialize(i))
 * equivalent to i — is pinned by tests/test_isa_spec.cc.
 */
Json intrinsicToSpecJson(const Intrinsic &intr);

/**
 * Deep structural equivalence of two intrinsics: name, iterations
 * (names, extents, reduction flags), operands (names, index lists,
 * dtypes), combine kind, access matrices, memory statements, and
 * timing attributes. On mismatch returns false and, when `why` is
 * non-null, a human-readable description of the first difference.
 */
bool intrinsicEquivalent(const Intrinsic &a, const Intrinsic &b,
                         std::string *why = nullptr);

/// @name Embedded spec registry.
/// The JSON files under src/isa/specs/ are compiled into the library
/// (generated embedded_specs.cc). Names are the file stems.
/// @{

/** Names of all embedded specs, sorted. */
const std::vector<std::string> &embeddedSpecNames();

/** Raw JSON text of an embedded spec; nullptr when unknown. */
const char *embeddedSpecText(const std::string &name);

/**
 * Parsed embedded spec by name (cached; parsed once per process).
 * Raises fatal() on an unknown name or — impossible for shipped
 * specs, which tests validate — a spec that fails to parse.
 */
const IntrinsicSpec &embeddedSpec(const std::string &name);

/// @}

} // namespace isa
} // namespace amos

#endif // AMOS_ISA_SPEC_HH
