/**
 * @file
 * Intrinsic registry: the concrete hardware intrinsics modelled in
 * this reproduction, each expressed through the hardware abstraction.
 *
 *  - Tensor Core WMMA mma_sync (16x16x16 f16, and the 2x2x2 teaching
 *    variant used by the paper's Fig. 3 running example);
 *  - AVX-512 VNNI dpbusds (per-lane 4-wide int8 dot, modelled as a
 *    16-lane matrix-vector product);
 *  - Mali Bifrost arm_dot (4-wide dot product);
 *  - the three virtual accelerators of Sec. 7.5 (AXPY, GEMV, CONV).
 *
 * Since the declarative-spec refactor, these functions are thin
 * wrappers over the JSON ISA specs under src/isa/specs/ (embedded at
 * build time; see isa/spec.hh): each call derives its intrinsic from
 * the spec of the same lineage, and tests/test_isa_spec.cc proves
 * the derivations bit-identical to the frozen hand-written
 * constructions. Targets with no C++ wrapper at all (the AMX-style
 * tile unit, "amx") are reached through hw::byName, which also
 * accepts "spec:<path>" for user-supplied spec files.
 */

#ifndef AMOS_ISA_INTRINSICS_HH
#define AMOS_ISA_INTRINSICS_HH

#include "isa/abstraction.hh"

namespace amos {
namespace isa {

/**
 * Tensor Core WMMA matrix multiply-accumulate:
 * Dst[i1,i2] += Src1[i1,r1] * Src2[r1,i2] with problem size m x n x k.
 * Sources staged shared->reg, destination stored reg->global,
 * matching wmma::load_matrix_sync / mma_sync / store_matrix_sync.
 */
Intrinsic wmma(std::int64_t m = 16, std::int64_t n = 16,
               std::int64_t k = 16);

/** The paper's Fig. 3 teaching Tensor Core: wmma(2, 2, 2). */
Intrinsic wmmaTiny();

/**
 * The three WMMA problem shapes real Tensor Cores expose
 * (m16n16k16, m32n8k16, m8n32k16 — the paper's Eq. 1 uses the
 * 32x8x16 variant). All have equal scalar throughput; the shape
 * changes which fused extents divide evenly and how tiles stage.
 */
std::vector<Intrinsic> wmmaVariants();

/**
 * AVX-512 VNNI dpbusds: each of 16 i32 lanes accumulates a 4-wide
 * i8 dot: Dst[i1] += Src1[r1] * Src2[i1,r1] (Src1 is the broadcast
 * activation vector, Src2 the per-lane weight rows).
 */
Intrinsic avx512Vnni();

/**
 * Mali Bifrost arm_dot: one scalar accumulator gets a 4-wide dot:
 * Dst[] += Src1[r1] * Src2[r1].
 */
Intrinsic maliDot();

/** Virtual AXPY accelerator: Dst[i1] += Src1[i1] * Src2[] (Sec 7.5). */
Intrinsic virtualAxpy(std::int64_t lanes = 64);

/** Virtual GEMV accelerator: Dst[i1] += Src1[i1,r1] * Src2[r1]. */
Intrinsic virtualGemv(std::int64_t rows = 32, std::int64_t depth = 32);

/**
 * Virtual CONV accelerator computing a pointwise convolution tile:
 * Dst[i1,i2,i3] += Src1[r1,i2,i3] * Src2[i1,r1]
 * (output channel, height, width; reduction over input channel).
 */
Intrinsic virtualConv(std::int64_t out_ch = 8, std::int64_t height = 4,
                      std::int64_t width = 4, std::int64_t in_ch = 8);

} // namespace isa
} // namespace amos

#endif // AMOS_ISA_INTRINSICS_HH
