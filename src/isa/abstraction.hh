/**
 * @file
 * Hardware abstraction (Sec. 4 of the AMOS paper).
 *
 * A hardware intrinsic is described in scalar form:
 *
 *   Dst[i...] = F(Src1[j1...], ..., SrcM[jM...])
 *     s.t.  A·i + sum_m Bm·jm + C < 0          (compute abstraction)
 *
 *   reg.Srcm[jm...]  = shared.Srcm[lm...]
 *   global.Dst[k...] = reg.Dst[i...]           (memory abstraction)
 *
 * The compute abstraction names the intrinsic iterations, their
 * extents (the problem-size constraint), and which iterations index
 * each operand; the memory abstraction records the scope each operand
 * moves between and therefore where its tile must be staged.
 */

#ifndef AMOS_ISA_ABSTRACTION_HH
#define AMOS_ISA_ABSTRACTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/bit_matrix.hh"
#include "tensor/computation.hh"
#include "tensor/dtype.hh"

namespace amos {

/** Memory scope of an operand at some point of its journey. */
enum class MemScope
{
    Global,
    Shared,
    Reg,
};

/** Printable name of a memory scope. */
const char *memScopeName(MemScope scope);

/** One iteration of a hardware intrinsic (e.g. i1, i2, r1). */
struct IntrinsicIter
{
    std::string name;
    std::int64_t extent = 0;    ///< problem size along this iteration
    bool reduction = false;     ///< true iff absent from Dst's index
};

/**
 * One operand of an intrinsic: which intrinsic iterations index it
 * (ordered — these are the js of Def. 4.1) and its element type.
 */
struct IntrinsicOperand
{
    std::string name;
    std::vector<std::size_t> iterIndices;
    DataType dtype = DataType::F16;
};

/**
 * Compute abstraction of one hardware compute intrinsic (Def. 4.1).
 */
class ComputeAbstraction
{
  public:
    ComputeAbstraction(std::string name,
                       std::vector<IntrinsicIter> iters,
                       std::vector<IntrinsicOperand> srcs,
                       IntrinsicOperand dst,
                       CombineKind combine = CombineKind::MultiplyAdd);

    const std::string &name() const { return _name; }
    const std::vector<IntrinsicIter> &iters() const { return _iters; }
    const std::vector<IntrinsicOperand> &srcs() const { return _srcs; }
    const IntrinsicOperand &dst() const { return _dst; }
    CombineKind combine() const { return _combine; }

    std::size_t numIters() const { return _iters.size(); }
    std::size_t numSrcs() const { return _srcs.size(); }

    /**
     * Intrinsic access matrix Z (Fig. 4): one row per operand in the
     * order [srcs..., dst], one column per intrinsic iteration; entry
     * set iff the iteration indexes the operand.
     */
    BitMatrix accessMatrix() const;

    /** Problem size: extent of each intrinsic iteration. */
    std::vector<std::int64_t> problemSize() const;

    /** Scalar multiply-accumulate count of one intrinsic call. */
    std::int64_t scalarOps() const;

    /** Number of elements of one operand tile (product of extents). */
    std::int64_t operandTileElems(const IntrinsicOperand &op) const;

    /** Bytes of one operand tile. */
    std::int64_t operandTileBytes(const IntrinsicOperand &op) const;

    /**
     * The affine range constraint of Def. 4.1 in matrix form: for a
     * combined index vector [spatial iters..., reduction iters...],
     * rows encode x_k < extent_k. Exposed for inspection and tests.
     */
    struct RangeConstraint
    {
        /// One row per constraint: coefficients over all intrinsic
        /// iterations followed by the constant term; row meaning is
        /// sum(coeffs * iters) + constant < 0.
        std::vector<std::vector<std::int64_t>> rows;
    };
    RangeConstraint rangeConstraint() const;

    /** Render as a scalar-form statement like the paper's Eq. 1. */
    std::string toString() const;

  private:
    std::string _name;
    std::vector<IntrinsicIter> _iters;
    std::vector<IntrinsicOperand> _srcs;
    IntrinsicOperand _dst;
    CombineKind _combine;
};

/**
 * Memory abstraction of one intrinsic (Def. 4.2): a list of scoped
 * transfer statements, one per operand.
 */
class MemoryAbstraction
{
  public:
    /** One statement: operand data moves dstScope <- srcScope. */
    struct Statement
    {
        std::string operand;  ///< matches a ComputeAbstraction operand
        MemScope dstScope;
        MemScope srcScope;
    };

    explicit MemoryAbstraction(std::vector<Statement> statements)
        : _statements(std::move(statements))
    {}

    const std::vector<Statement> &statements() const
    {
        return _statements;
    }

    /** Statement for a named operand; panics if missing. */
    const Statement &forOperand(const std::string &name) const;

    std::string toString() const;

  private:
    std::vector<Statement> _statements;
};

/**
 * A complete intrinsic: compute + memory abstraction plus the timing
 * attributes the performance model and simulator need.
 */
struct Intrinsic
{
    ComputeAbstraction compute;
    MemoryAbstraction memory;

    /** Pipelined issue-to-issue latency of one call, in cycles. */
    double latencyCycles = 1.0;

    /** Calls that can be in flight concurrently per sub-core. */
    int unitsPerSubcore = 1;

    /**
     * Register-file capacity available for operand fragments, in
     * bytes per sub-core. Bounds how many accumulator tiles a
     * sub-core may keep live.
     */
    std::int64_t regFileBytes = 64 * 1024;

    const std::string &name() const { return compute.name(); }
};

} // namespace amos

#endif // AMOS_ISA_ABSTRACTION_HH
