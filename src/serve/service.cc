#include "service.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "report/explain.hh"
#include "report/prometheus.hh"
#include "support/flight_recorder.hh"
#include "support/logging.hh"
#include "support/str_utils.hh"
#include "support/trace.hh"

#include <optional>

namespace amos {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     since)
        .count();
}

} // namespace

Json
ServeStats::toJson() const
{
    Json out = Json::object();
    auto u64 = [](std::uint64_t v) {
        return Json(static_cast<std::int64_t>(v));
    };
    out.set("requests", u64(requests));
    out.set("memory_hits", u64(memoryHits));
    out.set("disk_hits", u64(diskHits));
    out.set("compiles", u64(compiles));
    out.set("coalesced", u64(coalesced));
    out.set("rejected_queue_full", u64(rejectedQueueFull));
    out.set("deadline_exceeded", u64(deadlineExceeded));
    out.set("cancelled", u64(cancelled));
    out.set("failures", u64(failures));
    out.set("warmed_entries", u64(warmedEntries));
    out.set("slow_requests", u64(slowRequests));
    out.set("slowlog_recorded", u64(slowlogRecorded));
    Json latency = Json::object();
    latency.set("count", u64(latencyCount));
    latency.set("mean_ms", Json(meanMs));
    latency.set("p50_ms", Json(p50Ms));
    latency.set("p95_ms", Json(p95Ms));
    latency.set("p99_ms", Json(p99Ms));
    out.set("latency", std::move(latency));
    Json window = Json::object();
    window.set("count", u64(windowCount));
    window.set("p50_ms", Json(windowP50Ms));
    window.set("p95_ms", Json(windowP95Ms));
    window.set("p99_ms", Json(windowP99Ms));
    out.set("window", std::move(window));
    Json slo = Json::object();
    slo.set("slow_threshold_ms", Json(slowThresholdMs));
    slo.set("burn_rate", Json(sloBurnRate));
    out.set("slo", std::move(slo));
    Json unified = Json::object();
    for (const auto &[name, value] : metrics)
        unified.set(name, u64(value));
    out.set("metrics", std::move(unified));
    return out;
}

std::string
ServeStats::summary() const
{
    std::ostringstream out;
    out << "serve: req=" << requests << " hit_mem=" << memoryHits
        << " hit_disk=" << diskHits << " compiled=" << compiles
        << " coalesced=" << coalesced
        << " shed=" << rejectedQueueFull
        << " deadline=" << deadlineExceeded << " p50="
        << fmtDouble(p50Ms, 2) << "ms p95=" << fmtDouble(p95Ms, 2)
        << "ms p99=" << fmtDouble(p99Ms, 2) << "ms w_p99="
        << fmtDouble(windowP99Ms, 2) << "ms burn="
        << fmtDouble(sloBurnRate, 2) << " slow=" << slowRequests;
    return out.str();
}

Json
ServeOutcome::toJson(const std::string &id) const
{
    Json out = Json::object();
    if (!id.empty())
        out.set("id", Json(id));
    out.set("ok", Json(ok));
    out.set("latency_ms", Json(latencyMs));
    out.set("queue_wait_ms", Json(queueWaitMs));
    if (ok) {
        out.set("served_by", Json(servedBy));
        out.set("result", compileResultToJson(result));
        if (!trace.isNull())
            out.set("trace", trace);
        if (!explain.isNull())
            out.set("explain", explain);
    } else {
        Json err = Json::object();
        err.set("code", Json(errorCodeName(error)));
        err.set("message", Json(message));
        out.set("error", std::move(err));
    }
    return out;
}

/** One in-flight exploration shared by every coalesced waiter. */
struct CompileService::Job
{
    Job(std::string key_, CompileRequest request_,
        TensorComputation comp_, HardwareSpec hw_)
        : key(std::move(key_)), request(std::move(request_)),
          comp(std::move(comp_)), hw(std::move(hw_)),
          future(promise.get_future().share())
    {}

    std::string key;
    CompileRequest request;
    TensorComputation comp;
    HardwareSpec hw;

    /// Effective warm-start inputs, resolved at submit: the mode
    /// (request field or server default) and the model snapshot
    /// pinned for this exploration (a concurrent reload_model must
    /// not change a job mid-flight).
    WarmStartMode warmMode = WarmStartMode::Off;
    std::shared_ptr<const LearnedModel> model;

    /// Flight-recorder sequence of the request that created the job;
    /// runJob re-installs it so the exploration's spans land in the
    /// rings under it.
    std::uint64_t flightSeq = 0;
    /// When the job entered the pool queue (queue-wait measurement).
    std::chrono::steady_clock::time_point enqueued{};
    /// Written by the worker before the promise resolves; readable
    /// by waiters afterwards (promise/future synchronises).
    double queueWaitMs = 0.0;

    CancelToken token;
    /// Waiters still interested; the last one to abandon cancels.
    std::atomic<int> waiters{1};

    std::promise<ServeOutcome> promise;
    std::shared_future<ServeOutcome> future;
};

CompileService::CompileService(ServeOptions options)
    : _options(options),
      _requests(_metrics.counter("serve.requests")),
      _memoryHits(_metrics.counter("serve.memory_hits")),
      _diskHits(_metrics.counter("serve.disk_hits")),
      _compiles(_metrics.counter("serve.compiles")),
      _coalesced(_metrics.counter("serve.coalesced")),
      _rejectedQueueFull(
          _metrics.counter("serve.rejected_queue_full")),
      _deadlineExceeded(_metrics.counter("serve.deadline_exceeded")),
      _cancelled(_metrics.counter("serve.cancelled")),
      _failures(_metrics.counter("serve.failures")),
      _warmedEntries(_metrics.counter("serve.warmed_entries")),
      _slowRequests(_metrics.counter("serve.slow_requests")),
      _slowlogRecorded(_metrics.counter("serve.slowlog_recorded")),
      _inflightGauge(_metrics.gauge("serve.inflight")),
      _windowP99Gauge(_metrics.gauge("serve.window_p99_ms")),
      _slowThresholdGauge(
          _metrics.gauge("serve.slow_threshold_ms")),
      _sloBurnGauge(_metrics.gauge("serve.slo_burn_rate")),
      _warmSeeded(_metrics.counter("explore.warmstart_seeded")),
      _warmNeighbors(
          _metrics.counter("explore.warmstart_neighbors")),
      _modelReloads(_metrics.counter("explore.model_reloads")),
      _cache(options.cache, &_metrics),
      _pool(std::make_unique<ThreadPool>(
          ThreadPool::resolveThreads(
              static_cast<int>(options.workers))))
{
    if (_options.warmOnStart && _cache.hasDisk())
        _warmedEntries.add(_cache.warm());
    if (!_options.modelSnapshotPath.empty()) {
        auto loaded =
            LearnedModel::loadFile(_options.modelSnapshotPath);
        if (loaded) {
            _model = std::make_shared<const LearnedModel>(
                std::move(*loaded));
        } else {
            warn("serve: could not load model snapshot ",
                 _options.modelSnapshotPath,
                 "; starting with analytic screening");
        }
    }
    if (_options.statsLogPeriodMs > 0)
        _statsLogger = std::thread([this] { statsLoggerLoop(); });
    // Every serve.* and cache.* counter is registered by now; the
    // admission snapshot reads this fixed list with relaxed loads.
    _counterRefs = _metrics.counterRefs();
}

CompileService::~CompileService()
{
    drain();
}

void
CompileService::recordLatency(double ms)
{
    _latency.record(ms);
    _window.record(ms);
    // Keep the windowed SLO gauges fresh on the request path (not
    // at scrape time) so prometheusText() stays const and cheap.
    double threshold = slowThresholdMs();
    _windowP99Gauge.set(_window.windowQuantileMs(0.99));
    _slowThresholdGauge.set(threshold);
    _sloBurnGauge.set(
        threshold > 0
            ? _window.burnRate(threshold, _options.sloErrorBudget)
            : 0.0);
}

double
CompileService::slowThresholdMs() const
{
    if (_options.slowMs > 0)
        return _options.slowMs;
    // Adaptive: flag the outliers relative to recent behaviour, but
    // only once the window has enough samples that its p99 means
    // something; a floor keeps microsecond-scale replay jitter from
    // flooding the slowlog.
    if (_window.windowCount() < 50)
        return 0.0;
    return std::max(5.0, 2.0 * _window.windowQuantileMs(0.99));
}

void
CompileService::maybeRetain(const Ticket &ticket,
                            const ServeOutcome &outcome)
{
    double threshold = slowThresholdMs();
    const char *reason = nullptr;
    if (!outcome.ok) {
        switch (outcome.error) {
        case ErrorCode::QueueFull:
            reason = "shed";
            break;
        case ErrorCode::DeadlineExceeded:
            reason = "deadline";
            break;
        case ErrorCode::ShuttingDown:
            // The server is going away with the slowlog; a drain
            // rejection is not a request-level anomaly.
            return;
        default:
            reason = "error";
            break;
        }
    } else if (threshold > 0 && outcome.latencyMs > threshold) {
        reason = "slow";
    }
    if (reason == nullptr)
        return;

    if (std::strcmp(reason, "slow") == 0)
        _slowRequests.add();

    Json pm = Json::object();
    pm.set("flight_seq",
           Json(static_cast<std::int64_t>(ticket._flightSeq)));
    pm.set("id", Json(ticket._id));
    pm.set("reason", Json(reason));
    pm.set("latency_ms", Json(outcome.latencyMs));
    pm.set("queue_wait_ms", Json(outcome.queueWaitMs));
    pm.set("served_by", Json(outcome.servedBy));
    pm.set("slow_threshold_ms", Json(threshold));
    if (!outcome.ok) {
        Json err = Json::object();
        err.set("code", Json(errorCodeName(outcome.error)));
        err.set("message", Json(outcome.message));
        pm.set("error", std::move(err));
    }

    Json admission = Json::object();
    admission.set("inflight", Json(ticket._admission.inflight));
    admission.set("queue_depth",
                  Json(static_cast<std::int64_t>(
                      ticket._admission.queueDepth)));
    pm.set("admission", std::move(admission));

    // What the whole service did while this request was in it:
    // counters that moved between admission and now. A saturated
    // server shows up here as a big serve.requests delta; a cold
    // cache as cache.*_misses.
    Json delta = Json::object();
    for (std::size_t i = 0;
         i < _counterRefs.size() &&
         i < ticket._admission.counters.size();
         ++i) {
        std::uint64_t now = _counterRefs[i].second->value();
        std::uint64_t then = ticket._admission.counters[i];
        if (now > then)
            delta.set(_counterRefs[i].first,
                      Json(static_cast<std::int64_t>(now - then)));
    }
    pm.set("metrics_delta", std::move(delta));

    // The span tree is harvested *now*, after the outcome: that is
    // the tail-based part — every request was speculatively
    // recorded, only this one's records get promoted out of the
    // rings before they are overwritten.
    pm.set("trace",
           FlightRecorder::global().spanTreeFor(ticket._flightSeq));

    {
        std::lock_guard<std::mutex> lock(_slowlogMutex);
        _slowlog.push_back(std::move(pm));
        ++_slowlogTotal;
        while (_slowlog.size() > _options.slowlogSize &&
               !_slowlog.empty())
            _slowlog.pop_front();
    }
    _slowlogRecorded.add();
}

CompileService::Ticket
CompileService::submit(const CompileRequest &req)
{
    Ticket ticket;
    ticket._start = Clock::now();
    ticket._explain = req.explain;
    ticket._id = req.id;
    _requests.add();

    auto immediate = [&](ServeOutcome outcome) {
        outcome.latencyMs = elapsedMs(ticket._start);
        recordLatency(outcome.latencyMs);
        ticket._immediate = std::move(outcome);
        ticket._isImmediate = true;
        maybeRetain(ticket, ticket._immediate);
        return ticket;
    };

    // A draining service rejects everything, cache hits included:
    // "shutting_down" must be the unambiguous answer once drain()
    // was called, so clients fail over instead of lingering. This
    // check must precede the admission snapshot: after drain() the
    // worker pool is gone.
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_draining) {
            ServeOutcome outcome;
            outcome.error = ErrorCode::ShuttingDown;
            outcome.message = "service is draining";
            return immediate(std::move(outcome));
        }
        // Gauges at admission, for the postmortem: what the
        // request walked into. Read under the same critical section
        // as the draining check — once drain() completes the worker
        // pool is gone, and _draining turning true under this lock
        // is the only way that can happen.
        ticket._admission.inflight = _inflightGauge.value();
        ticket._admission.queueDepth = _pool->queueDepth();
    }

    // Speculative flight recording: every request gets a sequence
    // number and a scope covering its submit path (cache-hit replay
    // included); whether the records are kept is decided after the
    // outcome is known (maybeRetain).
    FlightRecorder &flight = FlightRecorder::global();
    ticket._flightSeq =
        flight.enabled() ? flight.beginRequest() : 0;
    FlightScope flight_scope(ticket._flightSeq);

    ticket._admission.counters.reserve(_counterRefs.size());
    for (const auto &[name, counter] : _counterRefs)
        ticket._admission.counters.push_back(counter->value());

    // Resolve the request to compiler inputs; a bad op/hw/knob is a
    // typed rejection, not an exception escaping the server loop.
    std::optional<TensorComputation> comp;
    HardwareSpec spec;
    std::string key;
    WarmStartMode warm_mode = _options.warmStart;
    std::shared_ptr<const LearnedModel> model;
    try {
        comp = computationFromRequest(req);
        spec = hardwareFromRequest(req);
        if (!req.warmStart.empty()) {
            auto parsed = warmStartModeFromName(req.warmStart);
            expect(parsed.has_value(),
                   "unknown warm_start mode '", req.warmStart,
                   "' (off|neighbors|model|both)");
            warm_mode = *parsed;
        }
        if (warmStartUsesModel(warm_mode))
            model = modelSnapshot();
        std::ostringstream k;
        k << TuningCache::keyFor(*comp, spec) << "/g"
          << req.generations << "_s" << req.seed;
        // The effective warm-start inputs steer the search, so they
        // join the key: the mode, and (for model modes) the snapshot
        // content digest. Off keeps the historical key so persisted
        // caches stay valid.
        if (warm_mode != WarmStartMode::Off) {
            k << "/w" << warmStartModeName(warm_mode);
            if (model)
                k << "-m" << model->digest().substr(0, 8);
        }
        key = k.str();
    } catch (const std::exception &e) {
        ServeOutcome outcome;
        outcome.error = ErrorCode::BadRequest;
        outcome.message = e.what();
        return immediate(std::move(outcome));
    }

    if (req.deadlineMs > 0)
        ticket._deadline =
            ticket._start +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    req.deadlineMs));

    // Tier 1/2 fast path: replay the persisted plan — one simulator
    // run instead of an exploration.
    TieredCache::Tier tier;
    if (auto entry = _cache.get(key, &tier)) {
        bool from_memory = tier == TieredCache::Tier::Memory;
        std::optional<CompileResult> result;
        {
            // Per-request tracing covers the replay (one simulator
            // run) exactly like a full compile.
            std::optional<TraceContext> trace_ctx;
            if (!req.traceId.empty())
                trace_ctx.emplace(req.traceId);
            TraceSpan span("serve.cache_hit", "serve");
            span.arg("tier", from_memory ? "memory" : "disk");
            result = replayCacheEntry(*entry, *comp, spec);
        }
        if (result) {
            ServeOutcome outcome;
            outcome.ok = true;
            outcome.result = std::move(*result);
            outcome.servedBy = from_memory ? "memory" : "disk";
            if (req.explain)
                outcome.explain =
                    report::explainToJson(report::explainResult(
                        outcome.result, *comp, spec));
            (from_memory ? _memoryHits : _diskHits).add();
            if (!req.traceId.empty()) {
                auto &tracer = Tracer::global();
                outcome.trace = tracer.spanTreeFor(req.traceId);
                if (!tracer.enabled())
                    tracer.releaseTrace(req.traceId);
            }
            return immediate(std::move(outcome));
        }
        // Stale entry (e.g. hardware spec evolved): re-explore.
    }

    std::shared_ptr<Job> job;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_draining) {
            ServeOutcome outcome;
            outcome.error = ErrorCode::ShuttingDown;
            outcome.message = "service is draining";
            return immediate(std::move(outcome));
        }
        auto it = _inflight.find(key);
        if (it != _inflight.end()) {
            // Coalesce: attach to the in-flight exploration. The
            // join may only ever extend the job's deadline.
            job = it->second;
            job->waiters.fetch_add(1, std::memory_order_relaxed);
            job->token.extendDeadline(ticket._deadline);
            _coalesced.add();
            // The joiner's postmortem should show the exploration
            // it actually waited on, not its own (span-free)
            // submit path.
            ticket._flightSeq = job->flightSeq;
            ticket._job = std::move(job);
            ticket._joiner = true;
            return ticket;
        }
        if (_inflight.size() >= _options.maxQueue) {
            _rejectedQueueFull.add();
            ServeOutcome outcome;
            outcome.error = ErrorCode::QueueFull;
            outcome.message =
                "admission bound of " +
                std::to_string(_options.maxQueue) +
                " in-flight explorations reached";
            return immediate(std::move(outcome));
        }
        job = std::make_shared<Job>(key, req, std::move(*comp),
                                    std::move(spec));
        job->warmMode = warm_mode;
        job->model = std::move(model);
        job->token.setDeadline(ticket._deadline);
        job->flightSeq = ticket._flightSeq;
        job->enqueued = Clock::now();
        _inflight[key] = job;
        _inflightGauge.set(static_cast<double>(_inflight.size()));
    }
    _pool->submit([this, job] { runJob(job); });
    ticket._job = std::move(job);
    return ticket;
}

void
CompileService::runJob(std::shared_ptr<Job> job)
{
    ServeOutcome outcome;
    const std::string &trace_id = job->request.traceId;
    // Satellite measurement: admission -> worker start. Everything
    // between is time the request spent waiting for a free worker.
    double queue_wait = elapsedMs(job->enqueued);
    _queueWait.record(queue_wait);
    outcome.queueWaitMs = queue_wait;
    // Tag every stderr line this request's compilation emits with
    // its trace id (log <-> trace correlation).
    LogTraceScope log_scope(trace_id);
    AMOS_LOG(Debug) << "compile start key=" << job->key;
    {
        // Per-request trace context: every span the exploration
        // opens on this thread (and, through parallelFor's context
        // propagation, on the tuner's worker threads) is tagged with
        // the request's trace id. The flight scope is re-installed
        // the same way so the rings attribute the exploration to
        // the originating request's sequence.
        std::optional<TraceContext> trace_ctx;
        if (!trace_id.empty())
            trace_ctx.emplace(trace_id);
        std::optional<FlightScope> flight_scope;
        if (job->flightSeq != 0)
            flight_scope.emplace(job->flightSeq);
        TraceSpan span("serve.compile", "serve");
        span.arg("key", job->key);
        span.arg("queue_wait_ms", fmtDouble(queue_wait, 3));
        try {
            // A request whose deadline fired while queued never
            // starts.
            job->token.checkpoint("queued request");
            TuneOptions options =
                tuneOptionsFromRequest(job->request);
            options.cancel = &job->token;
            options.warmStart.mode = job->warmMode;
            options.warmStart.model = job->model;
            if (job->warmMode != WarmStartMode::Off)
                options.warmStart.patience = kWarmStartPatience;
            if (warmStartUsesNeighbors(job->warmMode)) {
                // Donor scan over a snapshot copy: one lock
                // acquisition to copy the memory tier, then all
                // feature distances computed lock-free so the serve
                // hot path stays uncontended.
                auto snap = _cache.snapshotMemory();
                std::vector<WarmSeed> donors;
                donors.reserve(snap.size());
                for (auto &[donor_key, entry] : snap) {
                    WarmSeed seed;
                    seed.sourceKey = donor_key;
                    seed.intrinsicName = entry.intrinsicName;
                    seed.mapping = entry.mapping;
                    seed.schedule = entry.schedule;
                    donors.push_back(std::move(seed));
                }
                options.warmStart.seeds = nearestSeeds(
                    shapeFeatureOf(job->comp, job->hw),
                    std::move(donors));
            }
            Compiler compiler(job->hw, options);
            _compiles.add();
            auto result = compiler.compile(job->comp);
            _warmNeighbors.add(static_cast<std::uint64_t>(
                result.tuning.warmStartNeighbors));
            _warmSeeded.add(static_cast<std::uint64_t>(
                result.tuning.warmStartSeeded));
            if (result.tensorized && result.tuning.bestPlan) {
                CacheEntry entry;
                entry.intrinsicName =
                    result.tuning.bestPlan->intrinsic().name();
                entry.mapping = result.tuning.bestPlan->mapping();
                entry.schedule = result.tuning.bestSchedule;
                entry.cycles = result.tuning.bestCycles;
                _cache.put(job->key, entry);
            }
            outcome.ok = true;
            outcome.result = std::move(result);
            outcome.servedBy = "compile";
        } catch (const CancelledError &e) {
            outcome.error = job->token.deadlineExpired()
                                ? ErrorCode::DeadlineExceeded
                                : ErrorCode::Cancelled;
            outcome.message = e.what();
        } catch (const std::exception &e) {
            outcome.error = ErrorCode::Internal;
            outcome.message = e.what();
        }
    }
    if (!trace_id.empty()) {
        // The root span has closed, so the tree is complete. Drop
        // the spans afterwards (unless a global trace collection is
        // running) so a long-lived server does not accumulate one
        // request's spans forever.
        auto &tracer = Tracer::global();
        if (outcome.ok)
            outcome.trace = tracer.spanTreeFor(trace_id);
        if (!tracer.enabled())
            tracer.releaseTrace(trace_id);
    }
    // Publish to the cache *before* leaving the in-flight map (done
    // above), then deregister, then resolve the waiters: a racing
    // submit always finds the result either in flight or cached.
    if (outcome.ok)
        AMOS_LOG(Debug)
            << "compile done key=" << job->key
            << " cycles=" << outcome.result.cycles;
    else
        AMOS_LOG(Debug)
            << "compile failed key=" << job->key << " code="
            << errorCodeName(outcome.error) << ": "
            << outcome.message;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _inflight.erase(job->key);
        _inflightGauge.set(static_cast<double>(_inflight.size()));
    }
    job->promise.set_value(std::move(outcome));
    _idle.notify_all();
}

ServeOutcome
CompileService::wait(Ticket &ticket)
{
    if (ticket._isImmediate)
        return ticket._immediate;
    require(static_cast<bool>(ticket._job),
            "CompileService::wait on an empty ticket");
    auto job = ticket._job;

    if (ticket._deadline != Clock::time_point::max() &&
        job->future.wait_until(ticket._deadline) ==
            std::future_status::timeout) {
        if (!ticket._abandoned) {
            ticket._abandoned = true;
            // Last waiter out turns off the lights: cancel the
            // exploration nobody is listening to any more.
            if (job->waiters.fetch_sub(
                    1, std::memory_order_acq_rel) == 1)
                job->token.cancel();
        }
        _deadlineExceeded.add();
        ServeOutcome outcome;
        outcome.error = ErrorCode::DeadlineExceeded;
        outcome.message = "deadline of " +
                          fmtDouble(job->request.deadlineMs, 1) +
                          " ms exceeded";
        outcome.latencyMs = elapsedMs(ticket._start);
        recordLatency(outcome.latencyMs);
        // The exploration is still running; its spans recorded so
        // far are in the rings and the postmortem shows where the
        // deadline caught it.
        maybeRetain(ticket, outcome);
        return outcome;
    }

    ServeOutcome outcome = job->future.get();
    if (outcome.ok && ticket._joiner)
        outcome.servedBy = "coalesced";
    // Per-ticket output shaping: explain is built on the waiter's
    // copy, so a coalesced joiner that asked for it gets one even
    // when the originating request did not.
    if (outcome.ok && ticket._explain && outcome.explain.isNull())
        outcome.explain = report::explainToJson(
            report::explainResult(outcome.result, job->comp,
                                  job->hw));
    if (!outcome.ok) {
        switch (outcome.error) {
        case ErrorCode::DeadlineExceeded:
            _deadlineExceeded.add();
            break;
        case ErrorCode::Cancelled:
            _cancelled.add();
            break;
        default:
            _failures.add();
            break;
        }
    }
    outcome.latencyMs = elapsedMs(ticket._start);
    recordLatency(outcome.latencyMs);
    maybeRetain(ticket, outcome);
    return outcome;
}

ServeOutcome
CompileService::serve(const CompileRequest &req)
{
    auto ticket = submit(req);
    return wait(ticket);
}

ServeStats
CompileService::stats() const
{
    ServeStats out;
    out.requests = _requests.value();
    out.memoryHits = _memoryHits.value();
    out.diskHits = _diskHits.value();
    out.compiles = _compiles.value();
    out.coalesced = _coalesced.value();
    out.rejectedQueueFull = _rejectedQueueFull.value();
    out.deadlineExceeded = _deadlineExceeded.value();
    out.cancelled = _cancelled.value();
    out.failures = _failures.value();
    out.warmedEntries = _warmedEntries.value();
    out.slowRequests = _slowRequests.value();
    out.slowlogRecorded = _slowlogRecorded.value();
    out.metrics = _metrics.counterValues();
    out.latencyCount = _latency.count();
    out.meanMs = _latency.meanMs();
    out.p50Ms = _latency.quantileMs(0.50);
    out.p95Ms = _latency.quantileMs(0.95);
    out.p99Ms = _latency.quantileMs(0.99);
    out.windowCount = _window.windowCount();
    out.windowP50Ms = _window.windowQuantileMs(0.50);
    out.windowP95Ms = _window.windowQuantileMs(0.95);
    out.windowP99Ms = _window.windowQuantileMs(0.99);
    out.slowThresholdMs = slowThresholdMs();
    out.sloBurnRate =
        out.slowThresholdMs > 0
            ? _window.burnRate(out.slowThresholdMs,
                               _options.sloErrorBudget)
            : 0.0;
    return out;
}

std::string
CompileService::prometheusText() const
{
    return report::prometheusExposition(
        _metrics,
        {{"serve.latency_ms", &_latency},
         {"serve.queue_wait_ms", &_queueWait}},
        {{"serve.latency_ms_window", &_window}});
}

Json
CompileService::slowlogJson(std::size_t limit) const
{
    Json entries = Json::array();
    std::uint64_t total = 0;
    {
        std::lock_guard<std::mutex> lock(_slowlogMutex);
        total = _slowlogTotal;
        std::size_t want = limit == 0 ? _slowlog.size()
                                      : std::min(limit,
                                                 _slowlog.size());
        // Most recent first: the entry you want after "the server
        // just got slow" is at the top.
        for (std::size_t i = 0; i < want; ++i)
            entries.push(_slowlog[_slowlog.size() - 1 - i]);
    }
    Json out = Json::object();
    out.set("count", Json(static_cast<std::int64_t>(total)));
    out.set("postmortems", std::move(entries));
    return out;
}

Json
CompileService::flightDump(const std::string &path) const
{
    Json dump = FlightRecorder::global().dumpJson();
    auto records = static_cast<std::int64_t>(
        FlightRecorder::global().recordCount());
    Json out = Json::object();
    std::ofstream file(path);
    if (!file.good()) {
        out.set("ok", Json(false));
        out.set("error", Json("cannot open " + path));
        return out;
    }
    file << dump.dump() << "\n";
    file.flush();
    out.set("ok", Json(file.good()));
    out.set("path", Json(path));
    out.set("records", Json(records));
    return out;
}

Json
CompileService::reloadModel(const std::string &path)
{
    Json out = Json::object();
    out.set("path", Json(path));
    auto loaded = LearnedModel::loadFile(path);
    if (!loaded) {
        out.set("ok", Json(false));
        out.set("error",
                Json("cannot load model snapshot from " + path +
                     " (unreadable, unparseable, or wrong schema)"));
        return out;
    }
    auto model =
        std::make_shared<const LearnedModel>(std::move(*loaded));
    {
        std::lock_guard<std::mutex> lock(_modelMutex);
        _model = model;
    }
    _modelReloads.add();
    out.set("ok", Json(true));
    out.set("digest", Json(model->digest()));
    out.set("samples", Json(static_cast<std::int64_t>(
                           model->fittedSamples())));
    return out;
}

std::shared_ptr<const LearnedModel>
CompileService::modelSnapshot() const
{
    std::lock_guard<std::mutex> lock(_modelMutex);
    return _model;
}

bool
CompileService::draining() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _draining;
}

void
CompileService::drain()
{
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _draining = true;
        _idle.wait(lock, [this] { return _inflight.empty(); });
    }
    {
        std::lock_guard<std::mutex> lock(_loggerMutex);
        _loggerStop = true;
    }
    _loggerCv.notify_all();
    if (_statsLogger.joinable())
        _statsLogger.join();
    // Joining the pool here (not in ~CompileService) means drain()
    // returns only after every worker ran to completion.
    _pool.reset();
}

void
CompileService::statsLoggerLoop()
{
    auto period = std::chrono::duration<double, std::milli>(
        _options.statsLogPeriodMs);
    std::unique_lock<std::mutex> lock(_loggerMutex);
    for (;;) {
        if (_loggerCv.wait_for(
                lock,
                std::chrono::duration_cast<Clock::duration>(period),
                [this] { return _loggerStop; }))
            return;
        lock.unlock();
        inform(stats().summary());
        lock.lock();
    }
}

} // namespace serve
} // namespace amos
